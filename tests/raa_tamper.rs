//! The paper's RAA security experiment (§III-D): "RAA cannot be used to
//! modify the arguments of a smart contract function that may send a
//! transaction … In testing the limits of RAA we found that the modified
//! transactions would still be mined, but would not be accepted by peers
//! who must validate the newly created block."

use bytes::Bytes;
use sereth::chain::builder::{build_block, BlockLimits};
use sereth::chain::genesis::GenesisBuilder;
use sereth::chain::validation::ValidationMode;
use sereth::crypto::{Address, SecretKey, H256};
use sereth::hms::fpv::{Flag, Fpv};
use sereth::hms::mark::genesis_mark;
use sereth::node::contract::{
    default_contract_address, sereth_code, sereth_genesis_slots, set_selector, ContractForm,
};
use sereth::node::node::{BlockReceipt, NodeConfig, NodeHandle};
use sereth::types::{Block, Transaction, TxPayload, U256};

fn make_node(owner: &SecretKey) -> NodeHandle {
    make_node_validating(owner, ValidationMode::Sequential)
}

fn make_node_validating(owner: &SecretKey, validation_mode: ValidationMode) -> NodeHandle {
    let contract = default_contract_address();
    let genesis = GenesisBuilder::new()
        .fund(owner.address(), U256::from(1_000_000_000u64))
        .contract_with_storage(
            contract,
            sereth_code(ContractForm::Native),
            sereth_genesis_slots(&owner.address(), H256::from_low_u64(50)),
        )
        .build();
    NodeHandle::new(genesis, NodeConfig::geth(contract).validation_mode(validation_mode).build())
}

fn signed_set(owner: &SecretKey, value: u64) -> Transaction {
    Transaction::sign(
        TxPayload {
            nonce: 0,
            gas_price: 1,
            gas_limit: 200_000,
            to: Some(default_contract_address()),
            value: U256::ZERO,
            input: Fpv::new(Flag::Head, genesis_mark(), H256::from_low_u64(value))
                .to_calldata(set_selector()),
        },
        owner,
    )
}

/// A malicious miner RAA-rewrites the *signed* calldata (doubling the
/// price from 60 to 120), seals a block over it, and presents it to an
/// honest peer. The peer's replay validation must reject the block.
#[test]
fn tampered_transaction_blocks_are_rejected_by_honest_validators() {
    let owner = SecretKey::from_label(1);
    let honest = make_node(&owner);
    let original = signed_set(&owner, 60);

    // The attack: rewrite the value argument in the signed calldata.
    let evil_input =
        Fpv::new(Flag::Head, genesis_mark(), H256::from_low_u64(120)).to_calldata(set_selector());
    let tampered = original.with_tampered_input(evil_input);

    // The malicious miner can still *seal* a block containing it (it
    // controls its own builder — "the modified transactions would still
    // be mined"). We build the block structure by hand because the honest
    // builder refuses invalid transactions.
    let (parent, parent_state) = honest
        .with_inner(|inner| (inner.chain.head_block().header.clone(), inner.chain.head_state().clone()));
    let honest_block = build_block(
        &parent,
        &parent_state,
        vec![original.clone()],
        Address::from_low_u64(0xbad),
        15_000,
        &BlockLimits::default(),
    );
    let mut evil_block = honest_block.block.clone();
    evil_block.transactions = vec![tampered];
    evil_block.header.tx_root = Block::compute_tx_root(&evil_block.transactions);

    // Honest peers reject it during replay.
    assert_eq!(honest.receive_block(evil_block), BlockReceipt::Rejected);
    assert_eq!(honest.head_number(), 0, "the chain did not advance on the tampered block");

    // The untampered block is accepted fine.
    assert_eq!(honest.receive_block(honest_block.block), BlockReceipt::Imported);
    assert_eq!(honest.head_number(), 1);
}

/// The same §III-D experiment against an honest peer that replays blocks
/// on the wave executor: parallel validation must reject the RAA-tampered
/// block (and accept the honest one) exactly like the sequential
/// validator — the defence does not weaken when peers validate in
/// parallel.
#[test]
fn parallel_validators_reject_tampered_blocks_identically() {
    let owner = SecretKey::from_label(1);
    let sequential_peer = make_node(&owner);
    let parallel_peer = make_node_validating(&owner, ValidationMode::Parallel { threads: 4 });
    let original = signed_set(&owner, 60);

    let evil_input =
        Fpv::new(Flag::Head, genesis_mark(), H256::from_low_u64(120)).to_calldata(set_selector());
    let tampered = original.with_tampered_input(evil_input);

    let (parent, parent_state) = sequential_peer
        .with_inner(|inner| (inner.chain.head_block().header.clone(), inner.chain.head_state().clone()));
    let honest_block = build_block(
        &parent,
        &parent_state,
        vec![original],
        Address::from_low_u64(0xbad),
        15_000,
        &BlockLimits::default(),
    );
    let mut evil_block = honest_block.block.clone();
    evil_block.transactions = vec![tampered];
    evil_block.header.tx_root = Block::compute_tx_root(&evil_block.transactions);

    // Identical verdicts on the attack...
    assert_eq!(sequential_peer.receive_block(evil_block.clone()), BlockReceipt::Rejected);
    assert_eq!(parallel_peer.receive_block(evil_block), BlockReceipt::Rejected);
    assert_eq!(parallel_peer.head_number(), 0, "the chain did not advance on the tampered block");

    // ...and on the honest block, with the replay provably run in waves.
    assert_eq!(sequential_peer.receive_block(honest_block.block.clone()), BlockReceipt::Imported);
    assert_eq!(parallel_peer.receive_block(honest_block.block), BlockReceipt::Imported);
    assert_eq!(parallel_peer.head_number(), 1);
    assert!(
        parallel_peer.validation_stats().waves >= 1,
        "the honest import replayed on the wave executor: {:?}",
        parallel_peer.validation_stats()
    );
}

/// Even without re-sealing the tx root, body/header inconsistency is
/// caught first.
#[test]
fn body_swaps_without_root_update_are_rejected_too() {
    let owner = SecretKey::from_label(1);
    let honest = make_node(&owner);
    let original = signed_set(&owner, 60);
    let (parent, parent_state) = honest
        .with_inner(|inner| (inner.chain.head_block().header.clone(), inner.chain.head_state().clone()));
    let built = build_block(
        &parent,
        &parent_state,
        vec![original.clone()],
        Address::from_low_u64(0xbad),
        15_000,
        &BlockLimits::default(),
    );
    let mut sneaky = built.block.clone();
    sneaky.transactions[0] = original.with_tampered_input(Bytes::from_static(b"subtle"));
    // tx_root left stale on purpose.
    assert_eq!(honest.receive_block(sneaky), BlockReceipt::Rejected);
}

/// The RAA registry refuses to touch non-static calls even when a
/// provider is installed — the interpreter-level half of the defence.
#[test]
fn raa_never_rewrites_transaction_calldata() {
    use sereth::vm::abi;
    use sereth::vm::raa::{RaaProvider, RaaRegistry, RaaRequest};
    use std::sync::Arc;

    struct Evil;
    impl RaaProvider for Evil {
        fn augment(&self, request: &RaaRequest<'_>) -> Option<Bytes> {
            abi::replace_arg_word(request.calldata, 2, H256::from_low_u64(120))
        }
    }

    let contract = default_contract_address();
    let mut registry = RaaRegistry::new();
    registry.enable(contract, set_selector());
    registry.set_provider(Arc::new(Evil));

    let calldata = Fpv::new(Flag::Head, genesis_mark(), H256::from_low_u64(60)).to_calldata(set_selector());
    let mut env = sereth::vm::exec::CallEnv::test_env(Address::from_low_u64(1), contract, calldata.clone());
    env.is_static = false; // a transaction
    let env = registry.apply(env);
    assert_eq!(env.calldata, calldata, "transaction calldata must pass through untouched");
}
