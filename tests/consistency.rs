//! End-to-end correctness audit: every committed chain produced by the
//! paper's three scenarios must satisfy the two correctness conditions
//! the paper invokes — sequential consistency (§IV) and Selective Strict
//! Serialization (§VI, executed here as a checker rather than left as
//! future work).
//!
//! The audit is an *independent oracle*: it re-derives the market's state
//! machine from committed calldata alone and compares against the effects
//! the receipts record. Any divergence — in the contract, the executor,
//! the pool, the miner (standard *or* semantic), or the gossip layer —
//! surfaces as a violation.

use sereth::consistency::record::{History, MarketSpec};
use sereth::consistency::{seqcon, sss};
use sereth::crypto::H256;
use sereth::hms::mark::genesis_mark;
use sereth::node::contract::{
    buy_ok_topic, buy_selector, default_contract_address, set_ok_topic, set_selector,
};
use sereth::sim::scenario::{run_scenario, RunOutput, ScenarioConfig};

fn spec(initial_price: u64) -> MarketSpec {
    MarketSpec {
        contract: default_contract_address(),
        set_selector: set_selector(),
        buy_selector: buy_selector(),
        set_ok_topic: set_ok_topic(),
        buy_ok_topic: buy_ok_topic(),
        genesis_mark: genesis_mark(),
        initial_value: H256::from_low_u64(initial_price),
    }
}

fn audit(output: &RunOutput, initial_price: u64) {
    let spec = spec(initial_price);
    let history = History::from_blocks(
        &spec,
        output.chain.iter().map(|(block, receipts)| (block, receipts.as_slice())),
    );
    assert!(
        !history.is_empty(),
        "{} seed {}: no market transactions committed — audit vacuous",
        output.scenario,
        output.seed
    );

    let seq_violations = seqcon::check(&history);
    assert!(
        seq_violations.is_empty(),
        "{} seed {}: sequential consistency broken: {:?}",
        output.scenario,
        output.seed,
        seq_violations
    );

    let report = sss::check(&spec, &history);
    assert!(report.holds(), "{} seed {}: SSS broken: {:?}", output.scenario, output.seed, report.violations);

    // Cross-check the audit against the run's own metrics: the checker's
    // tally of effective operations must equal what the metrics counted.
    let (sets_ok, _, buys_ok, _) = history.tallies();
    assert_eq!(sets_ok as u64, output.metrics.sets_succeeded, "{}", output.scenario);
    assert_eq!(buys_ok as u64, output.metrics.buys_succeeded, "{}", output.scenario);
    assert_eq!(report.intervals, sets_ok, "every effective set opens exactly one interval");
}

fn small(mut config: ScenarioConfig) -> ScenarioConfig {
    config.num_buyers = 4;
    config.drain_ms = 6 * 15_000;
    config
}

#[test]
fn geth_unmodified_histories_satisfy_sss_and_seqcon() {
    for seed in [1, 7] {
        let output = run_scenario(&small(ScenarioConfig::geth_unmodified(24, 12)), seed);
        audit(&output, 50);
    }
}

#[test]
fn sereth_client_histories_satisfy_sss_and_seqcon() {
    for seed in [1, 7] {
        let output = run_scenario(&small(ScenarioConfig::sereth_client(24, 12)), seed);
        audit(&output, 50);
    }
}

#[test]
fn semantic_mining_histories_satisfy_sss_and_seqcon() {
    // The semantic miner *reorders* transactions (buys spliced into their
    // marked intervals); SSS is exactly the condition that says this
    // reordering is legal — buys move freely within an interval, never
    // across one.
    for seed in [1, 7] {
        let output = run_scenario(&small(ScenarioConfig::semantic_mining(24, 12)), seed);
        audit(&output, 50);
    }
}

#[test]
fn pwv_scheduler_histories_satisfy_sss_and_seqcon() {
    // The PWV miner reorders by data dependencies rather than HMS marks;
    // the audit shows the schedule it produces is still SSS-legal.
    for seed in [1, 7] {
        let output = run_scenario(&small(ScenarioConfig::pwv_scheduler(24, 12)), seed);
        audit(&output, 50);
    }
}

#[test]
fn semantic_mining_actually_exercises_interval_freedom() {
    // A run where multiple buys land per interval, so the "selective" part
    // of SSS is not vacuous.
    let output = run_scenario(&small(ScenarioConfig::semantic_mining(30, 5)), 11);
    let spec = spec(50);
    let history = History::from_blocks(
        &spec,
        output.chain.iter().map(|(block, receipts)| (block, receipts.as_slice())),
    );
    let report = sss::check(&spec, &history);
    assert!(report.holds());
    assert!(
        report.buys_per_interval.iter().any(|&count| count >= 2),
        "expected at least one interval with 2+ buys, got {:?}",
        report.buys_per_interval
    );
}
