//! Multiple independent Sereth markets on one chain: each contract's
//! Hash-Mark-Set series is scoped to that contract, so two markets with
//! interleaved traffic never pollute each other's READ-UNCOMMITTED views.
//! (The paper manages a single state variable; contract scoping is the
//! natural generalisation its §VI hints at when comparing with sharding —
//! "sharding … would need customization to address state throughput of
//! individual smart contracts as does HMS".)

use sereth::chain::genesis::GenesisBuilder;
use sereth::crypto::{Address, SecretKey, H256};
use sereth::hms::hms::HmsConfig;
use sereth::hms::mark::{compute_mark, genesis_mark};
use sereth::node::client::{Buyer, Owner};
use sereth::node::contract::{buy_ok_topic, sereth_code, sereth_genesis_slots, ContractForm};
use sereth::node::miner::MinerPolicy;
use sereth::node::node::{ClientKind, NodeConfig, NodeHandle};
use sereth::types::U256;
use sereth::vm::abi;

fn market_a() -> Address {
    Address::from_low_u64(0xaaaa)
}

fn market_b() -> Address {
    Address::from_low_u64(0xbbbb)
}

fn setup() -> (NodeHandle, Owner, Owner) {
    let owner_a_key = SecretKey::from_label(1);
    let owner_b_key = SecretKey::from_label(2);
    let genesis = GenesisBuilder::new()
        .fund(owner_a_key.address(), U256::from(1_000_000_000u64))
        .fund(owner_b_key.address(), U256::from(1_000_000_000u64))
        .fund(SecretKey::from_label(3).address(), U256::from(1_000_000_000u64))
        .contract_with_storage(
            market_a(),
            sereth_code(ContractForm::Native),
            sereth_genesis_slots(&owner_a_key.address(), H256::from_low_u64(100)),
        )
        .contract_with_storage(
            market_b(),
            sereth_code(ContractForm::Native),
            sereth_genesis_slots(&owner_b_key.address(), H256::from_low_u64(200)),
        )
        .build();

    // The node's RAA registry manages market A; market B's selectors are
    // enabled additionally below.
    let node = NodeHandle::new(
        genesis,
        NodeConfig::miner(market_a(), MinerPolicy::Semantic(HmsConfig::default()))
            .coinbase(Address::from_low_u64(0xc0b0))
            .build(),
    );
    // Enable RAA for market B too — one provider, many markets.
    node.with_inner_mut(|inner| {
        inner.raa.enable(market_b(), sereth::node::contract::get_selector());
        inner.raa.enable(market_b(), sereth::node::contract::mark_selector());
    });

    let owner_a = Owner::with_value(owner_a_key, market_a(), genesis_mark(), H256::from_low_u64(100), 1);
    let owner_b = Owner::with_value(owner_b_key, market_b(), genesis_mark(), H256::from_low_u64(200), 1);
    (node, owner_a, owner_b)
}

/// Reads the HMS view of a given market through the RAA-augmented
/// read-only calls.
fn view_of(node: &NodeHandle, market: Address) -> (H256, H256) {
    let caller = Address::from_low_u64(0x11);
    let zero = [H256::ZERO, H256::ZERO, H256::ZERO];
    // Take an O(1) state view and the registry OUT of the lock: the RAA
    // provider re-locks the node inside `augment`, so running the call
    // under `with_inner` would deadlock (the same discipline
    // `NodeHandle::query_view` uses).
    let (state, raa, env) = node.with_inner(|inner| {
        let head = inner.chain.head_block().header.clone();
        (
            inner.chain.head_state_view(),
            inner.raa.clone(),
            sereth::chain::executor::BlockEnv {
                number: head.number,
                timestamp_ms: head.timestamp_ms,
                gas_limit: head.gas_limit,
                miner: head.miner,
            },
        )
    });
    let query = |selector: [u8; 4]| {
        let out = sereth::chain::executor::call_readonly(
            &state,
            caller,
            market,
            abi::encode_call(selector, &zero),
            &env,
            &raa,
        );
        abi::decode_word(&out.return_data).expect("one word")
    };
    (query(sereth::node::contract::mark_selector()), query(sereth::node::contract::get_selector()))
}

#[test]
fn markets_have_independent_series() {
    let (node, mut owner_a, mut owner_b) = setup();

    // Interleave pending sets for both markets.
    node.receive_tx(owner_a.next_set(&node, H256::from_low_u64(110)), 10);
    node.receive_tx(owner_b.next_set(&node, H256::from_low_u64(210)), 20);
    node.receive_tx(owner_a.next_set(&node, H256::from_low_u64(120)), 30);

    // Market A's view: its own two-set chain.
    let (mark_a, value_a) = view_of(&node, market_a());
    let expected_a =
        compute_mark(&compute_mark(&genesis_mark(), &H256::from_low_u64(110)), &H256::from_low_u64(120));
    assert_eq!(value_a.low_u64(), 120);
    assert_eq!(mark_a, expected_a);

    // Market B's view: its own single set — unaffected by A's chain.
    let (mark_b, value_b) = view_of(&node, market_b());
    assert_eq!(value_b.low_u64(), 210);
    assert_eq!(mark_b, compute_mark(&genesis_mark(), &H256::from_low_u64(210)));
}

#[test]
fn buys_commit_independently_per_market() {
    let (node, mut owner_a, mut owner_b) = setup();
    let buyer_key = SecretKey::from_label(3);

    node.receive_tx(owner_a.next_set(&node, H256::from_low_u64(110)), 10);
    node.receive_tx(owner_b.next_set(&node, H256::from_low_u64(210)), 20);

    // One buyer trades on both markets with correct per-market views.
    let mut buyer_a = Buyer::new(buyer_key.clone(), market_a(), ClientKind::Sereth, 1);
    let (mark_a, value_a) = view_of(&node, market_a());
    node.receive_tx(buyer_a.next_buy_at(mark_a, value_a), 30);

    let mut buyer_b = Buyer::new(buyer_key, market_b(), ClientKind::Sereth, 1);
    // The buyer's nonce continues across markets: same address.
    buyer_b_set_nonce(&mut buyer_b, 1);
    let (mark_b, value_b) = view_of(&node, market_b());
    node.receive_tx(buyer_b.next_buy_at(mark_b, value_b), 40);

    node.mine(15_000).expect("sealed");

    let buys_ok: Vec<Address> = node.with_inner(|inner| {
        inner.chain.logs_with_topic(&buy_ok_topic()).into_iter().map(|(_, log)| log.address).collect()
    });
    assert!(buys_ok.contains(&market_a()), "market A's buy landed");
    assert!(buys_ok.contains(&market_b()), "market B's buy landed");
}

/// Buyer nonce alignment helper: `Buyer` tracks its own nonce from 0; when
/// one key trades on several markets the later buyer must start where the
/// earlier one stopped.
fn buyer_b_set_nonce(buyer: &mut Buyer, nonce: u64) {
    buyer.set_nonce(nonce);
}
