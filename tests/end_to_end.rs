//! End-to-end integration: the full network simulation reproduces the
//! paper's qualitative results on matched seeds.

use sereth::sim::scenario::{run_scenario, run_sequential_history, ScenarioConfig};

fn shrink(mut config: ScenarioConfig) -> ScenarioConfig {
    config.num_buys = 30;
    config.num_sets = 15;
    config.num_buyers = 6;
    config.drain_ms = 6 * 15_000;
    config
}

#[test]
fn scenario_ordering_holds_in_aggregate() {
    let seeds = [11u64, 22, 33, 44];
    let mut geth = 0.0;
    let mut sereth = 0.0;
    let mut semantic = 0.0;
    for &seed in &seeds {
        geth += run_scenario(&shrink(ScenarioConfig::geth_unmodified(30, 15)), seed).metrics.eta_buys();
        sereth += run_scenario(&shrink(ScenarioConfig::sereth_client(30, 15)), seed).metrics.eta_buys();
        semantic += run_scenario(&shrink(ScenarioConfig::semantic_mining(30, 15)), seed).metrics.eta_buys();
    }
    assert!(
        semantic >= sereth && sereth > geth,
        "figure 2 ordering: semantic {semantic:.2} >= sereth {sereth:.2} > geth {geth:.2}"
    );
    // The paper's headline: a large multiple between baseline and HMS.
    assert!(
        sereth >= 2.0 * geth,
        "HMS at least doubles efficiency in this regime (got {geth:.2} -> {sereth:.2})"
    );
}

#[test]
fn sets_never_fail_in_any_scenario() {
    for make in [
        ScenarioConfig::geth_unmodified as fn(u64, u64) -> ScenarioConfig,
        ScenarioConfig::sereth_client,
        ScenarioConfig::semantic_mining,
    ] {
        let out = run_scenario(&shrink(make(30, 15)), 5);
        assert_eq!(out.metrics.sets_succeeded, out.metrics.sets_submitted, "{}", out.scenario);
    }
}

#[test]
fn sequential_history_is_perfect_in_all_scenarios() {
    for make in [
        ScenarioConfig::geth_unmodified as fn(u64, u64) -> ScenarioConfig,
        ScenarioConfig::sereth_client,
        ScenarioConfig::semantic_mining,
    ] {
        let out = run_sequential_history(&shrink(make(30, 15)), 12, 9);
        assert_eq!(out.metrics.buys_succeeded, 12, "{}", out.scenario);
        assert_eq!(out.metrics.sets_succeeded, 12, "{}", out.scenario);
    }
}

#[test]
fn runs_are_bit_deterministic() {
    let config = shrink(ScenarioConfig::semantic_mining(30, 15));
    let a = run_scenario(&config, 1234);
    let b = run_scenario(&config, 1234);
    assert_eq!(a.metrics.buys_succeeded, b.metrics.buys_succeeded);
    assert_eq!(a.metrics.buys_included, b.metrics.buys_included);
    assert_eq!(a.metrics.sets_succeeded, b.metrics.sets_succeeded);
    assert_eq!(a.metrics.blocks, b.metrics.blocks);
    assert_eq!(a.metrics.buy_latency_ms, b.metrics.buy_latency_ms);
}

#[test]
fn state_throughput_never_exceeds_raw_throughput() {
    for seed in [1u64, 2] {
        let out = run_scenario(&shrink(ScenarioConfig::sereth_client(30, 15)), seed);
        assert!(out.metrics.state_throughput_tps() <= out.metrics.raw_throughput_tps() + 1e-9);
        assert!(out.metrics.eta_included() <= 1.0);
        // Successful buys all have latency samples.
        assert_eq!(out.metrics.buy_latency_ms.len() as u64, out.metrics.buys_succeeded);
    }
}

#[test]
fn committed_head_extension_improves_semantic_mining() {
    // The paper's future-work claim (§V-C): recovering post-publish
    // orphans pushes efficiency toward 100 %.
    let seeds = [3u64, 5, 7, 9];
    let mut base_total = 0.0;
    let mut ext_total = 0.0;
    for &seed in &seeds {
        let base = shrink(ScenarioConfig::semantic_mining(30, 15));
        base_total += run_scenario(&base, seed).metrics.eta_buys();

        let mut ext = shrink(ScenarioConfig::semantic_mining(30, 15));
        let hms = sereth::hms::hms::HmsConfig { committed_head: true };
        ext.hms = hms.clone();
        ext.miner_policy = sereth::node::miner::MinerPolicy::Semantic(hms);
        ext_total += run_scenario(&ext, seed).metrics.eta_buys();
    }
    assert!(
        ext_total >= base_total,
        "committed-head must not hurt: base {base_total:.2}, extended {ext_total:.2}"
    );
}
