//! Cross-contract calls against the full chain: a bytecode *router*
//! contract forwards its calldata to the Sereth market via `CALL`.
//!
//! This exercises the interpreter's sub-call machinery end-to-end —
//! native-contract dispatch from bytecode, log attribution across frames,
//! rollback isolation — and shows that Sereth's silent-no-op semantics
//! (paper §II-D: failed transactions stay in the block without effect)
//! survive an extra call hop.

use bytes::Bytes;
use sereth::chain::executor::read_slot;
use sereth::chain::genesis::GenesisBuilder;
use sereth::crypto::{Address, SecretKey, H256};
use sereth::hms::fpv::{Flag, Fpv};
use sereth::hms::mark::{compute_mark, genesis_mark};
use sereth::node::contract::{
    default_contract_address, sereth_code, sereth_genesis_slots, set_ok_topic, set_selector, ContractForm,
    SLOT_N_SET, SLOT_VALUE,
};
use sereth::node::miner::MinerPolicy;
use sereth::node::node::{NodeConfig, NodeHandle};
use sereth::types::{Transaction, TxPayload, U256};
use sereth::vm::asm::assemble;
use sereth::vm::ContractCode;

fn router_address() -> Address {
    Address::from_low_u64(0xe0e7e4)
}

/// A contract that forwards its entire calldata to the Sereth market and
/// returns the call's success flag as a word.
fn router_bytecode(market: Address) -> Bytes {
    let source = format!(
        r#"
        CALLDATASIZE
        PUSH1 0x00
        PUSH1 0x00
        CALLDATACOPY     ; mem[0..cds] = calldata
        PUSH1 0x00       ; out_len
        PUSH1 0x00       ; out_off
        CALLDATASIZE     ; in_len
        PUSH1 0x00       ; in_off
        PUSH1 0x00       ; value
        PUSH20 0x{market:x}
        PUSH3 0x030d40   ; gas: 200000
        CALL
        PUSH1 0x00
        MSTORE
        PUSH1 0x20
        PUSH1 0x00
        RETURN
        "#
    );
    Bytes::from(assemble(&source).expect("router assembles"))
}

fn make_node(owner: &SecretKey, market_form: ContractForm) -> NodeHandle {
    let market = default_contract_address();
    let genesis = GenesisBuilder::new()
        .fund(owner.address(), U256::from(1_000_000_000u64))
        .contract_with_storage(
            market,
            sereth_code(market_form),
            sereth_genesis_slots(&owner.address(), H256::from_low_u64(50)),
        )
        .contract(router_address(), ContractCode::Bytecode(router_bytecode(market)))
        .build();
    NodeHandle::new(
        genesis,
        NodeConfig::miner(market, MinerPolicy::Standard).coinbase(Address::from_low_u64(0xc0b0)).build(),
    )
}

/// A `set` transaction addressed to the *router*, not the market.
fn routed_set(owner: &SecretKey, nonce: u64, flag: Flag, prev_mark: H256, value: u64) -> Transaction {
    Transaction::sign(
        TxPayload {
            nonce,
            gas_price: 1,
            gas_limit: 400_000,
            to: Some(router_address()),
            value: U256::ZERO,
            input: Fpv::new(flag, prev_mark, H256::from_low_u64(value)).to_calldata(set_selector()),
        },
        owner,
    )
}

fn run_routed_set_updates_market(form: ContractForm) {
    let owner = SecretKey::from_label(1);
    let node = make_node(&owner, form);
    let market = default_contract_address();

    let tx = routed_set(&owner, 0, Flag::Head, genesis_mark(), 60);
    let tx_hash = tx.hash();
    assert!(node.receive_tx(tx, 10));
    node.mine(15_000).expect("block sealed");

    node.with_inner(|inner| {
        let state = inner.chain.head_state();
        // The market's storage changed even though the tx targeted the
        // router: the value is 60 and one set is recorded.
        assert_eq!(read_slot(state, &market, &SLOT_VALUE), H256::from_low_u64(60));
        assert_eq!(read_slot(state, &market, &SLOT_N_SET), H256::from_low_u64(1));
        // The router itself holds no state.
        assert_eq!(read_slot(state, &router_address(), &SLOT_VALUE), H256::ZERO);

        // The SetOk log bubbled out of the child frame and is attributed
        // to the *market*, not the router.
        let (_, receipt) = inner.chain.find_receipt(&tx_hash).expect("receipt stored");
        assert!(receipt.status.is_success());
        let set_logs: Vec<_> =
            receipt.logs.iter().filter(|log| log.topics.contains(&set_ok_topic())).collect();
        assert_eq!(set_logs.len(), 1);
        assert_eq!(set_logs[0].address, market, "log attributed to the callee frame");
    });
}

#[test]
fn routed_set_updates_the_native_market() {
    run_routed_set_updates_market(ContractForm::Native);
}

#[test]
fn routed_set_updates_the_bytecode_market() {
    // Bytecode-calls-bytecode: the router frame descends into the
    // assembled Sereth contract inside the iterative driver.
    run_routed_set_updates_market(ContractForm::Bytecode);
}

#[test]
fn routed_stale_set_is_a_silent_no_op_through_the_hop() {
    let owner = SecretKey::from_label(1);
    let node = make_node(&owner, ContractForm::Native);
    let market = default_contract_address();

    // A fresh set lands…
    let good = routed_set(&owner, 0, Flag::Head, genesis_mark(), 60);
    // …then a second one chains on a *wrong* mark (stale view).
    let stale = routed_set(&owner, 1, Flag::Success, H256::keccak(b"wrong"), 70);
    let stale_hash = stale.hash();
    assert!(node.receive_tx(good, 10));
    assert!(node.receive_tx(stale, 20));
    node.mine(15_000).expect("block sealed");

    node.with_inner(|inner| {
        let state = inner.chain.head_state();
        // The stale set is *in the block* (blockchains persist failures,
        // §III-A) but changed nothing: value still 60, nSet still 1.
        let (_, receipt) = inner.chain.find_receipt(&stale_hash).expect("included");
        assert!(receipt.status.is_success(), "semantic no-op, not a revert");
        assert!(!receipt.logs.iter().any(|log| log.topics.contains(&set_ok_topic())));
        assert_eq!(read_slot(state, &market, &SLOT_VALUE), H256::from_low_u64(60));
        assert_eq!(read_slot(state, &market, &SLOT_N_SET), H256::from_low_u64(1));
    });
}

#[test]
fn routed_and_direct_sets_interleave_on_one_market() {
    let owner = SecretKey::from_label(1);
    let node = make_node(&owner, ContractForm::Native);
    let market = default_contract_address();

    let m0 = genesis_mark();
    let v1 = H256::from_low_u64(60);
    let m1 = compute_mark(&m0, &v1);

    // set(60) through the router, then set(70) directly — the mark chain
    // spans both paths because the chain lives in the market's storage.
    let routed = routed_set(&owner, 0, Flag::Head, m0, 60);
    let direct = Transaction::sign(
        TxPayload {
            nonce: 1,
            gas_price: 1,
            gas_limit: 400_000,
            to: Some(market),
            value: U256::ZERO,
            input: Fpv::new(Flag::Success, m1, H256::from_low_u64(70)).to_calldata(set_selector()),
        },
        &owner,
    );
    assert!(node.receive_tx(routed, 10));
    assert!(node.receive_tx(direct, 20));
    node.mine(15_000).expect("block sealed");

    node.with_inner(|inner| {
        let state = inner.chain.head_state();
        assert_eq!(read_slot(state, &market, &SLOT_VALUE), H256::from_low_u64(70));
        assert_eq!(read_slot(state, &market, &SLOT_N_SET), H256::from_low_u64(2));
    });
}
