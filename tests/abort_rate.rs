//! The abort-rate extension workload (paper §VI motivation): buyers retry
//! one purchase until it lands; stale READ-COMMITTED views cost extra
//! attempts that HMS avoids.

use sereth::sim::scenario::{run_retry_scenario, ScenarioConfig};

fn config(make: fn(u64, u64) -> ScenarioConfig) -> ScenarioConfig {
    let mut config = make(100, 40);
    config.num_buyers = 8;
    config.drain_ms = 10 * 15_000;
    config
}

#[test]
fn every_buyer_eventually_completes() {
    for make in [
        ScenarioConfig::geth_unmodified as fn(u64, u64) -> ScenarioConfig,
        ScenarioConfig::sereth_client,
        ScenarioConfig::semantic_mining,
    ] {
        let (out, stats) = run_retry_scenario(&config(make), 5);
        assert!(
            (stats.completion_rate() - 1.0).abs() < 1e-9,
            "{}: once the price settles, every retry loop terminates",
            out.scenario
        );
        // Attempts are consistent: at least one per buyer, and the log saw
        // every submission.
        assert!(stats.attempts.iter().all(|&a| a >= 1));
        let total_attempts: u64 = stats.attempts.iter().sum();
        assert_eq!(out.metrics.buys_submitted, total_attempts);
    }
}

#[test]
fn hms_reduces_abort_rate() {
    let seeds = [1u64, 2, 3];
    let mut geth = 0.0;
    let mut sereth = 0.0;
    for &seed in &seeds {
        geth += run_retry_scenario(&config(ScenarioConfig::geth_unmodified), seed).1.abort_rate();
        sereth += run_retry_scenario(&config(ScenarioConfig::sereth_client), seed).1.abort_rate();
    }
    assert!(
        geth > sereth,
        "READ-COMMITTED buyers retry more (geth {geth:.2} vs sereth {sereth:.2} total aborts)"
    );
}

#[test]
fn retry_runs_are_deterministic() {
    let cfg = config(ScenarioConfig::sereth_client);
    let (a_out, a_stats) = run_retry_scenario(&cfg, 77);
    let (b_out, b_stats) = run_retry_scenario(&cfg, 77);
    assert_eq!(a_stats.attempts, b_stats.attempts);
    assert_eq!(a_stats.completed_at, b_stats.completed_at);
    assert_eq!(a_out.metrics.buys_submitted, b_out.metrics.buys_submitted);
}
