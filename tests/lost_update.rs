//! The lost-update / interval-proof history of paper §V-B, run through the
//! full stack: "if a sequence occurs such as: set(5), buy(5), set(7),
//! set(5), buy(5), a particular buy(5) can prove that it was sent during
//! the first or the second interval the price was set to 5."

use sereth::chain::genesis::GenesisBuilder;
use sereth::crypto::{Address, SecretKey, H256};
use sereth::hms::fpv::Fpv;
use sereth::hms::mark::{compute_mark, genesis_mark};
use sereth::node::client::{Buyer, Owner};
use sereth::node::contract::{
    buy_ok_topic, default_contract_address, sereth_code, sereth_genesis_slots, set_ok_topic, ContractForm,
};
use sereth::node::miner::MinerPolicy;
use sereth::node::node::{ClientKind, NodeConfig, NodeHandle};
use sereth::types::U256;

struct Fixture {
    node: NodeHandle,
    owner: Owner,
    alice: Buyer,
    mallory: Buyer,
}

fn fixture(policy: MinerPolicy) -> Fixture {
    let owner_key = SecretKey::from_label(1);
    let alice_key = SecretKey::from_label(2);
    let mallory_key = SecretKey::from_label(3);
    let contract = default_contract_address();
    let genesis = GenesisBuilder::new()
        .fund(owner_key.address(), U256::from(1_000_000_000u64))
        .fund(alice_key.address(), U256::from(1_000_000_000u64))
        .fund(mallory_key.address(), U256::from(1_000_000_000u64))
        .contract_with_storage(
            contract,
            sereth_code(ContractForm::Native),
            sereth_genesis_slots(&owner_key.address(), H256::from_low_u64(1)),
        )
        .build();
    let node = NodeHandle::new(
        genesis,
        NodeConfig::miner(contract, policy)
            .kind(ClientKind::Sereth)
            .coinbase(Address::from_low_u64(0xc0b0))
            .build(),
    );
    Fixture {
        node,
        owner: Owner::with_value(owner_key, contract, genesis_mark(), H256::from_low_u64(1), 1),
        alice: Buyer::new(alice_key, contract, ClientKind::Sereth, 1),
        mallory: Buyer::new(mallory_key, contract, ClientKind::Sereth, 1),
    }
}

#[test]
fn both_same_price_intervals_are_distinguishable_and_both_buys_land() {
    let mut fx = fixture(MinerPolicy::Standard);
    let five = H256::from_low_u64(5);
    let seven = H256::from_low_u64(7);
    let m1 = compute_mark(&genesis_mark(), &five);
    let m2 = compute_mark(&m1, &seven);
    let m3 = compute_mark(&m2, &five);
    assert_ne!(m1, m3, "identical price, distinct interval marks");

    // set(5) buy(5)@1 set(7) set(5) buy(5)@2 — in real-time order.
    let txs = [
        fx.owner.next_set(&fx.node, five),
        fx.alice.next_buy_at(m1, five),
        fx.owner.next_set(&fx.node, seven),
        fx.owner.next_set(&fx.node, five),
        fx.mallory.next_buy_at(m3, five),
    ];
    for (i, tx) in txs.iter().enumerate() {
        assert!(fx.node.receive_tx(tx.clone(), 10 * (i as u64 + 1)));
    }
    fx.node.mine(15_000).expect("sealed");

    fx.node.with_inner(|inner| {
        let stored = inner.chain.canonical_block(1).expect("block 1");
        let mut sets_ok = 0;
        let mut buys_ok = 0;
        for receipt in &stored.receipts {
            if receipt.has_event(set_ok_topic()) {
                sets_ok += 1;
            }
            if receipt.has_event(buy_ok_topic()) {
                buys_ok += 1;
            }
        }
        assert_eq!(sets_ok, 3, "all three sets commit — no lost update");
        assert_eq!(buys_ok, 2, "both same-price buys land in their own intervals");
    });

    // The on-chain record proves which interval each buy hit: the offers
    // embed different marks.
    let alice_offer = Fpv::from_calldata(txs[1].input()).unwrap();
    let mallory_offer = Fpv::from_calldata(txs[4].input()).unwrap();
    assert_eq!(alice_offer.prev_mark, m1);
    assert_eq!(mallory_offer.prev_mark, m3);
    assert_eq!(alice_offer.value, mallory_offer.value, "same price…");
    assert_ne!(alice_offer.prev_mark, mallory_offer.prev_mark, "…provably different intervals");
}

#[test]
fn cross_interval_replay_fails() {
    // A buy pinned to interval 1 cannot execute in interval 2, even though
    // the price is identical — the frontrunning defence.
    let mut fx = fixture(MinerPolicy::Standard);
    let five = H256::from_low_u64(5);
    let seven = H256::from_low_u64(7);
    let m1 = compute_mark(&genesis_mark(), &five);

    // Commit set(5), set(7), set(5) first.
    for value in [five, seven, five] {
        let tx = fx.owner.next_set(&fx.node, value);
        fx.node.receive_tx(tx, 10);
    }
    fx.node.mine(15_000).expect("sealed");

    // Now the stale interval-1 offer arrives.
    let stale = fx.alice.next_buy_at(m1, five);
    fx.node.receive_tx(stale, 20_000);
    fx.node.mine(30_000).expect("sealed");

    fx.node.with_inner(|inner| {
        let stored = inner.chain.canonical_block(2).expect("block 2");
        assert_eq!(stored.block.transactions.len(), 1, "the buy is included…");
        assert!(
            !stored.receipts[0].has_event(buy_ok_topic()),
            "…but has no effect: price matches, mark does not"
        );
    });
}

#[test]
fn committed_marks_chain_across_blocks() {
    // The mark lattice survives block boundaries: committed mark after
    // set(5);set(7) equals the hand-computed chain, and a new set chains
    // onto it seamlessly.
    let mut fx = fixture(MinerPolicy::Standard);
    let five = H256::from_low_u64(5);
    let seven = H256::from_low_u64(7);

    let s1 = fx.owner.next_set(&fx.node, five);
    fx.node.receive_tx(s1, 10);
    fx.node.mine(15_000).unwrap();
    let s2 = fx.owner.next_set(&fx.node, seven);
    fx.node.receive_tx(s2, 16_000);
    fx.node.mine(30_000).unwrap();

    let (mark, value) = fx.node.committed_amv();
    assert_eq!(value, seven);
    assert_eq!(mark, compute_mark(&compute_mark(&genesis_mark(), &five), &seven));
    assert_eq!(mark, fx.owner.expected_mark(), "owner's local chain agrees with the ledger");
}
