//! Failure injection: the simulation keeps its invariants under message
//! loss, duplication, long-tail latency, sparse topologies, and pool
//! pressure.

use sereth::consistency::record::{History, MarketSpec};
use sereth::consistency::{seqcon, sss};
use sereth::crypto::H256;
use sereth::hms::mark::genesis_mark;
use sereth::net::latency::{FaultModel, LatencyModel, Partition};
use sereth::net::topology::TopologyKind;
use sereth::node::contract::{
    buy_ok_topic, buy_selector, default_contract_address, set_ok_topic, set_selector,
};
use sereth::sim::scenario::{run_scenario, RunOutput, ScenarioConfig};

fn small(mut config: ScenarioConfig) -> ScenarioConfig {
    config.num_buys = 24;
    config.num_sets = 8;
    config.num_buyers = 6;
    config.drain_ms = 8 * 15_000;
    config
}

#[test]
fn lossy_gossip_degrades_gracefully() {
    let clean = small(ScenarioConfig::sereth_client(24, 8));
    let mut lossy = clean.clone();
    lossy.faults = FaultModel { drop_probability: 0.10, duplicate_probability: 0.0, ..FaultModel::none() };
    lossy.name = "sereth_lossy".into();

    let clean_out = run_scenario(&clean, 3);
    let lossy_out = run_scenario(&lossy, 3);
    // The run must complete with blocks and *some* commits; efficiency may
    // drop but nothing deadlocks or panics.
    assert!(lossy_out.metrics.blocks > 0);
    assert!(lossy_out.metrics.sets_included > 0);
    assert!(clean_out.metrics.blocks > 0);
}

#[test]
fn duplicated_gossip_changes_nothing_observable() {
    let clean = small(ScenarioConfig::sereth_client(24, 8));
    let mut duped = clean.clone();
    duped.faults = FaultModel { drop_probability: 0.0, duplicate_probability: 0.5, ..FaultModel::none() };
    duped.name = "sereth_duped".into();

    let clean_out = run_scenario(&clean, 9);
    let duped_out = run_scenario(&duped, 9);
    // Dedup at the pool and store level makes duplication harmless to
    // ledger-level invariants (identical timing shifts aside).
    assert_eq!(duped_out.metrics.sets_succeeded, duped_out.metrics.sets_submitted);
    assert_eq!(clean_out.metrics.sets_succeeded, clean_out.metrics.sets_submitted);
}

#[test]
fn ring_topology_still_converges() {
    let mut config = small(ScenarioConfig::semantic_mining(24, 8));
    config.topology = TopologyKind::Ring;
    config.name = "semantic_ring".into();
    let out = run_scenario(&config, 4);
    assert!(out.metrics.blocks > 0);
    assert_eq!(out.metrics.sets_succeeded, out.metrics.sets_submitted, "ring gossip delivers everything");
}

#[test]
fn long_tail_latency_is_survivable() {
    let mut config = small(ScenarioConfig::sereth_client(24, 8));
    config.latency = LatencyModel::LongTail { base: 30, tail_mean: 400 };
    config.name = "sereth_longtail".into();
    let out = run_scenario(&config, 6);
    assert!(out.metrics.blocks > 0);
    assert!(out.metrics.buys_included > 0);
}

#[test]
fn tiny_blocks_create_backlog_but_no_loss_of_safety() {
    let mut config = small(ScenarioConfig::semantic_mining(24, 8));
    config.max_txs_per_block = Some(3);
    config.name = "semantic_tiny_blocks".into();
    let out = run_scenario(&config, 8);
    assert!(out.metrics.blocks > 0);
    // Throughput is capacity-bound; whatever commits respects the metric
    // invariants.
    assert!(out.metrics.buys_succeeded <= out.metrics.buys_included);
    assert!(out.metrics.buys_included <= out.metrics.buys_submitted);
}

#[test]
fn star_topology_with_loss_and_duplication_composes() {
    let mut config = small(ScenarioConfig::sereth_client(24, 8));
    config.topology = TopologyKind::Star;
    config.faults = FaultModel { drop_probability: 0.05, duplicate_probability: 0.25, ..FaultModel::none() };
    config.name = "sereth_star_chaos".into();
    let out = run_scenario(&config, 10);
    assert!(out.metrics.blocks > 0);
    assert!(out.metrics.eta_included() <= 1.0);
}

/// Runs the sequential-consistency + SSS audit over a run's committed
/// chain. Faults may *lose* transactions (liveness suffers), but every
/// chain that commits must still satisfy both conditions — they are
/// safety properties.
fn audit_holds(output: &RunOutput) {
    let spec = MarketSpec {
        contract: default_contract_address(),
        set_selector: set_selector(),
        buy_selector: buy_selector(),
        set_ok_topic: set_ok_topic(),
        buy_ok_topic: buy_ok_topic(),
        genesis_mark: genesis_mark(),
        initial_value: H256::from_low_u64(50),
    };
    let history = History::from_blocks(
        &spec,
        output.chain.iter().map(|(block, receipts)| (block, receipts.as_slice())),
    );
    let seq = seqcon::check(&history);
    assert!(seq.is_empty(), "{} under faults: {:?}", output.scenario, seq);
    let report = sss::check(&spec, &history);
    assert!(report.holds(), "{} under faults: {:?}", output.scenario, report.violations);
}

#[test]
fn audits_hold_under_message_loss() {
    for kind in
        [ScenarioConfig::sereth_client as fn(u64, u64) -> ScenarioConfig, ScenarioConfig::semantic_mining]
    {
        let mut config = small(kind(24, 8));
        config.faults =
            FaultModel { drop_probability: 0.15, duplicate_probability: 0.0, ..FaultModel::none() };
        config.name += "_loss_audit";
        audit_holds(&run_scenario(&config, 12));
    }
}

#[test]
fn audits_hold_under_duplication_and_long_tails() {
    let mut config = small(ScenarioConfig::semantic_mining(24, 8));
    config.faults = FaultModel { drop_probability: 0.05, duplicate_probability: 0.4, ..FaultModel::none() };
    config.latency = LatencyModel::LongTail { base: 30, tail_mean: 500 };
    config.name = "semantic_chaos_audit".into();
    audit_holds(&run_scenario(&config, 13));
}

#[test]
fn audits_hold_on_sparse_topologies() {
    for topology in [TopologyKind::Ring, TopologyKind::Star] {
        let mut config = small(ScenarioConfig::sereth_client(24, 8));
        config.topology = topology;
        config.name = "sereth_sparse_audit".into();
        audit_holds(&run_scenario(&config, 14));
    }
}

#[test]
fn network_partition_heals_and_the_run_stays_sound() {
    // Island the two non-miner halves away from the miner (actor 0) for
    // two block intervals in the middle of the submission window, then
    // heal. Clients attached to islanded nodes cannot reach the miner's
    // pool during the cut; after healing, gossip resumes and the chain
    // keeps extending. The committed history must satisfy SSS + seqcon
    // regardless — partitions hurt liveness, never safety.
    let mut config = small(ScenarioConfig::sereth_client(24, 8));
    config.faults = FaultModel {
        partitions: vec![Partition { island: vec![2, 3], from_ms: 8_000, until_ms: 38_000 }],
        ..FaultModel::none()
    };
    config.name = "sereth_partition_audit".into();
    let out = run_scenario(&config, 15);
    assert!(out.metrics.blocks > 0, "the miner keeps sealing through the cut");
    assert!(out.metrics.buys_included > 0, "post-heal gossip delivers the backlog");
    audit_holds(&out);
}

#[test]
fn repeated_partitions_of_the_miner_side_still_commit_the_series() {
    // Two separate episodes cutting nodes {1} and then {2,3} off. The
    // owner's sets chain through the miner's pool; whatever commits must
    // remain a strict series.
    let mut config = small(ScenarioConfig::semantic_mining(24, 8));
    config.faults = FaultModel {
        partitions: vec![
            Partition { island: vec![1], from_ms: 5_000, until_ms: 20_000 },
            Partition { island: vec![2, 3], from_ms: 30_000, until_ms: 50_000 },
        ],
        ..FaultModel::none()
    };
    config.name = "semantic_repeated_partitions".into();
    let out = run_scenario(&config, 16);
    assert!(out.metrics.blocks > 0);
    audit_holds(&out);
}
