//! Interoperability (paper §V): Sereth clients "operated interchangeably
//! with Geth clients on the same network … deployment would not require a
//! fork", and benefits are "proportional to the participation" (§V-C).

use sereth::node::node::ClientKind;
use sereth::sim::scenario::{run_scenario, ScenarioConfig};

fn mixed(num_sereth: usize) -> ScenarioConfig {
    let mut config = ScenarioConfig::sereth_client(30, 15);
    config.num_buyers = 8;
    config.drain_ms = 6 * 15_000;
    config.node_kinds = (0..config.num_nodes)
        .map(|i| if i < num_sereth { ClientKind::Sereth } else { ClientKind::Geth })
        .collect();
    config.name = format!("mixed_{num_sereth}");
    config
}

#[test]
fn mixed_networks_converge_and_commit() {
    for num_sereth in 0..=4 {
        let out = run_scenario(&mixed(num_sereth), 77);
        assert!(out.metrics.blocks > 0, "{}: blocks were produced", out.scenario);
        assert_eq!(
            out.metrics.sets_succeeded, out.metrics.sets_submitted,
            "{}: owner sets commit regardless of the client mix",
            out.scenario
        );
        // Buys flow and a nonzero fraction succeeds even without HMS.
        assert!(out.metrics.buys_included > 0, "{}", out.scenario);
    }
}

#[test]
fn efficiency_grows_with_participation() {
    // Average over seeds; full participation must beat none by a clear
    // margin, and partial participation sits in between (within noise).
    let seeds = [1u64, 2, 3, 4];
    let eta_at = |num_sereth: usize| {
        seeds.iter().map(|&s| run_scenario(&mixed(num_sereth), s).metrics.eta_buys()).sum::<f64>()
            / seeds.len() as f64
    };
    let none = eta_at(0);
    let half = eta_at(2);
    let full = eta_at(4);
    assert!(full > none, "full participation ({full:.2}) must beat none ({none:.2})");
    assert!(
        half >= none - 0.05 && half <= full + 0.05,
        "partial participation should sit between: none {none:.2}, half {half:.2}, full {full:.2}"
    );
}

#[test]
fn geth_buyers_on_sereth_network_still_work() {
    // Buyers inherit their node's kind; a network where only the miner is
    // Sereth leaves buyers on Geth nodes with committed views, but
    // nothing breaks.
    let mut config = mixed(1);
    config.name = "miner_only_sereth".into();
    let out = run_scenario(&config, 42);
    assert!(out.metrics.blocks > 0);
    assert_eq!(out.metrics.sets_succeeded, out.metrics.sets_submitted);
}
