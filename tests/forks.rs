//! Fork handling: two miners racing on one network must fork and then
//! converge to a single canonical chain by the longest-chain rule — the
//! same resolution logic HMS borrows for its series selection (§III-C:
//! "this logic mirrors that of the blockchain, in which branches are
//! resolved by taking the longest branch").

use sereth::chain::genesis::GenesisBuilder;
use sereth::crypto::{Address, SecretKey, H256};
use sereth::net::latency::{FaultModel, LatencyModel};
use sereth::net::sim::{Actor, NetworkConfig, Simulation};
use sereth::net::topology::TopologyKind;
use sereth::node::contract::{default_contract_address, sereth_code, sereth_genesis_slots, ContractForm};
use sereth::node::messages::Msg;
use sereth::node::miner::MinerPolicy;
use sereth::node::node::{BlockSchedule, NodeActor, NodeConfig, NodeHandle};
use sereth::types::U256;

fn build_network(miner_intervals: &[Option<u64>]) -> (Vec<NodeHandle>, Simulation<Msg>) {
    let owner = SecretKey::from_label(1);
    let genesis = GenesisBuilder::new()
        .fund(owner.address(), U256::from(1_000_000_000u64))
        .contract_with_storage(
            default_contract_address(),
            sereth_code(ContractForm::Native),
            sereth_genesis_slots(&owner.address(), H256::from_low_u64(50)),
        )
        .build();

    let nodes: Vec<NodeHandle> = miner_intervals
        .iter()
        .enumerate()
        .map(|(i, interval)| {
            NodeHandle::new(
                genesis.clone(),
                match interval {
                    Some(ms) => NodeConfig::miner(default_contract_address(), MinerPolicy::Standard)
                        .schedule(BlockSchedule::Fixed(*ms))
                        .coinbase(Address::from_low_u64(0xc000 + i as u64))
                        .build(),
                    None => NodeConfig::geth(default_contract_address()).build(),
                },
            )
        })
        .collect();

    let n = nodes.len();
    let actors: Vec<Box<dyn Actor<Msg>>> = nodes
        .iter()
        .enumerate()
        .map(|(i, node)| {
            Box::new(NodeActor { handle: node.clone(), peers: (0..n).filter(|&p| p != i).collect() })
                as Box<dyn Actor<Msg>>
        })
        .collect();
    let net = NetworkConfig {
        topology: TopologyKind::Complete,
        latency: LatencyModel::Uniform { min: 20, max: 120 },
        faults: FaultModel::none(),
    };
    let sim = Simulation::new(actors, &net, 99);
    (nodes, sim)
}

#[test]
fn competing_miners_fork_and_converge() {
    let (nodes, mut sim) = build_network(&[Some(15_000), Some(16_000), None, None]);
    sim.schedule(15_000, 0, Msg::MineTick);
    sim.schedule(16_000, 1, Msg::MineTick);
    // Stop just after a 15 s tick that no 16 s tick shadows: miner 0 has
    // sealed the strictly longest chain and it has had time to gossip, so
    // every equal-height tie is resolved.
    sim.run_until(601_500);

    // All four nodes agree on the head.
    let heads: Vec<H256> = nodes.iter().map(|n| n.with_inner(|i| i.chain.head_hash())).collect();
    assert!(heads.windows(2).all(|w| w[0] == w[1]), "network converged to one head: {heads:?}");

    let head_number = nodes[0].head_number();
    assert!(head_number >= 30, "plenty of blocks were produced, got {head_number}");

    // Forks genuinely occurred: some stored blocks are off-canonical
    // (both miners tick simultaneously at t = 240 000 and 480 000).
    let (stored, canonical) = nodes[2].with_inner(|i| (i.chain.len(), i.chain.canonical_chain().count()));
    assert!(stored > canonical, "side-chain blocks exist (stored {stored} > canonical {canonical})");

    // Longest-chain mining makes the two miners extend each other; both
    // hold substantial shares of the canonical chain, with the faster
    // miner ahead.
    let share = |coinbase: u64| {
        nodes[2].with_inner(|i| {
            i.chain
                .canonical_chain()
                .filter(|b| b.block.header.miner == Address::from_low_u64(coinbase))
                .count()
        })
    };
    let miner0_blocks = share(0xc000);
    let miner1_blocks = share(0xc001);
    assert!(miner0_blocks >= miner1_blocks, "the faster miner leads ({miner0_blocks} vs {miner1_blocks})");
    assert!(miner1_blocks > 0, "the slower miner still lands blocks");
}

#[test]
fn single_miner_network_has_no_side_chains() {
    let (nodes, mut sim) = build_network(&[Some(15_000), None, None]);
    sim.schedule(15_000, 0, Msg::MineTick);
    // A horizon strictly between mine ticks so the final block has
    // propagated before measuring.
    sim.run_until(295_000);
    for node in &nodes {
        let (stored, canonical) = node.with_inner(|i| (i.chain.len(), i.chain.canonical_chain().count()));
        assert_eq!(stored, canonical, "no forks with a single miner");
    }
    let heads: Vec<u64> = nodes.iter().map(NodeHandle::head_number).collect();
    assert!(heads.iter().all(|&h| h == heads[0]), "all nodes at the same height");
}

#[test]
fn transactions_gossip_to_every_pool() {
    let (nodes, mut sim) = build_network(&[None, None, None, None, None]);
    // Submit one transfer at node 3; with no miner it must reach every
    // pool through flood gossip.
    let key = SecretKey::from_label(1);
    let tx = sereth::node::client::transfer(&key, 0, Address::from_low_u64(9), U256::from(5u64), 1);
    sim.schedule(10, 3, Msg::SubmitTx(tx.clone()));
    sim.run_until(60_000);
    for (i, node) in nodes.iter().enumerate() {
        assert!(node.pool_contains(&tx.hash()), "node {i} has the gossiped transaction");
    }
}

#[test]
fn reorg_rewinds_the_committed_amv() {
    use sereth::hms::fpv::{Flag, Fpv};
    use sereth::hms::mark::{compute_mark, genesis_mark};
    use sereth::node::contract::set_selector;
    use sereth::node::node::BlockReceipt;
    use sereth::types::{Transaction, TxPayload};

    // Two isolated miners from the same genesis; we drive them by hand.
    let (nodes, _sim) = build_network(&[Some(15_000), Some(15_000), None]);
    let node_a = &nodes[0];
    let node_b = &nodes[1];

    // Node A commits set(60) in its own block A1.
    let owner = SecretKey::from_label(1);
    let set_tx = Transaction::sign(
        TxPayload {
            nonce: 0,
            gas_price: 1,
            gas_limit: 200_000,
            to: Some(default_contract_address()),
            value: U256::ZERO,
            input: Fpv::new(Flag::Head, genesis_mark(), H256::from_low_u64(60)).to_calldata(set_selector()),
        },
        &owner,
    );
    assert!(node_a.receive_tx(set_tx, 10));
    node_a.mine(15_000).expect("A1 sealed");
    let m1 = compute_mark(&genesis_mark(), &H256::from_low_u64(60));
    assert_eq!(node_a.committed_amv(), (m1, H256::from_low_u64(60)), "A sees its set");

    // Node B, never having heard the set, mines two empty blocks: the
    // strictly longer branch.
    let b1 = node_b.mine(15_001).expect("B1 sealed");
    let b2 = node_b.mine(30_001).expect("B2 sealed");

    // A adopts B's branch by the longest-chain rule…
    assert_eq!(node_a.receive_block(b1), BlockReceipt::Imported);
    assert_eq!(node_a.receive_block(b2), BlockReceipt::Imported);
    assert_eq!(node_a.head_number(), 2, "A reorged to the longer branch");

    // …and the committed view rewinds with it: the set's effect is gone
    // from A's canonical state.
    assert_eq!(
        node_a.committed_amv(),
        (genesis_mark(), H256::from_low_u64(50)),
        "the committed AMV follows the canonical chain across the reorg"
    );
}

#[test]
fn split_brain_partition_diverges_then_converges_on_heal() {
    use sereth::net::latency::Partition;

    // Two miners (0: 15 s, 1: 17 s) and two observers. A partition cuts
    // {1, 3} off from {0, 2} between 60 s and 240 s: each side keeps
    // mining its own branch (split brain). After the heal the slower
    // miner's side must reorg onto the faster miner's longer branch.
    let owner = SecretKey::from_label(1);
    let genesis = GenesisBuilder::new()
        .fund(owner.address(), U256::from(1_000_000_000u64))
        .contract_with_storage(
            default_contract_address(),
            sereth_code(ContractForm::Native),
            sereth_genesis_slots(&owner.address(), H256::from_low_u64(50)),
        )
        .build();
    let intervals = [Some(15_000u64), Some(17_000u64), None, None];
    let nodes: Vec<NodeHandle> = intervals
        .iter()
        .enumerate()
        .map(|(i, interval)| {
            NodeHandle::new(
                genesis.clone(),
                match interval {
                    Some(ms) => NodeConfig::miner(default_contract_address(), MinerPolicy::Standard)
                        .schedule(BlockSchedule::Fixed(*ms))
                        .coinbase(Address::from_low_u64(0xc000 + i as u64))
                        .build(),
                    None => NodeConfig::geth(default_contract_address()).build(),
                },
            )
        })
        .collect();
    let n = nodes.len();
    let actors: Vec<Box<dyn Actor<Msg>>> = nodes
        .iter()
        .enumerate()
        .map(|(i, node)| {
            Box::new(NodeActor { handle: node.clone(), peers: (0..n).filter(|&p| p != i).collect() })
                as Box<dyn Actor<Msg>>
        })
        .collect();
    let net = NetworkConfig {
        topology: TopologyKind::Complete,
        latency: LatencyModel::Uniform { min: 20, max: 120 },
        faults: FaultModel {
            partitions: vec![Partition { island: vec![1, 3], from_ms: 60_000, until_ms: 240_000 }],
            ..FaultModel::none()
        },
    };
    let mut sim = Simulation::new(actors, &net, 7);
    sim.schedule(15_000, 0, Msg::MineTick);
    sim.schedule(17_000, 1, Msg::MineTick);
    sim.run_until(400_000);

    // Convergence: all four nodes on one head.
    let heads: Vec<H256> = nodes.iter().map(|n| n.with_inner(|i| i.chain.head_hash())).collect();
    assert!(heads.windows(2).all(|w| w[0] == w[1]), "heads after heal: {heads:?}");

    // The split genuinely produced side-chain blocks: the slower miner
    // sealed ~10 blocks during the cut that lost to the faster branch.
    let (stored, canonical) = nodes[3].with_inner(|i| (i.chain.len(), i.chain.canonical_chain().count()));
    assert!(
        stored >= canonical + 5,
        "the abandoned branch is still stored (stored {stored}, canonical {canonical})"
    );

    // The canonical chain is dominated by the faster miner.
    let fast = nodes[2].with_inner(|i| {
        i.chain.canonical_chain().filter(|b| b.block.header.miner == Address::from_low_u64(0xc000)).count()
    });
    assert!(fast * 2 > canonical, "the faster miner holds the majority ({fast}/{canonical})");
}

#[test]
fn orphan_buffer_heals_deep_divergence_delivered_in_reverse() {
    use sereth::node::node::BlockReceipt;

    // One miner extends five blocks; an isolated peer receives them
    // newest-first. Each block orphans until its parent arrives; the
    // orphan buffer must then connect the whole run transitively.
    let (nodes, _sim) = build_network(&[Some(15_000), None]);
    let miner = &nodes[0];
    let peer = &nodes[1];

    let blocks: Vec<_> = (1..=5u64).map(|i| miner.mine(i * 15_000).expect("sealed")).collect();
    assert_eq!(miner.head_number(), 5);

    for block in blocks.iter().rev().take(4) {
        assert_eq!(peer.receive_block(block.clone()), BlockReceipt::Orphaned);
        assert_eq!(peer.head_number(), 0, "nothing connects until the parent chain arrives");
    }
    // Block 1 connects to genesis and unblocks every buffered orphan.
    assert_eq!(peer.receive_block(blocks[0].clone()), BlockReceipt::Imported);
    assert_eq!(peer.head_number(), 5, "the orphan walk connected all five blocks");
    assert_eq!(peer.with_inner(|i| i.chain.head_hash()), miner.with_inner(|i| i.chain.head_hash()));
}
