//! Collection strategies (mirrors `proptest::collection`).

use crate::{Strategy, TestRng};

/// A size specification for generated collections.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // exclusive
}

impl From<usize> for SizeRange {
    fn from(exact: usize) -> Self {
        Self { lo: exact, hi: exact + 1 }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(range: core::ops::Range<usize>) -> Self {
        assert!(range.start < range.end, "empty vec size range");
        Self { lo: range.start, hi: range.end }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(range: core::ops::RangeInclusive<usize>) -> Self {
        Self { lo: *range.start(), hi: *range.end() + 1 }
    }
}

/// A strategy producing `Vec`s of values drawn from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}

/// Strategy returned by [`vec()`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.usize_in(self.size.lo, self.size.hi);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
