//! Sampling helpers (mirrors `proptest::sample`).

use crate::{Arbitrary, TestRng};

/// An index into a collection whose length is only known at use time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Index(u64);

impl Index {
    /// Resolves the index against a collection of length `len`.
    ///
    /// # Panics
    ///
    /// Panics if `len` is zero.
    pub fn index(&self, len: usize) -> usize {
        assert!(len > 0, "Index::index on an empty collection");
        (self.0 % len as u64) as usize
    }
}

impl Arbitrary for Index {
    fn arbitrary(rng: &mut TestRng) -> Self {
        Self(rng.next_u64())
    }
}
