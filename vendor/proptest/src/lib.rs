//! Minimal, API-compatible subset of the `proptest` crate.
//!
//! The build environment is offline, so this vendor stub reimplements the
//! slice of proptest the workspace's property tests use: the
//! [`proptest!`] macro, [`Strategy`] with `prop_map`, [`Just`], ranges
//! and tuples as strategies, [`collection::vec`], [`sample::Index`],
//! `prop_oneof!`, and the `prop_assert*` / `prop_assume!` macros.
//!
//! **No shrinking.** On failure the harness reports the case number and
//! the deterministic per-test seed; re-running the test replays the same
//! sequence. Shrinking is a debugging convenience, not a soundness
//! requirement, and the full engine is far outside what a vendor stub
//! should carry. Set `PROPTEST_CASES` to override the case count.

use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};

pub mod collection;
pub mod sample;

/// Re-exports that mirror `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest, Arbitrary, Just,
        ProptestConfig, Strategy, TestCaseError,
    };
    /// Mirrors `proptest::prelude::prop` (module alias).
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
    }
}

/// The deterministic RNG driving value generation.
pub struct TestRng(SmallRng);

impl TestRng {
    /// A fresh RNG for the named test, honouring `PROPTEST_SEED`.
    pub fn for_test(name: &str) -> Self {
        let base = match std::env::var("PROPTEST_SEED") {
            Ok(seed) => seed.parse::<u64>().unwrap_or(0xcafe),
            Err(_) => 0xcafe,
        };
        // FNV-1a over the name decorrelates sibling tests.
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        for byte in name.bytes() {
            hash ^= byte as u64;
            hash = hash.wrapping_mul(0x1000_0000_01b3);
        }
        Self(SmallRng::seed_from_u64(base ^ hash))
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }

    /// A uniform `usize` in `[lo, hi)`.
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        if lo >= hi {
            return lo;
        }
        self.0.gen_range(lo..hi)
    }
}

/// Why a test case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` failed — the case is skipped, not failed.
    Reject(String),
    /// A `prop_assert*` failed — the test fails.
    Fail(String),
}

impl TestCaseError {
    /// Constructs a rejection (used by `prop_assume!`).
    pub fn reject(reason: impl Into<String>) -> Self {
        Self::Reject(reason.into())
    }

    /// Constructs a failure (used by `prop_assert*`).
    pub fn fail(reason: impl Into<String>) -> Self {
        Self::Fail(reason.into())
    }
}

/// Harness configuration (mirrors `proptest::test_runner::Config`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(256);
        Self { cases }
    }
}

/// A generator of values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The `prop_map` combinator.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// A uniform choice among boxed strategies (backs `prop_oneof!`).
pub struct Union<T>(pub Vec<BoxedStrategy<T>>);

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        assert!(!self.0.is_empty(), "prop_oneof! needs at least one arm");
        let pick = rng.usize_in(0, self.0.len());
        self.0[pick].generate(rng)
    }
}

/// Types with a canonical generation strategy, used via [`any`].
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The canonical strategy for `A` (mirrors `proptest::arbitrary::any`).
pub fn any<A: Arbitrary>() -> AnyStrategy<A> {
    AnyStrategy(std::marker::PhantomData)
}

/// Strategy returned by [`any`].
pub struct AnyStrategy<A>(std::marker::PhantomData<fn() -> A>);

impl<A: Arbitrary> Strategy for AnyStrategy<A> {
    type Value = A;

    fn generate(&self, rng: &mut TestRng) -> A {
        A::arbitrary(rng)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                let mut bytes = [0u8; core::mem::size_of::<$t>()];
                for chunk in bytes.chunks_mut(8) {
                    let word = rng.next_u64().to_le_bytes();
                    chunk.copy_from_slice(&word[..chunk.len()]);
                }
                <$t>::from_le_bytes(bytes)
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
    fn arbitrary(rng: &mut TestRng) -> Self {
        core::array::from_fn(|_| T::arbitrary(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                (self.start as i128 + draw as i128) as $t
            }
        }

        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as i128 - start as i128) as u128 + 1;
                let draw = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                (start as i128 + draw as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);

/// Runs the generate-and-check loop for one property (used by the
/// [`proptest!`] expansion; not part of the public proptest API).
pub fn run_proptest(
    config: &ProptestConfig,
    name: &str,
    mut case: impl FnMut(&mut TestRng) -> Result<(), TestCaseError>,
) {
    let mut rng = TestRng::for_test(name);
    let mut passed = 0u32;
    let mut rejected = 0u64;
    let max_rejects = (config.cases as u64).saturating_mul(32).max(4096);
    while passed < config.cases {
        match case(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject(_)) => {
                rejected += 1;
                assert!(
                    rejected <= max_rejects,
                    "property '{name}': too many prop_assume! rejections \
                     ({rejected} rejects for {passed} passes)"
                );
            }
            Err(TestCaseError::Fail(message)) => {
                panic!(
                    "property '{name}' failed after {passed} passing case(s): {message}\n\
                     (deterministic seed; rerun the test to replay, or set PROPTEST_SEED)"
                )
            }
        }
    }
}

/// Defines property tests: `proptest! { #[test] fn name(x in strategy) { body } }`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr)) => {};
    (($config:expr)
     $(#[$attr:meta])*
     fn $name:ident($($pattern:pat in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$attr])*
        fn $name() {
            let __config = $config;
            $crate::run_proptest(&__config, stringify!($name), |__rng| {
                $(let $pattern = $crate::Strategy::generate(&($strategy), __rng);)+
                let __result: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                __result
            });
        }
        $crate::__proptest_items! { ($config) $($rest)* }
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}", stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (__l, __r) => {
                if !(*__l == *__r) {
                    return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                        "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                        stringify!($left), stringify!($right), __l, __r
                    )));
                }
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        match (&$left, &$right) {
            (__l, __r) => {
                if !(*__l == *__r) {
                    return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                        "{}\n  left: {:?}\n right: {:?}", format!($($fmt)*), __l, __r
                    )));
                }
            }
        }
    };
}

/// Fails the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (__l, __r) => {
                if *__l == *__r {
                    return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                        "assertion failed: `{} != {}`\n  both: {:?}",
                        stringify!($left),
                        stringify!($right),
                        __l
                    )));
                }
            }
        }
    };
}

/// Skips the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

/// A uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        let mut rng = crate::TestRng::for_test("bounds");
        let strat = (0u64..10, 5usize..6);
        for _ in 0..200 {
            let (a, b) = crate::Strategy::generate(&strat, &mut rng);
            assert!(a < 10);
            assert_eq!(b, 5);
        }
    }

    #[test]
    fn oneof_and_map_compose() {
        let mut rng = crate::TestRng::for_test("compose");
        let strat = prop_oneof![(1u64..5).prop_map(|v| v * 10), Just(99u64)];
        for _ in 0..100 {
            let v = crate::Strategy::generate(&strat, &mut rng);
            assert!(v == 99 || (10..50).contains(&v));
        }
    }

    proptest! {
        #[test]
        fn harness_runs_and_assumes(a in any::<u8>(), b in 1u8..20) {
            prop_assume!(a != 255);
            prop_assert!(b >= 1);
            prop_assert_eq!(b as u16 + a as u16, a as u16 + b as u16);
            prop_assert_ne!(b, 0);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn config_override_applies(v in any::<[u8; 32]>()) {
            prop_assert_eq!(v.len(), 32);
        }
    }

    #[test]
    #[should_panic(expected = "failed after")]
    fn failures_panic_with_context() {
        crate::run_proptest(&ProptestConfig::with_cases(4), "always_fails", |_rng| {
            Err(crate::TestCaseError::fail("expected failure"))
        });
    }
}
