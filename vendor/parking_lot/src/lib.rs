//! Minimal, API-compatible subset of `parking_lot`, backed by `std::sync`.
//!
//! The build environment is offline; this vendor stub provides the
//! `parking_lot` surface the workspace uses — [`Mutex`] and [`RwLock`]
//! whose guards are returned directly from `lock`/`read`/`write` instead
//! of through a poison-tracking `Result`. Poisoning is handled the way
//! `parking_lot` behaves: a panic while holding a lock does not poison
//! it for subsequent users.

use std::sync::{self, PoisonError};

/// A mutual-exclusion lock whose `lock` returns the guard directly.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard for [`Mutex`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Self { inner: sync::Mutex::new(value) }
    }

    /// Consumes the mutex, returning the value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(guard),
            Err(sync::TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock whose `read`/`write` return guards directly.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// Shared-access RAII guard for [`RwLock`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Exclusive-access RAII guard for [`RwLock`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new lock holding `value`.
    pub const fn new(value: T) -> Self {
        Self { inner: sync::RwLock::new(value) }
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts shared read access without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.inner.try_read() {
            Ok(guard) => Some(guard),
            Err(sync::TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn panic_does_not_poison() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 0, "lock stays usable after a holder panicked");
    }
}
