//! Minimal, API-compatible subset of the `criterion` benchmark harness.
//!
//! The build environment is offline, so this vendor stub reimplements the
//! criterion surface the workspace's benches use: `criterion_group!` /
//! `criterion_main!`, [`Criterion::bench_function`], benchmark groups
//! with [`BenchmarkId`] / [`Throughput`], `iter`, and `iter_batched`.
//!
//! Methodology: each benchmark is warmed up (~0.2 s), then timed over
//! adaptive batches until ~1 s of samples accumulate; the median, mean,
//! and p95 per-iteration times are printed. No plots, no statistics
//! engine — numbers comparable across two runs on the same machine,
//! which is all the repo's A/B benches need. `CRITERION_QUICK=1` cuts
//! the measurement budget by 10× for smoke runs.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque value barrier (re-export of `std::hint::black_box`).
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// How batched inputs are sized (accepted, not acted on, by the stub).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// A benchmark identifier: `function/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        Self { name: format!("{}/{}", function.into(), parameter) }
    }

    /// An id carrying only a parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self { name: parameter.to_string() }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name)
    }
}

fn measurement_budget() -> Duration {
    if std::env::var("CRITERION_QUICK").is_ok_and(|v| v != "0") {
        Duration::from_millis(100)
    } else {
        Duration::from_secs(1)
    }
}

/// The timing loop handed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
    budget: Duration,
}

impl Bencher {
    fn new() -> Self {
        Self { samples: Vec::new(), budget: measurement_budget() }
    }

    /// Times `routine` repeatedly.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // Warm-up and batch sizing: grow the batch until one batch takes
        // ≥ 1 ms, so Instant overhead stays < 0.1 %.
        let mut batch = 1u64;
        let warmup_deadline = Instant::now() + self.budget / 5;
        loop {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let took = start.elapsed();
            if took >= Duration::from_millis(1) || batch >= 1 << 24 {
                break;
            }
            batch *= 2;
            if Instant::now() > warmup_deadline {
                break;
            }
        }
        let deadline = Instant::now() + self.budget;
        while Instant::now() < deadline {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            self.samples.push(start.elapsed() / batch as u32);
            if self.samples.len() >= 200 {
                break;
            }
        }
    }

    /// Times `routine` over fresh inputs built by `setup` (setup time is
    /// excluded from the measurement).
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        let deadline = Instant::now() + self.budget;
        while Instant::now() < deadline {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed());
            if self.samples.len() >= 200 {
                break;
            }
        }
    }

    fn report(&mut self, name: &str, throughput: Option<Throughput>) {
        if self.samples.is_empty() {
            println!("{name:<60} (no samples)");
            return;
        }
        self.samples.sort_unstable();
        let median = self.samples[self.samples.len() / 2];
        let p95 = self.samples[(self.samples.len() * 95 / 100).min(self.samples.len() - 1)];
        let mean = self.samples.iter().sum::<Duration>() / self.samples.len() as u32;
        let extra = match throughput {
            Some(Throughput::Bytes(bytes)) => {
                let gib = bytes as f64 / mean.as_secs_f64() / (1u64 << 30) as f64;
                format!("  {gib:8.3} GiB/s")
            }
            Some(Throughput::Elements(elements)) => {
                let meps = elements as f64 / mean.as_secs_f64() / 1e6;
                format!("  {meps:8.3} Melem/s")
            }
            None => String::new(),
        };
        println!(
            "{name:<60} median {}  mean {}  p95 {}{extra}",
            fmt_duration(median),
            fmt_duration(mean),
            fmt_duration(p95),
        );
    }
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos:>7} ns")
    } else if nanos < 1_000_000 {
        format!("{:>7.2} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:>7.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:>7.2} s ", nanos as f64 / 1e9)
    }
}

/// The benchmark manager.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Runs a single benchmark.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_one(name, None, f);
        self
    }

    /// Runs a single parameterized benchmark.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        run_one(&id.to_string(), None, |b| f(b, input));
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _parent: self, name: name.into(), throughput: None }
    }
}

fn run_one(name: &str, throughput: Option<Throughput>, mut f: impl FnMut(&mut Bencher)) {
    let mut bencher = Bencher::new();
    f(&mut bencher);
    bencher.report(name, throughput);
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the throughput annotation for subsequent benches.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Accepted for API compatibility; the stub sizes samples by time.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the stub uses a fixed budget.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs a benchmark within the group.
    pub fn bench_function(&mut self, id: impl Display, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), self.throughput, &mut f);
        self
    }

    /// Runs a parameterized benchmark within the group.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), self.throughput, |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($function:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($function(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_api_smoke() {
        std::env::set_var("CRITERION_QUICK", "1");
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        let mut group = c.benchmark_group("group");
        group.throughput(Throughput::Elements(4));
        group.bench_with_input(BenchmarkId::new("sum", 4), &[1u64, 2, 3, 4][..], |b, xs| {
            b.iter(|| xs.iter().sum::<u64>())
        });
        group.finish();
    }
}
