//! Minimal, API-compatible subset of the `bytes` crate.
//!
//! The build environment is offline, so the real crates.io `bytes` cannot
//! be fetched. This vendor stub implements the slice of the API the
//! workspace actually uses: a cheaply-cloneable, immutable byte buffer
//! with zero-copy `slice`. Cloning shares the underlying allocation via
//! `Arc`, exactly the property the codebase relies on when calldata is
//! copied into pool entries, blocks, and HMS pending views.

use std::borrow::Borrow;
use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// An immutable, reference-counted byte buffer.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Option<Arc<[u8]>>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Creates an empty buffer (no allocation).
    pub const fn new() -> Self {
        Self { data: None, start: 0, end: 0 }
    }

    /// Wraps a static byte slice. The stub copies it into a shared
    /// allocation once; the real crate keeps the static reference, an
    /// optimization invisible to callers.
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Self::copy_from_slice(bytes)
    }

    /// Copies `data` into a fresh shared allocation.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        let arc: Arc<[u8]> = Arc::from(data);
        let end = arc.len();
        Self { data: Some(arc), start: 0, end }
    }

    /// Number of bytes in the buffer.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// `true` if the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// A zero-copy sub-slice sharing this buffer's allocation.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds or decreasing.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Self {
        let len = self.len();
        let begin = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let finish = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => len,
        };
        assert!(begin <= finish, "slice range reversed: {begin}..{finish}");
        assert!(finish <= len, "slice end {finish} out of bounds (len {len})");
        Self { data: self.data.clone(), start: self.start + begin, end: self.start + finish }
    }

    /// The bytes as a plain slice.
    pub fn as_slice(&self) -> &[u8] {
        match &self.data {
            Some(arc) => &arc[self.start..self.end],
            None => &[],
        }
    }

    /// Copies the bytes into a `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        let arc: Arc<[u8]> = Arc::from(data.into_boxed_slice());
        let end = arc.len();
        Self { data: Some(arc), start: 0, end }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(data: &'static [u8]) -> Self {
        Self::from_static(data)
    }
}

impl<const N: usize> From<&'static [u8; N]> for Bytes {
    fn from(data: &'static [u8; N]) -> Self {
        Self::from_static(data)
    }
}

impl From<Box<[u8]>> for Bytes {
    fn from(data: Box<[u8]>) -> Self {
        let arc: Arc<[u8]> = Arc::from(data);
        let end = arc.len();
        Self { data: Some(arc), start: 0, end }
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<T: IntoIterator<Item = u8>>(iter: T) -> Self {
        Self::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = core::slice::Iter<'a, u8>;

    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialEq<Bytes> for [u8] {
    fn eq(&self, other: &Bytes) -> bool {
        self == other.as_slice()
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<core::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> core::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl core::hash::Hash for Bytes {
    fn hash<H: core::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl core::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "b\"")?;
        for &byte in self.as_slice() {
            write!(f, "\\x{byte:02x}")?;
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_shares_and_bounds() {
        let b = Bytes::from(vec![1u8, 2, 3, 4, 5]);
        let s = b.slice(1..4);
        assert_eq!(&s[..], &[2, 3, 4]);
        assert_eq!(s.slice(..2), Bytes::from(vec![2u8, 3]));
        assert_eq!(b.len(), 5);
    }

    #[test]
    fn empty_and_static() {
        assert!(Bytes::new().is_empty());
        assert_eq!(&Bytes::from_static(b"abc")[..], b"abc");
    }
}
