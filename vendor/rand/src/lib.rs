//! Minimal, API-compatible subset of the `rand` crate (v0.8 surface).
//!
//! The build environment is offline, so this vendor stub supplies the
//! pieces the workspace uses: the [`Rng`]/[`RngCore`]/[`SeedableRng`]
//! traits, [`rngs::SmallRng`] (xoshiro256++), uniform range sampling for
//! integers and `f64`, `gen_bool`, and [`seq::SliceRandom::shuffle`].
//! Determinism per seed is the only distributional property the
//! simulations rely on; the exact stream differs from crates.io `rand`.

/// Low-level source of randomness.
pub trait RngCore {
    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing random value generation, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform sample from `range` (`Range` or `RangeInclusive` over
    /// integers, `Range` over `f64`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: distributions::uniform::SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability out of range: {p}");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Converts 64 random bits to a float in `[0, 1)`.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    /// The seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Builds the RNG from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the RNG from a `u64`, expanded via SplitMix64.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64(state);
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// Concrete RNG implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, non-cryptographic RNG (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks(8).enumerate() {
                let mut word = [0u8; 8];
                word.copy_from_slice(chunk);
                s[i] = u64::from_le_bytes(word);
            }
            // An all-zero state is a fixed point of xoshiro; nudge it.
            if s == [0; 4] {
                s = [0x9e37_79b9_7f4a_7c15, 1, 2, 3];
            }
            Self { s }
        }
    }
}

/// Uniform sampling support.
pub mod distributions {
    /// Range sampling (the `SampleRange` machinery `gen_range` uses).
    pub mod uniform {
        use crate::{unit_f64, RngCore};
        use std::ops::{Range, RangeInclusive};

        /// A range from which a single value can be drawn.
        pub trait SampleRange<T> {
            /// Draws one uniform sample.
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
        }

        macro_rules! impl_int_range {
            ($($t:ty),*) => {$(
                impl SampleRange<$t> for Range<$t> {
                    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                        assert!(self.start < self.end, "empty gen_range range");
                        let span = (self.end as i128 - self.start as i128) as u128;
                        let draw = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                        (self.start as i128 + draw as i128) as $t
                    }
                }

                impl SampleRange<$t> for RangeInclusive<$t> {
                    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                        let (start, end) = (*self.start(), *self.end());
                        assert!(start <= end, "empty gen_range range");
                        let span = (end as i128 - start as i128) as u128 + 1;
                        let draw = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                        (start as i128 + draw as i128) as $t
                    }
                }
            )*};
        }

        impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

        impl SampleRange<f64> for Range<f64> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
                assert!(self.start < self.end, "empty gen_range range");
                self.start + (self.end - self.start) * unit_f64(rng.next_u64())
            }
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use crate::Rng;

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1000), b.gen_range(0u64..1000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(10u64..=20);
            assert!((10..=20).contains(&v));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let i = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(2);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut data: Vec<u32> = (0..50).collect();
        data.shuffle(&mut rng);
        let mut sorted = data.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(data, sorted, "50 elements virtually never shuffle to identity");
    }
}
