//! # sereth — Read-Uncommitted Transactions for Smart Contract Performance
//!
//! A from-scratch Rust reproduction of Cook, Painter, Peterson & Dechev,
//! *Read-Uncommitted Transactions for Smart Contract Performance*
//! (ICDCS 2019): the **Hash-Mark-Set (HMS)** algorithm that serves
//! READ-UNCOMMITTED views of pending smart-contract state, the **Runtime
//! Argument Augmentation (RAA)** interpreter technique that delivers those
//! views to contracts, and the complete Ethereum-like substrate the
//! paper's evaluation ran on — chain, VM, TxPool, gossip network, clients,
//! and miners.
//!
//! The umbrella crate re-exports each subsystem under a stable name:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`crypto`] | `sereth-crypto` | Keccak-256, addresses, signatures, RLP, Merkle |
//! | [`types`] | `sereth-types` | U256, transactions, blocks, receipts |
//! | [`vm`] | `sereth-vm` | EVM-subset interpreter, assembler, gas, **RAA hook** |
//! | [`chain`] | `sereth-chain` | state, executor, TxPool, validation, store |
//! | [`hms`] | `sereth-core` | **the paper's contribution**: Algorithms 1–3 |
//! | [`raa`] | `sereth-raa` | incremental, concurrent RAA view service over pool events |
//! | [`consistency`] | `sereth-consistency` | sequential-consistency & SSS history checkers |
//! | [`net`] | `sereth-net` | deterministic discrete-event network |
//! | [`node`] | `sereth-node` | Sereth contract, Geth/Sereth clients, miners |
//! | [`sim`] | `sereth-sim` | Figure 2 scenarios, metrics, statistics |
//! | [`telemetry`] | `sereth-telemetry` | lock-free metrics registry, phase tracing, exporters |
//!
//! # Quickstart
//!
//! ```
//! use sereth::sim::scenario::{run_scenario, ScenarioConfig};
//!
//! // One small data point of the paper's Figure 2.
//! let mut config = ScenarioConfig::semantic_mining(10, 5);
//! config.drain_ms = 60_000;
//! let out = run_scenario(&config, 42);
//! println!("eta = {:.2}", out.metrics.eta_buys());
//! assert!(out.metrics.sets_succeeded == out.metrics.sets_submitted);
//! ```
//!
//! See `examples/` for runnable scenarios and `DESIGN.md` for the full
//! experiment index.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use sereth_chain as chain;
pub use sereth_consistency as consistency;
pub use sereth_core as hms;
pub use sereth_crypto as crypto;
pub use sereth_net as net;
pub use sereth_node as node;
pub use sereth_raa as raa;
pub use sereth_sim as sim;
pub use sereth_telemetry as telemetry;
pub use sereth_types as types;
pub use sereth_vm as vm;
