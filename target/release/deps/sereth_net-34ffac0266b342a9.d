/root/repo/target/release/deps/sereth_net-34ffac0266b342a9.d: crates/net/src/lib.rs crates/net/src/latency.rs crates/net/src/sim.rs crates/net/src/topology.rs

/root/repo/target/release/deps/libsereth_net-34ffac0266b342a9.rlib: crates/net/src/lib.rs crates/net/src/latency.rs crates/net/src/sim.rs crates/net/src/topology.rs

/root/repo/target/release/deps/libsereth_net-34ffac0266b342a9.rmeta: crates/net/src/lib.rs crates/net/src/latency.rs crates/net/src/sim.rs crates/net/src/topology.rs

crates/net/src/lib.rs:
crates/net/src/latency.rs:
crates/net/src/sim.rs:
crates/net/src/topology.rs:
