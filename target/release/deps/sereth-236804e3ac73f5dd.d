/root/repo/target/release/deps/sereth-236804e3ac73f5dd.d: src/lib.rs

/root/repo/target/release/deps/libsereth-236804e3ac73f5dd.rlib: src/lib.rs

/root/repo/target/release/deps/libsereth-236804e3ac73f5dd.rmeta: src/lib.rs

src/lib.rs:
