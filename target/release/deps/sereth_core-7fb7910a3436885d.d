/root/repo/target/release/deps/sereth_core-7fb7910a3436885d.d: crates/core/src/lib.rs crates/core/src/fpv.rs crates/core/src/hms.rs crates/core/src/mark.rs crates/core/src/process.rs crates/core/src/provider.rs crates/core/src/series.rs

/root/repo/target/release/deps/libsereth_core-7fb7910a3436885d.rlib: crates/core/src/lib.rs crates/core/src/fpv.rs crates/core/src/hms.rs crates/core/src/mark.rs crates/core/src/process.rs crates/core/src/provider.rs crates/core/src/series.rs

/root/repo/target/release/deps/libsereth_core-7fb7910a3436885d.rmeta: crates/core/src/lib.rs crates/core/src/fpv.rs crates/core/src/hms.rs crates/core/src/mark.rs crates/core/src/process.rs crates/core/src/provider.rs crates/core/src/series.rs

crates/core/src/lib.rs:
crates/core/src/fpv.rs:
crates/core/src/hms.rs:
crates/core/src/mark.rs:
crates/core/src/process.rs:
crates/core/src/provider.rs:
crates/core/src/series.rs:
