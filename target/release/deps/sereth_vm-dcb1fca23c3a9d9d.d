/root/repo/target/release/deps/sereth_vm-dcb1fca23c3a9d9d.d: crates/vm/src/lib.rs crates/vm/src/abi.rs crates/vm/src/asm.rs crates/vm/src/error.rs crates/vm/src/exec.rs crates/vm/src/gas.rs crates/vm/src/interpreter.rs crates/vm/src/opcode.rs crates/vm/src/raa.rs crates/vm/src/subcall.rs crates/vm/src/trace.rs

/root/repo/target/release/deps/libsereth_vm-dcb1fca23c3a9d9d.rlib: crates/vm/src/lib.rs crates/vm/src/abi.rs crates/vm/src/asm.rs crates/vm/src/error.rs crates/vm/src/exec.rs crates/vm/src/gas.rs crates/vm/src/interpreter.rs crates/vm/src/opcode.rs crates/vm/src/raa.rs crates/vm/src/subcall.rs crates/vm/src/trace.rs

/root/repo/target/release/deps/libsereth_vm-dcb1fca23c3a9d9d.rmeta: crates/vm/src/lib.rs crates/vm/src/abi.rs crates/vm/src/asm.rs crates/vm/src/error.rs crates/vm/src/exec.rs crates/vm/src/gas.rs crates/vm/src/interpreter.rs crates/vm/src/opcode.rs crates/vm/src/raa.rs crates/vm/src/subcall.rs crates/vm/src/trace.rs

crates/vm/src/lib.rs:
crates/vm/src/abi.rs:
crates/vm/src/asm.rs:
crates/vm/src/error.rs:
crates/vm/src/exec.rs:
crates/vm/src/gas.rs:
crates/vm/src/interpreter.rs:
crates/vm/src/opcode.rs:
crates/vm/src/raa.rs:
crates/vm/src/subcall.rs:
crates/vm/src/trace.rs:
