/root/repo/target/release/deps/pwv-a05c355c6f9b2098.d: crates/bench/src/bin/pwv.rs

/root/repo/target/release/deps/pwv-a05c355c6f9b2098: crates/bench/src/bin/pwv.rs

crates/bench/src/bin/pwv.rs:
