/root/repo/target/release/deps/sereth_raa-721872020222c6bd.d: crates/raa/src/lib.rs crates/raa/src/metrics.rs crates/raa/src/provider.rs crates/raa/src/service.rs

/root/repo/target/release/deps/libsereth_raa-721872020222c6bd.rlib: crates/raa/src/lib.rs crates/raa/src/metrics.rs crates/raa/src/provider.rs crates/raa/src/service.rs

/root/repo/target/release/deps/libsereth_raa-721872020222c6bd.rmeta: crates/raa/src/lib.rs crates/raa/src/metrics.rs crates/raa/src/provider.rs crates/raa/src/service.rs

crates/raa/src/lib.rs:
crates/raa/src/metrics.rs:
crates/raa/src/provider.rs:
crates/raa/src/service.rs:
