/root/repo/target/release/deps/sereth_sim-2d80f22c7a8a5443.d: crates/sim/src/lib.rs crates/sim/src/experiment.rs crates/sim/src/many_markets.rs crates/sim/src/metrics.rs crates/sim/src/report.rs crates/sim/src/retry.rs crates/sim/src/scenario.rs crates/sim/src/stats.rs crates/sim/src/workload.rs

/root/repo/target/release/deps/libsereth_sim-2d80f22c7a8a5443.rlib: crates/sim/src/lib.rs crates/sim/src/experiment.rs crates/sim/src/many_markets.rs crates/sim/src/metrics.rs crates/sim/src/report.rs crates/sim/src/retry.rs crates/sim/src/scenario.rs crates/sim/src/stats.rs crates/sim/src/workload.rs

/root/repo/target/release/deps/libsereth_sim-2d80f22c7a8a5443.rmeta: crates/sim/src/lib.rs crates/sim/src/experiment.rs crates/sim/src/many_markets.rs crates/sim/src/metrics.rs crates/sim/src/report.rs crates/sim/src/retry.rs crates/sim/src/scenario.rs crates/sim/src/stats.rs crates/sim/src/workload.rs

crates/sim/src/lib.rs:
crates/sim/src/experiment.rs:
crates/sim/src/many_markets.rs:
crates/sim/src/metrics.rs:
crates/sim/src/report.rs:
crates/sim/src/retry.rs:
crates/sim/src/scenario.rs:
crates/sim/src/stats.rs:
crates/sim/src/workload.rs:
