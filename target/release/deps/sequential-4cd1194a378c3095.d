/root/repo/target/release/deps/sequential-4cd1194a378c3095.d: crates/bench/src/bin/sequential.rs

/root/repo/target/release/deps/sequential-4cd1194a378c3095: crates/bench/src/bin/sequential.rs

crates/bench/src/bin/sequential.rs:
