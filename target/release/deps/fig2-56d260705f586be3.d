/root/repo/target/release/deps/fig2-56d260705f586be3.d: crates/bench/src/bin/fig2.rs

/root/repo/target/release/deps/fig2-56d260705f586be3: crates/bench/src/bin/fig2.rs

crates/bench/src/bin/fig2.rs:
