/root/repo/target/release/deps/sereth_node-b900db96319af5fd.d: crates/node/src/lib.rs crates/node/src/client.rs crates/node/src/contract.rs crates/node/src/messages.rs crates/node/src/miner.rs crates/node/src/node.rs

/root/repo/target/release/deps/libsereth_node-b900db96319af5fd.rlib: crates/node/src/lib.rs crates/node/src/client.rs crates/node/src/contract.rs crates/node/src/messages.rs crates/node/src/miner.rs crates/node/src/node.rs

/root/repo/target/release/deps/libsereth_node-b900db96319af5fd.rmeta: crates/node/src/lib.rs crates/node/src/client.rs crates/node/src/contract.rs crates/node/src/messages.rs crates/node/src/miner.rs crates/node/src/node.rs

crates/node/src/lib.rs:
crates/node/src/client.rs:
crates/node/src/contract.rs:
crates/node/src/messages.rs:
crates/node/src/miner.rs:
crates/node/src/node.rs:
