/root/repo/target/release/deps/participation-52a0a6ba29fe674f.d: crates/bench/src/bin/participation.rs

/root/repo/target/release/deps/participation-52a0a6ba29fe674f: crates/bench/src/bin/participation.rs

crates/bench/src/bin/participation.rs:
