/root/repo/target/release/deps/sereth_crypto-abc66ddcfa705517.d: crates/crypto/src/lib.rs crates/crypto/src/address.rs crates/crypto/src/hash.rs crates/crypto/src/keccak.rs crates/crypto/src/merkle.rs crates/crypto/src/rlp.rs crates/crypto/src/sig.rs

/root/repo/target/release/deps/libsereth_crypto-abc66ddcfa705517.rlib: crates/crypto/src/lib.rs crates/crypto/src/address.rs crates/crypto/src/hash.rs crates/crypto/src/keccak.rs crates/crypto/src/merkle.rs crates/crypto/src/rlp.rs crates/crypto/src/sig.rs

/root/repo/target/release/deps/libsereth_crypto-abc66ddcfa705517.rmeta: crates/crypto/src/lib.rs crates/crypto/src/address.rs crates/crypto/src/hash.rs crates/crypto/src/keccak.rs crates/crypto/src/merkle.rs crates/crypto/src/rlp.rs crates/crypto/src/sig.rs

crates/crypto/src/lib.rs:
crates/crypto/src/address.rs:
crates/crypto/src/hash.rs:
crates/crypto/src/keccak.rs:
crates/crypto/src/merkle.rs:
crates/crypto/src/rlp.rs:
crates/crypto/src/sig.rs:
