/root/repo/target/release/deps/raa_scale-8b5fb96f78a6ea3e.d: crates/bench/src/bin/raa_scale.rs

/root/repo/target/release/deps/raa_scale-8b5fb96f78a6ea3e: crates/bench/src/bin/raa_scale.rs

crates/bench/src/bin/raa_scale.rs:
