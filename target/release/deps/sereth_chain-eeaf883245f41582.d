/root/repo/target/release/deps/sereth_chain-eeaf883245f41582.d: crates/chain/src/lib.rs crates/chain/src/builder.rs crates/chain/src/executor.rs crates/chain/src/genesis.rs crates/chain/src/state.rs crates/chain/src/store.rs crates/chain/src/txpool.rs crates/chain/src/validation.rs

/root/repo/target/release/deps/libsereth_chain-eeaf883245f41582.rlib: crates/chain/src/lib.rs crates/chain/src/builder.rs crates/chain/src/executor.rs crates/chain/src/genesis.rs crates/chain/src/state.rs crates/chain/src/store.rs crates/chain/src/txpool.rs crates/chain/src/validation.rs

/root/repo/target/release/deps/libsereth_chain-eeaf883245f41582.rmeta: crates/chain/src/lib.rs crates/chain/src/builder.rs crates/chain/src/executor.rs crates/chain/src/genesis.rs crates/chain/src/state.rs crates/chain/src/store.rs crates/chain/src/txpool.rs crates/chain/src/validation.rs

crates/chain/src/lib.rs:
crates/chain/src/builder.rs:
crates/chain/src/executor.rs:
crates/chain/src/genesis.rs:
crates/chain/src/state.rs:
crates/chain/src/store.rs:
crates/chain/src/txpool.rs:
crates/chain/src/validation.rs:
