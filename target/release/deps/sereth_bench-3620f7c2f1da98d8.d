/root/repo/target/release/deps/sereth_bench-3620f7c2f1da98d8.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libsereth_bench-3620f7c2f1da98d8.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libsereth_bench-3620f7c2f1da98d8.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
