/root/repo/target/release/deps/sereth_types-0609e8e375f32c7f.d: crates/types/src/lib.rs crates/types/src/block.rs crates/types/src/receipt.rs crates/types/src/transaction.rs crates/types/src/u256.rs

/root/repo/target/release/deps/libsereth_types-0609e8e375f32c7f.rlib: crates/types/src/lib.rs crates/types/src/block.rs crates/types/src/receipt.rs crates/types/src/transaction.rs crates/types/src/u256.rs

/root/repo/target/release/deps/libsereth_types-0609e8e375f32c7f.rmeta: crates/types/src/lib.rs crates/types/src/block.rs crates/types/src/receipt.rs crates/types/src/transaction.rs crates/types/src/u256.rs

crates/types/src/lib.rs:
crates/types/src/block.rs:
crates/types/src/receipt.rs:
crates/types/src/transaction.rs:
crates/types/src/u256.rs:
