/root/repo/target/release/deps/abort_rate-a14f96b80bab52b8.d: crates/bench/src/bin/abort_rate.rs

/root/repo/target/release/deps/abort_rate-a14f96b80bab52b8: crates/bench/src/bin/abort_rate.rs

crates/bench/src/bin/abort_rate.rs:
