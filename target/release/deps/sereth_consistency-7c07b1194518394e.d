/root/repo/target/release/deps/sereth_consistency-7c07b1194518394e.d: crates/consistency/src/lib.rs crates/consistency/src/record.rs crates/consistency/src/seqcon.rs crates/consistency/src/sss.rs

/root/repo/target/release/deps/libsereth_consistency-7c07b1194518394e.rlib: crates/consistency/src/lib.rs crates/consistency/src/record.rs crates/consistency/src/seqcon.rs crates/consistency/src/sss.rs

/root/repo/target/release/deps/libsereth_consistency-7c07b1194518394e.rmeta: crates/consistency/src/lib.rs crates/consistency/src/record.rs crates/consistency/src/seqcon.rs crates/consistency/src/sss.rs

crates/consistency/src/lib.rs:
crates/consistency/src/record.rs:
crates/consistency/src/seqcon.rs:
crates/consistency/src/sss.rs:
