/root/repo/target/release/deps/raa_service-11cbf2bbd07b5e0d.d: crates/bench/benches/raa_service.rs

/root/repo/target/release/deps/raa_service-11cbf2bbd07b5e0d: crates/bench/benches/raa_service.rs

crates/bench/benches/raa_service.rs:
