/root/repo/target/release/deps/ablations-388935fdc2574263.d: crates/bench/src/bin/ablations.rs

/root/repo/target/release/deps/ablations-388935fdc2574263: crates/bench/src/bin/ablations.rs

crates/bench/src/bin/ablations.rs:
