/root/repo/target/release/examples/semantic_mining-4a80bce0d791d8e9.d: examples/semantic_mining.rs

/root/repo/target/release/examples/semantic_mining-4a80bce0d791d8e9: examples/semantic_mining.rs

examples/semantic_mining.rs:
