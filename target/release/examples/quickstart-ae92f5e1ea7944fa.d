/root/repo/target/release/examples/quickstart-ae92f5e1ea7944fa.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-ae92f5e1ea7944fa: examples/quickstart.rs

examples/quickstart.rs:
