/root/repo/target/release/examples/raa_service-888aa641aad4ff3f.d: examples/raa_service.rs

/root/repo/target/release/examples/raa_service-888aa641aad4ff3f: examples/raa_service.rs

examples/raa_service.rs:
