/root/repo/target/debug/deps/sereth_net-c5fe1802a5f7f549.d: crates/net/src/lib.rs crates/net/src/latency.rs crates/net/src/sim.rs crates/net/src/topology.rs

/root/repo/target/debug/deps/libsereth_net-c5fe1802a5f7f549.rmeta: crates/net/src/lib.rs crates/net/src/latency.rs crates/net/src/sim.rs crates/net/src/topology.rs

crates/net/src/lib.rs:
crates/net/src/latency.rs:
crates/net/src/sim.rs:
crates/net/src/topology.rs:
