/root/repo/target/debug/deps/ablations-27fabad12fad863b.d: crates/bench/src/bin/ablations.rs

/root/repo/target/debug/deps/libablations-27fabad12fad863b.rmeta: crates/bench/src/bin/ablations.rs

crates/bench/src/bin/ablations.rs:
