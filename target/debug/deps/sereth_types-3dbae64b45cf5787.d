/root/repo/target/debug/deps/sereth_types-3dbae64b45cf5787.d: crates/types/src/lib.rs crates/types/src/block.rs crates/types/src/receipt.rs crates/types/src/transaction.rs crates/types/src/u256.rs

/root/repo/target/debug/deps/sereth_types-3dbae64b45cf5787: crates/types/src/lib.rs crates/types/src/block.rs crates/types/src/receipt.rs crates/types/src/transaction.rs crates/types/src/u256.rs

crates/types/src/lib.rs:
crates/types/src/block.rs:
crates/types/src/receipt.rs:
crates/types/src/transaction.rs:
crates/types/src/u256.rs:
