/root/repo/target/debug/deps/equivalence-ee4eafc37d3e51ca.d: crates/raa/tests/equivalence.rs Cargo.toml

/root/repo/target/debug/deps/libequivalence-ee4eafc37d3e51ca.rmeta: crates/raa/tests/equivalence.rs Cargo.toml

crates/raa/tests/equivalence.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
