/root/repo/target/debug/deps/sereth_node-de0aec73bfc49348.d: crates/node/src/lib.rs crates/node/src/client.rs crates/node/src/contract.rs crates/node/src/messages.rs crates/node/src/miner.rs crates/node/src/node.rs

/root/repo/target/debug/deps/sereth_node-de0aec73bfc49348: crates/node/src/lib.rs crates/node/src/client.rs crates/node/src/contract.rs crates/node/src/messages.rs crates/node/src/miner.rs crates/node/src/node.rs

crates/node/src/lib.rs:
crates/node/src/client.rs:
crates/node/src/contract.rs:
crates/node/src/messages.rs:
crates/node/src/miner.rs:
crates/node/src/node.rs:
