/root/repo/target/debug/deps/raa_service-7546ea7fd68d6b57.d: crates/bench/benches/raa_service.rs

/root/repo/target/debug/deps/raa_service-7546ea7fd68d6b57: crates/bench/benches/raa_service.rs

crates/bench/benches/raa_service.rs:
