/root/repo/target/debug/deps/props-60e87882485d4d24.d: crates/vm/tests/props.rs Cargo.toml

/root/repo/target/debug/deps/libprops-60e87882485d4d24.rmeta: crates/vm/tests/props.rs Cargo.toml

crates/vm/tests/props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
