/root/repo/target/debug/deps/sereth_raa-127ef0b4d60c2cfa.d: crates/raa/src/lib.rs crates/raa/src/metrics.rs crates/raa/src/provider.rs crates/raa/src/service.rs

/root/repo/target/debug/deps/libsereth_raa-127ef0b4d60c2cfa.rlib: crates/raa/src/lib.rs crates/raa/src/metrics.rs crates/raa/src/provider.rs crates/raa/src/service.rs

/root/repo/target/debug/deps/libsereth_raa-127ef0b4d60c2cfa.rmeta: crates/raa/src/lib.rs crates/raa/src/metrics.rs crates/raa/src/provider.rs crates/raa/src/service.rs

crates/raa/src/lib.rs:
crates/raa/src/metrics.rs:
crates/raa/src/provider.rs:
crates/raa/src/service.rs:
