/root/repo/target/debug/deps/sereth-6b1e55cf7d838b6b.d: src/lib.rs

/root/repo/target/debug/deps/libsereth-6b1e55cf7d838b6b.rmeta: src/lib.rs

src/lib.rs:
