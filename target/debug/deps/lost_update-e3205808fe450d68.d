/root/repo/target/debug/deps/lost_update-e3205808fe450d68.d: tests/lost_update.rs

/root/repo/target/debug/deps/lost_update-e3205808fe450d68: tests/lost_update.rs

tests/lost_update.rs:
