/root/repo/target/debug/deps/sereth_bench-629b71bb08aa81f1.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/sereth_bench-629b71bb08aa81f1: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
