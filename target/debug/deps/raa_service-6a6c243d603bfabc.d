/root/repo/target/debug/deps/raa_service-6a6c243d603bfabc.d: crates/bench/benches/raa_service.rs Cargo.toml

/root/repo/target/debug/deps/libraa_service-6a6c243d603bfabc.rmeta: crates/bench/benches/raa_service.rs Cargo.toml

crates/bench/benches/raa_service.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
