/root/repo/target/debug/deps/fig2-d12de1b00cd7c580.d: crates/bench/src/bin/fig2.rs

/root/repo/target/debug/deps/fig2-d12de1b00cd7c580: crates/bench/src/bin/fig2.rs

crates/bench/src/bin/fig2.rs:
