/root/repo/target/debug/deps/forks-47aa4f3f28bfb471.d: tests/forks.rs

/root/repo/target/debug/deps/forks-47aa4f3f28bfb471: tests/forks.rs

tests/forks.rs:
