/root/repo/target/debug/deps/sereth_net-1ea181602e5c3c91.d: crates/net/src/lib.rs crates/net/src/latency.rs crates/net/src/sim.rs crates/net/src/topology.rs

/root/repo/target/debug/deps/sereth_net-1ea181602e5c3c91: crates/net/src/lib.rs crates/net/src/latency.rs crates/net/src/sim.rs crates/net/src/topology.rs

crates/net/src/lib.rs:
crates/net/src/latency.rs:
crates/net/src/sim.rs:
crates/net/src/topology.rs:
