/root/repo/target/debug/deps/sequential-f5551776e3808ea4.d: crates/bench/src/bin/sequential.rs Cargo.toml

/root/repo/target/debug/deps/libsequential-f5551776e3808ea4.rmeta: crates/bench/src/bin/sequential.rs Cargo.toml

crates/bench/src/bin/sequential.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
