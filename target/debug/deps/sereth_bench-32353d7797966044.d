/root/repo/target/debug/deps/sereth_bench-32353d7797966044.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libsereth_bench-32353d7797966044.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libsereth_bench-32353d7797966044.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
