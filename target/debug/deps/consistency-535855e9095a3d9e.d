/root/repo/target/debug/deps/consistency-535855e9095a3d9e.d: tests/consistency.rs Cargo.toml

/root/repo/target/debug/deps/libconsistency-535855e9095a3d9e.rmeta: tests/consistency.rs Cargo.toml

tests/consistency.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
