/root/repo/target/debug/deps/end_to_end-4578b8f8c746ac1e.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-4578b8f8c746ac1e: tests/end_to_end.rs

tests/end_to_end.rs:
