/root/repo/target/debug/deps/raa_service-0ef4b5353b9bdf0c.d: crates/bench/benches/raa_service.rs

/root/repo/target/debug/deps/raa_service-0ef4b5353b9bdf0c: crates/bench/benches/raa_service.rs

crates/bench/benches/raa_service.rs:
