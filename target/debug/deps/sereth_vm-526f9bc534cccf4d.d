/root/repo/target/debug/deps/sereth_vm-526f9bc534cccf4d.d: crates/vm/src/lib.rs crates/vm/src/abi.rs crates/vm/src/asm.rs crates/vm/src/error.rs crates/vm/src/exec.rs crates/vm/src/gas.rs crates/vm/src/interpreter.rs crates/vm/src/opcode.rs crates/vm/src/raa.rs crates/vm/src/subcall.rs crates/vm/src/trace.rs

/root/repo/target/debug/deps/libsereth_vm-526f9bc534cccf4d.rlib: crates/vm/src/lib.rs crates/vm/src/abi.rs crates/vm/src/asm.rs crates/vm/src/error.rs crates/vm/src/exec.rs crates/vm/src/gas.rs crates/vm/src/interpreter.rs crates/vm/src/opcode.rs crates/vm/src/raa.rs crates/vm/src/subcall.rs crates/vm/src/trace.rs

/root/repo/target/debug/deps/libsereth_vm-526f9bc534cccf4d.rmeta: crates/vm/src/lib.rs crates/vm/src/abi.rs crates/vm/src/asm.rs crates/vm/src/error.rs crates/vm/src/exec.rs crates/vm/src/gas.rs crates/vm/src/interpreter.rs crates/vm/src/opcode.rs crates/vm/src/raa.rs crates/vm/src/subcall.rs crates/vm/src/trace.rs

crates/vm/src/lib.rs:
crates/vm/src/abi.rs:
crates/vm/src/asm.rs:
crates/vm/src/error.rs:
crates/vm/src/exec.rs:
crates/vm/src/gas.rs:
crates/vm/src/interpreter.rs:
crates/vm/src/opcode.rs:
crates/vm/src/raa.rs:
crates/vm/src/subcall.rs:
crates/vm/src/trace.rs:
