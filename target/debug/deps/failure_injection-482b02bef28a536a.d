/root/repo/target/debug/deps/failure_injection-482b02bef28a536a.d: tests/failure_injection.rs

/root/repo/target/debug/deps/failure_injection-482b02bef28a536a: tests/failure_injection.rs

tests/failure_injection.rs:
