/root/repo/target/debug/deps/props-0cbbe51a07e97b6e.d: crates/crypto/tests/props.rs Cargo.toml

/root/repo/target/debug/deps/libprops-0cbbe51a07e97b6e.rmeta: crates/crypto/tests/props.rs Cargo.toml

crates/crypto/tests/props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
