/root/repo/target/debug/deps/sequential-dbd74d6f65f58738.d: crates/bench/src/bin/sequential.rs Cargo.toml

/root/repo/target/debug/deps/libsequential-dbd74d6f65f58738.rmeta: crates/bench/src/bin/sequential.rs Cargo.toml

crates/bench/src/bin/sequential.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
