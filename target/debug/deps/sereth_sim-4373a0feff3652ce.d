/root/repo/target/debug/deps/sereth_sim-4373a0feff3652ce.d: crates/sim/src/lib.rs crates/sim/src/experiment.rs crates/sim/src/many_markets.rs crates/sim/src/metrics.rs crates/sim/src/report.rs crates/sim/src/retry.rs crates/sim/src/scenario.rs crates/sim/src/stats.rs crates/sim/src/workload.rs

/root/repo/target/debug/deps/libsereth_sim-4373a0feff3652ce.rmeta: crates/sim/src/lib.rs crates/sim/src/experiment.rs crates/sim/src/many_markets.rs crates/sim/src/metrics.rs crates/sim/src/report.rs crates/sim/src/retry.rs crates/sim/src/scenario.rs crates/sim/src/stats.rs crates/sim/src/workload.rs

crates/sim/src/lib.rs:
crates/sim/src/experiment.rs:
crates/sim/src/many_markets.rs:
crates/sim/src/metrics.rs:
crates/sim/src/report.rs:
crates/sim/src/retry.rs:
crates/sim/src/scenario.rs:
crates/sim/src/stats.rs:
crates/sim/src/workload.rs:
