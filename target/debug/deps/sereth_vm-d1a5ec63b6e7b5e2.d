/root/repo/target/debug/deps/sereth_vm-d1a5ec63b6e7b5e2.d: crates/vm/src/lib.rs crates/vm/src/abi.rs crates/vm/src/asm.rs crates/vm/src/error.rs crates/vm/src/exec.rs crates/vm/src/gas.rs crates/vm/src/interpreter.rs crates/vm/src/opcode.rs crates/vm/src/raa.rs crates/vm/src/subcall.rs crates/vm/src/trace.rs Cargo.toml

/root/repo/target/debug/deps/libsereth_vm-d1a5ec63b6e7b5e2.rmeta: crates/vm/src/lib.rs crates/vm/src/abi.rs crates/vm/src/asm.rs crates/vm/src/error.rs crates/vm/src/exec.rs crates/vm/src/gas.rs crates/vm/src/interpreter.rs crates/vm/src/opcode.rs crates/vm/src/raa.rs crates/vm/src/subcall.rs crates/vm/src/trace.rs Cargo.toml

crates/vm/src/lib.rs:
crates/vm/src/abi.rs:
crates/vm/src/asm.rs:
crates/vm/src/error.rs:
crates/vm/src/exec.rs:
crates/vm/src/gas.rs:
crates/vm/src/interpreter.rs:
crates/vm/src/opcode.rs:
crates/vm/src/raa.rs:
crates/vm/src/subcall.rs:
crates/vm/src/trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
