/root/repo/target/debug/deps/checkers-9c421640f2938453.d: crates/bench/benches/checkers.rs Cargo.toml

/root/repo/target/debug/deps/libcheckers-9c421640f2938453.rmeta: crates/bench/benches/checkers.rs Cargo.toml

crates/bench/benches/checkers.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
