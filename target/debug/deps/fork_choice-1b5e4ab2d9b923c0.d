/root/repo/target/debug/deps/fork_choice-1b5e4ab2d9b923c0.d: crates/chain/tests/fork_choice.rs

/root/repo/target/debug/deps/fork_choice-1b5e4ab2d9b923c0: crates/chain/tests/fork_choice.rs

crates/chain/tests/fork_choice.rs:
