/root/repo/target/debug/deps/sereth_raa-ebbf55f8a918ecc4.d: crates/raa/src/lib.rs crates/raa/src/metrics.rs crates/raa/src/provider.rs crates/raa/src/service.rs Cargo.toml

/root/repo/target/debug/deps/libsereth_raa-ebbf55f8a918ecc4.rmeta: crates/raa/src/lib.rs crates/raa/src/metrics.rs crates/raa/src/provider.rs crates/raa/src/service.rs Cargo.toml

crates/raa/src/lib.rs:
crates/raa/src/metrics.rs:
crates/raa/src/provider.rs:
crates/raa/src/service.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
