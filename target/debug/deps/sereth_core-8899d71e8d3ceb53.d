/root/repo/target/debug/deps/sereth_core-8899d71e8d3ceb53.d: crates/core/src/lib.rs crates/core/src/fpv.rs crates/core/src/hms.rs crates/core/src/mark.rs crates/core/src/process.rs crates/core/src/provider.rs crates/core/src/series.rs

/root/repo/target/debug/deps/libsereth_core-8899d71e8d3ceb53.rmeta: crates/core/src/lib.rs crates/core/src/fpv.rs crates/core/src/hms.rs crates/core/src/mark.rs crates/core/src/process.rs crates/core/src/provider.rs crates/core/src/series.rs

crates/core/src/lib.rs:
crates/core/src/fpv.rs:
crates/core/src/hms.rs:
crates/core/src/mark.rs:
crates/core/src/process.rs:
crates/core/src/provider.rs:
crates/core/src/series.rs:
