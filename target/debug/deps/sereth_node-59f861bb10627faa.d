/root/repo/target/debug/deps/sereth_node-59f861bb10627faa.d: crates/node/src/lib.rs crates/node/src/client.rs crates/node/src/contract.rs crates/node/src/messages.rs crates/node/src/miner.rs crates/node/src/node.rs Cargo.toml

/root/repo/target/debug/deps/libsereth_node-59f861bb10627faa.rmeta: crates/node/src/lib.rs crates/node/src/client.rs crates/node/src/contract.rs crates/node/src/messages.rs crates/node/src/miner.rs crates/node/src/node.rs Cargo.toml

crates/node/src/lib.rs:
crates/node/src/client.rs:
crates/node/src/contract.rs:
crates/node/src/messages.rs:
crates/node/src/miner.rs:
crates/node/src/node.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
