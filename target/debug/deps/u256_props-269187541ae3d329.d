/root/repo/target/debug/deps/u256_props-269187541ae3d329.d: crates/types/tests/u256_props.rs

/root/repo/target/debug/deps/u256_props-269187541ae3d329: crates/types/tests/u256_props.rs

crates/types/tests/u256_props.rs:
