/root/repo/target/debug/deps/props-b572b8968af3df37.d: crates/crypto/tests/props.rs

/root/repo/target/debug/deps/props-b572b8968af3df37: crates/crypto/tests/props.rs

crates/crypto/tests/props.rs:
