/root/repo/target/debug/deps/participation-7539f50ee23a4657.d: crates/bench/src/bin/participation.rs Cargo.toml

/root/repo/target/debug/deps/libparticipation-7539f50ee23a4657.rmeta: crates/bench/src/bin/participation.rs Cargo.toml

crates/bench/src/bin/participation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
