/root/repo/target/debug/deps/checkers-15279ca447ab0558.d: crates/bench/benches/checkers.rs

/root/repo/target/debug/deps/checkers-15279ca447ab0558: crates/bench/benches/checkers.rs

crates/bench/benches/checkers.rs:
