/root/repo/target/debug/deps/extraction-05b60b897cf0ac95.d: crates/consistency/tests/extraction.rs

/root/repo/target/debug/deps/extraction-05b60b897cf0ac95: crates/consistency/tests/extraction.rs

crates/consistency/tests/extraction.rs:
