/root/repo/target/debug/deps/raa_scale-7ebf6c3e037e167d.d: crates/bench/src/bin/raa_scale.rs

/root/repo/target/debug/deps/libraa_scale-7ebf6c3e037e167d.rmeta: crates/bench/src/bin/raa_scale.rs

crates/bench/src/bin/raa_scale.rs:
