/root/repo/target/debug/deps/sereth_vm-7755a068534dabf3.d: crates/vm/src/lib.rs crates/vm/src/abi.rs crates/vm/src/asm.rs crates/vm/src/error.rs crates/vm/src/exec.rs crates/vm/src/gas.rs crates/vm/src/interpreter.rs crates/vm/src/opcode.rs crates/vm/src/raa.rs crates/vm/src/subcall.rs crates/vm/src/trace.rs

/root/repo/target/debug/deps/sereth_vm-7755a068534dabf3: crates/vm/src/lib.rs crates/vm/src/abi.rs crates/vm/src/asm.rs crates/vm/src/error.rs crates/vm/src/exec.rs crates/vm/src/gas.rs crates/vm/src/interpreter.rs crates/vm/src/opcode.rs crates/vm/src/raa.rs crates/vm/src/subcall.rs crates/vm/src/trace.rs

crates/vm/src/lib.rs:
crates/vm/src/abi.rs:
crates/vm/src/asm.rs:
crates/vm/src/error.rs:
crates/vm/src/exec.rs:
crates/vm/src/gas.rs:
crates/vm/src/interpreter.rs:
crates/vm/src/opcode.rs:
crates/vm/src/raa.rs:
crates/vm/src/subcall.rs:
crates/vm/src/trace.rs:
