/root/repo/target/debug/deps/mutations-f2c7083a164dbc83.d: crates/consistency/tests/mutations.rs Cargo.toml

/root/repo/target/debug/deps/libmutations-f2c7083a164dbc83.rmeta: crates/consistency/tests/mutations.rs Cargo.toml

crates/consistency/tests/mutations.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
