/root/repo/target/debug/deps/sereth_raa-9971db6788d423b8.d: crates/raa/src/lib.rs crates/raa/src/metrics.rs crates/raa/src/provider.rs crates/raa/src/service.rs

/root/repo/target/debug/deps/libsereth_raa-9971db6788d423b8.rmeta: crates/raa/src/lib.rs crates/raa/src/metrics.rs crates/raa/src/provider.rs crates/raa/src/service.rs

crates/raa/src/lib.rs:
crates/raa/src/metrics.rs:
crates/raa/src/provider.rs:
crates/raa/src/service.rs:
