/root/repo/target/debug/deps/props-499009cc87c1b7a0.d: crates/chain/tests/props.rs Cargo.toml

/root/repo/target/debug/deps/libprops-499009cc87c1b7a0.rmeta: crates/chain/tests/props.rs Cargo.toml

crates/chain/tests/props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
