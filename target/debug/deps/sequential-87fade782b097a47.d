/root/repo/target/debug/deps/sequential-87fade782b097a47.d: crates/bench/src/bin/sequential.rs

/root/repo/target/debug/deps/libsequential-87fade782b097a47.rmeta: crates/bench/src/bin/sequential.rs

crates/bench/src/bin/sequential.rs:
