/root/repo/target/debug/deps/props-655daa47b15cfd3a.d: crates/chain/tests/props.rs

/root/repo/target/debug/deps/props-655daa47b15cfd3a: crates/chain/tests/props.rs

crates/chain/tests/props.rs:
