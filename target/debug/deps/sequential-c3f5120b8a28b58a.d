/root/repo/target/debug/deps/sequential-c3f5120b8a28b58a.d: crates/bench/src/bin/sequential.rs

/root/repo/target/debug/deps/sequential-c3f5120b8a28b58a: crates/bench/src/bin/sequential.rs

crates/bench/src/bin/sequential.rs:
