/root/repo/target/debug/deps/participation-ea69c51cb7adb2a0.d: crates/bench/src/bin/participation.rs Cargo.toml

/root/repo/target/debug/deps/libparticipation-ea69c51cb7adb2a0.rmeta: crates/bench/src/bin/participation.rs Cargo.toml

crates/bench/src/bin/participation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
