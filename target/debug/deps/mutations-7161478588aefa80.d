/root/repo/target/debug/deps/mutations-7161478588aefa80.d: crates/consistency/tests/mutations.rs

/root/repo/target/debug/deps/mutations-7161478588aefa80: crates/consistency/tests/mutations.rs

crates/consistency/tests/mutations.rs:
