/root/repo/target/debug/deps/sereth_node-fc46338441859b5b.d: crates/node/src/lib.rs crates/node/src/client.rs crates/node/src/contract.rs crates/node/src/messages.rs crates/node/src/miner.rs crates/node/src/node.rs

/root/repo/target/debug/deps/libsereth_node-fc46338441859b5b.rmeta: crates/node/src/lib.rs crates/node/src/client.rs crates/node/src/contract.rs crates/node/src/messages.rs crates/node/src/miner.rs crates/node/src/node.rs

crates/node/src/lib.rs:
crates/node/src/client.rs:
crates/node/src/contract.rs:
crates/node/src/messages.rs:
crates/node/src/miner.rs:
crates/node/src/node.rs:
