/root/repo/target/debug/deps/sereth_consistency-f576f109ee397fb6.d: crates/consistency/src/lib.rs crates/consistency/src/record.rs crates/consistency/src/seqcon.rs crates/consistency/src/sss.rs

/root/repo/target/debug/deps/libsereth_consistency-f576f109ee397fb6.rlib: crates/consistency/src/lib.rs crates/consistency/src/record.rs crates/consistency/src/seqcon.rs crates/consistency/src/sss.rs

/root/repo/target/debug/deps/libsereth_consistency-f576f109ee397fb6.rmeta: crates/consistency/src/lib.rs crates/consistency/src/record.rs crates/consistency/src/seqcon.rs crates/consistency/src/sss.rs

crates/consistency/src/lib.rs:
crates/consistency/src/record.rs:
crates/consistency/src/seqcon.rs:
crates/consistency/src/sss.rs:
