/root/repo/target/debug/deps/raa_tamper-aaba91820a2392cb.d: tests/raa_tamper.rs

/root/repo/target/debug/deps/raa_tamper-aaba91820a2392cb: tests/raa_tamper.rs

tests/raa_tamper.rs:
