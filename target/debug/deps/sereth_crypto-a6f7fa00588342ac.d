/root/repo/target/debug/deps/sereth_crypto-a6f7fa00588342ac.d: crates/crypto/src/lib.rs crates/crypto/src/address.rs crates/crypto/src/hash.rs crates/crypto/src/keccak.rs crates/crypto/src/merkle.rs crates/crypto/src/rlp.rs crates/crypto/src/sig.rs Cargo.toml

/root/repo/target/debug/deps/libsereth_crypto-a6f7fa00588342ac.rmeta: crates/crypto/src/lib.rs crates/crypto/src/address.rs crates/crypto/src/hash.rs crates/crypto/src/keccak.rs crates/crypto/src/merkle.rs crates/crypto/src/rlp.rs crates/crypto/src/sig.rs Cargo.toml

crates/crypto/src/lib.rs:
crates/crypto/src/address.rs:
crates/crypto/src/hash.rs:
crates/crypto/src/keccak.rs:
crates/crypto/src/merkle.rs:
crates/crypto/src/rlp.rs:
crates/crypto/src/sig.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
