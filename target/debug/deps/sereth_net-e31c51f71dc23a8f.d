/root/repo/target/debug/deps/sereth_net-e31c51f71dc23a8f.d: crates/net/src/lib.rs crates/net/src/latency.rs crates/net/src/sim.rs crates/net/src/topology.rs Cargo.toml

/root/repo/target/debug/deps/libsereth_net-e31c51f71dc23a8f.rmeta: crates/net/src/lib.rs crates/net/src/latency.rs crates/net/src/sim.rs crates/net/src/topology.rs Cargo.toml

crates/net/src/lib.rs:
crates/net/src/latency.rs:
crates/net/src/sim.rs:
crates/net/src/topology.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
