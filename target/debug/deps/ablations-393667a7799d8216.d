/root/repo/target/debug/deps/ablations-393667a7799d8216.d: crates/bench/src/bin/ablations.rs

/root/repo/target/debug/deps/ablations-393667a7799d8216: crates/bench/src/bin/ablations.rs

crates/bench/src/bin/ablations.rs:
