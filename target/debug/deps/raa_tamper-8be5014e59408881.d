/root/repo/target/debug/deps/raa_tamper-8be5014e59408881.d: tests/raa_tamper.rs Cargo.toml

/root/repo/target/debug/deps/libraa_tamper-8be5014e59408881.rmeta: tests/raa_tamper.rs Cargo.toml

tests/raa_tamper.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
