/root/repo/target/debug/deps/sereth_chain-7ea35399a8ae7df7.d: crates/chain/src/lib.rs crates/chain/src/builder.rs crates/chain/src/executor.rs crates/chain/src/genesis.rs crates/chain/src/state.rs crates/chain/src/store.rs crates/chain/src/txpool.rs crates/chain/src/validation.rs

/root/repo/target/debug/deps/libsereth_chain-7ea35399a8ae7df7.rlib: crates/chain/src/lib.rs crates/chain/src/builder.rs crates/chain/src/executor.rs crates/chain/src/genesis.rs crates/chain/src/state.rs crates/chain/src/store.rs crates/chain/src/txpool.rs crates/chain/src/validation.rs

/root/repo/target/debug/deps/libsereth_chain-7ea35399a8ae7df7.rmeta: crates/chain/src/lib.rs crates/chain/src/builder.rs crates/chain/src/executor.rs crates/chain/src/genesis.rs crates/chain/src/state.rs crates/chain/src/store.rs crates/chain/src/txpool.rs crates/chain/src/validation.rs

crates/chain/src/lib.rs:
crates/chain/src/builder.rs:
crates/chain/src/executor.rs:
crates/chain/src/genesis.rs:
crates/chain/src/state.rs:
crates/chain/src/store.rs:
crates/chain/src/txpool.rs:
crates/chain/src/validation.rs:
