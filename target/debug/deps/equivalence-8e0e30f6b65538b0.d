/root/repo/target/debug/deps/equivalence-8e0e30f6b65538b0.d: crates/node/tests/equivalence.rs Cargo.toml

/root/repo/target/debug/deps/libequivalence-8e0e30f6b65538b0.rmeta: crates/node/tests/equivalence.rs Cargo.toml

crates/node/tests/equivalence.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
