/root/repo/target/debug/deps/sereth_sim-2e74df34ee025d80.d: crates/sim/src/lib.rs crates/sim/src/experiment.rs crates/sim/src/many_markets.rs crates/sim/src/metrics.rs crates/sim/src/report.rs crates/sim/src/retry.rs crates/sim/src/scenario.rs crates/sim/src/stats.rs crates/sim/src/workload.rs Cargo.toml

/root/repo/target/debug/deps/libsereth_sim-2e74df34ee025d80.rmeta: crates/sim/src/lib.rs crates/sim/src/experiment.rs crates/sim/src/many_markets.rs crates/sim/src/metrics.rs crates/sim/src/report.rs crates/sim/src/retry.rs crates/sim/src/scenario.rs crates/sim/src/stats.rs crates/sim/src/workload.rs Cargo.toml

crates/sim/src/lib.rs:
crates/sim/src/experiment.rs:
crates/sim/src/many_markets.rs:
crates/sim/src/metrics.rs:
crates/sim/src/report.rs:
crates/sim/src/retry.rs:
crates/sim/src/scenario.rs:
crates/sim/src/stats.rs:
crates/sim/src/workload.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
