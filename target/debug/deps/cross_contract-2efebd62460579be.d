/root/repo/target/debug/deps/cross_contract-2efebd62460579be.d: tests/cross_contract.rs

/root/repo/target/debug/deps/cross_contract-2efebd62460579be: tests/cross_contract.rs

tests/cross_contract.rs:
