/root/repo/target/debug/deps/pwv-a9b9c180da6ff00d.d: crates/bench/src/bin/pwv.rs

/root/repo/target/debug/deps/libpwv-a9b9c180da6ff00d.rmeta: crates/bench/src/bin/pwv.rs

crates/bench/src/bin/pwv.rs:
