/root/repo/target/debug/deps/hms-f63d048492b0d9e8.d: crates/bench/benches/hms.rs

/root/repo/target/debug/deps/hms-f63d048492b0d9e8: crates/bench/benches/hms.rs

crates/bench/benches/hms.rs:
