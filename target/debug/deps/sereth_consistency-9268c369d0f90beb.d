/root/repo/target/debug/deps/sereth_consistency-9268c369d0f90beb.d: crates/consistency/src/lib.rs crates/consistency/src/record.rs crates/consistency/src/seqcon.rs crates/consistency/src/sss.rs Cargo.toml

/root/repo/target/debug/deps/libsereth_consistency-9268c369d0f90beb.rmeta: crates/consistency/src/lib.rs crates/consistency/src/record.rs crates/consistency/src/seqcon.rs crates/consistency/src/sss.rs Cargo.toml

crates/consistency/src/lib.rs:
crates/consistency/src/record.rs:
crates/consistency/src/seqcon.rs:
crates/consistency/src/sss.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
