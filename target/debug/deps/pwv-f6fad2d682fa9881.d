/root/repo/target/debug/deps/pwv-f6fad2d682fa9881.d: crates/bench/src/bin/pwv.rs Cargo.toml

/root/repo/target/debug/deps/libpwv-f6fad2d682fa9881.rmeta: crates/bench/src/bin/pwv.rs Cargo.toml

crates/bench/src/bin/pwv.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
