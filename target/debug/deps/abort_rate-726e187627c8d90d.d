/root/repo/target/debug/deps/abort_rate-726e187627c8d90d.d: crates/bench/src/bin/abort_rate.rs

/root/repo/target/debug/deps/abort_rate-726e187627c8d90d: crates/bench/src/bin/abort_rate.rs

crates/bench/src/bin/abort_rate.rs:
