/root/repo/target/debug/deps/hms-99da97ccdb5cce58.d: crates/bench/benches/hms.rs Cargo.toml

/root/repo/target/debug/deps/libhms-99da97ccdb5cce58.rmeta: crates/bench/benches/hms.rs Cargo.toml

crates/bench/benches/hms.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
