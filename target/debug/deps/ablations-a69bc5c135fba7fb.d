/root/repo/target/debug/deps/ablations-a69bc5c135fba7fb.d: crates/bench/src/bin/ablations.rs Cargo.toml

/root/repo/target/debug/deps/libablations-a69bc5c135fba7fb.rmeta: crates/bench/src/bin/ablations.rs Cargo.toml

crates/bench/src/bin/ablations.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
