/root/repo/target/debug/deps/substrate-0a6530698c709d31.d: crates/bench/benches/substrate.rs Cargo.toml

/root/repo/target/debug/deps/libsubstrate-0a6530698c709d31.rmeta: crates/bench/benches/substrate.rs Cargo.toml

crates/bench/benches/substrate.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
