/root/repo/target/debug/deps/multi_market-b10b05115b8ad7cb.d: tests/multi_market.rs

/root/repo/target/debug/deps/multi_market-b10b05115b8ad7cb: tests/multi_market.rs

tests/multi_market.rs:
