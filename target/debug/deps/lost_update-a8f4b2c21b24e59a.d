/root/repo/target/debug/deps/lost_update-a8f4b2c21b24e59a.d: tests/lost_update.rs Cargo.toml

/root/repo/target/debug/deps/liblost_update-a8f4b2c21b24e59a.rmeta: tests/lost_update.rs Cargo.toml

tests/lost_update.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
