/root/repo/target/debug/deps/sereth_chain-a6b6ca03b039d3ae.d: crates/chain/src/lib.rs crates/chain/src/builder.rs crates/chain/src/executor.rs crates/chain/src/genesis.rs crates/chain/src/state.rs crates/chain/src/store.rs crates/chain/src/txpool.rs crates/chain/src/validation.rs Cargo.toml

/root/repo/target/debug/deps/libsereth_chain-a6b6ca03b039d3ae.rmeta: crates/chain/src/lib.rs crates/chain/src/builder.rs crates/chain/src/executor.rs crates/chain/src/genesis.rs crates/chain/src/state.rs crates/chain/src/store.rs crates/chain/src/txpool.rs crates/chain/src/validation.rs Cargo.toml

crates/chain/src/lib.rs:
crates/chain/src/builder.rs:
crates/chain/src/executor.rs:
crates/chain/src/genesis.rs:
crates/chain/src/state.rs:
crates/chain/src/store.rs:
crates/chain/src/txpool.rs:
crates/chain/src/validation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
