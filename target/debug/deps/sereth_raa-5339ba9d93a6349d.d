/root/repo/target/debug/deps/sereth_raa-5339ba9d93a6349d.d: crates/raa/src/lib.rs crates/raa/src/metrics.rs crates/raa/src/provider.rs crates/raa/src/service.rs

/root/repo/target/debug/deps/sereth_raa-5339ba9d93a6349d: crates/raa/src/lib.rs crates/raa/src/metrics.rs crates/raa/src/provider.rs crates/raa/src/service.rs

crates/raa/src/lib.rs:
crates/raa/src/metrics.rs:
crates/raa/src/provider.rs:
crates/raa/src/service.rs:
