/root/repo/target/debug/deps/sereth-2afa438c951fac59.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libsereth-2afa438c951fac59.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
