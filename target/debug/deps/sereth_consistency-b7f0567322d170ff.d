/root/repo/target/debug/deps/sereth_consistency-b7f0567322d170ff.d: crates/consistency/src/lib.rs crates/consistency/src/record.rs crates/consistency/src/seqcon.rs crates/consistency/src/sss.rs

/root/repo/target/debug/deps/sereth_consistency-b7f0567322d170ff: crates/consistency/src/lib.rs crates/consistency/src/record.rs crates/consistency/src/seqcon.rs crates/consistency/src/sss.rs

crates/consistency/src/lib.rs:
crates/consistency/src/record.rs:
crates/consistency/src/seqcon.rs:
crates/consistency/src/sss.rs:
