/root/repo/target/debug/deps/pwv-f611b7fbe708be0d.d: crates/bench/src/bin/pwv.rs

/root/repo/target/debug/deps/pwv-f611b7fbe708be0d: crates/bench/src/bin/pwv.rs

crates/bench/src/bin/pwv.rs:
