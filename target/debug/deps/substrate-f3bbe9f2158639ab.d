/root/repo/target/debug/deps/substrate-f3bbe9f2158639ab.d: crates/bench/benches/substrate.rs

/root/repo/target/debug/deps/substrate-f3bbe9f2158639ab: crates/bench/benches/substrate.rs

crates/bench/benches/substrate.rs:
