/root/repo/target/debug/deps/ablations-2cd37836809a3966.d: crates/bench/src/bin/ablations.rs

/root/repo/target/debug/deps/ablations-2cd37836809a3966: crates/bench/src/bin/ablations.rs

crates/bench/src/bin/ablations.rs:
