/root/repo/target/debug/deps/abort_rate-3a987dc949a84570.d: crates/bench/src/bin/abort_rate.rs Cargo.toml

/root/repo/target/debug/deps/libabort_rate-3a987dc949a84570.rmeta: crates/bench/src/bin/abort_rate.rs Cargo.toml

crates/bench/src/bin/abort_rate.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
