/root/repo/target/debug/deps/consistency-23f62713f0af142b.d: tests/consistency.rs

/root/repo/target/debug/deps/consistency-23f62713f0af142b: tests/consistency.rs

tests/consistency.rs:
