/root/repo/target/debug/deps/pwv-07e0ae77ab35aa79.d: crates/bench/src/bin/pwv.rs Cargo.toml

/root/repo/target/debug/deps/libpwv-07e0ae77ab35aa79.rmeta: crates/bench/src/bin/pwv.rs Cargo.toml

crates/bench/src/bin/pwv.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
