/root/repo/target/debug/deps/sereth_crypto-f1652a708d6a06e6.d: crates/crypto/src/lib.rs crates/crypto/src/address.rs crates/crypto/src/hash.rs crates/crypto/src/keccak.rs crates/crypto/src/merkle.rs crates/crypto/src/rlp.rs crates/crypto/src/sig.rs

/root/repo/target/debug/deps/sereth_crypto-f1652a708d6a06e6: crates/crypto/src/lib.rs crates/crypto/src/address.rs crates/crypto/src/hash.rs crates/crypto/src/keccak.rs crates/crypto/src/merkle.rs crates/crypto/src/rlp.rs crates/crypto/src/sig.rs

crates/crypto/src/lib.rs:
crates/crypto/src/address.rs:
crates/crypto/src/hash.rs:
crates/crypto/src/keccak.rs:
crates/crypto/src/merkle.rs:
crates/crypto/src/rlp.rs:
crates/crypto/src/sig.rs:
