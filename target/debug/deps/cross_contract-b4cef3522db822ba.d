/root/repo/target/debug/deps/cross_contract-b4cef3522db822ba.d: tests/cross_contract.rs Cargo.toml

/root/repo/target/debug/deps/libcross_contract-b4cef3522db822ba.rmeta: tests/cross_contract.rs Cargo.toml

tests/cross_contract.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
