/root/repo/target/debug/deps/interop-e965337b2160e7a5.d: tests/interop.rs

/root/repo/target/debug/deps/interop-e965337b2160e7a5: tests/interop.rs

tests/interop.rs:
