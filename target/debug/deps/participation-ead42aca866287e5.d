/root/repo/target/debug/deps/participation-ead42aca866287e5.d: crates/bench/src/bin/participation.rs

/root/repo/target/debug/deps/participation-ead42aca866287e5: crates/bench/src/bin/participation.rs

crates/bench/src/bin/participation.rs:
