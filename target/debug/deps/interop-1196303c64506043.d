/root/repo/target/debug/deps/interop-1196303c64506043.d: tests/interop.rs Cargo.toml

/root/repo/target/debug/deps/libinterop-1196303c64506043.rmeta: tests/interop.rs Cargo.toml

tests/interop.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
