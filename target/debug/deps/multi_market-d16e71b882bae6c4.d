/root/repo/target/debug/deps/multi_market-d16e71b882bae6c4.d: tests/multi_market.rs Cargo.toml

/root/repo/target/debug/deps/libmulti_market-d16e71b882bae6c4.rmeta: tests/multi_market.rs Cargo.toml

tests/multi_market.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
