/root/repo/target/debug/deps/modular_ops-1b52096c1840de23.d: crates/vm/tests/modular_ops.rs

/root/repo/target/debug/deps/modular_ops-1b52096c1840de23: crates/vm/tests/modular_ops.rs

crates/vm/tests/modular_ops.rs:
