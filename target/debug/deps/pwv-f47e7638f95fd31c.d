/root/repo/target/debug/deps/pwv-f47e7638f95fd31c.d: crates/bench/src/bin/pwv.rs

/root/repo/target/debug/deps/pwv-f47e7638f95fd31c: crates/bench/src/bin/pwv.rs

crates/bench/src/bin/pwv.rs:
