/root/repo/target/debug/deps/sereth_net-5cfb6f0e180cb786.d: crates/net/src/lib.rs crates/net/src/latency.rs crates/net/src/sim.rs crates/net/src/topology.rs

/root/repo/target/debug/deps/libsereth_net-5cfb6f0e180cb786.rlib: crates/net/src/lib.rs crates/net/src/latency.rs crates/net/src/sim.rs crates/net/src/topology.rs

/root/repo/target/debug/deps/libsereth_net-5cfb6f0e180cb786.rmeta: crates/net/src/lib.rs crates/net/src/latency.rs crates/net/src/sim.rs crates/net/src/topology.rs

crates/net/src/lib.rs:
crates/net/src/latency.rs:
crates/net/src/sim.rs:
crates/net/src/topology.rs:
