/root/repo/target/debug/deps/sereth_chain-27101d355d1ddfdf.d: crates/chain/src/lib.rs crates/chain/src/builder.rs crates/chain/src/executor.rs crates/chain/src/genesis.rs crates/chain/src/state.rs crates/chain/src/store.rs crates/chain/src/txpool.rs crates/chain/src/validation.rs Cargo.toml

/root/repo/target/debug/deps/libsereth_chain-27101d355d1ddfdf.rmeta: crates/chain/src/lib.rs crates/chain/src/builder.rs crates/chain/src/executor.rs crates/chain/src/genesis.rs crates/chain/src/state.rs crates/chain/src/store.rs crates/chain/src/txpool.rs crates/chain/src/validation.rs Cargo.toml

crates/chain/src/lib.rs:
crates/chain/src/builder.rs:
crates/chain/src/executor.rs:
crates/chain/src/genesis.rs:
crates/chain/src/state.rs:
crates/chain/src/store.rs:
crates/chain/src/txpool.rs:
crates/chain/src/validation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
