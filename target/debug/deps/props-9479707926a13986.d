/root/repo/target/debug/deps/props-9479707926a13986.d: crates/vm/tests/props.rs

/root/repo/target/debug/deps/props-9479707926a13986: crates/vm/tests/props.rs

crates/vm/tests/props.rs:
