/root/repo/target/debug/deps/abort_rate-1bc62c283d866092.d: tests/abort_rate.rs Cargo.toml

/root/repo/target/debug/deps/libabort_rate-1bc62c283d866092.rmeta: tests/abort_rate.rs Cargo.toml

tests/abort_rate.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
