/root/repo/target/debug/deps/equivalence-bc2801fd4499a47b.d: crates/node/tests/equivalence.rs

/root/repo/target/debug/deps/equivalence-bc2801fd4499a47b: crates/node/tests/equivalence.rs

crates/node/tests/equivalence.rs:
