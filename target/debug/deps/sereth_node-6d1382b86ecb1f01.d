/root/repo/target/debug/deps/sereth_node-6d1382b86ecb1f01.d: crates/node/src/lib.rs crates/node/src/client.rs crates/node/src/contract.rs crates/node/src/messages.rs crates/node/src/miner.rs crates/node/src/node.rs

/root/repo/target/debug/deps/libsereth_node-6d1382b86ecb1f01.rlib: crates/node/src/lib.rs crates/node/src/client.rs crates/node/src/contract.rs crates/node/src/messages.rs crates/node/src/miner.rs crates/node/src/node.rs

/root/repo/target/debug/deps/libsereth_node-6d1382b86ecb1f01.rmeta: crates/node/src/lib.rs crates/node/src/client.rs crates/node/src/contract.rs crates/node/src/messages.rs crates/node/src/miner.rs crates/node/src/node.rs

crates/node/src/lib.rs:
crates/node/src/client.rs:
crates/node/src/contract.rs:
crates/node/src/messages.rs:
crates/node/src/miner.rs:
crates/node/src/node.rs:
