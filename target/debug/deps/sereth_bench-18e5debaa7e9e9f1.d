/root/repo/target/debug/deps/sereth_bench-18e5debaa7e9e9f1.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libsereth_bench-18e5debaa7e9e9f1.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
