/root/repo/target/debug/deps/sereth_core-87a42922f918fd02.d: crates/core/src/lib.rs crates/core/src/fpv.rs crates/core/src/hms.rs crates/core/src/mark.rs crates/core/src/process.rs crates/core/src/provider.rs crates/core/src/series.rs Cargo.toml

/root/repo/target/debug/deps/libsereth_core-87a42922f918fd02.rmeta: crates/core/src/lib.rs crates/core/src/fpv.rs crates/core/src/hms.rs crates/core/src/mark.rs crates/core/src/process.rs crates/core/src/provider.rs crates/core/src/series.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/fpv.rs:
crates/core/src/hms.rs:
crates/core/src/mark.rs:
crates/core/src/process.rs:
crates/core/src/provider.rs:
crates/core/src/series.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
