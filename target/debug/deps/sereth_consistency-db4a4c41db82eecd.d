/root/repo/target/debug/deps/sereth_consistency-db4a4c41db82eecd.d: crates/consistency/src/lib.rs crates/consistency/src/record.rs crates/consistency/src/seqcon.rs crates/consistency/src/sss.rs Cargo.toml

/root/repo/target/debug/deps/libsereth_consistency-db4a4c41db82eecd.rmeta: crates/consistency/src/lib.rs crates/consistency/src/record.rs crates/consistency/src/seqcon.rs crates/consistency/src/sss.rs Cargo.toml

crates/consistency/src/lib.rs:
crates/consistency/src/record.rs:
crates/consistency/src/seqcon.rs:
crates/consistency/src/sss.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
