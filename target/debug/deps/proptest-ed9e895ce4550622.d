/root/repo/target/debug/deps/proptest-ed9e895ce4550622.d: vendor/proptest/src/lib.rs vendor/proptest/src/collection.rs vendor/proptest/src/sample.rs Cargo.toml

/root/repo/target/debug/deps/libproptest-ed9e895ce4550622.rmeta: vendor/proptest/src/lib.rs vendor/proptest/src/collection.rs vendor/proptest/src/sample.rs Cargo.toml

vendor/proptest/src/lib.rs:
vendor/proptest/src/collection.rs:
vendor/proptest/src/sample.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
