/root/repo/target/debug/deps/lemmas-339023de10ed8202.d: crates/core/tests/lemmas.rs Cargo.toml

/root/repo/target/debug/deps/liblemmas-339023de10ed8202.rmeta: crates/core/tests/lemmas.rs Cargo.toml

crates/core/tests/lemmas.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
