/root/repo/target/debug/deps/sereth-c88538bf402fba5f.d: src/lib.rs

/root/repo/target/debug/deps/sereth-c88538bf402fba5f: src/lib.rs

src/lib.rs:
