/root/repo/target/debug/deps/sereth_consistency-99e507267eb57ef3.d: crates/consistency/src/lib.rs crates/consistency/src/record.rs crates/consistency/src/seqcon.rs crates/consistency/src/sss.rs

/root/repo/target/debug/deps/libsereth_consistency-99e507267eb57ef3.rmeta: crates/consistency/src/lib.rs crates/consistency/src/record.rs crates/consistency/src/seqcon.rs crates/consistency/src/sss.rs

crates/consistency/src/lib.rs:
crates/consistency/src/record.rs:
crates/consistency/src/seqcon.rs:
crates/consistency/src/sss.rs:
