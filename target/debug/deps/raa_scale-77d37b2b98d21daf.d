/root/repo/target/debug/deps/raa_scale-77d37b2b98d21daf.d: crates/bench/src/bin/raa_scale.rs

/root/repo/target/debug/deps/raa_scale-77d37b2b98d21daf: crates/bench/src/bin/raa_scale.rs

crates/bench/src/bin/raa_scale.rs:
