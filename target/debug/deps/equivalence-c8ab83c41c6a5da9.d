/root/repo/target/debug/deps/equivalence-c8ab83c41c6a5da9.d: crates/raa/tests/equivalence.rs

/root/repo/target/debug/deps/equivalence-c8ab83c41c6a5da9: crates/raa/tests/equivalence.rs

crates/raa/tests/equivalence.rs:
