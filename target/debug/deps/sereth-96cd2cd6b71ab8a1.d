/root/repo/target/debug/deps/sereth-96cd2cd6b71ab8a1.d: src/lib.rs

/root/repo/target/debug/deps/libsereth-96cd2cd6b71ab8a1.rlib: src/lib.rs

/root/repo/target/debug/deps/libsereth-96cd2cd6b71ab8a1.rmeta: src/lib.rs

src/lib.rs:
