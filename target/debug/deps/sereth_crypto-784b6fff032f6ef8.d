/root/repo/target/debug/deps/sereth_crypto-784b6fff032f6ef8.d: crates/crypto/src/lib.rs crates/crypto/src/address.rs crates/crypto/src/hash.rs crates/crypto/src/keccak.rs crates/crypto/src/merkle.rs crates/crypto/src/rlp.rs crates/crypto/src/sig.rs

/root/repo/target/debug/deps/libsereth_crypto-784b6fff032f6ef8.rmeta: crates/crypto/src/lib.rs crates/crypto/src/address.rs crates/crypto/src/hash.rs crates/crypto/src/keccak.rs crates/crypto/src/merkle.rs crates/crypto/src/rlp.rs crates/crypto/src/sig.rs

crates/crypto/src/lib.rs:
crates/crypto/src/address.rs:
crates/crypto/src/hash.rs:
crates/crypto/src/keccak.rs:
crates/crypto/src/merkle.rs:
crates/crypto/src/rlp.rs:
crates/crypto/src/sig.rs:
