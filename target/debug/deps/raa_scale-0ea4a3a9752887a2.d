/root/repo/target/debug/deps/raa_scale-0ea4a3a9752887a2.d: crates/bench/src/bin/raa_scale.rs Cargo.toml

/root/repo/target/debug/deps/libraa_scale-0ea4a3a9752887a2.rmeta: crates/bench/src/bin/raa_scale.rs Cargo.toml

crates/bench/src/bin/raa_scale.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
