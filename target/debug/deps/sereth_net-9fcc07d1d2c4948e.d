/root/repo/target/debug/deps/sereth_net-9fcc07d1d2c4948e.d: crates/net/src/lib.rs crates/net/src/latency.rs crates/net/src/sim.rs crates/net/src/topology.rs Cargo.toml

/root/repo/target/debug/deps/libsereth_net-9fcc07d1d2c4948e.rmeta: crates/net/src/lib.rs crates/net/src/latency.rs crates/net/src/sim.rs crates/net/src/topology.rs Cargo.toml

crates/net/src/lib.rs:
crates/net/src/latency.rs:
crates/net/src/sim.rs:
crates/net/src/topology.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
