/root/repo/target/debug/deps/forks-14819e55e28e4965.d: tests/forks.rs Cargo.toml

/root/repo/target/debug/deps/libforks-14819e55e28e4965.rmeta: tests/forks.rs Cargo.toml

tests/forks.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
