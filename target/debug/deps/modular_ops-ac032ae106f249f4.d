/root/repo/target/debug/deps/modular_ops-ac032ae106f249f4.d: crates/vm/tests/modular_ops.rs Cargo.toml

/root/repo/target/debug/deps/libmodular_ops-ac032ae106f249f4.rmeta: crates/vm/tests/modular_ops.rs Cargo.toml

crates/vm/tests/modular_ops.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
