/root/repo/target/debug/deps/u256_props-aab7286122a130c8.d: crates/types/tests/u256_props.rs Cargo.toml

/root/repo/target/debug/deps/libu256_props-aab7286122a130c8.rmeta: crates/types/tests/u256_props.rs Cargo.toml

crates/types/tests/u256_props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
