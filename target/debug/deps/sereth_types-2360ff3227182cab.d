/root/repo/target/debug/deps/sereth_types-2360ff3227182cab.d: crates/types/src/lib.rs crates/types/src/block.rs crates/types/src/receipt.rs crates/types/src/transaction.rs crates/types/src/u256.rs

/root/repo/target/debug/deps/libsereth_types-2360ff3227182cab.rlib: crates/types/src/lib.rs crates/types/src/block.rs crates/types/src/receipt.rs crates/types/src/transaction.rs crates/types/src/u256.rs

/root/repo/target/debug/deps/libsereth_types-2360ff3227182cab.rmeta: crates/types/src/lib.rs crates/types/src/block.rs crates/types/src/receipt.rs crates/types/src/transaction.rs crates/types/src/u256.rs

crates/types/src/lib.rs:
crates/types/src/block.rs:
crates/types/src/receipt.rs:
crates/types/src/transaction.rs:
crates/types/src/u256.rs:
