/root/repo/target/debug/deps/fork_choice-fc7ea78c34dd051e.d: crates/chain/tests/fork_choice.rs Cargo.toml

/root/repo/target/debug/deps/libfork_choice-fc7ea78c34dd051e.rmeta: crates/chain/tests/fork_choice.rs Cargo.toml

crates/chain/tests/fork_choice.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
