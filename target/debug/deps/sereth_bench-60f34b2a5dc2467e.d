/root/repo/target/debug/deps/sereth_bench-60f34b2a5dc2467e.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libsereth_bench-60f34b2a5dc2467e.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
