/root/repo/target/debug/deps/sereth_vm-c0f657b2b1fa4ba8.d: crates/vm/src/lib.rs crates/vm/src/abi.rs crates/vm/src/asm.rs crates/vm/src/error.rs crates/vm/src/exec.rs crates/vm/src/gas.rs crates/vm/src/interpreter.rs crates/vm/src/opcode.rs crates/vm/src/raa.rs crates/vm/src/subcall.rs crates/vm/src/trace.rs

/root/repo/target/debug/deps/libsereth_vm-c0f657b2b1fa4ba8.rmeta: crates/vm/src/lib.rs crates/vm/src/abi.rs crates/vm/src/asm.rs crates/vm/src/error.rs crates/vm/src/exec.rs crates/vm/src/gas.rs crates/vm/src/interpreter.rs crates/vm/src/opcode.rs crates/vm/src/raa.rs crates/vm/src/subcall.rs crates/vm/src/trace.rs

crates/vm/src/lib.rs:
crates/vm/src/abi.rs:
crates/vm/src/asm.rs:
crates/vm/src/error.rs:
crates/vm/src/exec.rs:
crates/vm/src/gas.rs:
crates/vm/src/interpreter.rs:
crates/vm/src/opcode.rs:
crates/vm/src/raa.rs:
crates/vm/src/subcall.rs:
crates/vm/src/trace.rs:
