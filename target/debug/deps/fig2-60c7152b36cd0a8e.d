/root/repo/target/debug/deps/fig2-60c7152b36cd0a8e.d: crates/bench/src/bin/fig2.rs

/root/repo/target/debug/deps/fig2-60c7152b36cd0a8e: crates/bench/src/bin/fig2.rs

crates/bench/src/bin/fig2.rs:
