/root/repo/target/debug/deps/abort_rate-4daab5e4a1dc7a6a.d: crates/bench/src/bin/abort_rate.rs Cargo.toml

/root/repo/target/debug/deps/libabort_rate-4daab5e4a1dc7a6a.rmeta: crates/bench/src/bin/abort_rate.rs Cargo.toml

crates/bench/src/bin/abort_rate.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
