/root/repo/target/debug/deps/abort_rate-88906f4cf84b2dcc.d: crates/bench/src/bin/abort_rate.rs

/root/repo/target/debug/deps/abort_rate-88906f4cf84b2dcc: crates/bench/src/bin/abort_rate.rs

crates/bench/src/bin/abort_rate.rs:
