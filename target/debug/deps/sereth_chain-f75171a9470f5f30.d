/root/repo/target/debug/deps/sereth_chain-f75171a9470f5f30.d: crates/chain/src/lib.rs crates/chain/src/builder.rs crates/chain/src/executor.rs crates/chain/src/genesis.rs crates/chain/src/state.rs crates/chain/src/store.rs crates/chain/src/txpool.rs crates/chain/src/validation.rs

/root/repo/target/debug/deps/sereth_chain-f75171a9470f5f30: crates/chain/src/lib.rs crates/chain/src/builder.rs crates/chain/src/executor.rs crates/chain/src/genesis.rs crates/chain/src/state.rs crates/chain/src/store.rs crates/chain/src/txpool.rs crates/chain/src/validation.rs

crates/chain/src/lib.rs:
crates/chain/src/builder.rs:
crates/chain/src/executor.rs:
crates/chain/src/genesis.rs:
crates/chain/src/state.rs:
crates/chain/src/store.rs:
crates/chain/src/txpool.rs:
crates/chain/src/validation.rs:
