/root/repo/target/debug/deps/sereth_types-d9c1be5c77e31a04.d: crates/types/src/lib.rs crates/types/src/block.rs crates/types/src/receipt.rs crates/types/src/transaction.rs crates/types/src/u256.rs Cargo.toml

/root/repo/target/debug/deps/libsereth_types-d9c1be5c77e31a04.rmeta: crates/types/src/lib.rs crates/types/src/block.rs crates/types/src/receipt.rs crates/types/src/transaction.rs crates/types/src/u256.rs Cargo.toml

crates/types/src/lib.rs:
crates/types/src/block.rs:
crates/types/src/receipt.rs:
crates/types/src/transaction.rs:
crates/types/src/u256.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
