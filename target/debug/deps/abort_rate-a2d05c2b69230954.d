/root/repo/target/debug/deps/abort_rate-a2d05c2b69230954.d: crates/bench/src/bin/abort_rate.rs

/root/repo/target/debug/deps/libabort_rate-a2d05c2b69230954.rmeta: crates/bench/src/bin/abort_rate.rs

crates/bench/src/bin/abort_rate.rs:
