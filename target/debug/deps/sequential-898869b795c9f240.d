/root/repo/target/debug/deps/sequential-898869b795c9f240.d: crates/bench/src/bin/sequential.rs

/root/repo/target/debug/deps/sequential-898869b795c9f240: crates/bench/src/bin/sequential.rs

crates/bench/src/bin/sequential.rs:
