/root/repo/target/debug/deps/fig2-ee52f1bec4840941.d: crates/bench/src/bin/fig2.rs

/root/repo/target/debug/deps/libfig2-ee52f1bec4840941.rmeta: crates/bench/src/bin/fig2.rs

crates/bench/src/bin/fig2.rs:
