/root/repo/target/debug/deps/participation-b02a20f474eec47b.d: crates/bench/src/bin/participation.rs

/root/repo/target/debug/deps/libparticipation-b02a20f474eec47b.rmeta: crates/bench/src/bin/participation.rs

crates/bench/src/bin/participation.rs:
