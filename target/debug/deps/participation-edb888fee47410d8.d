/root/repo/target/debug/deps/participation-edb888fee47410d8.d: crates/bench/src/bin/participation.rs

/root/repo/target/debug/deps/participation-edb888fee47410d8: crates/bench/src/bin/participation.rs

crates/bench/src/bin/participation.rs:
