/root/repo/target/debug/deps/sereth-3c8979967f6f0d7d.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libsereth-3c8979967f6f0d7d.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
