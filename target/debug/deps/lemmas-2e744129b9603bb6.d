/root/repo/target/debug/deps/lemmas-2e744129b9603bb6.d: crates/core/tests/lemmas.rs

/root/repo/target/debug/deps/lemmas-2e744129b9603bb6: crates/core/tests/lemmas.rs

crates/core/tests/lemmas.rs:
