/root/repo/target/debug/deps/raa_scale-2c57c3f93521d328.d: crates/bench/src/bin/raa_scale.rs

/root/repo/target/debug/deps/raa_scale-2c57c3f93521d328: crates/bench/src/bin/raa_scale.rs

crates/bench/src/bin/raa_scale.rs:
