/root/repo/target/debug/deps/abort_rate-c2494f558a274b57.d: tests/abort_rate.rs

/root/repo/target/debug/deps/abort_rate-c2494f558a274b57: tests/abort_rate.rs

tests/abort_rate.rs:
