/root/repo/target/debug/deps/sereth_bench-16e3c15da78d32fe.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libsereth_bench-16e3c15da78d32fe.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
