/root/repo/target/debug/deps/extraction-0197cbb0e17a6b0a.d: crates/consistency/tests/extraction.rs Cargo.toml

/root/repo/target/debug/deps/libextraction-0197cbb0e17a6b0a.rmeta: crates/consistency/tests/extraction.rs Cargo.toml

crates/consistency/tests/extraction.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
