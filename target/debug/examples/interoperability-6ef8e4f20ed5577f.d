/root/repo/target/debug/examples/interoperability-6ef8e4f20ed5577f.d: examples/interoperability.rs

/root/repo/target/debug/examples/interoperability-6ef8e4f20ed5577f: examples/interoperability.rs

examples/interoperability.rs:
