/root/repo/target/debug/examples/consistency_audit-58a6859e914c60cf.d: examples/consistency_audit.rs

/root/repo/target/debug/examples/consistency_audit-58a6859e914c60cf: examples/consistency_audit.rs

examples/consistency_audit.rs:
