/root/repo/target/debug/examples/consistency_audit-41dc28b73e3ab771.d: examples/consistency_audit.rs Cargo.toml

/root/repo/target/debug/examples/libconsistency_audit-41dc28b73e3ab771.rmeta: examples/consistency_audit.rs Cargo.toml

examples/consistency_audit.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
