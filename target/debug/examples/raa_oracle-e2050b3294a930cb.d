/root/repo/target/debug/examples/raa_oracle-e2050b3294a930cb.d: examples/raa_oracle.rs

/root/repo/target/debug/examples/raa_oracle-e2050b3294a930cb: examples/raa_oracle.rs

examples/raa_oracle.rs:
