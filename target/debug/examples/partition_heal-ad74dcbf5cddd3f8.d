/root/repo/target/debug/examples/partition_heal-ad74dcbf5cddd3f8.d: examples/partition_heal.rs Cargo.toml

/root/repo/target/debug/examples/libpartition_heal-ad74dcbf5cddd3f8.rmeta: examples/partition_heal.rs Cargo.toml

examples/partition_heal.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
