/root/repo/target/debug/examples/raa_oracle-c3ab5f6a23acb494.d: examples/raa_oracle.rs Cargo.toml

/root/repo/target/debug/examples/libraa_oracle-c3ab5f6a23acb494.rmeta: examples/raa_oracle.rs Cargo.toml

examples/raa_oracle.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
