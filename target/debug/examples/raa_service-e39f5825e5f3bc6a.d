/root/repo/target/debug/examples/raa_service-e39f5825e5f3bc6a.d: examples/raa_service.rs

/root/repo/target/debug/examples/raa_service-e39f5825e5f3bc6a: examples/raa_service.rs

examples/raa_service.rs:
