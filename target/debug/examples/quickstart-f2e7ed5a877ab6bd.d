/root/repo/target/debug/examples/quickstart-f2e7ed5a877ab6bd.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-f2e7ed5a877ab6bd: examples/quickstart.rs

examples/quickstart.rs:
