/root/repo/target/debug/examples/dynamic_pricing-4ac5a2694a3047b0.d: examples/dynamic_pricing.rs Cargo.toml

/root/repo/target/debug/examples/libdynamic_pricing-4ac5a2694a3047b0.rmeta: examples/dynamic_pricing.rs Cargo.toml

examples/dynamic_pricing.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
