/root/repo/target/debug/examples/frontrunning-02d8127868201d38.d: examples/frontrunning.rs

/root/repo/target/debug/examples/frontrunning-02d8127868201d38: examples/frontrunning.rs

examples/frontrunning.rs:
