/root/repo/target/debug/examples/raa_service-039232a024eceb42.d: examples/raa_service.rs Cargo.toml

/root/repo/target/debug/examples/libraa_service-039232a024eceb42.rmeta: examples/raa_service.rs Cargo.toml

examples/raa_service.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
