/root/repo/target/debug/examples/interoperability-29d9dd67096a283f.d: examples/interoperability.rs Cargo.toml

/root/repo/target/debug/examples/libinteroperability-29d9dd67096a283f.rmeta: examples/interoperability.rs Cargo.toml

examples/interoperability.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
