/root/repo/target/debug/examples/multi_market-bc51e0b161f9be91.d: examples/multi_market.rs

/root/repo/target/debug/examples/multi_market-bc51e0b161f9be91: examples/multi_market.rs

examples/multi_market.rs:
