/root/repo/target/debug/examples/partition_heal-06628c6671c3337f.d: examples/partition_heal.rs

/root/repo/target/debug/examples/partition_heal-06628c6671c3337f: examples/partition_heal.rs

examples/partition_heal.rs:
