/root/repo/target/debug/examples/semantic_mining-52a5e981bc597fef.d: examples/semantic_mining.rs Cargo.toml

/root/repo/target/debug/examples/libsemantic_mining-52a5e981bc597fef.rmeta: examples/semantic_mining.rs Cargo.toml

examples/semantic_mining.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
