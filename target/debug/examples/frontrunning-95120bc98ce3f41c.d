/root/repo/target/debug/examples/frontrunning-95120bc98ce3f41c.d: examples/frontrunning.rs Cargo.toml

/root/repo/target/debug/examples/libfrontrunning-95120bc98ce3f41c.rmeta: examples/frontrunning.rs Cargo.toml

examples/frontrunning.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
