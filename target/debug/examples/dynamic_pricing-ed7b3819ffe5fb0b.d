/root/repo/target/debug/examples/dynamic_pricing-ed7b3819ffe5fb0b.d: examples/dynamic_pricing.rs

/root/repo/target/debug/examples/dynamic_pricing-ed7b3819ffe5fb0b: examples/dynamic_pricing.rs

examples/dynamic_pricing.rs:
