/root/repo/target/debug/examples/semantic_mining-eb89da6a3d0cc97e.d: examples/semantic_mining.rs

/root/repo/target/debug/examples/semantic_mining-eb89da6a3d0cc97e: examples/semantic_mining.rs

examples/semantic_mining.rs:
