/root/repo/target/debug/examples/multi_market-027e9c9328d87522.d: examples/multi_market.rs Cargo.toml

/root/repo/target/debug/examples/libmulti_market-027e9c9328d87522.rmeta: examples/multi_market.rs Cargo.toml

examples/multi_market.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
