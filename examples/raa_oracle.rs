//! RAA as a lightweight oracle (paper abstract: "RAA has use cases beyond
//! HMS and can serve as a lightweight replacement for blockchain
//! oracles").
//!
//! A contract exposes a read-only `rate(bytes32[3])` function; an external
//! data service (here, a toy FX feed) is registered as the RAA provider.
//! Clients call `rate` and receive live off-chain data through the
//! argument channel — no oracle transaction, no on-chain storage, and,
//! because only *read-only* calls are augmented, no way to smuggle the
//! feed into signed state changes (§III-D).
//!
//! ```text
//! cargo run --example raa_oracle
//! ```

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use bytes::Bytes;
use sereth::crypto::{Address, H256};
use sereth::vm::abi;
use sereth::vm::asm::assemble;
use sereth::vm::exec::{CallEnv, ContractCode, MemStorage};
use sereth::vm::raa::{execute_call, RaaProvider, RaaRegistry, RaaRequest};

/// A toy exchange-rate service: the "RAA Data Service" box of Fig. 1.
struct FxFeed {
    /// Millirate, e.g. 1084 = 1.084.
    rate_milli: AtomicU64,
}

impl RaaProvider for FxFeed {
    fn augment(&self, request: &RaaRequest<'_>) -> Option<Bytes> {
        // Write the current rate into argument word 2 (Fig. 1, R3).
        let rate = self.rate_milli.load(Ordering::Relaxed);
        abi::replace_arg_word(request.calldata, 2, H256::from_low_u64(rate))
    }
}

fn main() {
    let contract_addr = Address::from_low_u64(0x0f_feed);
    let caller = Address::from_low_u64(0xca11);

    // The contract just returns its third argument — which RAA fills.
    // (This is exactly the shape of Listing 1's `get`.)
    let source = r#"
        PUSH1 0x44
        CALLDATALOAD
        PUSH1 0x00
        MSTORE
        PUSH1 0x20
        PUSH1 0x00
        RETURN
    "#;
    let code = ContractCode::Bytecode(Bytes::from(assemble(source).expect("valid asm")));
    let selector = abi::selector("rate(bytes32[3])");

    // Wire the feed into the interpreter.
    let feed = Arc::new(FxFeed { rate_milli: AtomicU64::new(1084) });
    let mut registry = RaaRegistry::new();
    registry.enable(contract_addr, selector);
    registry.set_provider(feed.clone());

    let mut storage = MemStorage::new();
    let calldata = abi::encode_call(selector, &[H256::ZERO, H256::ZERO, H256::ZERO]);

    let query = |registry: &RaaRegistry, storage: &mut MemStorage| {
        let mut env = CallEnv::test_env(caller, contract_addr, calldata.clone());
        env.is_static = true; // read-only: eligible for augmentation
        let outcome = execute_call(&code, env, storage, 1_000_000, registry);
        abi::decode_word(&outcome.return_data).expect("one word")
    };

    let rate = query(&registry, &mut storage);
    println!("rate(…) returned {} (live feed: 1.084)", rate.low_u64());
    assert_eq!(rate.low_u64(), 1084);

    // The feed moves; the very next call sees it — no block interval, no
    // oracle transaction: this is the latency win over conventional
    // oracles (§III-D).
    feed.rate_milli.store(1091, Ordering::Relaxed);
    let rate = query(&registry, &mut storage);
    println!("rate(…) returned {} after the feed moved", rate.low_u64());
    assert_eq!(rate.low_u64(), 1091);

    // A transaction (non-static call) is NOT augmented: the argument
    // arrives exactly as signed.
    let env = CallEnv::test_env(caller, contract_addr, calldata.clone());
    let outcome = execute_call(&code, env, &mut storage, 1_000_000, &registry);
    let word = abi::decode_word(&outcome.return_data).expect("one word");
    println!(
        "the same call as a transaction returns {} — signed calldata is never rewritten",
        word.low_u64()
    );
    assert_eq!(word, H256::ZERO);

    println!("raa_oracle OK");
}
