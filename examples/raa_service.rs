//! The incremental RAA view service under a many-client read storm.
//!
//! Part 1 runs the `many_markets` scenario twice — once on the
//! paper-literal recompute-per-query backend, once on the incremental
//! `sereth-raa` service — and compares read latency and the service's
//! cache counters.
//!
//! Part 2 drives the service directly from many concurrent reader
//! threads while the main thread keeps inserting `set`s and committing
//! blocks, showing that views stay exact (equal to batch Algorithm 1)
//! under concurrency.
//!
//! ```text
//! cargo run --release --example raa_service
//! ```

use std::sync::Arc;

use sereth::chain::txpool::{PoolConfig, TxPool};
use sereth::crypto::{Address, SecretKey, H256};
use sereth::hms::hms::{hash_mark_set, HmsConfig};
use sereth::hms::mark::genesis_mark;
use sereth::node::contract::set_selector;
use sereth::node::miner::pending_view;
use sereth::node::node::RaaBackend;
use sereth::raa::{RaaConfig, RaaService};
use sereth::sim::many_markets::{run_many_markets, ManyMarketsConfig};
use sereth::types::transaction::{Transaction, TxPayload};
use sereth::types::U256;

fn main() {
    scenario_comparison();
    concurrent_readers();
}

/// Part 1: the scenario-level A/B of the two backends.
fn scenario_comparison() {
    println!("== many_markets: recompute-per-query vs incremental service ==");
    let base = ManyMarketsConfig {
        markets: 24,
        readers: 200,
        rounds: 5,
        sets_per_round: 4,
        reads_per_round: 2,
        ..ManyMarketsConfig::default()
    };
    for backend in [RaaBackend::Recompute, RaaBackend::default()] {
        let config = ManyMarketsConfig { backend, ..base.clone() };
        let report = run_many_markets(&config, 7);
        println!(
            "{:<24} {:>7} reads  mean {:>9.2} µs/read  {} uncommitted, {} verified, pool {}",
            report.name,
            report.reads,
            report.mean_read_ns / 1e3,
            report.uncommitted_views,
            report.verified_reads,
            report.pool_len,
        );
        if let Some(raa) = report.raa {
            println!("  service counters: {raa}");
        }
    }
}

/// Part 2: concurrent readers over one shared service.
fn concurrent_readers() {
    println!();
    println!("== concurrent readers vs a writing pool ==");
    let markets: Vec<Address> = (0..8).map(|m| Address::from_low_u64(0xaaaa + m)).collect();
    let committed = (genesis_mark(), H256::from_low_u64(50));
    let service = Arc::new(RaaService::new(RaaConfig::new(set_selector())));
    // The pool is internally sharded and synchronized: no outer lock.
    let pool = Arc::new(TxPool::with_config(PoolConfig::default()));
    pool.subscribe();

    // Reader threads: each hammers a fixed quota of views while the
    // writer below streams sets into the pool concurrently.
    const READS_PER_READER: u64 = 25_000;
    let mut handles = Vec::new();
    for reader in 0..8u64 {
        let service = service.clone();
        let markets = markets.clone();
        handles.push(std::thread::spawn(move || {
            for read in 0..READS_PER_READER {
                let market = markets[(reader + read) as usize % markets.len()];
                std::hint::black_box(service.view(&market, committed));
            }
            READS_PER_READER
        }));
    }

    // Writer: chains sets across markets, committing periodically.
    let owner_keys: Vec<SecretKey> =
        (0..markets.len()).map(|m| SecretKey::from_label(900 + m as u64)).collect();
    let mut prev: Vec<H256> = vec![genesis_mark(); markets.len()];
    for step in 0..400u64 {
        let market = (step as usize) % markets.len();
        let value = H256::from_low_u64(1_000 + step);
        let fpv = sereth::hms::fpv::Fpv::new(
            if step / markets.len() as u64 == 0 {
                sereth::hms::fpv::Flag::Head
            } else {
                sereth::hms::fpv::Flag::Success
            },
            prev[market],
            value,
        );
        prev[market] = sereth::hms::mark::compute_mark(&prev[market], &value);
        let tx = Transaction::sign(
            TxPayload {
                nonce: step / markets.len() as u64,
                gas_price: 1,
                gas_limit: 100_000,
                to: Some(markets[market]),
                value: U256::ZERO,
                input: fpv.to_calldata(set_selector()),
            },
            &owner_keys[market],
        );
        pool.insert(tx, step).expect("pool accepts the chain");
        service.sync(&pool);
        if step % 8 == 0 {
            // Pace the writer so reads genuinely interleave with the
            // event stream instead of racing past it.
            std::thread::sleep(std::time::Duration::from_micros(200));
        }
    }
    let reads: u64 = handles.into_iter().map(|h| h.join().expect("reader thread")).sum();

    // Exactness after the storm: every market's view equals batch HMS.
    let snapshot = pending_view(&pool);
    for market in &markets {
        let expected = hash_mark_set(&snapshot, market, set_selector(), committed, &HmsConfig::default());
        let view = service.view(market, committed);
        assert_eq!(view, expected.view, "concurrent view diverged for {market:?}");
    }
    println!(
        "{} concurrent reads while 400 sets streamed in; all {} market views exact",
        reads,
        markets.len()
    );
    println!("  service counters: {}", service.metrics());
}
