//! Frontrunning and the lost-update problem (paper §II-F and §V-B).
//!
//! "If a sequence occurs such as: set(5), buy(5), set(7), set(5), buy(5),
//! a particular buy(5) can prove that it was sent during the first or the
//! second interval the price was set to 5. Linking each buy transaction to
//! a particular set price prevents the frontrunning attack."
//!
//! This example reproduces that exact history and then stages the attack:
//! a miner tries to drag an early cheap buy into a later, more expensive
//! interval (or vice versa). With plain price matching the drag would
//! succeed silently; with HMS marks it is detected — the dragged buy
//! simply fails.
//!
//! ```text
//! cargo run --example frontrunning
//! ```

use sereth::chain::genesis::GenesisBuilder;
use sereth::crypto::{Address, SecretKey, H256};
use sereth::hms::fpv::{Flag, Fpv};
use sereth::hms::mark::{compute_mark, genesis_mark};
use sereth::node::client::{Buyer, Owner};
use sereth::node::contract::{
    buy_ok_topic, default_contract_address, sereth_code, sereth_genesis_slots, ContractForm,
};
use sereth::node::node::{ClientKind, NodeConfig, NodeHandle};
use sereth::types::U256;

fn main() {
    let owner_key = SecretKey::from_label(1);
    let alice_key = SecretKey::from_label(2); // buys in the FIRST 5-interval
    let mallory_key = SecretKey::from_label(3); // buys in the SECOND 5-interval
    let contract = default_contract_address();

    let mut genesis = GenesisBuilder::new().fund(owner_key.address(), U256::from(1_000_000_000u64));
    for key in [&alice_key, &mallory_key] {
        genesis = genesis.fund(key.address(), U256::from(1_000_000_000u64));
    }
    let genesis = genesis
        .contract_with_storage(
            contract,
            sereth_code(ContractForm::Native),
            sereth_genesis_slots(&owner_key.address(), H256::from_low_u64(1)),
        )
        .build();
    let node = NodeHandle::new(
        genesis,
        NodeConfig::miner(contract, sereth::node::miner::MinerPolicy::Standard)
            .kind(ClientKind::Sereth)
            .coinbase(Address::from_low_u64(0xc0b0))
            .build(),
    );

    // --- The §V-B history: set(5), buy(5), set(7), set(5), buy(5). ---
    let mut owner = Owner::with_value(owner_key, contract, genesis_mark(), H256::from_low_u64(1), 1);
    let five = H256::from_low_u64(5);
    let seven = H256::from_low_u64(7);

    let m0 = genesis_mark();
    let m1 = compute_mark(&m0, &five); //   after set(5)   — interval 1
    let m2 = compute_mark(&m1, &seven); //  after set(7)
    let m3 = compute_mark(&m2, &five); //   after set(5)   — interval 2

    let mut alice = Buyer::new(alice_key, contract, ClientKind::Sereth, 1);
    let mut mallory = Buyer::new(mallory_key, contract, ClientKind::Sereth, 1);

    let set5a = owner.next_set(&node, five);
    let buy_alice = alice.next_buy_at(m1, five); // pinned to interval 1
    let set7 = owner.next_set(&node, seven);
    let set5b = owner.next_set(&node, five);
    let buy_mallory = mallory.next_buy_at(m3, five); // pinned to interval 2

    for (tx, t) in [(&set5a, 10u64), (&buy_alice, 20), (&set7, 30), (&set5b, 40), (&buy_mallory, 50)] {
        assert!(node.receive_tx(tx.clone(), t));
    }
    node.mine(15_000).expect("sealed");

    let succeeded: Vec<H256> = node.with_inner(|inner| {
        let stored = inner.chain.canonical_block(1).expect("block 1");
        stored
            .block
            .transactions
            .iter()
            .zip(&stored.receipts)
            .filter(|(_, r)| r.has_event(buy_ok_topic()))
            .map(|(tx, _)| tx.hash())
            .collect()
    });
    println!("history: set(5) buy@interval1 set(7) set(5) buy@interval2");
    println!("both buys at price 5 succeeded: {}", succeeded.len() == 2);
    assert!(succeeded.contains(&buy_alice.hash()));
    assert!(succeeded.contains(&buy_mallory.hash()));
    println!(
        "and the marks PROVE which interval each buy hit:\n  alice   -> {m1} (interval 1)\n  mallory -> {m3} (interval 2)"
    );
    assert_ne!(m1, m3, "same price, cryptographically distinct intervals — no lost update");

    // --- The frontrunning attempt. ---
    // A frontrunning miner wants to execute Alice's interval-1 buy in
    // interval 2 (e.g. to displace Mallory). Price matching alone cannot
    // object: the price is 5 in both intervals. The mark does.
    println!("\nfrontrunning attempt: replay Alice's offer inside interval 2…");
    let fpv = Fpv::from_calldata(buy_alice.input()).expect("well-formed buy");
    assert_eq!(fpv.value, five, "price matches interval 2's price — a naive check passes");
    assert_ne!(fpv.prev_mark, m3, "…but the mark pins it to interval 1: the contract rejects it");
    assert_eq!(fpv.flag(), Flag::Success);
    println!("blocked: buy(5) offers mark {m1}, but interval 2 requires {m3}");
    println!("frontrunning/lost-update protection holds");
}
