//! The motivating use case of paper §II-F: a decentralized market where
//! "if 100 orders are received at the published price near the start of a
//! block interval and the price changes after the first order, then only
//! one will be accepted".
//!
//! This example runs that exact story twice — buyers on standard Geth
//! clients, then buyers on Sereth clients — and prints how many of the 100
//! orders survive each way.
//!
//! ```text
//! cargo run --example dynamic_pricing --release
//! ```

use sereth::sim::scenario::{run_scenario, ScenarioConfig};

fn main() {
    // 100 buys, 25 sets (a price change every four orders), 1-second
    // submissions — the §II-F marketplace under churn.
    let num_buys = 100;
    let num_sets = 25;
    let seed = 7;

    println!("== dynamic pricing market: {num_buys} orders, {num_sets} reprices ==\n");

    let geth = run_scenario(&ScenarioConfig::geth_unmodified(num_buys, num_sets), seed);
    println!(
        "geth_unmodified : {:>3} of {} orders filled (eta {:.2}) — READ-COMMITTED views go stale",
        geth.metrics.buys_succeeded,
        geth.metrics.buys_submitted,
        geth.metrics.eta_buys()
    );

    let sereth = run_scenario(&ScenarioConfig::sereth_client(num_buys, num_sets), seed);
    println!(
        "sereth_client   : {:>3} of {} orders filled (eta {:.2}) — HMS's READ-UNCOMMITTED view tracks the pending price",
        sereth.metrics.buys_succeeded,
        sereth.metrics.buys_submitted,
        sereth.metrics.eta_buys()
    );

    let semantic = run_scenario(&ScenarioConfig::semantic_mining(num_buys, num_sets), seed);
    println!(
        "semantic_mining : {:>3} of {} orders filled (eta {:.2}) — the miner interleaves orders into their price intervals",
        semantic.metrics.buys_succeeded,
        semantic.metrics.buys_submitted,
        semantic.metrics.eta_buys()
    );

    println!("\nevery reprice succeeded in all scenarios: {}", {
        let all = [&geth, &sereth, &semantic]
            .iter()
            .all(|out| out.metrics.sets_succeeded == out.metrics.sets_submitted);
        assert!(all);
        all
    });

    let improvement = sereth.metrics.eta_buys() / geth.metrics.eta_buys().max(1e-9);
    println!("sereth improvement over geth on this seed: x{improvement:.1}");
    assert!(
        semantic.metrics.buys_succeeded >= sereth.metrics.buys_succeeded
            && sereth.metrics.buys_succeeded >= geth.metrics.buys_succeeded,
        "expected semantic >= sereth >= geth"
    );
}
