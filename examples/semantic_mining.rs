//! Semantic mining up close (paper §V-C): watch a miner that understands
//! transaction semantics splice buys into their mark intervals, block by
//! block — versus a fee-priority miner that orders blindly.
//!
//! ```text
//! cargo run --example semantic_mining
//! ```

use sereth::chain::genesis::GenesisBuilder;
use sereth::crypto::{Address, SecretKey, H256};
use sereth::hms::hms::HmsConfig;
use sereth::hms::mark::genesis_mark;
use sereth::node::client::{Buyer, Owner};
use sereth::node::contract::{
    buy_ok_topic, buy_selector, default_contract_address, sereth_code, sereth_genesis_slots, set_ok_topic,
    ContractForm,
};
use sereth::node::miner::MinerPolicy;
use sereth::node::node::{ClientKind, NodeConfig, NodeHandle};
use sereth::types::U256;

/// Builds a node, pools an adversarially-ordered batch of sets and buys,
/// mines one block, and reports per-transaction outcomes.
fn run_with_policy(policy: MinerPolicy, label: &str) -> (u64, u64) {
    let owner_key = SecretKey::from_label(1);
    let contract = default_contract_address();
    let mut genesis = GenesisBuilder::new().fund(owner_key.address(), U256::from(1_000_000_000u64));
    let buyer_keys: Vec<SecretKey> = (0..6).map(|i| SecretKey::from_label(100 + i)).collect();
    for key in &buyer_keys {
        genesis = genesis.fund(key.address(), U256::from(1_000_000_000u64));
    }
    let genesis = genesis
        .contract_with_storage(
            contract,
            sereth_code(ContractForm::Native),
            sereth_genesis_slots(&owner_key.address(), H256::from_low_u64(50)),
        )
        .build();

    let node = NodeHandle::new(
        genesis,
        NodeConfig::miner(contract, policy)
            .kind(ClientKind::Sereth)
            .coinbase(Address::from_low_u64(0xc0b0))
            .build(),
    );

    // The owner reprices three times; after each set, two buyers grab the
    // READ-UNCOMMITTED price and sign their offers. But the buys reach the
    // pool LATE and in reverse order — by then the blind (FIFO/fee) order
    // has every early offer executing after later price changes.
    let mut owner = Owner::with_value(owner_key, contract, genesis_mark(), H256::from_low_u64(50), 1);
    let mut buyers: Vec<Buyer> =
        buyer_keys.iter().map(|k| Buyer::new(k.clone(), contract, ClientKind::Sereth, 1)).collect();

    let mut now = 100;
    let mut pending_buys = Vec::new();
    for round in 0..3u64 {
        let set = owner.next_set(&node, H256::from_low_u64(60 + 10 * round));
        node.receive_tx(set, now);
        now += 10;
        for b in 0..2usize {
            let buyer = &mut buyers[(round as usize) * 2 + b];
            pending_buys.push(buyer.next_buy(&node));
        }
    }
    for tx in pending_buys.into_iter().rev() {
        node.receive_tx(tx, now);
        now += 10;
    }

    let block = node.mine(15_000).expect("sealed");
    println!("--- {label}: block order ---");
    let (mut buys_ok, mut buys_total) = (0u64, 0u64);
    node.with_inner(|inner| {
        let stored = inner.chain.canonical_block(1).expect("block 1");
        for (tx, receipt) in stored.block.transactions.iter().zip(&stored.receipts) {
            let is_buy = tx.input().len() >= 4 && tx.input()[..4] == buy_selector();
            let ok = receipt.has_event(set_ok_topic()) || receipt.has_event(buy_ok_topic());
            if is_buy {
                buys_total += 1;
                if ok {
                    buys_ok += 1;
                }
            }
            println!(
                "  {} {} -> {}",
                if is_buy { "buy" } else { "set" },
                tx.hash(),
                if ok { "OK" } else { "no effect (failed)" },
            );
        }
    });
    println!("  {buys_ok}/{buys_total} buys succeeded in block #{}\n", block.number());
    (buys_ok, buys_total)
}

fn main() {
    println!("Six buyers chase three price changes; all nine transactions meet in one block.\n");
    let (blind_ok, total) = run_with_policy(MinerPolicy::Standard, "standard (blind) miner");
    let (semantic_ok, _) =
        run_with_policy(MinerPolicy::Semantic(HmsConfig::default()), "semantic (HMS-aware) miner");
    println!("standard miner : {blind_ok}/{total} buys succeed");
    println!("semantic miner : {semantic_ok}/{total} buys succeed");
    assert!(semantic_ok >= blind_ok, "semantic mining must not do worse");
    assert_eq!(semantic_ok, total, "with every dependency pooled, semantic mining fills every order");
}
