//! Split-brain and recovery: a network partition separates two miners,
//! each side extends its own branch, and after the heal the ancestor-fetch
//! sync protocol reconverges everyone onto the longest chain.
//!
//! This exercises the substrate underneath the paper's claims: HMS rides
//! on ordinary blockchain fork resolution ("branches are resolved by
//! taking the longest branch", §III-C), so the reproduction must get that
//! machinery right — including after real network failures.
//!
//! ```text
//! cargo run --example partition_heal
//! ```

use sereth::chain::genesis::GenesisBuilder;
use sereth::crypto::{Address, SecretKey, H256};
use sereth::net::latency::{FaultModel, LatencyModel, Partition};
use sereth::net::sim::{Actor, NetworkConfig, Simulation};
use sereth::net::topology::TopologyKind;
use sereth::node::contract::{default_contract_address, sereth_code, sereth_genesis_slots, ContractForm};
use sereth::node::messages::Msg;
use sereth::node::miner::MinerPolicy;
use sereth::node::node::{BlockSchedule, NodeActor, NodeConfig, NodeHandle};
use sereth::types::U256;

fn main() {
    let owner = SecretKey::from_label(1);
    let genesis = GenesisBuilder::new()
        .fund(owner.address(), U256::from(1_000_000_000u64))
        .contract_with_storage(
            default_contract_address(),
            sereth_code(ContractForm::Native),
            sereth_genesis_slots(&owner.address(), H256::from_low_u64(50)),
        )
        .build();

    // Four nodes: 0 mines every 15 s, 1 every 17 s; 2 and 3 observe.
    let intervals: [Option<u64>; 4] = [Some(15_000), Some(17_000), None, None];
    let nodes: Vec<NodeHandle> = intervals
        .iter()
        .enumerate()
        .map(|(i, interval)| {
            NodeHandle::new(
                genesis.clone(),
                match interval {
                    Some(ms) => NodeConfig::miner(default_contract_address(), MinerPolicy::Standard)
                        .schedule(BlockSchedule::Fixed(*ms))
                        .coinbase(Address::from_low_u64(0xc000 + i as u64))
                        .build(),
                    None => NodeConfig::geth(default_contract_address()).build(),
                },
            )
        })
        .collect();
    let n = nodes.len();
    let actors: Vec<Box<dyn Actor<Msg>>> = nodes
        .iter()
        .enumerate()
        .map(|(i, node)| {
            Box::new(NodeActor { handle: node.clone(), peers: (0..n).filter(|&p| p != i).collect() })
                as Box<dyn Actor<Msg>>
        })
        .collect();

    // The cut: {1, 3} are islanded from {0, 2} between t=60 s and t=240 s.
    let cut = Partition { island: vec![1, 3], from_ms: 60_000, until_ms: 240_000 };
    println!(
        "partition: nodes {:?} cut off from the rest during [{} s, {} s)",
        cut.island,
        cut.from_ms / 1000,
        cut.until_ms / 1000
    );
    let net = NetworkConfig {
        topology: TopologyKind::Complete,
        latency: LatencyModel::Uniform { min: 20, max: 120 },
        faults: FaultModel { partitions: vec![cut], ..FaultModel::none() },
    };
    let mut sim = Simulation::new(actors, &net, 7);
    sim.schedule(15_000, 0, Msg::MineTick);
    sim.schedule(17_000, 1, Msg::MineTick);

    // Run to the middle of the cut: the two sides have diverged.
    sim.run_until(230_000);
    let heads_mid: Vec<u64> = nodes.iter().map(NodeHandle::head_number).collect();
    println!("during the cut  : per-node heights {heads_mid:?}  (split brain)");
    assert_ne!(
        nodes[0].with_inner(|i| i.chain.head_hash()),
        nodes[1].with_inner(|i| i.chain.head_hash()),
        "the miners are on different branches during the cut"
    );

    // Run past the heal: ancestor fetch reconnects the branches, and the
    // losing side reorgs to the longest chain.
    sim.run_until(400_000);
    let heads: Vec<H256> = nodes.iter().map(|node| node.with_inner(|i| i.chain.head_hash())).collect();
    let heights: Vec<u64> = nodes.iter().map(NodeHandle::head_number).collect();
    println!("after the heal  : per-node heights {heights:?}");
    assert!(heads.windows(2).all(|w| w[0] == w[1]), "all nodes converged onto one head");

    let (stored, canonical) = nodes[3].with_inner(|i| (i.chain.len(), i.chain.canonical_chain().count()));
    println!(
        "node 3 stores {stored} blocks of which {canonical} are canonical — the abandoned \
         branch ({} blocks) is preserved as a side chain",
        stored - canonical
    );
    assert!(stored > canonical);
    println!("split brain healed by longest-chain + ancestor-fetch sync ✓");
}
