//! Quickstart: deploy the Sereth contract on a two-node network, submit a
//! handful of sets and buys, mine a block, and inspect the result.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use sereth::chain::genesis::GenesisBuilder;
use sereth::chain::parallel::ExecMode;
use sereth::chain::validation::ValidationMode;
use sereth::crypto::{Address, SecretKey, H256};
use sereth::hms::hms::HmsConfig;
use sereth::hms::mark::genesis_mark;
use sereth::node::client::{Buyer, Owner};
use sereth::node::contract::{
    buy_ok_topic, default_contract_address, sereth_code, sereth_genesis_slots, set_ok_topic, ContractForm,
};
use sereth::node::miner::MinerPolicy;
use sereth::node::node::{ClientKind, NodeConfig, NodeHandle};
use sereth::types::U256;

fn main() {
    // --- 1. Genesis: fund an owner and a buyer, install the contract. ---
    let owner_key = SecretKey::from_label(1);
    let buyer_key = SecretKey::from_label(2);
    let contract = default_contract_address();
    let initial_price = H256::from_low_u64(50);
    let genesis = GenesisBuilder::new()
        .fund(owner_key.address(), U256::from(1_000_000_000u64))
        .fund(buyer_key.address(), U256::from(1_000_000_000u64))
        .contract_with_storage(
            contract,
            sereth_code(ContractForm::Native),
            sereth_genesis_slots(&owner_key.address(), initial_price),
        )
        .build();
    println!("genesis block: {}", genesis.block.hash());

    // --- 2. A mining Sereth node (HMS + RAA compiled in). ---
    let node = NodeHandle::new(
        genesis,
        NodeConfig::miner(contract, MinerPolicy::Semantic(HmsConfig::default()))
            .coinbase(Address::from_low_u64(0xc0b0))
            // `auto` picks the wave executor on multi-core hosts and the
            // sequential loop on single-CPU ones, for both the build and
            // the replay-validation side; results are identical either way.
            .exec_mode(ExecMode::auto(4))
            .validation_mode(ValidationMode::auto(4))
            .build(),
    );

    // --- 3. The owner reprices twice; the buyer watches through RAA. ---
    let mut owner = Owner::with_value(owner_key, contract, genesis_mark(), initial_price, 1);
    let mut buyer = Buyer::new(buyer_key, contract, ClientKind::Sereth, 1);

    let set60 = owner.next_set(&node, H256::from_low_u64(60));
    node.receive_tx(set60, 100);
    let (mark, price) = buyer.observe(&node);
    println!("buyer's READ-UNCOMMITTED view: price={} mark={}", price.low_u64(), mark);
    assert_eq!(price.low_u64(), 60, "the pending set is already visible");

    let buy = buyer.next_buy(&node);
    node.receive_tx(buy, 200);
    let set70 = owner.next_set(&node, H256::from_low_u64(70));
    node.receive_tx(set70, 300);

    // --- 4. Mine and inspect the receipts. ---
    let block = node.mine(15_000).expect("miner seals a block");
    println!("mined block #{} with {} transactions", block.number(), block.transactions.len());

    node.with_inner(|inner| {
        let stored = inner.chain.canonical_block(1).expect("block 1");
        for receipt in &stored.receipts {
            let kind = if receipt.has_event(set_ok_topic()) {
                "set: OK"
            } else if receipt.has_event(buy_ok_topic()) {
                "buy: OK"
            } else {
                "no state change"
            };
            println!("  tx[{}] gas={} -> {kind}", receipt.index, receipt.gas_used, kind = kind);
        }
    });

    let (mark, value) = node.committed_amv();
    println!("committed state now: price={} mark={}", value.low_u64(), mark);
    assert_eq!(value.low_u64(), 70);
    println!("quickstart OK");
}
