//! An eight-node cluster riding out loss, duplication, and a partition:
//! full nodes behind `NetNode` gossip the market workload over a ring,
//! three nodes island off mid-run, and after the heal the anti-entropy
//! protocol (head announcements, parent pulls, pending re-offers) pulls
//! everyone back onto one head with byte-equal state roots.
//!
//! This is the multi-node face of the reproduction: the paper ran its
//! evaluation on a real testbed, and the CLUSTER scenario is the
//! deterministic stand-in — same run, same seed, same bytes, every time.
//!
//! ```text
//! cargo run --example cluster
//! ```

use sereth::sim::cluster::{run_cluster, ClusterConfig};

fn main() {
    // 8 nodes on a ring, 120 buys / 12 sets injected round-robin at the
    // edges, 5 % loss + 5 % duplication on every link, and nodes 2 and 5
    // cut off from second 8 to second 30.
    let config = ClusterConfig::cluster(8, 120, 12).lossy(0.05, 0.05).partitioned(vec![2, 5], 8_000, 30_000);

    let seed = 7;
    let out = run_cluster(&config, seed);

    let heights: Vec<u64> = out.per_node_heads.iter().map(|(number, _)| *number).collect();
    println!("per-node heights   : {heights:?}");
    println!(
        "converged at       : {} s simulated ({} events, {} gossip messages)",
        out.converged_at.expect("cluster converged") as f64 / 1e3,
        out.events,
        out.messages_sent,
    );
    println!(
        "committed workload : {} blocks, {} buys, {} sets",
        out.run.metrics.blocks, out.run.metrics.buys_succeeded, out.run.metrics.sets_succeeded,
    );
    assert!(out.is_converged(), "all nodes must agree on head and state root");

    // Every node holds the same state root — not just the same tip hash.
    let roots = &out.per_node_state_roots;
    assert!(roots.windows(2).all(|w| w[0] == w[1]));
    println!("state roots        : byte-equal across all {} nodes ✓", config.num_nodes);

    // Determinism: the same seed reproduces the run exactly.
    let again = run_cluster(&config, seed);
    assert_eq!(again.per_node_heads, out.per_node_heads);
    assert_eq!(again.events, out.events);
    assert_eq!(again.messages_sent, out.messages_sent);
    println!("replay at seed {seed}   : identical heads, events, traffic ✓");
}
