//! Two independent Sereth markets on one chain — contract-scoped HMS.
//!
//! Each market's Hash-Mark-Set series lives in its own contract, so one
//! node serves independent READ-UNCOMMITTED views for both: pending price
//! changes on the energy market never leak into the grain market's view.
//! This is the per-contract generalisation the paper's §VI hints at when
//! comparing HMS with sharding ("sharding … would need customization to
//! address state throughput of individual smart contracts as does HMS").
//!
//! ```text
//! cargo run --example multi_market
//! ```

use sereth::chain::executor::{call_readonly, BlockEnv};
use sereth::chain::genesis::GenesisBuilder;
use sereth::crypto::{Address, SecretKey, H256};
use sereth::hms::hms::HmsConfig;
use sereth::hms::mark::genesis_mark;
use sereth::node::client::{Buyer, Owner};
use sereth::node::contract::{
    buy_ok_topic, get_selector, mark_selector, sereth_code, sereth_genesis_slots, ContractForm,
};
use sereth::node::miner::MinerPolicy;
use sereth::node::node::{ClientKind, NodeConfig, NodeHandle};
use sereth::types::U256;
use sereth::vm::abi;

const GRAIN_PRICE: u64 = 100;
const ENERGY_PRICE: u64 = 200;

fn grain() -> Address {
    Address::from_low_u64(0x67a1)
}

fn energy() -> Address {
    Address::from_low_u64(0xe6e7)
}

/// Reads a market's READ-UNCOMMITTED `(mark, value)` through the node's
/// RAA-augmented read-only calls (the paper's `mark`/`get` functions).
fn hms_view(node: &NodeHandle, market: Address) -> (H256, H256) {
    let caller = Address::from_low_u64(0x11);
    let zero = [H256::ZERO, H256::ZERO, H256::ZERO];
    // An O(1) state view and the registry are taken out of the node lock:
    // the HMS provider re-enters the node inside `augment`.
    let (state, raa, env) = node.with_inner(|inner| {
        let head = inner.chain.head_block().header.clone();
        (
            inner.chain.head_state_view(),
            inner.raa.clone(),
            BlockEnv {
                number: head.number,
                timestamp_ms: head.timestamp_ms,
                gas_limit: head.gas_limit,
                miner: head.miner,
            },
        )
    });
    let query = |selector: [u8; 4]| {
        let out = call_readonly(&state, caller, market, abi::encode_call(selector, &zero), &env, &raa);
        abi::decode_word(&out.return_data).expect("view calls return one word")
    };
    (query(mark_selector()), query(get_selector()))
}

fn main() {
    // --- 1. One chain, two markets, two owners, one buyer. ---------------
    let grain_owner_key = SecretKey::from_label(1);
    let energy_owner_key = SecretKey::from_label(2);
    let buyer_key = SecretKey::from_label(3);
    let genesis = GenesisBuilder::new()
        .fund(grain_owner_key.address(), U256::from(1_000_000_000u64))
        .fund(energy_owner_key.address(), U256::from(1_000_000_000u64))
        .fund(buyer_key.address(), U256::from(1_000_000_000u64))
        .contract_with_storage(
            grain(),
            sereth_code(ContractForm::Native),
            sereth_genesis_slots(&grain_owner_key.address(), H256::from_low_u64(GRAIN_PRICE)),
        )
        .contract_with_storage(
            energy(),
            sereth_code(ContractForm::Native),
            sereth_genesis_slots(&energy_owner_key.address(), H256::from_low_u64(ENERGY_PRICE)),
        )
        .build();

    let node = NodeHandle::new(
        genesis,
        NodeConfig::miner(grain(), MinerPolicy::Semantic(HmsConfig::default()))
            .coinbase(Address::from_low_u64(0xc0b0))
            .build(),
    );
    // One RAA provider serves any number of markets: enable the energy
    // market's view selectors too.
    node.with_inner_mut(|inner| {
        inner.raa.enable(energy(), get_selector());
        inner.raa.enable(energy(), mark_selector());
    });

    let mut grain_owner =
        Owner::with_value(grain_owner_key, grain(), genesis_mark(), H256::from_low_u64(GRAIN_PRICE), 1);
    let mut energy_owner =
        Owner::with_value(energy_owner_key, energy(), genesis_mark(), H256::from_low_u64(ENERGY_PRICE), 1);

    // --- 2. Interleave pending price changes on both markets. ------------
    println!("submitting interleaved sets: grain 100→110→120, energy 200→210");
    node.receive_tx(grain_owner.next_set(&node, H256::from_low_u64(110)), 10);
    node.receive_tx(energy_owner.next_set(&node, H256::from_low_u64(210)), 20);
    node.receive_tx(grain_owner.next_set(&node, H256::from_low_u64(120)), 30);

    // --- 3. Each market's READ-UNCOMMITTED view is its own series. -------
    let (grain_mark, grain_value) = hms_view(&node, grain());
    let (energy_mark, energy_value) = hms_view(&node, energy());
    println!("grain  HMS view: value {} (mark {grain_mark})", grain_value.low_u64());
    println!("energy HMS view: value {} (mark {energy_mark})", energy_value.low_u64());
    assert_eq!(grain_value.low_u64(), 120, "grain sees its own two pending sets");
    assert_eq!(energy_value.low_u64(), 210, "energy sees only its own pending set");

    // --- 4. The buyer trades on both markets with the right views. -------
    let mut grain_buyer = Buyer::new(buyer_key.clone(), grain(), ClientKind::Sereth, 1);
    node.receive_tx(grain_buyer.next_buy_at(grain_mark, grain_value), 40);
    let mut energy_buyer = Buyer::new(buyer_key, energy(), ClientKind::Sereth, 1);
    energy_buyer.set_nonce(1); // same address, continuing nonce
    node.receive_tx(energy_buyer.next_buy_at(energy_mark, energy_value), 50);

    // --- 5. Mine and show both buys landed, one per market. --------------
    let block = node.mine(15_000).expect("block sealed");
    println!("sealed block {} with {} transactions", block.number(), block.transactions.len());
    let buys: Vec<Address> = node.with_inner(|inner| {
        inner.chain.logs_with_topic(&buy_ok_topic()).into_iter().map(|(_, log)| log.address).collect()
    });
    println!(
        "successful buys: grain={} energy={}",
        buys.iter().filter(|a| **a == grain()).count(),
        buys.iter().filter(|a| **a == energy()).count()
    );
    assert!(buys.contains(&grain()) && buys.contains(&energy()));
    println!("both markets committed their buy against independent uncommitted views ✓");
}
