//! Audit a committed chain against the full isolation ladder.
//!
//! Runs one semantic-mining scenario (paper §V-C), then feeds its
//! canonical chain **and** the buyers' logged read observations through
//! the unified `sereth-consistency` [`Checker`]: program order (§IV),
//! Selective Strict Serialization (§VI), and the Adya anomaly passes
//! (dirty writes, dirty reads, lost updates). Every violation comes
//! tagged with the *weakest* isolation level that forbids it, so the
//! report answers the ladder question directly — which rung did this run
//! actually satisfy?
//!
//! The audit re-derives the market state machine from calldata alone, so
//! it is an independent oracle over the whole stack: contract, executor,
//! pool, miner, gossip.
//!
//! ```text
//! cargo run --example consistency_audit
//! ```

use sereth::sim::scenario::{run_scenario, ScenarioConfig};
use sereth::sim::{audit_run, run_history};
use sereth::types::IsolationLevel;

fn main() {
    // --- 1. Produce a committed chain: 40 buys against 10 sets. ----------
    let mut config = ScenarioConfig::semantic_mining(40, 10);
    config.drain_ms = 6 * 15_000;
    println!("running `{}` (40 buys, 10 sets, seed 42)…", config.name);
    let output = run_scenario(&config, 42);
    println!("committed {} blocks; eta = {:.2}\n", output.metrics.blocks, output.metrics.eta_buys());

    // --- 2. Extract the market history (chain + read log). ---------------
    let history = run_history(&output, config.initial_price);
    println!(
        "history: {} market transactions in commit order, {} logged reads",
        history.len(),
        history.reads().len(),
    );

    // --- 3. One unified checker pass over the whole ladder. --------------
    let report = audit_run(&output, config.initial_price);
    println!("  sets:  {} effective, {} no-ops", report.tallies.sets_ok, report.tallies.sets_noop);
    println!(
        "  buys:  {} effective, {} no-ops (stale offers)",
        report.tallies.buys_ok, report.tallies.buys_noop
    );
    println!(
        "  strict part: {} serialized intervals; buys per interval = {:?}\n",
        report.tallies.intervals, report.tallies.buys_per_interval
    );

    // --- 4. The per-level verdict table. ----------------------------------
    println!("| isolation level  | verdict | violations forbidden at this rung |");
    println!("|------------------|---------|-----------------------------------|");
    for verdict in &report.level_verdicts {
        println!(
            "| {:<16} | {:<7} | {:>33} |",
            verdict.level.label(),
            if verdict.holds { "HOLDS" } else { "BROKEN" },
            verdict.violations,
        );
    }
    for violation in report.violations.iter().take(4) {
        println!("  ! forbidden at {}: {:?}", violation.forbidden_at.label(), violation.anomaly);
    }
    if report.violations.len() > 4 {
        println!("  … and {} more", report.violations.len() - 4);
    }

    // The run executed at read-uncommitted (the paper's mode), so it must
    // hold at its own rung: the committed chain is clean — the semantic
    // miner's reorderings stayed within what SSS permits — and any
    // violations above are the dirty reads speculation *deliberately*
    // admits. That asymmetry is the ladder made visible.
    assert!(report.holds_at(config.isolation), "the run broke its own configured level");
    println!(
        "\nthe semantic miner reordered buys into their marked intervals, and the audit\n\
         proves the run holds at its configured rung ({}) ✓",
        config.isolation.label()
    );

    // --- 5. Climb the ladder: the same workload pinned at sequential. -----
    let mut strict_config =
        ScenarioConfig::semantic_mining(40, 10).with_isolation(IsolationLevel::Sequential);
    strict_config.drain_ms = 6 * 15_000;
    println!("\nre-running pinned at {}…", strict_config.isolation.label());
    let strict_output = run_scenario(&strict_config, 42);
    let strict_report = audit_run(&strict_output, strict_config.initial_price);
    for level in IsolationLevel::ALL {
        assert!(strict_report.holds_at(level), "the strict run broke {level}");
    }
    println!(
        "eta fell {:.2} → {:.2}, and the audit is clean at every rung — the throughput\n\
         the weak rung bought was paid for exactly by the dirty reads it admitted ✓",
        output.metrics.eta_buys(),
        strict_output.metrics.eta_buys()
    );
}
