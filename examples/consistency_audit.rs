//! Audit a committed chain against the paper's correctness conditions.
//!
//! Runs one semantic-mining scenario (paper §V-C), extracts the committed
//! market history from the canonical chain, and checks it against:
//!
//! * **sequential consistency** (§IV) — every sender's transactions commit
//!   in program (nonce) order;
//! * **Selective Strict Serialization** (§VI) — the sets are strictly
//!   serialized through the mark chain, and every effective buy is pinned
//!   inside exactly one inter-set interval (the condition the paper
//!   suggests as HMS's correctness condition and leaves as future work).
//!
//! The audit re-derives the market state machine from calldata alone, so
//! it is an independent oracle over the whole stack: contract, executor,
//! pool, miner, gossip.
//!
//! ```text
//! cargo run --example consistency_audit
//! ```

use sereth::consistency::record::{History, MarketSpec};
use sereth::consistency::{seqcon, sss};
use sereth::crypto::H256;
use sereth::hms::mark::genesis_mark;
use sereth::node::contract::{
    buy_ok_topic, buy_selector, default_contract_address, set_ok_topic, set_selector,
};
use sereth::sim::scenario::{run_scenario, ScenarioConfig};

fn main() {
    // --- 1. Produce a committed chain: 40 buys against 10 sets. ----------
    let mut config = ScenarioConfig::semantic_mining(40, 10);
    config.drain_ms = 6 * 15_000;
    println!("running `{}` (40 buys, 10 sets, seed 42)…", config.name);
    let output = run_scenario(&config, 42);
    println!("committed {} blocks; eta = {:.2}\n", output.metrics.blocks, output.metrics.eta_buys());

    // --- 2. Extract the market history from the canonical chain. ---------
    let spec = MarketSpec {
        contract: default_contract_address(),
        set_selector: set_selector(),
        buy_selector: buy_selector(),
        set_ok_topic: set_ok_topic(),
        buy_ok_topic: buy_ok_topic(),
        genesis_mark: genesis_mark(),
        initial_value: H256::from_low_u64(50),
    };
    let history = History::from_blocks(
        &spec,
        output.chain.iter().map(|(block, receipts)| (block, receipts.as_slice())),
    );
    let (sets_ok, sets_noop, buys_ok, buys_noop) = history.tallies();
    println!("history: {} market transactions in commit order", history.len());
    println!("  sets:  {sets_ok} effective, {sets_noop} no-ops");
    println!("  buys:  {buys_ok} effective, {buys_noop} no-ops (stale offers)\n");

    // --- 3. Sequential consistency (§IV). ---------------------------------
    let seq_violations = seqcon::check(&history);
    println!(
        "sequential consistency: {}",
        if seq_violations.is_empty() { "HOLDS".to_string() } else { format!("{seq_violations:?}") }
    );
    assert!(seq_violations.is_empty());

    // --- 4. Selective Strict Serialization (§VI). -------------------------
    let report = sss::check(&spec, &history);
    println!(
        "selective strict serialization: {}",
        if report.holds() { "HOLDS".to_string() } else { format!("{:?}", report.violations) }
    );
    assert!(report.holds());
    println!("  strict part: {} serialized intervals (one per effective set)", report.intervals);
    println!("  marked part: buys per interval = {:?}", report.buys_per_interval);
    println!(
        "\nthe semantic miner reordered buys into their marked intervals — and the audit\n\
         proves every such reordering stayed within what SSS permits ✓"
    );
}
