//! Interoperability (paper §V): Sereth clients run side by side with
//! standard Geth clients on one network — no fork, no permission. Buyers
//! attached to Sereth nodes see pending state; buyers on Geth nodes see
//! committed state; everyone agrees on the chain.
//!
//! ```text
//! cargo run --example interoperability --release
//! ```

use sereth::node::node::ClientKind;
use sereth::sim::scenario::{run_scenario, ScenarioConfig};

fn main() {
    println!("== one network, mixed clients: 4 nodes, 100 buys, 20 reprices ==\n");
    println!("| {:>12} | {:>10} | {:>10} | {:>8} |", "sereth_nodes", "buys_ok", "buys_sent", "eta");
    println!("|{:-<14}|{:-<12}|{:-<12}|{:-<10}|", "", "", "", "");

    let mut etas = Vec::new();
    for sereth_nodes in 0..=4usize {
        let mut config = ScenarioConfig::sereth_client(100, 20);
        config.node_kinds =
            (0..4).map(|i| if i < sereth_nodes { ClientKind::Sereth } else { ClientKind::Geth }).collect();
        config.miner_policy = sereth::node::miner::MinerPolicy::Standard;
        config.name = format!("mixed_{sereth_nodes}_of_4");
        let out = run_scenario(&config, 2026);
        println!(
            "| {:>12} | {:>10} | {:>10} | {:>8.2} |",
            sereth_nodes,
            out.metrics.buys_succeeded,
            out.metrics.buys_submitted,
            out.metrics.eta_buys()
        );
        assert_eq!(
            out.metrics.sets_succeeded, out.metrics.sets_submitted,
            "the owner's sets commit in every mix"
        );
        etas.push(out.metrics.eta_buys());
    }

    println!();
    println!(
        "efficiency with no Sereth peers: {:.2}; with all four: {:.2}",
        etas.first().unwrap(),
        etas.last().unwrap()
    );
    assert!(
        etas.last().unwrap() > etas.first().unwrap(),
        "running the modified client helps without any protocol change"
    );
    println!("\"Deployment of Sereth in the wild would not require a fork\" — reproduced.");
}
