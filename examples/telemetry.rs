//! Telemetry tour: mine a short chain and read the node's built-in
//! instrumentation — phase histograms, registry counters, the per-block
//! lifecycle timeline, and the Prometheus exposition text.
//!
//! ```text
//! cargo run --example telemetry
//! ```

use sereth::chain::genesis::GenesisBuilder;
use sereth::crypto::{Address, SecretKey, H256};
use sereth::hms::hms::HmsConfig;
use sereth::hms::mark::genesis_mark;
use sereth::node::client::{Buyer, Owner};
use sereth::node::contract::{default_contract_address, sereth_code, sereth_genesis_slots, ContractForm};
use sereth::node::miner::MinerPolicy;
use sereth::node::node::{ClientKind, NodeConfig, NodeHandle};
use sereth::types::U256;

fn main() {
    // --- 1. A mining Sereth node with telemetry on (the default). ---
    let owner_key = SecretKey::from_label(1);
    let contract = default_contract_address();
    let initial_price = H256::from_low_u64(50);
    let mut genesis =
        GenesisBuilder::new().fund(owner_key.address(), U256::from(1_000_000_000u64)).contract_with_storage(
            contract,
            sereth_code(ContractForm::Native),
            sereth_genesis_slots(&owner_key.address(), initial_price),
        );
    let buyer_keys: Vec<SecretKey> = (10..14).map(SecretKey::from_label).collect();
    for key in &buyer_keys {
        genesis = genesis.fund(key.address(), U256::from(1_000_000_000u64));
    }
    let node = NodeHandle::new(
        genesis.build(),
        NodeConfig::miner(contract, MinerPolicy::Semantic(HmsConfig::default()))
            .coinbase(Address::from_low_u64(0xc0b0))
            .build(), // telemetry stays at its default: enabled
    );

    // --- 2. Three blocks of market traffic: reprices racing buys. ---
    let mut owner = Owner::with_value(owner_key, contract, genesis_mark(), initial_price, 1);
    let mut buyers: Vec<Buyer> =
        buyer_keys.iter().map(|k| Buyer::new(k.clone(), contract, ClientKind::Sereth, 1)).collect();
    let mut now = 0;
    for round in 0..3u64 {
        let set = owner.next_set(&node, H256::from_low_u64(60 + 10 * round));
        now += 100;
        node.receive_tx(set, now);
        for buyer in &mut buyers {
            let buy = buyer.next_buy(&node);
            now += 100;
            node.receive_tx(buy, now);
        }
        let block = node.mine(15_000 * (round + 1)).expect("miner seals");
        println!("mined block #{} with {} transactions", block.number(), block.transactions.len());
    }

    // --- 3. Read the registry: zero node locks, torn-free by design. ---
    let snapshot = node.telemetry_snapshot();

    println!("\nphase latency histograms (ns):");
    println!(
        "| {:<22} | {:>5} | {:>9} | {:>9} | {:>9} | {:>9} |",
        "phase", "count", "mean", "p50", "p95", "p99"
    );
    for (name, histogram) in &snapshot.histograms {
        println!(
            "| {name:<22} | {:>5} | {:>9.0} | {:>9.0} | {:>9.0} | {:>9.0} |",
            histogram.count(),
            histogram.mean_ns(),
            histogram.p50_ns(),
            histogram.p95_ns(),
            histogram.p99_ns(),
        );
    }

    println!("\ncounters:");
    for (name, value) in &snapshot.counters {
        println!("  {name} = {value}");
    }

    // --- 4. The per-block lifecycle timeline (ring of recent blocks). ---
    println!("\nblock timeline:");
    for trace in &snapshot.blocks {
        let phases: Vec<String> =
            trace.phase_ns.iter().map(|(phase, ns)| format!("{}={}µs", phase.name(), ns / 1_000)).collect();
        println!("  block #{} [{}] {}", trace.number, trace.role, phases.join(" "));
    }

    // --- 5. Prometheus exposition text, ready to scrape. ---
    let prometheus = node.telemetry_snapshot().to_prometheus();
    println!("\nprometheus export ({} lines), counters excerpt:", prometheus.lines().count());
    for line in prometheus.lines().filter(|l| l.starts_with("sereth_") && !l.contains("bucket")).take(12) {
        println!("  {line}");
    }

    assert!(snapshot.histograms["phase.seal"].count() >= 3, "three sealed blocks were timed");
    assert!(snapshot.blocks.iter().any(|t| t.role == "build"));
    assert!(snapshot.blocks.iter().any(|t| t.role == "import"));
    println!("\ntelemetry OK");
}
