//! Signed transactions, Ethereum style.
//!
//! A transaction is "a concurrent method call that, if successful, changes
//! the state of the ledger" (paper §II-A). Transactions carry a per-sender
//! `nonce`; miners may order transactions from *different* senders
//! arbitrarily but must preserve nonce order within a sender (§II-C), which
//! is what makes the blockchain sequentially consistent.

use bytes::Bytes;
use sereth_crypto::address::Address;
use sereth_crypto::hash::H256;
use sereth_crypto::rlp::{RlpError, RlpReader, RlpStream};
use sereth_crypto::sig::{SecretKey, Signature};

use crate::u256::U256;

/// The unsigned body of a transaction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TxPayload {
    /// Per-sender sequence number; miners must commit in nonce order.
    pub nonce: u64,
    /// Fee offered per unit of gas; standard miners prioritise by this.
    pub gas_price: u64,
    /// Maximum gas the sender will buy.
    pub gas_limit: u64,
    /// Callee; `None` creates a contract.
    pub to: Option<Address>,
    /// Wei transferred with the call.
    pub value: U256,
    /// Calldata: function selector plus ABI-encoded arguments. For Sereth
    /// transactions this holds the FPV triple (§III-C).
    pub input: Bytes,
}

impl TxPayload {
    /// Canonical RLP encoding of the unsigned payload.
    pub fn rlp_encode(&self) -> Vec<u8> {
        let to_bytes: &[u8] = match &self.to {
            Some(address) => address.as_bytes(),
            None => &[],
        };
        RlpStream::new_list(6)
            .append_u64(self.nonce)
            .append_u64(self.gas_price)
            .append_u64(self.gas_limit)
            .append_bytes(to_bytes)
            .append_bytes(&self.value.to_be_bytes())
            .append_bytes(&self.input)
            .finish()
    }

    /// Decodes a payload previously produced by [`TxPayload::rlp_encode`].
    ///
    /// # Errors
    ///
    /// Returns an [`RlpError`] on malformed or non-canonical input.
    pub fn rlp_decode(bytes: &[u8]) -> Result<Self, RlpError> {
        let mut outer = RlpReader::new(bytes);
        let mut list = outer.read_list()?;
        let nonce = list.read_u64()?;
        let gas_price = list.read_u64()?;
        let gas_limit = list.read_u64()?;
        let to_raw = list.read_bytes()?;
        let to = match to_raw.len() {
            0 => None,
            20 => Some(Address::from_slice(to_raw).expect("length checked")),
            _ => return Err(RlpError::BadInteger),
        };
        let value_raw = list.read_bytes()?;
        if value_raw.len() != 32 {
            return Err(RlpError::BadInteger);
        }
        let mut value_bytes = [0u8; 32];
        value_bytes.copy_from_slice(value_raw);
        let value = U256::from_be_bytes(value_bytes);
        let input = Bytes::copy_from_slice(list.read_bytes()?);
        list.finish()?;
        outer.finish()?;
        Ok(Self { nonce, gas_price, gas_limit, to, value, input })
    }

    /// The digest a sender signs: keccak of the canonical payload encoding.
    pub fn sighash(&self) -> H256 {
        H256::keccak(&self.rlp_encode())
    }
}

/// A signed transaction as gossiped on the network and stored in blocks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Transaction {
    payload: TxPayload,
    sender: Address,
    signature: Signature,
    hash: H256,
}

impl Transaction {
    /// Signs `payload` with `key`, producing a sealed transaction.
    pub fn sign(payload: TxPayload, key: &SecretKey) -> Self {
        let sighash = payload.sighash();
        let signature = key.sign(sighash);
        let sender = key.address();
        let hash = Self::compute_hash(&payload, &sender, &signature);
        Self { payload, sender, signature, hash }
    }

    /// Reassembles a transaction from parts (used by decoders and by the
    /// tamper-injection tests). The hash is recomputed; validity is **not**
    /// checked — call [`Transaction::verify_signature`] for that.
    pub fn from_parts(payload: TxPayload, sender: Address, signature: Signature) -> Self {
        let hash = Self::compute_hash(&payload, &sender, &signature);
        Self { payload, sender, signature, hash }
    }

    fn compute_hash(payload: &TxPayload, sender: &Address, signature: &Signature) -> H256 {
        let encoded = RlpStream::new_list(3)
            .append_bytes(&payload.rlp_encode())
            .append_bytes(sender.as_bytes())
            .append_bytes(signature.tag().as_bytes())
            .finish();
        H256::keccak(&encoded)
    }

    /// The unsigned payload.
    pub fn payload(&self) -> &TxPayload {
        &self.payload
    }

    /// The sender address the transaction claims.
    pub fn sender(&self) -> Address {
        self.sender
    }

    /// Per-sender nonce.
    pub fn nonce(&self) -> u64 {
        self.payload.nonce
    }

    /// Offered gas price.
    pub fn gas_price(&self) -> u64 {
        self.payload.gas_price
    }

    /// Gas limit.
    pub fn gas_limit(&self) -> u64 {
        self.payload.gas_limit
    }

    /// Callee address, or `None` for contract creation.
    pub fn to(&self) -> Option<Address> {
        self.payload.to
    }

    /// Transferred value.
    pub fn value(&self) -> U256 {
        self.payload.value
    }

    /// Calldata.
    pub fn input(&self) -> &Bytes {
        &self.payload.input
    }

    /// The signature.
    pub fn signature(&self) -> &Signature {
        &self.signature
    }

    /// Cached transaction hash (keccak over payload, sender, signature).
    pub fn hash(&self) -> H256 {
        self.hash
    }

    /// Verifies that the signature matches the payload and sender. Block
    /// validators run this during replay; it is what catches transactions
    /// whose calldata was mutated after signing (the paper's RAA tampering
    /// experiment, §III-D).
    pub fn verify_signature(&self) -> bool {
        self.signature.verify(&self.sender, self.payload.sighash())
    }

    /// Returns a copy with different calldata but the *original* signature —
    /// exactly what a malicious client attempting post-signing RAA would
    /// produce. Such a transaction fails [`Transaction::verify_signature`].
    pub fn with_tampered_input(&self, input: Bytes) -> Self {
        let mut payload = self.payload.clone();
        payload.input = input;
        Self::from_parts(payload, self.sender, self.signature.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_payload(nonce: u64) -> TxPayload {
        TxPayload {
            nonce,
            gas_price: 20,
            gas_limit: 100_000,
            to: Some(Address::from_low_u64(0xc0ffee)),
            value: U256::from(7u64),
            input: Bytes::from_static(b"\x01\x02\x03\x04hello"),
        }
    }

    #[test]
    fn payload_rlp_round_trip() {
        let payload = sample_payload(3);
        let decoded = TxPayload::rlp_decode(&payload.rlp_encode()).unwrap();
        assert_eq!(decoded, payload);
    }

    #[test]
    fn creation_payload_round_trip() {
        let mut payload = sample_payload(0);
        payload.to = None;
        let decoded = TxPayload::rlp_decode(&payload.rlp_encode()).unwrap();
        assert_eq!(decoded, payload);
    }

    #[test]
    fn signed_transaction_verifies() {
        let key = SecretKey::from_label(11);
        let tx = Transaction::sign(sample_payload(0), &key);
        assert!(tx.verify_signature());
        assert_eq!(tx.sender(), key.address());
    }

    #[test]
    fn tampered_input_fails_verification() {
        let key = SecretKey::from_label(11);
        let tx = Transaction::sign(sample_payload(0), &key);
        let tampered = tx.with_tampered_input(Bytes::from_static(b"evil"));
        assert!(!tampered.verify_signature());
        assert_ne!(tampered.hash(), tx.hash());
    }

    #[test]
    fn hash_distinguishes_nonces() {
        let key = SecretKey::from_label(5);
        let a = Transaction::sign(sample_payload(0), &key);
        let b = Transaction::sign(sample_payload(1), &key);
        assert_ne!(a.hash(), b.hash());
    }

    #[test]
    fn hash_distinguishes_senders() {
        let a = Transaction::sign(sample_payload(0), &SecretKey::from_label(1));
        let b = Transaction::sign(sample_payload(0), &SecretKey::from_label(2));
        assert_ne!(a.hash(), b.hash());
    }

    #[test]
    fn sighash_ignores_signature() {
        let payload = sample_payload(9);
        let sig_a = Transaction::sign(payload.clone(), &SecretKey::from_label(1));
        let sig_b = Transaction::sign(payload.clone(), &SecretKey::from_label(2));
        assert_eq!(sig_a.payload().sighash(), sig_b.payload().sighash());
        assert_eq!(payload.sighash(), sig_a.payload().sighash());
    }

    #[test]
    fn rlp_decode_rejects_garbage() {
        assert!(TxPayload::rlp_decode(b"not rlp at all").is_err());
        assert!(TxPayload::rlp_decode(&[]).is_err());
    }
}
