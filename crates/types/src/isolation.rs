//! The isolation-level ladder (paper §II-C/§IV, made a first-class dial).
//!
//! The paper's entire argument is a trade: weaken read isolation (serve
//! READ-UNCOMMITTED views of the pending pool) and throughput rises,
//! because clients stop submitting doomed transactions against stale
//! state. [`IsolationLevel`] turns that trade into a configuration knob a
//! node enforces and an offline checker (`sereth-consistency`) audits:
//! each rung *lowers read freshness in exchange for fewer anomalies*.
//!
//! Levels are ordered weakest-first, so `a <= b` means "`b` is at least
//! as strong as `a`". An anomaly *forbidden at* level `L` is forbidden at
//! every level `>= L`; the checker tags each violation with the weakest
//! level that forbids it.

/// One rung of the isolation ladder a node can run its read paths at.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum IsolationLevel {
    /// The paper's mode: RAA/HMS read-only queries see the pending pool
    /// (speculative marks and values that may never commit). Weakest rung
    /// — dirty reads are *allowed by design*; only dirty-*write* cycles
    /// among committed transactions are forbidden.
    #[default]
    ReadUncommitted,
    /// Read-only queries and miner ordering see only committed head
    /// state: no pending-pool speculation, so dirty reads (G1a) are
    /// additionally forbidden. Reads may still move between two queries
    /// as blocks land.
    ReadCommitted,
    /// Strongest rung: queries are additionally pinned to a single
    /// serialization point — a view at one height, refreshed only on
    /// import — so repeated reads between imports are mutually
    /// consistent. Lost updates and serialization breaks are forbidden
    /// on top of everything below.
    Sequential,
}

impl IsolationLevel {
    /// Every level, weakest first — the sweep order of the ISO-FRONTIER
    /// bench and the verdict table.
    pub const ALL: [IsolationLevel; 3] =
        [IsolationLevel::ReadUncommitted, IsolationLevel::ReadCommitted, IsolationLevel::Sequential];

    /// Position on the ladder: 0 (weakest) ‥ 2 (strongest). Doubles as
    /// the `size` key of `BENCH_iso.json` points.
    pub fn ordinal(self) -> usize {
        match self {
            Self::ReadUncommitted => 0,
            Self::ReadCommitted => 1,
            Self::Sequential => 2,
        }
    }

    /// Stable kebab-case label (telemetry counter suffixes, bench
    /// artifacts, env parsing).
    pub fn label(self) -> &'static str {
        match self {
            Self::ReadUncommitted => "read-uncommitted",
            Self::ReadCommitted => "read-committed",
            Self::Sequential => "sequential",
        }
    }

    /// Parses [`IsolationLevel::label`] output (also accepts the bare
    /// ordinal), for bench/CLI env knobs.
    pub fn parse(text: &str) -> Option<IsolationLevel> {
        match text.trim() {
            "read-uncommitted" | "ru" | "0" => Some(Self::ReadUncommitted),
            "read-committed" | "rc" | "1" => Some(Self::ReadCommitted),
            "sequential" | "seq" | "2" => Some(Self::Sequential),
            _ => None,
        }
    }
}

impl core::fmt::Display for IsolationLevel {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_orders_weakest_first() {
        assert!(IsolationLevel::ReadUncommitted < IsolationLevel::ReadCommitted);
        assert!(IsolationLevel::ReadCommitted < IsolationLevel::Sequential);
        assert_eq!(IsolationLevel::default(), IsolationLevel::ReadUncommitted);
        let ordinals: Vec<usize> = IsolationLevel::ALL.iter().map(|l| l.ordinal()).collect();
        assert_eq!(ordinals, vec![0, 1, 2]);
    }

    #[test]
    fn labels_round_trip() {
        for level in IsolationLevel::ALL {
            assert_eq!(IsolationLevel::parse(level.label()), Some(level));
            assert_eq!(IsolationLevel::parse(&level.ordinal().to_string()), Some(level));
        }
        assert_eq!(IsolationLevel::parse("ru"), Some(IsolationLevel::ReadUncommitted));
        assert_eq!(IsolationLevel::parse("serializable"), None);
    }
}
