//! Blocks: headers, bodies, and hashing.
//!
//! "Blocks of selected transactions are committed all at once in a super
//! transaction called block publishing" (paper §II-D). A block's header
//! commits to the parent, to the ordered transaction list, to the receipts,
//! and to the post-state, so that every peer can *replay* the block and
//! check that it reaches the same commitments.

use sereth_crypto::address::Address;
use sereth_crypto::hash::H256;
use sereth_crypto::merkle::merkle_root;
use sereth_crypto::rlp::RlpStream;

use crate::receipt::Receipt;
use crate::transaction::Transaction;

/// A block header.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockHeader {
    /// Hash of the parent block.
    pub parent_hash: H256,
    /// Height; the genesis block is 0.
    pub number: u64,
    /// Milliseconds since simulation start (stands in for wall-clock time).
    pub timestamp_ms: u64,
    /// Address of the miner that produced the block.
    pub miner: Address,
    /// Commitment to the post-state (see `sereth-chain`).
    pub state_root: H256,
    /// Merkle root over the ordered transaction hashes.
    pub tx_root: H256,
    /// Merkle root over the receipt hashes.
    pub receipts_root: H256,
    /// Total gas consumed by the block's transactions.
    pub gas_used: u64,
    /// Gas capacity of the block; bounds how many transactions fit.
    pub gas_limit: u64,
}

impl BlockHeader {
    /// Canonical RLP encoding.
    pub fn rlp_encode(&self) -> Vec<u8> {
        RlpStream::new_list(9)
            .append_bytes(self.parent_hash.as_bytes())
            .append_u64(self.number)
            .append_u64(self.timestamp_ms)
            .append_bytes(self.miner.as_bytes())
            .append_bytes(self.state_root.as_bytes())
            .append_bytes(self.tx_root.as_bytes())
            .append_bytes(self.receipts_root.as_bytes())
            .append_u64(self.gas_used)
            .append_u64(self.gas_limit)
            .finish()
    }

    /// The block hash: keccak of the canonical header encoding.
    pub fn hash(&self) -> H256 {
        H256::keccak(&self.rlp_encode())
    }
}

/// A sealed block: header plus the ordered transactions it commits.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Block {
    /// The sealed header.
    pub header: BlockHeader,
    /// Transactions in block order — the order every validator replays.
    pub transactions: Vec<Transaction>,
}

impl Block {
    /// The block hash.
    pub fn hash(&self) -> H256 {
        self.header.hash()
    }

    /// Height of the block.
    pub fn number(&self) -> u64 {
        self.header.number
    }

    /// Computes the Merkle root over `transactions` in order.
    pub fn compute_tx_root(transactions: &[Transaction]) -> H256 {
        let leaves: Vec<H256> = transactions.iter().map(Transaction::hash).collect();
        merkle_root(&leaves)
    }

    /// Computes the Merkle root over `receipts` in order.
    pub fn compute_receipts_root(receipts: &[Receipt]) -> H256 {
        let leaves: Vec<H256> = receipts.iter().map(Receipt::hash).collect();
        merkle_root(&leaves)
    }

    /// Checks that the header's `tx_root` matches the body. (Cheap
    /// structural check; full replay validation lives in `sereth-chain`.)
    pub fn body_matches_header(&self) -> bool {
        Self::compute_tx_root(&self.transactions) == self.header.tx_root
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transaction::TxPayload;
    use crate::u256::U256;
    use bytes::Bytes;
    use sereth_crypto::sig::SecretKey;

    fn sample_tx(nonce: u64) -> Transaction {
        Transaction::sign(
            TxPayload {
                nonce,
                gas_price: 1,
                gas_limit: 21_000,
                to: Some(Address::from_low_u64(1)),
                value: U256::ZERO,
                input: Bytes::new(),
            },
            &SecretKey::from_label(1),
        )
    }

    fn sample_block() -> Block {
        let transactions = vec![sample_tx(0), sample_tx(1)];
        let header = BlockHeader {
            parent_hash: H256::keccak(b"parent"),
            number: 1,
            timestamp_ms: 15_000,
            miner: Address::from_low_u64(0xa),
            state_root: H256::keccak(b"state"),
            tx_root: Block::compute_tx_root(&transactions),
            receipts_root: H256::keccak(b"receipts"),
            gas_used: 42_000,
            gas_limit: 8_000_000,
        };
        Block { header, transactions }
    }

    #[test]
    fn hash_changes_with_any_header_field() {
        let base = sample_block().header;
        let mut variants = Vec::new();
        let mut h = base.clone();
        h.parent_hash = H256::keccak(b"other");
        variants.push(h);
        let mut h = base.clone();
        h.number += 1;
        variants.push(h);
        let mut h = base.clone();
        h.timestamp_ms += 1;
        variants.push(h);
        let mut h = base.clone();
        h.state_root = H256::keccak(b"other");
        variants.push(h);
        let mut h = base.clone();
        h.gas_used += 1;
        variants.push(h);
        for variant in variants {
            assert_ne!(variant.hash(), base.hash());
        }
    }

    #[test]
    fn body_matches_header_detects_reordering() {
        let mut block = sample_block();
        assert!(block.body_matches_header());
        block.transactions.swap(0, 1);
        assert!(!block.body_matches_header());
    }

    #[test]
    fn body_matches_header_detects_removal() {
        let mut block = sample_block();
        block.transactions.pop();
        assert!(!block.body_matches_header());
    }

    #[test]
    fn empty_block_is_consistent() {
        let header = BlockHeader {
            parent_hash: H256::ZERO,
            number: 0,
            timestamp_ms: 0,
            miner: Address::ZERO,
            state_root: H256::ZERO,
            tx_root: Block::compute_tx_root(&[]),
            receipts_root: Block::compute_receipts_root(&[]),
            gas_used: 0,
            gas_limit: 8_000_000,
        };
        let block = Block { header, transactions: vec![] };
        assert!(block.body_matches_header());
    }
}
