//! Primitive chain types shared by every `sereth` crate.
//!
//! * [`u256`] — 256-bit unsigned arithmetic with EVM semantics;
//! * [`transaction`] — signed transactions with per-sender nonces;
//! * [`block`] — headers, bodies, and Merkle commitments;
//! * [`receipt`] — execution outcomes and event logs, the raw material for
//!   the paper's *state throughput* metric (§III-A).
//!
//! # Examples
//!
//! ```
//! use bytes::Bytes;
//! use sereth_crypto::{Address, SecretKey};
//! use sereth_types::{Transaction, TxPayload, U256};
//!
//! let key = SecretKey::from_label(1);
//! let tx = Transaction::sign(
//!     TxPayload {
//!         nonce: 0,
//!         gas_price: 20,
//!         gas_limit: 100_000,
//!         to: Some(Address::from_low_u64(0xc0ffee)),
//!         value: U256::from(5u64),
//!         input: Bytes::new(),
//!     },
//!     &key,
//! );
//! assert!(tx.verify_signature());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod block;
pub mod isolation;
pub mod receipt;
pub mod transaction;
pub mod u256;

pub use block::{Block, BlockHeader};
pub use isolation::IsolationLevel;
pub use receipt::{Log, Receipt, TxStatus};
pub use transaction::{Transaction, TxPayload};
pub use u256::{ParseU256Error, U256};

/// Milliseconds of simulated time since genesis. The discrete-event
/// simulator in `sereth-net` advances this clock.
pub type SimTime = u64;
