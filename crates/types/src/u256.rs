//! A 256-bit unsigned integer with EVM arithmetic semantics.
//!
//! The interpreter in `sereth-vm` operates on 256-bit words, so arithmetic
//! here follows the EVM: `+`, `-`, `*` wrap modulo 2²⁵⁶, division by zero
//! yields zero (as the `DIV`/`MOD` opcodes specify), and shifts of 256 bits
//! or more yield zero. Checked and overflowing variants are provided for
//! callers that need to observe overflow.

use core::cmp::Ordering;
use core::fmt;
use core::ops::{Add, BitAnd, BitOr, BitXor, Mul, Not, Shl, Shr, Sub};
use core::str::FromStr;

use sereth_crypto::hash::H256;

/// A 256-bit unsigned integer stored as four little-endian 64-bit limbs.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct U256(pub(crate) [u64; 4]);

/// Error parsing a [`U256`] from a string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseU256Error {
    /// The string was empty.
    Empty,
    /// A character was not a valid digit for the radix.
    InvalidDigit(char),
    /// The value exceeds 2²⁵⁶ − 1.
    Overflow,
}

impl fmt::Display for ParseU256Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Empty => write!(f, "empty integer string"),
            Self::InvalidDigit(c) => write!(f, "invalid digit {c:?}"),
            Self::Overflow => write!(f, "value exceeds 256 bits"),
        }
    }
}

impl std::error::Error for ParseU256Error {}

impl U256 {
    /// The value 0.
    pub const ZERO: Self = Self([0, 0, 0, 0]);
    /// The value 1.
    pub const ONE: Self = Self([1, 0, 0, 0]);
    /// The maximum value, 2²⁵⁶ − 1.
    pub const MAX: Self = Self([u64::MAX; 4]);

    /// Constructs from little-endian limbs.
    pub const fn from_limbs(limbs: [u64; 4]) -> Self {
        Self(limbs)
    }

    /// The little-endian limbs.
    pub const fn limbs(&self) -> [u64; 4] {
        self.0
    }

    /// Returns `true` if the value is zero.
    pub fn is_zero(&self) -> bool {
        self.0 == [0, 0, 0, 0]
    }

    /// Converts to big-endian bytes (the EVM word representation).
    pub fn to_be_bytes(self) -> [u8; 32] {
        let mut out = [0u8; 32];
        for (i, limb) in self.0.iter().enumerate() {
            out[32 - 8 * (i + 1)..32 - 8 * i].copy_from_slice(&limb.to_be_bytes());
        }
        out
    }

    /// Constructs from big-endian bytes.
    pub fn from_be_bytes(bytes: [u8; 32]) -> Self {
        let mut limbs = [0u64; 4];
        for (i, limb) in limbs.iter_mut().enumerate() {
            let mut word = [0u8; 8];
            word.copy_from_slice(&bytes[32 - 8 * (i + 1)..32 - 8 * i]);
            *limb = u64::from_be_bytes(word);
        }
        Self(limbs)
    }

    /// Interprets an [`H256`] as a big-endian 256-bit integer.
    pub fn from_h256(value: H256) -> Self {
        Self::from_be_bytes(value.into_inner())
    }

    /// Converts to an [`H256`] in big-endian form.
    pub fn to_h256(self) -> H256 {
        H256::new(self.to_be_bytes())
    }

    /// Addition reporting overflow.
    pub fn overflowing_add(self, rhs: Self) -> (Self, bool) {
        let mut limbs = [0u64; 4];
        let mut carry = false;
        for (i, limb) in limbs.iter_mut().enumerate() {
            let (sum, c1) = self.0[i].overflowing_add(rhs.0[i]);
            let (sum, c2) = sum.overflowing_add(carry as u64);
            *limb = sum;
            carry = c1 || c2;
        }
        (Self(limbs), carry)
    }

    /// Subtraction reporting borrow.
    pub fn overflowing_sub(self, rhs: Self) -> (Self, bool) {
        let mut limbs = [0u64; 4];
        let mut borrow = false;
        for (i, limb) in limbs.iter_mut().enumerate() {
            let (diff, b1) = self.0[i].overflowing_sub(rhs.0[i]);
            let (diff, b2) = diff.overflowing_sub(borrow as u64);
            *limb = diff;
            borrow = b1 || b2;
        }
        (Self(limbs), borrow)
    }

    /// Multiplication keeping the low 256 bits, reporting whether any high
    /// bits were lost.
    pub fn overflowing_mul(self, rhs: Self) -> (Self, bool) {
        let mut wide = [0u64; 8];
        for i in 0..4 {
            let mut carry = 0u128;
            for j in 0..4 {
                let idx = i + j;
                let product = self.0[i] as u128 * rhs.0[j] as u128 + wide[idx] as u128 + carry;
                wide[idx] = product as u64;
                carry = product >> 64;
            }
            wide[i + 4] = wide[i + 4].wrapping_add(carry as u64);
        }
        let overflow = wide[4..].iter().any(|&limb| limb != 0);
        (Self([wide[0], wide[1], wide[2], wide[3]]), overflow)
    }

    /// Checked addition; `None` on overflow.
    pub fn checked_add(self, rhs: Self) -> Option<Self> {
        match self.overflowing_add(rhs) {
            (value, false) => Some(value),
            _ => None,
        }
    }

    /// Checked subtraction; `None` on underflow.
    pub fn checked_sub(self, rhs: Self) -> Option<Self> {
        match self.overflowing_sub(rhs) {
            (value, false) => Some(value),
            _ => None,
        }
    }

    /// Checked multiplication; `None` on overflow.
    pub fn checked_mul(self, rhs: Self) -> Option<Self> {
        match self.overflowing_mul(rhs) {
            (value, false) => Some(value),
            _ => None,
        }
    }

    /// Saturating subtraction: clamps at zero instead of wrapping.
    pub fn saturating_sub(self, rhs: Self) -> Self {
        self.checked_sub(rhs).unwrap_or(Self::ZERO)
    }

    /// Division and remainder.
    ///
    /// Returns `None` when `divisor` is zero; the EVM's `DIV`/`MOD` opcodes
    /// map that case to zero at the call site.
    pub fn div_rem(self, divisor: Self) -> Option<(Self, Self)> {
        if divisor.is_zero() {
            return None;
        }
        if self < divisor {
            return Some((Self::ZERO, self));
        }
        // Restoring long division, one bit at a time. 256 iterations of
        // O(limbs) work; ample for simulation workloads.
        let mut quotient = Self::ZERO;
        let mut remainder = Self::ZERO;
        for i in (0..256).rev() {
            remainder = remainder << 1;
            if self.bit(i) {
                remainder.0[0] |= 1;
            }
            if remainder >= divisor {
                remainder = remainder - divisor;
                quotient.set_bit(i);
            }
        }
        Some((quotient, remainder))
    }

    /// Exact `(self + rhs) mod modulus` over arbitrary precision — the
    /// intermediate sum is *not* truncated to 256 bits, as the EVM's
    /// `ADDMOD` requires. Returns zero for a zero modulus.
    pub fn add_mod(self, rhs: Self, modulus: Self) -> Self {
        if modulus.is_zero() {
            return Self::ZERO;
        }
        let a = self.div_rem(modulus).expect("modulus checked").1;
        let b = rhs.div_rem(modulus).expect("modulus checked").1;
        let (sum, carry) = a.overflowing_add(b);
        // a, b < modulus ≤ 2²⁵⁶, so a + b < 2·modulus: one conditional
        // subtraction suffices (the carry case is sum + 2²⁵⁶ ≥ modulus).
        if carry || sum >= modulus {
            sum.overflowing_sub(modulus).0
        } else {
            sum
        }
    }

    /// Exact `(self * rhs) mod modulus` over the full 512-bit product —
    /// the EVM's `MULMOD`. Returns zero for a zero modulus.
    pub fn mul_mod(self, rhs: Self, modulus: Self) -> Self {
        if modulus.is_zero() {
            return Self::ZERO;
        }
        // Double-and-add: exact, branch-simple, and fast enough for the
        // simulation (≤ 256 modular additions).
        let mut result = Self::ZERO;
        let mut base = self.div_rem(modulus).expect("modulus checked").1;
        let rhs_bits = rhs.bits();
        for i in 0..rhs_bits {
            if rhs.bit(i as usize) {
                result = result.add_mod(base, modulus);
            }
            base = base.add_mod(base, modulus);
        }
        result
    }

    /// `self ** exponent` modulo 2²⁵⁶ (the EVM's `EXP` semantics), by
    /// square-and-multiply.
    pub fn wrapping_pow(self, exponent: Self) -> Self {
        let mut result = Self::ONE;
        let mut base = self;
        let bits = exponent.bits();
        for i in 0..bits {
            if exponent.bit(i as usize) {
                result = result.overflowing_mul(base).0;
            }
            base = base.overflowing_mul(base).0;
        }
        result
    }

    /// `true` when the top bit is set, i.e. the value is negative under the
    /// EVM's two's-complement interpretation of a 256-bit word.
    pub fn is_negative(&self) -> bool {
        self.0[3] >> 63 == 1
    }

    /// Two's-complement negation (wrapping): `-x mod 2^256`.
    pub fn wrapping_neg(self) -> Self {
        (!self).overflowing_add(Self::ONE).0
    }

    /// `SDIV`: two's-complement division, truncating toward zero.
    ///
    /// Division by zero yields zero. `MIN / -1` wraps to `MIN`, matching
    /// the EVM (there is no trap representation).
    pub fn signed_div(self, rhs: Self) -> Self {
        if rhs.is_zero() {
            return Self::ZERO;
        }
        let negative = self.is_negative() != rhs.is_negative();
        let a = if self.is_negative() { self.wrapping_neg() } else { self };
        let b = if rhs.is_negative() { rhs.wrapping_neg() } else { rhs };
        let (quotient, _) = a.div_rem(b).expect("divisor checked non-zero");
        if negative {
            quotient.wrapping_neg()
        } else {
            quotient
        }
    }

    /// `SMOD`: two's-complement remainder; the sign follows the dividend.
    ///
    /// A zero divisor yields zero.
    pub fn signed_rem(self, rhs: Self) -> Self {
        if rhs.is_zero() {
            return Self::ZERO;
        }
        let a = if self.is_negative() { self.wrapping_neg() } else { self };
        let b = if rhs.is_negative() { rhs.wrapping_neg() } else { rhs };
        let (_, remainder) = a.div_rem(b).expect("divisor checked non-zero");
        if self.is_negative() {
            remainder.wrapping_neg()
        } else {
            remainder
        }
    }

    /// `SLT`: two's-complement less-than.
    pub fn signed_lt(&self, rhs: &Self) -> bool {
        match (self.is_negative(), rhs.is_negative()) {
            (true, false) => true,
            (false, true) => false,
            // Same sign: unsigned order agrees with two's-complement order.
            _ => self < rhs,
        }
    }

    /// `SAR`: arithmetic right shift — copies of the sign bit are shifted
    /// in from the top. Shifts of 256 or more collapse to all-zeros or
    /// all-ones depending on the sign.
    pub fn sar(self, shift: u32) -> Self {
        if shift >= 256 {
            return if self.is_negative() { Self::MAX } else { Self::ZERO };
        }
        if self.is_negative() {
            // For negative values, `x sar s == !((!x) >> s)`: the logical
            // shift clears the top bits of the complement, so complementing
            // again sets them.
            !((!self) >> shift)
        } else {
            self >> shift
        }
    }

    /// `SIGNEXTEND`: treats the value as `byte_index + 1` bytes wide and
    /// extends its sign bit through the full word. Indexes of 31 and above
    /// leave the value unchanged, as in the EVM.
    pub fn sign_extend(self, byte_index: usize) -> Self {
        if byte_index >= 31 {
            return self;
        }
        let sign_bit = byte_index * 8 + 7;
        let low_mask = (Self::ONE << (sign_bit as u32 + 1)).overflowing_sub(Self::ONE).0;
        if self.bit(sign_bit) {
            self | !low_mask
        } else {
            self & low_mask
        }
    }

    /// Fast division by a small divisor, used for decimal formatting.
    fn div_rem_u64(self, divisor: u64) -> (Self, u64) {
        debug_assert!(divisor != 0);
        let mut quotient = [0u64; 4];
        let mut remainder: u128 = 0;
        for i in (0..4).rev() {
            let acc = (remainder << 64) | self.0[i] as u128;
            quotient[i] = (acc / divisor as u128) as u64;
            remainder = acc % divisor as u128;
        }
        (Self(quotient), remainder as u64)
    }

    /// Returns bit `i` (0 = least significant).
    ///
    /// # Panics
    ///
    /// Panics if `i >= 256`.
    pub fn bit(&self, i: usize) -> bool {
        assert!(i < 256, "bit index {i} out of range");
        (self.0[i / 64] >> (i % 64)) & 1 == 1
    }

    fn set_bit(&mut self, i: usize) {
        self.0[i / 64] |= 1 << (i % 64);
    }

    /// Byte `i` counted from the most significant end, as the EVM `BYTE`
    /// opcode does; returns 0 for `i >= 32`.
    pub fn byte_msb(&self, i: usize) -> u8 {
        if i >= 32 {
            0
        } else {
            self.to_be_bytes()[i]
        }
    }

    /// Number of leading zero bits.
    pub fn leading_zeros(&self) -> u32 {
        for i in (0..4).rev() {
            if self.0[i] != 0 {
                return self.0[i].leading_zeros() + 64 * (3 - i as u32);
            }
        }
        256
    }

    /// Number of bits needed to represent the value (0 for zero).
    pub fn bits(&self) -> u32 {
        256 - self.leading_zeros()
    }

    /// Converts to `u64` if the value fits.
    pub fn try_to_u64(self) -> Option<u64> {
        if self.0[1] == 0 && self.0[2] == 0 && self.0[3] == 0 {
            Some(self.0[0])
        } else {
            None
        }
    }

    /// Converts to `u64`, saturating at `u64::MAX`.
    pub fn saturating_to_u64(self) -> u64 {
        self.try_to_u64().unwrap_or(u64::MAX)
    }

    /// Converts to `u128` if the value fits.
    pub fn try_to_u128(self) -> Option<u128> {
        if self.0[2] == 0 && self.0[3] == 0 {
            Some((self.0[1] as u128) << 64 | self.0[0] as u128)
        } else {
            None
        }
    }

    /// Parses a decimal string.
    ///
    /// # Errors
    ///
    /// See [`ParseU256Error`].
    pub fn from_dec_str(s: &str) -> Result<Self, ParseU256Error> {
        if s.is_empty() {
            return Err(ParseU256Error::Empty);
        }
        let mut value = Self::ZERO;
        let ten = Self::from(10u64);
        for c in s.chars() {
            let digit = c.to_digit(10).ok_or(ParseU256Error::InvalidDigit(c))?;
            value = value.checked_mul(ten).ok_or(ParseU256Error::Overflow)?;
            value = value.checked_add(Self::from(digit as u64)).ok_or(ParseU256Error::Overflow)?;
        }
        Ok(value)
    }
}

impl From<u64> for U256 {
    fn from(value: u64) -> Self {
        Self([value, 0, 0, 0])
    }
}

impl From<u128> for U256 {
    fn from(value: u128) -> Self {
        Self([value as u64, (value >> 64) as u64, 0, 0])
    }
}

impl From<U256> for H256 {
    fn from(value: U256) -> Self {
        value.to_h256()
    }
}

impl From<H256> for U256 {
    fn from(value: H256) -> Self {
        Self::from_h256(value)
    }
}

impl PartialOrd for U256 {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for U256 {
    fn cmp(&self, other: &Self) -> Ordering {
        for i in (0..4).rev() {
            match self.0[i].cmp(&other.0[i]) {
                Ordering::Equal => continue,
                ordering => return ordering,
            }
        }
        Ordering::Equal
    }
}

impl Add for U256 {
    type Output = Self;

    /// Wrapping addition, matching the EVM `ADD` opcode.
    fn add(self, rhs: Self) -> Self {
        self.overflowing_add(rhs).0
    }
}

impl Sub for U256 {
    type Output = Self;

    /// Wrapping subtraction, matching the EVM `SUB` opcode.
    fn sub(self, rhs: Self) -> Self {
        self.overflowing_sub(rhs).0
    }
}

impl Mul for U256 {
    type Output = Self;

    /// Wrapping multiplication, matching the EVM `MUL` opcode.
    fn mul(self, rhs: Self) -> Self {
        self.overflowing_mul(rhs).0
    }
}

impl BitAnd for U256 {
    type Output = Self;

    fn bitand(self, rhs: Self) -> Self {
        Self([self.0[0] & rhs.0[0], self.0[1] & rhs.0[1], self.0[2] & rhs.0[2], self.0[3] & rhs.0[3]])
    }
}

impl BitOr for U256 {
    type Output = Self;

    fn bitor(self, rhs: Self) -> Self {
        Self([self.0[0] | rhs.0[0], self.0[1] | rhs.0[1], self.0[2] | rhs.0[2], self.0[3] | rhs.0[3]])
    }
}

impl BitXor for U256 {
    type Output = Self;

    fn bitxor(self, rhs: Self) -> Self {
        Self([self.0[0] ^ rhs.0[0], self.0[1] ^ rhs.0[1], self.0[2] ^ rhs.0[2], self.0[3] ^ rhs.0[3]])
    }
}

impl Not for U256 {
    type Output = Self;

    fn not(self) -> Self {
        Self([!self.0[0], !self.0[1], !self.0[2], !self.0[3]])
    }
}

impl Shl<u32> for U256 {
    type Output = Self;

    /// Left shift; shifts of 256 or more produce zero (EVM `SHL`).
    fn shl(self, shift: u32) -> Self {
        if shift >= 256 {
            return Self::ZERO;
        }
        let limb_shift = (shift / 64) as usize;
        let bit_shift = shift % 64;
        let mut limbs = [0u64; 4];
        for i in (limb_shift..4).rev() {
            let mut limb = self.0[i - limb_shift] << bit_shift;
            if bit_shift > 0 && i > limb_shift {
                limb |= self.0[i - limb_shift - 1] >> (64 - bit_shift);
            }
            limbs[i] = limb;
        }
        Self(limbs)
    }
}

impl Shr<u32> for U256 {
    type Output = Self;

    /// Logical right shift; shifts of 256 or more produce zero (EVM `SHR`).
    fn shr(self, shift: u32) -> Self {
        if shift >= 256 {
            return Self::ZERO;
        }
        let limb_shift = (shift / 64) as usize;
        let bit_shift = shift % 64;
        let mut limbs = [0u64; 4];
        for (i, limb) in limbs.iter_mut().enumerate().take(4 - limb_shift) {
            let mut value = self.0[i + limb_shift] >> bit_shift;
            if bit_shift > 0 && i + limb_shift + 1 < 4 {
                value |= self.0[i + limb_shift + 1] << (64 - bit_shift);
            }
            *limb = value;
        }
        Self(limbs)
    }
}

impl fmt::Display for U256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return write!(f, "0");
        }
        let mut digits = Vec::new();
        let mut value = *self;
        while !value.is_zero() {
            let (quotient, digit) = value.div_rem_u64(10);
            digits.push(b'0' + digit as u8);
            value = quotient;
        }
        digits.reverse();
        f.pad_integral(true, "", core::str::from_utf8(&digits).expect("ascii digits"))
    }
}

impl fmt::Debug for U256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "U256({self})")
    }
}

impl fmt::LowerHex for U256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if f.alternate() {
            write!(f, "0x")?;
        }
        let bytes = self.to_be_bytes();
        let hex: String = bytes.iter().map(|b| format!("{b:02x}")).collect();
        let trimmed = hex.trim_start_matches('0');
        write!(f, "{}", if trimmed.is_empty() { "0" } else { trimmed })
    }
}

impl FromStr for U256 {
    type Err = ParseU256Error;

    /// Parses decimal, or hex when prefixed with `0x`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if let Some(hex) = s.strip_prefix("0x") {
            if hex.is_empty() {
                return Err(ParseU256Error::Empty);
            }
            if hex.len() > 64 {
                return Err(ParseU256Error::Overflow);
            }
            let mut value = Self::ZERO;
            for c in hex.chars() {
                let digit = c.to_digit(16).ok_or(ParseU256Error::InvalidDigit(c))?;
                value = (value << 4) | Self::from(digit as u64);
            }
            Ok(value)
        } else {
            Self::from_dec_str(s)
        }
    }
}

impl core::iter::Sum for U256 {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(Self::ZERO, |acc, x| acc + x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_arithmetic() {
        let two = U256::from(2u64);
        let three = U256::from(3u64);
        assert_eq!(two + three, U256::from(5u64));
        assert_eq!(three - two, U256::ONE);
        assert_eq!(two * three, U256::from(6u64));
    }

    #[test]
    fn add_wraps_at_max() {
        assert_eq!(U256::MAX + U256::ONE, U256::ZERO);
        let (value, overflow) = U256::MAX.overflowing_add(U256::ONE);
        assert!(overflow);
        assert_eq!(value, U256::ZERO);
        assert_eq!(U256::MAX.checked_add(U256::ONE), None);
    }

    #[test]
    fn sub_wraps_below_zero() {
        assert_eq!(U256::ZERO - U256::ONE, U256::MAX);
        assert_eq!(U256::ZERO.checked_sub(U256::ONE), None);
        assert_eq!(U256::ZERO.saturating_sub(U256::ONE), U256::ZERO);
    }

    #[test]
    fn mul_carries_across_limbs() {
        let big = U256::from(u64::MAX);
        let squared = big * big;
        // (2^64 - 1)^2 = 2^128 - 2^65 + 1
        let expected = U256::from(u128::MAX) * U256::ONE - U256::from(u128::MAX - (u128::MAX - 1));
        // Simpler check against u128 arithmetic:
        let expected2 = {
            let v = (u64::MAX as u128) * (u64::MAX as u128);
            U256::from(v)
        };
        assert_eq!(squared, expected2);
        let _ = expected;
    }

    #[test]
    fn mul_overflow_detected() {
        let high = U256::ONE << 200;
        assert!(high.overflowing_mul(high).1);
        assert_eq!(high.checked_mul(high), None);
    }

    #[test]
    fn div_rem_matches_u128() {
        let a = U256::from(123_456_789_012_345_678_901_234_567u128);
        let b = U256::from(987_654_321u64);
        let (q, r) = a.div_rem(b).unwrap();
        assert_eq!(q.try_to_u128().unwrap(), 123_456_789_012_345_678_901_234_567u128 / 987_654_321);
        assert_eq!(r.try_to_u128().unwrap(), 123_456_789_012_345_678_901_234_567u128 % 987_654_321);
    }

    #[test]
    fn div_by_zero_is_none() {
        assert_eq!(U256::from(5u64).div_rem(U256::ZERO), None);
    }

    #[test]
    fn div_large_by_large() {
        let a = U256::MAX;
        let (q, r) = a.div_rem(a).unwrap();
        assert_eq!(q, U256::ONE);
        assert_eq!(r, U256::ZERO);
        let (q, r) = U256::ONE.div_rem(a).unwrap();
        assert_eq!(q, U256::ZERO);
        assert_eq!(r, U256::ONE);
    }

    #[test]
    fn shifts() {
        assert_eq!(U256::ONE << 0, U256::ONE);
        assert_eq!((U256::ONE << 64).limbs(), [0, 1, 0, 0]);
        assert_eq!((U256::ONE << 255) >> 255, U256::ONE);
        assert_eq!(U256::ONE << 256, U256::ZERO);
        assert_eq!(U256::MAX >> 256, U256::ZERO);
        assert_eq!((U256::from(0xffu64) << 4).try_to_u64().unwrap(), 0xff0);
    }

    #[test]
    fn shift_across_limb_boundaries() {
        let v = U256::from(u64::MAX);
        assert_eq!((v << 32).limbs(), [0xffff_ffff_0000_0000, 0xffff_ffff, 0, 0]);
        assert_eq!((v << 32) >> 32, v);
    }

    #[test]
    fn ordering_is_numeric() {
        let small = U256::from(5u64);
        let mid = U256::ONE << 64;
        let large = U256::ONE << 200;
        assert!(small < mid && mid < large);
        assert_eq!(small.cmp(&small), Ordering::Equal);
    }

    #[test]
    fn be_bytes_round_trip() {
        let value = U256::from(0x0123_4567_89ab_cdefu64) << 77;
        assert_eq!(U256::from_be_bytes(value.to_be_bytes()), value);
    }

    #[test]
    fn h256_round_trip() {
        let value = U256::from(42u64) << 130;
        assert_eq!(U256::from_h256(value.to_h256()), value);
    }

    #[test]
    fn display_and_parse_decimal() {
        let value = U256::from_dec_str(
            "115792089237316195423570985008687907853269984665640564039457584007913129639935",
        )
        .unwrap();
        assert_eq!(value, U256::MAX);
        assert_eq!(
            value.to_string(),
            "115792089237316195423570985008687907853269984665640564039457584007913129639935"
        );
        assert_eq!(U256::ZERO.to_string(), "0");
        assert_eq!("123".parse::<U256>().unwrap(), U256::from(123u64));
    }

    #[test]
    fn parse_hex() {
        assert_eq!("0xff".parse::<U256>().unwrap(), U256::from(255u64));
        assert_eq!("0x0".parse::<U256>().unwrap(), U256::ZERO);
        assert!("0x".parse::<U256>().is_err());
        assert!("0xzz".parse::<U256>().is_err());
    }

    #[test]
    fn parse_errors() {
        assert_eq!(U256::from_dec_str(""), Err(ParseU256Error::Empty));
        assert_eq!(U256::from_dec_str("12a"), Err(ParseU256Error::InvalidDigit('a')));
        // One more than U256::MAX.
        assert_eq!(
            U256::from_dec_str(
                "115792089237316195423570985008687907853269984665640564039457584007913129639936"
            ),
            Err(ParseU256Error::Overflow)
        );
    }

    #[test]
    fn add_mod_handles_oversized_sums() {
        // MAX + MAX ≡ 2·(MAX mod n) mod n, exactly.
        let n = U256::from(1_000_000_007u64);
        let expected = {
            let r = U256::MAX.div_rem(n).unwrap().1;
            (r + r).div_rem(n).unwrap().1
        };
        assert_eq!(U256::MAX.add_mod(U256::MAX, n), expected);
        // Sums below the modulus are untouched.
        assert_eq!(U256::from(3u64).add_mod(U256::from(4u64), U256::from(100u64)), U256::from(7u64));
        // Zero modulus yields zero (EVM convention).
        assert_eq!(U256::ONE.add_mod(U256::ONE, U256::ZERO), U256::ZERO);
    }

    #[test]
    fn mul_mod_uses_full_width_product() {
        // (2¹⁶⁰ * 2¹⁶⁰) overflows 256 bits; mod a prime stays exact.
        let a = U256::ONE << 160;
        let n = U256::from(1_000_000_007u64);
        // 2^320 mod p computed via pow-by-squaring oracle on u128 math:
        // verify the identity (a·a) mod n == ((a mod n)·(a mod n)) mod n.
        let r = a.div_rem(n).unwrap().1.try_to_u128().unwrap();
        let expected = U256::from((r * r) % 1_000_000_007u128);
        assert_eq!(a.mul_mod(a, n), expected);
        assert_eq!(U256::from(7u64).mul_mod(U256::from(8u64), U256::from(10u64)), U256::from(6u64));
        assert_eq!(U256::MAX.mul_mod(U256::MAX, U256::ZERO), U256::ZERO);
    }

    #[test]
    fn wrapping_pow_matches_small_cases() {
        assert_eq!(U256::from(2u64).wrapping_pow(U256::from(10u64)), U256::from(1024u64));
        assert_eq!(U256::from(3u64).wrapping_pow(U256::ZERO), U256::ONE);
        assert_eq!(U256::ZERO.wrapping_pow(U256::from(5u64)), U256::ZERO);
        assert_eq!(U256::ZERO.wrapping_pow(U256::ZERO), U256::ONE, "EVM: 0^0 = 1");
        // Wraps modulo 2^256: 2^256 == 0.
        assert_eq!(U256::from(2u64).wrapping_pow(U256::from(256u64)), U256::ZERO);
        assert_eq!(U256::from(2u64).wrapping_pow(U256::from(255u64)), U256::ONE << 255);
    }

    #[test]
    fn byte_msb_matches_be_bytes() {
        let value = U256::from(0xaabbu64);
        assert_eq!(value.byte_msb(31), 0xbb);
        assert_eq!(value.byte_msb(30), 0xaa);
        assert_eq!(value.byte_msb(0), 0);
        assert_eq!(value.byte_msb(99), 0);
    }

    #[test]
    fn bits_and_leading_zeros() {
        assert_eq!(U256::ZERO.bits(), 0);
        assert_eq!(U256::ONE.bits(), 1);
        assert_eq!((U256::ONE << 255).bits(), 256);
        assert_eq!(U256::ZERO.leading_zeros(), 256);
    }

    #[test]
    fn lower_hex_formatting() {
        assert_eq!(format!("{:x}", U256::from(255u64)), "ff");
        assert_eq!(format!("{:#x}", U256::from(255u64)), "0xff");
        assert_eq!(format!("{:x}", U256::ZERO), "0");
    }

    #[test]
    fn sum_iterates() {
        let total: U256 = (1..=10u64).map(U256::from).sum();
        assert_eq!(total, U256::from(55u64));
    }

    /// `-x` as a two's-complement word, for readable signed-op tests.
    fn neg(x: u64) -> U256 {
        U256::from(x).wrapping_neg()
    }

    #[test]
    fn wrapping_neg_basics() {
        assert_eq!(U256::ZERO.wrapping_neg(), U256::ZERO);
        assert_eq!(U256::ONE.wrapping_neg(), U256::MAX);
        let min = U256::ONE << 255;
        assert_eq!(min.wrapping_neg(), min, "MIN negates to itself");
    }

    #[test]
    fn is_negative_is_the_top_bit() {
        assert!(!U256::ZERO.is_negative());
        assert!(!U256::ONE.is_negative());
        assert!(U256::MAX.is_negative());
        assert!((U256::ONE << 255).is_negative());
    }

    #[test]
    fn signed_div_truncates_toward_zero() {
        assert_eq!(U256::from(7u64).signed_div(neg(2)), neg(3));
        assert_eq!(neg(7).signed_div(U256::from(2u64)), neg(3));
        assert_eq!(neg(7).signed_div(neg(2)), U256::from(3u64));
        assert_eq!(U256::from(7u64).signed_div(U256::from(2u64)), U256::from(3u64));
    }

    #[test]
    fn signed_div_edge_cases() {
        assert_eq!(U256::from(9u64).signed_div(U256::ZERO), U256::ZERO);
        let min = U256::ONE << 255;
        assert_eq!(min.signed_div(U256::MAX), min, "MIN / -1 wraps to MIN");
    }

    #[test]
    fn signed_rem_sign_follows_dividend() {
        assert_eq!(U256::from(7u64).signed_rem(neg(2)), U256::ONE);
        assert_eq!(neg(7).signed_rem(U256::from(2u64)), neg(1));
        assert_eq!(neg(7).signed_rem(neg(2)), neg(1));
        assert_eq!(U256::from(9u64).signed_rem(U256::ZERO), U256::ZERO);
    }

    #[test]
    fn signed_lt_orders_across_zero() {
        assert!(neg(1).signed_lt(&U256::ZERO));
        assert!(U256::ZERO.signed_lt(&U256::ONE));
        assert!(neg(2).signed_lt(&neg(1)));
        assert!(!U256::ONE.signed_lt(&neg(1)));
        assert!(!U256::ONE.signed_lt(&U256::ONE));
    }

    #[test]
    fn sar_shifts_in_the_sign() {
        assert_eq!(U256::from(8u64).sar(1), U256::from(4u64));
        assert_eq!(neg(8).sar(1), neg(4));
        assert_eq!(U256::MAX.sar(255), U256::MAX, "-1 sar anything is -1");
        assert_eq!(U256::MAX.sar(300), U256::MAX);
        assert_eq!(U256::from(1u64).sar(300), U256::ZERO);
        assert_eq!(neg(5).sar(1), neg(3), "rounds toward negative infinity");
    }

    #[test]
    fn sign_extend_widths() {
        // 0xff as a 1-byte value is -1.
        assert_eq!(U256::from(0xffu64).sign_extend(0), U256::MAX);
        // 0x7f as a 1-byte value is positive.
        assert_eq!(U256::from(0x7fu64).sign_extend(0), U256::from(0x7fu64));
        // 0xff00: the low byte's sign bit is clear.
        assert_eq!(U256::from(0xff00u64).sign_extend(0), U256::ZERO);
        // 0xff00 as a 2-byte value is -256.
        assert_eq!(U256::from(0xff00u64).sign_extend(1), U256::from(256u64).wrapping_neg());
        assert!(U256::from(0xff00u64).sign_extend(1).is_negative());
        // Index 31+ leaves the word unchanged.
        assert_eq!(U256::from(12345u64).sign_extend(31), U256::from(12345u64));
        assert_eq!(U256::MAX.sign_extend(200), U256::MAX);
    }
}
