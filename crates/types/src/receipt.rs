//! Execution receipts and event logs.
//!
//! Blockchains differ from databases in that **failed transactions are
//! included in the persistent ledger** (paper §III-A) — a rolled-back
//! transaction still occupies block space and still burns gas. Receipts
//! record the outcome so the paper's *state throughput* metric can separate
//! transactions that changed state from those that did not.

use bytes::Bytes;
use sereth_crypto::address::Address;
use sereth_crypto::hash::H256;
use sereth_crypto::rlp::RlpStream;

/// VM-level outcome of executing a transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TxStatus {
    /// Execution ran to completion (`STOP`/`RETURN`).
    ///
    /// Note that a *semantically failed* Sereth transaction — e.g. a `buy`
    /// whose mark was stale — still completes successfully at the VM level;
    /// it simply makes no state change and emits no success log. That is
    /// the paper's notion of a failed transaction.
    Success,
    /// Execution reverted (`REVERT` or a VM error); all state changes were
    /// rolled back but the transaction remains in the block.
    Reverted,
    /// The transaction ran out of gas; state changes rolled back.
    OutOfGas,
}

impl TxStatus {
    /// `true` when the VM completed without reverting.
    pub fn is_success(self) -> bool {
        matches!(self, Self::Success)
    }
}

/// An EVM-style event log entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Log {
    /// Contract that emitted the log.
    pub address: Address,
    /// Indexed topics (`LOG0`–`LOG4`).
    pub topics: Vec<H256>,
    /// Opaque payload.
    pub data: Bytes,
}

impl Log {
    /// Canonical encoding used for the receipts root.
    pub fn rlp_encode(&self) -> Vec<u8> {
        let mut topics = RlpStream::new_list(self.topics.len());
        for topic in &self.topics {
            topics = topics.append_bytes(topic.as_bytes());
        }
        RlpStream::new_list(3)
            .append_bytes(self.address.as_bytes())
            .append_raw(&topics.finish())
            .append_bytes(&self.data)
            .finish()
    }
}

/// The receipt of one executed transaction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Receipt {
    /// Hash of the transaction this receipt belongs to.
    pub tx_hash: H256,
    /// Position of the transaction within its block.
    pub index: u32,
    /// VM-level status.
    pub status: TxStatus,
    /// Gas consumed by this transaction.
    pub gas_used: u64,
    /// Logs emitted during execution (empty if reverted).
    pub logs: Vec<Log>,
}

impl Receipt {
    /// Canonical encoding used for the receipts root.
    pub fn rlp_encode(&self) -> Vec<u8> {
        let status_byte: u8 = match self.status {
            TxStatus::Success => 1,
            TxStatus::Reverted => 0,
            TxStatus::OutOfGas => 2,
        };
        let mut logs = RlpStream::new_list(self.logs.len());
        for log in &self.logs {
            logs = logs.append_raw(&log.rlp_encode());
        }
        RlpStream::new_list(5)
            .append_bytes(self.tx_hash.as_bytes())
            .append_u64(self.index as u64)
            .append_bytes(&[status_byte])
            .append_u64(self.gas_used)
            .append_raw(&logs.finish())
            .finish()
    }

    /// Digest of the canonical encoding.
    pub fn hash(&self) -> H256 {
        H256::keccak(&self.rlp_encode())
    }

    /// `true` if any log carries `topic` as its first topic — the substrate
    /// convention for contract-level success events such as the Sereth
    /// contract's `SetOk`/`BuyOk`.
    pub fn has_event(&self, topic: H256) -> bool {
        self.logs.iter().any(|log| log.topics.first() == Some(&topic))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_receipt(status: TxStatus) -> Receipt {
        Receipt {
            tx_hash: H256::keccak(b"tx"),
            index: 2,
            status,
            gas_used: 21_000,
            logs: vec![Log {
                address: Address::from_low_u64(9),
                topics: vec![H256::keccak(b"SetOk")],
                data: Bytes::from_static(b"payload"),
            }],
        }
    }

    #[test]
    fn status_semantics() {
        assert!(TxStatus::Success.is_success());
        assert!(!TxStatus::Reverted.is_success());
        assert!(!TxStatus::OutOfGas.is_success());
    }

    #[test]
    fn hash_depends_on_status() {
        assert_ne!(sample_receipt(TxStatus::Success).hash(), sample_receipt(TxStatus::Reverted).hash());
    }

    #[test]
    fn hash_depends_on_logs() {
        let with_log = sample_receipt(TxStatus::Success);
        let mut without_log = with_log.clone();
        without_log.logs.clear();
        assert_ne!(with_log.hash(), without_log.hash());
    }

    #[test]
    fn has_event_matches_first_topic_only() {
        let receipt = sample_receipt(TxStatus::Success);
        assert!(receipt.has_event(H256::keccak(b"SetOk")));
        assert!(!receipt.has_event(H256::keccak(b"BuyOk")));
    }
}
