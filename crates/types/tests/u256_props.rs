//! Property tests for `U256`, using `u128` arithmetic as the oracle.

use proptest::prelude::*;
use sereth_types::U256;

fn oracle_pair() -> impl Strategy<Value = (u128, u128)> {
    (any::<u128>(), any::<u128>())
}

proptest! {
    #[test]
    fn add_matches_u128((a, b) in oracle_pair()) {
        // Keep the sum within u128 so the oracle is exact.
        let a = a >> 1;
        let b = b >> 1;
        prop_assert_eq!(U256::from(a) + U256::from(b), U256::from(a + b));
    }

    #[test]
    fn sub_matches_u128((a, b) in oracle_pair()) {
        let (hi, lo) = if a >= b { (a, b) } else { (b, a) };
        prop_assert_eq!(U256::from(hi) - U256::from(lo), U256::from(hi - lo));
    }

    #[test]
    fn mul_matches_u128(a in any::<u64>(), b in any::<u64>()) {
        prop_assert_eq!(
            U256::from(a) * U256::from(b),
            U256::from(a as u128 * b as u128)
        );
    }

    #[test]
    fn div_rem_matches_u128((a, b) in oracle_pair()) {
        prop_assume!(b != 0);
        let (q, r) = U256::from(a).div_rem(U256::from(b)).unwrap();
        prop_assert_eq!(q, U256::from(a / b));
        prop_assert_eq!(r, U256::from(a % b));
    }

    #[test]
    fn div_rem_reconstructs(a in any::<[u8; 32]>(), b in any::<[u8; 32]>()) {
        let x = U256::from_be_bytes(a);
        let y = U256::from_be_bytes(b);
        prop_assume!(!y.is_zero());
        let (q, r) = x.div_rem(y).unwrap();
        // x == q * y + r, with r < y, and q*y must not overflow.
        prop_assert!(r < y);
        let (product, overflow) = q.overflowing_mul(y);
        prop_assert!(!overflow);
        let (sum, overflow) = product.overflowing_add(r);
        prop_assert!(!overflow);
        prop_assert_eq!(sum, x);
    }

    #[test]
    fn shifts_match_u128(a in any::<u128>(), shift in 0u32..128) {
        prop_assert_eq!(U256::from(a) >> shift, U256::from(a >> shift));
        // Left shifts can escape u128; mask the oracle down.
        let shifted = U256::from(a) << shift;
        if shifted.try_to_u128().is_some() && shift < 128 {
            prop_assert_eq!(shifted.try_to_u128().unwrap(), a << shift);
        }
    }

    #[test]
    fn shl_shr_round_trip(bytes in any::<[u8; 32]>(), shift in 0u32..256) {
        let value = U256::from_be_bytes(bytes);
        // (v >> s) << s clears the low s bits, equivalently v & !(2^s - 1).
        let mask = if shift == 0 { U256::MAX } else { !( (U256::ONE << shift) - U256::ONE) };
        prop_assert_eq!((value >> shift) << shift, value & mask);
    }

    #[test]
    fn be_bytes_round_trip(bytes in any::<[u8; 32]>()) {
        prop_assert_eq!(U256::from_be_bytes(bytes).to_be_bytes(), bytes);
    }

    #[test]
    fn decimal_display_round_trip(bytes in any::<[u8; 32]>()) {
        let value = U256::from_be_bytes(bytes);
        let parsed = U256::from_dec_str(&value.to_string()).unwrap();
        prop_assert_eq!(parsed, value);
    }

    #[test]
    fn ordering_matches_u128((a, b) in oracle_pair()) {
        prop_assert_eq!(U256::from(a).cmp(&U256::from(b)), a.cmp(&b));
    }

    #[test]
    fn bitwise_ops_match_u128((a, b) in oracle_pair()) {
        prop_assert_eq!(U256::from(a) & U256::from(b), U256::from(a & b));
        prop_assert_eq!(U256::from(a) | U256::from(b), U256::from(a | b));
        prop_assert_eq!(U256::from(a) ^ U256::from(b), U256::from(a ^ b));
    }

    #[test]
    fn not_is_involution(bytes in any::<[u8; 32]>()) {
        let value = U256::from_be_bytes(bytes);
        prop_assert_eq!(!!value, value);
        prop_assert_eq!(value & !value, U256::ZERO);
        prop_assert_eq!(value | !value, U256::MAX);
    }

    #[test]
    fn overflow_flags_are_consistent(a in any::<[u8; 32]>(), b in any::<[u8; 32]>()) {
        let x = U256::from_be_bytes(a);
        let y = U256::from_be_bytes(b);
        let (sum, overflowed) = x.overflowing_add(y);
        // Overflow iff the wrapped sum is smaller than an operand.
        prop_assert_eq!(overflowed, sum < x);
        let (_, borrowed) = x.overflowing_sub(y);
        prop_assert_eq!(borrowed, x < y);
    }
}

/// Sign-extends an `i128` into a 256-bit two's-complement word.
fn from_i128(value: i128) -> U256 {
    if value >= 0 {
        U256::from(value as u128)
    } else {
        U256::from(value.unsigned_abs()).wrapping_neg()
    }
}

proptest! {
    #[test]
    fn signed_div_matches_i128(a in any::<i128>(), b in any::<i128>()) {
        prop_assume!(b != 0);
        prop_assume!(!(a == i128::MIN && b == -1)); // i128 oracle would trap
        prop_assert_eq!(from_i128(a).signed_div(from_i128(b)), from_i128(a / b));
    }

    #[test]
    fn signed_rem_matches_i128(a in any::<i128>(), b in any::<i128>()) {
        prop_assume!(b != 0);
        prop_assume!(!(a == i128::MIN && b == -1));
        prop_assert_eq!(from_i128(a).signed_rem(from_i128(b)), from_i128(a % b));
    }

    #[test]
    fn signed_division_reconstructs(a in any::<i128>(), b in any::<i128>()) {
        prop_assume!(b != 0);
        prop_assume!(!(a == i128::MIN && b == -1));
        // a == (a sdiv b) * b + (a smod b), all in wrapping 256-bit space.
        let x = from_i128(a);
        let y = from_i128(b);
        let q = x.signed_div(y);
        let r = x.signed_rem(y);
        let reconstructed = q.overflowing_mul(y).0.overflowing_add(r).0;
        prop_assert_eq!(reconstructed, x);
    }

    #[test]
    fn signed_lt_matches_i128(a in any::<i128>(), b in any::<i128>()) {
        prop_assert_eq!(from_i128(a).signed_lt(&from_i128(b)), a < b);
    }

    #[test]
    fn wrapping_neg_matches_i128(a in any::<i128>()) {
        prop_assume!(a != i128::MIN);
        prop_assert_eq!(from_i128(a).wrapping_neg(), from_i128(-a));
    }

    #[test]
    fn sar_matches_i128(a in any::<i128>(), shift in 0u32..130) {
        // i128 arithmetic shift is the oracle; clamp to the oracle's width.
        let expected = from_i128(a >> shift.min(127));
        prop_assert_eq!(from_i128(a).sar(shift.min(127)), expected);
    }

    #[test]
    fn sar_by_width_collapses(bytes in any::<[u8; 32]>(), shift in 256u32..1000) {
        let value = U256::from_be_bytes(bytes);
        let expected = if value.is_negative() { U256::MAX } else { U256::ZERO };
        prop_assert_eq!(value.sar(shift), expected);
    }

    #[test]
    fn sign_extend_matches_i8_oracle(byte in any::<u8>()) {
        prop_assert_eq!(
            U256::from(byte as u64).sign_extend(0),
            from_i128(byte as i8 as i128)
        );
    }

    #[test]
    fn sign_extend_matches_i16_oracle(half in any::<u16>()) {
        prop_assert_eq!(
            U256::from(half as u64).sign_extend(1),
            from_i128(half as i16 as i128)
        );
    }

    #[test]
    fn sign_extend_is_idempotent(bytes in any::<[u8; 32]>(), index in 0usize..40) {
        let value = U256::from_be_bytes(bytes);
        let once = value.sign_extend(index);
        prop_assert_eq!(once.sign_extend(index), once);
    }
}
