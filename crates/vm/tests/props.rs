//! Property tests for the interpreter: no input — honest, adversarial, or
//! random — may panic, hang, or corrupt the machine's invariants.

use bytes::Bytes;
use proptest::prelude::*;
use sereth_crypto::address::Address;
use sereth_types::receipt::TxStatus;
use sereth_types::u256::U256;
use sereth_vm::asm::{assemble, disassemble};
use sereth_vm::exec::{CallEnv, MemStorage};
use sereth_vm::interpreter::execute;
use sereth_vm::opcode::Opcode;

fn env_with(calldata: Vec<u8>) -> CallEnv {
    CallEnv::test_env(Address::from_low_u64(1), Address::from_low_u64(2), Bytes::from(calldata))
}

proptest! {
    /// Arbitrary byte soup as code: execution terminates with a defined
    /// status and never panics. Gas bounds the work.
    #[test]
    fn random_code_never_panics(code in proptest::collection::vec(any::<u8>(), 0..512),
                                calldata in proptest::collection::vec(any::<u8>(), 0..128)) {
        let env = env_with(calldata);
        let mut storage = MemStorage::new();
        let outcome = execute(&code, &env, &mut storage, 200_000);
        prop_assert!(outcome.gas_used <= 200_000);
    }

    /// A pure stack program computing (a + b) via the interpreter matches
    /// U256 arithmetic.
    #[test]
    fn add_program_matches_u256(a in any::<[u8; 32]>(), b in any::<[u8; 32]>()) {
        let a_hex: String = a.iter().map(|x| format!("{x:02x}")).collect();
        let b_hex: String = b.iter().map(|x| format!("{x:02x}")).collect();
        let source = format!(
            "PUSH32 0x{b_hex}\nPUSH32 0x{a_hex}\nADD\nPUSH1 0x00\nMSTORE\nPUSH1 0x20\nPUSH1 0x00\nRETURN"
        );
        let code = assemble(&source).unwrap();
        let env = env_with(vec![]);
        let mut storage = MemStorage::new();
        let outcome = execute(&code, &env, &mut storage, 1_000_000);
        prop_assert_eq!(outcome.status, TxStatus::Success);
        let expected = U256::from_be_bytes(a) + U256::from_be_bytes(b);
        let mut word = [0u8; 32];
        word.copy_from_slice(&outcome.return_data);
        prop_assert_eq!(U256::from_be_bytes(word), expected);
    }

    /// Same for multiplication and subtraction (wrapping semantics).
    #[test]
    fn mul_sub_programs_match_u256(a in any::<[u8; 32]>(), b in any::<[u8; 32]>()) {
        for (op, oracle) in [
            ("MUL", U256::from_be_bytes(a) * U256::from_be_bytes(b)),
            ("SUB", U256::from_be_bytes(a) - U256::from_be_bytes(b)),
        ] {
            let a_hex: String = a.iter().map(|x| format!("{x:02x}")).collect();
            let b_hex: String = b.iter().map(|x| format!("{x:02x}")).collect();
            let source = format!(
                "PUSH32 0x{b_hex}\nPUSH32 0x{a_hex}\n{op}\nPUSH1 0x00\nMSTORE\nPUSH1 0x20\nPUSH1 0x00\nRETURN"
            );
            let code = assemble(&source).unwrap();
            let env = env_with(vec![]);
            let mut storage = MemStorage::new();
            let outcome = execute(&code, &env, &mut storage, 1_000_000);
            prop_assert_eq!(outcome.status, TxStatus::Success, "{}", op);
            let mut word = [0u8; 32];
            word.copy_from_slice(&outcome.return_data);
            prop_assert_eq!(U256::from_be_bytes(word), oracle, "{}", op);
        }
    }

    /// CALLDATALOAD agrees with direct inspection for arbitrary offsets,
    /// including out-of-range (zero padding).
    #[test]
    fn calldataload_pads_correctly(calldata in proptest::collection::vec(any::<u8>(), 0..96),
                                   offset in 0usize..128) {
        let source = format!(
            "PUSH2 0x{offset:04x}\nCALLDATALOAD\nPUSH1 0x00\nMSTORE\nPUSH1 0x20\nPUSH1 0x00\nRETURN"
        );
        let code = assemble(&source).unwrap();
        let env = env_with(calldata.clone());
        let mut storage = MemStorage::new();
        let outcome = execute(&code, &env, &mut storage, 1_000_000);
        prop_assert_eq!(outcome.status, TxStatus::Success);
        let mut expected = [0u8; 32];
        for (i, slot) in expected.iter_mut().enumerate() {
            *slot = calldata.get(offset + i).copied().unwrap_or(0);
        }
        prop_assert_eq!(&outcome.return_data[..], &expected[..]);
    }

    /// Disassembling arbitrary bytes never panics, emits one line per
    /// decoded instruction, and marks unsupported *instruction* bytes
    /// (i.e. bytes not consumed as push immediates) as data.
    #[test]
    fn disassemble_total(code in proptest::collection::vec(any::<u8>(), 0..256)) {
        let text = disassemble(&code);
        if code.is_empty() {
            prop_assert!(text.is_empty());
            return Ok(());
        }
        prop_assert!(text.lines().count() >= 1);
        // Recompute instruction boundaries independently and check `DB`
        // markers appear exactly at unsupported instruction bytes.
        let mut pc = 0usize;
        let mut expected_db = Vec::new();
        while pc < code.len() {
            match Opcode::from_byte(code[pc]) {
                Some(op) => pc += 1 + op.immediate_len(),
                None => {
                    expected_db.push(pc);
                    pc += 1;
                }
            }
        }
        let actual_db: Vec<usize> = text
            .lines()
            .filter(|line| line.contains(": DB "))
            .filter_map(|line| usize::from_str_radix(line.split(':').next().unwrap_or(""), 16).ok())
            .collect();
        prop_assert_eq!(actual_db, expected_db);
    }

    /// The assembler and disassembler agree: assembling a program of
    /// random supported opcodes, then disassembling, preserves the
    /// mnemonic sequence (modulo immediates).
    #[test]
    fn assemble_disassemble_round_trip(ops in proptest::collection::vec(0usize..20, 1..64)) {
        // A conservative instruction menu with no control flow.
        const MENU: [&str; 20] = [
            "ADD", "MUL", "SUB", "DIV", "MOD", "LT", "GT", "EQ", "ISZERO", "AND",
            "OR", "XOR", "NOT", "POP", "CALLER", "ADDRESS", "CALLVALUE", "CALLDATASIZE", "PC", "MSIZE",
        ];
        let source: String = ops.iter().map(|&i| MENU[i]).collect::<Vec<_>>().join("\n");
        let code = assemble(&source).unwrap();
        let text = disassemble(&code);
        let mnemonics: Vec<&str> = text
            .lines()
            .filter_map(|line| line.split(": ").nth(1))
            .collect();
        prop_assert_eq!(mnemonics.len(), ops.len());
        for (line, &i) in mnemonics.iter().zip(&ops) {
            prop_assert_eq!(*line, MENU[i]);
        }
    }

    /// The tracer's shadow interpreter agrees with the real interpreter on
    /// status, gas, and return data for arbitrary code — the invariant that
    /// keeps traces trustworthy.
    #[test]
    fn tracer_matches_interpreter(code in proptest::collection::vec(any::<u8>(), 0..256),
                                  calldata in proptest::collection::vec(any::<u8>(), 0..64)) {
        use sereth_vm::trace::trace;
        let env = env_with(calldata);
        let mut storage_trace = MemStorage::new();
        let mut storage_real = MemStorage::new();
        let traced = trace(&code, &env, &mut storage_trace, 100_000, usize::MAX >> 1);
        let real = execute(&code, &env, &mut storage_real, 100_000);
        prop_assert_eq!(traced.outcome.status, real.status);
        prop_assert_eq!(traced.outcome.gas_used, real.gas_used);
        prop_assert_eq!(traced.outcome.return_data, real.return_data);
    }

    /// Gas usage is monotone in work: running the same loop for more
    /// iterations costs strictly more gas.
    #[test]
    fn gas_monotone_in_iterations(n in 1u8..40) {
        let run_iters = |iters: u8| {
            let source = format!(
                r#"
                PUSH1 0x{iters:02x}
            loop:
                JUMPDEST
                PUSH1 0x01
                SWAP1
                SUB
                DUP1
                PUSH @loop
                JUMPI
                STOP
                "#
            );
            let code = assemble(&source).unwrap();
            let env = env_with(vec![]);
            let mut storage = MemStorage::new();
            let outcome = execute(&code, &env, &mut storage, 1_000_000);
            assert_eq!(outcome.status, TxStatus::Success);
            outcome.gas_used
        };
        prop_assert!(run_iters(n + 1) > run_iters(n));
    }
}
