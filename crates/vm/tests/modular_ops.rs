//! Tests for the modular/exponentiation opcodes against u128 oracles.

use bytes::Bytes;
use proptest::prelude::*;
use sereth_crypto::address::Address;
use sereth_types::receipt::TxStatus;
use sereth_types::u256::U256;
use sereth_vm::asm::assemble;
use sereth_vm::exec::{CallEnv, MemStorage};
use sereth_vm::interpreter::execute;

fn run_ternary(op: &str, a: U256, b: U256, n: U256) -> U256 {
    let hex = |v: U256| -> String { v.to_be_bytes().iter().map(|x| format!("{x:02x}")).collect() };
    // Stack for ADDMOD/MULMOD: [a, b, N] with a on top.
    let source = format!(
        "PUSH32 0x{}\nPUSH32 0x{}\nPUSH32 0x{}\n{op}\nPUSH1 0x00\nMSTORE\nPUSH1 0x20\nPUSH1 0x00\nRETURN",
        hex(n),
        hex(b),
        hex(a),
    );
    let code = assemble(&source).unwrap();
    let env = CallEnv::test_env(Address::from_low_u64(1), Address::from_low_u64(2), Bytes::new());
    let mut storage = MemStorage::new();
    let outcome = execute(&code, &env, &mut storage, 10_000_000);
    assert_eq!(outcome.status, TxStatus::Success, "{op}");
    let mut word = [0u8; 32];
    word.copy_from_slice(&outcome.return_data);
    U256::from_be_bytes(word)
}

fn run_binary(op: &str, a: U256, b: U256) -> (U256, u64) {
    let hex = |v: U256| -> String { v.to_be_bytes().iter().map(|x| format!("{x:02x}")).collect() };
    let source = format!(
        "PUSH32 0x{}\nPUSH32 0x{}\n{op}\nPUSH1 0x00\nMSTORE\nPUSH1 0x20\nPUSH1 0x00\nRETURN",
        hex(b),
        hex(a),
    );
    let code = assemble(&source).unwrap();
    let env = CallEnv::test_env(Address::from_low_u64(1), Address::from_low_u64(2), Bytes::new());
    let mut storage = MemStorage::new();
    let outcome = execute(&code, &env, &mut storage, 10_000_000);
    assert_eq!(outcome.status, TxStatus::Success, "{op}");
    let mut word = [0u8; 32];
    word.copy_from_slice(&outcome.return_data);
    (U256::from_be_bytes(word), outcome.gas_used)
}

#[test]
fn addmod_exceeds_wrapping_semantics() {
    // MAX + 2 mod 10: arbitrary precision gives (2^256 - 1 + 2) % 10; the
    // wrapped sum would give 1 % 10 = 1. They differ, proving the opcode
    // is not implemented by truncation.
    let exact = run_ternary("ADDMOD", U256::MAX, U256::from(2u64), U256::from(10u64));
    let wrapped = (U256::MAX + U256::from(2u64)).div_rem(U256::from(10u64)).unwrap().1;
    assert_ne!(exact, wrapped);
    // 2^256 ≡ 6 (mod 10)  ⇒  (2^256 + 1) ≡ 7 (mod 10).
    assert_eq!(exact, U256::from(7u64));
}

#[test]
fn mulmod_uses_wide_product() {
    // (2^200)² mod p differs from the wrapped product mod p.
    let a = U256::ONE << 200;
    let p = U256::from(1_000_000_007u64);
    let exact = run_ternary("MULMOD", a, a, p);
    let wrapped = (a * a).div_rem(p).unwrap().1;
    assert_ne!(exact, wrapped, "2^400 overflows 256 bits");
    assert_eq!(exact, a.mul_mod(a, p));
}

#[test]
fn modulus_zero_yields_zero() {
    assert_eq!(run_ternary("ADDMOD", U256::from(3u64), U256::from(4u64), U256::ZERO), U256::ZERO);
    assert_eq!(run_ternary("MULMOD", U256::from(3u64), U256::from(4u64), U256::ZERO), U256::ZERO);
}

#[test]
fn exp_basics_and_gas_scale() {
    let (result, gas_small) = run_binary("EXP", U256::from(2u64), U256::from(8u64));
    assert_eq!(result, U256::from(256u64));
    let (result, gas_large) = run_binary("EXP", U256::from(2u64), U256::ONE << 200);
    // 2^(2^200) mod 2^256 = 0 (exponent ≥ 256 and base even).
    assert_eq!(result, U256::ZERO);
    assert!(gas_large > gas_small, "EXP charges per exponent byte ({gas_small} vs {gas_large})");
}

proptest! {
    #[test]
    fn addmod_matches_u128(a in any::<u64>(), b in any::<u64>(), n in 1u64..u64::MAX) {
        let expected = ((a as u128 + b as u128) % n as u128) as u64;
        prop_assert_eq!(
            run_ternary("ADDMOD", U256::from(a), U256::from(b), U256::from(n)),
            U256::from(expected)
        );
    }

    #[test]
    fn mulmod_matches_u128(a in any::<u64>(), b in any::<u64>(), n in 1u64..u64::MAX) {
        let expected = ((a as u128 * b as u128) % n as u128) as u64;
        prop_assert_eq!(
            run_ternary("MULMOD", U256::from(a), U256::from(b), U256::from(n)),
            U256::from(expected)
        );
    }

    #[test]
    fn exp_matches_u128(base in 0u64..16, exponent in 0u32..30) {
        let expected = (base as u128).pow(exponent);
        let (result, _) = run_binary("EXP", U256::from(base), U256::from(exponent as u64));
        prop_assert_eq!(result, U256::from(expected));
    }

    #[test]
    fn u256_mul_mod_identity(a in any::<[u8; 32]>(), n in 1u64..u64::MAX) {
        // (a mod n) * 1 mod n == a mod n.
        let a = U256::from_be_bytes(a);
        let n = U256::from(n);
        prop_assert_eq!(a.mul_mod(U256::ONE, n), a.div_rem(n).unwrap().1);
    }
}
