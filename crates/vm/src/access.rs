//! Read/write access sets: which parts of the world state an execution
//! observed and which it mutated.
//!
//! The parallel block executor in `sereth-chain` schedules transactions by
//! these sets: two transactions whose sets are disjoint can execute in the
//! same wave; a transaction whose *observed* reads overlap the writes of a
//! transaction merged before it mis-speculated and must be re-executed.
//! The sets are derived from execution itself — either the tracing
//! interpreter ([`crate::trace::trace_access`]) or any [`Storage`] wrapped
//! in an [`AccessRecorder`] — so they are exact for the run that produced
//! them, not a static approximation.

use std::cell::RefCell;
use std::collections::BTreeSet;

use sereth_crypto::address::Address;
use sereth_crypto::hash::H256;
use sereth_types::u256::U256;

use crate::exec::{ContractCode, EnvRead, Storage};

/// One addressable piece of world state.
///
/// `Nonce` is not visible to the VM itself (no opcode reads it) but is part
/// of transaction admission, so the chain-level executor records it through
/// the same key space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum AccessKey {
    /// An account balance (`BALANCE`, `SELFBALANCE`, value transfers, gas
    /// purchase and refund).
    Balance(Address),
    /// An account nonce (transaction admission and replacement).
    Nonce(Address),
    /// An account's code (`CALL` dispatch, contract creation).
    Code(Address),
    /// One contract storage slot (`SLOAD` / `SSTORE`).
    Slot(Address, H256),
    /// The block timestamp (`TIMESTAMP`). Read-only within a block (env
    /// values are constants), but a cross-block pipeline marks it dirty
    /// when a speculated block's *predicted* timestamp missed the sealed
    /// one, invalidating outcomes that observed it.
    Timestamp,
    /// The block number (`NUMBER`) — same role as `Timestamp`.
    Number,
}

/// The reads and writes one execution performed, as [`AccessKey`]s.
///
/// Writes that were later rolled back by a checkpoint revert stay recorded:
/// the set is a *conservative* footprint (a superset of the net effect),
/// which is the safe direction for conflict detection.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AccessSet {
    /// Keys the execution observed.
    pub reads: BTreeSet<AccessKey>,
    /// Keys the execution mutated.
    pub writes: BTreeSet<AccessKey>,
}

impl AccessSet {
    /// An empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a read.
    pub fn read(&mut self, key: AccessKey) {
        self.reads.insert(key);
    }

    /// Records a write.
    pub fn wrote(&mut self, key: AccessKey) {
        self.writes.insert(key);
    }

    /// `true` if any of this set's *reads* hits `written` — the validation
    /// predicate for optimistic execution: a speculation is still valid
    /// after other transactions committed iff nothing it read was written.
    pub fn reads_hit(&self, written: &std::collections::HashSet<AccessKey>) -> bool {
        self.reads.iter().any(|key| written.contains(key))
    }

    /// `true` if the two executions cannot be reordered freely: one's
    /// writes intersect the other's reads or writes.
    pub fn conflicts_with(&self, other: &AccessSet) -> bool {
        self.writes.iter().any(|key| other.reads.contains(key) || other.writes.contains(key))
            || other.writes.iter().any(|key| self.reads.contains(key))
    }

    /// Total number of recorded keys.
    pub fn len(&self) -> usize {
        self.reads.len() + self.writes.len()
    }

    /// `true` if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.reads.is_empty() && self.writes.is_empty()
    }
}

/// A [`Storage`] adaptor that forwards every operation to an inner storage
/// while recording the touched [`AccessKey`]s.
///
/// Reads arrive through `&self` methods ([`Storage::storage_get`] and
/// friends), so the set lives in a `RefCell`; the recorder is a
/// single-threaded execution-scoped wrapper, never shared.
///
/// Used by [`crate::trace::trace_access`] to derive a transaction's
/// footprint from the tracing interpreter, and directly by anything that
/// wants an exact access set for an arbitrary execution.
#[derive(Debug)]
pub struct AccessRecorder<'a, S: Storage + ?Sized> {
    inner: &'a mut S,
    access: RefCell<AccessSet>,
}

impl<'a, S: Storage + ?Sized> AccessRecorder<'a, S> {
    /// Wraps `inner`, starting from an empty access set.
    pub fn new(inner: &'a mut S) -> Self {
        Self { inner, access: RefCell::new(AccessSet::new()) }
    }

    /// A snapshot of the recorded accesses so far.
    pub fn access(&self) -> AccessSet {
        self.access.borrow().clone()
    }

    /// Consumes the recorder, returning the recorded accesses.
    pub fn into_access(self) -> AccessSet {
        self.access.into_inner()
    }

    fn read(&self, key: AccessKey) {
        self.access.borrow_mut().read(key);
    }

    fn wrote(&self, key: AccessKey) {
        self.access.borrow_mut().wrote(key);
    }
}

impl<S: Storage + ?Sized> Storage for AccessRecorder<'_, S> {
    fn storage_get(&self, address: &Address, key: &H256) -> H256 {
        self.read(AccessKey::Slot(*address, *key));
        self.inner.storage_get(address, key)
    }

    fn storage_set(&mut self, address: &Address, key: H256, value: H256) {
        // A write is also a read: no-op-skipping backends (the chain's
        // `StateDb`) compare against the prior value, so whether the write
        // *survives* depends on pre-state. Recording the read keeps every
        // recorder in this workspace (this one and the chain executor's
        // speculative overlay) on identical, conservative semantics.
        self.read(AccessKey::Slot(*address, key));
        self.wrote(AccessKey::Slot(*address, key));
        self.inner.storage_set(address, key, value);
    }

    fn code_get(&self, address: &Address) -> ContractCode {
        self.read(AccessKey::Code(*address));
        self.inner.code_get(address)
    }

    fn balance_get(&self, address: &Address) -> U256 {
        self.read(AccessKey::Balance(*address));
        self.inner.balance_get(address)
    }

    fn transfer(&mut self, from: &Address, to: &Address, value: U256) -> bool {
        if !value.is_zero() {
            self.read(AccessKey::Balance(*from));
            self.read(AccessKey::Balance(*to));
            self.wrote(AccessKey::Balance(*from));
            self.wrote(AccessKey::Balance(*to));
        }
        self.inner.transfer(from, to, value)
    }

    fn checkpoint(&self) -> usize {
        self.inner.checkpoint()
    }

    fn revert_checkpoint(&mut self, checkpoint: usize) {
        // Rolled-back writes stay in the set: conservative by design.
        self.inner.revert_checkpoint(checkpoint);
    }

    fn note_env_read(&self, key: EnvRead) {
        self.read(match key {
            EnvRead::Timestamp => AccessKey::Timestamp,
            EnvRead::Number => AccessKey::Number,
        });
        self.inner.note_env_read(key);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::MemStorage;

    fn addr(n: u64) -> Address {
        Address::from_low_u64(n)
    }

    #[test]
    fn records_reads_writes_and_transfers() {
        let mut inner = MemStorage::new();
        inner.set_balance(addr(1), U256::from(100u64));
        inner.storage_set(&addr(1), H256::from_low_u64(5), H256::from_low_u64(6));
        let mut recorder = AccessRecorder::new(&mut inner);
        let _ = recorder.storage_get(&addr(1), &H256::from_low_u64(5));
        recorder.storage_set(&addr(1), H256::from_low_u64(7), H256::from_low_u64(9));
        let _ = recorder.code_get(&addr(4));
        assert!(recorder.transfer(&addr(1), &addr(2), U256::from(10u64)));
        let access = recorder.into_access();
        assert!(access.reads.contains(&AccessKey::Slot(addr(1), H256::from_low_u64(5))));
        assert!(access.reads.contains(&AccessKey::Code(addr(4))));
        assert!(access.writes.contains(&AccessKey::Slot(addr(1), H256::from_low_u64(7))));
        assert!(access.writes.contains(&AccessKey::Balance(addr(1))));
        assert!(access.reads.contains(&AccessKey::Balance(addr(2))));
    }

    #[test]
    fn zero_value_transfer_records_nothing() {
        let mut inner = MemStorage::new();
        let mut recorder = AccessRecorder::new(&mut inner);
        assert!(recorder.transfer(&addr(1), &addr(2), U256::ZERO));
        assert!(recorder.into_access().is_empty());
    }

    #[test]
    fn reverted_writes_stay_recorded() {
        let mut inner = MemStorage::new();
        let mut recorder = AccessRecorder::new(&mut inner);
        let checkpoint = recorder.checkpoint();
        recorder.storage_set(&addr(3), H256::ZERO, H256::from_low_u64(1));
        recorder.revert_checkpoint(checkpoint);
        assert!(recorder.access().writes.contains(&AccessKey::Slot(addr(3), H256::ZERO)));
    }

    #[test]
    fn env_reads_are_recorded_as_reads() {
        let mut inner = MemStorage::new();
        let recorder = AccessRecorder::new(&mut inner);
        recorder.note_env_read(EnvRead::Timestamp);
        recorder.note_env_read(EnvRead::Number);
        let access = recorder.into_access();
        assert!(access.reads.contains(&AccessKey::Timestamp));
        assert!(access.reads.contains(&AccessKey::Number));
        assert!(access.writes.is_empty());
    }

    #[test]
    fn conflict_predicates() {
        let mut a = AccessSet::new();
        a.read(AccessKey::Slot(addr(1), H256::ZERO));
        a.wrote(AccessKey::Balance(addr(1)));
        let mut b = AccessSet::new();
        b.wrote(AccessKey::Slot(addr(1), H256::ZERO));
        assert!(a.conflicts_with(&b), "b writes what a reads");
        assert!(b.conflicts_with(&a), "symmetric");

        let mut c = AccessSet::new();
        c.read(AccessKey::Balance(addr(2)));
        assert!(!a.conflicts_with(&c));

        let mut dirty = std::collections::HashSet::new();
        dirty.insert(AccessKey::Slot(addr(1), H256::ZERO));
        assert!(a.reads_hit(&dirty));
        assert!(!c.reads_hit(&dirty));
        assert_eq!(a.len(), 2);
        assert!(!a.is_empty());
    }
}
