//! Runtime Argument Augmentation (RAA) — the interpreter hook of paper
//! §III-D and Fig. 1.
//!
//! RAA "provides data to a smart contract by using the argument list as a
//! channel to pass information". Before a *read-only* call executes, the
//! interpreter asks a registered [`RaaProvider`] whether it wants to rewrite
//! the call's arguments (activities E2 and R1–R3 in Fig. 1). The contract
//! then executes with the augmented calldata and simply returns the data it
//! finds in its arguments — see the `get`/`mark` functions of Listing 1.
//!
//! **Transactions are never augmented.** Their calldata is covered by the
//! sender's signature; a client that rewrites it produces transactions that
//! fail replay validation (the paper verified this experimentally). The
//! [`execute_call`] entry point therefore consults the provider only when
//! `env.is_static` is true.

use std::collections::HashSet;
use std::sync::Arc;

use bytes::Bytes;
use sereth_crypto::address::Address;

use crate::abi::Selector;
use crate::exec::{CallEnv, CallOutcome, ContractCode, Storage};
use crate::gas::{GasMeter, NATIVE_CALL_GAS};
use crate::interpreter;
use sereth_types::receipt::TxStatus;

/// A read-only call about to execute, as presented to an [`RaaProvider`].
#[derive(Debug, Clone)]
pub struct RaaRequest<'a> {
    /// The contract being called.
    pub contract: Address,
    /// The function selector.
    pub selector: Selector,
    /// The original calldata (selector included).
    pub calldata: &'a [u8],
    /// Who is asking.
    pub caller: Address,
}

/// An external data service wired into the interpreter (paper Fig. 1,
/// "RAA Data Service"). The Hash-Mark-Set provider in `sereth-core` is the
/// canonical implementation; the `raa_oracle` example shows a conventional
/// price-feed oracle built on the same hook.
pub trait RaaProvider: Send + Sync {
    /// Optionally rewrites the calldata of a pending read-only call.
    ///
    /// Returning `None` leaves the call untouched (activity "No RAA" in
    /// Fig. 1). The returned bytes must keep the selector intact; the
    /// dispatcher re-checks and discards rewrites that alter it.
    fn augment(&self, request: &RaaRequest<'_>) -> Option<Bytes>;
}

/// Registry of `(contract, selector)` pairs for which RAA is enabled, plus
/// the provider that serves them.
#[derive(Clone, Default)]
pub struct RaaRegistry {
    enabled: HashSet<(Address, Selector)>,
    provider: Option<Arc<dyn RaaProvider>>,
}

impl RaaRegistry {
    /// An empty registry: RAA disabled everywhere.
    pub fn new() -> Self {
        Self::default()
    }

    /// Enables RAA for `selector` on `contract`.
    pub fn enable(&mut self, contract: Address, selector: Selector) {
        self.enabled.insert((contract, selector));
    }

    /// Installs the provider consulted for enabled calls.
    pub fn set_provider(&mut self, provider: Arc<dyn RaaProvider>) {
        self.provider = Some(provider);
    }

    /// `true` if `(contract, selector)` is RAA-enabled and a provider is
    /// installed.
    pub fn is_enabled(&self, contract: &Address, selector: &Selector) -> bool {
        self.provider.is_some() && self.enabled.contains(&(*contract, *selector))
    }

    /// Applies augmentation to `env` if eligible; returns the possibly
    /// rewritten environment.
    pub fn apply(&self, env: CallEnv) -> CallEnv {
        if !env.is_static {
            // Signed transaction calldata is immutable (paper §III-D).
            return env;
        }
        let Some(selector) = env.selector() else { return env };
        if !self.is_enabled(&env.callee, &selector) {
            return env;
        }
        let provider = self.provider.as_ref().expect("checked by is_enabled");
        let request =
            RaaRequest { contract: env.callee, selector, calldata: &env.calldata, caller: env.caller };
        match provider.augment(&request) {
            Some(new_calldata) if new_calldata.len() >= 4 && new_calldata[..4] == selector => {
                let mut env = env;
                env.calldata = new_calldata;
                env
            }
            _ => env,
        }
    }
}

impl core::fmt::Debug for RaaRegistry {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("RaaRegistry")
            .field("enabled", &self.enabled.len())
            .field("has_provider", &self.provider.is_some())
            .finish()
    }
}

/// Executes a call frame against `code`, applying RAA when eligible.
///
/// This is the single entry point both the transaction executor and the
/// read-only query path use; the only difference between them is
/// `env.is_static`, which simultaneously (a) forbids writes and (b) permits
/// augmentation — mirroring how the paper's modified EVM only augments
/// non-transaction calls.
pub fn execute_call(
    code: &ContractCode,
    env: CallEnv,
    storage: &mut dyn Storage,
    gas_limit: u64,
    raa: &RaaRegistry,
) -> CallOutcome {
    let env = raa.apply(env);
    match code {
        ContractCode::None => CallOutcome {
            // Plain value transfer to an account with no code.
            status: TxStatus::Success,
            return_data: Bytes::new(),
            gas_used: 0,
            logs: Vec::new(),
        },
        ContractCode::Bytecode(bytes) => interpreter::execute_owned(bytes.clone(), env, storage, gas_limit),
        ContractCode::Native(native) => {
            let mut gas = GasMeter::new(gas_limit);
            let mut logs = Vec::new();
            match gas.charge(NATIVE_CALL_GAS).and_then(|()| native.call(&env, storage, &mut gas, &mut logs)) {
                Ok(return_data) => {
                    CallOutcome { status: TxStatus::Success, return_data, gas_used: gas.used(), logs }
                }
                Err(error) => CallOutcome::from_error(&error, gas.used()),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::abi::{self, encode_call};
    use crate::exec::MemStorage;
    use sereth_crypto::hash::H256;

    /// A provider that rewrites argument word 0 to a fixed value.
    struct FixedProvider(H256);

    impl RaaProvider for FixedProvider {
        fn augment(&self, request: &RaaRequest<'_>) -> Option<Bytes> {
            abi::replace_arg_word(request.calldata, 0, self.0)
        }
    }

    /// A provider that clobbers the selector (must be rejected).
    struct EvilProvider;

    impl RaaProvider for EvilProvider {
        fn augment(&self, _request: &RaaRequest<'_>) -> Option<Bytes> {
            Some(Bytes::from_static(&[0xde, 0xad, 0xbe, 0xef]))
        }
    }

    fn static_env(contract: Address, calldata: Bytes) -> CallEnv {
        let mut env = CallEnv::test_env(Address::from_low_u64(1), contract, calldata);
        env.is_static = true;
        env
    }

    #[test]
    fn augments_enabled_static_calls() {
        let contract = Address::from_low_u64(7);
        let sel = abi::selector("get(bytes32[3])");
        let mut registry = RaaRegistry::new();
        registry.enable(contract, sel);
        registry.set_provider(Arc::new(FixedProvider(H256::from_low_u64(0x1234))));

        let calldata = encode_call(sel, &[H256::ZERO, H256::ZERO, H256::ZERO]);
        let env = registry.apply(static_env(contract, calldata));
        assert_eq!(abi::arg_word(&env.calldata, 0), Some(H256::from_low_u64(0x1234)));
    }

    #[test]
    fn never_augments_transactions() {
        let contract = Address::from_low_u64(7);
        let sel = abi::selector("set(bytes32[3])");
        let mut registry = RaaRegistry::new();
        registry.enable(contract, sel);
        registry.set_provider(Arc::new(FixedProvider(H256::from_low_u64(0x1234))));

        let calldata = encode_call(sel, &[H256::ZERO]);
        let mut env = CallEnv::test_env(Address::from_low_u64(1), contract, calldata.clone());
        env.is_static = false; // a transaction
        let env = registry.apply(env);
        assert_eq!(env.calldata, calldata, "signed calldata must be untouched");
    }

    #[test]
    fn ignores_unregistered_selectors() {
        let contract = Address::from_low_u64(7);
        let registered = abi::selector("get(bytes32[3])");
        let other = abi::selector("mark(bytes32[3])");
        let mut registry = RaaRegistry::new();
        registry.enable(contract, registered);
        registry.set_provider(Arc::new(FixedProvider(H256::from_low_u64(1))));

        let calldata = encode_call(other, &[H256::ZERO]);
        let env = registry.apply(static_env(contract, calldata.clone()));
        assert_eq!(env.calldata, calldata);
    }

    #[test]
    fn ignores_other_contracts() {
        let sel = abi::selector("get(bytes32[3])");
        let mut registry = RaaRegistry::new();
        registry.enable(Address::from_low_u64(7), sel);
        registry.set_provider(Arc::new(FixedProvider(H256::from_low_u64(1))));

        let calldata = encode_call(sel, &[H256::ZERO]);
        let env = registry.apply(static_env(Address::from_low_u64(8), calldata.clone()));
        assert_eq!(env.calldata, calldata);
    }

    #[test]
    fn no_provider_means_no_augmentation() {
        let contract = Address::from_low_u64(7);
        let sel = abi::selector("get(bytes32[3])");
        let mut registry = RaaRegistry::new();
        registry.enable(contract, sel);

        let calldata = encode_call(sel, &[H256::ZERO]);
        assert!(!registry.is_enabled(&contract, &sel));
        let env = registry.apply(static_env(contract, calldata.clone()));
        assert_eq!(env.calldata, calldata);
    }

    #[test]
    fn selector_clobbering_rewrites_are_discarded() {
        let contract = Address::from_low_u64(7);
        let sel = abi::selector("get(bytes32[3])");
        let mut registry = RaaRegistry::new();
        registry.enable(contract, sel);
        registry.set_provider(Arc::new(EvilProvider));

        let calldata = encode_call(sel, &[H256::ZERO]);
        let env = registry.apply(static_env(contract, calldata.clone()));
        assert_eq!(env.calldata, calldata);
    }

    #[test]
    fn execute_call_on_empty_account_succeeds() {
        let env = CallEnv::test_env(Address::from_low_u64(1), Address::from_low_u64(2), Bytes::new());
        let mut storage = MemStorage::new();
        let outcome = execute_call(&ContractCode::None, env, &mut storage, 100_000, &RaaRegistry::new());
        assert_eq!(outcome.status, TxStatus::Success);
        assert_eq!(outcome.gas_used, 0);
    }
}
