//! Minimal ABI helpers: selectors and 32-byte-word argument coding.
//!
//! The Sereth contract's functions all take a `bytes32[3]` (the paper's FPV
//! triple, §III-C), so the substrate only needs word-array coding: calldata
//! is `selector(4) ++ word₀(32) ++ word₁(32) ++ …`.

use bytes::Bytes;
use sereth_crypto::hash::H256;
use sereth_crypto::keccak::keccak256;

/// A 4-byte function selector.
pub type Selector = [u8; 4];

/// Computes the selector of a Solidity-style signature, e.g.
/// `selector("set(bytes32[3])")`.
pub fn selector(signature: &str) -> Selector {
    let digest = keccak256(signature.as_bytes());
    [digest[0], digest[1], digest[2], digest[3]]
}

/// Encodes a call: selector followed by the given 32-byte words.
pub fn encode_call(sel: Selector, words: &[H256]) -> Bytes {
    let mut out = Vec::with_capacity(4 + 32 * words.len());
    out.extend_from_slice(&sel);
    for word in words {
        out.extend_from_slice(word.as_bytes());
    }
    Bytes::from(out)
}

/// Splits calldata into its selector and argument words.
///
/// Returns `None` if the data is shorter than a selector or if the argument
/// region is not a whole number of words.
pub fn decode_call(calldata: &[u8]) -> Option<(Selector, Vec<H256>)> {
    if calldata.len() < 4 || !(calldata.len() - 4).is_multiple_of(32) {
        return None;
    }
    let mut sel = [0u8; 4];
    sel.copy_from_slice(&calldata[..4]);
    let words = calldata[4..]
        .chunks_exact(32)
        .map(|chunk| H256::from_slice(chunk).expect("exact 32-byte chunk"))
        .collect();
    Some((sel, words))
}

/// Reads argument word `index` from calldata without fully decoding.
pub fn arg_word(calldata: &[u8], index: usize) -> Option<H256> {
    let start = 4 + 32 * index;
    let end = start + 32;
    if calldata.len() < end {
        return None;
    }
    Some(H256::from_slice(&calldata[start..end]).expect("exact slice"))
}

/// Replaces argument word `index` in calldata, returning new calldata.
///
/// This is the primitive RAA uses to "write RAA data to formal arguments"
/// (paper Fig. 1, activity R3).
pub fn replace_arg_word(calldata: &[u8], index: usize, word: H256) -> Option<Bytes> {
    let start = 4 + 32 * index;
    let end = start + 32;
    if calldata.len() < end {
        return None;
    }
    let mut out = calldata.to_vec();
    out[start..end].copy_from_slice(word.as_bytes());
    Some(Bytes::from(out))
}

/// Encodes a single 32-byte word as return data.
pub fn encode_word(word: H256) -> Bytes {
    Bytes::copy_from_slice(word.as_bytes())
}

/// Decodes return data that is exactly one word.
pub fn decode_word(data: &[u8]) -> Option<H256> {
    if data.len() != 32 {
        return None;
    }
    H256::from_slice(data).ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selector_is_first_four_keccak_bytes() {
        let sel = selector("set(bytes32[3])");
        let digest = keccak256(b"set(bytes32[3])");
        assert_eq!(sel, [digest[0], digest[1], digest[2], digest[3]]);
    }

    #[test]
    fn selectors_distinguish_signatures() {
        assert_ne!(selector("set(bytes32[3])"), selector("buy(bytes32[3])"));
        assert_ne!(selector("get(bytes32[3])"), selector("mark(bytes32[3])"));
    }

    #[test]
    fn encode_decode_round_trip() {
        let sel = selector("set(bytes32[3])");
        let words = vec![H256::from_low_u64(1), H256::from_low_u64(2), H256::from_low_u64(3)];
        let calldata = encode_call(sel, &words);
        let (sel2, words2) = decode_call(&calldata).unwrap();
        assert_eq!(sel2, sel);
        assert_eq!(words2, words);
    }

    #[test]
    fn decode_rejects_ragged_lengths() {
        assert!(decode_call(&[1, 2, 3]).is_none());
        assert!(decode_call(&[0; 4 + 31]).is_none());
        assert!(decode_call(&[0; 4 + 33]).is_none());
        assert!(decode_call(&[0; 4]).is_some());
    }

    #[test]
    fn arg_word_indexing() {
        let calldata = encode_call([0; 4], &[H256::from_low_u64(10), H256::from_low_u64(20)]);
        assert_eq!(arg_word(&calldata, 0), Some(H256::from_low_u64(10)));
        assert_eq!(arg_word(&calldata, 1), Some(H256::from_low_u64(20)));
        assert_eq!(arg_word(&calldata, 2), None);
    }

    #[test]
    fn replace_arg_word_is_surgical() {
        let calldata = encode_call([9; 4], &[H256::from_low_u64(1), H256::from_low_u64(2)]);
        let replaced = replace_arg_word(&calldata, 1, H256::from_low_u64(99)).unwrap();
        assert_eq!(arg_word(&replaced, 0), Some(H256::from_low_u64(1)));
        assert_eq!(arg_word(&replaced, 1), Some(H256::from_low_u64(99)));
        assert_eq!(&replaced[..4], &[9; 4]);
        assert!(replace_arg_word(&calldata, 5, H256::ZERO).is_none());
    }

    #[test]
    fn word_coding_round_trip() {
        let word = H256::keccak(b"value");
        assert_eq!(decode_word(&encode_word(word)), Some(word));
        assert_eq!(decode_word(&[0u8; 31]), None);
    }
}
