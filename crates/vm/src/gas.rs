//! Gas metering.
//!
//! Gas is the resource bound that (a) lets miners prioritise transactions by
//! fee (paper §II-C, "miners generally favor transactions with higher fees")
//! and (b) caps how many transactions fit in a block, which is what creates
//! the TxPool backlog the paper observes ("block n is assembled from buys
//! that were submitted a few blocks ago", §V-A). Costs follow the Yellow
//! Paper's magnitudes without chasing its every special case.

use crate::error::VmError;
use crate::opcode::Opcode;

/// Flat cost charged to every transaction before execution.
pub const TX_INTRINSIC_GAS: u64 = 21_000;
/// Cost per non-zero calldata byte.
pub const TX_DATA_NONZERO_GAS: u64 = 16;
/// Cost per zero calldata byte.
pub const TX_DATA_ZERO_GAS: u64 = 4;
/// Flat cost charged for invoking a native (precompile-style) contract.
pub const NATIVE_CALL_GAS: u64 = 700;
/// Surcharge for a `CALL` that transfers a non-zero value.
pub const CALL_VALUE_GAS: u64 = 9_000;
/// Free execution gas granted to the callee of a value-bearing `CALL`
/// (covered by [`CALL_VALUE_GAS`], which the caller already paid).
pub const CALL_STIPEND: u64 = 2_300;
/// Maximum call nesting depth, as in the EVM. A call at this depth fails
/// flat (pushes 0) rather than erroring. Safe at the EVM's full value
/// because the interpreter executes sub-calls iteratively — suspended
/// frames live on the heap, not the host stack.
pub const CALL_DEPTH_LIMIT: u16 = 1024;

/// Intrinsic gas of a transaction with the given calldata.
pub fn intrinsic_gas(calldata: &[u8]) -> u64 {
    let data: u64 =
        calldata.iter().map(|&b| if b == 0 { TX_DATA_ZERO_GAS } else { TX_DATA_NONZERO_GAS }).sum();
    TX_INTRINSIC_GAS + data
}

/// Static cost of an opcode, excluding dynamic parts (memory expansion,
/// keccak words, log bytes).
pub fn static_cost(op: Opcode) -> u64 {
    use Opcode::*;
    match op {
        Stop | JumpDest => 1,
        ReturnDataSize => 2,
        Add | Sub | Lt | Gt | Slt | Sgt | Eq | IsZero | And | Or | Xor | Not | Byte | Shl | Shr | Sar
        | CallDataLoad | CallDataSize | Pop | Pc | MSize | Gas | Address | Caller | CallValue | Timestamp
        | Number => 3,
        Push(_) | Dup(_) | Swap(_) => 3,
        // ReturnDataCopy's per-word cost is applied in the interpreter.
        ReturnDataCopy => 3,
        Mul | Div | SDiv | Mod | SMod | SignExtend | CallDataCopy | SelfBalance => 5,
        AddMod | MulMod | Jump => 8,
        // EXP's per-exponent-byte cost is applied in the interpreter.
        Exp => 10,
        JumpI => 10,
        Sha3 => 30,
        SLoad => 200,
        Balance => 400,
        // SSTORE's dynamic rule is applied in the interpreter.
        SStore => 0,
        Log(n) => 375 + 375 * n as u64,
        MLoad | MStore | MStore8 => 3,
        // The value surcharge and forwarded gas are applied in the
        // interpreter.
        Call | StaticCall => 700,
        Return | Revert => 0,
    }
}

/// Per-word cost of copying `len` bytes (`RETURNDATACOPY`; saturating,
/// see [`sha3_word_cost`]).
pub fn copy_word_cost(len: u64) -> u64 {
    3u64.saturating_mul(len.div_ceil(32))
}

/// Gas forwarded to a sub-call: the EIP-150 "all but one 64th" rule caps
/// the request at `remaining - remaining/64`.
pub fn forwarded_call_gas(remaining: u64, requested: u64) -> u64 {
    requested.min(remaining - remaining / 64)
}

/// Cost of hashing `len` bytes with `SHA3` (beyond its static cost).
///
/// Saturates rather than overflowing: absurd lengths from adversarial
/// bytecode must surface as out-of-gas, never as an arithmetic panic.
pub fn sha3_word_cost(len: u64) -> u64 {
    6u64.saturating_mul(len.div_ceil(32))
}

/// `EXP` dynamic cost: 50 per significant exponent byte.
pub fn exp_byte_cost(exponent_bits: u32) -> u64 {
    50 * (exponent_bits as u64).div_ceil(8)
}

/// Cost per byte of `LOG` payload (saturating; see [`sha3_word_cost`]).
pub fn log_data_cost(len: u64) -> u64 {
    8u64.saturating_mul(len)
}

/// `SSTORE`: 20 000 to set a zero slot non-zero, 5 000 otherwise.
pub fn sstore_cost(was_zero: bool, new_is_zero: bool) -> u64 {
    if was_zero && !new_is_zero {
        20_000
    } else {
        5_000
    }
}

/// Quadratic memory expansion cost for a memory of `words` 32-byte words
/// (saturating; see [`sha3_word_cost`]).
fn memory_cost(words: u64) -> u64 {
    3u64.saturating_mul(words).saturating_add(words.saturating_mul(words) / 512)
}

/// Tracks gas consumption for one call frame.
#[derive(Debug, Clone)]
pub struct GasMeter {
    limit: u64,
    used: u64,
    /// Highest memory word count charged so far.
    memory_words: u64,
}

impl GasMeter {
    /// A meter with the given limit.
    pub fn new(limit: u64) -> Self {
        Self { limit, used: 0, memory_words: 0 }
    }

    /// Gas consumed so far.
    pub fn used(&self) -> u64 {
        self.used
    }

    /// Gas remaining.
    pub fn remaining(&self) -> u64 {
        self.limit - self.used
    }

    /// Charges `amount` gas.
    ///
    /// # Errors
    ///
    /// Returns [`VmError::OutOfGas`] if the limit would be exceeded; the
    /// meter is left saturated at the limit, matching EVM semantics where
    /// an out-of-gas frame consumes everything.
    pub fn charge(&mut self, amount: u64) -> Result<(), VmError> {
        if self.remaining() < amount {
            self.used = self.limit;
            return Err(VmError::OutOfGas);
        }
        self.used += amount;
        Ok(())
    }

    /// Charges for expanding memory to cover `end_bytes` bytes.
    ///
    /// # Errors
    ///
    /// Returns [`VmError::OutOfGas`] when the expansion is unaffordable.
    pub fn charge_memory(&mut self, end_bytes: u64) -> Result<(), VmError> {
        let words = end_bytes.div_ceil(32);
        if words <= self.memory_words {
            return Ok(());
        }
        let delta = memory_cost(words) - memory_cost(self.memory_words);
        self.charge(delta)?;
        self.memory_words = words;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intrinsic_gas_counts_zero_and_nonzero_bytes() {
        assert_eq!(intrinsic_gas(&[]), 21_000);
        assert_eq!(intrinsic_gas(&[0, 0]), 21_000 + 8);
        assert_eq!(intrinsic_gas(&[1, 0xff]), 21_000 + 32);
    }

    #[test]
    fn meter_charges_and_reports() {
        let mut meter = GasMeter::new(100);
        meter.charge(40).unwrap();
        assert_eq!(meter.used(), 40);
        assert_eq!(meter.remaining(), 60);
    }

    #[test]
    fn out_of_gas_saturates() {
        let mut meter = GasMeter::new(100);
        assert_eq!(meter.charge(101), Err(VmError::OutOfGas));
        assert_eq!(meter.used(), 100);
        assert_eq!(meter.remaining(), 0);
    }

    #[test]
    fn memory_expansion_is_monotone_and_quadratic() {
        let mut meter = GasMeter::new(u64::MAX);
        meter.charge_memory(32).unwrap();
        let after_one_word = meter.used();
        assert_eq!(after_one_word, 3);
        // Re-touching the same region is free.
        meter.charge_memory(16).unwrap();
        assert_eq!(meter.used(), after_one_word);
        // A very large region costs quadratically.
        meter.charge_memory(32 * 1024).unwrap();
        assert!(meter.used() > 3 * 1024);
    }

    #[test]
    fn sha3_cost_rounds_words_up() {
        assert_eq!(sha3_word_cost(0), 0);
        assert_eq!(sha3_word_cost(1), 6);
        assert_eq!(sha3_word_cost(32), 6);
        assert_eq!(sha3_word_cost(33), 12);
    }

    #[test]
    fn forwarded_gas_keeps_one_64th() {
        assert_eq!(forwarded_call_gas(6_400, u64::MAX), 6_300);
        assert_eq!(forwarded_call_gas(6_400, 1_000), 1_000);
        assert_eq!(forwarded_call_gas(0, 1_000), 0);
        assert_eq!(forwarded_call_gas(63, 63), 63, "sub-64 remainders forward fully");
    }

    #[test]
    fn copy_cost_rounds_words_up() {
        assert_eq!(copy_word_cost(0), 0);
        assert_eq!(copy_word_cost(1), 3);
        assert_eq!(copy_word_cost(32), 3);
        assert_eq!(copy_word_cost(33), 6);
    }

    #[test]
    fn sstore_cases() {
        assert_eq!(sstore_cost(true, false), 20_000);
        assert_eq!(sstore_cost(false, false), 5_000);
        assert_eq!(sstore_cost(false, true), 5_000);
        assert_eq!(sstore_cost(true, true), 5_000);
    }
}
