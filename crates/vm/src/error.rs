//! VM error types.

use core::fmt;

/// Errors raised while executing bytecode or a native contract.
///
/// Every variant aborts the frame; the transaction executor in
/// `sereth-chain` rolls back state changes and records the outcome in the
/// receipt — the transaction still occupies block space, as the paper
/// stresses (§III-A).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VmError {
    /// The gas limit was exhausted.
    OutOfGas,
    /// Stack exceeded 1024 entries.
    StackOverflow,
    /// An instruction needed more operands than the stack held.
    StackUnderflow,
    /// `JUMP`/`JUMPI` to a target that is not a `JUMPDEST`.
    InvalidJump {
        /// The offending destination.
        target: usize,
    },
    /// A byte that is not in the supported opcode subset was executed.
    InvalidOpcode {
        /// The raw byte.
        byte: u8,
    },
    /// `SSTORE` or `LOG` attempted inside a static (read-only) call.
    StaticViolation,
    /// The contract executed `REVERT`.
    Reverted,
    /// `RETURNDATACOPY` read past the end of the return data buffer.
    /// Unlike `CALLDATACOPY`, which zero-pads, this is a hard error in the
    /// EVM.
    ReturnDataOutOfBounds,
    /// Calldata was malformed for the target native contract.
    BadCalldata(&'static str),
}

impl fmt::Display for VmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::OutOfGas => write!(f, "out of gas"),
            Self::StackOverflow => write!(f, "stack overflow"),
            Self::StackUnderflow => write!(f, "stack underflow"),
            Self::InvalidJump { target } => write!(f, "invalid jump destination {target}"),
            Self::InvalidOpcode { byte } => write!(f, "invalid opcode 0x{byte:02x}"),
            Self::StaticViolation => write!(f, "state modification inside a static call"),
            Self::Reverted => write!(f, "execution reverted"),
            Self::ReturnDataOutOfBounds => write!(f, "return data read out of bounds"),
            Self::BadCalldata(what) => write!(f, "malformed calldata: {what}"),
        }
    }
}

impl std::error::Error for VmError {}
