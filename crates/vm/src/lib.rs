//! An EVM-subset virtual machine with the Runtime Argument Augmentation
//! (RAA) hook from *Read-Uncommitted Transactions for Smart Contract
//! Performance* (Cook et al., ICDCS 2019, §III-D).
//!
//! * [`opcode`] / [`interpreter`] — a 256-bit stack machine over ~60 EVM
//!   opcodes with Yellow-Paper byte values;
//! * [`asm`] — a two-pass assembler so contracts can be authored as text
//!   (the Sereth contract of Listing 1 ships in assembly and native Rust);
//! * [`gas`] — metering, intrinsic transaction gas, and block-capacity
//!   economics;
//! * [`abi`] — selectors and 32-byte-word argument coding (the FPV triple);
//! * [`exec`] — call environments, storage access, native contracts;
//! * [`raa`] — the interpreter hook that lets an external data service
//!   rewrite the arguments of read-only calls before execution.
//!
//! # Examples
//!
//! ```
//! use bytes::Bytes;
//! use sereth_crypto::Address;
//! use sereth_vm::asm::assemble;
//! use sereth_vm::exec::{CallEnv, MemStorage};
//! use sereth_vm::interpreter::execute;
//!
//! // return 41 + 1
//! let code = assemble(
//!     "PUSH1 0x29\nPUSH1 0x01\nADD\nPUSH1 0x00\nMSTORE\nPUSH1 0x20\nPUSH1 0x00\nRETURN",
//! )?;
//! let env = CallEnv::test_env(Address::from_low_u64(1), Address::from_low_u64(2), Bytes::new());
//! let mut storage = MemStorage::new();
//! let outcome = execute(&code, &env, &mut storage, 100_000);
//! assert_eq!(outcome.return_data[31], 42);
//! # Ok::<(), sereth_vm::asm::AsmError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod abi;
pub mod access;
pub mod asm;
pub mod error;
pub mod exec;
pub mod gas;
pub mod interpreter;
pub mod opcode;
pub mod raa;
mod subcall;
pub mod trace;

pub use abi::Selector;
pub use access::{AccessKey, AccessRecorder, AccessSet};
pub use error::VmError;
pub use exec::{
    CallEnv, CallOutcome, ContractCode, MemStorage, NativeContract, OverlayStorage, ReadStorage, Storage,
};
pub use gas::{intrinsic_gas, GasMeter};
pub use opcode::Opcode;
pub use raa::{execute_call, RaaProvider, RaaRegistry, RaaRequest};
