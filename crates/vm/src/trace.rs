//! Execution tracing: a step-by-step view of a frame for debugging and
//! for the golden-trace tests of the Sereth contract.
//!
//! [`trace`] re-runs bytecode with a recording inspector and returns one
//! [`TraceStep`] per executed instruction — program counter, opcode, gas
//! remaining, and stack depth — plus the final outcome. The interpreter
//! proper stays hook-free (no overhead on the simulation hot path); the
//! tracer is a parallel implementation kept honest by asserting its
//! outcome equals [`crate::interpreter::execute`]'s.

use bytes::Bytes;
use sereth_crypto::keccak::keccak256;
use sereth_types::receipt::TxStatus;
use sereth_types::u256::U256;

use crate::exec::{CallEnv, CallOutcome, Storage};
use crate::interpreter;
use crate::opcode::Opcode;

/// One executed instruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceStep {
    /// Program counter before execution.
    pub pc: usize,
    /// The decoded opcode (`None` for an invalid byte).
    pub op: Option<Opcode>,
    /// Gas remaining before the instruction.
    pub gas_remaining: u64,
    /// Stack depth before the instruction.
    pub stack_depth: usize,
    /// Top-of-stack before the instruction, if any.
    pub stack_top: Option<U256>,
}

/// A complete trace.
#[derive(Debug, Clone)]
pub struct Trace {
    /// Every step in execution order.
    pub steps: Vec<TraceStep>,
    /// The frame's outcome.
    pub outcome: CallOutcome,
}

impl Trace {
    /// Renders the trace in a compact, line-per-step format.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for step in &self.steps {
            let name = step.op.map(|op| op.to_string()).unwrap_or_else(|| "INVALID".into());
            let top = step.stack_top.map(|word| format!("0x{word:x}")).unwrap_or_else(|| "-".into());
            let _ = writeln!(
                out,
                "{pc:04x}: {name:<14} gas={gas:<8} depth={depth:<3} top={top}",
                pc = step.pc,
                gas = step.gas_remaining,
                depth = step.stack_depth,
            );
        }
        let _ = writeln!(out, "=> {:?}, gas_used={}", self.outcome.status, self.outcome.gas_used);
        out
    }
}

/// Executes `code` like [`interpreter::execute`] while recording a step
/// per instruction.
///
/// The `step_limit` bounds recording on runaway programs (execution still
/// finishes under the gas meter; recording just stops).
pub fn trace(
    code: &[u8],
    env: &CallEnv,
    storage: &mut dyn Storage,
    gas_limit: u64,
    step_limit: usize,
) -> Trace {
    // Record steps with a shadow pre-pass over a cloned storage: the
    // shadow interpreter below mirrors the real one's control flow
    // faithfully for the supported subset, and the authoritative outcome
    // comes from the real interpreter afterwards.
    let mut shadow = ShadowFrame::new(code, env, gas_limit);
    let mut steps = Vec::new();
    while steps.len() < step_limit {
        match shadow.peek() {
            Some(step) => {
                steps.push(step);
                if !shadow.advance(storage) {
                    break;
                }
            }
            None => break,
        }
    }
    let outcome = CallOutcome {
        status: shadow.status,
        return_data: shadow.return_data.clone(),
        gas_used: shadow.gas_used(),
        logs: Vec::new(),
    };
    Trace { steps, outcome }
}

/// Executes `code` like [`trace`] while deriving the frame's read/write
/// [`AccessSet`](crate::access::AccessSet) — the trace-derived footprint
/// the conflict-aware parallel block executor schedules by.
///
/// Sub-calls execute through the shared sub-call path against the same
/// recording storage, so a cross-contract transaction's footprint covers
/// every frame it ran, and writes rolled back by an inner revert remain in
/// the set (conservative, see [`crate::access`]).
pub fn trace_access(
    code: &[u8],
    env: &CallEnv,
    storage: &mut dyn Storage,
    gas_limit: u64,
    step_limit: usize,
) -> (Trace, crate::access::AccessSet) {
    let mut recorder = crate::access::AccessRecorder::new(storage);
    let traced = trace(code, env, &mut recorder, gas_limit, step_limit);
    (traced, recorder.into_access())
}

/// Traces and checks agreement with the hook-free interpreter, returning
/// both the trace and the authoritative outcome.
///
/// # Panics
///
/// Panics if the shadow interpreter and the real interpreter disagree on
/// status or gas — that would be a tracer bug, and tests rely on it.
pub fn trace_verified(
    code: &[u8],
    env: &CallEnv,
    storage_a: &mut dyn Storage,
    storage_b: &mut dyn Storage,
    gas_limit: u64,
) -> (Trace, CallOutcome) {
    let traced = trace(code, env, storage_a, gas_limit, usize::MAX >> 1);
    let real = interpreter::execute(code, env, storage_b, gas_limit);
    assert_eq!(traced.outcome.status, real.status, "tracer/interpreter status divergence");
    assert_eq!(traced.outcome.gas_used, real.gas_used, "tracer/interpreter gas divergence");
    (traced, real)
}

/// A minimal re-implementation of the interpreter's state machine used
/// only for tracing. Kept in lockstep with `interpreter::Frame` by the
/// `trace_verified` assertion and the test suite.
struct ShadowFrame<'a> {
    code: &'a [u8],
    env: &'a CallEnv,
    pc: usize,
    stack: Vec<U256>,
    memory: Vec<u8>,
    gas: crate::gas::GasMeter,
    jumpdests: Vec<bool>,
    status: TxStatus,
    return_data: Bytes,
    /// Output of the most recent completed sub-call (mirrors the real
    /// frame's RETURNDATASIZE/RETURNDATACOPY buffer).
    sub_return: Bytes,
    halted: bool,
}

impl<'a> ShadowFrame<'a> {
    fn new(code: &'a [u8], env: &'a CallEnv, gas_limit: u64) -> Self {
        Self {
            code,
            env,
            pc: 0,
            stack: Vec::new(),
            memory: Vec::new(),
            gas: crate::gas::GasMeter::new(gas_limit),
            jumpdests: crate::opcode::valid_jump_destinations(code),
            status: TxStatus::Success,
            return_data: Bytes::new(),
            sub_return: Bytes::new(),
            halted: false,
        }
    }

    fn gas_used(&self) -> u64 {
        self.gas.used()
    }

    fn peek(&self) -> Option<TraceStep> {
        if self.halted {
            return None;
        }
        let byte = *self.code.get(self.pc)?;
        Some(TraceStep {
            pc: self.pc,
            op: Opcode::from_byte(byte),
            gas_remaining: self.gas.remaining(),
            stack_depth: self.stack.len(),
            stack_top: self.stack.last().copied(),
        })
    }

    /// Executes one instruction; returns `false` once halted.
    fn advance(&mut self, storage: &mut dyn Storage) -> bool {
        if self.halted {
            return false;
        }
        match self.step(storage) {
            Ok(done) => {
                if done {
                    self.halted = true;
                }
                !self.halted
            }
            Err(error) => {
                self.status = match error {
                    crate::error::VmError::OutOfGas => TxStatus::OutOfGas,
                    _ => TxStatus::Reverted,
                };
                self.halted = true;
                false
            }
        }
    }

    fn pop(&mut self) -> Result<U256, crate::error::VmError> {
        self.stack.pop().ok_or(crate::error::VmError::StackUnderflow)
    }

    fn pop_usize(&mut self) -> Result<usize, crate::error::VmError> {
        Ok(self.pop()?.saturating_to_u64() as usize)
    }

    fn touch(&mut self, offset: usize, len: usize) -> Result<(), crate::error::VmError> {
        if len == 0 {
            return Ok(());
        }
        let end = offset.checked_add(len).ok_or(crate::error::VmError::OutOfGas)?;
        self.gas.charge_memory(end as u64)?;
        if self.memory.len() < end {
            self.memory.resize(end, 0);
        }
        Ok(())
    }

    #[allow(clippy::too_many_lines)]
    fn step(&mut self, storage: &mut dyn Storage) -> Result<bool, crate::error::VmError> {
        use crate::error::VmError;
        use crate::gas;
        let Some(&byte) = self.code.get(self.pc) else {
            return Ok(true);
        };
        let op = Opcode::from_byte(byte).ok_or(VmError::InvalidOpcode { byte })?;
        self.gas.charge(gas::static_cost(op))?;
        self.pc += 1;
        match op {
            Opcode::Stop => return Ok(true),
            Opcode::Add => bin(self, |a, b| a + b)?,
            Opcode::Mul => bin(self, |a, b| a * b)?,
            Opcode::Sub => bin(self, |a, b| a - b)?,
            Opcode::Div => bin(self, |a, b| a.div_rem(b).map(|(q, _)| q).unwrap_or(U256::ZERO))?,
            Opcode::SDiv => bin(self, |a, b| a.signed_div(b))?,
            Opcode::Mod => bin(self, |a, b| a.div_rem(b).map(|(_, r)| r).unwrap_or(U256::ZERO))?,
            Opcode::SMod => bin(self, |a, b| a.signed_rem(b))?,
            Opcode::SignExtend => {
                let index = self.pop()?;
                let value = self.pop()?;
                self.stack.push(value.sign_extend(index.saturating_to_u64().min(32) as usize));
            }
            Opcode::AddMod => {
                let a = self.pop()?;
                let b = self.pop()?;
                let n = self.pop()?;
                self.stack.push(a.add_mod(b, n));
            }
            Opcode::MulMod => {
                let a = self.pop()?;
                let b = self.pop()?;
                let n = self.pop()?;
                self.stack.push(a.mul_mod(b, n));
            }
            Opcode::Exp => {
                let base = self.pop()?;
                let exponent = self.pop()?;
                self.gas.charge(gas::exp_byte_cost(exponent.bits()))?;
                self.stack.push(base.wrapping_pow(exponent));
            }
            Opcode::Lt => bin(self, |a, b| U256::from((a < b) as u64))?,
            Opcode::Gt => bin(self, |a, b| U256::from((a > b) as u64))?,
            Opcode::Slt => bin(self, |a, b| U256::from(a.signed_lt(&b) as u64))?,
            Opcode::Sgt => bin(self, |a, b| U256::from(b.signed_lt(&a) as u64))?,
            Opcode::Eq => bin(self, |a, b| U256::from((a == b) as u64))?,
            Opcode::IsZero => {
                let a = self.pop()?;
                self.stack.push(U256::from(a.is_zero() as u64));
            }
            Opcode::And => bin(self, |a, b| a & b)?,
            Opcode::Or => bin(self, |a, b| a | b)?,
            Opcode::Xor => bin(self, |a, b| a ^ b)?,
            Opcode::Not => {
                let a = self.pop()?;
                self.stack.push(!a);
            }
            Opcode::Byte => {
                let index = self.pop()?;
                let value = self.pop()?;
                self.stack.push(U256::from(value.byte_msb(index.saturating_to_u64() as usize) as u64));
            }
            Opcode::Shl => {
                let shift = self.pop()?;
                let value = self.pop()?;
                self.stack.push(value << shift.saturating_to_u64().min(256) as u32);
            }
            Opcode::Shr => {
                let shift = self.pop()?;
                let value = self.pop()?;
                self.stack.push(value >> shift.saturating_to_u64().min(256) as u32);
            }
            Opcode::Sar => {
                let shift = self.pop()?;
                let value = self.pop()?;
                self.stack.push(value.sar(shift.saturating_to_u64().min(256) as u32));
            }
            Opcode::Sha3 => {
                let offset = self.pop_usize()?;
                let len = self.pop_usize()?;
                self.gas.charge(gas::sha3_word_cost(len as u64))?;
                self.touch(offset, len)?;
                let digest = keccak256(&self.memory[offset..offset + len]);
                self.stack.push(U256::from_be_bytes(digest));
            }
            Opcode::Address => self.stack.push(addr_word(self.env.callee.as_bytes())),
            Opcode::Balance => {
                let address = crate::subcall::word_address(self.pop()?);
                self.stack.push(storage.balance_get(&address));
            }
            Opcode::SelfBalance => self.stack.push(storage.balance_get(&self.env.callee)),
            Opcode::Caller => self.stack.push(addr_word(self.env.caller.as_bytes())),
            Opcode::CallValue => self.stack.push(self.env.call_value),
            Opcode::CallDataLoad => {
                let offset = self.pop_usize()?;
                let mut word = [0u8; 32];
                for (i, slot) in word.iter_mut().enumerate() {
                    *slot = offset
                        .checked_add(i)
                        .and_then(|idx| self.env.calldata.get(idx))
                        .copied()
                        .unwrap_or(0);
                }
                self.stack.push(U256::from_be_bytes(word));
            }
            Opcode::CallDataSize => self.stack.push(U256::from(self.env.calldata.len() as u64)),
            Opcode::CallDataCopy => {
                let mem_offset = self.pop_usize()?;
                let data_offset = self.pop_usize()?;
                let len = self.pop_usize()?;
                self.touch(mem_offset, len)?;
                for i in 0..len {
                    self.memory[mem_offset + i] = data_offset
                        .checked_add(i)
                        .and_then(|idx| self.env.calldata.get(idx))
                        .copied()
                        .unwrap_or(0);
                }
            }
            Opcode::ReturnDataSize => self.stack.push(U256::from(self.sub_return.len() as u64)),
            Opcode::ReturnDataCopy => {
                let mem_offset = self.pop_usize()?;
                let data_offset = self.pop_usize()?;
                let len = self.pop_usize()?;
                let end = data_offset.checked_add(len).ok_or(VmError::ReturnDataOutOfBounds)?;
                if end > self.sub_return.len() {
                    return Err(VmError::ReturnDataOutOfBounds);
                }
                self.gas.charge(gas::copy_word_cost(len as u64))?;
                self.touch(mem_offset, len)?;
                let data = self.sub_return.clone();
                self.memory[mem_offset..mem_offset + len].copy_from_slice(&data[data_offset..end]);
            }
            Opcode::Timestamp => self.stack.push(U256::from(self.env.timestamp_ms)),
            Opcode::Number => self.stack.push(U256::from(self.env.block_number)),
            Opcode::Pop => {
                self.pop()?;
            }
            Opcode::MLoad => {
                let offset = self.pop_usize()?;
                self.touch(offset, 32)?;
                let mut word = [0u8; 32];
                word.copy_from_slice(&self.memory[offset..offset + 32]);
                self.stack.push(U256::from_be_bytes(word));
            }
            Opcode::MStore => {
                let offset = self.pop_usize()?;
                let value = self.pop()?;
                self.touch(offset, 32)?;
                self.memory[offset..offset + 32].copy_from_slice(&value.to_be_bytes());
            }
            Opcode::MStore8 => {
                let offset = self.pop_usize()?;
                let value = self.pop()?;
                self.touch(offset, 1)?;
                self.memory[offset] = value.byte_msb(31);
            }
            Opcode::SLoad => {
                let key = self.pop()?.to_h256();
                let value = storage.storage_get(&self.env.callee, &key);
                self.stack.push(U256::from_h256(value));
            }
            Opcode::SStore => {
                if self.env.is_static {
                    return Err(VmError::StaticViolation);
                }
                let key = self.pop()?.to_h256();
                let value = self.pop()?.to_h256();
                let old = storage.storage_get(&self.env.callee, &key);
                self.gas.charge(gas::sstore_cost(old.is_zero(), value.is_zero()))?;
                storage.storage_set(&self.env.callee, key, value);
            }
            Opcode::Jump => {
                let target = self.pop_usize()?;
                self.jump(target)?;
            }
            Opcode::JumpI => {
                let target = self.pop_usize()?;
                let condition = self.pop()?;
                if !condition.is_zero() {
                    self.jump(target)?;
                }
            }
            Opcode::Pc => self.stack.push(U256::from((self.pc - 1) as u64)),
            Opcode::MSize => self.stack.push(U256::from(self.memory.len() as u64)),
            Opcode::Gas => self.stack.push(U256::from(self.gas.remaining())),
            Opcode::JumpDest => {}
            Opcode::Push(n) => {
                let end = (self.pc + n as usize).min(self.code.len());
                let mut word = [0u8; 32];
                let bytes = &self.code[self.pc..end];
                word[32 - n as usize..32 - n as usize + bytes.len()].copy_from_slice(bytes);
                self.stack.push(U256::from_be_bytes(word));
                self.pc += n as usize;
            }
            Opcode::Dup(n) => {
                let depth = n as usize;
                if self.stack.len() < depth {
                    return Err(VmError::StackUnderflow);
                }
                let value = self.stack[self.stack.len() - depth];
                self.stack.push(value);
            }
            Opcode::Swap(n) => {
                let depth = n as usize;
                if self.stack.len() < depth + 1 {
                    return Err(VmError::StackUnderflow);
                }
                let top = self.stack.len() - 1;
                self.stack.swap(top, top - depth);
            }
            Opcode::Log(topic_count) => {
                if self.env.is_static {
                    return Err(VmError::StaticViolation);
                }
                let offset = self.pop_usize()?;
                let len = self.pop_usize()?;
                for _ in 0..topic_count {
                    self.pop()?;
                }
                self.gas.charge(gas::log_data_cost(len as u64))?;
                self.touch(offset, len)?;
            }
            Opcode::Call => self.op_call(storage, false)?,
            Opcode::StaticCall => self.op_call(storage, true)?,
            Opcode::Return => {
                let offset = self.pop_usize()?;
                let len = self.pop_usize()?;
                self.touch(offset, len)?;
                self.return_data = Bytes::copy_from_slice(&self.memory[offset..offset + len]);
                return Ok(true);
            }
            Opcode::Revert => {
                let offset = self.pop_usize()?;
                let len = self.pop_usize()?;
                self.touch(offset, len)?;
                return Err(VmError::Reverted);
            }
        }
        if self.stack.len() > 1024 {
            return Err(VmError::StackOverflow);
        }
        Ok(false)
    }

    /// Mirrors the real interpreter's `CALL`/`STATICCALL` handling through
    /// the shared sub-call semantics. Child frames execute but are not
    /// traced — the trace stays a single-frame view.
    fn op_call(
        &mut self,
        storage: &mut dyn Storage,
        is_static_call: bool,
    ) -> Result<(), crate::error::VmError> {
        use crate::gas as gas_mod;
        use crate::subcall::{run_subcall, word_address, SubCallRequest};

        let gas_requested = self.pop()?.saturating_to_u64();
        let target = word_address(self.pop()?);
        let value = if is_static_call { U256::ZERO } else { self.pop()? };
        let in_offset = self.pop_usize()?;
        let in_len = self.pop_usize()?;
        let out_offset = self.pop_usize()?;
        let out_len = self.pop_usize()?;

        if self.env.is_static && !value.is_zero() {
            return Err(crate::error::VmError::StaticViolation);
        }
        if !value.is_zero() {
            self.gas.charge(gas_mod::CALL_VALUE_GAS)?;
        }
        self.touch(in_offset, in_len)?;
        self.touch(out_offset, out_len)?;

        let request = SubCallRequest {
            gas_requested,
            target,
            value,
            calldata: Bytes::copy_from_slice(&self.memory[in_offset..in_offset + in_len]),
            is_static_call,
        };
        let result = run_subcall(self.env, request, self.gas.remaining(), storage);
        self.gas.charge(result.gas_charged)?;

        let copied = out_len.min(result.return_data.len());
        self.memory[out_offset..out_offset + copied].copy_from_slice(&result.return_data[..copied]);
        self.sub_return = result.return_data;
        self.stack.push(U256::from(result.success as u64));
        Ok(())
    }

    fn jump(&mut self, target: usize) -> Result<(), crate::error::VmError> {
        if target < self.jumpdests.len() && self.jumpdests[target] {
            self.pc = target;
            Ok(())
        } else {
            Err(crate::error::VmError::InvalidJump { target })
        }
    }
}

fn bin(frame: &mut ShadowFrame<'_>, f: impl FnOnce(U256, U256) -> U256) -> Result<(), crate::error::VmError> {
    let a = frame.pop()?;
    let b = frame.pop()?;
    frame.stack.push(f(a, b));
    Ok(())
}

fn addr_word(address: &[u8; 20]) -> U256 {
    let mut word = [0u8; 32];
    word[12..].copy_from_slice(address);
    U256::from_be_bytes(word)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;
    use crate::exec::MemStorage;
    use sereth_crypto::address::Address;

    fn env() -> CallEnv {
        CallEnv::test_env(Address::from_low_u64(1), Address::from_low_u64(2), Bytes::new())
    }

    #[test]
    fn trace_records_every_instruction() {
        let code = assemble("PUSH1 0x02\nPUSH1 0x03\nADD\nSTOP").unwrap();
        let mut storage = MemStorage::new();
        let result = trace(&code, &env(), &mut storage, 100_000, 1_000);
        assert_eq!(result.steps.len(), 4);
        assert_eq!(result.steps[0].op, Some(Opcode::Push(1)));
        assert_eq!(result.steps[2].op, Some(Opcode::Add));
        assert_eq!(result.steps[2].stack_depth, 2);
        assert_eq!(result.steps[2].stack_top, Some(U256::from(3u64)));
        assert_eq!(result.outcome.status, TxStatus::Success);
    }

    #[test]
    fn trace_agrees_with_interpreter_on_guarded_store() {
        // The real Sereth bytecode lives in sereth-node (which depends on
        // this crate); exercise an equivalent guard+store shape here.
        let source = r#"
            PUSH1 0x00
            CALLDATALOAD
            PUSH1 0x2a
            EQ
            PUSH @do
            JUMPI
            STOP
        do:
            JUMPDEST
            PUSH1 0x07
            PUSH1 0x01
            SSTORE
            STOP
        "#;
        let code = assemble(source).unwrap();
        let mut calldata = [0u8; 32];
        calldata[31] = 0x2a;
        let mut env = env();
        env.calldata = Bytes::copy_from_slice(&calldata);
        let mut a = MemStorage::new();
        let mut b = MemStorage::new();
        let (traced, real) = trace_verified(&code, &env, &mut a, &mut b, 100_000);
        assert_eq!(traced.outcome.status, real.status);
        assert!(traced.steps.iter().any(|s| s.op == Some(Opcode::SStore)));
        // Shadow storage effects match the real run's.
        use crate::exec::Storage as _;
        let slot = sereth_crypto::hash::H256::from_low_u64(1);
        assert_eq!(a.storage_get(&env.callee, &slot), b.storage_get(&env.callee, &slot));
    }

    #[test]
    fn trace_agrees_with_interpreter_across_sub_calls() {
        use crate::exec::ContractCode;

        // Callee stores 9 and returns 0x2a; caller calls it, stores the
        // flag, returns the callee's word. Only the caller's frame is
        // traced — the child runs through the shared sub-call path.
        let callee = assemble(
            "PUSH1 0x09\nPUSH1 0x00\nSSTORE\nPUSH1 0x2a\nPUSH1 0x00\nMSTORE\nPUSH1 0x20\nPUSH1 0x00\nRETURN",
        )
        .unwrap();
        let caller = assemble(
            r#"
            PUSH1 0x20
            PUSH1 0x00
            PUSH1 0x00
            PUSH1 0x00
            PUSH1 0x00
            PUSH1 0xbb
            PUSH3 0xc350
            CALL
            PUSH1 0x01
            SSTORE
            PUSH1 0x20
            PUSH1 0x00
            RETURN
            "#,
        )
        .unwrap();
        let install = |storage: &mut MemStorage| {
            storage.set_code(
                Address::from_low_u64(0xbb),
                ContractCode::Bytecode(Bytes::copy_from_slice(&callee)),
            );
        };
        let mut a = MemStorage::new();
        let mut b = MemStorage::new();
        install(&mut a);
        install(&mut b);
        let (traced, real) = trace_verified(&caller, &env(), &mut a, &mut b, 1_000_000);
        assert_eq!(traced.outcome.status, TxStatus::Success);
        assert_eq!(real.return_data[31], 0x2a, "child output propagated");
        assert!(traced.steps.iter().any(|s| s.op == Some(Opcode::Call)));
        // The child's write is visible in both storages.
        use crate::exec::Storage as _;
        let slot = sereth_crypto::hash::H256::ZERO;
        let callee_addr = Address::from_low_u64(0xbb);
        assert_eq!(a.storage_get(&callee_addr, &slot), b.storage_get(&callee_addr, &slot));
        assert_eq!(a.storage_get(&callee_addr, &slot).as_bytes()[31], 9);
    }

    #[test]
    fn trace_agrees_with_interpreter_on_reverting_sub_call() {
        use crate::exec::ContractCode;

        let callee = assemble("PUSH1 0x09\nPUSH1 0x00\nSSTORE\nPUSH1 0x00\nPUSH1 0x00\nREVERT").unwrap();
        // Caller returns the call's success flag (must be 0).
        let caller = assemble(
            "PUSH1 0x00\nPUSH1 0x00\nPUSH1 0x00\nPUSH1 0x00\nPUSH1 0x00\nPUSH1 0xbb\nPUSH3 0xc350\nCALL\nPUSH1 0x00\nMSTORE\nPUSH1 0x20\nPUSH1 0x00\nRETURN",
        )
        .unwrap();
        let mut a = MemStorage::new();
        let mut b = MemStorage::new();
        for storage in [&mut a, &mut b] {
            storage.set_code(
                Address::from_low_u64(0xbb),
                ContractCode::Bytecode(Bytes::copy_from_slice(&callee)),
            );
        }
        let (traced, real) = trace_verified(&caller, &env(), &mut a, &mut b, 1_000_000);
        assert_eq!(traced.outcome.status, TxStatus::Success, "parent survives child revert");
        assert_eq!(real.return_data[31], 0, "flag 0");
        // The child's write rolled back identically in both runs.
        use crate::exec::Storage as _;
        let callee_addr = Address::from_low_u64(0xbb);
        assert!(a.storage_get(&callee_addr, &sereth_crypto::hash::H256::ZERO).is_zero());
        assert!(b.storage_get(&callee_addr, &sereth_crypto::hash::H256::ZERO).is_zero());
    }

    #[test]
    fn trace_access_derives_the_frames_footprint() {
        use crate::access::AccessKey;
        use crate::exec::ContractCode;

        // Caller SLOADs its slot 1, calls 0xbb (which SSTOREs its slot 0),
        // then SSTOREs its own slot 2.
        let callee = assemble("PUSH1 0x09\nPUSH1 0x00\nSSTORE\nSTOP").unwrap();
        let caller = assemble(
            "PUSH1 0x01\nSLOAD\nPOP\nPUSH1 0x00\nPUSH1 0x00\nPUSH1 0x00\nPUSH1 0x00\nPUSH1 0x00\nPUSH1 0xbb\nPUSH3 0xc350\nCALL\nPOP\nPUSH1 0x07\nPUSH1 0x02\nSSTORE\nSTOP",
        )
        .unwrap();
        let mut storage = MemStorage::new();
        storage
            .set_code(Address::from_low_u64(0xbb), ContractCode::Bytecode(Bytes::copy_from_slice(&callee)));
        let env = env();
        let (traced, access) = trace_access(&caller, &env, &mut storage, 1_000_000, 10_000);
        assert_eq!(traced.outcome.status, TxStatus::Success);
        let me = env.callee;
        let child = Address::from_low_u64(0xbb);
        assert!(access.reads.contains(&AccessKey::Slot(me, sereth_crypto::hash::H256::from_low_u64(1))));
        assert!(access.writes.contains(&AccessKey::Slot(me, sereth_crypto::hash::H256::from_low_u64(2))));
        assert!(
            access.writes.contains(&AccessKey::Slot(child, sereth_crypto::hash::H256::ZERO)),
            "sub-call writes are part of the footprint"
        );
        assert!(access.reads.contains(&AccessKey::Code(child)), "CALL dispatch reads the callee's code");
    }

    #[test]
    fn trace_reports_reverts() {
        let code = assemble("PUSH1 0x00\nPUSH1 0x00\nREVERT").unwrap();
        let mut storage = MemStorage::new();
        let result = trace(&code, &env(), &mut storage, 100_000, 1_000);
        assert_eq!(result.outcome.status, TxStatus::Reverted);
        assert_eq!(result.steps.len(), 3);
    }

    #[test]
    fn step_limit_bounds_recording() {
        let code = assemble("begin:\nJUMPDEST\nPUSH @begin\nJUMP").unwrap();
        let mut storage = MemStorage::new();
        let result = trace(&code, &env(), &mut storage, 1_000_000_000, 50);
        assert_eq!(result.steps.len(), 50);
    }

    #[test]
    fn render_is_readable() {
        let code = assemble("PUSH1 0x01\nPUSH1 0x02\nADD\nSTOP").unwrap();
        let mut storage = MemStorage::new();
        let rendered = trace(&code, &env(), &mut storage, 100_000, 100).render();
        assert!(rendered.contains("PUSH1"));
        assert!(rendered.contains("ADD"));
        assert!(rendered.contains("gas_used"));
    }
}
