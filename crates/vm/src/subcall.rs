//! Shared semantics of `CALL` / `STATICCALL` sub-frames.
//!
//! The production interpreter executes sub-calls iteratively — its driver
//! loop in `interpreter::execute_owned` keeps suspended parents in an
//! explicit stack — and builds the child environment, stipend, and native
//! dispatch from the helpers here. The tracing interpreter executes
//! sub-calls through [`run_subcall`], which delegates bytecode children to
//! the same iterative driver, so the two cannot drift.
//!
//! Two deliberate simplifications against the Yellow Paper, both noted in
//! `DESIGN.md` §7:
//!
//! * the 25 000-gas new-account surcharge is not modelled (accounts are
//!   cheap in the simulation and the experiments never create them via
//!   `CALL`);
//! * the caller is charged `child_gas_used - stipend` after the fact
//!   instead of pre-paying the forwarded gas and being refunded — the net
//!   amounts are identical.
//!
//! Sub-calls are **never** RAA-augmented: augmentation is a property of
//! the top-level read-only query path (paper §III-D), not of the call
//! instruction.

use bytes::Bytes;
use sereth_crypto::address::Address;
use sereth_types::receipt::TxStatus;
use sereth_types::u256::U256;

use crate::exec::{CallEnv, CallOutcome, ContractCode, NativeContract, Storage};
use crate::gas::{self, GasMeter, CALL_DEPTH_LIMIT, CALL_STIPEND, NATIVE_CALL_GAS};
use crate::interpreter;

/// A decoded `CALL`/`STATICCALL` request, after the caller's frame has
/// popped the operands and read the argument region out of memory.
#[derive(Debug, Clone)]
pub(crate) struct SubCallRequest {
    /// Gas the caller offered (the `gas` stack operand, saturated to u64).
    pub gas_requested: u64,
    /// Callee address.
    pub target: Address,
    /// Value to transfer (always zero for `STATICCALL`).
    pub value: U256,
    /// Child calldata.
    pub calldata: Bytes,
    /// `true` for `STATICCALL`: the child frame is read-only even if the
    /// parent is not.
    pub is_static_call: bool,
}

/// What a sub-call produced, in the form the tracing frame needs (the
/// tracer records no logs, so none are carried here).
#[derive(Debug, Clone)]
pub(crate) struct SubCallResult {
    /// `true` pushes 1, `false` pushes 0.
    pub success: bool,
    /// The child's return (or revert) payload; becomes the parent's
    /// return-data buffer.
    pub return_data: Bytes,
    /// Gas to charge on the parent's meter.
    pub gas_charged: u64,
}

impl SubCallResult {
    fn failed_flat() -> Self {
        Self { success: false, return_data: Bytes::new(), gas_charged: 0 }
    }
}

/// The execution-gas grant accompanying a value transfer.
pub(crate) fn stipend_for(value: U256) -> u64 {
    if value.is_zero() {
        0
    } else {
        CALL_STIPEND
    }
}

/// Builds the child frame's environment from the parent's and the request.
pub(crate) fn child_env(parent: &CallEnv, request: &SubCallRequest) -> CallEnv {
    CallEnv {
        caller: parent.callee,
        callee: request.target,
        call_value: request.value,
        calldata: request.calldata.clone(),
        block_number: parent.block_number,
        timestamp_ms: parent.timestamp_ms,
        is_static: parent.is_static || request.is_static_call,
        depth: parent.depth + 1,
    }
}

/// Runs a native contract as a call target, producing the same outcome
/// shape as a bytecode frame.
pub(crate) fn run_native(
    native: &dyn NativeContract,
    env: &CallEnv,
    storage: &mut dyn Storage,
    gas_limit: u64,
) -> CallOutcome {
    let mut meter = GasMeter::new(gas_limit);
    let mut logs = Vec::new();
    match meter.charge(NATIVE_CALL_GAS).and_then(|()| native.call(env, storage, &mut meter, &mut logs)) {
        Ok(return_data) => {
            CallOutcome { status: TxStatus::Success, return_data, gas_used: meter.used(), logs }
        }
        Err(error) => CallOutcome::from_error(&error, meter.used()),
    }
}

/// Runs one sub-call to completion against `storage` (the tracing
/// interpreter's path; the production interpreter inlines the same steps
/// into its driver loop so bytecode children never recurse).
///
/// Failures of the *call itself* (depth exceeded, insufficient balance)
/// are flat: they consume no gas beyond what the caller already paid and
/// report `success = false`. Failures *inside* the child (revert, out of
/// gas, invalid opcode) roll the child's writes back to the checkpoint
/// taken here and also report `success = false` — the parent frame keeps
/// running either way, exactly like the EVM.
pub(crate) fn run_subcall(
    parent_env: &CallEnv,
    request: SubCallRequest,
    parent_gas_remaining: u64,
    storage: &mut dyn Storage,
) -> SubCallResult {
    if parent_env.depth >= CALL_DEPTH_LIMIT {
        return SubCallResult::failed_flat();
    }

    let stipend = stipend_for(request.value);
    let forwarded = gas::forwarded_call_gas(parent_gas_remaining, request.gas_requested) + stipend;
    let env = child_env(parent_env, &request);

    let checkpoint = storage.checkpoint();
    if !storage.transfer(&parent_env.callee, &request.target, request.value) {
        return SubCallResult::failed_flat();
    }

    let outcome = match storage.code_get(&request.target) {
        ContractCode::None => CallOutcome {
            // A plain transfer to an account with no code.
            status: TxStatus::Success,
            return_data: Bytes::new(),
            gas_used: 0,
            logs: Vec::new(),
        },
        ContractCode::Bytecode(code) => interpreter::execute_owned(code, env, storage, forwarded),
        ContractCode::Native(native) => run_native(native.as_ref(), &env, storage, forwarded),
    };

    let gas_charged = outcome.gas_used.saturating_sub(stipend);
    if outcome.status.is_success() {
        SubCallResult { success: true, return_data: outcome.return_data, gas_charged }
    } else {
        storage.revert_checkpoint(checkpoint);
        // A reverting child still surfaces its revert payload to the
        // caller's return-data buffer.
        SubCallResult { success: false, return_data: outcome.return_data, gas_charged }
    }
}

/// Extracts the low 20 bytes of a stack word as an address (how `CALL`
/// and `BALANCE` interpret their address operand).
pub(crate) fn word_address(word: U256) -> Address {
    let bytes = word.to_be_bytes();
    let mut out = [0u8; 20];
    out.copy_from_slice(&bytes[12..]);
    Address::new(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::MemStorage;

    fn env_at_depth(depth: u16) -> CallEnv {
        let mut env = CallEnv::test_env(Address::from_low_u64(1), Address::from_low_u64(2), Bytes::new());
        env.depth = depth;
        env
    }

    fn transfer_request(value: u64) -> SubCallRequest {
        SubCallRequest {
            gas_requested: 100_000,
            target: Address::from_low_u64(9),
            value: U256::from(value),
            calldata: Bytes::new(),
            is_static_call: false,
        }
    }

    #[test]
    fn depth_limit_fails_flat() {
        let mut storage = MemStorage::new();
        let result =
            run_subcall(&env_at_depth(CALL_DEPTH_LIMIT), transfer_request(0), 1_000_000, &mut storage);
        assert!(!result.success);
        assert_eq!(result.gas_charged, 0);
    }

    #[test]
    fn transfer_to_codeless_account_succeeds() {
        let mut storage = MemStorage::new();
        storage.set_balance(Address::from_low_u64(2), U256::from(500u64));
        let result = run_subcall(&env_at_depth(0), transfer_request(300), 1_000_000, &mut storage);
        assert!(result.success);
        assert_eq!(storage.balance_get(&Address::from_low_u64(9)), U256::from(300u64));
        assert_eq!(storage.balance_get(&Address::from_low_u64(2)), U256::from(200u64));
    }

    #[test]
    fn insufficient_balance_fails_flat_without_state_change() {
        let mut storage = MemStorage::new();
        storage.set_balance(Address::from_low_u64(2), U256::from(10u64));
        let result = run_subcall(&env_at_depth(0), transfer_request(300), 1_000_000, &mut storage);
        assert!(!result.success);
        assert_eq!(storage.balance_get(&Address::from_low_u64(2)), U256::from(10u64));
    }

    #[test]
    fn child_env_inherits_and_deepens() {
        let parent = env_at_depth(3);
        let request = transfer_request(7);
        let child = child_env(&parent, &request);
        assert_eq!(child.caller, parent.callee);
        assert_eq!(child.callee, request.target);
        assert_eq!(child.depth, 4);
        assert!(!child.is_static);
        let static_request = SubCallRequest { is_static_call: true, ..transfer_request(0) };
        assert!(child_env(&parent, &static_request).is_static);
    }

    #[test]
    fn stipend_only_for_value_transfers() {
        assert_eq!(stipend_for(U256::ZERO), 0);
        assert_eq!(stipend_for(U256::ONE), CALL_STIPEND);
    }

    #[test]
    fn word_address_takes_low_20_bytes() {
        let word = U256::from_be_bytes([0xff; 32]);
        assert_eq!(word_address(word), Address::new([0xff; 20]));
        assert_eq!(word_address(U256::from(7u64)), Address::from_low_u64(7));
    }
}
