//! Execution context types: environments, storage access, contract code,
//! and call outcomes.

use std::fmt;
use std::sync::Arc;

use bytes::Bytes;
use sereth_crypto::address::Address;
use sereth_crypto::hash::H256;
use sereth_types::receipt::{Log, TxStatus};
use sereth_types::u256::U256;

use crate::error::VmError;
use crate::gas::GasMeter;

/// World state as seen by executing code: storage slots plus the account
/// facts needed by `BALANCE`, `CALL`, and `STATICCALL`.
///
/// The chain's journaled state database implements this; unit tests use
/// [`MemStorage`]. The checkpoint pair gives sub-calls transactional
/// semantics: a reverting child frame must undo only its own writes while
/// the parent frame continues.
pub trait Storage {
    /// Reads a storage slot; absent slots read as zero.
    fn storage_get(&self, address: &Address, key: &H256) -> H256;
    /// Writes a storage slot.
    fn storage_set(&mut self, address: &Address, key: H256, value: H256);

    /// The executable code of an account, for cross-contract calls.
    ///
    /// The default treats every account as externally owned (no code), which
    /// makes `CALL` a plain value transfer — appropriate for backends that
    /// only model storage.
    fn code_get(&self, _address: &Address) -> ContractCode {
        ContractCode::None
    }

    /// The balance of an account (`BALANCE` / `SELFBALANCE`).
    fn balance_get(&self, _address: &Address) -> U256 {
        U256::ZERO
    }

    /// Moves `value` from `from` to `to`, returning `false` (and changing
    /// nothing) on insufficient funds. The default supports only zero-value
    /// transfers.
    fn transfer(&mut self, _from: &Address, _to: &Address, value: U256) -> bool {
        value.is_zero()
    }

    /// Marks a rollback point covering every subsequent write.
    fn checkpoint(&self) -> usize;

    /// Undoes every write made after `checkpoint` was taken.
    fn revert_checkpoint(&mut self, checkpoint: usize);

    /// Notes that executing code observed a block-environment value
    /// (`TIMESTAMP` / `NUMBER`). Those reads bypass storage entirely, so
    /// access-tracking backends need this hook to know an outcome depends
    /// on the block env — a speculative execution against a *predicted*
    /// block is only reusable if the predicted value matched. The default
    /// ignores the note (env values are constant within a block, so
    /// non-speculative backends have nothing to track).
    fn note_env_read(&self, _key: EnvRead) {}
}

/// A block-environment value observed by executing code — see
/// [`Storage::note_env_read`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EnvRead {
    /// `TIMESTAMP` read [`CallEnv::timestamp_ms`].
    Timestamp,
    /// `NUMBER` read [`CallEnv::block_number`].
    Number,
}

/// A plain in-memory [`Storage`] for tests and stand-alone execution,
/// with just enough account state (balances, code) to exercise the
/// cross-contract call path without a full chain behind it.
#[derive(Debug, Clone, Default)]
pub struct MemStorage {
    slots: std::collections::HashMap<(Address, H256), H256>,
    balances: std::collections::HashMap<Address, U256>,
    code: std::collections::HashMap<Address, ContractCode>,
    undo: Vec<MemUndo>,
}

#[derive(Debug, Clone)]
enum MemUndo {
    Slot { address: Address, key: H256, prev: H256 },
    Balance { address: Address, prev: U256 },
}

/// Pops and re-applies every [`MemUndo`] recorded after `checkpoint` —
/// the one undo-log algorithm shared by [`MemStorage`] and
/// [`OverlayStorage`].
fn replay_undo(
    undo: &mut Vec<MemUndo>,
    checkpoint: usize,
    slots: &mut std::collections::HashMap<(Address, H256), H256>,
    balances: &mut std::collections::HashMap<Address, U256>,
) {
    while undo.len() > checkpoint {
        match undo.pop().expect("length checked") {
            MemUndo::Slot { address, key, prev } => {
                slots.insert((address, key), prev);
            }
            MemUndo::Balance { address, prev } => {
                balances.insert(address, prev);
            }
        }
    }
}

impl MemStorage {
    /// An empty storage.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets an account balance directly (test setup; not journaled).
    pub fn set_balance(&mut self, address: Address, balance: U256) {
        self.balances.insert(address, balance);
    }

    /// Installs account code directly (test setup; not journaled).
    pub fn set_code(&mut self, address: Address, code: ContractCode) {
        self.code.insert(address, code);
    }
}

impl Storage for MemStorage {
    fn storage_get(&self, address: &Address, key: &H256) -> H256 {
        self.slots.get(&(*address, *key)).copied().unwrap_or(H256::ZERO)
    }

    fn storage_set(&mut self, address: &Address, key: H256, value: H256) {
        let prev = self.storage_get(address, &key);
        self.undo.push(MemUndo::Slot { address: *address, key, prev });
        self.slots.insert((*address, key), value);
    }

    fn code_get(&self, address: &Address) -> ContractCode {
        self.code.get(address).cloned().unwrap_or(ContractCode::None)
    }

    fn balance_get(&self, address: &Address) -> U256 {
        self.balances.get(address).copied().unwrap_or(U256::ZERO)
    }

    fn transfer(&mut self, from: &Address, to: &Address, value: U256) -> bool {
        if value.is_zero() {
            return true;
        }
        let from_balance = self.balance_get(from);
        let Some(from_next) = from_balance.checked_sub(value) else {
            return false;
        };
        self.undo.push(MemUndo::Balance { address: *from, prev: from_balance });
        self.balances.insert(*from, from_next);
        let to_balance = self.balance_get(to);
        self.undo.push(MemUndo::Balance { address: *to, prev: to_balance });
        self.balances.insert(*to, to_balance + value);
        true
    }

    fn checkpoint(&self) -> usize {
        self.undo.len()
    }

    fn revert_checkpoint(&mut self, checkpoint: usize) {
        replay_undo(&mut self.undo, checkpoint, &mut self.slots, &mut self.balances);
    }
}

/// Read-only world state — the subset of [`Storage`] a frozen snapshot can
/// serve. Implemented by the chain's O(1) state views; [`OverlayStorage`]
/// lifts any implementor into a full [`Storage`] without copying it.
pub trait ReadStorage {
    /// Reads a storage slot; absent slots read as zero.
    fn storage_get(&self, address: &Address, key: &H256) -> H256;

    /// The executable code of an account.
    fn code_get(&self, _address: &Address) -> ContractCode {
        ContractCode::None
    }

    /// The balance of an account.
    fn balance_get(&self, _address: &Address) -> U256 {
        U256::ZERO
    }
}

/// A mutable [`Storage`] over a borrowed [`ReadStorage`] base: reads fall
/// through to the base, writes land in a journaled in-memory overlay.
///
/// Construction is O(1) regardless of base size, which is what keeps the
/// read-only call path (`call_readonly`) free of any state copy: a frame
/// that never writes costs nothing beyond the base reads, and a frame that
/// does write (a non-static call against a snapshot) pays only for the
/// slots it touches. The base is never mutated.
#[derive(Debug)]
pub struct OverlayStorage<'a, B: ReadStorage + ?Sized> {
    base: &'a B,
    slots: std::collections::HashMap<(Address, H256), H256>,
    balances: std::collections::HashMap<Address, U256>,
    undo: Vec<MemUndo>,
}

impl<'a, B: ReadStorage + ?Sized> OverlayStorage<'a, B> {
    /// An empty overlay over `base`.
    pub fn new(base: &'a B) -> Self {
        Self {
            base,
            slots: std::collections::HashMap::new(),
            balances: std::collections::HashMap::new(),
            undo: Vec::new(),
        }
    }

    /// Number of overlaid (written) storage slots.
    pub fn written_slots(&self) -> usize {
        self.slots.len()
    }
}

impl<B: ReadStorage + ?Sized> Storage for OverlayStorage<'_, B> {
    fn storage_get(&self, address: &Address, key: &H256) -> H256 {
        match self.slots.get(&(*address, *key)) {
            Some(value) => *value,
            None => self.base.storage_get(address, key),
        }
    }

    fn storage_set(&mut self, address: &Address, key: H256, value: H256) {
        let prev = Storage::storage_get(self, address, &key);
        self.undo.push(MemUndo::Slot { address: *address, key, prev });
        self.slots.insert((*address, key), value);
    }

    fn code_get(&self, address: &Address) -> ContractCode {
        // Code is immutable within a call frame; no overlay needed.
        self.base.code_get(address)
    }

    fn balance_get(&self, address: &Address) -> U256 {
        match self.balances.get(address) {
            Some(balance) => *balance,
            None => self.base.balance_get(address),
        }
    }

    fn transfer(&mut self, from: &Address, to: &Address, value: U256) -> bool {
        if value.is_zero() {
            return true;
        }
        let from_balance = Storage::balance_get(self, from);
        let Some(from_next) = from_balance.checked_sub(value) else {
            return false;
        };
        self.undo.push(MemUndo::Balance { address: *from, prev: from_balance });
        self.balances.insert(*from, from_next);
        let to_balance = Storage::balance_get(self, to);
        self.undo.push(MemUndo::Balance { address: *to, prev: to_balance });
        self.balances.insert(*to, to_balance + value);
        true
    }

    fn checkpoint(&self) -> usize {
        self.undo.len()
    }

    fn revert_checkpoint(&mut self, checkpoint: usize) {
        replay_undo(&mut self.undo, checkpoint, &mut self.slots, &mut self.balances);
    }
}

/// Immutable facts about the call being executed.
#[derive(Debug, Clone)]
pub struct CallEnv {
    /// The account that invoked the contract (`CALLER`).
    pub caller: Address,
    /// The contract being executed (`ADDRESS`).
    pub callee: Address,
    /// Wei sent with the call (`CALLVALUE`).
    pub call_value: U256,
    /// Calldata: 4-byte selector plus ABI-encoded arguments.
    pub calldata: Bytes,
    /// Current block height (`NUMBER`).
    pub block_number: u64,
    /// Current block timestamp in simulated milliseconds (`TIMESTAMP`).
    pub timestamp_ms: u64,
    /// `true` for read-only (`eth_call`-style) execution: `SSTORE` and
    /// `LOG` raise [`VmError::StaticViolation`]. RAA only ever augments
    /// static calls (paper §III-D).
    pub is_static: bool,
    /// Call nesting depth; 0 for the transaction's outer frame. `CALL`
    /// and `STATICCALL` at depth [`crate::gas::CALL_DEPTH_LIMIT`] fail
    /// flat, as in the EVM.
    pub depth: u16,
}

impl CallEnv {
    /// A minimal environment for tests: `caller` calls `callee` with
    /// `calldata` in block 1.
    pub fn test_env(caller: Address, callee: Address, calldata: Bytes) -> Self {
        Self {
            caller,
            callee,
            call_value: U256::ZERO,
            calldata,
            block_number: 1,
            timestamp_ms: 1_000,
            is_static: false,
            depth: 0,
        }
    }

    /// The first four calldata bytes, if present.
    pub fn selector(&self) -> Option<[u8; 4]> {
        if self.calldata.len() < 4 {
            return None;
        }
        let mut sel = [0u8; 4];
        sel.copy_from_slice(&self.calldata[..4]);
        Some(sel)
    }
}

/// The result of running a call frame to completion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CallOutcome {
    /// VM-level status.
    pub status: TxStatus,
    /// Bytes produced by `RETURN` (empty on `STOP` or error). A frame
    /// that executed `REVERT` carries its revert payload here, which
    /// callers observe through `RETURNDATACOPY` — as in the EVM.
    pub return_data: Bytes,
    /// Gas consumed by the frame (excluding intrinsic transaction gas).
    pub gas_used: u64,
    /// Logs emitted; empty unless the frame succeeded.
    pub logs: Vec<Log>,
}

impl CallOutcome {
    /// Builds the outcome for a frame that failed with `error`.
    pub fn from_error(error: &VmError, gas_used: u64) -> Self {
        let status = match error {
            VmError::OutOfGas => TxStatus::OutOfGas,
            _ => TxStatus::Reverted,
        };
        Self { status, return_data: Bytes::new(), gas_used, logs: Vec::new() }
    }
}

/// A contract implemented in Rust rather than bytecode.
///
/// Native contracts let large simulations skip interpreter dispatch while
/// keeping identical semantics — the test suite proves the Sereth contract's
/// native and bytecode forms equivalent.
pub trait NativeContract: Send + Sync {
    /// A stable name; hashed to form the account's code hash.
    fn name(&self) -> &'static str;

    /// Executes the contract.
    ///
    /// Implementations must honour `env.is_static` (no writes, no logs) and
    /// charge `gas` for their work.
    ///
    /// # Errors
    ///
    /// Any [`VmError`] aborts the frame; the executor rolls back.
    fn call(
        &self,
        env: &CallEnv,
        storage: &mut dyn Storage,
        gas: &mut GasMeter,
        logs: &mut Vec<Log>,
    ) -> Result<Bytes, VmError>;
}

/// The executable form of an account.
#[derive(Clone, Default)]
pub enum ContractCode {
    /// An externally-owned account: no code.
    #[default]
    None,
    /// EVM-subset bytecode, run by the interpreter.
    Bytecode(Bytes),
    /// A Rust-native contract.
    Native(Arc<dyn NativeContract>),
}

impl ContractCode {
    /// `true` for accounts with no code.
    pub fn is_empty(&self) -> bool {
        matches!(self, Self::None)
    }

    /// A commitment to the code, used in state roots and for equality.
    pub fn code_hash(&self) -> H256 {
        match self {
            Self::None => H256::ZERO,
            Self::Bytecode(code) => H256::keccak(code),
            Self::Native(native) => H256::keccak(format!("native:{}", native.name()).as_bytes()),
        }
    }
}

impl PartialEq for ContractCode {
    fn eq(&self, other: &Self) -> bool {
        self.code_hash() == other.code_hash()
    }
}

impl Eq for ContractCode {}

impl fmt::Debug for ContractCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::None => write!(f, "ContractCode::None"),
            Self::Bytecode(code) => write!(f, "ContractCode::Bytecode({} bytes)", code.len()),
            Self::Native(native) => write!(f, "ContractCode::Native({})", native.name()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Lifts a [`MemStorage`] into a [`ReadStorage`] base for overlay
    /// tests (the production base is the chain's `StateView`; `MemStorage`
    /// deliberately does not implement `ReadStorage` itself to keep its
    /// `Storage` methods unambiguous at call sites).
    struct ReadOnly(MemStorage);

    impl ReadStorage for ReadOnly {
        fn storage_get(&self, address: &Address, key: &H256) -> H256 {
            self.0.storage_get(address, key)
        }

        fn code_get(&self, address: &Address) -> ContractCode {
            self.0.code_get(address)
        }

        fn balance_get(&self, address: &Address) -> U256 {
            self.0.balance_get(address)
        }
    }

    #[test]
    fn mem_storage_defaults_to_zero() {
        let storage = MemStorage::new();
        assert_eq!(storage.storage_get(&Address::from_low_u64(1), &H256::ZERO), H256::ZERO);
    }

    #[test]
    fn mem_storage_round_trip() {
        let mut storage = MemStorage::new();
        let addr = Address::from_low_u64(1);
        storage.storage_set(&addr, H256::from_low_u64(1), H256::from_low_u64(42));
        assert_eq!(storage.storage_get(&addr, &H256::from_low_u64(1)), H256::from_low_u64(42));
        // Slots are per-address.
        assert_eq!(storage.storage_get(&Address::from_low_u64(2), &H256::from_low_u64(1)), H256::ZERO);
    }

    #[test]
    fn overlay_reads_fall_through_and_writes_stay_local() {
        let mut inner = MemStorage::new();
        let addr = Address::from_low_u64(1);
        inner.storage_set(&addr, H256::from_low_u64(1), H256::from_low_u64(7));
        inner.set_balance(addr, U256::from(100u64));
        let base = ReadOnly(inner);

        let mut overlay = OverlayStorage::new(&base);
        // Reads fall through to the base.
        assert_eq!(overlay.storage_get(&addr, &H256::from_low_u64(1)), H256::from_low_u64(7));
        assert_eq!(overlay.balance_get(&addr), U256::from(100u64));
        // Writes land only in the overlay.
        overlay.storage_set(&addr, H256::from_low_u64(1), H256::from_low_u64(9));
        assert_eq!(overlay.storage_get(&addr, &H256::from_low_u64(1)), H256::from_low_u64(9));
        assert_eq!(overlay.written_slots(), 1);
        drop(overlay);
        assert_eq!(base.0.storage_get(&addr, &H256::from_low_u64(1)), H256::from_low_u64(7));
    }

    #[test]
    fn overlay_checkpoints_revert_writes_and_transfers() {
        let mut inner = MemStorage::new();
        let a = Address::from_low_u64(1);
        let b = Address::from_low_u64(2);
        inner.set_balance(a, U256::from(50u64));
        let base = ReadOnly(inner);

        let mut overlay = OverlayStorage::new(&base);
        let checkpoint = overlay.checkpoint();
        overlay.storage_set(&a, H256::from_low_u64(3), H256::from_low_u64(4));
        assert!(overlay.transfer(&a, &b, U256::from(20u64)));
        assert_eq!(overlay.balance_get(&b), U256::from(20u64));
        overlay.revert_checkpoint(checkpoint);
        assert_eq!(overlay.storage_get(&a, &H256::from_low_u64(3)), H256::ZERO);
        assert_eq!(overlay.balance_get(&a), U256::from(50u64));
        assert_eq!(overlay.balance_get(&b), U256::ZERO);
        // Insufficient funds leave everything untouched.
        assert!(!overlay.transfer(&a, &b, U256::from(1_000u64)));
        assert_eq!(overlay.balance_get(&a), U256::from(50u64));
    }

    #[test]
    fn selector_extraction() {
        let env = CallEnv::test_env(
            Address::from_low_u64(1),
            Address::from_low_u64(2),
            Bytes::from_static(&[0xaa, 0xbb, 0xcc, 0xdd, 0x01]),
        );
        assert_eq!(env.selector(), Some([0xaa, 0xbb, 0xcc, 0xdd]));
        let short = CallEnv::test_env(Address::ZERO, Address::ZERO, Bytes::from_static(&[1, 2, 3]));
        assert_eq!(short.selector(), None);
    }

    #[test]
    fn code_hash_distinguishes_kinds() {
        let empty = ContractCode::None;
        let code = ContractCode::Bytecode(Bytes::from_static(&[0x00]));
        assert_ne!(empty.code_hash(), code.code_hash());
        assert_eq!(empty, ContractCode::None);
        assert_ne!(code, ContractCode::None);
    }

    #[test]
    fn outcome_from_error_maps_status() {
        assert_eq!(CallOutcome::from_error(&VmError::OutOfGas, 5).status, TxStatus::OutOfGas);
        assert_eq!(CallOutcome::from_error(&VmError::Reverted, 5).status, TxStatus::Reverted);
        assert_eq!(CallOutcome::from_error(&VmError::StackUnderflow, 5).status, TxStatus::Reverted);
    }
}
