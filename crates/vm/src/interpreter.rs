//! The bytecode interpreter: a 256-bit stack machine over the opcode subset
//! in [`crate::opcode`].
//!
//! One call to [`execute`] runs a frame — and every frame it spawns through
//! `CALL`/`STATICCALL` — to completion. Sub-calls do **not** recurse on the
//! host stack: the internal driver loop keeps suspended parent frames in
//! an explicit `Vec`, so adversarial bytecode can nest calls to the EVM's
//! full depth limit without exhausting the thread stack. A child's failure
//! rolls back only its own writes (via the storage checkpoint taken when
//! the call began).

use bytes::Bytes;
use sereth_crypto::keccak::keccak256;
use sereth_types::receipt::{Log, TxStatus};
use sereth_types::u256::U256;

use crate::error::VmError;
use crate::exec::{CallEnv, CallOutcome, ContractCode, EnvRead, Storage};
use crate::gas::{self, GasMeter};
use crate::opcode::{valid_jump_destinations, Opcode};
use crate::subcall::{self, word_address, SubCallRequest};

/// Hard stack depth limit, as in the EVM.
const STACK_LIMIT: usize = 1024;

/// Executes `code` in `env` against `storage`, metering against
/// `gas_limit`.
///
/// Returns a [`CallOutcome`]; errors are folded into the outcome's status
/// (the caller decides whether to roll back state). Storage writes are
/// applied eagerly — run under a journaled storage if rollback is needed.
pub fn execute(code: &[u8], env: &CallEnv, storage: &mut dyn Storage, gas_limit: u64) -> CallOutcome {
    execute_owned(Bytes::copy_from_slice(code), env.clone(), storage, gas_limit)
}

/// What a frame's inner loop produced when it yielded.
enum RunOutcome {
    /// The frame halted (`STOP`, `RETURN`, or running off the code end).
    Done(Bytes),
    /// The frame executed `CALL`/`STATICCALL` and is suspended awaiting
    /// the child's outcome.
    SubCall { request: SubCallRequest, out_offset: usize, out_len: usize },
}

/// Bookkeeping for a suspended parent: where the child's output goes and
/// how to undo the child on failure.
struct PendingCall {
    out_offset: usize,
    out_len: usize,
    checkpoint: usize,
    stipend: u64,
}

/// What [`begin_subcall`] decided.
enum BeginCall {
    /// The child completed synchronously (no code, native code, flat
    /// failure) and its result is already absorbed into the parent.
    Immediate,
    /// A bytecode child: the driver must descend into this frame (boxed —
    /// frames are heap-bound anyway once suspended).
    Descend(Box<Frame>, PendingCall),
}

/// [`execute`] without the defensive copy: the zero-copy entry point used
/// by `execute_call` and for child frames (`Bytes` is reference-counted).
pub(crate) fn execute_owned(
    code: Bytes,
    env: CallEnv,
    storage: &mut dyn Storage,
    gas_limit: u64,
) -> CallOutcome {
    let mut suspended: Vec<(Frame, PendingCall)> = Vec::new();
    let mut current = Frame::new(code, env, gas_limit);
    loop {
        let mut finished = match current.run(storage) {
            Ok(RunOutcome::SubCall { request, out_offset, out_len }) => {
                match begin_subcall(&mut current, request, out_offset, out_len, storage) {
                    Ok(BeginCall::Immediate) => continue,
                    Ok(BeginCall::Descend(child, pending)) => {
                        suspended.push((std::mem::replace(&mut current, *child), pending));
                        continue;
                    }
                    Err(error) => current.take_outcome(Err(error)),
                }
            }
            Ok(RunOutcome::Done(data)) => current.take_outcome(Ok(data)),
            Err(error) => current.take_outcome(Err(error)),
        };
        // Unwind: hand the finished child's outcome to its parent; a parent
        // that fails while absorbing (e.g. out of gas on the charge)
        // finishes too and keeps unwinding.
        loop {
            let Some((parent, pending)) = suspended.pop() else {
                return finished;
            };
            current = parent;
            match current.absorb_child(finished, &pending, storage) {
                Ok(()) => break,
                Err(error) => finished = current.take_outcome(Err(error)),
            }
        }
    }
}

/// Starts the sub-call `request` issued by `parent`: depth and balance
/// checks, value transfer, and dispatch on the callee's code kind.
///
/// # Errors
///
/// Only errors that fail the *parent* frame (out of gas while absorbing an
/// immediate child). Failures of the call itself push 0 and succeed.
fn begin_subcall(
    parent: &mut Frame,
    request: SubCallRequest,
    out_offset: usize,
    out_len: usize,
    storage: &mut dyn Storage,
) -> Result<BeginCall, VmError> {
    if parent.env.depth >= gas::CALL_DEPTH_LIMIT {
        parent.apply_flat_call_failure()?;
        return Ok(BeginCall::Immediate);
    }
    let stipend = subcall::stipend_for(request.value);
    let forwarded = gas::forwarded_call_gas(parent.gas.remaining(), request.gas_requested) + stipend;
    let pending = PendingCall { out_offset, out_len, checkpoint: storage.checkpoint(), stipend };
    if !storage.transfer(&parent.env.callee, &request.target, request.value) {
        parent.apply_flat_call_failure()?;
        return Ok(BeginCall::Immediate);
    }
    let child_env = subcall::child_env(parent.env(), &request);
    match storage.code_get(&request.target) {
        ContractCode::None => {
            // A plain transfer to an account with no code.
            let outcome = CallOutcome {
                status: TxStatus::Success,
                return_data: Bytes::new(),
                gas_used: 0,
                logs: Vec::new(),
            };
            parent.absorb_child(outcome, &pending, storage)?;
            Ok(BeginCall::Immediate)
        }
        ContractCode::Native(native) => {
            let outcome = subcall::run_native(native.as_ref(), &child_env, storage, forwarded);
            parent.absorb_child(outcome, &pending, storage)?;
            Ok(BeginCall::Immediate)
        }
        ContractCode::Bytecode(child_code) => {
            Ok(BeginCall::Descend(Box::new(Frame::new(child_code, child_env, forwarded)), pending))
        }
    }
}

struct Frame {
    code: Bytes,
    env: CallEnv,
    pc: usize,
    stack: Vec<U256>,
    memory: Vec<u8>,
    gas: GasMeter,
    logs: Vec<Log>,
    jumpdests: Vec<bool>,
    /// Output of the most recent completed sub-call (`RETURNDATASIZE` /
    /// `RETURNDATACOPY`).
    return_data: Bytes,
    /// Payload captured by `REVERT`, surfaced in the frame's outcome.
    revert_data: Bytes,
}

impl Frame {
    fn new(code: Bytes, env: CallEnv, gas_limit: u64) -> Self {
        let jumpdests = valid_jump_destinations(&code);
        Self {
            code,
            env,
            pc: 0,
            stack: Vec::with_capacity(64),
            memory: Vec::new(),
            gas: GasMeter::new(gas_limit),
            logs: Vec::new(),
            jumpdests,
            return_data: Bytes::new(),
            revert_data: Bytes::new(),
        }
    }

    fn env(&self) -> &CallEnv {
        &self.env
    }

    /// Folds the frame's halt condition into its [`CallOutcome`], emptying
    /// the frame (the driver discards it afterwards).
    fn take_outcome(&mut self, result: Result<Bytes, VmError>) -> CallOutcome {
        match result {
            Ok(return_data) => CallOutcome {
                status: TxStatus::Success,
                return_data,
                gas_used: self.gas.used(),
                logs: std::mem::take(&mut self.logs),
            },
            Err(error) => {
                let mut outcome = CallOutcome::from_error(&error, self.gas.used());
                if error == VmError::Reverted {
                    // REVERT's payload travels to the caller as return data.
                    outcome.return_data = std::mem::take(&mut self.revert_data);
                }
                outcome
            }
        }
    }

    /// Records a completed child into this (suspended) frame: rollback on
    /// failure, gas accounting, output copy, log merge, success flag.
    ///
    /// # Errors
    ///
    /// Fails the *parent* if charging the child's gas exhausts its meter.
    fn absorb_child(
        &mut self,
        child: CallOutcome,
        pending: &PendingCall,
        storage: &mut dyn Storage,
    ) -> Result<(), VmError> {
        let success = child.status.is_success();
        if !success {
            storage.revert_checkpoint(pending.checkpoint);
        }
        self.gas.charge(child.gas_used.saturating_sub(pending.stipend))?;
        // The caller sees up to `out_len` bytes of the child's output; the
        // full buffer stays readable through RETURNDATACOPY — including a
        // reverting child's revert payload.
        let copied = pending.out_len.min(child.return_data.len());
        self.memory[pending.out_offset..pending.out_offset + copied]
            .copy_from_slice(&child.return_data[..copied]);
        if success {
            self.logs.extend(child.logs);
        }
        self.return_data = child.return_data;
        self.push(U256::from(success as u64))
    }

    /// A call that failed before executing anything (depth limit,
    /// insufficient balance): clears the return buffer and pushes 0.
    fn apply_flat_call_failure(&mut self) -> Result<(), VmError> {
        self.return_data = Bytes::new();
        self.push(U256::ZERO)
    }

    fn push(&mut self, value: U256) -> Result<(), VmError> {
        if self.stack.len() >= STACK_LIMIT {
            return Err(VmError::StackOverflow);
        }
        self.stack.push(value);
        Ok(())
    }

    fn pop(&mut self) -> Result<U256, VmError> {
        self.stack.pop().ok_or(VmError::StackUnderflow)
    }

    fn pop_usize(&mut self) -> Result<usize, VmError> {
        // Offsets beyond u64 would out-of-gas anyway; saturate.
        Ok(self.pop()?.saturating_to_u64() as usize)
    }

    /// Ensures memory covers `[offset, offset + len)`, charging expansion.
    fn touch_memory(&mut self, offset: usize, len: usize) -> Result<(), VmError> {
        if len == 0 {
            return Ok(());
        }
        let end = offset.checked_add(len).ok_or(VmError::OutOfGas)?;
        self.gas.charge_memory(end as u64)?;
        if self.memory.len() < end {
            self.memory.resize(end, 0);
        }
        Ok(())
    }

    /// Runs instructions until the frame halts or suspends on a sub-call.
    /// Resumable: the driver calls it again after absorbing the child.
    fn run(&mut self, storage: &mut dyn Storage) -> Result<RunOutcome, VmError> {
        loop {
            let Some(&byte) = self.code.get(self.pc) else {
                // Running off the end of code is an implicit STOP.
                return Ok(RunOutcome::Done(Bytes::new()));
            };
            let op = Opcode::from_byte(byte).ok_or(VmError::InvalidOpcode { byte })?;
            self.gas.charge(gas::static_cost(op))?;
            self.pc += 1;

            match op {
                Opcode::Stop => return Ok(RunOutcome::Done(Bytes::new())),
                Opcode::Add => self.binary(|a, b| a + b)?,
                Opcode::Mul => self.binary(|a, b| a * b)?,
                Opcode::Sub => self.binary(|a, b| a - b)?,
                Opcode::Div => self.binary(|a, b| a.div_rem(b).map(|(q, _)| q).unwrap_or(U256::ZERO))?,
                Opcode::SDiv => self.binary(|a, b| a.signed_div(b))?,
                Opcode::Mod => self.binary(|a, b| a.div_rem(b).map(|(_, r)| r).unwrap_or(U256::ZERO))?,
                Opcode::SMod => self.binary(|a, b| a.signed_rem(b))?,
                Opcode::AddMod => {
                    let a = self.pop()?;
                    let b = self.pop()?;
                    let n = self.pop()?;
                    self.push(a.add_mod(b, n))?;
                }
                Opcode::MulMod => {
                    let a = self.pop()?;
                    let b = self.pop()?;
                    let n = self.pop()?;
                    self.push(a.mul_mod(b, n))?;
                }
                Opcode::Exp => {
                    let base = self.pop()?;
                    let exponent = self.pop()?;
                    self.gas.charge(gas::exp_byte_cost(exponent.bits()))?;
                    self.push(base.wrapping_pow(exponent))?;
                }
                Opcode::SignExtend => {
                    let index = self.pop()?;
                    let value = self.pop()?;
                    self.push(value.sign_extend(index.saturating_to_u64().min(32) as usize))?;
                }
                Opcode::Lt => self.binary(|a, b| U256::from((a < b) as u64))?,
                Opcode::Gt => self.binary(|a, b| U256::from((a > b) as u64))?,
                Opcode::Slt => self.binary(|a, b| U256::from(a.signed_lt(&b) as u64))?,
                Opcode::Sgt => self.binary(|a, b| U256::from(b.signed_lt(&a) as u64))?,
                Opcode::Eq => self.binary(|a, b| U256::from((a == b) as u64))?,
                Opcode::IsZero => {
                    let a = self.pop()?;
                    self.push(U256::from(a.is_zero() as u64))?;
                }
                Opcode::And => self.binary(|a, b| a & b)?,
                Opcode::Or => self.binary(|a, b| a | b)?,
                Opcode::Xor => self.binary(|a, b| a ^ b)?,
                Opcode::Not => {
                    let a = self.pop()?;
                    self.push(!a)?;
                }
                Opcode::Byte => {
                    let index = self.pop()?;
                    let value = self.pop()?;
                    let byte = value.byte_msb(index.saturating_to_u64() as usize);
                    self.push(U256::from(byte as u64))?;
                }
                Opcode::Shl => {
                    let shift = self.pop()?;
                    let value = self.pop()?;
                    self.push(value << shift.saturating_to_u64().min(256) as u32)?;
                }
                Opcode::Shr => {
                    let shift = self.pop()?;
                    let value = self.pop()?;
                    self.push(value >> shift.saturating_to_u64().min(256) as u32)?;
                }
                Opcode::Sar => {
                    let shift = self.pop()?;
                    let value = self.pop()?;
                    self.push(value.sar(shift.saturating_to_u64().min(256) as u32))?;
                }
                Opcode::Sha3 => {
                    let offset = self.pop_usize()?;
                    let len = self.pop_usize()?;
                    self.gas.charge(gas::sha3_word_cost(len as u64))?;
                    self.touch_memory(offset, len)?;
                    let digest = keccak256(&self.memory[offset..offset + len]);
                    self.push(U256::from_be_bytes(digest))?;
                }
                Opcode::Address => {
                    self.push(address_word(self.env.callee.as_bytes()))?;
                }
                Opcode::Balance => {
                    let address = word_address(self.pop()?);
                    self.push(storage.balance_get(&address))?;
                }
                Opcode::SelfBalance => {
                    self.push(storage.balance_get(&self.env.callee))?;
                }
                Opcode::Caller => {
                    self.push(address_word(self.env.caller.as_bytes()))?;
                }
                Opcode::CallValue => self.push(self.env.call_value)?,
                Opcode::CallDataLoad => {
                    let offset = self.pop_usize()?;
                    let mut word = [0u8; 32];
                    for (i, slot) in word.iter_mut().enumerate() {
                        // Out-of-range (including offsets near usize::MAX)
                        // reads as zero padding.
                        *slot = offset
                            .checked_add(i)
                            .and_then(|index| self.env.calldata.get(index))
                            .copied()
                            .unwrap_or(0);
                    }
                    self.push(U256::from_be_bytes(word))?;
                }
                Opcode::CallDataSize => self.push(U256::from(self.env.calldata.len() as u64))?,
                Opcode::CallDataCopy => {
                    let mem_offset = self.pop_usize()?;
                    let data_offset = self.pop_usize()?;
                    let len = self.pop_usize()?;
                    self.touch_memory(mem_offset, len)?;
                    for i in 0..len {
                        self.memory[mem_offset + i] = data_offset
                            .checked_add(i)
                            .and_then(|index| self.env.calldata.get(index))
                            .copied()
                            .unwrap_or(0);
                    }
                }
                Opcode::ReturnDataSize => self.push(U256::from(self.return_data.len() as u64))?,
                Opcode::ReturnDataCopy => {
                    let mem_offset = self.pop_usize()?;
                    let data_offset = self.pop_usize()?;
                    let len = self.pop_usize()?;
                    // Unlike CALLDATACOPY, out-of-range reads are a hard
                    // error in the EVM.
                    let end = data_offset.checked_add(len).ok_or(VmError::ReturnDataOutOfBounds)?;
                    if end > self.return_data.len() {
                        return Err(VmError::ReturnDataOutOfBounds);
                    }
                    self.gas.charge(gas::copy_word_cost(len as u64))?;
                    self.touch_memory(mem_offset, len)?;
                    self.memory[mem_offset..mem_offset + len]
                        .copy_from_slice(&self.return_data[data_offset..end]);
                }
                Opcode::Timestamp => {
                    storage.note_env_read(EnvRead::Timestamp);
                    self.push(U256::from(self.env.timestamp_ms))?
                }
                Opcode::Number => {
                    storage.note_env_read(EnvRead::Number);
                    self.push(U256::from(self.env.block_number))?
                }
                Opcode::Pop => {
                    self.pop()?;
                }
                Opcode::MLoad => {
                    let offset = self.pop_usize()?;
                    self.touch_memory(offset, 32)?;
                    let mut word = [0u8; 32];
                    word.copy_from_slice(&self.memory[offset..offset + 32]);
                    self.push(U256::from_be_bytes(word))?;
                }
                Opcode::MStore => {
                    let offset = self.pop_usize()?;
                    let value = self.pop()?;
                    self.touch_memory(offset, 32)?;
                    self.memory[offset..offset + 32].copy_from_slice(&value.to_be_bytes());
                }
                Opcode::MStore8 => {
                    let offset = self.pop_usize()?;
                    let value = self.pop()?;
                    self.touch_memory(offset, 1)?;
                    self.memory[offset] = value.byte_msb(31);
                }
                Opcode::SLoad => {
                    let key = self.pop()?.to_h256();
                    let value = storage.storage_get(&self.env.callee, &key);
                    self.push(U256::from_h256(value))?;
                }
                Opcode::SStore => {
                    if self.env.is_static {
                        return Err(VmError::StaticViolation);
                    }
                    let key = self.pop()?.to_h256();
                    let value = self.pop()?.to_h256();
                    let old = storage.storage_get(&self.env.callee, &key);
                    self.gas.charge(gas::sstore_cost(old.is_zero(), value.is_zero()))?;
                    storage.storage_set(&self.env.callee, key, value);
                }
                Opcode::Jump => {
                    let target = self.pop_usize()?;
                    self.jump_to(target)?;
                }
                Opcode::JumpI => {
                    let target = self.pop_usize()?;
                    let condition = self.pop()?;
                    if !condition.is_zero() {
                        self.jump_to(target)?;
                    }
                }
                Opcode::Pc => self.push(U256::from((self.pc - 1) as u64))?,
                Opcode::MSize => self.push(U256::from(self.memory.len() as u64))?,
                Opcode::Gas => self.push(U256::from(self.gas.remaining()))?,
                Opcode::JumpDest => {}
                Opcode::Push(n) => {
                    let end = (self.pc + n as usize).min(self.code.len());
                    let mut word = [0u8; 32];
                    let bytes = &self.code[self.pc..end];
                    word[32 - n as usize..32 - n as usize + bytes.len()].copy_from_slice(bytes);
                    self.push(U256::from_be_bytes(word))?;
                    self.pc += n as usize;
                }
                Opcode::Dup(n) => {
                    let depth = n as usize;
                    if self.stack.len() < depth {
                        return Err(VmError::StackUnderflow);
                    }
                    let value = self.stack[self.stack.len() - depth];
                    self.push(value)?;
                }
                Opcode::Swap(n) => {
                    let depth = n as usize;
                    if self.stack.len() < depth + 1 {
                        return Err(VmError::StackUnderflow);
                    }
                    let top = self.stack.len() - 1;
                    self.stack.swap(top, top - depth);
                }
                Opcode::Log(topic_count) => {
                    if self.env.is_static {
                        return Err(VmError::StaticViolation);
                    }
                    let offset = self.pop_usize()?;
                    let len = self.pop_usize()?;
                    let mut topics = Vec::with_capacity(topic_count as usize);
                    for _ in 0..topic_count {
                        topics.push(self.pop()?.to_h256());
                    }
                    self.gas.charge(gas::log_data_cost(len as u64))?;
                    self.touch_memory(offset, len)?;
                    let data = Bytes::copy_from_slice(&self.memory[offset..offset + len]);
                    self.logs.push(Log { address: self.env.callee, topics, data });
                }
                Opcode::Call => return self.prepare_call(false),
                Opcode::StaticCall => return self.prepare_call(true),
                Opcode::Return => {
                    let offset = self.pop_usize()?;
                    let len = self.pop_usize()?;
                    self.touch_memory(offset, len)?;
                    return Ok(RunOutcome::Done(Bytes::copy_from_slice(&self.memory[offset..offset + len])));
                }
                Opcode::Revert => {
                    let offset = self.pop_usize()?;
                    let len = self.pop_usize()?;
                    self.touch_memory(offset, len)?;
                    self.revert_data = Bytes::copy_from_slice(&self.memory[offset..offset + len]);
                    return Err(VmError::Reverted);
                }
            }
        }
    }

    /// `CALL` / `STATICCALL`: decodes the operands and suspends the frame;
    /// the driver runs the child and pushes the success flag on resume.
    fn prepare_call(&mut self, is_static_call: bool) -> Result<RunOutcome, VmError> {
        let gas_requested = self.pop()?.saturating_to_u64();
        let target = word_address(self.pop()?);
        let value = if is_static_call { U256::ZERO } else { self.pop()? };
        let in_offset = self.pop_usize()?;
        let in_len = self.pop_usize()?;
        let out_offset = self.pop_usize()?;
        let out_len = self.pop_usize()?;

        if self.env.is_static && !value.is_zero() {
            return Err(VmError::StaticViolation);
        }
        if !value.is_zero() {
            self.gas.charge(gas::CALL_VALUE_GAS)?;
        }
        self.touch_memory(in_offset, in_len)?;
        self.touch_memory(out_offset, out_len)?;

        let request = SubCallRequest {
            gas_requested,
            target,
            value,
            calldata: Bytes::copy_from_slice(&self.memory[in_offset..in_offset + in_len]),
            is_static_call,
        };
        Ok(RunOutcome::SubCall { request, out_offset, out_len })
    }

    fn jump_to(&mut self, target: usize) -> Result<(), VmError> {
        if target < self.jumpdests.len() && self.jumpdests[target] {
            self.pc = target;
            Ok(())
        } else {
            Err(VmError::InvalidJump { target })
        }
    }

    fn binary(&mut self, f: impl FnOnce(U256, U256) -> U256) -> Result<(), VmError> {
        let a = self.pop()?;
        let b = self.pop()?;
        self.push(f(a, b))
    }
}

/// Left-pads a 20-byte address into a 256-bit word.
fn address_word(address: &[u8; 20]) -> U256 {
    let mut word = [0u8; 32];
    word[12..].copy_from_slice(address);
    U256::from_be_bytes(word)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;
    use crate::exec::MemStorage;
    use sereth_crypto::address::Address;
    use sereth_crypto::hash::H256;

    const GAS: u64 = 10_000_000;

    fn run(source: &str, calldata: &[u8]) -> CallOutcome {
        let code = assemble(source).expect("assembly must be valid");
        let env = CallEnv::test_env(
            Address::from_low_u64(0xca11e4),
            Address::from_low_u64(0xc0de),
            Bytes::copy_from_slice(calldata),
        );
        let mut storage = MemStorage::new();
        execute(&code, &env, &mut storage, GAS)
    }

    fn returned_u64(outcome: &CallOutcome) -> u64 {
        assert_eq!(outcome.status, TxStatus::Success, "outcome: {outcome:?}");
        let mut word = [0u8; 32];
        word.copy_from_slice(&outcome.return_data);
        U256::from_be_bytes(word).try_to_u64().unwrap()
    }

    #[test]
    fn arithmetic_and_return() {
        // 3 + 4 = 7, returned as a word.
        let outcome =
            run("PUSH1 0x04\nPUSH1 0x03\nADD\nPUSH1 0x00\nMSTORE\nPUSH1 0x20\nPUSH1 0x00\nRETURN", &[]);
        assert_eq!(returned_u64(&outcome), 7);
    }

    #[test]
    fn division_by_zero_yields_zero() {
        let outcome =
            run("PUSH1 0x00\nPUSH1 0x09\nDIV\nPUSH1 0x00\nMSTORE\nPUSH1 0x20\nPUSH1 0x00\nRETURN", &[]);
        assert_eq!(returned_u64(&outcome), 0);
    }

    #[test]
    fn conditional_jump_takes_branch() {
        // if 1 { return 42 } else { return 13 }
        let source = r#"
            PUSH1 0x01
            PUSH @then
            JUMPI
            PUSH1 0x0d
            PUSH1 0x00
            MSTORE
            PUSH1 0x20
            PUSH1 0x00
            RETURN
        then:
            JUMPDEST
            PUSH1 0x2a
            PUSH1 0x00
            MSTORE
            PUSH1 0x20
            PUSH1 0x00
            RETURN
        "#;
        assert_eq!(returned_u64(&run(source, &[])), 42);
    }

    #[test]
    fn jump_to_non_jumpdest_fails() {
        let outcome = run("PUSH1 0x01\nJUMP", &[]);
        assert_eq!(outcome.status, TxStatus::Reverted);
    }

    #[test]
    fn calldataload_reads_words_and_pads() {
        // Return the first calldata word.
        let source = "PUSH1 0x00\nCALLDATALOAD\nPUSH1 0x00\nMSTORE\nPUSH1 0x20\nPUSH1 0x00\nRETURN";
        let mut calldata = vec![0u8; 32];
        calldata[31] = 9;
        assert_eq!(returned_u64(&run(source, &calldata)), 9);
        // Short calldata is zero-padded.
        assert_eq!(returned_u64(&run(source, &[])), 0);
    }

    #[test]
    fn sstore_and_sload_round_trip() {
        let source = r#"
            PUSH1 0x2a
            PUSH1 0x05
            SSTORE
            PUSH1 0x05
            SLOAD
            PUSH1 0x00
            MSTORE
            PUSH1 0x20
            PUSH1 0x00
            RETURN
        "#;
        assert_eq!(returned_u64(&run(source, &[])), 0x2a);
    }

    #[test]
    fn static_call_rejects_sstore() {
        let code = assemble("PUSH1 0x01\nPUSH1 0x00\nSSTORE\nSTOP").unwrap();
        let mut env = CallEnv::test_env(Address::ZERO, Address::ZERO, Bytes::new());
        env.is_static = true;
        let mut storage = MemStorage::new();
        let outcome = execute(&code, &env, &mut storage, GAS);
        assert_eq!(outcome.status, TxStatus::Reverted);
    }

    #[test]
    fn static_call_rejects_log() {
        let code = assemble("PUSH1 0x00\nPUSH1 0x00\nLOG0\nSTOP").unwrap();
        let mut env = CallEnv::test_env(Address::ZERO, Address::ZERO, Bytes::new());
        env.is_static = true;
        let mut storage = MemStorage::new();
        let outcome = execute(&code, &env, &mut storage, GAS);
        assert_eq!(outcome.status, TxStatus::Reverted);
    }

    #[test]
    fn logs_capture_topics_and_data() {
        let source = r#"
            PUSH1 0xaa
            PUSH1 0x00
            MSTORE8
            PUSH1 0x07     ; topic
            PUSH1 0x01     ; len
            PUSH1 0x00     ; offset
            LOG1
            STOP
        "#;
        let outcome = run(source, &[]);
        assert_eq!(outcome.status, TxStatus::Success);
        assert_eq!(outcome.logs.len(), 1);
        assert_eq!(outcome.logs[0].topics, vec![H256::from_low_u64(7)]);
        assert_eq!(outcome.logs[0].data.as_ref(), &[0xaa]);
    }

    #[test]
    fn sha3_hashes_memory() {
        // keccak256 of one zero byte.
        let source = "PUSH1 0x01\nPUSH1 0x00\nSHA3\nPUSH1 0x00\nMSTORE\nPUSH1 0x20\nPUSH1 0x00\nRETURN";
        let outcome = run(source, &[]);
        assert_eq!(outcome.status, TxStatus::Success);
        assert_eq!(outcome.return_data.as_ref(), &keccak256(&[0u8])[..]);
    }

    #[test]
    fn revert_discards_logs_and_reports() {
        let source = r#"
            PUSH1 0x00
            PUSH1 0x00
            LOG0
            PUSH1 0x00
            PUSH1 0x00
            REVERT
        "#;
        let outcome = run(source, &[]);
        assert_eq!(outcome.status, TxStatus::Reverted);
        assert!(outcome.logs.is_empty());
    }

    #[test]
    fn out_of_gas_is_reported() {
        let code = assemble("begin:\nJUMPDEST\nPUSH @begin\nJUMP").unwrap();
        let env = CallEnv::test_env(Address::ZERO, Address::ZERO, Bytes::new());
        let mut storage = MemStorage::new();
        let outcome = execute(&code, &env, &mut storage, 1_000);
        assert_eq!(outcome.status, TxStatus::OutOfGas);
        assert_eq!(outcome.gas_used, 1_000);
    }

    #[test]
    fn stack_underflow_reverts() {
        let outcome = run("ADD", &[]);
        assert_eq!(outcome.status, TxStatus::Reverted);
    }

    #[test]
    fn dup_and_swap() {
        // Compute 5; dup it; swap with 9; stack top should be 5 again.
        let source = r#"
            PUSH1 0x05
            PUSH1 0x09
            DUP2        ; stack: 5 9 5
            SWAP1       ; stack: 5 5 9
            ADD         ; stack: 5 14
            ADD         ; stack: 19
            PUSH1 0x00
            MSTORE
            PUSH1 0x20
            PUSH1 0x00
            RETURN
        "#;
        assert_eq!(returned_u64(&run(source, &[])), 19);
    }

    #[test]
    fn caller_and_address_are_visible() {
        let source = "CALLER\nPUSH1 0x00\nMSTORE\nPUSH1 0x20\nPUSH1 0x00\nRETURN";
        let outcome = run(source, &[]);
        assert_eq!(returned_u64(&outcome), 0xca11e4);
        let source = "ADDRESS\nPUSH1 0x00\nMSTORE\nPUSH1 0x20\nPUSH1 0x00\nRETURN";
        let outcome = run(source, &[]);
        assert_eq!(returned_u64(&outcome), 0xc0de);
    }

    #[test]
    fn running_off_code_end_is_stop() {
        let outcome = run("PUSH1 0x01", &[]);
        assert_eq!(outcome.status, TxStatus::Success);
        assert!(outcome.return_data.is_empty());
    }

    #[test]
    fn invalid_opcode_reverts() {
        let env = CallEnv::test_env(Address::ZERO, Address::ZERO, Bytes::new());
        let mut storage = MemStorage::new();
        let outcome = execute(&[0xf1], &env, &mut storage, GAS); // CALL unsupported
        assert_eq!(outcome.status, TxStatus::Reverted);
    }

    #[test]
    fn stack_overflow_detected() {
        // Push in an infinite loop; must fail with overflow (reverted), not
        // hang — the gas meter would also stop it, but give it plenty.
        let code = assemble("begin:\nJUMPDEST\nPUSH1 0x01\nPUSH @begin\nJUMP").unwrap();
        let env = CallEnv::test_env(Address::ZERO, Address::ZERO, Bytes::new());
        let mut storage = MemStorage::new();
        let outcome = execute(&code, &env, &mut storage, GAS);
        assert_eq!(outcome.status, TxStatus::Reverted);
    }

    /// Wraps an expression in "return top-of-stack as a word".
    fn returning(expr: &str) -> String {
        format!("{expr}\nPUSH1 0x00\nMSTORE\nPUSH1 0x20\nPUSH1 0x00\nRETURN")
    }

    fn returned_word(outcome: &CallOutcome) -> U256 {
        assert_eq!(outcome.status, TxStatus::Success, "outcome: {outcome:?}");
        let mut word = [0u8; 32];
        word.copy_from_slice(&outcome.return_data);
        U256::from_be_bytes(word)
    }

    #[test]
    fn sdiv_truncates_toward_zero() {
        // -7 / 2 == -3: two's complement -7 is NOT(7) + 1; SDIV takes the
        // numerator from the top of the stack.
        let source = returning("PUSH1 0x02\nPUSH1 0x07\nNOT\nPUSH1 0x01\nADD\nSDIV");
        let outcome = run(&source, &[]);
        assert_eq!(returned_word(&outcome), U256::from(3u64).wrapping_neg());
    }

    #[test]
    fn smod_sign_follows_dividend() {
        // -7 % 2 == -1.
        let source = returning("PUSH1 0x02\nPUSH1 0x07\nNOT\nPUSH1 0x01\nADD\nSMOD");
        let outcome = run(&source, &[]);
        assert_eq!(returned_word(&outcome), U256::ONE.wrapping_neg());
    }

    #[test]
    fn slt_and_sgt_order_signed() {
        // -1 < 1 under SLT: PUSH 1 (rhs), PUSH -1 (lhs), SLT → 1.
        let source = returning("PUSH1 0x01\nPUSH1 0x00\nNOT\nSLT");
        assert_eq!(returned_word(&run(&source, &[])), U256::ONE);
        // 1 > -1 under SGT.
        let source = returning("PUSH1 0x00\nNOT\nPUSH1 0x01\nSGT");
        assert_eq!(returned_word(&run(&source, &[])), U256::ONE);
        // Unsigned LT disagrees: MAX (as -1) is the largest unsigned value.
        let source = returning("PUSH1 0x01\nPUSH1 0x00\nNOT\nLT");
        assert_eq!(returned_word(&run(&source, &[])), U256::ZERO);
    }

    #[test]
    fn sar_preserves_the_sign() {
        // (-8) SAR 1 == -4.
        let source = returning("PUSH1 0x07\nNOT\nPUSH1 0x01\nSAR");
        assert_eq!(returned_word(&run(&source, &[])), U256::from(4u64).wrapping_neg());
        // 8 SAR 1 == 4.
        let source = returning("PUSH1 0x08\nPUSH1 0x01\nSAR");
        assert_eq!(returned_word(&run(&source, &[])), U256::from(4u64));
    }

    #[test]
    fn signextend_widens_a_byte() {
        // SIGNEXTEND(0, 0xff) == -1.
        let source = returning("PUSH1 0xff\nPUSH1 0x00\nSIGNEXTEND");
        assert_eq!(returned_word(&run(&source, &[])), U256::MAX);
    }

    #[test]
    fn selfbalance_and_balance_read_accounts() {
        let code = assemble(&returning("SELFBALANCE")).unwrap();
        let env =
            CallEnv::test_env(Address::from_low_u64(0xca11e4), Address::from_low_u64(0xc0de), Bytes::new());
        let mut storage = MemStorage::new();
        storage.set_balance(Address::from_low_u64(0xc0de), U256::from(777u64));
        let outcome = execute(&code, &env, &mut storage, GAS);
        assert_eq!(returned_word(&outcome), U256::from(777u64));

        let code = assemble(&returning("PUSH3 0xca11e4\nBALANCE")).unwrap();
        storage.set_balance(Address::from_low_u64(0xca11e4), U256::from(123u64));
        let outcome = execute(&code, &env, &mut storage, GAS);
        assert_eq!(returned_word(&outcome), U256::from(123u64));
    }

    #[test]
    fn returndatasize_is_zero_before_any_call() {
        let source = returning("RETURNDATASIZE");
        assert_eq!(returned_word(&run(&source, &[])), U256::ZERO);
    }

    #[test]
    fn returndatacopy_out_of_bounds_is_an_error() {
        // No call has happened; copying one byte must fail hard.
        let outcome = run("PUSH1 0x01\nPUSH1 0x00\nPUSH1 0x00\nRETURNDATACOPY\nSTOP", &[]);
        assert_eq!(outcome.status, TxStatus::Reverted);
    }

    /// Sets up `storage` with a callee at 0xbb and returns the caller env.
    fn call_fixture(callee_asm: &str) -> (CallEnv, MemStorage) {
        let mut storage = MemStorage::new();
        let callee_code = assemble(callee_asm).expect("callee assembles");
        storage.set_code(Address::from_low_u64(0xbb), ContractCode::Bytecode(Bytes::from(callee_code)));
        let env = CallEnv::test_env(Address::from_low_u64(0xaa), Address::from_low_u64(0xcc), Bytes::new());
        (env, storage)
    }

    use crate::exec::ContractCode;

    #[test]
    fn call_runs_the_callee_and_copies_return_data() {
        // Callee returns the word 0x2a.
        let (env, mut storage) =
            call_fixture("PUSH1 0x2a\nPUSH1 0x00\nMSTORE\nPUSH1 0x20\nPUSH1 0x00\nRETURN");
        // Caller: CALL(gas=50000, to=0xbb, value=0, in=[], out=mem[0..32]),
        // then return mem[0..32].
        let source = r#"
            PUSH1 0x20    ; out_len
            PUSH1 0x00    ; out_off
            PUSH1 0x00    ; in_len
            PUSH1 0x00    ; in_off
            PUSH1 0x00    ; value
            PUSH1 0xbb    ; to
            PUSH3 0xc350  ; gas
            CALL
            POP
            PUSH1 0x20
            PUSH1 0x00
            RETURN
        "#;
        let code = assemble(source).unwrap();
        let outcome = execute(&code, &env, &mut storage, GAS);
        assert_eq!(returned_word(&outcome), U256::from(0x2au64));
    }

    #[test]
    fn call_pushes_success_flag_and_exposes_returndata() {
        let (env, mut storage) =
            call_fixture("PUSH1 0x2a\nPUSH1 0x00\nMSTORE\nPUSH1 0x20\nPUSH1 0x00\nRETURN");
        // Return the success flag itself.
        let source = returning(
            "PUSH1 0x00\nPUSH1 0x00\nPUSH1 0x00\nPUSH1 0x00\nPUSH1 0x00\nPUSH1 0xbb\nPUSH3 0xc350\nCALL",
        );
        let code = assemble(&source).unwrap();
        let outcome = execute(&code, &env, &mut storage, GAS);
        assert_eq!(returned_word(&outcome), U256::ONE);

        // RETURNDATASIZE after the call sees the callee's 32-byte word.
        let source = returning(
            "PUSH1 0x00\nPUSH1 0x00\nPUSH1 0x00\nPUSH1 0x00\nPUSH1 0x00\nPUSH1 0xbb\nPUSH3 0xc350\nCALL\nPOP\nRETURNDATASIZE",
        );
        let code = assemble(&source).unwrap();
        let outcome = execute(&code, &env, &mut storage, GAS);
        assert_eq!(returned_word(&outcome), U256::from(32u64));
    }

    #[test]
    fn reverting_callee_rolls_back_its_writes_only() {
        // Callee stores 9 at its slot 0, then reverts.
        let (env, mut storage) =
            call_fixture("PUSH1 0x09\nPUSH1 0x00\nSSTORE\nPUSH1 0x00\nPUSH1 0x00\nREVERT");
        // Caller stores 5 at its own slot 0, calls, stores 6 at slot 1,
        // returns the call's success flag.
        let source = returning(
            "PUSH1 0x05\nPUSH1 0x00\nSSTORE\nPUSH1 0x00\nPUSH1 0x00\nPUSH1 0x00\nPUSH1 0x00\nPUSH1 0x00\nPUSH1 0xbb\nPUSH3 0xc350\nCALL\nPUSH1 0x06\nPUSH1 0x01\nSSTORE",
        );
        let code = assemble(&source).unwrap();
        let outcome = execute(&code, &env, &mut storage, GAS);
        // Call failed (flag 0) but the parent frame completed.
        assert_eq!(returned_word(&outcome), U256::ZERO);
        // The callee's write was rolled back…
        assert_eq!(storage.storage_get(&Address::from_low_u64(0xbb), &H256::ZERO), H256::ZERO);
        // …while both parent writes survive.
        assert_eq!(storage.storage_get(&Address::from_low_u64(0xcc), &H256::ZERO), H256::from_low_u64(5));
        assert_eq!(
            storage.storage_get(&Address::from_low_u64(0xcc), &H256::from_low_u64(1)),
            H256::from_low_u64(6)
        );
    }

    #[test]
    fn revert_payload_reaches_the_caller() {
        // Callee reverts with the word 0xdead as payload.
        let (env, mut storage) =
            call_fixture("PUSH2 0xdead\nPUSH1 0x00\nMSTORE\nPUSH1 0x20\nPUSH1 0x00\nREVERT");
        // Caller calls, then RETURNDATACOPYs the payload and returns it.
        let source = r#"
            PUSH1 0x00
            PUSH1 0x00
            PUSH1 0x00
            PUSH1 0x00
            PUSH1 0x00
            PUSH1 0xbb
            PUSH3 0xc350
            CALL
            POP
            PUSH1 0x20    ; len
            PUSH1 0x00    ; data_off
            PUSH1 0x00    ; mem_off
            RETURNDATACOPY
            PUSH1 0x20
            PUSH1 0x00
            RETURN
        "#;
        let code = assemble(source).unwrap();
        let outcome = execute(&code, &env, &mut storage, GAS);
        assert_eq!(returned_word(&outcome), U256::from(0xdeadu64));
    }

    #[test]
    fn staticcall_denies_writes_in_the_callee() {
        let (env, mut storage) = call_fixture("PUSH1 0x01\nPUSH1 0x00\nSSTORE\nSTOP");
        let source =
            returning("PUSH1 0x00\nPUSH1 0x00\nPUSH1 0x00\nPUSH1 0x00\nPUSH1 0xbb\nPUSH3 0xc350\nSTATICCALL");
        let code = assemble(&source).unwrap();
        let outcome = execute(&code, &env, &mut storage, GAS);
        assert_eq!(returned_word(&outcome), U256::ZERO, "write inside STATICCALL fails the child");
        assert_eq!(storage.storage_get(&Address::from_low_u64(0xbb), &H256::ZERO), H256::ZERO);
    }

    #[test]
    fn static_frame_cannot_call_with_value() {
        let (mut env, mut storage) = call_fixture("STOP");
        env.is_static = true;
        storage.set_balance(env.callee, U256::from(100u64));
        let source = "PUSH1 0x00\nPUSH1 0x00\nPUSH1 0x00\nPUSH1 0x00\nPUSH1 0x01\nPUSH1 0xbb\nPUSH3 0xc350\nCALL\nSTOP";
        let code = assemble(source).unwrap();
        let outcome = execute(&code, &env, &mut storage, GAS);
        assert_eq!(outcome.status, TxStatus::Reverted, "value transfer in static context");
    }

    #[test]
    fn call_transfers_value_to_codeless_account() {
        let mut storage = MemStorage::new();
        storage.set_balance(Address::from_low_u64(0xcc), U256::from(500u64));
        let env = CallEnv::test_env(Address::from_low_u64(0xaa), Address::from_low_u64(0xcc), Bytes::new());
        let source = returning(
            "PUSH1 0x00\nPUSH1 0x00\nPUSH1 0x00\nPUSH1 0x00\nPUSH2 0x012c\nPUSH1 0xee\nPUSH3 0xc350\nCALL",
        );
        let code = assemble(&source).unwrap();
        let outcome = execute(&code, &env, &mut storage, GAS);
        assert_eq!(returned_word(&outcome), U256::ONE);
        assert_eq!(storage.balance_get(&Address::from_low_u64(0xee)), U256::from(300u64));
        assert_eq!(storage.balance_get(&Address::from_low_u64(0xcc)), U256::from(200u64));
    }

    #[test]
    fn call_with_insufficient_balance_fails_flat() {
        let mut storage = MemStorage::new();
        let env = CallEnv::test_env(Address::from_low_u64(0xaa), Address::from_low_u64(0xcc), Bytes::new());
        let source = returning(
            "PUSH1 0x00\nPUSH1 0x00\nPUSH1 0x00\nPUSH1 0x00\nPUSH2 0x012c\nPUSH1 0xee\nPUSH3 0xc350\nCALL",
        );
        let code = assemble(&source).unwrap();
        let outcome = execute(&code, &env, &mut storage, GAS);
        assert_eq!(returned_word(&outcome), U256::ZERO, "no funds: flag 0, frame continues");
    }

    #[test]
    fn logs_of_a_successful_callee_bubble_up() {
        let (env, mut storage) = call_fixture("PUSH1 0x07\nPUSH1 0x00\nPUSH1 0x00\nLOG1\nSTOP");
        let source = "PUSH1 0x00\nPUSH1 0x00\nPUSH1 0x00\nPUSH1 0x00\nPUSH1 0x00\nPUSH1 0xbb\nPUSH3 0xc350\nCALL\nPOP\nSTOP";
        let code = assemble(source).unwrap();
        let outcome = execute(&code, &env, &mut storage, GAS);
        assert_eq!(outcome.status, TxStatus::Success);
        assert_eq!(outcome.logs.len(), 1);
        assert_eq!(outcome.logs[0].address, Address::from_low_u64(0xbb), "log attributed to callee");
        assert_eq!(outcome.logs[0].topics, vec![H256::from_low_u64(7)]);
    }

    #[test]
    fn logs_of_a_reverting_callee_are_dropped() {
        let (env, mut storage) =
            call_fixture("PUSH1 0x07\nPUSH1 0x00\nPUSH1 0x00\nLOG1\nPUSH1 0x00\nPUSH1 0x00\nREVERT");
        let source = "PUSH1 0x00\nPUSH1 0x00\nPUSH1 0x00\nPUSH1 0x00\nPUSH1 0x00\nPUSH1 0xbb\nPUSH3 0xc350\nCALL\nPOP\nSTOP";
        let code = assemble(source).unwrap();
        let outcome = execute(&code, &env, &mut storage, GAS);
        assert_eq!(outcome.status, TxStatus::Success);
        assert!(outcome.logs.is_empty());
    }

    #[test]
    fn nested_calls_recurse_to_the_depth_limit_without_overflowing() {
        // A contract that calls itself: CALL(gas=all, to=self, …), then
        // returns. Recursion must stop at the depth limit, not the stack.
        let mut storage = MemStorage::new();
        let this = Address::from_low_u64(0xbb);
        let source =
            "PUSH1 0x00\nPUSH1 0x00\nPUSH1 0x00\nPUSH1 0x00\nPUSH1 0x00\nPUSH1 0xbb\nGAS\nCALL\nPOP\nSTOP";
        let code = assemble(source).unwrap();
        storage.set_code(this, ContractCode::Bytecode(Bytes::from(code.clone())));
        let mut env = CallEnv::test_env(Address::from_low_u64(0xaa), this, Bytes::new());
        env.depth = 0;
        // At 2M gas the 63/64 rule admits ~240 nested frames — far beyond
        // what native recursion could survive on a 2 MiB test-thread stack.
        // The iterative driver keeps suspended frames on the heap; the
        // deepest call dies of gas exhaustion and every parent unwinds.
        let outcome = execute(&code, &env, &mut storage, 2_000_000);
        assert_eq!(outcome.status, TxStatus::Success);
    }

    #[test]
    fn call_to_native_contract_dispatches() {
        use crate::exec::NativeContract;
        use crate::gas::GasMeter;

        /// Returns the constant 99.
        struct Const99;
        impl NativeContract for Const99 {
            fn name(&self) -> &'static str {
                "const99"
            }
            fn call(
                &self,
                _env: &CallEnv,
                _storage: &mut dyn Storage,
                _gas: &mut GasMeter,
                _logs: &mut Vec<Log>,
            ) -> Result<Bytes, VmError> {
                Ok(Bytes::copy_from_slice(&U256::from(99u64).to_be_bytes()))
            }
        }

        let mut storage = MemStorage::new();
        storage.set_code(Address::from_low_u64(0xbb), ContractCode::Native(std::sync::Arc::new(Const99)));
        let env = CallEnv::test_env(Address::from_low_u64(0xaa), Address::from_low_u64(0xcc), Bytes::new());
        let source = r#"
            PUSH1 0x20
            PUSH1 0x00
            PUSH1 0x00
            PUSH1 0x00
            PUSH1 0x00
            PUSH1 0xbb
            PUSH3 0xc350
            CALL
            POP
            PUSH1 0x20
            PUSH1 0x00
            RETURN
        "#;
        let code = assemble(source).unwrap();
        let outcome = execute(&code, &env, &mut storage, GAS);
        assert_eq!(returned_word(&outcome), U256::from(99u64));
    }
}
