//! The EVM opcode subset understood by the interpreter.
//!
//! Byte values match the Ethereum Yellow Paper so that bytecode and traces
//! read like real EVM artifacts. The subset covers everything Listing 1 of
//! the paper (the Sereth contract) and the test suite need — including
//! signed arithmetic and cross-contract `CALL`/`STATICCALL`; the omitted
//! families (`CREATE`-style constructors, `DELEGATECALL`, `SELFDESTRUCT`,
//! …) are documented in `DESIGN.md` §7.

use core::fmt;

/// One decoded instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // variants mirror the Yellow Paper mnemonics
pub enum Opcode {
    Stop,
    Add,
    Mul,
    Sub,
    Div,
    SDiv,
    Mod,
    SMod,
    AddMod,
    MulMod,
    Exp,
    SignExtend,
    Lt,
    Gt,
    Slt,
    Sgt,
    Eq,
    IsZero,
    And,
    Or,
    Xor,
    Not,
    Byte,
    Shl,
    Shr,
    Sar,
    Sha3,
    Address,
    Balance,
    Caller,
    CallValue,
    CallDataLoad,
    CallDataSize,
    CallDataCopy,
    ReturnDataSize,
    ReturnDataCopy,
    Timestamp,
    Number,
    SelfBalance,
    Pop,
    MLoad,
    MStore,
    MStore8,
    SLoad,
    SStore,
    Jump,
    JumpI,
    Pc,
    MSize,
    Gas,
    JumpDest,
    /// `PUSH1`‥`PUSH32`; the payload is the number of immediate bytes.
    Push(u8),
    /// `DUP1`‥`DUP16`; the payload is the depth (1-based).
    Dup(u8),
    /// `SWAP1`‥`SWAP16`; the payload is the depth (1-based).
    Swap(u8),
    /// `LOG0`‥`LOG4`; the payload is the topic count.
    Log(u8),
    Return,
    /// Cross-contract call: `gas to value in_off in_len out_off out_len →
    /// success`.
    Call,
    /// Read-only cross-contract call: `gas to in_off in_len out_off
    /// out_len → success`.
    StaticCall,
    Revert,
}

impl Opcode {
    /// Decodes a byte into an opcode, or `None` for bytes outside the
    /// supported subset (executing one raises an invalid-opcode error).
    pub fn from_byte(byte: u8) -> Option<Self> {
        Some(match byte {
            0x00 => Self::Stop,
            0x01 => Self::Add,
            0x02 => Self::Mul,
            0x03 => Self::Sub,
            0x04 => Self::Div,
            0x05 => Self::SDiv,
            0x06 => Self::Mod,
            0x07 => Self::SMod,
            0x08 => Self::AddMod,
            0x09 => Self::MulMod,
            0x0a => Self::Exp,
            0x0b => Self::SignExtend,
            0x10 => Self::Lt,
            0x11 => Self::Gt,
            0x12 => Self::Slt,
            0x13 => Self::Sgt,
            0x14 => Self::Eq,
            0x15 => Self::IsZero,
            0x16 => Self::And,
            0x17 => Self::Or,
            0x18 => Self::Xor,
            0x19 => Self::Not,
            0x1a => Self::Byte,
            0x1b => Self::Shl,
            0x1c => Self::Shr,
            0x1d => Self::Sar,
            0x20 => Self::Sha3,
            0x30 => Self::Address,
            0x31 => Self::Balance,
            0x33 => Self::Caller,
            0x34 => Self::CallValue,
            0x35 => Self::CallDataLoad,
            0x36 => Self::CallDataSize,
            0x37 => Self::CallDataCopy,
            0x3d => Self::ReturnDataSize,
            0x3e => Self::ReturnDataCopy,
            0x42 => Self::Timestamp,
            0x43 => Self::Number,
            0x47 => Self::SelfBalance,
            0x50 => Self::Pop,
            0x51 => Self::MLoad,
            0x52 => Self::MStore,
            0x53 => Self::MStore8,
            0x54 => Self::SLoad,
            0x55 => Self::SStore,
            0x56 => Self::Jump,
            0x57 => Self::JumpI,
            0x58 => Self::Pc,
            0x59 => Self::MSize,
            0x5a => Self::Gas,
            0x5b => Self::JumpDest,
            0x60..=0x7f => Self::Push(byte - 0x5f),
            0x80..=0x8f => Self::Dup(byte - 0x7f),
            0x90..=0x9f => Self::Swap(byte - 0x8f),
            0xa0..=0xa4 => Self::Log(byte - 0xa0),
            0xf1 => Self::Call,
            0xf3 => Self::Return,
            0xfa => Self::StaticCall,
            0xfd => Self::Revert,
            _ => return None,
        })
    }

    /// Encodes the opcode back into its byte.
    pub fn to_byte(self) -> u8 {
        match self {
            Self::Stop => 0x00,
            Self::Add => 0x01,
            Self::Mul => 0x02,
            Self::Sub => 0x03,
            Self::Div => 0x04,
            Self::SDiv => 0x05,
            Self::Mod => 0x06,
            Self::SMod => 0x07,
            Self::AddMod => 0x08,
            Self::MulMod => 0x09,
            Self::Exp => 0x0a,
            Self::SignExtend => 0x0b,
            Self::Lt => 0x10,
            Self::Gt => 0x11,
            Self::Slt => 0x12,
            Self::Sgt => 0x13,
            Self::Eq => 0x14,
            Self::IsZero => 0x15,
            Self::And => 0x16,
            Self::Or => 0x17,
            Self::Xor => 0x18,
            Self::Not => 0x19,
            Self::Byte => 0x1a,
            Self::Shl => 0x1b,
            Self::Shr => 0x1c,
            Self::Sar => 0x1d,
            Self::Sha3 => 0x20,
            Self::Address => 0x30,
            Self::Balance => 0x31,
            Self::Caller => 0x33,
            Self::CallValue => 0x34,
            Self::CallDataLoad => 0x35,
            Self::CallDataSize => 0x36,
            Self::CallDataCopy => 0x37,
            Self::ReturnDataSize => 0x3d,
            Self::ReturnDataCopy => 0x3e,
            Self::Timestamp => 0x42,
            Self::Number => 0x43,
            Self::SelfBalance => 0x47,
            Self::Pop => 0x50,
            Self::MLoad => 0x51,
            Self::MStore => 0x52,
            Self::MStore8 => 0x53,
            Self::SLoad => 0x54,
            Self::SStore => 0x55,
            Self::Jump => 0x56,
            Self::JumpI => 0x57,
            Self::Pc => 0x58,
            Self::MSize => 0x59,
            Self::Gas => 0x5a,
            Self::JumpDest => 0x5b,
            Self::Push(n) => 0x5f + n,
            Self::Dup(n) => 0x7f + n,
            Self::Swap(n) => 0x8f + n,
            Self::Log(n) => 0xa0 + n,
            Self::Call => 0xf1,
            Self::Return => 0xf3,
            Self::StaticCall => 0xfa,
            Self::Revert => 0xfd,
        }
    }

    /// Number of immediate bytes following the opcode (non-zero only for
    /// `PUSH`).
    pub fn immediate_len(self) -> usize {
        match self {
            Self::Push(n) => n as usize,
            _ => 0,
        }
    }

    /// Parses a mnemonic as used by the assembler, e.g. `"PUSH1"`,
    /// `"DUP3"`, `"SSTORE"`. Case-insensitive.
    pub fn from_mnemonic(mnemonic: &str) -> Option<Self> {
        let upper = mnemonic.to_ascii_uppercase();
        if let Some(rest) = upper.strip_prefix("PUSH") {
            if let Ok(n) = rest.parse::<u8>() {
                if (1..=32).contains(&n) {
                    return Some(Self::Push(n));
                }
            }
            return None;
        }
        if let Some(rest) = upper.strip_prefix("DUP") {
            let n = rest.parse::<u8>().ok()?;
            return (1..=16).contains(&n).then_some(Self::Dup(n));
        }
        if let Some(rest) = upper.strip_prefix("SWAP") {
            let n = rest.parse::<u8>().ok()?;
            return (1..=16).contains(&n).then_some(Self::Swap(n));
        }
        if let Some(rest) = upper.strip_prefix("LOG") {
            let n = rest.parse::<u8>().ok()?;
            return (n <= 4).then_some(Self::Log(n));
        }
        Some(match upper.as_str() {
            "STOP" => Self::Stop,
            "ADD" => Self::Add,
            "MUL" => Self::Mul,
            "SUB" => Self::Sub,
            "DIV" => Self::Div,
            "SDIV" => Self::SDiv,
            "MOD" => Self::Mod,
            "SMOD" => Self::SMod,
            "ADDMOD" => Self::AddMod,
            "MULMOD" => Self::MulMod,
            "EXP" => Self::Exp,
            "SIGNEXTEND" => Self::SignExtend,
            "LT" => Self::Lt,
            "GT" => Self::Gt,
            "SLT" => Self::Slt,
            "SGT" => Self::Sgt,
            "EQ" => Self::Eq,
            "ISZERO" => Self::IsZero,
            "AND" => Self::And,
            "OR" => Self::Or,
            "XOR" => Self::Xor,
            "NOT" => Self::Not,
            "BYTE" => Self::Byte,
            "SHL" => Self::Shl,
            "SHR" => Self::Shr,
            "SAR" => Self::Sar,
            "SHA3" | "KECCAK256" => Self::Sha3,
            "ADDRESS" => Self::Address,
            "BALANCE" => Self::Balance,
            "CALLER" => Self::Caller,
            "CALLVALUE" => Self::CallValue,
            "CALLDATALOAD" => Self::CallDataLoad,
            "CALLDATASIZE" => Self::CallDataSize,
            "CALLDATACOPY" => Self::CallDataCopy,
            "RETURNDATASIZE" => Self::ReturnDataSize,
            "RETURNDATACOPY" => Self::ReturnDataCopy,
            "TIMESTAMP" => Self::Timestamp,
            "NUMBER" => Self::Number,
            "SELFBALANCE" => Self::SelfBalance,
            "POP" => Self::Pop,
            "MLOAD" => Self::MLoad,
            "MSTORE" => Self::MStore,
            "MSTORE8" => Self::MStore8,
            "SLOAD" => Self::SLoad,
            "SSTORE" => Self::SStore,
            "JUMP" => Self::Jump,
            "JUMPI" => Self::JumpI,
            "PC" => Self::Pc,
            "MSIZE" => Self::MSize,
            "GAS" => Self::Gas,
            "JUMPDEST" => Self::JumpDest,
            "RETURN" => Self::Return,
            "CALL" => Self::Call,
            "STATICCALL" => Self::StaticCall,
            "REVERT" => Self::Revert,
            _ => return None,
        })
    }
}

impl fmt::Display for Opcode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Push(n) => write!(f, "PUSH{n}"),
            Self::Dup(n) => write!(f, "DUP{n}"),
            Self::Swap(n) => write!(f, "SWAP{n}"),
            Self::Log(n) => write!(f, "LOG{n}"),
            Self::Sha3 => write!(f, "SHA3"),
            other => write!(f, "{}", format!("{other:?}").to_ascii_uppercase()),
        }
    }
}

/// Computes the set of valid `JUMPDEST` offsets in `code`, skipping bytes
/// that are `PUSH` immediates.
pub fn valid_jump_destinations(code: &[u8]) -> Vec<bool> {
    let mut valid = vec![false; code.len()];
    let mut pc = 0usize;
    while pc < code.len() {
        match Opcode::from_byte(code[pc]) {
            Some(Opcode::JumpDest) => {
                valid[pc] = true;
                pc += 1;
            }
            Some(op) => pc += 1 + op.immediate_len(),
            None => pc += 1,
        }
    }
    valid
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_round_trip_for_all_supported() {
        for byte in 0u8..=0xff {
            if let Some(op) = Opcode::from_byte(byte) {
                assert_eq!(op.to_byte(), byte, "opcode {op}");
            }
        }
    }

    #[test]
    fn mnemonic_round_trip() {
        for byte in 0u8..=0xff {
            if let Some(op) = Opcode::from_byte(byte) {
                let name = op.to_string();
                assert_eq!(Opcode::from_mnemonic(&name), Some(op), "mnemonic {name}");
            }
        }
    }

    #[test]
    fn push_ranges() {
        assert_eq!(Opcode::from_byte(0x60), Some(Opcode::Push(1)));
        assert_eq!(Opcode::from_byte(0x7f), Some(Opcode::Push(32)));
        assert_eq!(Opcode::Push(1).immediate_len(), 1);
        assert_eq!(Opcode::Push(32).immediate_len(), 32);
        assert_eq!(Opcode::from_mnemonic("PUSH33"), None);
        assert_eq!(Opcode::from_mnemonic("PUSH0"), None);
    }

    #[test]
    fn unsupported_bytes_are_none() {
        assert_eq!(Opcode::from_byte(0xf0), None); // CREATE — unsupported
        assert_eq!(Opcode::from_byte(0xf4), None); // DELEGATECALL — unsupported
        assert_eq!(Opcode::from_byte(0xff), None); // SELFDESTRUCT — unsupported
    }

    #[test]
    fn call_family_bytes_match_the_yellow_paper() {
        assert_eq!(Opcode::from_byte(0xf1), Some(Opcode::Call));
        assert_eq!(Opcode::from_byte(0xfa), Some(Opcode::StaticCall));
        assert_eq!(Opcode::from_byte(0x3d), Some(Opcode::ReturnDataSize));
        assert_eq!(Opcode::from_byte(0x3e), Some(Opcode::ReturnDataCopy));
        assert_eq!(Opcode::from_byte(0x05), Some(Opcode::SDiv));
        assert_eq!(Opcode::from_byte(0x1d), Some(Opcode::Sar));
    }

    #[test]
    fn jumpdest_inside_push_immediate_is_invalid() {
        // PUSH2 0x5b5b JUMPDEST — only the final byte is a real JUMPDEST.
        let code = [0x61, 0x5b, 0x5b, 0x5b];
        let valid = valid_jump_destinations(&code);
        assert_eq!(valid, vec![false, false, false, true]);
    }

    #[test]
    fn keccak_alias_parses() {
        assert_eq!(Opcode::from_mnemonic("KECCAK256"), Some(Opcode::Sha3));
        assert_eq!(Opcode::from_mnemonic("sha3"), Some(Opcode::Sha3));
    }
}
