//! A two-pass text assembler for the interpreter's opcode subset.
//!
//! The Sereth contract ships in this repository both as native Rust and as
//! assembly compiled by this module (the test suite proves the two
//! equivalent), standing in for the paper's Solidity source (Listing 1).
//!
//! # Syntax
//!
//! * one instruction per line: `PUSH1 0x60`, `SSTORE`, `JUMPDEST`, …;
//! * labels: `name:` on its own line (remember to place a `JUMPDEST`
//!   immediately after a label that is a jump target);
//! * `PUSH @label` assembles to `PUSH2` with the label's offset;
//! * `PUSH <hex>` without a size picks the smallest `PUSHn` that fits;
//! * comments start with `;` or `//` and run to end of line.
//!
//! # Examples
//!
//! ```
//! use sereth_vm::asm::assemble;
//!
//! let code = assemble("PUSH1 0x2a\nPUSH1 0x00\nMSTORE\nPUSH1 0x20\nPUSH1 0x00\nRETURN")?;
//! assert_eq!(code[0], 0x60);
//! # Ok::<(), sereth_vm::asm::AsmError>(())
//! ```

use core::fmt;
use std::collections::HashMap;

use crate::opcode::Opcode;

/// Errors produced by [`assemble`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AsmError {
    /// An unknown mnemonic.
    UnknownMnemonic {
        /// 1-based source line.
        line: usize,
        /// The offending token.
        token: String,
    },
    /// A `PUSH` immediate was missing or malformed.
    BadImmediate {
        /// 1-based source line.
        line: usize,
        /// Explanation.
        reason: String,
    },
    /// A label was referenced but never defined.
    UndefinedLabel {
        /// The label name.
        label: String,
    },
    /// A label was defined twice.
    DuplicateLabel {
        /// The label name.
        label: String,
    },
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::UnknownMnemonic { line, token } => write!(f, "line {line}: unknown mnemonic {token:?}"),
            Self::BadImmediate { line, reason } => write!(f, "line {line}: bad immediate: {reason}"),
            Self::UndefinedLabel { label } => write!(f, "undefined label {label:?}"),
            Self::DuplicateLabel { label } => write!(f, "duplicate label {label:?}"),
        }
    }
}

impl std::error::Error for AsmError {}

enum Item {
    Op(Opcode),
    /// PUSHn with a literal immediate.
    PushLiteral(Vec<u8>),
    /// PUSH2 with a label reference, patched in pass two.
    PushLabel(String),
}

impl Item {
    fn len(&self) -> usize {
        match self {
            Item::Op(op) => 1 + op.immediate_len(),
            Item::PushLiteral(bytes) => 1 + bytes.len(),
            Item::PushLabel(_) => 3,
        }
    }
}

fn parse_hex_immediate(token: &str, line: usize) -> Result<Vec<u8>, AsmError> {
    let digits = token.strip_prefix("0x").unwrap_or(token);
    if digits.is_empty() {
        return Err(AsmError::BadImmediate { line, reason: "empty immediate".into() });
    }
    if !digits.chars().all(|c| c.is_ascii_hexdigit()) {
        return Err(AsmError::BadImmediate { line, reason: format!("non-hex immediate {token:?}") });
    }
    // Left-pad to an even number of digits.
    let padded = if digits.len() % 2 == 1 { format!("0{digits}") } else { digits.to_string() };
    let bytes: Vec<u8> = (0..padded.len())
        .step_by(2)
        .map(|i| u8::from_str_radix(&padded[i..i + 2], 16).expect("validated hex"))
        .collect();
    if bytes.len() > 32 {
        return Err(AsmError::BadImmediate { line, reason: "immediate wider than 32 bytes".into() });
    }
    Ok(bytes)
}

/// Assembles `source` into bytecode.
///
/// # Errors
///
/// Returns an [`AsmError`] describing the first problem found.
pub fn assemble(source: &str) -> Result<Vec<u8>, AsmError> {
    let mut items: Vec<Item> = Vec::new();
    let mut labels: HashMap<String, usize> = HashMap::new();
    let mut offset = 0usize;

    // Pass one: tokenize, record label offsets.
    for (line_index, raw_line) in source.lines().enumerate() {
        let line_no = line_index + 1;
        let line = raw_line.split(';').next().unwrap_or("");
        let line = line.split("//").next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        if let Some(label) = line.strip_suffix(':') {
            let label = label.trim().to_string();
            if labels.insert(label.clone(), offset).is_some() {
                return Err(AsmError::DuplicateLabel { label });
            }
            continue;
        }
        let mut parts = line.split_whitespace();
        let mnemonic = parts.next().expect("non-empty line");
        let operand = parts.next();

        let upper = mnemonic.to_ascii_uppercase();
        let item = if upper == "PUSH" {
            // Size-inferred push: literal or label.
            match operand {
                Some(op) if op.starts_with('@') => Item::PushLabel(op[1..].to_string()),
                Some(op) => {
                    let bytes = parse_hex_immediate(op, line_no)?;
                    Item::PushLiteral(bytes)
                }
                None => {
                    return Err(AsmError::BadImmediate {
                        line: line_no,
                        reason: "PUSH needs an operand".into(),
                    })
                }
            }
        } else if let Some(op) = Opcode::from_mnemonic(mnemonic) {
            if let Opcode::Push(n) = op {
                let token = operand.ok_or_else(|| AsmError::BadImmediate {
                    line: line_no,
                    reason: format!("PUSH{n} needs an operand"),
                })?;
                if let Some(label) = token.strip_prefix('@') {
                    if n != 2 {
                        return Err(AsmError::BadImmediate {
                            line: line_no,
                            reason: "label pushes must use PUSH2 or bare PUSH".into(),
                        });
                    }
                    Item::PushLabel(label.to_string())
                } else {
                    let mut bytes = parse_hex_immediate(token, line_no)?;
                    if bytes.len() > n as usize {
                        return Err(AsmError::BadImmediate {
                            line: line_no,
                            reason: format!("immediate does not fit PUSH{n}"),
                        });
                    }
                    // Left-pad to the declared width.
                    while bytes.len() < n as usize {
                        bytes.insert(0, 0);
                    }
                    Item::PushLiteral(bytes)
                }
            } else {
                Item::Op(op)
            }
        } else {
            return Err(AsmError::UnknownMnemonic { line: line_no, token: mnemonic.to_string() });
        };
        offset += item.len();
        items.push(item);
    }

    // Pass two: emit bytes, patching label references.
    let mut code = Vec::with_capacity(offset);
    for item in &items {
        match item {
            Item::Op(op) => code.push(op.to_byte()),
            Item::PushLiteral(bytes) => {
                debug_assert!(!bytes.is_empty() && bytes.len() <= 32);
                code.push(Opcode::Push(bytes.len() as u8).to_byte());
                code.extend_from_slice(bytes);
            }
            Item::PushLabel(label) => {
                let target =
                    *labels.get(label).ok_or_else(|| AsmError::UndefinedLabel { label: label.clone() })?;
                code.push(Opcode::Push(2).to_byte());
                code.extend_from_slice(&(target as u16).to_be_bytes());
            }
        }
    }
    Ok(code)
}

/// Disassembles bytecode back into one instruction per line (labels are not
/// reconstructed). Useful for debugging and golden tests.
pub fn disassemble(code: &[u8]) -> String {
    let mut out = String::new();
    let mut pc = 0usize;
    while pc < code.len() {
        match Opcode::from_byte(code[pc]) {
            Some(op) => {
                out.push_str(&format!("{pc:04x}: {op}"));
                let imm = op.immediate_len();
                if imm > 0 {
                    let end = (pc + 1 + imm).min(code.len());
                    let hex: String = code[pc + 1..end].iter().map(|b| format!("{b:02x}")).collect();
                    out.push_str(&format!(" 0x{hex}"));
                    pc = end;
                } else {
                    pc += 1;
                }
            }
            None => {
                out.push_str(&format!("{pc:04x}: DB 0x{:02x}", code[pc]));
                pc += 1;
            }
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assembles_simple_sequence() {
        let code = assemble("PUSH1 0x60\nPUSH1 0x40\nMSTORE").unwrap();
        assert_eq!(code, vec![0x60, 0x60, 0x60, 0x40, 0x52]);
    }

    #[test]
    fn bare_push_picks_minimal_width() {
        assert_eq!(assemble("PUSH 0x7").unwrap(), vec![0x60, 0x07]);
        assert_eq!(assemble("PUSH 0x1234").unwrap(), vec![0x61, 0x12, 0x34]);
    }

    #[test]
    fn sized_push_left_pads() {
        assert_eq!(assemble("PUSH4 0x01").unwrap(), vec![0x63, 0, 0, 0, 1]);
    }

    #[test]
    fn sized_push_rejects_oversize_immediate() {
        let err = assemble("PUSH1 0x0102").unwrap_err();
        assert!(matches!(err, AsmError::BadImmediate { .. }));
    }

    #[test]
    fn labels_resolve_forward_and_backward() {
        let source = r#"
        start:
            JUMPDEST
            PUSH @end
            JUMP
        end:
            JUMPDEST
            PUSH @start
            JUMP
        "#;
        let code = assemble(source).unwrap();
        // start = 0, end = 5 (JUMPDEST + PUSH2 xx xx + JUMP).
        assert_eq!(code[1], 0x61);
        assert_eq!(&code[2..4], &[0x00, 0x05]);
        assert_eq!(code[6], 0x61);
        assert_eq!(&code[7..9], &[0x00, 0x00]);
    }

    #[test]
    fn duplicate_label_rejected() {
        let err = assemble("a:\na:\nSTOP").unwrap_err();
        assert_eq!(err, AsmError::DuplicateLabel { label: "a".into() });
    }

    #[test]
    fn undefined_label_rejected() {
        let err = assemble("PUSH @nowhere\nJUMP").unwrap_err();
        assert_eq!(err, AsmError::UndefinedLabel { label: "nowhere".into() });
    }

    #[test]
    fn unknown_mnemonic_rejected() {
        let err = assemble("FROBNICATE").unwrap_err();
        assert!(matches!(err, AsmError::UnknownMnemonic { line: 1, .. }));
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let code = assemble("; header\n\nSTOP // trailing\n").unwrap();
        assert_eq!(code, vec![0x00]);
    }

    #[test]
    fn disassemble_round_trips_mnemonics() {
        let code = assemble("PUSH2 0xbeef\nADD\nSTOP").unwrap();
        let text = disassemble(&code);
        assert!(text.contains("PUSH2 0xbeef"));
        assert!(text.contains("ADD"));
        assert!(text.contains("STOP"));
    }

    #[test]
    fn disassemble_marks_unknown_bytes() {
        assert!(disassemble(&[0xf0]).contains("DB 0xf0")); // CREATE — unsupported
        assert!(disassemble(&[0xf1]).contains("CALL"), "CALL is supported");
    }
}
