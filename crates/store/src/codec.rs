//! Binary codec for the durable store's record payloads.
//!
//! Records hold full blocks (so a recovered node keeps serving
//! `block_by_hash` to its peers), their receipts, and per-block account
//! *write-sets* — post-images of every account the block touched — so
//! recovery re-applies writes instead of re-executing transactions.
//!
//! The encoding is deliberately plain: little-endian fixed-width integers
//! and length-prefixed byte strings, with a leading format tag per record
//! kind. Canonicality does not matter here the way it does for RLP — the
//! commitments these bytes reconstruct (`state_root`, block hashes) are
//! recomputed and checked after decoding, so the codec only has to be
//! unambiguous, not unique.

use bytes::Bytes;
use sereth_crypto::address::Address;
use sereth_crypto::hash::H256;
use sereth_crypto::sig::{PublicKey, Signature};
use sereth_types::block::{Block, BlockHeader};
use sereth_types::receipt::{Log, Receipt, TxStatus};
use sereth_types::transaction::{Transaction, TxPayload};
use sereth_types::u256::U256;

use crate::StoreError;

/// Format tag opening every journal (block) record payload.
pub const BLOCK_RECORD_TAG: u8 = 0xB1;
/// Format tag opening every snapshot record payload.
pub const SNAPSHOT_RECORD_TAG: u8 = 0x51;

/// Contract code as persisted. Native contracts are Rust objects and
/// cannot be serialized; they are recorded by their stable name and
/// re-resolved at recovery against the genesis state (the only place
/// native code is ever installed).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodeRecord {
    /// No code (an externally-owned account).
    None,
    /// EVM-subset bytecode, stored verbatim.
    Bytecode(Bytes),
    /// A native contract, stored by [`name`](CodeRecord::Native).
    Native(String),
}

/// One account's persisted post-image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AccountRecord {
    /// Transactions sent from this account.
    pub nonce: u64,
    /// Balance in wei.
    pub balance: U256,
    /// Executable code, if any.
    pub code: CodeRecord,
    /// Non-zero storage slots, address-ordered.
    pub storage: Vec<(H256, H256)>,
}

/// One journal entry: a block, its receipts, and its account write-set
/// relative to the parent's post-state (`None` = account absent after the
/// block — a tombstone).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockRecord {
    /// The imported block, transactions included.
    pub block: Block,
    /// Receipts from validation replay.
    pub receipts: Vec<Receipt>,
    /// Post-images of every account the block changed, address-ordered.
    pub writes: Vec<(Address, Option<AccountRecord>)>,
}

/// A full checkpoint of the canonical chain at one epoch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotRecord {
    /// Hash of the genesis block — recovery refuses data from a
    /// different chain.
    pub genesis_hash: H256,
    /// Canonical height this snapshot freezes.
    pub epoch: u64,
    /// The canonical block at `epoch`.
    pub block: Block,
    /// That block's receipts.
    pub receipts: Vec<Receipt>,
    /// The full canonical hash list `[genesis..=epoch]`, height-indexed.
    pub canonical: Vec<H256>,
    /// Every account at `epoch`, address-ordered.
    pub accounts: Vec<(Address, AccountRecord)>,
}

/// Sequential byte writer for record payloads.
#[derive(Debug, Default)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    /// An empty encoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// The encoded bytes.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    fn put_u8(&mut self, value: u8) {
        self.buf.push(value);
    }

    fn put_u32(&mut self, value: u32) {
        self.buf.extend_from_slice(&value.to_le_bytes());
    }

    fn put_u64(&mut self, value: u64) {
        self.buf.extend_from_slice(&value.to_le_bytes());
    }

    fn put_h256(&mut self, value: &H256) {
        self.buf.extend_from_slice(value.as_bytes());
    }

    fn put_address(&mut self, value: &Address) {
        self.buf.extend_from_slice(value.as_bytes());
    }

    fn put_u256(&mut self, value: &U256) {
        self.buf.extend_from_slice(&value.to_be_bytes());
    }

    fn put_bytes(&mut self, value: &[u8]) {
        self.put_u32(value.len() as u32);
        self.buf.extend_from_slice(value);
    }
}

/// Sequential byte reader for record payloads.
#[derive(Debug)]
pub struct Decoder<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    /// Reads from the front of `data`.
    pub fn new(data: &'a [u8]) -> Self {
        Self { data, pos: 0 }
    }

    /// Fails unless every byte was consumed.
    pub fn finish(self) -> Result<(), StoreError> {
        if self.pos == self.data.len() {
            Ok(())
        } else {
            Err(StoreError::corrupt("trailing bytes after record"))
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], StoreError> {
        let end = self.pos.checked_add(n).filter(|&end| end <= self.data.len());
        let end = end.ok_or_else(|| StoreError::corrupt("record payload truncated"))?;
        let slice = &self.data[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn take_u8(&mut self) -> Result<u8, StoreError> {
        Ok(self.take(1)?[0])
    }

    fn take_u32(&mut self) -> Result<u32, StoreError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("length checked")))
    }

    fn take_u64(&mut self) -> Result<u64, StoreError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("length checked")))
    }

    fn take_h256(&mut self) -> Result<H256, StoreError> {
        let mut out = [0u8; 32];
        out.copy_from_slice(self.take(32)?);
        Ok(H256::new(out))
    }

    fn take_address(&mut self) -> Result<Address, StoreError> {
        Address::from_slice(self.take(20)?).map_err(|_| StoreError::corrupt("bad address"))
    }

    fn take_u256(&mut self) -> Result<U256, StoreError> {
        let mut out = [0u8; 32];
        out.copy_from_slice(self.take(32)?);
        Ok(U256::from_be_bytes(out))
    }

    fn take_bytes(&mut self) -> Result<&'a [u8], StoreError> {
        let len = self.take_u32()? as usize;
        self.take(len)
    }

    /// A length prefix for a repeated structure, sanity-bounded so a
    /// corrupt count cannot drive a huge allocation (every element is at
    /// least one byte).
    fn take_count(&mut self) -> Result<usize, StoreError> {
        let count = self.take_u32()? as usize;
        if count > self.data.len() - self.pos {
            return Err(StoreError::corrupt("implausible element count"));
        }
        Ok(count)
    }
}

fn put_tx(e: &mut Encoder, tx: &Transaction) {
    let payload = tx.payload();
    e.put_u64(payload.nonce);
    e.put_u64(payload.gas_price);
    e.put_u64(payload.gas_limit);
    match &payload.to {
        Some(to) => {
            e.put_u8(1);
            e.put_address(to);
        }
        None => e.put_u8(0),
    }
    e.put_u256(&payload.value);
    e.put_bytes(&payload.input);
    e.put_address(&tx.sender());
    let signature = tx.signature();
    e.put_h256(signature.pubkey().as_h256());
    e.put_h256(&signature.signed_digest());
    e.put_h256(&signature.tag());
}

fn take_tx(d: &mut Decoder<'_>) -> Result<Transaction, StoreError> {
    let nonce = d.take_u64()?;
    let gas_price = d.take_u64()?;
    let gas_limit = d.take_u64()?;
    let to = match d.take_u8()? {
        0 => None,
        1 => Some(d.take_address()?),
        _ => return Err(StoreError::corrupt("bad callee tag")),
    };
    let value = d.take_u256()?;
    let input = Bytes::copy_from_slice(d.take_bytes()?);
    let payload = TxPayload { nonce, gas_price, gas_limit, to, value, input };
    let sender = d.take_address()?;
    let pubkey = PublicKey::from_h256(d.take_h256()?);
    let signed_digest = d.take_h256()?;
    let tag = d.take_h256()?;
    Ok(Transaction::from_parts(payload, sender, Signature::from_parts(pubkey, signed_digest, tag)))
}

fn put_header(e: &mut Encoder, header: &BlockHeader) {
    e.put_h256(&header.parent_hash);
    e.put_u64(header.number);
    e.put_u64(header.timestamp_ms);
    e.put_address(&header.miner);
    e.put_h256(&header.state_root);
    e.put_h256(&header.tx_root);
    e.put_h256(&header.receipts_root);
    e.put_u64(header.gas_used);
    e.put_u64(header.gas_limit);
}

fn take_header(d: &mut Decoder<'_>) -> Result<BlockHeader, StoreError> {
    Ok(BlockHeader {
        parent_hash: d.take_h256()?,
        number: d.take_u64()?,
        timestamp_ms: d.take_u64()?,
        miner: d.take_address()?,
        state_root: d.take_h256()?,
        tx_root: d.take_h256()?,
        receipts_root: d.take_h256()?,
        gas_used: d.take_u64()?,
        gas_limit: d.take_u64()?,
    })
}

fn put_block(e: &mut Encoder, block: &Block) {
    put_header(e, &block.header);
    e.put_u32(block.transactions.len() as u32);
    for tx in &block.transactions {
        put_tx(e, tx);
    }
}

fn take_block(d: &mut Decoder<'_>) -> Result<Block, StoreError> {
    let header = take_header(d)?;
    let count = d.take_count()?;
    let mut transactions = Vec::with_capacity(count);
    for _ in 0..count {
        transactions.push(take_tx(d)?);
    }
    Ok(Block { header, transactions })
}

fn put_receipt(e: &mut Encoder, receipt: &Receipt) {
    e.put_h256(&receipt.tx_hash);
    e.put_u32(receipt.index);
    e.put_u8(match receipt.status {
        TxStatus::Success => 1,
        TxStatus::Reverted => 0,
        TxStatus::OutOfGas => 2,
    });
    e.put_u64(receipt.gas_used);
    e.put_u32(receipt.logs.len() as u32);
    for log in &receipt.logs {
        e.put_address(&log.address);
        e.put_u32(log.topics.len() as u32);
        for topic in &log.topics {
            e.put_h256(topic);
        }
        e.put_bytes(&log.data);
    }
}

fn take_receipt(d: &mut Decoder<'_>) -> Result<Receipt, StoreError> {
    let tx_hash = d.take_h256()?;
    let index = d.take_u32()?;
    let status = match d.take_u8()? {
        1 => TxStatus::Success,
        0 => TxStatus::Reverted,
        2 => TxStatus::OutOfGas,
        _ => return Err(StoreError::corrupt("bad receipt status")),
    };
    let gas_used = d.take_u64()?;
    let log_count = d.take_count()?;
    let mut logs = Vec::with_capacity(log_count);
    for _ in 0..log_count {
        let address = d.take_address()?;
        let topic_count = d.take_count()?;
        let mut topics = Vec::with_capacity(topic_count);
        for _ in 0..topic_count {
            topics.push(d.take_h256()?);
        }
        let data = Bytes::copy_from_slice(d.take_bytes()?);
        logs.push(Log { address, topics, data });
    }
    Ok(Receipt { tx_hash, index, status, gas_used, logs })
}

fn put_code(e: &mut Encoder, code: &CodeRecord) {
    match code {
        CodeRecord::None => e.put_u8(0),
        CodeRecord::Bytecode(bytecode) => {
            e.put_u8(1);
            e.put_bytes(bytecode);
        }
        CodeRecord::Native(name) => {
            e.put_u8(2);
            e.put_bytes(name.as_bytes());
        }
    }
}

fn take_code(d: &mut Decoder<'_>) -> Result<CodeRecord, StoreError> {
    match d.take_u8()? {
        0 => Ok(CodeRecord::None),
        1 => Ok(CodeRecord::Bytecode(Bytes::copy_from_slice(d.take_bytes()?))),
        2 => {
            let name = std::str::from_utf8(d.take_bytes()?)
                .map_err(|_| StoreError::corrupt("bad native contract name"))?;
            Ok(CodeRecord::Native(name.to_string()))
        }
        _ => Err(StoreError::corrupt("bad code tag")),
    }
}

fn put_account(e: &mut Encoder, account: &AccountRecord) {
    e.put_u64(account.nonce);
    e.put_u256(&account.balance);
    put_code(e, &account.code);
    e.put_u32(account.storage.len() as u32);
    for (key, value) in &account.storage {
        e.put_h256(key);
        e.put_h256(value);
    }
}

fn take_account(d: &mut Decoder<'_>) -> Result<AccountRecord, StoreError> {
    let nonce = d.take_u64()?;
    let balance = d.take_u256()?;
    let code = take_code(d)?;
    let slot_count = d.take_count()?;
    let mut storage = Vec::with_capacity(slot_count);
    for _ in 0..slot_count {
        storage.push((d.take_h256()?, d.take_h256()?));
    }
    Ok(AccountRecord { nonce, balance, code, storage })
}

impl BlockRecord {
    /// Encodes this record as one journal payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Encoder::new();
        e.put_u8(BLOCK_RECORD_TAG);
        put_block(&mut e, &self.block);
        e.put_u32(self.receipts.len() as u32);
        for receipt in &self.receipts {
            put_receipt(&mut e, receipt);
        }
        e.put_u32(self.writes.len() as u32);
        for (address, post) in &self.writes {
            e.put_address(address);
            match post {
                Some(account) => {
                    e.put_u8(1);
                    put_account(&mut e, account);
                }
                None => e.put_u8(0),
            }
        }
        e.finish()
    }

    /// Decodes a payload produced by [`BlockRecord::encode`].
    ///
    /// # Errors
    ///
    /// [`StoreError::Corrupt`] on any malformed byte.
    pub fn decode(payload: &[u8]) -> Result<Self, StoreError> {
        let mut d = Decoder::new(payload);
        if d.take_u8()? != BLOCK_RECORD_TAG {
            return Err(StoreError::corrupt("not a block record"));
        }
        let block = take_block(&mut d)?;
        let receipt_count = d.take_count()?;
        let mut receipts = Vec::with_capacity(receipt_count);
        for _ in 0..receipt_count {
            receipts.push(take_receipt(&mut d)?);
        }
        let write_count = d.take_count()?;
        let mut writes = Vec::with_capacity(write_count);
        for _ in 0..write_count {
            let address = d.take_address()?;
            let post = match d.take_u8()? {
                0 => None,
                1 => Some(take_account(&mut d)?),
                _ => return Err(StoreError::corrupt("bad write tag")),
            };
            writes.push((address, post));
        }
        d.finish()?;
        Ok(Self { block, receipts, writes })
    }

    /// The epoch (block height) this record belongs to.
    pub fn epoch(&self) -> u64 {
        self.block.number()
    }
}

impl SnapshotRecord {
    /// Encodes this snapshot as one record payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Encoder::new();
        e.put_u8(SNAPSHOT_RECORD_TAG);
        e.put_h256(&self.genesis_hash);
        e.put_u64(self.epoch);
        put_block(&mut e, &self.block);
        e.put_u32(self.receipts.len() as u32);
        for receipt in &self.receipts {
            put_receipt(&mut e, receipt);
        }
        e.put_u32(self.canonical.len() as u32);
        for hash in &self.canonical {
            e.put_h256(hash);
        }
        e.put_u64(self.accounts.len() as u64);
        for (address, account) in &self.accounts {
            e.put_address(address);
            put_account(&mut e, account);
        }
        e.finish()
    }

    /// Decodes a payload produced by [`SnapshotRecord::encode`].
    ///
    /// # Errors
    ///
    /// [`StoreError::Corrupt`] on any malformed byte.
    pub fn decode(payload: &[u8]) -> Result<Self, StoreError> {
        let mut d = Decoder::new(payload);
        if d.take_u8()? != SNAPSHOT_RECORD_TAG {
            return Err(StoreError::corrupt("not a snapshot record"));
        }
        let genesis_hash = d.take_h256()?;
        let epoch = d.take_u64()?;
        let block = take_block(&mut d)?;
        let receipt_count = d.take_count()?;
        let mut receipts = Vec::with_capacity(receipt_count);
        for _ in 0..receipt_count {
            receipts.push(take_receipt(&mut d)?);
        }
        let canonical_count = d.take_count()?;
        let mut canonical = Vec::with_capacity(canonical_count);
        for _ in 0..canonical_count {
            canonical.push(d.take_h256()?);
        }
        let account_count = d.take_u64()? as usize;
        let mut accounts = Vec::with_capacity(account_count.min(1 << 20));
        for _ in 0..account_count {
            let address = d.take_address()?;
            accounts.push((address, take_account(&mut d)?));
        }
        d.finish()?;
        Ok(Self { genesis_hash, epoch, block, receipts, canonical, accounts })
    }
}

#[cfg(test)]
pub(crate) mod tests_support {
    //! Minimal fixtures shared by this crate's unit tests.

    use super::*;

    fn tiny_block(epoch: u64) -> Block {
        Block {
            header: BlockHeader {
                parent_hash: H256::from_low_u64(epoch.wrapping_sub(1)),
                number: epoch,
                timestamp_ms: epoch * 1000,
                miner: Address::from_low_u64(1),
                state_root: H256::from_low_u64(epoch + 100),
                tx_root: Block::compute_tx_root(&[]),
                receipts_root: Block::compute_receipts_root(&[]),
                gas_used: 0,
                gas_limit: 8_000_000,
            },
            transactions: vec![],
        }
    }

    pub(crate) fn tiny_block_record(epoch: u64) -> BlockRecord {
        BlockRecord {
            block: tiny_block(epoch),
            receipts: vec![],
            writes: vec![(
                Address::from_low_u64(epoch),
                Some(AccountRecord {
                    nonce: epoch,
                    balance: U256::from(epoch),
                    code: CodeRecord::None,
                    storage: vec![],
                }),
            )],
        }
    }

    pub(crate) fn tiny_snapshot(epoch: u64) -> SnapshotRecord {
        SnapshotRecord {
            genesis_hash: H256::from_low_u64(900),
            epoch,
            block: tiny_block(epoch),
            receipts: vec![],
            canonical: (0..=epoch).map(H256::from_low_u64).collect(),
            accounts: vec![],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sereth_crypto::sig::SecretKey;

    fn sample_tx(label: u64, nonce: u64) -> Transaction {
        Transaction::sign(
            TxPayload {
                nonce,
                gas_price: 3,
                gas_limit: 60_000,
                to: label.is_multiple_of(2).then(|| Address::from_low_u64(label)),
                value: U256::from(17u64 + label),
                input: Bytes::from(vec![0xab; label as usize % 5]),
            },
            &SecretKey::from_label(label),
        )
    }

    fn sample_block() -> Block {
        let transactions = vec![sample_tx(1, 0), sample_tx(2, 4)];
        let header = BlockHeader {
            parent_hash: H256::keccak(b"parent"),
            number: 9,
            timestamp_ms: 1234,
            miner: Address::from_low_u64(77),
            state_root: H256::keccak(b"state"),
            tx_root: Block::compute_tx_root(&transactions),
            receipts_root: H256::keccak(b"receipts"),
            gas_used: 42_000,
            gas_limit: 8_000_000,
        };
        Block { header, transactions }
    }

    fn sample_record() -> BlockRecord {
        let block = sample_block();
        let receipts = vec![Receipt {
            tx_hash: block.transactions[0].hash(),
            index: 0,
            status: TxStatus::Success,
            gas_used: 21_000,
            logs: vec![Log {
                address: Address::from_low_u64(5),
                topics: vec![H256::keccak(b"SetOk")],
                data: Bytes::from_static(&[1, 2, 3]),
            }],
        }];
        let writes = vec![
            (
                Address::from_low_u64(1),
                Some(AccountRecord {
                    nonce: 1,
                    balance: U256::from(500u64),
                    code: CodeRecord::Bytecode(Bytes::from_static(&[0x60, 0x00])),
                    storage: vec![(H256::from_low_u64(1), H256::from_low_u64(9))],
                }),
            ),
            (Address::from_low_u64(2), None),
            (
                Address::from_low_u64(3),
                Some(AccountRecord {
                    nonce: 0,
                    balance: U256::ZERO,
                    code: CodeRecord::Native("market".to_string()),
                    storage: vec![],
                }),
            ),
        ];
        BlockRecord { block, receipts, writes }
    }

    #[test]
    fn block_record_round_trips() {
        let record = sample_record();
        let decoded = BlockRecord::decode(&record.encode()).unwrap();
        assert_eq!(decoded, record);
        assert_eq!(decoded.block.hash(), record.block.hash(), "hash survives the codec");
        assert!(decoded.block.transactions[0].verify_signature(), "signatures survive the codec");
        assert_eq!(decoded.epoch(), 9);
    }

    #[test]
    fn snapshot_record_round_trips() {
        let record = sample_record();
        let snapshot = SnapshotRecord {
            genesis_hash: H256::keccak(b"genesis"),
            epoch: 9,
            block: record.block.clone(),
            receipts: record.receipts.clone(),
            canonical: (0..10).map(H256::from_low_u64).collect(),
            accounts: record
                .writes
                .iter()
                .filter_map(|(address, post)| post.clone().map(|account| (*address, account)))
                .collect(),
        };
        let decoded = SnapshotRecord::decode(&snapshot.encode()).unwrap();
        assert_eq!(decoded, snapshot);
    }

    #[test]
    fn truncated_or_tampered_payloads_error_instead_of_panicking() {
        let encoded = sample_record().encode();
        for cut in 0..encoded.len() {
            assert!(BlockRecord::decode(&encoded[..cut]).is_err(), "cut at {cut}");
        }
        let mut wrong_tag = encoded.clone();
        wrong_tag[0] = SNAPSHOT_RECORD_TAG;
        assert!(BlockRecord::decode(&wrong_tag).is_err());
        let mut trailing = encoded;
        trailing.push(0);
        assert!(BlockRecord::decode(&trailing).is_err());
    }
}
