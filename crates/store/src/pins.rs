//! Epoch pinning: the MVCC read-side contract between state views and GC.
//!
//! Every epoch (canonical block height) a reader holds a view of is
//! registered here with a refcount. Garbage collection — on-disk segment
//! and snapshot deletion as well as in-memory version pruning — computes
//! its floor as `min(pinned epochs, head - history)`, so **a pinned epoch
//! is never reclaimed**: the view stays byte-frozen (copy-on-write already
//! guarantees that) *and* the store keeps being able to serve that epoch.
//!
//! This is the redb read-transaction idiom (SNIPPETS.md §3): pinning is two
//! atomic ops plus one short mutex on first pin of an epoch, but a pin held
//! forever blocks compaction forever — keep read handles short-lived or
//! accept the retained history.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

/// The shared pin table. Cloning shares the table (both clones see and
/// affect the same pins), which is how a `ChainStore` and its backend
/// consult one set of guards.
#[derive(Debug, Clone, Default)]
pub struct EpochPins {
    epochs: Arc<Mutex<BTreeMap<u64, Arc<AtomicU64>>>>,
}

impl EpochPins {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Pins `epoch`, returning the guard that holds the pin. Cloning the
    /// guard re-pins (one atomic increment); dropping every clone unpins.
    pub fn pin(&self, epoch: u64) -> EpochGuard {
        let cell = Arc::clone(self.epochs.lock().entry(epoch).or_default());
        cell.fetch_add(1, Ordering::Relaxed);
        EpochGuard { epoch, cell }
    }

    /// The lowest currently-pinned epoch, sweeping out released entries.
    pub fn min_pinned(&self) -> Option<u64> {
        let mut epochs = self.epochs.lock();
        epochs.retain(|_, cell| cell.load(Ordering::Relaxed) > 0);
        epochs.keys().next().copied()
    }

    /// `true` while any guard pins `epoch`.
    pub fn is_pinned(&self, epoch: u64) -> bool {
        self.epochs.lock().get(&epoch).is_some_and(|cell| cell.load(Ordering::Relaxed) > 0)
    }

    /// Number of distinct epochs currently pinned.
    pub fn pinned_epochs(&self) -> usize {
        let mut epochs = self.epochs.lock();
        epochs.retain(|_, cell| cell.load(Ordering::Relaxed) > 0);
        epochs.len()
    }
}

/// A refcounted hold on one epoch. The epoch cannot be garbage-collected
/// while any clone of this guard is alive.
#[derive(Debug)]
pub struct EpochGuard {
    epoch: u64,
    cell: Arc<AtomicU64>,
}

impl EpochGuard {
    /// The pinned epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }
}

impl Clone for EpochGuard {
    fn clone(&self) -> Self {
        self.cell.fetch_add(1, Ordering::Relaxed);
        Self { epoch: self.epoch, cell: Arc::clone(&self.cell) }
    }
}

impl Drop for EpochGuard {
    fn drop(&mut self) {
        self.cell.fetch_sub(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pin_clone_drop_refcounts() {
        let pins = EpochPins::new();
        assert_eq!(pins.min_pinned(), None);
        let a = pins.pin(5);
        let b = a.clone();
        let c = pins.pin(3);
        assert_eq!(pins.min_pinned(), Some(3));
        assert!(pins.is_pinned(5));
        drop(c);
        assert_eq!(pins.min_pinned(), Some(5));
        drop(a);
        assert!(pins.is_pinned(5), "clone still holds the pin");
        assert_eq!(b.epoch(), 5);
        drop(b);
        assert_eq!(pins.min_pinned(), None);
        assert_eq!(pins.pinned_epochs(), 0);
    }

    #[test]
    fn clones_of_the_table_share_pins() {
        let pins = EpochPins::new();
        let shared = pins.clone();
        let guard = pins.pin(7);
        assert!(shared.is_pinned(7));
        drop(guard);
        assert!(!shared.is_pinned(7));
    }

    #[test]
    fn pins_survive_threads() {
        let pins = EpochPins::new();
        let guard = pins.pin(2);
        let handle = {
            let pins = pins.clone();
            std::thread::spawn(move || {
                let inner = pins.pin(1);
                assert_eq!(pins.min_pinned(), Some(1));
                drop(inner);
            })
        };
        handle.join().unwrap();
        assert_eq!(pins.min_pinned(), Some(2));
        drop(guard);
    }
}
