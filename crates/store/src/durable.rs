//! The durable engine: a directory of snapshot files and segment-rotated
//! append-only journal files.
//!
//! ```text
//! <dir>/snapshot-0000000000000000.snap   full state at epoch 0 (genesis)
//! <dir>/snapshot-0000000000000512.snap   full state at epoch 512
//! <dir>/journal-00000003.seg             block records, append-only
//! <dir>/journal-00000004.seg             … rotated past `segment_bytes`
//! ```
//!
//! Snapshots are written atomically (temp file + rename); journal appends
//! are a single framed [`write_record`] call, so a crash leaves at most one
//! torn record at the tail of the newest segment. Recovery picks the
//! newest decodable snapshot, replays every intact journal record after
//! it, truncates the torn tail, and discards anything beyond the tear.
//!
//! GC runs when a snapshot lands: with floor `F = min(pinned epochs,
//! head − history)`, the newest snapshot at or below `F` is chosen as the
//! retention base; older snapshots and sealed segments whose records all
//! precede the base are deleted. A pinned epoch therefore always stays
//! recoverable.

use std::fs::{self, File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

use crate::codec::{BlockRecord, SnapshotRecord};
use crate::pins::EpochPins;
use crate::record::{write_record, RecordScanner};
use crate::{StateBackend, StoreError};

/// Tuning for a [`DurableStore`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DurableOptions {
    /// Rotate the journal to a fresh segment once the active one reaches
    /// this many bytes.
    pub segment_bytes: u64,
    /// Write a snapshot (and run GC) every this many canonical blocks.
    pub snapshot_every: u64,
    /// GC keeps at least this many epochs of history behind the head —
    /// the store's reorg-depth bound, and the window `state_view_at`
    /// keeps serving in O(1).
    pub history: u64,
    /// `fsync` every journal append and snapshot. Off by default: the
    /// crash model this store defends against is process death (the OS
    /// page cache survives); power-loss durability is one flag away.
    pub fsync: bool,
}

impl Default for DurableOptions {
    fn default() -> Self {
        Self { segment_bytes: 1 << 20, snapshot_every: 256, history: 1024, fsync: false }
    }
}

/// What [`DurableStore::open`] found on disk.
#[derive(Debug)]
pub struct Recovered {
    /// The newest decodable snapshot, if the directory was not fresh.
    pub snapshot: Option<SnapshotRecord>,
    /// Every intact journal record, in append order.
    pub blocks: Vec<BlockRecord>,
}

#[derive(Debug)]
struct SegmentInfo {
    seq: u64,
    path: PathBuf,
    /// Highest epoch of any record in the segment; a segment is deletable
    /// once the retention base passes this.
    max_epoch: u64,
}

/// The snapshot + journal persistence engine. One instance owns one
/// directory; it implements [`StateBackend`] for `ChainStore::open`.
#[derive(Debug)]
pub struct DurableStore {
    dir: PathBuf,
    options: DurableOptions,
    pins: EpochPins,
    active: File,
    active_seq: u64,
    active_len: u64,
    active_max_epoch: u64,
    sealed: Vec<SegmentInfo>,
    /// Epochs of on-disk snapshots, ascending.
    snapshots: Vec<u64>,
}

fn segment_path(dir: &Path, seq: u64) -> PathBuf {
    dir.join(format!("journal-{seq:08}.seg"))
}

fn snapshot_path(dir: &Path, epoch: u64) -> PathBuf {
    dir.join(format!("snapshot-{epoch:016}.snap"))
}

fn parse_numbered(name: &str, prefix: &str, suffix: &str) -> Option<u64> {
    name.strip_prefix(prefix)?.strip_suffix(suffix)?.parse().ok()
}

impl DurableStore {
    /// Opens (or initialises) the store in `dir`, returning the engine and
    /// whatever intact state it recovered. A fresh directory recovers
    /// nothing; the caller seeds it with a genesis snapshot.
    ///
    /// Torn tails are truncated in place and segments beyond the tear are
    /// deleted, so a recovered directory is clean for appending.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on filesystem failures; [`StoreError::Corrupt`]
    /// when journal data exists but no snapshot is decodable (nothing to
    /// replay onto).
    pub fn open(dir: impl Into<PathBuf>, options: DurableOptions) -> Result<(Self, Recovered), StoreError> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;

        let mut segment_files: Vec<(u64, PathBuf)> = Vec::new();
        let mut snapshot_files: Vec<(u64, PathBuf)> = Vec::new();
        for entry in fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let Some(name) = path.file_name().and_then(|n| n.to_str()) else { continue };
            if let Some(seq) = parse_numbered(name, "journal-", ".seg") {
                segment_files.push((seq, path));
            } else if let Some(epoch) = parse_numbered(name, "snapshot-", ".snap") {
                snapshot_files.push((epoch, path));
            } else if name.ends_with(".tmp") {
                // A snapshot the crash interrupted before its rename.
                let _ = fs::remove_file(&path);
            }
        }
        segment_files.sort();
        snapshot_files.sort();

        // Newest decodable snapshot wins; corrupt ones are deleted.
        let mut snapshot = None;
        let mut snapshots = Vec::new();
        for (epoch, path) in snapshot_files.into_iter().rev() {
            if snapshot.is_some() {
                snapshots.push(epoch);
                continue;
            }
            let usable = fs::read(&path).ok().and_then(|bytes| {
                let mut scanner = RecordScanner::new(&bytes);
                let payload = scanner.next()?;
                SnapshotRecord::decode(payload).ok().filter(|snap| snap.epoch == epoch)
            });
            match usable {
                Some(snap) => {
                    snapshot = Some(snap);
                    snapshots.push(epoch);
                }
                None => {
                    let _ = fs::remove_file(&path);
                }
            }
        }
        snapshots.sort_unstable();

        // Replay segments in order; the first tear ends the durable prefix.
        let mut blocks = Vec::new();
        let mut sealed = Vec::new();
        let mut torn_at: Option<usize> = None;
        for (index, (seq, path)) in segment_files.iter().enumerate() {
            if torn_at.is_some() {
                let _ = fs::remove_file(path);
                continue;
            }
            let bytes = fs::read(path)?;
            let mut scanner = RecordScanner::new(&bytes);
            let mut max_epoch = 0u64;
            let mut clean = 0usize;
            while let Some(payload) = scanner.next() {
                match BlockRecord::decode(payload) {
                    Ok(record) => {
                        max_epoch = max_epoch.max(record.epoch());
                        blocks.push(record);
                        clean = scanner.clean_len();
                    }
                    // A checksum-valid but undecodable record: corruption
                    // past the crash model. Treat like a tear at its start.
                    Err(_) => break,
                }
            }
            if clean < bytes.len() {
                let file = OpenOptions::new().write(true).open(path)?;
                file.set_len(clean as u64)?;
                torn_at = Some(index);
            }
            sealed.push(SegmentInfo { seq: *seq, path: path.clone(), max_epoch });
        }

        if snapshot.is_none() && !blocks.is_empty() {
            return Err(StoreError::corrupt("journal records exist but no snapshot is decodable"));
        }

        // The last surviving segment resumes as the active one (the tear,
        // if any, was truncated away); a fresh directory starts at seq 0.
        let (active_seq, active_len, active_max_epoch) = match sealed.pop() {
            Some(last) => {
                let len = fs::metadata(&last.path)?.len();
                (last.seq, len, last.max_epoch)
            }
            None => (0, 0, 0),
        };
        let active = OpenOptions::new().create(true).append(true).open(segment_path(&dir, active_seq))?;

        let store = Self {
            dir,
            options,
            pins: EpochPins::new(),
            active,
            active_seq,
            active_len,
            active_max_epoch,
            sealed,
            snapshots,
        };
        Ok((store, Recovered { snapshot, blocks }))
    }

    /// The directory this store owns.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The options this store runs with.
    pub fn options(&self) -> &DurableOptions {
        &self.options
    }

    /// Epochs of the snapshots currently on disk, ascending.
    pub fn snapshot_epochs(&self) -> &[u64] {
        &self.snapshots
    }

    /// Number of journal segment files currently on disk.
    pub fn segment_count(&self) -> usize {
        self.sealed.len() + 1
    }

    fn rotate(&mut self) -> Result<(), StoreError> {
        if self.active_len == 0 {
            return Ok(());
        }
        self.active.flush()?;
        self.sealed.push(SegmentInfo {
            seq: self.active_seq,
            path: segment_path(&self.dir, self.active_seq),
            max_epoch: self.active_max_epoch,
        });
        self.active_seq += 1;
        self.active = OpenOptions::new()
            .create_new(true)
            .append(true)
            .open(segment_path(&self.dir, self.active_seq))?;
        self.active_len = 0;
        self.active_max_epoch = 0;
        Ok(())
    }

    fn append(&mut self, record: &BlockRecord) -> Result<(), StoreError> {
        if self.active_len >= self.options.segment_bytes {
            self.rotate()?;
        }
        let payload = record.encode();
        write_record(&mut self.active, &payload)?;
        if self.options.fsync {
            self.active.sync_data()?;
        }
        self.active_len += (crate::record::RECORD_HEADER_BYTES + payload.len()) as u64;
        self.active_max_epoch = self.active_max_epoch.max(record.epoch());
        Ok(())
    }

    fn write_snapshot(&mut self, snapshot: &SnapshotRecord) -> Result<(), StoreError> {
        let tmp = self.dir.join(format!("snapshot-{:016}.tmp", snapshot.epoch));
        let mut file = File::create(&tmp)?;
        write_record(&mut file, &snapshot.encode())?;
        file.sync_all()?;
        drop(file);
        fs::rename(&tmp, snapshot_path(&self.dir, snapshot.epoch))?;
        if let Err(index) = self.snapshots.binary_search(&snapshot.epoch) {
            self.snapshots.insert(index, snapshot.epoch);
        }
        Ok(())
    }

    /// Deletes snapshots and sealed segments no longer needed to recover
    /// any epoch ≥ `keep_epoch`, returning the retention base actually
    /// chosen (the newest snapshot at or below `keep_epoch`).
    fn compact(&mut self, keep_epoch: u64) -> u64 {
        let base = self
            .snapshots
            .iter()
            .copied()
            .filter(|&epoch| epoch <= keep_epoch)
            .max()
            .or_else(|| self.snapshots.first().copied())
            .unwrap_or(0);
        self.snapshots.retain(|&epoch| {
            if epoch >= base {
                return true;
            }
            let _ = fs::remove_file(snapshot_path(&self.dir, epoch));
            false
        });
        self.sealed.retain(|segment| {
            if segment.max_epoch > base {
                return true;
            }
            let _ = fs::remove_file(&segment.path);
            false
        });
        base
    }
}

impl StateBackend for DurableStore {
    fn record_block(&mut self, record: &BlockRecord) -> Result<(), StoreError> {
        self.append(record)
    }

    fn wants_snapshot(&self, head_epoch: u64) -> bool {
        match self.snapshots.last() {
            None => true,
            Some(&last) => head_epoch >= last + self.options.snapshot_every,
        }
    }

    fn apply_snapshot(&mut self, snapshot: SnapshotRecord) -> Result<Option<u64>, StoreError> {
        let floor = snapshot
            .epoch
            .saturating_sub(self.options.history)
            .min(self.pins.min_pinned().unwrap_or(u64::MAX));
        self.write_snapshot(&snapshot)?;
        // Seal the active segment so everything journaled before this
        // snapshot lives in deletable (sealed) segments.
        self.rotate()?;
        let base = self.compact(floor);
        Ok(Some(base))
    }

    fn pins(&self) -> &EpochPins {
        &self.pins
    }

    fn is_durable(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::tests_support::{tiny_block_record, tiny_snapshot};
    use crate::scratch_dir;

    fn small_options() -> DurableOptions {
        DurableOptions { segment_bytes: 512, snapshot_every: 4, history: 2, fsync: false }
    }

    #[test]
    fn fresh_directory_recovers_nothing_and_accepts_appends() {
        let dir = scratch_dir("fresh");
        let (mut store, recovered) = DurableStore::open(&dir, small_options()).unwrap();
        assert!(recovered.snapshot.is_none());
        assert!(recovered.blocks.is_empty());
        store.apply_snapshot(tiny_snapshot(0)).unwrap();
        for epoch in 1..=3 {
            store.record_block(&tiny_block_record(epoch)).unwrap();
        }
        drop(store);

        let (_store, recovered) = DurableStore::open(&dir, small_options()).unwrap();
        let snapshot = recovered.snapshot.expect("snapshot 0 persisted");
        assert_eq!(snapshot.epoch, 0);
        assert_eq!(recovered.blocks.len(), 3);
        assert_eq!(recovered.blocks[2].epoch(), 3);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn segments_rotate_and_compaction_deletes_stale_files() {
        let dir = scratch_dir("rotate");
        let mut options = small_options();
        options.segment_bytes = 1; // rotate on every append
        let (mut store, _) = DurableStore::open(&dir, options.clone()).unwrap();
        store.apply_snapshot(tiny_snapshot(0)).unwrap();
        for epoch in 1..=6 {
            store.record_block(&tiny_block_record(epoch)).unwrap();
        }
        assert!(store.segment_count() >= 6, "one record per segment");

        // Snapshot at 6, history 2 → floor 4, and the only snapshot at or
        // below 4 is genesis: nothing can be deleted yet.
        let base = store.apply_snapshot(tiny_snapshot(6)).unwrap().unwrap();
        assert_eq!(base, 0);
        assert_eq!(store.snapshot_epochs(), &[0, 6]);
        assert!(segment_path(&dir, 0).exists(), "early segments retained while base is 0");

        // Snapshot at 12, history 2 → floor 10 → retention base moves to
        // the epoch-6 snapshot: snapshot 0 and every segment whose records
        // all precede epoch 6 go away.
        for epoch in 7..=12 {
            store.record_block(&tiny_block_record(epoch)).unwrap();
        }
        let base = store.apply_snapshot(tiny_snapshot(12)).unwrap().unwrap();
        assert_eq!(base, 6);
        assert_eq!(store.snapshot_epochs(), &[6, 12]);
        assert!(!segment_path(&dir, 0).exists(), "stale segments deleted");
        assert!(!snapshot_path(&dir, 0).exists());

        // Reopen: recovery starts from the retained base.
        drop(store);
        let (_store, recovered) = DurableStore::open(&dir, options).unwrap();
        assert_eq!(recovered.snapshot.unwrap().epoch, 12);
        assert!(recovered.blocks.iter().all(|record| record.epoch() > 6));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn pinned_epoch_holds_back_compaction() {
        let dir = scratch_dir("pinned");
        let (mut store, _) = DurableStore::open(&dir, small_options()).unwrap();
        store.apply_snapshot(tiny_snapshot(0)).unwrap();
        let guard = store.pins().pin(0);
        for epoch in 1..=5 {
            store.record_block(&tiny_block_record(epoch)).unwrap();
        }
        let base = store.apply_snapshot(tiny_snapshot(5)).unwrap().unwrap();
        assert_eq!(base, 0, "pin at 0 holds the retention base at snapshot 0");
        assert_eq!(store.snapshot_epochs(), &[0, 5]);
        drop(guard);

        for epoch in 6..=9 {
            store.record_block(&tiny_block_record(epoch)).unwrap();
        }
        let base = store.apply_snapshot(tiny_snapshot(9)).unwrap().unwrap();
        assert_eq!(base, 5, "unpinned: floor 9-2=7 → newest snapshot ≤ 7 is 5");
        assert_eq!(store.snapshot_epochs(), &[5, 9]);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_truncated_and_later_segments_discarded() {
        let dir = scratch_dir("torn");
        // One big segment so all four records share journal-00000000.seg.
        let options = DurableOptions { segment_bytes: 1 << 20, ..small_options() };
        let small_options = move || options.clone();
        let (mut store, _) = DurableStore::open(&dir, small_options()).unwrap();
        store.apply_snapshot(tiny_snapshot(0)).unwrap();
        for epoch in 1..=4 {
            store.record_block(&tiny_block_record(epoch)).unwrap();
        }
        drop(store);

        // Tear the tail: chop the last 3 bytes off the active segment.
        let seg = segment_path(&dir, 0);
        let len = fs::metadata(&seg).unwrap().len();
        let file = OpenOptions::new().write(true).open(&seg).unwrap();
        file.set_len(len - 3).unwrap();
        drop(file);

        let (mut store, recovered) = DurableStore::open(&dir, small_options()).unwrap();
        assert_eq!(recovered.blocks.len(), 3, "record 4 was torn");
        // The truncated file accepts appends cleanly.
        store.record_block(&tiny_block_record(4)).unwrap();
        drop(store);
        let (_store, recovered) = DurableStore::open(&dir, small_options()).unwrap();
        assert_eq!(recovered.blocks.len(), 4);
        assert_eq!(recovered.blocks[3].epoch(), 4);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn journal_without_snapshot_is_corrupt() {
        let dir = scratch_dir("no-snap");
        let (mut store, _) = DurableStore::open(&dir, small_options()).unwrap();
        store.apply_snapshot(tiny_snapshot(0)).unwrap();
        store.record_block(&tiny_block_record(1)).unwrap();
        drop(store);
        for epoch in fs::read_dir(&dir).unwrap() {
            let path = epoch.unwrap().path();
            if path.extension().is_some_and(|ext| ext == "snap") {
                fs::remove_file(path).unwrap();
            }
        }
        assert!(matches!(DurableStore::open(&dir, small_options()), Err(StoreError::Corrupt(_))));
        let _ = fs::remove_dir_all(&dir);
    }
}
