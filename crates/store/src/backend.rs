//! The redesigned storage seam: [`StateBackend`] is what `ChainStore`
//! persists through, selected by `StoreConfig` at `ChainStore::open`.
//!
//! Two implementations ship: [`InMemoryBackend`] (today's COW map —
//! nothing persisted, nothing pruned) and
//! [`DurableStore`](crate::DurableStore) (snapshot + journal). Both expose
//! the same [`EpochPins`] table, so epoch-pinned reads behave identically
//! whichever backend a node runs on.

use crate::codec::{BlockRecord, SnapshotRecord};
use crate::pins::EpochPins;
use crate::StoreError;

/// Where imported blocks and their write-sets go.
///
/// The chain store drives this after every import: [`record_block`] for
/// each newly stored block, then — if [`wants_snapshot`] says the cadence
/// is due — [`apply_snapshot`] with a freshly built checkpoint, whose
/// return value is the epoch floor the caller may prune its in-memory
/// versions down to (GC already honoured the pin table below it).
///
/// [`record_block`]: StateBackend::record_block
/// [`wants_snapshot`]: StateBackend::wants_snapshot
/// [`apply_snapshot`]: StateBackend::apply_snapshot
pub trait StateBackend: std::fmt::Debug + Send {
    /// Persists one imported block and its account write-set.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] when the journal append fails.
    fn record_block(&mut self, record: &BlockRecord) -> Result<(), StoreError>;

    /// `true` when the backend wants a snapshot at `head_epoch` (cadence
    /// due, or nothing checkpointed yet).
    fn wants_snapshot(&self, head_epoch: u64) -> bool;

    /// Checkpoints `snapshot` and garbage-collects, returning the epoch
    /// floor below which the caller may prune in-memory state (`None` when
    /// the backend retains everything).
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] when writing the snapshot fails.
    fn apply_snapshot(&mut self, snapshot: SnapshotRecord) -> Result<Option<u64>, StoreError>;

    /// The epoch-pin table GC consults — shared with every
    /// [`EpochGuard`](crate::EpochGuard) handed out for this store.
    fn pins(&self) -> &EpochPins;

    /// `true` when the backend persists to disk (drives whether the chain
    /// store extracts write-sets at import time).
    fn is_durable(&self) -> bool;
}

/// The non-persistent backend: state lives purely in the COW account map,
/// exactly as before the durable store existed. Recording is a no-op and
/// no snapshot is ever requested, so nothing is ever pruned.
#[derive(Debug, Default)]
pub struct InMemoryBackend {
    pins: EpochPins,
}

impl InMemoryBackend {
    /// A fresh in-memory backend.
    pub fn new() -> Self {
        Self::default()
    }
}

impl StateBackend for InMemoryBackend {
    fn record_block(&mut self, _record: &BlockRecord) -> Result<(), StoreError> {
        Ok(())
    }

    fn wants_snapshot(&self, _head_epoch: u64) -> bool {
        false
    }

    fn apply_snapshot(&mut self, _snapshot: SnapshotRecord) -> Result<Option<u64>, StoreError> {
        Ok(None)
    }

    fn pins(&self) -> &EpochPins {
        &self.pins
    }

    fn is_durable(&self) -> bool {
        false
    }
}
