//! The durable state backend: periodic snapshots plus an append-only
//! journal of per-block account write-sets, with segment rotation, crash
//! recovery by torn-tail detection, and MVCC epoch pinning so garbage
//! collection never reclaims a version a reader still holds.
//!
//! * [`record`] — length-prefixed, checksummed record framing and the
//!   [`FaultWriter`] crash-injection wrapper;
//! * [`codec`] — binary payloads: [`BlockRecord`] (block + receipts +
//!   write-set) and [`SnapshotRecord`] (full state at one epoch);
//! * [`durable`] — the [`DurableStore`] engine (journal segments,
//!   atomic snapshots, pin-aware GC);
//! * [`pins`] — the [`EpochPins`] refcount table and [`EpochGuard`];
//! * [`backend`] — the [`StateBackend`] trait `ChainStore::open` selects
//!   an implementation of, with [`InMemoryBackend`] as the non-persistent
//!   one.
//!
//! This crate is deliberately chain-agnostic: it knows blocks, receipts,
//! and account images, but not execution or fork choice. `sereth-chain`
//! owns the conversion between its live `Account`/`StateDb` types and the
//! records here, and drives recovery replay.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backend;
pub mod codec;
pub mod durable;
pub mod pins;
pub mod record;

use std::path::PathBuf;

pub use backend::{InMemoryBackend, StateBackend};
pub use codec::{AccountRecord, BlockRecord, CodeRecord, SnapshotRecord};
pub use durable::{DurableOptions, DurableStore, Recovered};
pub use pins::{EpochGuard, EpochPins};
pub use record::{encode_record, FaultWriter, RecordScanner};

use sereth_crypto::hash::H256;

/// Errors from the durable store.
///
/// I/O errors are carried as strings so the type stays `Clone + PartialEq`
/// (import outcomes holding one remain comparable in tests).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// A filesystem operation failed.
    Io(String),
    /// On-disk data failed a checksum, decode, or integrity check.
    Corrupt(String),
    /// The directory belongs to a chain with a different genesis block.
    GenesisMismatch {
        /// Genesis hash recorded on disk.
        on_disk: H256,
        /// Genesis hash of the chain being opened.
        expected: H256,
    },
}

impl StoreError {
    /// A [`StoreError::Corrupt`] with the given context.
    pub fn corrupt(message: impl Into<String>) -> Self {
        Self::Corrupt(message.into())
    }
}

impl From<std::io::Error> for StoreError {
    fn from(err: std::io::Error) -> Self {
        Self::Io(err.to_string())
    }
}

impl core::fmt::Display for StoreError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::Io(message) => write!(f, "store i/o error: {message}"),
            Self::Corrupt(message) => write!(f, "store corrupt: {message}"),
            Self::GenesisMismatch { on_disk, expected } => {
                write!(
                    f,
                    "store belongs to a different chain: on-disk genesis {on_disk}, expected {expected}"
                )
            }
        }
    }
}

impl std::error::Error for StoreError {}

/// Creates a unique empty scratch directory under the system temp dir —
/// the tests' and benches' substitute for a `tempfile` dependency. The
/// caller removes it (leaks are confined to the temp dir).
pub fn scratch_dir(tag: &str) -> PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |elapsed| elapsed.subsec_nanos() as u128 + elapsed.as_secs() as u128 * 1_000_000_000);
    let path = std::env::temp_dir().join(format!(
        "sereth-{tag}-{}-{}-{nanos}",
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::Relaxed),
    ));
    if path.exists() {
        let _ = std::fs::remove_dir_all(&path);
    }
    std::fs::create_dir_all(&path).expect("scratch dir is creatable");
    path
}
