//! Length-prefixed, checksummed record framing for journal segments and
//! snapshot files.
//!
//! Every record is written as
//!
//! ```text
//! [len: u32 LE] [checksum: u64 LE = fnv1a_64(payload)] [payload: len bytes]
//! ```
//!
//! A crash can stop a write at *any* byte: a torn tail shows up either as a
//! header that runs past the end of the file, a payload shorter than its
//! length prefix, or a checksum mismatch. [`RecordScanner`] treats the
//! first such defect as the end of the durable prefix — everything before
//! it is intact (checksum-verified), everything at and after it is
//! discarded. The crash-recovery property suite exercises every byte
//! boundary of this format.

use std::io::{self, Write};

use sereth_crypto::hash::fnv1a_64;

/// Bytes of framing that precede every payload.
pub const RECORD_HEADER_BYTES: usize = 4 + 8;

/// Largest payload a single record may carry (guards the scanner against
/// reading a garbage length as a multi-gigabyte allocation).
pub const MAX_RECORD_BYTES: usize = 1 << 31;

/// Frames `payload` onto `writer` as one record.
///
/// # Errors
///
/// Propagates the underlying I/O error.
pub fn write_record<W: Write>(writer: &mut W, payload: &[u8]) -> io::Result<()> {
    let len = u32::try_from(payload.len())
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "record payload too large"))?;
    writer.write_all(&len.to_le_bytes())?;
    writer.write_all(&fnv1a_64(payload).to_le_bytes())?;
    writer.write_all(payload)
}

/// Frames `payload` into a fresh buffer (header + payload).
pub fn encode_record(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(RECORD_HEADER_BYTES + payload.len());
    write_record(&mut out, payload).expect("writing to a Vec cannot fail");
    out
}

/// Iterates the intact record payloads at the front of `data`, stopping at
/// the first torn or corrupt record.
#[derive(Debug)]
pub struct RecordScanner<'a> {
    data: &'a [u8],
    clean: usize,
    torn: bool,
}

impl<'a> RecordScanner<'a> {
    /// Scans `data` (typically one whole segment file).
    pub fn new(data: &'a [u8]) -> Self {
        Self { data, clean: 0, torn: false }
    }

    /// Bytes covered by the intact records yielded so far — after the
    /// scanner is exhausted, the offset a torn file should be truncated to.
    pub fn clean_len(&self) -> usize {
        self.clean
    }

    /// `true` once the scanner has hit a torn or corrupt tail (as opposed
    /// to a clean end of input).
    pub fn torn(&self) -> bool {
        self.torn
    }
}

impl<'a> Iterator for RecordScanner<'a> {
    type Item = &'a [u8];

    fn next(&mut self) -> Option<&'a [u8]> {
        if self.torn || self.clean == self.data.len() {
            return None;
        }
        let rest = &self.data[self.clean..];
        if rest.len() < RECORD_HEADER_BYTES {
            self.torn = true;
            return None;
        }
        let len = u32::from_le_bytes(rest[..4].try_into().expect("length checked")) as usize;
        let checksum = u64::from_le_bytes(rest[4..12].try_into().expect("length checked"));
        if len > MAX_RECORD_BYTES || rest.len() < RECORD_HEADER_BYTES + len {
            self.torn = true;
            return None;
        }
        let payload = &rest[RECORD_HEADER_BYTES..RECORD_HEADER_BYTES + len];
        if fnv1a_64(payload) != checksum {
            self.torn = true;
            return None;
        }
        self.clean += RECORD_HEADER_BYTES + len;
        Some(payload)
    }
}

/// A fault-injecting [`std::io::Write`] wrapper that persists only the
/// first `limit` bytes and silently drops the rest — the crash model the
/// recovery property suite uses for kill-at-any-write-point: a process
/// dying mid-`write` leaves exactly some byte-prefix of the attempted
/// record on disk.
#[derive(Debug)]
pub struct FaultWriter<W> {
    inner: W,
    limit: usize,
    written: usize,
}

impl<W: Write> FaultWriter<W> {
    /// Wraps `inner`, cutting persistence off after `limit` bytes.
    pub fn new(inner: W, limit: usize) -> Self {
        Self { inner, limit, written: 0 }
    }

    /// Bytes actually forwarded to the underlying writer.
    pub fn written(&self) -> usize {
        self.written
    }

    /// Unwraps the underlying writer.
    pub fn into_inner(self) -> W {
        self.inner
    }
}

impl<W: Write> Write for FaultWriter<W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let room = self.limit.saturating_sub(self.written);
        let take = room.min(buf.len());
        if take > 0 {
            self.inner.write_all(&buf[..take])?;
            self.written += take;
        }
        // Claim the whole buffer was accepted: the caller (like a process
        // about to be killed) believes the write succeeded.
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_multiple_records() {
        let mut buf = Vec::new();
        write_record(&mut buf, b"alpha").unwrap();
        write_record(&mut buf, b"").unwrap();
        write_record(&mut buf, b"gamma-gamma").unwrap();
        let mut scanner = RecordScanner::new(&buf);
        assert_eq!(scanner.next(), Some(&b"alpha"[..]));
        assert_eq!(scanner.next(), Some(&b""[..]));
        assert_eq!(scanner.next(), Some(&b"gamma-gamma"[..]));
        assert_eq!(scanner.next(), None);
        assert_eq!(scanner.clean_len(), buf.len());
        assert!(!scanner.torn());
    }

    #[test]
    fn every_truncation_point_recovers_the_longest_intact_prefix() {
        let payloads: &[&[u8]] = &[b"one", b"two-two", b"", b"four4"];
        let mut buf = Vec::new();
        let mut boundaries = vec![0usize];
        for payload in payloads {
            write_record(&mut buf, payload).unwrap();
            boundaries.push(buf.len());
        }
        for cut in 0..=buf.len() {
            let truncated = &buf[..cut];
            let mut scanner = RecordScanner::new(truncated);
            let recovered: Vec<&[u8]> = scanner.by_ref().collect();
            let intact = boundaries.iter().filter(|&&b| b <= cut).count() - 1;
            assert_eq!(recovered.len(), intact, "cut at byte {cut}");
            assert_eq!(recovered, &payloads[..intact]);
            assert_eq!(scanner.clean_len(), boundaries[intact]);
            assert_eq!(scanner.torn(), cut != boundaries[intact]);
        }
    }

    #[test]
    fn corrupt_byte_anywhere_stops_the_scan_at_the_previous_record() {
        let mut buf = Vec::new();
        write_record(&mut buf, b"first").unwrap();
        let first_end = buf.len();
        write_record(&mut buf, b"second").unwrap();
        for position in first_end..buf.len() {
            let mut copy = buf.clone();
            copy[position] ^= 0x40;
            let mut scanner = RecordScanner::new(&copy);
            let recovered: Vec<&[u8]> = scanner.by_ref().collect();
            // Flipping a bit in the second record's framing or payload must
            // never surface a wrong payload: either the record vanishes, or
            // (for a length-prefix flip that still frames a checksummed
            // record — impossible here) it would have to checksum-match.
            assert_eq!(recovered, vec![&b"first"[..]], "flip at byte {position}");
            assert!(scanner.torn());
        }
    }

    #[test]
    fn fault_writer_persists_exactly_the_prefix() {
        for limit in 0..40 {
            let mut fault = FaultWriter::new(Vec::new(), limit);
            write_record(&mut fault, b"payload-one").unwrap();
            write_record(&mut fault, b"payload-two").unwrap();
            let written = fault.written();
            let disk = fault.into_inner();
            assert_eq!(disk.len(), written);
            assert_eq!(written, limit.min(2 * (RECORD_HEADER_BYTES + 11)));
            // Whatever survived is a clean prefix plus possibly a torn tail
            // the scanner refuses to yield.
            let mut scanner = RecordScanner::new(&disk);
            for payload in scanner.by_ref() {
                assert!(payload == b"payload-one" || payload == b"payload-two");
            }
            assert!(scanner.clean_len() <= disk.len());
        }
    }
}
