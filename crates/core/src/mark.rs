//! Mark computation and the AMV tuple.
//!
//! "We define a transaction's mark such that given `Txn1` which follows
//! `Txn0`, `Txn1.mark = Keccak256(Txn0.mark, Txn1.val)`. This creates a
//! sequentially consistent ordering between any number of transactions in
//! what we call a *series*." (paper §III-C)

use sereth_crypto::address::Address;
use sereth_crypto::hash::H256;
use sereth_crypto::keccak::keccak256_concat;

/// Computes a transaction's mark from its predecessor's mark and its value.
///
/// Because every mark commits (via Keccak-256) to the entire chain of
/// values before it, "multiple state changes sequenced in the atomic block
/// update are preserved" — this is also what defeats the lost-update and
/// frontrunning problems (paper §V-B).
///
/// # Examples
///
/// ```
/// use sereth_core::mark::compute_mark;
/// use sereth_crypto::hash::H256;
///
/// let genesis = H256::keccak(b"genesis");
/// let m1 = compute_mark(&genesis, &H256::from_low_u64(5));
/// let m2 = compute_mark(&m1, &H256::from_low_u64(7));
/// assert_ne!(m1, m2);
/// // Same value re-set in a different interval gets a different mark:
/// let m3 = compute_mark(&m2, &H256::from_low_u64(5));
/// assert_ne!(m1, m3);
/// ```
pub fn compute_mark(prev_mark: &H256, value: &H256) -> H256 {
    H256::new(keccak256_concat(prev_mark.as_bytes(), value.as_bytes()))
}

/// The derived `(address, mark, value)` tuple of a Sereth transaction
/// (paper §III-C: "together, these elements are referred to as a
/// transaction's AMV").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Amv {
    /// The transaction sender.
    pub address: Address,
    /// The computed mark.
    pub mark: H256,
    /// The value carried.
    pub value: H256,
}

impl Amv {
    /// Derives the AMV of a transaction given its sender and FPV contents.
    pub fn derive(address: Address, prev_mark: &H256, value: H256) -> Self {
        Self { address, mark: compute_mark(prev_mark, &value), value }
    }
}

/// The mark stored in a freshly deployed Sereth contract, before any `set`
/// has run. Every node derives the same constant.
pub fn genesis_mark() -> H256 {
    H256::keccak(b"sereth/genesis-mark/v1")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mark_depends_on_both_inputs() {
        let base = genesis_mark();
        let a = compute_mark(&base, &H256::from_low_u64(1));
        let b = compute_mark(&base, &H256::from_low_u64(2));
        let c = compute_mark(&H256::keccak(b"other"), &H256::from_low_u64(1));
        assert_ne!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn chains_are_injective_in_practice() {
        // set(5), set(7), set(5): the two 5-intervals have distinct marks —
        // the property behind the paper's lost-update discussion (§V-B).
        let m0 = genesis_mark();
        let five = H256::from_low_u64(5);
        let seven = H256::from_low_u64(7);
        let m1 = compute_mark(&m0, &five);
        let m2 = compute_mark(&m1, &seven);
        let m3 = compute_mark(&m2, &five);
        assert_ne!(m1, m3, "same value, different interval, different mark");
    }

    #[test]
    fn amv_derivation_matches_compute_mark() {
        let sender = Address::from_low_u64(9);
        let prev = genesis_mark();
        let value = H256::from_low_u64(42);
        let amv = Amv::derive(sender, &prev, value);
        assert_eq!(amv.mark, compute_mark(&prev, &value));
        assert_eq!(amv.address, sender);
        assert_eq!(amv.value, value);
    }

    #[test]
    fn genesis_mark_is_stable() {
        assert_eq!(genesis_mark(), genesis_mark());
        assert!(!genesis_mark().is_zero());
    }
}
