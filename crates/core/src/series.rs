//! Algorithm 3 — `SERIES` and `DEEPESTBRANCH`: build the DAG over filtered
//! transactions and extract the longest branch.
//!
//! "`Series()` iterates through each transaction in the list of Sereth
//! transactions and forms graph relations between all transactions with
//! corresponding mark/value hashes. Due to the uncertain nature of
//! concurrency, it is possible for a transaction to have multiple potential
//! successors, but only one predecessor. … From multiple potential head
//! nodes [we locate] the one that produces the deepest graph. From that
//! graph, the deepest branch is our series. This logic mirrors that of the
//! blockchain, in which branches are resolved by taking the longest
//! branch." (paper §III-C)
//!
//! Two extractors are provided:
//!
//! * [`SeriesGraph::longest_series_recursive`] — the paper's Algorithm 3,
//!   verbatim recursion (exponential on adversarial diamond graphs, fine on
//!   real pools);
//! * [`SeriesGraph::longest_series`] — an `O(V + E)` dynamic program over
//!   the DAG, proven equivalent by property test and compared in the
//!   `hms_series` benchmark (an ablation the paper does not perform).

use std::collections::HashMap;

use sereth_crypto::hash::H256;

use crate::fpv::Flag;
use crate::process::TxnNode;

/// The transaction DAG of one Hash-Mark-Set snapshot.
#[derive(Debug, Clone)]
pub struct SeriesGraph {
    nodes: Vec<TxnNode>,
    /// `successors[i]` — indices of nodes whose `prev_mark` equals node
    /// `i`'s mark, in arrival order.
    successors: Vec<Vec<usize>>,
    /// Head candidates (Algorithm 3 line 9), in arrival order.
    heads: Vec<usize>,
}

impl SeriesGraph {
    /// Builds the adjacency over `nodes` (Algorithm 3 lines 2–6).
    ///
    /// `committed_mark` enables the *committed-head extension* (the paper's
    /// future-work item in §V-C): transactions chained directly onto the
    /// last published mark are treated as head candidates even when they
    /// carry [`Flag::Success`], so the series survives block publication.
    /// Pass `None` for the paper's baseline behaviour.
    pub fn build(nodes: Vec<TxnNode>, committed_mark: Option<H256>) -> Self {
        // The paper's nested loop is O(n²); an index by mark gives the same
        // edges in O(n). Successor lists come out in arrival order because
        // we scan nodes in arrival order.
        let mut by_prev_mark: HashMap<H256, Vec<usize>> = HashMap::new();
        for (index, node) in nodes.iter().enumerate() {
            by_prev_mark.entry(node.fpv.prev_mark).or_default().push(index);
        }
        let mut successors = vec![Vec::new(); nodes.len()];
        for (index, node) in nodes.iter().enumerate() {
            if let Some(succs) = by_prev_mark.get(&node.mark) {
                // A node cannot succeed itself: that would need
                // mark == prev_mark, i.e. a keccak fixed point.
                successors[index] = succs.iter().copied().filter(|&s| s != index).collect();
            }
        }
        let heads = nodes
            .iter()
            .enumerate()
            .filter(|(_, node)| {
                node.flag() == Flag::Head || committed_mark.is_some_and(|mark| node.fpv.prev_mark == mark)
            })
            .map(|(index, _)| index)
            .collect();
        Self { nodes, successors, heads }
    }

    /// The underlying nodes.
    pub fn nodes(&self) -> &[TxnNode] {
        &self.nodes
    }

    /// Head-candidate indices.
    pub fn heads(&self) -> &[usize] {
        &self.heads
    }

    /// Successor indices of `index`.
    pub fn successors_of(&self, index: usize) -> &[usize] {
        &self.successors[index]
    }

    /// The longest series, as node indices, via an `O(V + E)` longest-path
    /// dynamic program. Ties resolve exactly as the paper's depth-first
    /// search does: strictly-deeper wins, so the first head (in arrival
    /// order) and the first successor achieving the maximum depth are kept.
    pub fn longest_series(&self) -> Vec<usize> {
        if self.nodes.is_empty() || self.heads.is_empty() {
            return Vec::new();
        }
        // depth[i] = length of the longest path starting at i.
        // The mark chain makes cycles unconstructible (a cycle would be a
        // Keccak-256 cycle), so plain memoised recursion terminates; an
        // explicit stack keeps deep chains from overflowing the call stack.
        let mut depth: Vec<Option<u32>> = vec![None; self.nodes.len()];
        for start in 0..self.nodes.len() {
            if depth[start].is_some() {
                continue;
            }
            let mut stack = vec![(start, 0usize)];
            while let Some(&(node, cursor)) = stack.last() {
                if depth[node].is_some() {
                    stack.pop();
                    continue;
                }
                if cursor < self.successors[node].len() {
                    stack.last_mut().expect("non-empty").1 += 1;
                    let succ = self.successors[node][cursor];
                    if depth[succ].is_none() {
                        stack.push((succ, 0));
                    }
                } else {
                    let best =
                        self.successors[node].iter().map(|&s| depth[s].expect("children resolved")).max();
                    depth[node] = Some(1 + best.unwrap_or(0));
                    stack.pop();
                }
            }
        }

        // Pick the first head with maximal depth (paper line 15 uses
        // strict `>`), then greedily follow the first deepest successor.
        let &best_head = self
            .heads
            .iter()
            .max_by_key(|&&h| (depth[h].expect("computed"), std::cmp::Reverse(h)))
            .expect("heads non-empty");
        let mut series = vec![best_head];
        let mut current = best_head;
        loop {
            let next = self.successors[current]
                .iter()
                .copied()
                .find(|&s| depth[s] == Some(depth[current].expect("computed") - 1));
            match next {
                Some(succ) if depth[current] > Some(1) => {
                    series.push(succ);
                    current = succ;
                }
                _ => break,
            }
        }
        series
    }

    /// The paper's Algorithm 3, lines 7–28, as written: iterate head
    /// candidates, recursively explore every path, keep the strictly
    /// deepest. Exposed for fidelity testing and the ablation benchmark.
    pub fn longest_series_recursive(&self) -> Vec<usize> {
        let mut highest_depth = 0usize;
        let mut longest: Vec<usize> = Vec::new();
        for &head in &self.heads {
            let mut path = vec![head];
            let mut max_depth = 0usize;
            let mut max_path = Vec::new();
            self.deepest_branch(head, 1, &mut path, &mut max_depth, &mut max_path);
            if max_depth > highest_depth {
                highest_depth = max_depth;
                longest = max_path;
            }
        }
        longest
    }

    fn deepest_branch(
        &self,
        head: usize,
        depth: usize,
        path: &mut Vec<usize>,
        max_depth: &mut usize,
        max_path: &mut Vec<usize>,
    ) {
        if self.successors[head].is_empty() {
            if depth > *max_depth {
                *max_depth = depth;
                *max_path = path.clone();
            }
            return;
        }
        for &txn in &self.successors[head] {
            path.push(txn);
            self.deepest_branch(txn, depth + 1, path, max_depth, max_path);
            path.pop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fpv::{Flag, Fpv};
    use crate::mark::{compute_mark, genesis_mark};
    use crate::process::{PendingTx, TxnNode};
    use bytes::Bytes;
    use sereth_crypto::address::Address;

    /// Builds a TxnNode chaining onto `prev` with `value`.
    fn node(seq: u64, flag: Flag, prev: H256, value: u64) -> TxnNode {
        let fpv = Fpv::new(flag, prev, H256::from_low_u64(value));
        TxnNode {
            pending: PendingTx {
                hash: H256::keccak(&seq.to_be_bytes()),
                sender: Address::from_low_u64(seq),
                to: Some(Address::from_low_u64(0x5e7e)),
                input: Bytes::new(),
                arrival_seq: seq,
            },
            mark: compute_mark(&prev, &H256::from_low_u64(value)),
            fpv,
        }
    }

    /// A straight chain of `len` sets rooted at the genesis mark.
    fn chain(len: usize) -> Vec<TxnNode> {
        let mut nodes = Vec::new();
        let mut prev = genesis_mark();
        for i in 0..len {
            let flag = if i == 0 { Flag::Head } else { Flag::Success };
            let n = node(i as u64, flag, prev, 100 + i as u64);
            prev = n.mark;
            nodes.push(n);
        }
        nodes
    }

    #[test]
    fn straight_chain_is_the_series() {
        let graph = SeriesGraph::build(chain(6), None);
        let series = graph.longest_series();
        assert_eq!(series, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn recursive_agrees_on_straight_chain() {
        let graph = SeriesGraph::build(chain(6), None);
        assert_eq!(graph.longest_series(), graph.longest_series_recursive());
    }

    #[test]
    fn empty_graph_gives_empty_series() {
        let graph = SeriesGraph::build(vec![], None);
        assert!(graph.longest_series().is_empty());
        assert!(graph.longest_series_recursive().is_empty());
    }

    #[test]
    fn no_heads_gives_empty_series() {
        // A successor with no head candidate anywhere.
        let orphan = node(0, Flag::Success, H256::keccak(b"unknown"), 5);
        let graph = SeriesGraph::build(vec![orphan], None);
        assert!(graph.longest_series().is_empty());
        assert!(graph.longest_series_recursive().is_empty());
    }

    #[test]
    fn longer_branch_wins() {
        // head ── a(5) ── b(6)
        //    └─── c(7)
        let head = node(0, Flag::Head, genesis_mark(), 1);
        let a = node(1, Flag::Success, head.mark, 5);
        let b = node(2, Flag::Success, a.mark, 6);
        let c = node(3, Flag::Success, head.mark, 7);
        let graph = SeriesGraph::build(vec![head, a, b, c], None);
        let series = graph.longest_series();
        assert_eq!(series, vec![0, 1, 2]);
        assert_eq!(series, graph.longest_series_recursive());
    }

    #[test]
    fn deepest_head_wins_among_competing_heads() {
        // Two head candidates (a race at block start); the one with the
        // longer tail forms the series.
        let head_a = node(0, Flag::Head, genesis_mark(), 1);
        let head_b = node(1, Flag::Head, H256::keccak(b"other-root"), 2);
        let b1 = node(2, Flag::Success, head_b.mark, 3);
        let b2 = node(3, Flag::Success, b1.mark, 4);
        let graph = SeriesGraph::build(vec![head_a, head_b, b1, b2], None);
        let series = graph.longest_series();
        assert_eq!(series, vec![1, 2, 3]);
        assert_eq!(series, graph.longest_series_recursive());
    }

    #[test]
    fn equal_depth_keeps_first_head() {
        let head_a = node(0, Flag::Head, genesis_mark(), 1);
        let head_b = node(1, Flag::Head, H256::keccak(b"other-root"), 2);
        let graph = SeriesGraph::build(vec![head_a, head_b], None);
        assert_eq!(graph.longest_series(), vec![0]);
        assert_eq!(graph.longest_series_recursive(), vec![0]);
    }

    #[test]
    fn committed_head_extension_roots_success_flagged_chains() {
        // A chain whose head carries SUCCESS_FLAG (its sender believed it
        // chained onto a pooled tx that has since been committed).
        let committed = H256::keccak(b"last-block-mark");
        let a = node(0, Flag::Success, committed, 5);
        let b = node(1, Flag::Success, a.mark, 6);
        let baseline = SeriesGraph::build(vec![a.clone(), b.clone()], None);
        assert!(baseline.longest_series().is_empty(), "paper baseline: no head, no series");
        let extended = SeriesGraph::build(vec![a, b], Some(committed));
        assert_eq!(extended.longest_series(), vec![0, 1]);
    }

    #[test]
    fn forged_prev_marks_cannot_create_cycles() {
        // Adversary forges two transactions claiming each other as
        // predecessors. Edges require computed-mark == claimed-prev_mark,
        // which keccak makes unsatisfiable both ways; at most one direction
        // can hold by construction here, so traversal terminates.
        let a = node(0, Flag::Head, H256::keccak(b"x"), 1);
        // b claims a's mark; a claims keccak("x") which is nobody's mark.
        let b = node(1, Flag::Success, a.mark, 2);
        let graph = SeriesGraph::build(vec![a, b], None);
        assert_eq!(graph.longest_series(), vec![0, 1]);
    }

    #[test]
    fn duplicate_marks_share_successors() {
        // Two identical (prev, value) sets produce the same mark; a
        // successor chains onto that mark and both become its potential
        // predecessor — "due to the uncertain nature of concurrency"
        // (paper §III-C). Both paths have equal depth; the series keeps
        // the first.
        let dup1 = node(0, Flag::Head, genesis_mark(), 5);
        let dup2 = node(1, Flag::Head, genesis_mark(), 5);
        let succ = node(2, Flag::Success, dup1.mark, 6);
        let graph = SeriesGraph::build(vec![dup1, dup2, succ], None);
        let series = graph.longest_series();
        assert_eq!(series, vec![0, 2]);
        assert_eq!(series, graph.longest_series_recursive());
    }

    #[test]
    fn self_referencing_node_is_ignored() {
        // prev_mark == own mark is impossible (keccak fixed point), but a
        // node may *claim* its own mark as prev only if mark(prev,value)
        // == prev — construct the claim directly and ensure no self-edge.
        let fake_prev = H256::keccak(b"self");
        let mut n = node(0, Flag::Head, fake_prev, 1);
        n.mark = fake_prev; // force the pathological equality
        let graph = SeriesGraph::build(vec![n], None);
        assert_eq!(graph.successors_of(0), &[] as &[usize]);
        assert_eq!(graph.longest_series(), vec![0]);
    }
}
