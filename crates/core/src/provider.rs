//! The Hash-Mark-Set RAA provider: wires Algorithm 1 into the VM's
//! Runtime Argument Augmentation hook (paper Fig. 1, activities R1–R3).
//!
//! When a Sereth client issues a read-only `get`/`mark` call, the
//! interpreter hands the call to this provider, which snapshots the node's
//! TxPool and committed contract state through [`HmsDataSource`], runs
//! [`crate::hms::hash_mark_set`], and writes the resulting view into the call's
//! argument words. The contract then merely returns its (augmented)
//! arguments — exactly Listing 1's `pure` functions.

use std::sync::Arc;

use bytes::Bytes;
use sereth_crypto::hash::H256;
use sereth_vm::abi::{self, Selector};
use sereth_vm::raa::{RaaProvider, RaaRequest};

use crate::hms::{outcome_from_nodes, HmsConfig, HmsOutcome};
use crate::process::{filter_one, PendingTx, TxnNode};

/// Read access to the live node data Hash-Mark-Set needs. `sereth-node`
/// implements this over its pool and chain; tests use fixtures.
pub trait HmsDataSource: Send + Sync {
    /// Snapshot of the pending pool in arrival order.
    fn pending(&self) -> Vec<PendingTx>;

    /// Visits every pending transaction in arrival order **without**
    /// materialising a full snapshot. [`HmsRaaProvider`] reads through
    /// this, so implementors backed by a live pool (e.g. a node) should
    /// override it to walk their entries borrowed — the default clones
    /// the whole pool via [`HmsDataSource::pending`] and exists only for
    /// fixture sources.
    fn for_each_pending(&self, visit: &mut dyn FnMut(&PendingTx)) {
        for tx in self.pending() {
            visit(&tx);
        }
    }

    /// The committed `(mark, value)` of `contract`'s managed state
    /// variable, read from the canonical head's storage. Taking the
    /// contract as a parameter lets one provider serve several independent
    /// Sereth markets.
    fn committed(&self, contract: &sereth_crypto::address::Address) -> (H256, H256);
}

/// The RAA provider that serves READ-UNCOMMITTED views.
pub struct HmsRaaProvider {
    source: Arc<dyn HmsDataSource>,
    set_selector: Selector,
    config: HmsConfig,
}

impl HmsRaaProvider {
    /// Builds a provider over `source`. `set_selector` identifies Sereth
    /// `set` transactions in the pool (Algorithm 2's SIGNATURE filter).
    pub fn new(source: Arc<dyn HmsDataSource>, set_selector: Selector, config: HmsConfig) -> Self {
        Self { source, set_selector, config }
    }

    /// Runs Algorithm 1 against the current source state for `contract`.
    ///
    /// The pool is read through [`HmsDataSource::for_each_pending`] and
    /// filtered on the fly (Algorithm 2 per transaction), so only the
    /// contract's own `set` transactions are ever copied out of the
    /// source — not the whole pool.
    pub fn run(&self, contract: &sereth_crypto::address::Address) -> HmsOutcome {
        let mut txn_list: Vec<TxnNode> = Vec::new();
        self.source.for_each_pending(&mut |pending| {
            if let Some(node) = filter_one(pending, contract, self.set_selector) {
                txn_list.push(node);
            }
        });
        outcome_from_nodes(txn_list, self.source.committed(contract), &self.config)
    }
}

impl RaaProvider for HmsRaaProvider {
    fn augment(&self, request: &RaaRequest<'_>) -> Option<Bytes> {
        let outcome = self.run(&request.contract);
        let words = outcome.view.to_words();
        // Write the view into the three argument words (Fig. 1, R3).
        let with_hint = abi::replace_arg_word(request.calldata, 0, words[0])?;
        let with_mark = abi::replace_arg_word(&with_hint, 1, words[1])?;
        abi::replace_arg_word(&with_mark, 2, words[2])
    }
}

impl core::fmt::Debug for HmsRaaProvider {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("HmsRaaProvider")
            .field("set_selector", &self.set_selector)
            .field("committed_head", &self.config.committed_head)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fpv::{Flag, Fpv, SPECIAL_VALUE};
    use crate::mark::{compute_mark, genesis_mark};
    use sereth_crypto::address::Address;
    use std::sync::Mutex;

    struct FixtureSource {
        pool: Mutex<Vec<PendingTx>>,
        committed: (H256, H256),
    }

    impl HmsDataSource for FixtureSource {
        fn pending(&self) -> Vec<PendingTx> {
            self.pool.lock().unwrap().clone()
        }

        fn committed(&self, _contract: &Address) -> (H256, H256) {
            self.committed
        }
    }

    fn set_sel() -> Selector {
        abi::selector("set(bytes32[3])")
    }

    fn get_sel() -> Selector {
        abi::selector("get(bytes32[3])")
    }

    fn set_tx(seq: u64, flag: Flag, prev: H256, value: u64) -> PendingTx {
        PendingTx {
            hash: H256::keccak(&seq.to_be_bytes()),
            sender: Address::from_low_u64(seq),
            to: Some(Address::from_low_u64(7)),
            input: Fpv::new(flag, prev, H256::from_low_u64(value)).to_calldata(set_sel()),
            arrival_seq: seq,
        }
    }

    fn provider_with(pool: Vec<PendingTx>) -> HmsRaaProvider {
        let source = Arc::new(FixtureSource {
            pool: Mutex::new(pool),
            committed: (genesis_mark(), H256::from_low_u64(50)),
        });
        HmsRaaProvider::new(source, set_sel(), HmsConfig::default())
    }

    fn raa_call(provider: &HmsRaaProvider) -> [H256; 3] {
        let calldata = abi::encode_call(get_sel(), &[H256::ZERO, H256::ZERO, H256::ZERO]);
        let request = RaaRequest {
            contract: Address::from_low_u64(7),
            selector: get_sel(),
            calldata: &calldata,
            caller: Address::from_low_u64(1),
        };
        let augmented = provider.augment(&request).expect("three words present");
        [
            abi::arg_word(&augmented, 0).unwrap(),
            abi::arg_word(&augmented, 1).unwrap(),
            abi::arg_word(&augmented, 2).unwrap(),
        ]
    }

    #[test]
    fn empty_pool_serves_special_value_and_committed_state() {
        let provider = provider_with(vec![]);
        let [hint, mark, value] = raa_call(&provider);
        assert_eq!(hint, SPECIAL_VALUE);
        assert_eq!(mark, genesis_mark());
        assert_eq!(value, H256::from_low_u64(50));
    }

    #[test]
    fn pending_series_serves_tail_view() {
        let s1 = set_tx(0, Flag::Head, genesis_mark(), 60);
        let m1 = compute_mark(&genesis_mark(), &H256::from_low_u64(60));
        let s2 = set_tx(1, Flag::Success, m1, 70);
        let m2 = compute_mark(&m1, &H256::from_low_u64(70));
        let provider = provider_with(vec![s1, s2]);
        let [hint, mark, value] = raa_call(&provider);
        assert_eq!(hint, Flag::Success.to_word());
        assert_eq!(mark, m2);
        assert_eq!(value, H256::from_low_u64(70));
    }

    #[test]
    fn augment_preserves_selector_and_length() {
        let provider = provider_with(vec![]);
        let calldata = abi::encode_call(get_sel(), &[H256::ZERO, H256::ZERO, H256::ZERO]);
        let request = RaaRequest {
            contract: Address::from_low_u64(7),
            selector: get_sel(),
            calldata: &calldata,
            caller: Address::from_low_u64(1),
        };
        let augmented = provider.augment(&request).unwrap();
        assert_eq!(augmented.len(), calldata.len());
        assert_eq!(&augmented[..4], &calldata[..4]);
    }

    #[test]
    fn augment_fails_gracefully_on_short_calldata() {
        let provider = provider_with(vec![]);
        let calldata = abi::encode_call(get_sel(), &[H256::ZERO]); // only one word
        let request = RaaRequest {
            contract: Address::from_low_u64(7),
            selector: get_sel(),
            calldata: &calldata,
            caller: Address::from_low_u64(1),
        };
        assert!(provider.augment(&request).is_none());
    }

    #[test]
    fn provider_observes_live_pool_changes() {
        let source = Arc::new(FixtureSource {
            pool: Mutex::new(vec![]),
            committed: (genesis_mark(), H256::from_low_u64(50)),
        });
        let provider = HmsRaaProvider::new(source.clone(), set_sel(), HmsConfig::default());
        assert_eq!(raa_call(&provider)[0], SPECIAL_VALUE);
        source.pool.lock().unwrap().push(set_tx(0, Flag::Head, genesis_mark(), 99));
        let [hint, _, value] = raa_call(&provider);
        assert_eq!(hint, Flag::Success.to_word());
        assert_eq!(value, H256::from_low_u64(99));
    }
}
