//! **Hash-Mark-Set (HMS)** — the primary contribution of
//! *Read-Uncommitted Transactions for Smart Contract Performance*
//! (Cook, Painter, Peterson, Dechev — ICDCS 2019).
//!
//! Blockchain state reads are effectively READ-COMMITTED: a value is only
//! visible once its block publishes, O(10¹) seconds later, so transactions
//! built on it are frequently stale and fail on inclusion — they stay in
//! the block but make no state change. HMS organises the *pending*
//! transaction pool into a DAG linked by cryptographic marks
//! (`mark = keccak256(prev_mark ‖ value)`), extracts the longest series,
//! and serves the series tail as a READ-UNCOMMITTED view, raising the
//! paper's *state throughput* metric by ~5× unassisted and an order of
//! magnitude with cooperating ("semantic") miners.
//!
//! Module map (one per paper artifact):
//!
//! | paper | module |
//! |---|---|
//! | FPV/flags (§III-C) | [`fpv`] |
//! | mark definition, AMV (§III-C) | [`mark`] |
//! | Algorithm 2 `PROCESS` | [`mod@process`] |
//! | Algorithm 3 `SERIES` / `DEEPESTBRANCH` | [`series`] |
//! | Algorithm 1 `HASHMARKSET` | [`hms`] |
//! | RAA data service (Fig. 1) | [`provider`] |
//!
//! # Examples
//!
//! Serializing a pool by hand:
//!
//! ```
//! use sereth_core::fpv::{Flag, Fpv};
//! use sereth_core::hms::{hash_mark_set, HmsConfig, ViewSource};
//! use sereth_core::mark::{compute_mark, genesis_mark};
//! use sereth_core::process::PendingTx;
//! use sereth_crypto::{Address, H256};
//! use sereth_vm::abi;
//!
//! let set = abi::selector("set(bytes32[3])");
//! let market = Address::from_low_u64(0x5e7e);
//! let committed = (genesis_mark(), H256::from_low_u64(50));
//!
//! // One pending `set(60)` chained onto the committed mark.
//! let tx = PendingTx {
//!     hash: H256::keccak(b"tx"),
//!     sender: Address::from_low_u64(1),
//!     to: Some(market),
//!     input: Fpv::new(Flag::Head, genesis_mark(), H256::from_low_u64(60)).to_calldata(set),
//!     arrival_seq: 0,
//! };
//!
//! let outcome = hash_mark_set(&[tx], &market, set, committed, &HmsConfig::default());
//! assert_eq!(outcome.view.source, ViewSource::Uncommitted);
//! assert_eq!(outcome.view.value, H256::from_low_u64(60));
//! assert_eq!(outcome.view.mark, compute_mark(&genesis_mark(), &H256::from_low_u64(60)));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fpv;
pub mod hms;
pub mod mark;
pub mod process;
pub mod provider;
pub mod series;

pub use fpv::{Flag, Fpv, HEAD_FLAG, SPECIAL_VALUE, SUCCESS_FLAG};
pub use hms::{
    hash_mark_set, outcome_from_nodes, HmsConfig, HmsOutcome, HmsView, IsolationLevel, ViewSource,
};
pub use mark::{compute_mark, genesis_mark, Amv};
pub use process::{filter_one, process, process_iter, PendingTx, TxnNode};
pub use provider::{HmsDataSource, HmsRaaProvider};
pub use series::SeriesGraph;
