//! The FPV triple — `(flag, previous_mark, value)` — carried in every
//! Sereth transaction's calldata, and the flags that drive Hash-Mark-Set
//! filtering (paper §III-C and Algorithm 2).

use sereth_crypto::hash::H256;
use sereth_vm::abi;

/// Flag word marking a **head candidate**: "one of the first HMS
/// transactions that appeared during the current block … it or another
/// transaction with the same flag will serve as the head of the serialized
/// list" (paper §III-C). The sender saw no pending series and chained onto
/// the *committed* contract mark.
pub const HEAD_FLAG: H256 = H256::new(head_flag_bytes());

/// Flag word marking a successor: "at the time of the transaction's
/// submission, it was found to be the successor to the current tail of the
/// series" (paper §III-C).
pub const SUCCESS_FLAG: H256 = H256::new(success_flag_bytes());

/// The sentinel Algorithm 1 writes into the RAA words when the filtered
/// transaction list is empty (line 1:5, `RAA ← specialValue`): it tells the
/// caller the view was served from *committed* state and a new transaction
/// should carry [`HEAD_FLAG`].
pub const SPECIAL_VALUE: H256 = HEAD_FLAG;

const fn head_flag_bytes() -> [u8; 32] {
    let mut bytes = [0u8; 32];
    // ASCII "HMS-HEAD" in the leading bytes keeps traces readable.
    let tag = *b"HMS-HEAD";
    let mut i = 0;
    while i < tag.len() {
        bytes[i] = tag[i];
        i += 1;
    }
    bytes
}

const fn success_flag_bytes() -> [u8; 32] {
    let mut bytes = [0u8; 32];
    let tag = *b"HMS-SUCC";
    let mut i = 0;
    while i < tag.len() {
        bytes[i] = tag[i];
        i += 1;
    }
    bytes
}

/// Parsed flag semantics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Flag {
    /// Head candidate — chains onto the committed mark.
    Head,
    /// Successor — chains onto a pooled transaction's mark.
    Success,
    /// Anything else: "it is considered rejected and is not included in the
    /// list of relevant transactions" (paper §III-C).
    Rejected,
}

impl Flag {
    /// Classifies a raw flag word.
    pub fn classify(word: &H256) -> Self {
        if *word == HEAD_FLAG {
            Self::Head
        } else if *word == SUCCESS_FLAG {
            Self::Success
        } else {
            Self::Rejected
        }
    }

    /// The canonical word for this flag.
    ///
    /// # Panics
    ///
    /// Panics for [`Flag::Rejected`], which has no canonical encoding.
    pub fn to_word(self) -> H256 {
        match self {
            Self::Head => HEAD_FLAG,
            Self::Success => SUCCESS_FLAG,
            Self::Rejected => panic!("rejected flags have no canonical word"),
        }
    }

    /// `true` for flags Algorithm 2's `SUCCESS` predicate accepts.
    pub fn is_accepted(self) -> bool {
        matches!(self, Self::Head | Self::Success)
    }
}

/// The decoded FPV triple of a Sereth transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Fpv {
    /// The raw flag word (word 0 of the arguments).
    pub flag_word: H256,
    /// The mark of the intended predecessor (word 1).
    pub prev_mark: H256,
    /// The value being written — e.g. the new price (word 2).
    pub value: H256,
}

impl Fpv {
    /// Builds an FPV with a canonical flag.
    pub fn new(flag: Flag, prev_mark: H256, value: H256) -> Self {
        Self { flag_word: flag.to_word(), prev_mark, value }
    }

    /// The parsed flag.
    pub fn flag(&self) -> Flag {
        Flag::classify(&self.flag_word)
    }

    /// The three argument words, in ABI order.
    pub fn to_words(&self) -> [H256; 3] {
        [self.flag_word, self.prev_mark, self.value]
    }

    /// Decodes the FPV from calldata (`selector ++ flag ++ prev_mark ++
    /// value`). "Each element is stored in a contiguous 32 bytes within
    /// input" (paper §III-C).
    pub fn from_calldata(calldata: &[u8]) -> Option<Self> {
        let flag_word = abi::arg_word(calldata, 0)?;
        let prev_mark = abi::arg_word(calldata, 1)?;
        let value = abi::arg_word(calldata, 2)?;
        Some(Self { flag_word, prev_mark, value })
    }

    /// Encodes calldata invoking `selector` with this FPV.
    pub fn to_calldata(&self, selector: abi::Selector) -> bytes::Bytes {
        abi::encode_call(selector, &self.to_words())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flags_are_distinct_and_nonzero() {
        assert_ne!(HEAD_FLAG, SUCCESS_FLAG);
        assert!(!HEAD_FLAG.is_zero());
        assert!(!SUCCESS_FLAG.is_zero());
    }

    #[test]
    fn classify_round_trips() {
        assert_eq!(Flag::classify(&HEAD_FLAG), Flag::Head);
        assert_eq!(Flag::classify(&SUCCESS_FLAG), Flag::Success);
        assert_eq!(Flag::classify(&H256::from_low_u64(123)), Flag::Rejected);
        assert_eq!(Flag::Head.to_word(), HEAD_FLAG);
        assert_eq!(Flag::Success.to_word(), SUCCESS_FLAG);
    }

    #[test]
    fn acceptance_predicate_matches_algorithm_2() {
        assert!(Flag::Head.is_accepted());
        assert!(Flag::Success.is_accepted());
        assert!(!Flag::Rejected.is_accepted());
    }

    #[test]
    #[should_panic(expected = "no canonical word")]
    fn rejected_has_no_word() {
        let _ = Flag::Rejected.to_word();
    }

    #[test]
    fn calldata_round_trip() {
        let fpv = Fpv::new(Flag::Success, H256::keccak(b"prev"), H256::from_low_u64(5));
        let calldata = fpv.to_calldata(abi::selector("set(bytes32[3])"));
        assert_eq!(Fpv::from_calldata(&calldata), Some(fpv));
    }

    #[test]
    fn truncated_calldata_is_none() {
        let fpv = Fpv::new(Flag::Head, H256::ZERO, H256::ZERO);
        let calldata = fpv.to_calldata(abi::selector("set(bytes32[3])"));
        assert_eq!(Fpv::from_calldata(&calldata[..calldata.len() - 1]), None);
    }
}
