//! Algorithm 2 — `PROCESS`: filter the TxPool for Hash-Mark-Set
//! transactions and compute their marks.

use bytes::Bytes;
use sereth_crypto::address::Address;
use sereth_crypto::hash::H256;
use sereth_vm::abi::Selector;

use crate::fpv::{Flag, Fpv};
use crate::mark::compute_mark;

/// A pending transaction as Hash-Mark-Set sees it: just enough of the pool
/// entry to filter and order. `sereth-node` converts the chain's pool
/// entries into these, keeping this crate independent of the ledger.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PendingTx {
    /// Transaction hash (identifies the tx for semantic mining).
    pub hash: H256,
    /// Sender address.
    pub sender: Address,
    /// Callee contract (`None` for contract creations).
    pub to: Option<Address>,
    /// Full calldata, selector included.
    pub input: Bytes,
    /// Arrival sequence in the pool — the real-time order of the concurrent
    /// history (paper §II-B).
    pub arrival_seq: u64,
}

/// A filtered transaction with its computed mark — the node type the series
/// graph is built from (paper Algorithm 2 line 7, `new Node(txn)`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TxnNode {
    /// The underlying pool view.
    pub pending: PendingTx,
    /// Decoded FPV.
    pub fpv: Fpv,
    /// `keccak256(fpv.prev_mark ‖ fpv.value)` — Algorithm 2 line 6.
    pub mark: H256,
}

impl TxnNode {
    /// The parsed flag.
    pub fn flag(&self) -> Flag {
        self.fpv.flag()
    }
}

/// Filters `pool` for transactions addressed to `contract` invoking
/// `set_selector` whose flag passes the `SUCCESS` predicate, computing
/// each mark (Algorithm 2).
///
/// Scoping by contract keeps independent Sereth markets on one chain from
/// polluting each other's series — each managed state variable gets its
/// own DAG.
///
/// The input order is preserved (callers pass pool-arrival order); "due to
/// this filtering only a small percentage of the TxPool requires
/// processing, so the overhead of HMS is relatively small" (paper §III-C) —
/// the `hms_process` benchmark quantifies that claim.
pub fn process(pool: &[PendingTx], contract: &Address, set_selector: Selector) -> Vec<TxnNode> {
    process_iter(pool, contract, set_selector)
}

/// [`process`] over any borrowed iterator of pending transactions — the
/// allocation-free path: callers that already hold pool entries (e.g. a
/// node's `HmsDataSource`) can filter without first materialising a
/// `Vec<PendingTx>` of the entire pool.
pub fn process_iter<'a>(
    pool: impl IntoIterator<Item = &'a PendingTx>,
    contract: &Address,
    set_selector: Selector,
) -> Vec<TxnNode> {
    let mut filtered = Vec::new();
    for pending in pool {
        if let Some(node) = filter_one(pending, contract, set_selector) {
            filtered.push(node);
        }
    }
    filtered
}

/// Algorithm 2's per-transaction body: `Some(node)` iff `pending` is a
/// Sereth `set` on `contract` with an accepted flag. Exposed so event
/// subscribers (the `sereth-raa` service) apply the exact same filter to
/// single transactions that [`process`] applies to snapshots.
pub fn filter_one(pending: &PendingTx, contract: &Address, set_selector: Selector) -> Option<TxnNode> {
    // The transaction must target the managed contract…
    if pending.to != Some(*contract) {
        return None;
    }
    // …and SIGNATURE(txn) == "set".
    if pending.input.len() < 4 || pending.input[..4] != set_selector {
        return None;
    }
    // SUCCESS(txn): flag is headFlag or successFlag.
    let fpv = Fpv::from_calldata(&pending.input)?;
    if !fpv.flag().is_accepted() {
        return None;
    }
    let mark = compute_mark(&fpv.prev_mark, &fpv.value);
    Some(TxnNode { pending: pending.clone(), fpv, mark })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fpv::{HEAD_FLAG, SUCCESS_FLAG};
    use crate::mark::genesis_mark;
    use sereth_vm::abi::{self, encode_call};

    fn set_sel() -> Selector {
        abi::selector("set(bytes32[3])")
    }

    fn buy_sel() -> Selector {
        abi::selector("buy(bytes32[3])")
    }

    fn contract() -> Address {
        Address::from_low_u64(0x5e7e)
    }

    fn pending(seq: u64, selector: Selector, flag: H256, prev: H256, value: u64) -> PendingTx {
        PendingTx {
            hash: H256::keccak(&seq.to_be_bytes()),
            sender: Address::from_low_u64(seq),
            to: Some(contract()),
            input: encode_call(selector, &[flag, prev, H256::from_low_u64(value)]),
            arrival_seq: seq,
        }
    }

    #[test]
    fn filters_by_selector() {
        let pool = vec![
            pending(0, set_sel(), HEAD_FLAG, genesis_mark(), 5),
            pending(1, buy_sel(), HEAD_FLAG, genesis_mark(), 5),
        ];
        let nodes = process(&pool, &contract(), set_sel());
        assert_eq!(nodes.len(), 1);
        assert_eq!(nodes[0].pending.arrival_seq, 0);
    }

    #[test]
    fn filters_by_flag() {
        let pool = vec![
            pending(0, set_sel(), HEAD_FLAG, genesis_mark(), 5),
            pending(1, set_sel(), SUCCESS_FLAG, genesis_mark(), 6),
            pending(2, set_sel(), H256::from_low_u64(99), genesis_mark(), 7), // rejected flag
        ];
        let nodes = process(&pool, &contract(), set_sel());
        assert_eq!(nodes.len(), 2);
    }

    #[test]
    fn computes_marks_per_the_definition() {
        let prev = genesis_mark();
        let pool = vec![pending(0, set_sel(), HEAD_FLAG, prev, 5)];
        let nodes = process(&pool, &contract(), set_sel());
        assert_eq!(nodes[0].mark, compute_mark(&prev, &H256::from_low_u64(5)));
        assert_eq!(nodes[0].flag(), Flag::Head);
    }

    #[test]
    fn malformed_calldata_is_skipped_not_fatal() {
        let mut truncated = pending(0, set_sel(), HEAD_FLAG, genesis_mark(), 5);
        truncated.input = truncated.input.slice(..40); // selector + part of flag
        let short = PendingTx {
            hash: H256::keccak(b"tiny"),
            sender: Address::ZERO,
            to: Some(contract()),
            input: Bytes::from_static(&[0x01]),
            arrival_seq: 1,
        };
        let good = pending(2, set_sel(), SUCCESS_FLAG, genesis_mark(), 6);
        let nodes = process(&[truncated, short, good], &contract(), set_sel());
        assert_eq!(nodes.len(), 1);
        assert_eq!(nodes[0].pending.arrival_seq, 2);
    }

    #[test]
    fn preserves_input_order() {
        let pool: Vec<PendingTx> =
            (0..5).map(|i| pending(i, set_sel(), SUCCESS_FLAG, H256::from_low_u64(i), i)).collect();
        let nodes = process(&pool, &contract(), set_sel());
        let seqs: Vec<u64> = nodes.iter().map(|n| n.pending.arrival_seq).collect();
        assert_eq!(seqs, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn empty_pool_yields_empty_list() {
        assert!(process(&[], &contract(), set_sel()).is_empty());
    }
}
