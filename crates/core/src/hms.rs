//! Algorithm 1 — `HASHMARKSET`: serialize the transaction pool and produce
//! the READ-UNCOMMITTED view of the managed state variable.

use sereth_crypto::hash::H256;
use sereth_vm::abi::Selector;

use crate::fpv::{Flag, SPECIAL_VALUE};
use crate::process::{process, PendingTx, TxnNode};
use crate::series::SeriesGraph;

/// Isolation level of a state read (paper §I–§II).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IsolationLevel {
    /// Only values committed in published blocks are visible — Ethereum's
    /// effective level, with block-interval latency.
    ReadCommitted,
    /// Pending (uncommitted) values ordered by Hash-Mark-Set are visible.
    ReadUncommitted,
}

/// Where an [`HmsView`] was served from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ViewSource {
    /// The filtered pool was empty (Algorithm 1 line 4): the view is the
    /// *committed* contract state and a follow-up transaction should carry
    /// the head flag.
    Committed,
    /// The view is the tail of the pending series (Algorithm 1 line 8).
    Uncommitted,
}

/// The view of the managed state variable that Hash-Mark-Set serves —
/// conceptually the AMV of the series tail (paper §III-C).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HmsView {
    /// Provenance of the view.
    pub source: ViewSource,
    /// Mark of the tail (or the committed mark): what a new transaction
    /// must present as `prev_mark`/offer mark.
    pub mark: H256,
    /// Value at the tail (or committed value): e.g. the current price.
    pub value: H256,
    /// Length of the series backing the view (0 for committed views).
    pub series_len: usize,
}

impl HmsView {
    /// The flag a follow-up `set` transaction should carry.
    pub fn next_flag(&self) -> Flag {
        match self.source {
            ViewSource::Committed => Flag::Head,
            ViewSource::Uncommitted => Flag::Success,
        }
    }

    /// Encodes the view into the three RAA argument words.
    ///
    /// Word 0 carries the flag hint ([`SPECIAL_VALUE`] for committed views,
    /// the success flag otherwise) — Algorithm 1 line 5 writes
    /// `specialValue` for the empty-pool case and the contract's
    /// `mark`/`get` functions read words 1 and 2 (Listing 1).
    pub fn to_words(&self) -> [H256; 3] {
        let hint = match self.source {
            ViewSource::Committed => SPECIAL_VALUE,
            ViewSource::Uncommitted => Flag::Success.to_word(),
        };
        [hint, self.mark, self.value]
    }
}

/// Configuration for the Hash-Mark-Set algorithm.
#[derive(Debug, Clone, Default)]
pub struct HmsConfig {
    /// Enable the committed-head extension (paper §V-C future work):
    /// transactions chaining directly onto the committed mark root the
    /// series even when flagged as successors, closing the post-publish
    /// window that loses 10–20 % of transactions.
    pub committed_head: bool,
}

/// The full result of serializing the pool: the view plus the series
/// itself (which semantic miners consume, paper §V-C).
#[derive(Debug, Clone)]
pub struct HmsOutcome {
    /// The READ-UNCOMMITTED (or fallback committed) view.
    pub view: HmsView,
    /// The longest series, in order; empty for committed views.
    pub series: Vec<TxnNode>,
}

/// Runs Algorithm 1 over a pool snapshot.
///
/// * `pool` — pending transactions in arrival order;
/// * `contract` — the Sereth contract whose state variable is managed
///   (independent markets on one chain have independent series);
/// * `set_selector` — the Sereth `set` function selector (the SIGNATURE
///   filter of Algorithm 2);
/// * `committed` — the `(mark, value)` currently in contract storage, used
///   when the filtered list is empty (Algorithm 1 lines 4–6) and, with
///   [`HmsConfig::committed_head`], to root the series;
/// * `config` — extension toggles.
pub fn hash_mark_set(
    pool: &[PendingTx],
    contract: &sereth_crypto::address::Address,
    set_selector: Selector,
    committed: (H256, H256),
    config: &HmsConfig,
) -> HmsOutcome {
    let txn_list = process(pool, contract, set_selector);
    outcome_from_nodes(txn_list, committed, config)
}

/// Algorithm 1 lines 3–9 over an already-filtered transaction list: the
/// series extraction and view construction shared by the batch
/// [`hash_mark_set`] and the incremental `sereth-raa` view service (which
/// maintains the filtered list across pool events instead of re-running
/// `PROCESS` per query).
///
/// `txn_list` must be the output of [`process`] (or an incrementally
/// maintained equivalent) in pool-arrival order.
pub fn outcome_from_nodes(txn_list: Vec<TxnNode>, committed: (H256, H256), config: &HmsConfig) -> HmsOutcome {
    let (committed_mark, committed_value) = committed;
    let committed_outcome = || HmsOutcome {
        view: HmsView {
            source: ViewSource::Committed,
            mark: committed_mark,
            value: committed_value,
            series_len: 0,
        },
        series: Vec::new(),
    };

    // Algorithm 1 line 4: empty list ⇒ special value ⇒ committed view.
    if txn_list.is_empty() {
        return committed_outcome();
    }

    let root = config.committed_head.then_some(committed_mark);
    let graph = SeriesGraph::build(txn_list, root);
    let indices = graph.longest_series();
    if indices.is_empty() {
        // Filtered transactions exist but none roots a series (e.g. all
        // their predecessors were just committed). Fall back to the
        // committed view, as an empty list would.
        return committed_outcome();
    }

    let series: Vec<TxnNode> = indices.iter().map(|&i| graph.nodes()[i].clone()).collect();
    let tail = series.last().expect("series non-empty");
    HmsOutcome {
        view: HmsView {
            source: ViewSource::Uncommitted,
            mark: tail.mark,
            value: tail.fpv.value,
            series_len: series.len(),
        },
        series,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fpv::Fpv;
    use crate::mark::{compute_mark, genesis_mark};
    use bytes::Bytes;
    use sereth_crypto::address::Address;
    use sereth_vm::abi::{self};

    fn set_sel() -> Selector {
        abi::selector("set(bytes32[3])")
    }

    fn contract() -> Address {
        Address::from_low_u64(0x5e7e)
    }

    fn set_tx(seq: u64, flag: Flag, prev: H256, value: u64) -> PendingTx {
        let fpv = Fpv::new(flag, prev, H256::from_low_u64(value));
        PendingTx {
            hash: H256::keccak(&seq.to_be_bytes()),
            sender: Address::from_low_u64(seq + 1000),
            to: Some(contract()),
            input: fpv.to_calldata(set_sel()),
            arrival_seq: seq,
        }
    }

    fn noise_tx(seq: u64) -> PendingTx {
        PendingTx {
            hash: H256::keccak(&[seq as u8, 0xff]),
            sender: Address::from_low_u64(seq),
            to: Some(Address::from_low_u64(0x0dd)),
            input: Bytes::from_static(&[1, 2, 3, 4, 5]),
            arrival_seq: seq,
        }
    }

    #[test]
    fn empty_pool_serves_committed_view() {
        let committed = (genesis_mark(), H256::from_low_u64(50));
        let outcome = hash_mark_set(&[], &contract(), set_sel(), committed, &HmsConfig::default());
        assert_eq!(outcome.view.source, ViewSource::Committed);
        assert_eq!(outcome.view.mark, genesis_mark());
        assert_eq!(outcome.view.value, H256::from_low_u64(50));
        assert_eq!(outcome.view.next_flag(), Flag::Head);
        assert!(outcome.series.is_empty());
    }

    #[test]
    fn pool_of_noise_serves_committed_view() {
        let committed = (genesis_mark(), H256::from_low_u64(50));
        let pool: Vec<PendingTx> = (0..10).map(noise_tx).collect();
        let outcome = hash_mark_set(&pool, &contract(), set_sel(), committed, &HmsConfig::default());
        assert_eq!(outcome.view.source, ViewSource::Committed);
    }

    #[test]
    fn chained_sets_serve_the_tail() {
        let committed = (genesis_mark(), H256::from_low_u64(50));
        let s1 = set_tx(0, Flag::Head, genesis_mark(), 60);
        let m1 = compute_mark(&genesis_mark(), &H256::from_low_u64(60));
        let s2 = set_tx(1, Flag::Success, m1, 70);
        let m2 = compute_mark(&m1, &H256::from_low_u64(70));
        let pool = vec![noise_tx(100), s1, s2, noise_tx(101)];
        let outcome = hash_mark_set(&pool, &contract(), set_sel(), committed, &HmsConfig::default());
        assert_eq!(outcome.view.source, ViewSource::Uncommitted);
        assert_eq!(outcome.view.mark, m2);
        assert_eq!(outcome.view.value, H256::from_low_u64(70));
        assert_eq!(outcome.view.series_len, 2);
        assert_eq!(outcome.view.next_flag(), Flag::Success);
        assert_eq!(outcome.series.len(), 2);
    }

    #[test]
    fn orphaned_successors_fall_back_to_committed() {
        // The series' head was just committed: a SUCCESS-flagged tx chains
        // onto a mark that is no longer in the pool.
        let committed_mark = H256::keccak(b"published-mark");
        let committed = (committed_mark, H256::from_low_u64(50));
        let orphan = set_tx(0, Flag::Success, committed_mark, 60);
        let outcome = hash_mark_set(
            std::slice::from_ref(&orphan),
            &contract(),
            set_sel(),
            committed,
            &HmsConfig::default(),
        );
        assert_eq!(outcome.view.source, ViewSource::Committed, "paper baseline loses the orphan");

        // The committed-head extension recovers it.
        let extended =
            hash_mark_set(&[orphan], &contract(), set_sel(), committed, &HmsConfig { committed_head: true });
        assert_eq!(extended.view.source, ViewSource::Uncommitted);
        assert_eq!(extended.view.value, H256::from_low_u64(60));
    }

    #[test]
    fn view_words_encode_hint_mark_value() {
        let committed = (genesis_mark(), H256::from_low_u64(50));
        let outcome = hash_mark_set(&[], &contract(), set_sel(), committed, &HmsConfig::default());
        let words = outcome.view.to_words();
        assert_eq!(words[0], SPECIAL_VALUE);
        assert_eq!(words[1], genesis_mark());
        assert_eq!(words[2], H256::from_low_u64(50));
    }

    #[test]
    fn longest_of_competing_series_wins() {
        let committed = (genesis_mark(), H256::from_low_u64(50));
        // Series A: head(60).
        let a1 = set_tx(0, Flag::Head, genesis_mark(), 60);
        // Series B: head(70) -> succ(80).
        let b1 = set_tx(1, Flag::Head, genesis_mark(), 70);
        let b1_mark = compute_mark(&genesis_mark(), &H256::from_low_u64(70));
        let b2 = set_tx(2, Flag::Success, b1_mark, 80);
        let outcome = hash_mark_set(&[a1, b1, b2], &contract(), set_sel(), committed, &HmsConfig::default());
        assert_eq!(outcome.view.value, H256::from_low_u64(80));
        assert_eq!(outcome.view.series_len, 2);
    }
}
