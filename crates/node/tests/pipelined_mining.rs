//! Cross-block pipelined mining: the `PipelinedMiner` seals byte-identical
//! blocks to the serial `mine()` loop under every race the pipeline is
//! exposed to — gossip blocks preempting the predicted parent, timestamp
//! jitter invalidating env-reading speculation, repeated misses degrading
//! to the serial twin — while keeping the two-acquisition node-lock
//! discipline and actually reusing prespeculated work.
//!
//! The equivalence case is a randomized property (scaled by
//! `PROPTEST_CASES` like the other suites): each case replays the same
//! submission/gossip/jitter schedule against a serial miner and a
//! pipelined miner and requires hash-equal blocks every round.

mod common;

use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use bytes::Bytes;
use sereth_chain::builder::BlockLimits;
use sereth_chain::genesis::{Genesis, GenesisBuilder};
use sereth_chain::parallel::ExecMode;
use sereth_core::fpv::{Flag, Fpv};
use sereth_core::mark::genesis_mark;
use sereth_crypto::address::Address;
use sereth_crypto::hash::H256;
use sereth_crypto::sig::SecretKey;
use sereth_node::contract::{
    buy_selector, default_contract_address, sereth_code, sereth_genesis_slots, ContractForm,
};
use sereth_node::miner::MinerPolicy;
use sereth_node::node::{BlockReceipt, NodeConfig, NodeHandle};
use sereth_node::pipeline::PipelinedMiner;
use sereth_types::transaction::{Transaction, TxPayload};
use sereth_types::u256::U256;
use sereth_vm::asm::assemble;
use sereth_vm::exec::ContractCode;

const SENDERS: usize = 6;
const BLOCK_CAP: usize = 6;

/// Address of a contract that reads the block env: `TIMESTAMP` and
/// `NUMBER` both land in storage, so a mispredicted env that slipped
/// through validation would change the sealed state root.
fn clock_address() -> Address {
    Address::from_low_u64(0xc10c)
}

fn sender_key(i: usize) -> SecretKey {
    SecretKey::from_label(9_100 + i as u64)
}

fn rival_key() -> SecretKey {
    SecretKey::from_label(9_099)
}

fn genesis(owner: &SecretKey) -> Genesis {
    let clock =
        assemble("TIMESTAMP\nPUSH1 0x00\nSSTORE\nNUMBER\nPUSH1 0x01\nSSTORE\nSTOP").expect("clock assembles");
    let mut builder = GenesisBuilder::new()
        .fund(owner.address(), U256::from(1_000_000_000u64))
        .fund(rival_key().address(), U256::from(1_000_000_000u64))
        .contract_with_storage(
            default_contract_address(),
            sereth_code(ContractForm::Native),
            sereth_genesis_slots(&owner.address(), H256::from_low_u64(50)),
        )
        .contract(clock_address(), ContractCode::Bytecode(Bytes::from(clock)));
    for i in 0..SENDERS {
        builder = builder.fund(sender_key(i).address(), U256::from(1_000_000_000u64));
    }
    builder.build()
}

fn node(owner: &SecretKey, coinbase: u64, exec_mode: ExecMode) -> NodeHandle {
    NodeHandle::new(
        genesis(owner),
        NodeConfig::miner(default_contract_address(), MinerPolicy::Standard)
            .coinbase(Address::from_low_u64(coinbase))
            // A small cap keeps a backlog behind every block, so there is
            // always something for the pipeline to prespeculate.
            .limits(BlockLimits { gas_limit: 8_000_000, max_txs: Some(BLOCK_CAP) })
            .exec_mode(exec_mode)
            .build(),
    )
}

fn transfer(key: &SecretKey, nonce: u64, to: u64, value: u64) -> Transaction {
    Transaction::sign(
        TxPayload {
            nonce,
            gas_price: 1,
            gas_limit: 21_000,
            to: Some(Address::from_low_u64(0xa000 + to)),
            value: U256::from(value),
            input: Bytes::new(),
        },
        key,
    )
}

/// A call into the clock contract: stores the block's timestamp and
/// number, so every clock call both conflicts with every other (slot 0/1)
/// and depends on the env prediction.
fn clock_tx(key: &SecretKey, nonce: u64) -> Transaction {
    Transaction::sign(
        TxPayload {
            nonce,
            gas_price: 2,
            gas_limit: 100_000,
            to: Some(clock_address()),
            value: U256::ZERO,
            input: Bytes::new(),
        },
        key,
    )
}

/// A contending market buy (everything hits the Sereth contract's
/// mark/value slots; failures seal as no-effect receipts, identically on
/// both miners).
fn buy_tx(key: &SecretKey, nonce: u64, value: u64) -> Transaction {
    Transaction::sign(
        TxPayload {
            nonce,
            gas_price: 3,
            gas_limit: 200_000,
            to: Some(default_contract_address()),
            value: U256::ZERO,
            input: Fpv::new(Flag::Success, genesis_mark(), H256::from_low_u64(value))
                .to_calldata(buy_selector()),
        },
        key,
    )
}

/// Deterministic splitmix64 — the same per-case schedule on every run.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// One randomized case: identical submissions and gossip preemptions
/// against a serial miner and a pipelined miner must seal hash-equal
/// chains. Returns the pipelined node for telemetry inspection.
fn run_equivalence_case(seed: u64, rounds: u64) -> NodeHandle {
    let owner = SecretKey::from_label(1);
    let serial = node(&owner, 0xc01, ExecMode::Sequential);
    let pipelined = PipelinedMiner::new(node(&owner, 0xc01, ExecMode::Parallel { threads: 2 }));
    // The rival miner models the rest of the network: its blocks arrive
    // by gossip and move the head out from under the prediction. A
    // distinct coinbase keeps its fee credits (not ours) in the
    // pre-state diff.
    let rival = node(&owner, 0xd1f, ExecMode::Sequential);

    let mut rng = Rng(seed);
    let mut nonces = [0u64; SENDERS];
    let mut rival_nonce = 0u64;
    let mut now = 15_000u64;
    for round in 0..rounds {
        // A randomized batch, wider than the block cap so a backlog
        // accumulates for prespeculation.
        let batch = BLOCK_CAP as u64 + 2 + rng.below(4);
        for _ in 0..batch {
            let s = rng.below(SENDERS as u64) as usize;
            let key = sender_key(s);
            let tx = match rng.below(3) {
                0 => clock_tx(&key, nonces[s]),
                1 => buy_tx(&key, nonces[s], 40 + rng.below(30)),
                _ => transfer(&key, nonces[s], rng.below(16), 1 + rng.below(9)),
            };
            nonces[s] += 1;
            assert!(serial.receive_tx(tx.clone(), now), "serial rejects at round {round}");
            assert!(pipelined.node().receive_tx(tx, now), "pipelined rejects at round {round}");
        }

        // Sometimes a rival block lands first: both miners import it and
        // the pipelined miner's parked prediction misses its parent.
        if rng.below(3) == 0 {
            assert!(rival.receive_tx(transfer(&rival_key(), rival_nonce, 99, 7), now));
            rival_nonce += 1;
            let gossip = rival.mine(now + 1).expect("rival seals");
            assert_eq!(serial.receive_block(gossip.clone()), BlockReceipt::Imported);
            assert_eq!(pipelined.node().receive_block(gossip), BlockReceipt::Imported);
        }

        // Jittered production times: the predicted next timestamp
        // (now + interval) is wrong whenever the jitter changes, which
        // must invalidate exactly the clock-reading speculation.
        now += 14_000 + rng.below(3) * 1_000;
        let ours = serial.mine(now).expect("serial seals");
        let theirs = pipelined.mine(now).expect("pipelined seals");
        assert_eq!(
            theirs.hash(),
            ours.hash(),
            "pipelined block diverged at seed {seed} round {round} (serial {} txs, pipelined {} txs)",
            ours.transactions.len(),
            theirs.transactions.len()
        );
        // Keep the rival on the canonical chain so its next preemption
        // extends the same head.
        assert_eq!(rival.receive_block(ours), BlockReceipt::Imported);
    }

    assert_eq!(pipelined.node().head_number(), serial.head_number(), "seed {seed}");
    assert_eq!(
        pipelined.node().with_inner(|inner| inner.chain.head_state().state_root()),
        serial.with_inner(|inner| inner.chain.head_state().state_root()),
        "post-state diverged at seed {seed}"
    );
    pipelined.node().clone()
}

#[test]
fn pipelined_miner_matches_the_serial_twin_under_randomized_races() {
    let cases = common::cases(12);
    let mut held = 0u64;
    let mut replanned = 0u64;
    let mut reused = 0u64;
    for case in 0..cases as u64 {
        let node = run_equivalence_case(0x5e_ed + case * 7_919, 6);
        let snapshot = node.telemetry_snapshot();
        held += snapshot.counters.get("pipeline.predictions_held").copied().unwrap_or(0);
        replanned += snapshot.counters.get("pipeline.predictions_replanned").copied().unwrap_or(0);
        reused += snapshot.counters.get("pipeline.prefed_reused").copied().unwrap_or(0);
    }
    // The suite is vacuous unless both validation verdicts occurred and
    // prespeculated work was actually consumed.
    assert!(held > 0, "no prediction ever held across {cases} cases");
    assert!(replanned > 0, "no gossip preemption ever forced a replan across {cases} cases");
    assert!(reused > 0, "no prespeculated outcome was ever reused across {cases} cases");
}

#[test]
fn repeated_misses_degrade_to_the_serial_twin_and_recover() {
    let owner = SecretKey::from_label(1);
    let serial = node(&owner, 0xc01, ExecMode::Sequential);
    let pipelined = PipelinedMiner::new(node(&owner, 0xc01, ExecMode::Sequential));
    let rival = node(&owner, 0xd1f, ExecMode::Sequential);

    let mut nonces = [0u64; SENDERS];
    let mut rival_nonce = 0u64;
    let mut now = 15_000u64;
    let mine_round = |preempt: bool, nonces: &mut [u64; SENDERS], rival_nonce: &mut u64, now: &mut u64| {
        for (s, nonce) in nonces.iter_mut().enumerate() {
            let tx = transfer(&sender_key(s), *nonce, s as u64, 3);
            *nonce += 1;
            assert!(serial.receive_tx(tx.clone(), *now));
            assert!(pipelined.node().receive_tx(tx, *now));
        }
        if preempt {
            assert!(rival.receive_tx(transfer(&rival_key(), *rival_nonce, 99, 7), *now));
            *rival_nonce += 1;
            let gossip = rival.mine(*now + 1).expect("rival seals");
            assert_eq!(serial.receive_block(gossip.clone()), BlockReceipt::Imported);
            assert_eq!(pipelined.node().receive_block(gossip), BlockReceipt::Imported);
        }
        *now += 15_000;
        let ours = serial.mine(*now).expect("serial seals");
        let theirs = pipelined.mine(*now).expect("pipelined seals");
        assert_eq!(theirs.hash(), ours.hash(), "diverged under degradation");
        assert_eq!(rival.receive_block(ours), BlockReceipt::Imported);
    };

    // Relentless preemption: every prediction misses, so the second miss
    // degrades the miner to the serial twin for its backoff window —
    // blocks must stay byte-identical throughout.
    for _ in 0..8 {
        mine_round(true, &mut nonces, &mut rival_nonce, &mut now);
    }
    let snapshot = pipelined.node().telemetry_snapshot();
    let replanned = snapshot.counters.get("pipeline.predictions_replanned").copied().unwrap_or(0);
    let abandoned = snapshot.counters.get("pipeline.predictions_abandoned").copied().unwrap_or(0);
    assert!(replanned >= 2, "misses must replan before degrading: {replanned}");
    assert!(abandoned >= 1, "two consecutive misses must degrade at least one block: {abandoned}");
    assert_eq!(snapshot.counters.get("pipeline.predictions_held").copied().unwrap_or(0), 0);

    // Calm gossip: the miner must climb back out of degradation and start
    // holding predictions again.
    for _ in 0..4 {
        mine_round(false, &mut nonces, &mut rival_nonce, &mut now);
    }
    let snapshot = pipelined.node().telemetry_snapshot();
    let held = snapshot.counters.get("pipeline.predictions_held").copied().unwrap_or(0);
    assert!(held >= 1, "the pipeline must recover once gossip calms: {held}");
}

#[test]
fn pipelined_mine_takes_exactly_two_node_lock_acquisitions() {
    let owner = SecretKey::from_label(1);
    let pipelined = PipelinedMiner::new(node(&owner, 0xc01, ExecMode::Sequential));
    for s in 0..SENDERS {
        assert!(pipelined.node().receive_tx(transfer(&sender_key(s), 0, s as u64, 2), 100));
    }
    // Two sealed blocks: the first builds serially (nothing parked yet),
    // the second consumes the prespeculation. Both must keep `mine()`'s
    // two-lock discipline — the prespeculation thread may touch only the
    // pool's own shard locks and its owned state snapshot.
    for round in 1..=2u64 {
        for s in 0..SENDERS {
            assert!(pipelined.node().receive_tx(transfer(&sender_key(s), round, s as u64, 2), 100 + round));
        }
        let before = pipelined.node().lock_acquisitions();
        let block = pipelined.mine(15_000 * round).expect("seals");
        assert!(!block.transactions.is_empty());
        assert_eq!(
            pipelined.node().lock_acquisitions() - before,
            2,
            "pipelined mining must lock only to snapshot and to import (round {round})"
        );
    }
}

#[test]
fn pipelined_miner_survives_concurrent_submission_fire() {
    const SUBMIT_THREADS: usize = 3;
    const NONCES_PER_SENDER: u64 = 10;
    let owner = SecretKey::from_label(1);
    let miner = PipelinedMiner::new(node(&owner, 0xc01, ExecMode::Parallel { threads: 2 }));
    let follower = node(&owner, 0xc01, ExecMode::Sequential);

    let submitting = AtomicBool::new(true);
    let submissions = AtomicU64::new(0);
    let blocks = std::thread::scope(|scope| {
        let miner_ref = &miner;
        let submitting_ref = &submitting;
        let submissions_ref = &submissions;
        let mut handles = Vec::new();
        for t in 0..SUBMIT_THREADS {
            handles.push(scope.spawn(move || {
                for nonce in 0..NONCES_PER_SENDER {
                    for s in 0..SENDERS {
                        if s % SUBMIT_THREADS != t {
                            continue;
                        }
                        let key = sender_key(s);
                        let tx = match (s + nonce as usize) % 3 {
                            0 => clock_tx(&key, nonce),
                            1 => buy_tx(&key, nonce, 40 + nonce),
                            _ => transfer(&key, nonce, s as u64, 1 + nonce),
                        };
                        assert!(miner_ref.node().receive_tx(tx, nonce), "rejected s={s} nonce={nonce}");
                        submissions_ref.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }));
        }

        let locks_before = miner.node().lock_acquisitions();
        let mining = scope.spawn(move || {
            let mut sealed = Vec::new();
            let mut timestamp = 15_000u64;
            let mut idle = 0;
            while idle < 3 {
                let block = miner_ref.mine(timestamp).expect("seals");
                timestamp += 15_000;
                if block.transactions.is_empty() && !submitting_ref.load(Ordering::Relaxed) {
                    idle += 1;
                } else {
                    idle = 0;
                }
                sealed.push(block);
                std::thread::yield_now();
            }
            sealed
        });
        for handle in handles {
            handle.join().expect("submitter");
        }
        submitting.store(false, Ordering::Relaxed);
        let blocks = mining.join().expect("miner thread");
        // ≤ 2 node-lock acquisitions per sealed block: the total spent in
        // the window is the miner's 2-per-block budget plus one per
        // concurrent submission — nothing else may touch the lock.
        let locks = miner.node().lock_acquisitions() - locks_before;
        let budget = 2 * blocks.len() as u64 + submissions.load(Ordering::Relaxed);
        assert!(locks <= budget, "lock budget exceeded: {locks} > {budget}");
        blocks
    });
    assert!(blocks.len() >= 3);

    // Nothing lost or duplicated under fire, and an unmodified follower
    // replay-validates the whole pipelined chain.
    let committed: Vec<H256> =
        blocks.iter().flat_map(|b| b.transactions.iter().map(Transaction::hash)).collect();
    let unique: HashSet<H256> = committed.iter().copied().collect();
    assert_eq!(committed.len(), unique.len(), "a transaction committed twice");
    assert_eq!(unique.len(), SENDERS * NONCES_PER_SENDER as usize, "transactions lost under concurrency");
    assert_eq!(miner.node().pool_len(), 0, "pool must drain");
    for block in &blocks {
        assert_eq!(follower.receive_block(block.clone()), BlockReceipt::Imported);
    }
    assert_eq!(follower.head_number(), miner.node().head_number());
}
