//! Property test: the Sereth contract's assembly and native forms are
//! observationally equivalent — same storage effects, same logs, same
//! return data — over arbitrary call sequences, honest or adversarial.
//!
//! This is the repository's substitute for trusting a Solidity compiler
//! (DESIGN.md §7): Listing 1's semantics are encoded twice, independently,
//! and checked against each other.

use bytes::Bytes;
use proptest::prelude::*;
use sereth_core::fpv::{Flag, Fpv, HEAD_FLAG, SUCCESS_FLAG};
use sereth_core::mark::genesis_mark;
use sereth_crypto::address::Address;
use sereth_crypto::hash::H256;
use sereth_node::contract::{
    buy_selector, default_contract_address, get_selector, mark_selector, sereth_code, sereth_genesis_slots,
    set_selector, ContractForm, SLOT_ADDRESS, SLOT_MARK, SLOT_N_BUY, SLOT_N_SET, SLOT_VALUE,
};
use sereth_vm::abi::{self, Selector};
use sereth_vm::exec::{CallEnv, ContractCode, MemStorage, Storage};
use sereth_vm::raa::{execute_call, RaaRegistry};

const GAS: u64 = 10_000_000;

#[derive(Debug, Clone)]
struct Call {
    selector: Selector,
    caller: Address,
    words: [H256; 3],
}

/// Strategy over calls: a mix of honest chained operations and garbage.
fn call_strategy() -> impl Strategy<Value = Call> {
    (
        0usize..6,
        0u64..8,      // caller label
        any::<u64>(), // word material
        any::<u64>(),
    )
        .prop_map(|(kind, caller, a, b)| {
            let selector = match kind {
                0 | 1 => set_selector(),
                2 => buy_selector(),
                3 => get_selector(),
                4 => mark_selector(),
                _ => [0xde, 0xad, 0xbe, 0xef],
            };
            let flag = match a % 3 {
                0 => HEAD_FLAG,
                1 => SUCCESS_FLAG,
                _ => H256::from_low_u64(a),
            };
            // Sometimes chain honestly onto the genesis mark; sometimes
            // offer random marks.
            let prev = if b % 2 == 0 { genesis_mark() } else { H256::from_low_u64(b) };
            Call {
                selector,
                caller: Address::from_low_u64(caller + 1),
                words: [flag, prev, H256::from_low_u64(a % 100)],
            }
        })
}

fn fresh_storage(contract: &Address) -> MemStorage {
    let mut storage = MemStorage::new();
    for (slot, value) in sereth_genesis_slots(&Address::from_low_u64(0xb055), H256::from_low_u64(50)) {
        storage.storage_set(contract, slot, value);
    }
    storage
}

fn observable_state(storage: &MemStorage, contract: &Address) -> [H256; 5] {
    [
        storage.storage_get(contract, &SLOT_ADDRESS),
        storage.storage_get(contract, &SLOT_MARK),
        storage.storage_get(contract, &SLOT_VALUE),
        storage.storage_get(contract, &SLOT_N_SET),
        storage.storage_get(contract, &SLOT_N_BUY),
    ]
}

/// Applies one call, with follow-the-chain fixups so a meaningful fraction
/// of sets succeed: when `prev` equals the genesis mark, rewrite it to the
/// contract's *current* mark, making chains form organically.
fn apply(code: &ContractCode, storage: &mut MemStorage, contract: &Address, call: &Call) -> (Bytes, usize) {
    let mut words = call.words;
    if words[1] == genesis_mark() {
        words[1] = storage.storage_get(contract, &SLOT_MARK);
    }
    let calldata = abi::encode_call(call.selector, &words);
    let env = CallEnv::test_env(call.caller, *contract, calldata);
    let outcome = execute_call(code, env, storage, GAS, &RaaRegistry::new());
    (outcome.return_data, outcome.logs.len())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Arbitrary call sequences leave both forms in identical observable
    /// states with identical outputs.
    #[test]
    fn asm_and_native_agree(calls in proptest::collection::vec(call_strategy(), 1..24)) {
        let contract = default_contract_address();
        let native_code = sereth_code(ContractForm::Native);
        let bytecode = sereth_code(ContractForm::Bytecode);
        let mut native_storage = fresh_storage(&contract);
        let mut asm_storage = fresh_storage(&contract);

        for (index, call) in calls.iter().enumerate() {
            let (native_ret, native_logs) = apply(&native_code, &mut native_storage, &contract, call);
            let (asm_ret, asm_logs) = apply(&bytecode, &mut asm_storage, &contract, call);
            prop_assert_eq!(&native_ret, &asm_ret, "return data diverged at call {}", index);
            prop_assert_eq!(native_logs, asm_logs, "log count diverged at call {}", index);
            prop_assert_eq!(
                observable_state(&native_storage, &contract),
                observable_state(&asm_storage, &contract),
                "storage diverged at call {}",
                index
            );
        }
    }

    /// Honest chained histories apply fully in both forms: n sets all
    /// succeed, and buys at the final (mark, value) succeed exactly once
    /// per buyer.
    #[test]
    fn honest_chains_apply_identically(values in proptest::collection::vec(1u64..1000, 1..16)) {
        let contract = default_contract_address();
        for form in [ContractForm::Native, ContractForm::Bytecode] {
            let code = sereth_code(form);
            let mut storage = fresh_storage(&contract);
            let mut mark = genesis_mark();
            for (i, &value) in values.iter().enumerate() {
                let fpv = Fpv::new(if i == 0 { Flag::Head } else { Flag::Success }, mark, H256::from_low_u64(value));
                let env = CallEnv::test_env(
                    Address::from_low_u64(1),
                    contract,
                    fpv.to_calldata(set_selector()),
                );
                let outcome = execute_call(&code, env, &mut storage, GAS, &RaaRegistry::new());
                prop_assert!(outcome.status.is_success());
                mark = sereth_core::mark::compute_mark(&mark, &H256::from_low_u64(value));
            }
            prop_assert_eq!(storage.storage_get(&contract, &SLOT_N_SET).low_u64(), values.len() as u64);
            prop_assert_eq!(storage.storage_get(&contract, &SLOT_MARK), mark);

            // A buy at the tail succeeds.
            let offer = Fpv {
                flag_word: SUCCESS_FLAG,
                prev_mark: mark,
                value: H256::from_low_u64(*values.last().unwrap()),
            };
            let env = CallEnv::test_env(Address::from_low_u64(2), contract, offer.to_calldata(buy_selector()));
            execute_call(&code, env, &mut storage, GAS, &RaaRegistry::new());
            prop_assert_eq!(storage.storage_get(&contract, &SLOT_N_BUY).low_u64(), 1);
        }
    }
}
