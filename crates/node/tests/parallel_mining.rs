//! Node-level integration of the parallel block executor: a miner running
//! `ExecMode::Parallel` seals byte-identical blocks to a sequential miner
//! over the same pool, the sealed blocks replay-validate on unmodified
//! followers, and the executor's counters surface through the handle.

use bytes::Bytes;
use sereth_chain::parallel::ExecMode;
use sereth_chain::validation::ValidationMode;
use sereth_core::fpv::{Flag, Fpv};
use sereth_core::mark::{compute_mark, genesis_mark};
use sereth_crypto::address::Address;
use sereth_crypto::hash::H256;
use sereth_crypto::sig::SecretKey;
use sereth_node::contract::{
    buy_selector, default_contract_address, sereth_code, sereth_genesis_slots, set_selector, ContractForm,
};
use sereth_node::miner::MinerPolicy;
use sereth_node::node::{BlockReceipt, NodeConfig, NodeHandle};
use sereth_types::transaction::{Transaction, TxPayload};
use sereth_types::u256::U256;

fn genesis(keys: &[SecretKey], owner: &SecretKey) -> sereth_chain::genesis::Genesis {
    let mut builder = sereth_chain::genesis::GenesisBuilder::new()
        .fund(owner.address(), U256::from(1_000_000_000u64))
        .contract_with_storage(
            default_contract_address(),
            sereth_code(ContractForm::Native),
            sereth_genesis_slots(&owner.address(), H256::from_low_u64(50)),
        );
    for key in keys {
        builder = builder.fund(key.address(), U256::from(1_000_000_000u64));
    }
    builder.build()
}

fn miner_node(keys: &[SecretKey], owner: &SecretKey, exec_mode: ExecMode) -> NodeHandle {
    node_with_modes(keys, owner, exec_mode, ValidationMode::Sequential)
}

fn node_with_modes(
    keys: &[SecretKey],
    owner: &SecretKey,
    exec_mode: ExecMode,
    validation_mode: ValidationMode,
) -> NodeHandle {
    NodeHandle::new(
        genesis(keys, owner),
        NodeConfig::miner(default_contract_address(), MinerPolicy::Standard)
            .coinbase(Address::from_low_u64(0xc01))
            .exec_mode(exec_mode)
            .validation_mode(validation_mode)
            .build(),
    )
}

fn market_tx(
    key: &SecretKey,
    nonce: u64,
    selector: [u8; 4],
    flag: Flag,
    prev: H256,
    value: u64,
) -> Transaction {
    Transaction::sign(
        TxPayload {
            nonce,
            gas_price: 1,
            gas_limit: 200_000,
            to: Some(default_contract_address()),
            value: U256::ZERO,
            input: Fpv::new(flag, prev, H256::from_low_u64(value)).to_calldata(selector),
        },
        key,
    )
}

fn transfer(key: &SecretKey, nonce: u64, to: u64, value: u64) -> Transaction {
    Transaction::sign(
        TxPayload {
            nonce,
            gas_price: 1,
            gas_limit: 21_000,
            to: Some(Address::from_low_u64(0xa000 + to)),
            value: U256::from(value),
            input: Bytes::new(),
        },
        key,
    )
}

/// A mixed pool: one market's set chain plus contending buys (everything
/// touches the contract's mark/value slots) and disjoint transfers.
fn workload(keys: &[SecretKey], owner: &SecretKey) -> Vec<Transaction> {
    let m0 = genesis_mark();
    let m1 = compute_mark(&m0, &H256::from_low_u64(60));
    let mut txs = vec![
        market_tx(owner, 0, set_selector(), Flag::Head, m0, 60),
        market_tx(owner, 1, set_selector(), Flag::Success, m1, 70),
    ];
    for (i, key) in keys.iter().enumerate() {
        txs.push(market_tx(key, 0, buy_selector(), Flag::Success, m0, 50));
        txs.push(transfer(key, 1, i as u64, 25));
    }
    txs
}

#[test]
fn parallel_miner_seals_the_sequential_block_and_followers_validate_it() {
    let owner = SecretKey::from_label(1);
    let keys: Vec<SecretKey> = (10..18).map(SecretKey::from_label).collect();

    let sequential = miner_node(&keys, &owner, ExecMode::Sequential);
    let parallel = miner_node(&keys, &owner, ExecMode::Parallel { threads: 4 });
    let follower = miner_node(&keys, &owner, ExecMode::Sequential);

    for (i, tx) in workload(&keys, &owner).into_iter().enumerate() {
        assert!(sequential.receive_tx(tx.clone(), 100 + i as u64));
        assert!(parallel.receive_tx(tx, 100 + i as u64));
    }

    let seq_block = sequential.mine(15_000).expect("sequential miner seals");
    let par_block = parallel.mine(15_000).expect("parallel miner seals");
    assert_eq!(par_block.hash(), seq_block.hash(), "parallel mining must be byte-equivalent");
    assert!(!par_block.transactions.is_empty());

    // An unmodified node replay-validates the parallel-mined block.
    assert_eq!(follower.receive_block(par_block), BlockReceipt::Imported);
    assert_eq!(follower.head_number(), 1);

    // The executor's counters are observable through the handle; the
    // contending market traffic exercised the serial paths, the disjoint
    // transfers the fast path.
    let stats = parallel.exec_stats();
    assert!(stats.waves >= 1, "at least one speculation wave: {stats:?}");
    assert!(stats.speculated > 0, "speculation ran: {stats:?}");
    assert!(stats.fast_commits > 0, "disjoint traffic committed fast: {stats:?}");
    assert!(stats.fallbacks + stats.sequential_txs > 0, "market contention serialized somewhere: {stats:?}");
    assert_eq!(sequential.exec_stats().waves, 0, "sequential mode never waves");
}

#[test]
fn parallel_validating_follower_accepts_blocks_and_reports_replay_stats() {
    let owner = SecretKey::from_label(1);
    let keys: Vec<SecretKey> = (10..18).map(SecretKey::from_label).collect();

    let miner = miner_node(&keys, &owner, ExecMode::Sequential);
    // Two followers over the same feed: one replays sequentially, one on
    // the wave executor. Their import verdicts and heads must agree.
    let sequential_follower =
        node_with_modes(&keys, &owner, ExecMode::Sequential, ValidationMode::Sequential);
    let parallel_follower =
        node_with_modes(&keys, &owner, ExecMode::Sequential, ValidationMode::Parallel { threads: 4 });

    for (i, tx) in workload(&keys, &owner).into_iter().enumerate() {
        assert!(miner.receive_tx(tx, 100 + i as u64));
    }
    let block = miner.mine(15_000).expect("miner seals");
    assert!(!block.transactions.is_empty());

    assert_eq!(sequential_follower.receive_block(block.clone()), BlockReceipt::Imported);
    assert_eq!(parallel_follower.receive_block(block.clone()), BlockReceipt::Imported);
    assert_eq!(parallel_follower.head_number(), 1);
    assert_eq!(
        parallel_follower.with_inner(|inner| inner.chain.head_state().state_root()),
        sequential_follower.with_inner(|inner| inner.chain.head_state().state_root()),
        "both replay modes reconstruct the same post-state"
    );

    // The replay counters surface per node: parallel follower waved,
    // sequential follower replayed tx-by-tx, the miner's own import used
    // its (sequential) validation mode.
    let par_stats = parallel_follower.validation_stats();
    assert!(par_stats.waves >= 1, "parallel replay ran: {par_stats:?}");
    assert!(par_stats.speculated > 0, "replay speculation ran: {par_stats:?}");
    let seq_stats = sequential_follower.validation_stats();
    assert_eq!(seq_stats.waves, 0, "sequential replay never waves");
    assert_eq!(seq_stats.sequential_txs, block.transactions.len() as u64);

    // A tampered variant is rejected by both, identically.
    let mut evil = block.clone();
    evil.transactions[0] = evil.transactions[0].with_tampered_input(Bytes::from_static(b"oops"));
    evil.header.tx_root = sereth_types::block::Block::compute_tx_root(&evil.transactions);
    assert_eq!(sequential_follower.receive_block(evil.clone()), BlockReceipt::Rejected);
    assert_eq!(parallel_follower.receive_block(evil), BlockReceipt::Rejected);
}

#[test]
fn parallel_miner_stays_equivalent_across_consecutive_blocks() {
    let owner = SecretKey::from_label(1);
    let keys: Vec<SecretKey> = (10..14).map(SecretKey::from_label).collect();
    let sequential = miner_node(&keys, &owner, ExecMode::Sequential);
    let parallel = miner_node(&keys, &owner, ExecMode::Parallel { threads: 2 });

    let mut now = 100;
    for round in 0..3u64 {
        // Fresh transfers each round (values vary so state keeps moving).
        for (i, key) in keys.iter().enumerate() {
            let tx = transfer(key, round, i as u64, 10 + round);
            assert!(sequential.receive_tx(tx.clone(), now));
            assert!(parallel.receive_tx(tx, now));
            now += 1;
        }
        let timestamp = 15_000 * (round + 1);
        let seq_block = sequential.mine(timestamp).expect("seals");
        let par_block = parallel.mine(timestamp).expect("seals");
        assert_eq!(par_block.hash(), seq_block.hash(), "round {round}");
    }
    assert_eq!(parallel.head_number(), 3);
}
