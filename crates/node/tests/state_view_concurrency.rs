//! Concurrent readers against copy-on-write state views.
//!
//! N reader threads issue `query_view_for` and capture O(1) `StateView`s
//! while a writer thread keeps sealing blocks. The COW contract under
//! load: no torn reads (every captured view's recomputed root equals the
//! header root it was captured with), every view's committed AMV matches
//! the deterministic oracle for its block height, and every served
//! `(mark, value)` pair is a member of the precomputed mark chain — a torn
//! or aliased read would fabricate a pair outside it.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

use sereth_chain::genesis::{Genesis, GenesisBuilder};
use sereth_core::fpv::{Flag, Fpv};
use sereth_core::mark::{compute_mark, genesis_mark};
use sereth_crypto::address::Address;
use sereth_crypto::hash::H256;
use sereth_crypto::sig::SecretKey;
use sereth_node::contract::{
    default_contract_address, sereth_code, sereth_genesis_slots, set_selector, ContractForm,
};
use sereth_node::miner::{committed_amv, MinerPolicy};
use sereth_node::node::{ClientKind, NodeConfig, NodeHandle};
use sereth_types::transaction::{Transaction, TxPayload};
use sereth_types::u256::U256;

const INITIAL_PRICE: u64 = 50;

fn test_genesis(owner: &SecretKey) -> Genesis {
    GenesisBuilder::new()
        .fund(owner.address(), U256::from(1_000_000_000u64))
        .contract_with_storage(
            default_contract_address(),
            sereth_code(ContractForm::Native),
            sereth_genesis_slots(&owner.address(), H256::from_low_u64(INITIAL_PRICE)),
        )
        .build()
}

fn sereth_node(owner: &SecretKey) -> NodeHandle {
    NodeHandle::new(
        test_genesis(owner),
        NodeConfig::miner(default_contract_address(), MinerPolicy::Standard)
            .kind(ClientKind::Sereth)
            .coinbase(Address::from_low_u64(0xc01))
            .build(),
    )
}

fn set_tx(owner: &SecretKey, nonce: u64, prev: H256, value: H256) -> Transaction {
    Transaction::sign(
        TxPayload {
            nonce,
            gas_price: 1,
            gas_limit: 200_000,
            to: Some(default_contract_address()),
            value: U256::ZERO,
            input: Fpv::new(if nonce == 0 { Flag::Head } else { Flag::Success }, prev, value)
                .to_calldata(set_selector()),
        },
        owner,
    )
}

/// The deterministic oracle: `(mark, value)` after `h` sealed blocks, one
/// set per block, values `100 + h`.
fn amv_chain(blocks: usize) -> Vec<(H256, H256)> {
    let mut chain = vec![(genesis_mark(), H256::from_low_u64(INITIAL_PRICE))];
    for b in 0..blocks {
        let (prev_mark, _) = chain[b];
        let value = H256::from_low_u64(100 + b as u64);
        chain.push((compute_mark(&prev_mark, &value), value));
    }
    chain
}

#[test]
fn readers_never_observe_torn_state_while_writer_seals() {
    const BLOCKS: usize = 24;
    const READERS: usize = 4;

    let owner = SecretKey::from_label(1);
    let node = sereth_node(&owner);
    let contract = default_contract_address();
    let chain = amv_chain(BLOCKS);
    // The `mark()` and `get()` calls of one query are two separate
    // read-only executions; a block can seal between them, so the *pair*
    // may straddle two adjacent pool states. Each component, however, must
    // be a member of the deterministic chain — anything else is a torn or
    // fabricated read.
    let valid_marks: std::collections::HashSet<H256> = chain.iter().map(|(m, _)| *m).collect();
    let valid_values: std::collections::HashSet<H256> = chain.iter().map(|(_, v)| *v).collect();

    let done = AtomicBool::new(false);
    let reads = AtomicU64::new(0);
    // Views the writer holds across the whole run, re-verified at the end:
    // (height, header state root, view).
    let held: Mutex<Vec<(u64, H256, sereth_chain::state::StateView)>> = Mutex::new(Vec::new());

    std::thread::scope(|scope| {
        // Writer: submit one set, seal it, record the held view.
        scope.spawn(|| {
            for (b, &(prev_mark, _)) in chain.iter().take(BLOCKS).enumerate() {
                let tx = set_tx(&owner, b as u64, prev_mark, H256::from_low_u64(100 + b as u64));
                assert!(node.receive_tx(tx, (b as u64) * 100 + 1));
                let block = node.mine((b as u64 + 1) * 15_000).expect("miner seals");
                assert_eq!(block.transactions.len(), 1, "the set committed in block {b}");
                let (height, view) = node.head_state_view();
                held.lock().unwrap().push((height, block.header.state_root, view));
            }
            // The sharded pool feed made sealing fast enough that on a
            // single-CPU host all 24 blocks can land inside one scheduler
            // quantum; hold the shutdown flag until at least one reader
            // iteration has genuinely raced the (now sealed) chain.
            while reads.load(Ordering::Relaxed) == 0 {
                std::thread::yield_now();
            }
            done.store(true, Ordering::Release);
        });

        // Readers: capture consistent (height, root, view) triples and
        // issue RAA queries, all while the writer seals.
        for r in 0..READERS {
            let reads = &reads;
            let done = &done;
            let node = &node;
            let valid_marks = &valid_marks;
            let valid_values = &valid_values;
            let chain = &chain;
            scope.spawn(move || {
                let caller = Address::from_low_u64(0xbead + r as u64);
                while !done.load(Ordering::Acquire) {
                    // One lock: height, header root, and the O(1) view.
                    let (height, header_root, view) = node.with_inner(|inner| {
                        (
                            inner.chain.head_number(),
                            inner.chain.head_block().header.state_root,
                            inner.chain.head_state_view(),
                        )
                    });
                    // No torn reads: the view recomputes the sealed root.
                    assert_eq!(view.state_root(), header_root, "torn view at height {height}");
                    // The view matches the oracle for its height.
                    assert_eq!(
                        committed_amv(&view, &contract),
                        chain[height as usize],
                        "view AMV diverged from oracle at height {height}"
                    );
                    // The RAA read path (uncommitted views included) only
                    // ever serves pairs from the deterministic mark chain.
                    let (mark, value) = node.query_view_for(contract, caller).expect("sereth answers");
                    assert!(valid_marks.contains(&mark), "query served a mark outside the chain: {mark:?}");
                    assert!(
                        valid_values.contains(&value),
                        "query served a value outside the chain: {value:?}"
                    );
                    reads.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
    });

    assert_eq!(node.head_number(), BLOCKS as u64);
    assert!(reads.load(Ordering::Relaxed) > 0, "readers actually ran");

    // Views held since each seal are still byte-exact for their height —
    // O(BLOCKS) live snapshots coexisting is the whole point of COW.
    let held = held.into_inner().unwrap();
    assert_eq!(held.len(), BLOCKS);
    for (height, root, view) in &held {
        assert_eq!(view.state_root(), *root, "held view for height {height} drifted");
        assert_eq!(committed_amv(view, &contract), chain[*height as usize]);
    }
}

#[test]
fn a_view_held_across_the_whole_run_is_immune_to_the_writer() {
    const BLOCKS: usize = 8;
    let owner = SecretKey::from_label(1);
    let node = sereth_node(&owner);
    let contract = default_contract_address();
    let chain = amv_chain(BLOCKS);

    let (height, genesis_view) = node.head_state_view();
    assert_eq!(height, 0);
    let genesis_root = genesis_view.state_root();

    std::thread::scope(|scope| {
        scope.spawn(|| {
            for (b, &(prev_mark, _)) in chain.iter().take(BLOCKS).enumerate() {
                let tx = set_tx(&owner, b as u64, prev_mark, H256::from_low_u64(100 + b as u64));
                node.receive_tx(tx, (b as u64) * 100 + 1);
                node.mine((b as u64 + 1) * 15_000).expect("miner seals");
            }
        });
        // Poll the frozen view from this thread while the writer runs.
        for _ in 0..200 {
            assert_eq!(committed_amv(&genesis_view, &contract), chain[0]);
        }
    });

    assert_eq!(node.head_number(), BLOCKS as u64);
    assert_eq!(genesis_view.state_root(), genesis_root);
    assert_eq!(committed_amv(&genesis_view, &contract), chain[0]);
    // And the live chain did move to the oracle's final entry.
    assert_eq!(node.committed_amv(), chain[BLOCKS]);
}
