//! Helpers shared by the sereth-node integration test suites. Each
//! `tests/*.rs` file is its own crate and pulls this in with
//! `mod common;`, so knobs like the case-count scaling exist once (same
//! convention as `crates/chain/tests/common`).

/// Property-test case count: the suite's acceptance default, scaled by
/// `PROPTEST_CASES` — down in the CI quick lane, up in the nightly job.
pub fn cases(default: u32) -> u32 {
    std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}
