//! Threaded submit-vs-mine stress for the sharded pool feed.
//!
//! Submitter threads hammer `NodeHandle::receive_tx` (which verifies
//! signatures and inserts into the pool's sender shards *outside* the
//! node lock) while a miner thread continuously orders candidates from
//! the incremental index and seals blocks. The test then proves nothing
//! was lost or corrupted under the race: every accepted transaction
//! commits exactly once, a follower validates every sealed block, and
//! the pool drains to empty with its index having served the ordering
//! passes.

use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, Ordering};

use bytes::Bytes;
use sereth_chain::builder::BlockLimits;
use sereth_chain::genesis::Genesis;
use sereth_chain::txpool::PoolConfig;
use sereth_chain::GenesisBuilder;
use sereth_crypto::address::Address;
use sereth_crypto::hash::H256;
use sereth_crypto::sig::SecretKey;
use sereth_node::contract::default_contract_address;
use sereth_node::miner::MinerPolicy;
use sereth_node::node::{BlockReceipt, BlockSchedule, NodeConfig, NodeHandle};
use sereth_types::block::Block;
use sereth_types::transaction::{Transaction, TxPayload};
use sereth_types::u256::U256;

const SUBMITTERS: usize = 4;
const SENDERS_PER_SUBMITTER: usize = 6;
const NONCES_PER_SENDER: u64 = 8;

fn sender_key(submitter: usize, sender: usize) -> SecretKey {
    SecretKey::from_label(7_000 + (submitter * SENDERS_PER_SUBMITTER + sender) as u64)
}

fn transfer(key: &SecretKey, nonce: u64, price: u64) -> Transaction {
    Transaction::sign(
        TxPayload {
            nonce,
            gas_price: price,
            gas_limit: 21_000,
            to: Some(Address::from_low_u64(0xbeef)),
            value: U256::from(1u64),
            input: Bytes::new(),
        },
        key,
    )
}

fn genesis() -> Genesis {
    let mut builder = GenesisBuilder::new();
    for submitter in 0..SUBMITTERS {
        for sender in 0..SENDERS_PER_SUBMITTER {
            builder = builder.fund(sender_key(submitter, sender).address(), U256::from(10_000_000u64));
        }
    }
    builder.build()
}

fn node(miner: bool) -> NodeHandle {
    let mut config = NodeConfig::geth(default_contract_address())
        .limits(BlockLimits { gas_limit: 8_000_000, max_txs: Some(64) })
        .pool(PoolConfig { shards: 16, ..PoolConfig::default() });
    if miner {
        config = config
            .mining(MinerPolicy::Standard)
            .schedule(BlockSchedule::Fixed(1_000))
            .coinbase(Address::from_low_u64(0xc01))
            // A real block budget: each ordering pass reads O(64)
            // candidates from the index, never the whole backlog.
            .candidate_budget(Some(64));
    }
    NodeHandle::new(genesis(), config.build())
}

#[test]
fn concurrent_submitters_and_miner_lose_nothing() {
    let miner = node(true);
    let follower = node(false);

    let total = SUBMITTERS * SENDERS_PER_SUBMITTER * NONCES_PER_SENDER as usize;
    let submitting = AtomicBool::new(true);
    let mut blocks: Vec<Block> = Vec::new();

    std::thread::scope(|scope| {
        let miner_ref = &miner;
        let submitting_ref = &submitting;
        let mut submitter_handles = Vec::new();
        for submitter in 0..SUBMITTERS {
            submitter_handles.push(scope.spawn(move || {
                for nonce in 0..NONCES_PER_SENDER {
                    for sender in 0..SENDERS_PER_SUBMITTER {
                        let key = sender_key(submitter, sender);
                        // Vary prices so fee-priority ordering has work
                        // to do across senders.
                        let price = 1 + ((submitter + sender) as u64 * 7 + nonce * 3) % 23;
                        let tx = transfer(&key, nonce, price);
                        assert!(
                            miner_ref.receive_tx(tx, nonce),
                            "submission rejected for submitter {submitter} sender {sender} nonce {nonce}"
                        );
                    }
                }
            }));
        }

        // The miner thread seals continuously while submissions pour in,
        // then keeps going until the backlog drains.
        let mining = scope.spawn(move || {
            let mut sealed = Vec::new();
            let mut timestamp = 1_000u64;
            let mut idle_rounds = 0;
            while idle_rounds < 3 {
                timestamp += 1_000;
                match miner_ref.mine(timestamp) {
                    Some(block) => {
                        if block.transactions.is_empty()
                            && !submitting_ref.load(Ordering::Relaxed)
                            && miner_ref.pool_len() == 0
                        {
                            idle_rounds += 1;
                        } else {
                            idle_rounds = 0;
                        }
                        sealed.push(block);
                    }
                    None => idle_rounds += 1,
                }
                std::thread::yield_now();
            }
            sealed
        });

        // Only once every submitter has finished may the miner start
        // counting empty blocks as "drained".
        for handle in submitter_handles {
            handle.join().expect("submitter thread");
        }
        submitting.store(false, Ordering::Relaxed);
        blocks = mining.join().expect("miner thread");
    });

    // Every submitted transaction committed exactly once.
    let committed: Vec<H256> =
        blocks.iter().flat_map(|b| b.transactions.iter().map(Transaction::hash)).collect();
    let unique: HashSet<H256> = committed.iter().copied().collect();
    assert_eq!(committed.len(), unique.len(), "a transaction committed twice");
    assert_eq!(
        unique.len(),
        total,
        "lost transactions under concurrency: {} committed of {total}",
        unique.len()
    );
    assert_eq!(miner.pool_len(), 0, "pool must drain");

    // A follower replays and accepts every sealed block.
    for block in &blocks {
        assert_eq!(follower.receive_block(block.clone()), BlockReceipt::Imported);
    }
    assert_eq!(follower.head_number(), miner.head_number());

    // The ordering passes were served by the index, incrementally.
    let stats = miner.pool_stats();
    assert!(stats.index_hits > 0, "mining must read the candidate index: {stats:?}");
    assert!(stats.events_applied > 0, "the index must have consumed pool events: {stats:?}");
    println!("pool feed under stress: {} blocks, {} txs, stats {stats:?}", blocks.len(), committed.len());
}

#[test]
fn submissions_do_not_wait_for_the_ordering_pass() {
    // Direct (non-threaded) pin of the decoupling: a pool-level ordering
    // read holds the index lock, not the node lock — receive_tx during a
    // mining pass costs the same single node-lock acquisition as ever.
    let miner = node(true);
    for nonce in 0..NONCES_PER_SENDER {
        for sender in 0..SENDERS_PER_SUBMITTER {
            let tx = transfer(&sender_key(0, sender), nonce, 5 + nonce);
            assert!(miner.receive_tx(tx, nonce));
        }
    }
    let locks_before = miner.lock_acquisitions();
    let block = miner.mine(10_000).expect("seals");
    assert!(!block.transactions.is_empty());
    let mine_locks = miner.lock_acquisitions() - locks_before;
    // Snapshot + import: the mining pass takes the node lock exactly
    // twice, bounding what any concurrent submitter can be blocked on.
    assert_eq!(mine_locks, 2, "mine() must hold the node lock only to snapshot and to import");
}
