//! Threaded submit-vs-mine stress for the telemetry layer.
//!
//! Submitter threads hammer `NodeHandle::receive_tx` while a miner
//! thread seals blocks and a reader thread takes telemetry snapshots
//! the whole time. The reader proves snapshots are never torn in a way
//! that violates the layer's invariants: counters and histogram counts
//! are monotone across successive snapshots, and every histogram's
//! count equals the sum of its buckets (the count is *derived* from the
//! buckets, so a torn read can at worst lag — never invent samples).
//! A second test runs the same race with telemetry disabled and pins
//! that nothing is recorded.

use std::sync::atomic::{AtomicBool, Ordering};

use bytes::Bytes;
use sereth_chain::builder::BlockLimits;
use sereth_chain::genesis::Genesis;
use sereth_chain::txpool::PoolConfig;
use sereth_chain::GenesisBuilder;
use sereth_crypto::address::Address;
use sereth_crypto::sig::SecretKey;
use sereth_node::contract::default_contract_address;
use sereth_node::miner::MinerPolicy;
use sereth_node::node::{BlockSchedule, NodeConfig, NodeHandle};
use sereth_telemetry::{TelemetryConfig, TelemetrySnapshot};
use sereth_types::transaction::{Transaction, TxPayload};
use sereth_types::u256::U256;

const SUBMITTERS: usize = 3;
const SENDERS_PER_SUBMITTER: usize = 4;
const NONCES_PER_SENDER: u64 = 10;

fn sender_key(submitter: usize, sender: usize) -> SecretKey {
    SecretKey::from_label(9_000 + (submitter * SENDERS_PER_SUBMITTER + sender) as u64)
}

fn transfer(key: &SecretKey, nonce: u64, price: u64) -> Transaction {
    Transaction::sign(
        TxPayload {
            nonce,
            gas_price: price,
            gas_limit: 21_000,
            to: Some(Address::from_low_u64(0xfeed)),
            value: U256::from(1u64),
            input: Bytes::new(),
        },
        key,
    )
}

fn genesis() -> Genesis {
    let mut builder = GenesisBuilder::new();
    for submitter in 0..SUBMITTERS {
        for sender in 0..SENDERS_PER_SUBMITTER {
            builder = builder.fund(sender_key(submitter, sender).address(), U256::from(10_000_000u64));
        }
    }
    builder.build()
}

fn node(telemetry: TelemetryConfig) -> NodeHandle {
    NodeHandle::new(
        genesis(),
        NodeConfig::miner(default_contract_address(), MinerPolicy::Standard)
            .schedule(BlockSchedule::Fixed(1_000))
            .coinbase(Address::from_low_u64(0xc01))
            .candidate_budget(Some(32))
            .limits(BlockLimits { gas_limit: 8_000_000, max_txs: Some(32) })
            .pool(PoolConfig { shards: 8, ..PoolConfig::default() })
            .telemetry(telemetry)
            .build(),
    )
}

/// Drives submitters + miner to completion, snapshotting throughout;
/// returns the mid-flight snapshots followed by one quiescent snapshot.
fn race(node: &NodeHandle) -> Vec<TelemetrySnapshot> {
    let submitting = AtomicBool::new(true);
    let mut snapshots = Vec::new();

    std::thread::scope(|scope| {
        let node_ref = &node;
        let submitting_ref = &submitting;
        let mut submitters = Vec::new();
        for submitter in 0..SUBMITTERS {
            submitters.push(scope.spawn(move || {
                for nonce in 0..NONCES_PER_SENDER {
                    for sender in 0..SENDERS_PER_SUBMITTER {
                        let key = sender_key(submitter, sender);
                        let price = 1 + ((submitter + sender) as u64 * 5 + nonce) % 17;
                        assert!(node_ref.receive_tx(transfer(&key, nonce, price), nonce));
                    }
                }
            }));
        }

        let miner = scope.spawn(move || {
            let mut timestamp = 1_000u64;
            let mut idle = 0;
            while idle < 3 {
                timestamp += 1_000;
                match node_ref.mine(timestamp) {
                    Some(block)
                        if block.transactions.is_empty()
                            && !submitting_ref.load(Ordering::Relaxed)
                            && node_ref.pool_len() == 0 =>
                    {
                        idle += 1
                    }
                    Some(_) => idle = 0,
                    None => idle += 1,
                }
                std::thread::yield_now();
            }
        });

        let reader = scope.spawn(move || {
            let mut taken = Vec::new();
            while submitting_ref.load(Ordering::Relaxed) {
                taken.push(node_ref.telemetry_snapshot());
                std::thread::yield_now();
            }
            taken
        });

        for handle in submitters {
            handle.join().expect("submitter thread");
        }
        submitting.store(false, Ordering::Relaxed);
        snapshots = reader.join().expect("reader thread");
        miner.join().expect("miner thread");
    });

    snapshots.push(node.telemetry_snapshot());
    snapshots
}

#[test]
fn concurrent_snapshots_are_monotone_and_internally_consistent() {
    let node = node(TelemetryConfig { enabled: true });
    let snapshots = race(&node);
    assert!(snapshots.len() >= 2, "the reader must have observed the race");

    for window in snapshots.windows(2) {
        let (earlier, later) = (&window[0], &window[1]);
        for (name, value) in &earlier.counters {
            assert!(later.counters[name] >= *value, "counter {name} went backwards");
        }
        for (name, hist) in &earlier.histograms {
            assert!(later.histograms[name].count() >= hist.count(), "histogram {name} lost samples");
            assert!(later.histograms[name].sum_ns >= hist.sum_ns, "histogram {name} sum shrank");
        }
    }

    // count() is derived from the buckets, so this holds even for
    // snapshots taken mid-record — the torn-free invariant.
    for snapshot in &snapshots {
        for (name, hist) in &snapshot.histograms {
            let bucket_sum: u64 = hist.bucket_counts.iter().sum();
            assert_eq!(hist.count(), bucket_sum, "histogram {name} count != bucket sum");
        }
    }

    let last = snapshots.last().unwrap();
    let total = (SUBMITTERS * SENDERS_PER_SUBMITTER) as u64 * NONCES_PER_SENDER;
    assert_eq!(last.histograms["phase.admission"].count(), total, "every insert timed once");
    assert!(last.histograms["phase.receive_tx"].count() >= total);
    assert!(last.histograms["phase.seal"].count() >= 1);
    assert!(last.counters["exec.sequential_txs"] >= total, "all transfers executed");
}

#[test]
fn disabled_telemetry_stays_empty_under_the_same_race() {
    let node = node(TelemetryConfig { enabled: false });
    let snapshots = race(&node);
    for snapshot in &snapshots {
        assert!(snapshot.counters.is_empty(), "disabled registry gained counters: {snapshot:?}");
        assert!(snapshot.gauges.is_empty());
        assert!(snapshot.histograms.is_empty());
        assert!(snapshot.blocks.is_empty());
    }
}
