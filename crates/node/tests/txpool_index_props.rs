//! Byte-equality of the indexed pool feed against the rescan oracle.
//!
//! The contract under test: for ANY pool history — randomized
//! interleavings of inserts (transfers, replacements, market `set`s and
//! `buy`s), removals, block commits, stale prunes, and forced index
//! rebuilds — and ANY shard count, the pool's incrementally-indexed reads
//! return **byte-identical** candidate lists to the pre-index rescan
//! implementations:
//!
//! * `ready_by_price` (indexed lazy-merge) ≡ `ready_by_price_rescan`
//!   (repeated selection over all sender queues), under several account
//!   nonce assignments including stale prefixes and nonce gaps;
//! * `order_candidates` ≡ `order_candidates_rescan` for all three miner
//!   policies (Standard / Semantic / PWV), so the pre-parsed market index
//!   provably feeds HMS and the PWV scheduler the same series the full
//!   pool walk produced;
//! * `ready_by_price_limited(k)` is exactly the first `k` of the full
//!   order;
//! * arrival snapshots and orderings are invariant in the shard count
//!   (1, 4, 16), and tiny event buffers — which force mid-history index
//!   rebuilds through `EventLag` — change nothing.

use proptest::prelude::*;
use sereth_chain::state::StateDb;
use sereth_chain::txpool::{PoolConfig, TxPool};
use sereth_core::fpv::{Flag, Fpv};
use sereth_core::hms::HmsConfig;
use sereth_core::mark::{compute_mark, genesis_mark};
use sereth_crypto::address::Address;
use sereth_crypto::hash::H256;
use sereth_crypto::sig::SecretKey;
use sereth_node::contract::{buy_selector, default_contract_address, sereth_genesis_slots, set_selector};
use sereth_node::miner::{
    market_spec, order_candidates, order_candidates_limited, order_candidates_rescan, MinerPolicy,
};
use sereth_types::transaction::{Transaction, TxPayload};
use sereth_types::u256::U256;

mod common;
use common::cases;

const SENDERS: u64 = 6;

/// One step of a pool history.
#[derive(Debug, Clone)]
enum Op {
    /// Insert a plain transfer (replacements happen naturally when the
    /// same (sender, nonce) recurs at a higher price).
    Transfer { sender: u8, nonce: u8, price: u8 },
    /// Insert a market `set` chaining `prev` marks from the fixture chain.
    Set { owner: u8, nonce: u8, mark: u8, value: u8 },
    /// Insert a market `buy` offering against a (possibly unreachable)
    /// mark.
    Buy { buyer: u8, nonce: u8, mark: u8, value: u8 },
    /// Remove the i-th successfully inserted transaction by hash.
    Remove { pick: u8 },
    /// Import "a block" containing the i-th inserted transaction:
    /// `remove_committed` plus collateral stale cleanup.
    Commit { pick: u8 },
    /// Prune everything below a per-sender floor.
    Prune { floor: u8 },
    /// Force a full index rebuild (the production path only does this on
    /// event-buffer overflow; the property exercises it at arbitrary
    /// points).
    Rebuild,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    // The vendored proptest's `prop_oneof!` is unweighted; inserts are
    // listed twice so histories grow more than they shrink.
    let transfer_op = |(sender, nonce, price)| Op::Transfer { sender, nonce, price };
    prop_oneof![
        (0u8..SENDERS as u8, 0u8..4, 1u8..40).prop_map(transfer_op),
        (0u8..SENDERS as u8, 0u8..4, 1u8..40).prop_map(transfer_op),
        (0u8..2, 0u8..4, 0u8..6, 1u8..5).prop_map(|(owner, nonce, mark, value)| Op::Set {
            owner,
            nonce,
            mark,
            value
        }),
        (0u8..SENDERS as u8, 0u8..4, 0u8..7, 1u8..5).prop_map(|(buyer, nonce, mark, value)| Op::Buy {
            buyer,
            nonce,
            mark,
            value
        }),
        (0u8..32).prop_map(|pick| Op::Remove { pick }),
        (0u8..32).prop_map(|pick| Op::Commit { pick }),
        (0u8..3).prop_map(|floor| Op::Prune { floor }),
        Just(Op::Rebuild),
    ]
}

fn key(label: u8) -> SecretKey {
    SecretKey::from_label(1 + label as u64)
}

/// The fixture mark chain `m0..=m5` (`m0` is the genesis mark) plus one
/// unreachable junk mark at index 6.
fn marks() -> Vec<H256> {
    let mut out = vec![genesis_mark()];
    for i in 0..5u64 {
        let prev = *out.last().expect("non-empty");
        out.push(compute_mark(&prev, &H256::from_low_u64(50 + i)));
    }
    out.push(H256::keccak(b"unreachable"));
    out
}

fn transfer(sender: u8, nonce: u8, price: u8) -> Transaction {
    Transaction::sign(
        TxPayload {
            nonce: nonce as u64,
            gas_price: price as u64,
            gas_limit: 21_000,
            to: Some(Address::from_low_u64(0xee)),
            value: U256::ZERO,
            input: bytes::Bytes::new(),
        },
        &key(sender),
    )
}

fn market_tx(sender: u8, nonce: u8, selector: [u8; 4], mark: u8, value: u8, price: u8) -> Transaction {
    let fpv = Fpv::new(Flag::Success, marks()[mark as usize], H256::from_low_u64(value as u64));
    Transaction::sign(
        TxPayload {
            nonce: nonce as u64,
            gas_price: price as u64,
            gas_limit: 100_000,
            to: Some(default_contract_address()),
            value: U256::ZERO,
            input: fpv.to_calldata(selector),
        },
        &key(sender),
    )
}

/// Applies one op to `pool`, recording successful inserts in `log`.
fn apply(pool: &TxPool, op: &Op, log: &mut Vec<Transaction>, now: &mut u64) {
    *now += 1;
    match op {
        Op::Transfer { sender, nonce, price } => {
            let tx = transfer(*sender, *nonce, *price);
            if pool.insert(tx.clone(), *now).is_ok() {
                log.push(tx);
            }
        }
        Op::Set { owner, nonce, mark, value } => {
            let tx = market_tx(*owner, *nonce, set_selector(), *mark, *value, 2);
            if pool.insert(tx.clone(), *now).is_ok() {
                log.push(tx);
            }
        }
        Op::Buy { buyer, nonce, mark, value } => {
            let tx = market_tx(*buyer, *nonce, buy_selector(), *mark, *value, 3);
            if pool.insert(tx.clone(), *now).is_ok() {
                log.push(tx);
            }
        }
        Op::Remove { pick } => {
            if !log.is_empty() {
                let tx = &log[*pick as usize % log.len()];
                pool.remove(&tx.hash());
            }
        }
        Op::Commit { pick } => {
            if !log.is_empty() {
                let tx = log[*pick as usize % log.len()].clone();
                pool.remove_committed([&tx]);
            }
        }
        Op::Prune { floor } => {
            let floor = *floor as u64;
            pool.prune_stale(|_| floor);
        }
        Op::Rebuild => pool.rebuild_index(),
    }
}

fn market_state() -> StateDb {
    sereth_chain::genesis::GenesisBuilder::new()
        .contract_with_storage(
            default_contract_address(),
            sereth_vm::exec::ContractCode::None,
            sereth_genesis_slots(&Address::from_low_u64(1), H256::from_low_u64(50)),
        )
        .build()
        .state
}

fn hashes(txs: &[Transaction]) -> Vec<H256> {
    txs.iter().map(Transaction::hash).collect()
}

/// A labelled account-nonce assignment for the equivalence assertions.
type NonceFn<'a> = (&'a str, Box<dyn Fn(&Address) -> u64>);

/// All the equivalence assertions over one pool state.
fn assert_indexed_matches_rescan(pool: &TxPool, label: &str) {
    let state = market_state();
    let contract = default_contract_address();

    // Several account-nonce assignments: all-zero (the common case),
    // a flat floor of 1 (creates gaps AND stale prefixes depending on
    // what is pooled), and a mixed per-sender map.
    let nonce_fns: Vec<NonceFn<'_>> = vec![
        ("zero", Box::new(|_: &Address| 0)),
        ("one", Box::new(|_: &Address| 1)),
        ("mixed", {
            let senders: Vec<Address> = (0..SENDERS as u8).map(|s| key(s).address()).collect();
            Box::new(move |a: &Address| senders.iter().position(|s| s == a).map_or(0, |i| (i % 3) as u64))
        }),
    ];
    for (name, base) in &nonce_fns {
        let indexed = pool.ready_by_price(base);
        let rescan = pool.ready_by_price_rescan(base, usize::MAX);
        assert_eq!(hashes(&indexed), hashes(&rescan), "{label}: ready_by_price diverged (base={name})");
        // The limited read is exactly a prefix of the full order under
        // EVERY floor — including floors the pool was never pruned
        // against (stale prefixes), which the per-entry cursor walk now
        // serves exactly instead of deferring to the next prune.
        for limit in [0usize, 1, 3, indexed.len() / 2, indexed.len() + 3] {
            let limited = pool.ready_by_price_limited(base, limit);
            assert_eq!(
                hashes(&limited),
                hashes(&indexed[..indexed.len().min(limit)]),
                "{label}: limited({limit}) is not a prefix (base={name})"
            );
        }
    }

    // Every miner policy, indexed vs rescan, full and limited.
    let view = state.view();
    for policy in [MinerPolicy::Standard, MinerPolicy::Semantic(HmsConfig::default()), MinerPolicy::Pwv] {
        let indexed = order_candidates(pool, &view, &contract, &policy);
        let rescan = order_candidates_rescan(pool, &view, &contract, &policy, usize::MAX);
        assert_eq!(hashes(&indexed), hashes(&rescan), "{label}: {policy:?} order diverged");
        let limit = (indexed.len() / 2).max(1);
        let limited = order_candidates_limited(pool, &view, &contract, &policy, limit);
        let limited_rescan = order_candidates_rescan(pool, &view, &contract, &policy, limit);
        assert_eq!(hashes(&limited), hashes(&limited_rescan), "{label}: {policy:?} limited order diverged");
    }
}

fn run_history(ops: &[Op], shards: usize, event_capacity: usize, checkpoint_every: usize) -> TxPool {
    let pool = TxPool::with_config(PoolConfig {
        shards,
        event_capacity,
        market: Some(market_spec()),
        ..PoolConfig::default()
    });
    let mut log = Vec::new();
    let mut now = 0u64;
    for (i, op) in ops.iter().enumerate() {
        apply(&pool, op, &mut log, &mut now);
        if checkpoint_every > 0 && i % checkpoint_every == checkpoint_every - 1 {
            // Interleaved reads keep the index warm mid-history, so later
            // events exercise the *incremental* path, not just rebuilds.
            assert_indexed_matches_rescan(&pool, &format!("step {i}"));
        }
    }
    assert_indexed_matches_rescan(&pool, "final");
    pool
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases(192)))]

    /// The headline property: indexed ≡ rescan at interleaved checkpoints
    /// and at the end, across shard counts, with a roomy event buffer.
    #[test]
    fn indexed_reads_equal_rescan_across_shard_counts(
        ops in proptest::collection::vec(op_strategy(), 1..60),
    ) {
        for shards in [1usize, 4, 16] {
            run_history(&ops, shards, 16_384, 13);
        }
    }

    /// A 4-event buffer overflows constantly: every ordering read after a
    /// burst of mutations goes through the EventLag → full-rebuild path,
    /// which must be invisible in the output.
    #[test]
    fn forced_rebuilds_are_invisible(
        ops in proptest::collection::vec(op_strategy(), 1..60),
    ) {
        let tiny = run_history(&ops, 4, 4, 9);
        prop_assert!(
            tiny.stats().index_rebuilds >= 1,
            "a 4-event buffer must force at least one rebuild: {:?}",
            tiny.stats()
        );
    }

    /// After pruning against the same floor the ordering uses (the steady
    /// state every node maintains on import), limited reads are exact
    /// prefixes under ANY floor — the exactness contract of
    /// `ready_by_price_limited`.
    #[test]
    fn limited_reads_are_exact_on_pruned_pools(
        ops in proptest::collection::vec(op_strategy(), 1..50),
        floor in 0u64..3,
    ) {
        let pool = run_history(&ops, 4, 16_384, 17);
        pool.prune_stale(|_| floor);
        let full = pool.ready_by_price(|_| floor);
        let rescan = pool.ready_by_price_rescan(|_| floor, usize::MAX);
        prop_assert_eq!(hashes(&full), hashes(&rescan));
        for limit in [1usize, 2, 5, full.len()] {
            let limited = pool.ready_by_price_limited(|_| floor, limit);
            prop_assert_eq!(
                hashes(&limited),
                hashes(&full[..full.len().min(limit)]),
                "limited({}) under floor {} is not a prefix",
                limit,
                floor
            );
        }
    }

    /// Shard count changes scheduling of locks, never observable state:
    /// the arrival snapshot and the event stream agree entry-for-entry.
    #[test]
    fn shard_count_is_unobservable(
        ops in proptest::collection::vec(op_strategy(), 1..50),
    ) {
        let snapshot = |shards: usize| {
            let pool = TxPool::with_config(PoolConfig {
                shards,
                market: Some(market_spec()),
                ..PoolConfig::default()
            });
            pool.subscribe();
            let mut log = Vec::new();
            let mut now = 0u64;
            for op in &ops {
                apply(&pool, op, &mut log, &mut now);
            }
            let entries: Vec<(H256, u64)> =
                pool.pending_by_arrival().iter().map(|e| (e.tx.hash(), e.arrival_seq)).collect();
            let events = pool.events_since(0).map(|records| records.len()).unwrap_or(usize::MAX);
            (entries, events, pool.len())
        };
        prop_assert_eq!(snapshot(1), snapshot(16));
    }
}

/// Deterministic regression: a stale prefix (account nonce beyond the
/// pooled head without a prune) is served by the *index*, exactly —
/// limited reads included. Before the cursor walk this case diverted to
/// the rescan fallback (full reads) or was only documented (limited
/// reads); pinned here so the property suite's random coverage of this
/// corner is not the only guard.
#[test]
fn stale_prefix_reads_match_oracle_exactly() {
    let pool = TxPool::with_config(PoolConfig { market: Some(market_spec()), ..PoolConfig::default() });
    for sender in 0..3u8 {
        for nonce in 0..3u8 {
            pool.insert(transfer(sender, nonce, 10 + sender * 3 + nonce), (sender + nonce) as u64).unwrap();
        }
    }
    // Warm the index, then read with a nonce floor the pool was never
    // pruned against.
    assert_eq!(pool.ready_by_price(|_| 0).len(), 9);
    let rescans_before = pool.stats().rescans;
    let indexed = pool.ready_by_price(|_| 2);
    let oracle = pool.ready_by_price_rescan(|_| 2, usize::MAX);
    assert_eq!(hashes(&indexed), hashes(&oracle));
    assert_eq!(indexed.len(), 3);
    for limit in 0..4usize {
        let limited = pool.ready_by_price_limited(|_| 2, limit);
        assert_eq!(hashes(&limited), hashes(&indexed[..indexed.len().min(limit)]));
    }
    // Only the oracle calls above rescanned; every read under test was
    // index-served.
    assert_eq!(pool.stats().rescans, rescans_before + 1);
}
