//! Client-side transaction construction: the contract owner who `set`s the
//! price and the buyers who `buy` at whatever price they can see.
//!
//! The difference between the paper's three scenarios lives here and in
//! the miner policy:
//!
//! * a **Geth buyer** reads the committed `(mark, price)` — stale by up to
//!   a block interval (§V-A);
//! * a **Sereth buyer** asks its node's RAA-augmented `mark`/`get` calls
//!   for the HMS tail — the READ-UNCOMMITTED view (§V-B);
//! * the **owner** chains its own sets locally: it is the only writer, so
//!   it always knows the exact mark its previous set produced — which is
//!   why "all of the sets succeed" in every scenario (§V-A).

use bytes::Bytes;
use sereth_core::fpv::{Flag, Fpv};
use sereth_core::mark::compute_mark;
use sereth_crypto::address::Address;
use sereth_crypto::hash::H256;
use sereth_crypto::sig::SecretKey;
use sereth_types::transaction::{Transaction, TxPayload};
use sereth_types::u256::U256;

use crate::contract::{buy_selector, set_selector};
use crate::node::{ClientKind, IsoObservation, NodeHandle};

/// Gas limit generous enough for any Sereth call.
pub const SERETH_TX_GAS: u64 = 200_000;

/// The price-setting owner.
///
/// Keeps the `(mark, value)` its own last `set` produced, so each new set
/// chains correctly without consulting anyone. The flag is
/// [`Flag::Success`] while the previous set is still pending at the
/// attached node, and [`Flag::Head`] once it has been committed — making
/// the first set after each block publication a *head candidate*, exactly
/// as Algorithm 2 expects.
#[derive(Debug)]
pub struct Owner {
    key: SecretKey,
    contract: Address,
    nonce: u64,
    gas_price: u64,
    last_mark: H256,
    last_value: H256,
    last_set_hash: Option<H256>,
}

impl Owner {
    /// Creates the owner; `committed_mark` is the contract's current mark
    /// (the genesis mark on a fresh deployment) and `committed_value` its
    /// current price.
    pub fn new(key: SecretKey, contract: Address, committed_mark: H256, gas_price: u64) -> Self {
        Self::with_value(key, contract, committed_mark, H256::ZERO, gas_price)
    }

    /// Like [`Owner::new`] but also tracking the committed value, needed
    /// for self-consistent buys in the sequential-history experiment.
    pub fn with_value(
        key: SecretKey,
        contract: Address,
        committed_mark: H256,
        committed_value: H256,
        gas_price: u64,
    ) -> Self {
        Self {
            key,
            contract,
            nonce: 0,
            gas_price,
            last_mark: committed_mark,
            last_value: committed_value,
            last_set_hash: None,
        }
    }

    /// The owner's address.
    pub fn address(&self) -> Address {
        self.key.address()
    }

    /// Builds the next `set(value)` transaction, chained onto the owner's
    /// own mark history.
    pub fn next_set(&mut self, node: &NodeHandle, value: H256) -> Transaction {
        let flag = match &self.last_set_hash {
            Some(hash) if node.pool_contains(hash) => Flag::Success,
            _ => Flag::Head,
        };
        let fpv = Fpv::new(flag, self.last_mark, value);
        let tx = Transaction::sign(
            TxPayload {
                nonce: self.nonce,
                gas_price: self.gas_price,
                gas_limit: SERETH_TX_GAS,
                to: Some(self.contract),
                value: U256::ZERO,
                input: fpv.to_calldata(set_selector()),
            },
            &self.key,
        );
        self.nonce += 1;
        self.last_mark = compute_mark(&self.last_mark, &value);
        self.last_value = value;
        self.last_set_hash = Some(tx.hash());
        tx
    }

    /// Builds a `buy` from the owner's own address against its own last
    /// `(mark, value)` — the single-sender sequential history of §V: nonce
    /// order forces the buy to execute right after its set, so it always
    /// succeeds regardless of client kind or miner policy.
    pub fn next_own_buy(&mut self) -> Transaction {
        let offer =
            Fpv { flag_word: Flag::Success.to_word(), prev_mark: self.last_mark, value: self.last_value };
        let tx = Transaction::sign(
            TxPayload {
                nonce: self.nonce,
                gas_price: self.gas_price,
                gas_limit: SERETH_TX_GAS,
                to: Some(self.contract),
                value: U256::ZERO,
                input: offer.to_calldata(buy_selector()),
            },
            &self.key,
        );
        self.nonce += 1;
        tx
    }

    /// The mark the owner expects after all its sets commit.
    pub fn expected_mark(&self) -> H256 {
        self.last_mark
    }
}

/// A buyer issuing `buy` transactions at whatever price its client shows.
#[derive(Debug)]
pub struct Buyer {
    key: SecretKey,
    contract: Address,
    nonce: u64,
    gas_price: u64,
    kind: ClientKind,
}

impl Buyer {
    /// Creates a buyer using a client of the given kind.
    pub fn new(key: SecretKey, contract: Address, kind: ClientKind, gas_price: u64) -> Self {
        Self { key, contract, nonce: 0, gas_price, kind }
    }

    /// The buyer's address.
    pub fn address(&self) -> Address {
        self.key.address()
    }

    /// Overrides the next nonce — needed when the same key also transacts
    /// outside this `Buyer` (e.g. trading on several markets).
    pub fn set_nonce(&mut self, nonce: u64) {
        self.nonce = nonce;
    }

    /// The view of `(mark, price)` this buyer's client provides: committed
    /// state on Geth, the RAA/HMS view on Sereth.
    pub fn observe(&self, node: &NodeHandle) -> (H256, H256) {
        let observation = self.observe_recorded(node);
        (observation.mark, observation.value)
    }

    /// Like [`Buyer::observe`], but returns the full [`IsoObservation`]
    /// (isolation level served at, committed height of the serving node)
    /// so callers can log the read for the offline anomaly checker.
    pub fn observe_recorded(&self, node: &NodeHandle) -> IsoObservation {
        match self.kind {
            ClientKind::Geth => node.committed_observed(),
            ClientKind::Sereth => {
                node.query_observed(self.key.address()).unwrap_or_else(|| node.committed_observed())
            }
        }
    }

    /// Builds the next `buy` at the observed `(mark, price)`.
    pub fn next_buy(&mut self, node: &NodeHandle) -> Transaction {
        let (mark, price) = self.observe(node);
        self.next_buy_at(mark, price)
    }

    /// Builds the next `buy` at an explicit `(mark, price)` offer —
    /// exposed for the frontrunning and lost-update experiments, which
    /// need precise control of the offer.
    pub fn next_buy_at(&mut self, mark: H256, price: H256) -> Transaction {
        let offer = Fpv { flag_word: Flag::Success.to_word(), prev_mark: mark, value: price };
        let tx = Transaction::sign(
            TxPayload {
                nonce: self.nonce,
                gas_price: self.gas_price,
                gas_limit: SERETH_TX_GAS,
                to: Some(self.contract),
                value: U256::ZERO,
                input: offer.to_calldata(buy_selector()),
            },
            &self.key,
        );
        self.nonce += 1;
        tx
    }
}

/// Classifies a transaction's Sereth call, if any.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SerethCall {
    /// A `set(bytes32[3])` invocation.
    Set,
    /// A `buy(bytes32[3])` invocation.
    Buy,
}

/// Identifies whether `tx` calls the Sereth contract's `set` or `buy`.
pub fn classify(tx: &Transaction, contract: &Address) -> Option<SerethCall> {
    if tx.to() != Some(*contract) || tx.input().len() < 4 {
        return None;
    }
    let selector = &tx.input()[..4];
    if selector == set_selector() {
        Some(SerethCall::Set)
    } else if selector == buy_selector() {
        Some(SerethCall::Buy)
    } else {
        None
    }
}

/// A plain value transfer, for background traffic in mixed workloads.
pub fn transfer(key: &SecretKey, nonce: u64, to: Address, amount: U256, gas_price: u64) -> Transaction {
    Transaction::sign(
        TxPayload { nonce, gas_price, gas_limit: 21_000, to: Some(to), value: amount, input: Bytes::new() },
        key,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::contract::{default_contract_address, sereth_code, sereth_genesis_slots, ContractForm};
    use crate::miner::MinerPolicy;
    use crate::node::NodeConfig;
    use sereth_chain::genesis::GenesisBuilder;
    use sereth_core::mark::genesis_mark;

    fn make_node(kind: ClientKind, owner_key: &SecretKey, buyer_key: &SecretKey) -> NodeHandle {
        let contract = default_contract_address();
        let genesis = GenesisBuilder::new()
            .fund(owner_key.address(), U256::from(1_000_000_000u64))
            .fund(buyer_key.address(), U256::from(1_000_000_000u64))
            .contract_with_storage(
                contract,
                sereth_code(ContractForm::Native),
                sereth_genesis_slots(&owner_key.address(), H256::from_low_u64(50)),
            )
            .build();
        NodeHandle::new(
            genesis,
            NodeConfig::miner(contract, MinerPolicy::Standard)
                .kind(kind)
                .coinbase(Address::from_low_u64(0xc01))
                .build(),
        )
    }

    #[test]
    fn owner_chains_sets_and_flags_heads_correctly() {
        let owner_key = SecretKey::from_label(1);
        let buyer_key = SecretKey::from_label(2);
        let node = make_node(ClientKind::Geth, &owner_key, &buyer_key);
        let mut owner = Owner::new(owner_key, default_contract_address(), genesis_mark(), 1);

        // First set: head candidate.
        let s1 = owner.next_set(&node, H256::from_low_u64(60));
        let fpv1 = Fpv::from_calldata(s1.input()).unwrap();
        assert_eq!(fpv1.flag(), Flag::Head);
        assert_eq!(fpv1.prev_mark, genesis_mark());
        node.receive_tx(s1.clone(), 100);

        // Second set while the first is pending: successor.
        let s2 = owner.next_set(&node, H256::from_low_u64(70));
        let fpv2 = Fpv::from_calldata(s2.input()).unwrap();
        assert_eq!(fpv2.flag(), Flag::Success);
        assert_eq!(fpv2.prev_mark, compute_mark(&genesis_mark(), &H256::from_low_u64(60)));
        node.receive_tx(s2, 200);

        // Mine: pool empties; the next set is a head candidate again.
        node.mine(15_000).unwrap();
        let s3 = owner.next_set(&node, H256::from_low_u64(80));
        let fpv3 = Fpv::from_calldata(s3.input()).unwrap();
        assert_eq!(fpv3.flag(), Flag::Head);

        // The owner's local chain matches the contract after commit.
        let (mark, value) = node.committed_amv();
        assert_eq!(value, H256::from_low_u64(70));
        assert_eq!(mark, fpv3.prev_mark);
    }

    #[test]
    fn owner_sets_always_succeed_end_to_end() {
        let owner_key = SecretKey::from_label(1);
        let buyer_key = SecretKey::from_label(2);
        let node = make_node(ClientKind::Geth, &owner_key, &buyer_key);
        let mut owner = Owner::new(owner_key, default_contract_address(), genesis_mark(), 1);
        for round in 0..4u64 {
            for i in 0..3u64 {
                let tx = owner.next_set(&node, H256::from_low_u64(100 + round * 10 + i));
                assert!(node.receive_tx(tx, round * 15_000 + i));
            }
            node.mine((round + 1) * 15_000).unwrap();
        }
        let inner_counts = node.with_inner(|inner| {
            let mut sets_ok = 0u64;
            for stored in inner.chain.canonical_chain() {
                for receipt in &stored.receipts {
                    if receipt.has_event(crate::contract::set_ok_topic()) {
                        sets_ok += 1;
                    }
                }
            }
            sets_ok
        });
        assert_eq!(inner_counts, 12, "every set succeeds (paper §V-A)");
    }

    #[test]
    fn geth_buyer_sees_committed_sereth_buyer_sees_pending() {
        let owner_key = SecretKey::from_label(1);
        let buyer_key = SecretKey::from_label(2);

        let geth = make_node(ClientKind::Geth, &owner_key, &buyer_key);
        let sereth = make_node(ClientKind::Sereth, &owner_key, &buyer_key);

        let mut owner_g = Owner::new(owner_key.clone(), default_contract_address(), genesis_mark(), 1);
        let mut owner_s = Owner::new(owner_key.clone(), default_contract_address(), genesis_mark(), 1);
        let tx_g = owner_g.next_set(&geth, H256::from_low_u64(99));
        let tx_s = owner_s.next_set(&sereth, H256::from_low_u64(99));
        geth.receive_tx(tx_g, 100);
        sereth.receive_tx(tx_s, 100);

        let geth_buyer = Buyer::new(buyer_key.clone(), default_contract_address(), ClientKind::Geth, 1);
        let sereth_buyer = Buyer::new(buyer_key.clone(), default_contract_address(), ClientKind::Sereth, 1);

        let (_, geth_price) = geth_buyer.observe(&geth);
        assert_eq!(geth_price, H256::from_low_u64(50), "READ-COMMITTED: stale");
        let (_, sereth_price) = sereth_buyer.observe(&sereth);
        assert_eq!(sereth_price, H256::from_low_u64(99), "READ-UNCOMMITTED: fresh");
    }

    #[test]
    fn buys_constructed_from_views_succeed_when_interleaved_correctly() {
        let owner_key = SecretKey::from_label(1);
        let buyer_key = SecretKey::from_label(2);
        let node = make_node(ClientKind::Sereth, &owner_key, &buyer_key);
        let mut owner = Owner::new(owner_key, default_contract_address(), genesis_mark(), 1);
        let mut buyer = Buyer::new(buyer_key, default_contract_address(), ClientKind::Sereth, 1);

        let set = owner.next_set(&node, H256::from_low_u64(60));
        node.receive_tx(set, 100);
        // Buyer sees the pending 60 and offers against it.
        let buy = buyer.next_buy(&node);
        node.receive_tx(buy, 200);
        node.mine(15_000).unwrap();

        let (buys_ok, sets_ok) = node.with_inner(|inner| {
            let mut buys = 0;
            let mut sets = 0;
            for stored in inner.chain.canonical_chain() {
                for receipt in &stored.receipts {
                    if receipt.has_event(crate::contract::buy_ok_topic()) {
                        buys += 1;
                    }
                    if receipt.has_event(crate::contract::set_ok_topic()) {
                        sets += 1;
                    }
                }
            }
            (buys, sets)
        });
        assert_eq!(sets_ok, 1);
        assert_eq!(buys_ok, 1, "the READ-UNCOMMITTED buy lands in its interval");
    }

    #[test]
    fn classify_recognises_sereth_calls() {
        let owner_key = SecretKey::from_label(1);
        let contract = default_contract_address();
        let mut owner = Owner::new(owner_key.clone(), contract, genesis_mark(), 1);
        let buyer_key = SecretKey::from_label(2);
        let mut buyer = Buyer::new(buyer_key.clone(), contract, ClientKind::Geth, 1);
        let node = make_node(ClientKind::Geth, &owner_key, &buyer_key);

        let set = owner.next_set(&node, H256::from_low_u64(60));
        assert_eq!(classify(&set, &contract), Some(SerethCall::Set));
        let buy = buyer.next_buy(&node);
        assert_eq!(classify(&buy, &contract), Some(SerethCall::Buy));
        let plain = transfer(&owner_key, 5, Address::from_low_u64(1), U256::ZERO, 1);
        assert_eq!(classify(&plain, &contract), None);
        assert_eq!(classify(&set, &Address::from_low_u64(0x1234)), None, "other contract");
    }
}
