//! A complete node behind [`sereth_net::sim::Actor`]: topology-driven
//! gossip plus anti-entropy, so clusters converge over lossy links.
//!
//! [`crate::node::NodeActor`] carries an explicit peer list and relies on
//! flood gossip alone — enough when links are merely slow, but a dropped
//! `NewBlock` or a healed partition leaves peers permanently behind.
//! [`NetNode`] instead reads its peers from the simulator's topology
//! ([`Context::neighbors`]/[`Context::broadcast`]) and layers three
//! recovery mechanisms on top of the same flood rules:
//!
//! 1. **Parent pull** — an orphaned block triggers a [`Msg::GetBlock`]
//!    for its missing parent (deduplicated per sync round), walking one
//!    ancestor per round trip until the branches reconnect;
//! 2. **Head announcements** — every [`Msg::SyncTick`] broadcasts
//!    [`Msg::Announce`] with the canonical head, so a peer that missed
//!    the block gossip entirely discovers it is behind and pulls;
//! 3. **Pending re-gossip** — a bounded slice of the pool is re-offered
//!    each sync round, so transactions stranded on one side of a healed
//!    partition still reach the miners.
//!
//! De-duplication lives where the state lives: the node's `seen_txs` set
//! makes [`NodeHandle::receive_tx`] return `false` for repeats (no
//! re-forward), and [`NodeHandle::receive_block`] answers
//! [`BlockReceipt::Known`] for repeated blocks. Reorgs need no special
//! handling here — the chain store's fork-choice imports competing
//! branches as side chains and switches heads when one grows strictly
//! longer, exactly as in the single-node scenarios.
//!
//! Every behaviour is deterministic: the only randomness an actor may
//! consume is [`Context::rng`] (here, only the mining schedule), so a
//! cluster run is a pure function of its seed.

use std::collections::HashSet;

use sereth_crypto::hash::H256;
use sereth_net::sim::{Actor, Context};
use sereth_types::transaction::Transaction;
use sereth_types::SimTime;

use crate::messages::Msg;
use crate::node::{BlockReceipt, NodeHandle};

/// How many pooled transactions one anti-entropy round re-offers to the
/// neighbors. Bounded so sync traffic stays O(1) per round; dedup on the
/// receiving side stops the re-offer from flooding further.
pub const SYNC_REGOSSIP_CAP: usize = 16;

/// A full node wired to the simulated network through the topology.
pub struct NetNode {
    /// The node itself (shared with attached clients).
    pub handle: NodeHandle,
    /// Mining stops after this instant, letting the cluster quiesce so a
    /// convergence check is meaningful. Miner nodes re-arm
    /// [`Msg::MineTick`] only while `now <= mine_until`.
    mine_until: SimTime,
    /// Anti-entropy period; [`Msg::SyncTick`] re-arms itself at this
    /// interval while `now < sync_until`.
    sync_every_ms: SimTime,
    /// Sync passes stop after this instant (usually the run horizon).
    sync_until: SimTime,
    /// Block hashes already requested since the last sync round — keeps
    /// a burst of orphans from the same branch to one `GetBlock` each.
    requested: HashSet<H256>,
}

impl NetNode {
    /// Wraps `handle` for the network. The caller schedules the first
    /// [`Msg::MineTick`] (miners) and [`Msg::SyncTick`] externally.
    pub fn new(handle: NodeHandle, mine_until: SimTime, sync_every_ms: SimTime, sync_until: SimTime) -> Self {
        Self { handle, mine_until, sync_every_ms, sync_until, requested: HashSet::new() }
    }

    /// Floods `msg` to every neighbor, counting the fan-out on the
    /// node's `net.msgs_sent` counter (the NET-SCALE messages-per-block
    /// numerator).
    fn gossip(&self, ctx: &mut Context<'_, Msg>, msg: Msg) {
        self.handle.telemetry().counter("net.msgs_sent").add(ctx.neighbors().len() as u64);
        ctx.broadcast(msg);
    }

    /// Asks the whole neighborhood for `hash`, at most once per sync
    /// round.
    fn request_block(&mut self, ctx: &mut Context<'_, Msg>, hash: H256) {
        if self.requested.insert(hash) {
            self.handle.telemetry().counter("net.parent_requests").inc();
            self.gossip(ctx, Msg::GetBlock { hash, requester: ctx.self_id() });
        }
    }

    fn on_transaction(&mut self, tx: Transaction, ctx: &mut Context<'_, Msg>) {
        if self.handle.receive_tx(tx.clone(), ctx.now()) {
            self.gossip(ctx, Msg::NewTransaction(tx));
        }
    }

    fn on_block(&mut self, block: sereth_types::block::Block, ctx: &mut Context<'_, Msg>) {
        let hash = block.hash();
        let parent = block.header.parent_hash;
        match self.handle.receive_block(block.clone()) {
            BlockReceipt::Imported => {
                self.requested.remove(&hash);
                self.handle.telemetry().counter("net.blocks_imported").inc();
                self.gossip(ctx, Msg::NewBlock(block));
            }
            BlockReceipt::Orphaned => {
                self.handle.telemetry().counter("net.blocks_orphaned").inc();
                self.request_block(ctx, parent);
            }
            BlockReceipt::Known => {
                self.handle.telemetry().counter("net.blocks_known").inc();
            }
            BlockReceipt::Rejected => {
                self.handle.telemetry().counter("net.blocks_rejected").inc();
            }
        }
    }

    fn on_sync(&mut self, ctx: &mut Context<'_, Msg>) {
        // A fresh round may re-request: the previous round's GetBlock
        // (or its reply) could have been dropped.
        self.requested.clear();
        for parent in self.handle.orphan_parents() {
            self.request_block(ctx, parent);
        }
        // Re-offer a bounded slice of the pool, oldest first — pulls
        // partition-stranded transactions toward the miners. Receivers
        // dedup via `seen_txs`, so repeats die after one hop.
        let pending: Vec<Transaction> = self.handle.with_inner(|inner| {
            inner.pool.with_entries_by_arrival(|entries| {
                entries.iter().take(SYNC_REGOSSIP_CAP).map(|entry| entry.tx.clone()).collect()
            })
        });
        for tx in pending {
            self.gossip(ctx, Msg::NewTransaction(tx));
        }
        let (number, hash) = self.handle.head_id();
        if number > 0 {
            self.gossip(ctx, Msg::Announce { hash, number, from: ctx.self_id() });
        }
        if ctx.now() < self.sync_until {
            ctx.wake_self(self.sync_every_ms, Msg::SyncTick);
        }
    }

    fn on_mine(&mut self, ctx: &mut Context<'_, Msg>) {
        if ctx.now() > self.mine_until {
            return; // quiesced: no block, no re-arm
        }
        if let Some(block) = self.handle.mine(ctx.now()) {
            self.gossip(ctx, Msg::NewBlock(block));
        }
        let schedule =
            self.handle.with_inner(|inner| inner.config.miner.as_ref().map(|setup| setup.schedule.clone()));
        if let Some(schedule) = schedule {
            let delay = schedule.next_delay(ctx.rng());
            ctx.wake_self(delay, Msg::MineTick);
        }
    }
}

impl Actor<Msg> for NetNode {
    fn on_message(&mut self, msg: Msg, ctx: &mut Context<'_, Msg>) {
        match msg {
            Msg::SubmitTx(tx) | Msg::NewTransaction(tx) => self.on_transaction(tx, ctx),
            Msg::NewBlock(block) => self.on_block(block, ctx),
            Msg::GetBlock { hash, requester } => {
                if requester != ctx.self_id() {
                    if let Some(block) = self.handle.block_by_hash(&hash) {
                        self.handle.telemetry().counter("net.msgs_sent").inc();
                        ctx.send_to(requester, Msg::NewBlock(block));
                    }
                }
            }
            Msg::Announce { hash, number, from } => {
                // Pull only when strictly behind an unknown head: equal
                // heights are competing forks the next block resolves,
                // and a known hash needs nothing.
                if from != ctx.self_id()
                    && number > self.handle.head_number()
                    && self.handle.block_by_hash(&hash).is_none()
                    && self.requested.insert(hash)
                {
                    self.handle.telemetry().counter("net.head_pulls").inc();
                    self.handle.telemetry().counter("net.msgs_sent").inc();
                    ctx.send_to(from, Msg::GetBlock { hash, requester: ctx.self_id() });
                }
            }
            Msg::SyncTick => self.on_sync(ctx),
            Msg::MineTick => self.on_mine(ctx),
            Msg::WorkloadTick(_) => {
                // Workload ticks belong to driver actors.
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::contract::{default_contract_address, sereth_code, sereth_genesis_slots, ContractForm};
    use crate::miner::MinerPolicy;
    use crate::node::{BlockSchedule, ClientKind, NodeConfig};
    use sereth_chain::genesis::{Genesis, GenesisBuilder};
    use sereth_crypto::address::Address;
    use sereth_crypto::sig::SecretKey;
    use sereth_net::latency::{FaultModel, LatencyModel};
    use sereth_net::sim::{NetworkConfig, Simulation};
    use sereth_net::topology::TopologyKind;
    use sereth_types::u256::U256;

    fn genesis(owner: &SecretKey) -> Genesis {
        GenesisBuilder::new()
            .fund(owner.address(), U256::from(1_000_000_000u64))
            .contract_with_storage(
                default_contract_address(),
                sereth_code(ContractForm::Native),
                sereth_genesis_slots(&owner.address(), H256::from_low_u64(50)),
            )
            .build()
    }

    fn cluster(n: usize, miner_first: bool, seed: u64) -> (Vec<NodeHandle>, Simulation<Msg>) {
        let owner = SecretKey::from_label(1);
        let genesis = genesis(&owner);
        let nodes: Vec<NodeHandle> = (0..n)
            .map(|i| {
                let mut builder =
                    NodeConfig::builder().kind(ClientKind::Geth).contract(default_contract_address());
                if miner_first && i == 0 {
                    builder = builder
                        .mining(MinerPolicy::Standard)
                        .schedule(BlockSchedule::Fixed(1_000))
                        .coinbase(Address::from_low_u64(0xc0b0));
                }
                NodeHandle::new(genesis.clone(), builder.build())
            })
            .collect();
        let actors: Vec<Box<dyn Actor<Msg>>> = nodes
            .iter()
            .map(|node| Box::new(NetNode::new(node.clone(), 30_000, 2_000, 100_000)) as Box<dyn Actor<Msg>>)
            .collect();
        let config = NetworkConfig {
            topology: TopologyKind::Ring,
            latency: LatencyModel::Constant(10),
            faults: FaultModel::none(),
        };
        let mut sim = Simulation::new(actors, &config, seed);
        if miner_first {
            sim.schedule(1_000, 0, Msg::MineTick);
        }
        for id in 0..n {
            sim.schedule(2_000 + id as u64, id, Msg::SyncTick);
        }
        (nodes, sim)
    }

    #[test]
    fn blocks_flood_around_a_ring() {
        let (nodes, mut sim) = cluster(6, true, 7);
        sim.run_until(40_000);
        let head = nodes[0].head_id();
        assert!(head.0 > 0, "the miner sealed blocks");
        for (i, node) in nodes.iter().enumerate() {
            assert_eq!(node.head_id(), head, "node {i} converged to the miner's head");
        }
    }

    #[test]
    fn announce_pulls_a_late_joiner_forward() {
        // Partition node 3 away for the whole mining window; after heal,
        // only anti-entropy (announce → pull → orphan walk) can catch it
        // up, since every NewBlock flood happened during the partition.
        let owner = SecretKey::from_label(1);
        let genesis = genesis(&owner);
        let nodes: Vec<NodeHandle> = (0..4)
            .map(|i| {
                let mut builder =
                    NodeConfig::builder().kind(ClientKind::Geth).contract(default_contract_address());
                if i == 0 {
                    builder = builder
                        .mining(MinerPolicy::Standard)
                        .schedule(BlockSchedule::Fixed(1_000))
                        .coinbase(Address::from_low_u64(0xc0b0));
                }
                NodeHandle::new(genesis.clone(), builder.build())
            })
            .collect();
        let actors: Vec<Box<dyn Actor<Msg>>> = nodes
            .iter()
            .map(|node| Box::new(NetNode::new(node.clone(), 8_000, 2_000, 100_000)) as Box<dyn Actor<Msg>>)
            .collect();
        let config = NetworkConfig {
            topology: TopologyKind::Complete,
            latency: LatencyModel::Constant(10),
            faults: FaultModel {
                partitions: vec![sereth_net::latency::Partition {
                    island: vec![3],
                    from_ms: 0,
                    until_ms: 20_000,
                }],
                ..FaultModel::none()
            },
        };
        let mut sim = Simulation::new(actors, &config, 11);
        sim.schedule(1_000, 0, Msg::MineTick);
        for id in 0..4 {
            sim.schedule(2_000 + id as u64, id, Msg::SyncTick);
        }
        sim.run_until(19_000);
        assert_eq!(nodes[3].head_number(), 0, "partitioned node saw nothing");
        assert!(nodes[0].head_number() >= 5, "mainland kept mining");
        sim.run_until(60_000);
        assert_eq!(nodes[3].head_id(), nodes[0].head_id(), "anti-entropy caught the late joiner up");
        let snapshot = nodes[3].telemetry_snapshot();
        let pulls = snapshot.counters.get("net.head_pulls").copied().unwrap_or(0);
        assert!(pulls > 0, "the catch-up went through an announce-driven pull");
    }

    #[test]
    fn pending_regossip_crosses_a_healed_partition() {
        // Submit a transaction to isolated node 2 while the miner is
        // unreachable; the flood dies inside the island, so only the
        // sync-round re-offer can carry it to the miner after the heal.
        let owner = SecretKey::from_label(1);
        let genesis = genesis(&owner);
        let nodes: Vec<NodeHandle> = (0..3)
            .map(|i| {
                let mut builder =
                    NodeConfig::builder().kind(ClientKind::Geth).contract(default_contract_address());
                if i == 0 {
                    builder = builder
                        .mining(MinerPolicy::Standard)
                        .schedule(BlockSchedule::Fixed(5_000))
                        .coinbase(Address::from_low_u64(0xc0b0));
                }
                NodeHandle::new(genesis.clone(), builder.build())
            })
            .collect();
        let actors: Vec<Box<dyn Actor<Msg>>> = nodes
            .iter()
            .map(|node| Box::new(NetNode::new(node.clone(), 40_000, 2_000, 100_000)) as Box<dyn Actor<Msg>>)
            .collect();
        let config = NetworkConfig {
            topology: TopologyKind::Complete,
            latency: LatencyModel::Constant(10),
            faults: FaultModel {
                partitions: vec![sereth_net::latency::Partition {
                    island: vec![2],
                    from_ms: 0,
                    until_ms: 10_000,
                }],
                ..FaultModel::none()
            },
        };
        let mut sim = Simulation::new(actors, &config, 13);
        sim.schedule(5_000, 0, Msg::MineTick);
        for id in 0..3 {
            sim.schedule(1_000 + id as u64, id, Msg::SyncTick);
        }
        let tx = crate::client::transfer(&owner, 0, Address::from_low_u64(0xbeef), U256::from(1u64), 1);
        let tx_hash = tx.hash();
        sim.schedule(500, 2, Msg::SubmitTx(tx));
        sim.run_until(9_000);
        assert!(nodes[2].pool_contains(&tx_hash), "the island holds the transaction");
        assert!(!nodes[0].pool_contains(&tx_hash), "the flood died at the partition");
        sim.run_until(60_000);
        let committed = nodes[0].with_inner(|inner| inner.chain.find_receipt(&tx_hash).is_some());
        assert!(committed, "the re-offered transaction reached the miner and committed");
    }

    #[test]
    fn mining_quiesces_at_the_horizon() {
        let (nodes, mut sim) = cluster(3, true, 21);
        sim.run_until(200_000);
        // mine_until = 30_000 with 1 s blocks: about 30 blocks, never more.
        let head = nodes[0].head_number();
        assert!(head > 0 && head <= 30, "mining stopped at the horizon (head {head})");
    }
}
