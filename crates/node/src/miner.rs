//! Miner policies: how a block's transaction order is chosen.
//!
//! "Special peers, called miners, have the privilege of deciding what goes
//! into a block and in what order" (paper §II-C). The standard policy
//! maximises fees; the *semantic* policy (paper §V-C) runs Hash-Mark-Set
//! over the pool and interleaves dependent `buy`s into the mark interval
//! they were built against, so that "most transactions are successful".
//! The *PWV* policy reproduces the related-work comparator of §VI —
//! piece-wise visibility (Faleiro et al., VLDB 2017) — as a deterministic
//! dependency scheduler with early write visibility confined to block
//! assembly; see [`MinerPolicy::Pwv`].
//!
//! Every policy exists twice: the default implementations read the pool's
//! incrementally-maintained candidate indexes ([`order_candidates`] /
//! [`order_candidates_limited`] — `ready_by_price` is an `O(k)` index
//! read, market calldata is pre-parsed at insert), and the pre-index
//! rescan implementations are kept verbatim as the byte-equality oracle
//! and benchmark baseline ([`order_candidates_rescan`]; the
//! `txpool_index_props` suite holds the two equal over randomized pool
//! histories).

use std::collections::{HashMap, HashSet};

use sereth_chain::state::StateView;
use sereth_chain::txpool::{MarketEntry, MarketKind, MarketSpec, TxPool};
use sereth_core::fpv::Fpv;
use sereth_core::hms::{hash_mark_set, HmsConfig};
use sereth_core::process::PendingTx;
use sereth_crypto::address::Address;
use sereth_crypto::hash::H256;
use sereth_types::transaction::Transaction;

use crate::contract::{buy_selector, set_selector, SLOT_MARK, SLOT_VALUE};

/// How a miner orders candidate transactions.
#[derive(Debug, Clone, Default)]
pub enum MinerPolicy {
    /// Fee-priority with per-sender nonce order — ordinary Ethereum mining.
    #[default]
    Standard,
    /// Semantic mining: order the Sereth series via Hash-Mark-Set and
    /// splice each `buy` into its mark interval.
    Semantic(HmsConfig),
    /// Piece-wise-visibility scheduling (paper §VI's comparator, after
    /// Faleiro et al.): during block assembly, a pending transaction's
    /// writes are visible to later-scheduled transactions immediately, and
    /// the scheduler greedily runs every `buy` whose read dependency is
    /// already satisfied *before* applying the next `set` that would close
    /// its interval. The dependency information comes from read/write sets
    /// alone (offer words vs speculative state) — no HMS flags, no mark
    /// chain walk. Crucially, clients stay unmodified: PWV "only provides
    /// write visibility after a transaction is submitted to the database
    /// system", so offers are still built against committed state — the
    /// limitation §VI contrasts with HMS's pre-submission views.
    Pwv,
}

/// The Sereth market's selectors as a pool [`MarketSpec`] — what a node
/// configures its pool with so `set`/`buy` calldata is parsed exactly
/// once, at insert.
pub fn market_spec() -> MarketSpec {
    MarketSpec { set_selector: set_selector(), buy_selector: buy_selector() }
}

/// Converts one pool entry into the lightweight view HMS consumes (the
/// calldata is shared, not copied).
pub fn pending_tx(entry: &sereth_chain::txpool::PoolEntry) -> PendingTx {
    PendingTx {
        hash: entry.tx.hash(),
        sender: entry.tx.sender(),
        to: entry.tx.to(),
        input: entry.tx.input().clone(),
        arrival_seq: entry.arrival_seq,
    }
}

/// The same lightweight view, from a pre-parsed market-index entry.
fn market_pending(entry: &MarketEntry) -> PendingTx {
    PendingTx {
        hash: entry.tx.hash(),
        sender: entry.tx.sender(),
        to: entry.tx.to(),
        input: entry.tx.input().clone(),
        arrival_seq: entry.arrival_seq,
    }
}

/// Converts pool entries into the lightweight view HMS consumes, borrowed
/// in place (no entry is cloned).
pub fn pending_view(pool: &TxPool) -> Vec<PendingTx> {
    pool.with_entries_by_arrival(|entries| entries.iter().map(|entry| pending_tx(entry)).collect())
}

/// Reads the committed `(mark, value)` of the Sereth contract from an
/// immutable state view (taken in O(1) via
/// [`sereth_chain::state::StateDb::view`] or
/// `ChainStore::head_state_view`).
pub fn committed_amv(state: &StateView, contract: &Address) -> (H256, H256) {
    (state.storage_get(contract, &SLOT_MARK), state.storage_get(contract, &SLOT_VALUE))
}

/// Orders the pool's candidates according to `policy`, from the pool's
/// incremental indexes.
pub fn order_candidates(
    pool: &TxPool,
    state: &StateView,
    contract: &Address,
    policy: &MinerPolicy,
) -> Vec<Transaction> {
    order_candidates_limited(pool, state, contract, policy, usize::MAX)
}

/// [`order_candidates`] emitting at most `limit` candidates — what a
/// miner with a known block capacity uses so the per-block ordering cost
/// is `O(limit)`, independent of the backlog behind it
/// ([`MinerSetup::candidate_budget`](crate::node::MinerSetup)).
pub fn order_candidates_limited(
    pool: &TxPool,
    state: &StateView,
    contract: &Address,
    policy: &MinerPolicy,
    limit: usize,
) -> Vec<Transaction> {
    match policy {
        MinerPolicy::Standard => pool.ready_by_price_limited(|sender| state.nonce_of(sender), limit),
        MinerPolicy::Semantic(config) => semantic_order(pool, state, contract, config, limit),
        MinerPolicy::Pwv => pwv_order(pool, state, contract, limit),
    }
}

/// The pre-index implementation of every policy: full pool walks with
/// per-block calldata decoding, `O(pool)` (and worse) per block. Kept as
/// the byte-equality oracle for the indexed paths and as the POOL-SCALE
/// benchmark baseline.
pub fn order_candidates_rescan(
    pool: &TxPool,
    state: &StateView,
    contract: &Address,
    policy: &MinerPolicy,
    limit: usize,
) -> Vec<Transaction> {
    match policy {
        MinerPolicy::Standard => pool.ready_by_price_rescan(|sender| state.nonce_of(sender), limit),
        MinerPolicy::Semantic(config) => semantic_order_rescan(pool, state, contract, config, limit),
        MinerPolicy::Pwv => pwv_order_rescan(pool, state, contract, limit),
    }
}

/// Shared tail of the semantic/PWV policies: append the fee-priority
/// order (minus what the market schedule already placed), repair nonce
/// order, and apply the candidate limit.
fn finish_order(
    mut ordered: Vec<Transaction>,
    mut used: HashSet<H256>,
    tail: Vec<Transaction>,
    limit: usize,
) -> Vec<Transaction> {
    for tx in tail {
        if used.insert(tx.hash()) {
            ordered.push(tx);
        }
    }
    let mut repaired = enforce_nonce_order(ordered);
    repaired.truncate(limit);
    repaired
}

/// The PWV schedule over pre-parsed market entries: starting from the
/// committed `(mark, value)`, repeatedly (1) schedule — in arrival order —
/// every pending `buy` whose offer matches the current speculative state,
/// then (2) apply the first pending `set` whose `prev_mark` matches,
/// advancing the speculative state. Returns the scheduled transactions
/// and their hashes.
fn pwv_schedule(market: &[MarketEntry], committed: (H256, H256)) -> (Vec<Transaction>, HashSet<H256>) {
    use sereth_core::mark::compute_mark;

    let (mut mark, mut value) = committed;
    let mut slots: Vec<Option<(&Transaction, &Fpv, MarketKind)>> =
        market.iter().map(|entry| entry.fpv.as_ref().map(|fpv| (&entry.tx, fpv, entry.kind))).collect();
    let mut ordered: Vec<Transaction> = Vec::new();
    let mut used: HashSet<H256> = HashSet::new();
    loop {
        // (1) Every buy whose read set matches visible state is ready.
        for slot in slots.iter_mut() {
            if let Some((tx, fpv, MarketKind::Buy)) = slot {
                if fpv.prev_mark == mark && fpv.value == value {
                    used.insert(tx.hash());
                    ordered.push((*tx).clone());
                    *slot = None;
                }
            }
        }
        // (2) The first dependency-satisfied set advances the state.
        let Some(next_set) = slots
            .iter_mut()
            .find(|slot| matches!(slot, Some((_, fpv, MarketKind::Set)) if fpv.prev_mark == mark))
        else {
            break;
        };
        let Some((tx, fpv, _)) = next_set.take() else { unreachable!("matched above") };
        used.insert(tx.hash());
        ordered.push(tx.clone());
        mark = compute_mark(&fpv.prev_mark, &fpv.value);
        value = fpv.value;
    }
    (ordered, used)
}

/// The PWV order (see [`MinerPolicy::Pwv`]), from the pre-parsed market
/// index: no pool walk, no per-block calldata decoding. Unready market
/// traffic and foreign transactions follow by fee priority.
fn pwv_order(pool: &TxPool, state: &StateView, contract: &Address, limit: usize) -> Vec<Transaction> {
    let committed = committed_amv(state, contract);
    let market = pool.market_snapshot(contract, set_selector(), buy_selector());
    let (ordered, used) = pwv_schedule(&market, committed);
    let tail = pool.ready_by_price_limited(|sender| state.nonce_of(sender), limit);
    finish_order(ordered, used, tail, limit)
}

/// The pre-index PWV implementation: walks the whole pool (borrowed, not
/// cloned) and decodes every entry's calldata per block.
fn pwv_order_rescan(pool: &TxPool, state: &StateView, contract: &Address, limit: usize) -> Vec<Transaction> {
    let committed = committed_amv(state, contract);
    let market: Vec<MarketEntry> = pool.with_entries_by_arrival(|entries| {
        entries
            .iter()
            .filter(|entry| entry.tx.to() == Some(*contract))
            .filter_map(|entry| {
                MarketEntry::classify(&entry.tx, entry.arrival_seq, set_selector(), buy_selector())
            })
            .collect()
    });
    let (ordered, used) = pwv_schedule(&market, committed);
    let tail = pool.ready_by_price_rescan(|sender| state.nonce_of(sender), limit);
    finish_order(ordered, used, tail, limit)
}

/// The semantic-mining series assembly (paper §V-C), shared by the
/// indexed and rescan paths:
///
/// 1. run Hash-Mark-Set over the market's `set`s to obtain the series;
/// 2. bucket pending `buy`s by the mark they offer against;
/// 3. emit `buys(committed mark) ‖ set₁ ‖ buys(mark₁) ‖ set₂ ‖ …`.
fn semantic_schedule(
    market: &[MarketEntry],
    contract: &Address,
    committed: (H256, H256),
    config: &HmsConfig,
) -> (Vec<Transaction>, HashSet<H256>) {
    let pending: Vec<PendingTx> =
        market.iter().filter(|e| e.kind == MarketKind::Set).map(market_pending).collect();
    let outcome = hash_mark_set(&pending, contract, set_selector(), committed, config);

    let by_hash: HashMap<H256, &Transaction> = market.iter().map(|e| (e.tx.hash(), &e.tx)).collect();
    let mut buy_buckets: HashMap<H256, Vec<&Transaction>> = HashMap::new();
    for entry in market {
        if entry.kind == MarketKind::Buy {
            if let Some(fpv) = &entry.fpv {
                buy_buckets.entry(fpv.prev_mark).or_default().push(&entry.tx);
            }
        }
    }

    let mut ordered: Vec<Transaction> = Vec::new();
    let mut used: HashSet<H256> = HashSet::new();
    let emit_bucket = |mark: &H256, ordered: &mut Vec<Transaction>, used: &mut HashSet<H256>| {
        if let Some(bucket) = buy_buckets.get(mark) {
            for tx in bucket {
                if used.insert(tx.hash()) {
                    ordered.push((*tx).clone());
                }
            }
        }
    };

    // Buys against the committed mark execute before any set.
    emit_bucket(&committed.0, &mut ordered, &mut used);
    for node in &outcome.series {
        if let Some(tx) = by_hash.get(&node.pending.hash) {
            if used.insert(tx.hash()) {
                ordered.push((*tx).clone());
            }
        }
        emit_bucket(&node.mark, &mut ordered, &mut used);
    }
    (ordered, used)
}

/// The semantic-mining order, from the pre-parsed market index; everything
/// the series does not place follows by fee priority (mostly no-ops, but
/// part of raw throughput).
fn semantic_order(
    pool: &TxPool,
    state: &StateView,
    contract: &Address,
    config: &HmsConfig,
    limit: usize,
) -> Vec<Transaction> {
    let committed = committed_amv(state, contract);
    let market = pool.market_snapshot(contract, set_selector(), buy_selector());
    let (ordered, used) = semantic_schedule(&market, contract, committed, config);
    let tail = pool.ready_by_price_limited(|sender| state.nonce_of(sender), limit);
    finish_order(ordered, used, tail, limit)
}

/// The pre-index semantic implementation: filters and decodes the whole
/// pool per block (borrowed walk), then runs the identical schedule.
fn semantic_order_rescan(
    pool: &TxPool,
    state: &StateView,
    contract: &Address,
    config: &HmsConfig,
    limit: usize,
) -> Vec<Transaction> {
    let committed = committed_amv(state, contract);
    let market: Vec<MarketEntry> = pool.with_entries_by_arrival(|entries| {
        entries
            .iter()
            .filter(|entry| entry.tx.to() == Some(*contract))
            .filter_map(|entry| {
                MarketEntry::classify(&entry.tx, entry.arrival_seq, set_selector(), buy_selector())
            })
            .collect()
    });
    let (ordered, used) = semantic_schedule(&market, contract, committed, config);
    let tail = pool.ready_by_price_rescan(|sender| state.nonce_of(sender), limit);
    finish_order(ordered, used, tail, limit)
}

/// Rewrites `candidates` so each sender's transactions appear in ascending
/// nonce order while every sender keeps the same *positions* in the list.
/// Needed because splicing buys by mark can invert a buyer's own nonce
/// sequence, which miners must never do (paper §II-C). Account-level nonce
/// validity is the block builder's job; this pass only fixes *relative*
/// order.
pub fn enforce_nonce_order(candidates: Vec<Transaction>) -> Vec<Transaction> {
    let mut per_sender: HashMap<Address, Vec<Transaction>> = HashMap::new();
    for tx in &candidates {
        per_sender.entry(tx.sender()).or_default().push(tx.clone());
    }
    for txs in per_sender.values_mut() {
        txs.sort_by_key(Transaction::nonce);
    }
    let mut cursors: HashMap<Address, usize> = HashMap::new();
    candidates
        .iter()
        .map(|tx| {
            let sender = tx.sender();
            let cursor = cursors.entry(sender).or_insert(0);
            let replacement = per_sender[&sender][*cursor].clone();
            *cursor += 1;
            replacement
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::contract::{default_contract_address, sereth_genesis_slots};
    use bytes::Bytes;
    use sereth_chain::state::StateDb;
    use sereth_chain::txpool::PoolConfig;
    use sereth_core::fpv::Flag;
    use sereth_core::mark::{compute_mark, genesis_mark};
    use sereth_crypto::sig::SecretKey;
    use sereth_types::transaction::TxPayload;
    use sereth_types::u256::U256;
    use sereth_vm::exec::Storage;

    fn state_with_contract() -> (StateDb, Address) {
        let contract = default_contract_address();
        let state = sereth_chain::genesis::GenesisBuilder::new()
            .contract_with_storage(
                contract,
                sereth_vm::exec::ContractCode::None,
                sereth_genesis_slots(&Address::from_low_u64(1), H256::from_low_u64(50)),
            )
            .build()
            .state;
        (state, contract)
    }

    /// A pool with the Sereth market selectors pre-indexed, as nodes
    /// construct theirs.
    fn market_pool() -> TxPool {
        TxPool::with_config(PoolConfig { market: Some(market_spec()), ..PoolConfig::default() })
    }

    /// Every policy, indexed and rescan, must agree before we assert on
    /// the indexed output's shape.
    fn ordered_checked(
        pool: &TxPool,
        state: &StateDb,
        contract: &Address,
        policy: &MinerPolicy,
    ) -> Vec<Transaction> {
        let indexed = order_candidates(pool, &state.view(), contract, policy);
        let rescan = order_candidates_rescan(pool, &state.view(), contract, policy, usize::MAX);
        assert_eq!(
            indexed.iter().map(Transaction::hash).collect::<Vec<_>>(),
            rescan.iter().map(Transaction::hash).collect::<Vec<_>>(),
            "indexed and rescan orders diverged for {policy:?}"
        );
        indexed
    }

    fn sereth_tx(
        key: &SecretKey,
        nonce: u64,
        selector: [u8; 4],
        flag: Flag,
        prev: H256,
        value: u64,
    ) -> Transaction {
        let fpv = if matches!(flag, Flag::Rejected) {
            Fpv { flag_word: H256::from_low_u64(0xbad), prev_mark: prev, value: H256::from_low_u64(value) }
        } else {
            Fpv::new(flag, prev, H256::from_low_u64(value))
        };
        Transaction::sign(
            TxPayload {
                nonce,
                gas_price: 1,
                gas_limit: 100_000,
                to: Some(default_contract_address()),
                value: U256::ZERO,
                input: fpv.to_calldata(selector),
            },
            key,
        )
    }

    fn plain_tx(key: &SecretKey, nonce: u64, gas_price: u64) -> Transaction {
        Transaction::sign(
            TxPayload {
                nonce,
                gas_price,
                gas_limit: 21_000,
                to: Some(Address::from_low_u64(0xee)),
                value: U256::ZERO,
                input: Bytes::new(),
            },
            key,
        )
    }

    #[test]
    fn standard_policy_orders_by_fee() {
        let (state, contract) = state_with_contract();
        let pool = market_pool();
        let a = SecretKey::from_label(1);
        let b = SecretKey::from_label(2);
        pool.insert(plain_tx(&a, 0, 5), 0).unwrap();
        pool.insert(plain_tx(&b, 0, 50), 1).unwrap();
        let ordered = ordered_checked(&pool, &state, &contract, &MinerPolicy::Standard);
        assert_eq!(ordered[0].gas_price(), 50);
        assert_eq!(ordered[1].gas_price(), 5);
    }

    #[test]
    fn semantic_policy_interleaves_buys_into_their_intervals() {
        let (state, contract) = state_with_contract();
        let owner = SecretKey::from_label(1);
        let buyer1 = SecretKey::from_label(2);
        let buyer2 = SecretKey::from_label(3);
        let pool = market_pool();

        let m0 = genesis_mark();
        let m1 = compute_mark(&m0, &H256::from_low_u64(60));
        let m2 = compute_mark(&m1, &H256::from_low_u64(70));

        // Arrival order is adversarial: buys arrive before their sets.
        let buy_at_m1 = sereth_tx(&buyer1, 0, buy_selector(), Flag::Success, m1, 60);
        let buy_at_m2 = sereth_tx(&buyer2, 0, buy_selector(), Flag::Success, m2, 70);
        let buy_at_m0 = sereth_tx(&buyer1, 1, buy_selector(), Flag::Success, m0, 50);
        let set1 = sereth_tx(&owner, 0, set_selector(), Flag::Head, m0, 60);
        let set2 = sereth_tx(&owner, 1, set_selector(), Flag::Success, m1, 70);
        pool.insert(buy_at_m2.clone(), 0).unwrap();
        pool.insert(buy_at_m1.clone(), 1).unwrap();
        pool.insert(set2.clone(), 2).unwrap();
        pool.insert(set1.clone(), 3).unwrap();
        pool.insert(buy_at_m0.clone(), 4).unwrap();

        let ordered = ordered_checked(&pool, &state, &contract, &MinerPolicy::Semantic(HmsConfig::default()));
        let hashes: Vec<H256> = ordered.iter().map(Transaction::hash).collect();
        // Expected semantic order before nonce repair:
        //   buy@m0, set1, buy@m1, set2, buy@m2
        // buyer1 sends buy@m1 (nonce 0) then buy@m0 (nonce 1): the nonce
        // repair swaps them within buyer1's two positions:
        //   position of buy@m0 gets buyer1's nonce-0 tx (buy@m1),
        //   position of buy@m1 gets buyer1's nonce-1 tx (buy@m0).
        assert_eq!(hashes[0], buy_at_m1.hash());
        assert_eq!(hashes[1], set1.hash());
        assert_eq!(hashes[2], buy_at_m0.hash());
        assert_eq!(hashes[3], set2.hash());
        assert_eq!(hashes[4], buy_at_m2.hash());
        assert_eq!(ordered.len(), 5);
    }

    #[test]
    fn semantic_policy_keeps_independent_buyers_in_mark_order() {
        let (state, contract) = state_with_contract();
        let owner = SecretKey::from_label(1);
        let pool = market_pool();
        let m0 = genesis_mark();
        let m1 = compute_mark(&m0, &H256::from_low_u64(60));
        let set1 = sereth_tx(&owner, 0, set_selector(), Flag::Head, m0, 60);
        // Ten buyers target m1; all should land right after set1.
        let mut buys = Vec::new();
        for i in 0..10 {
            let buyer = SecretKey::from_label(100 + i);
            let buy = sereth_tx(&buyer, 0, buy_selector(), Flag::Success, m1, 60);
            pool.insert(buy.clone(), i).unwrap();
            buys.push(buy);
        }
        pool.insert(set1.clone(), 99).unwrap();

        let ordered = ordered_checked(&pool, &state, &contract, &MinerPolicy::Semantic(HmsConfig::default()));
        assert_eq!(ordered[0].hash(), set1.hash());
        assert_eq!(ordered.len(), 11);
        for (i, buy) in buys.iter().enumerate() {
            assert_eq!(ordered[1 + i].hash(), buy.hash());
        }
    }

    #[test]
    fn semantic_policy_appends_unmatched_traffic() {
        let (state, contract) = state_with_contract();
        let owner = SecretKey::from_label(1);
        let stranger = SecretKey::from_label(9);
        let pool = market_pool();
        let m0 = genesis_mark();
        let set1 = sereth_tx(&owner, 0, set_selector(), Flag::Head, m0, 60);
        let stale_buy = sereth_tx(&stranger, 0, buy_selector(), Flag::Success, H256::keccak(b"gone"), 1);
        let transfer = plain_tx(&SecretKey::from_label(10), 0, 3);
        pool.insert(stale_buy.clone(), 0).unwrap();
        pool.insert(set1.clone(), 1).unwrap();
        pool.insert(transfer.clone(), 2).unwrap();

        let ordered = ordered_checked(&pool, &state, &contract, &MinerPolicy::Semantic(HmsConfig::default()));
        assert_eq!(ordered.len(), 3);
        assert_eq!(ordered[0].hash(), set1.hash(), "series first");
        let tail: Vec<H256> = ordered[1..].iter().map(Transaction::hash).collect();
        assert!(tail.contains(&stale_buy.hash()));
        assert!(tail.contains(&transfer.hash()));
    }

    #[test]
    fn pwv_schedules_ready_buys_before_the_set_that_closes_their_interval() {
        let (state, contract) = state_with_contract();
        let owner = SecretKey::from_label(1);
        let buyer1 = SecretKey::from_label(2);
        let buyer2 = SecretKey::from_label(3);
        let pool = market_pool();

        let m0 = genesis_mark();
        // Buys at the *committed* state (mark m0, price 50) — what
        // unmodified clients produce — plus a set that would close that
        // interval. The set arrives FIRST; fee order would kill the buys.
        let set1 = sereth_tx(&owner, 0, set_selector(), Flag::Head, m0, 60);
        let buy_a = sereth_tx(&buyer1, 0, buy_selector(), Flag::Success, m0, 50);
        let buy_b = sereth_tx(&buyer2, 0, buy_selector(), Flag::Success, m0, 50);
        pool.insert(set1.clone(), 0).unwrap();
        pool.insert(buy_a.clone(), 1).unwrap();
        pool.insert(buy_b.clone(), 2).unwrap();

        let ordered = ordered_checked(&pool, &state, &contract, &MinerPolicy::Pwv);
        let hashes: Vec<H256> = ordered.iter().map(Transaction::hash).collect();
        assert_eq!(hashes, vec![buy_a.hash(), buy_b.hash(), set1.hash()]);
    }

    #[test]
    fn pwv_chains_sets_and_rescues_each_intervals_buys() {
        let (state, contract) = state_with_contract();
        let owner = SecretKey::from_label(1);
        let buyer = SecretKey::from_label(2);
        let pool = market_pool();

        let m0 = genesis_mark();
        let m1 = compute_mark(&m0, &H256::from_low_u64(60));
        let set1 = sereth_tx(&owner, 0, set_selector(), Flag::Head, m0, 60);
        let set2 = sereth_tx(&owner, 1, set_selector(), Flag::Success, m1, 70);
        // This buy targets the *intermediate* state (m1, 60): only visible
        // through early write visibility — committed state never shows it
        // if both sets land in one block.
        let buy_mid = sereth_tx(&buyer, 0, buy_selector(), Flag::Success, m1, 60);
        pool.insert(set2.clone(), 0).unwrap();
        pool.insert(buy_mid.clone(), 1).unwrap();
        pool.insert(set1.clone(), 2).unwrap();

        let ordered = ordered_checked(&pool, &state, &contract, &MinerPolicy::Pwv);
        let hashes: Vec<H256> = ordered.iter().map(Transaction::hash).collect();
        assert_eq!(hashes, vec![set1.hash(), buy_mid.hash(), set2.hash()]);
    }

    #[test]
    fn pwv_leaves_unsatisfiable_dependencies_to_fee_order() {
        let (state, contract) = state_with_contract();
        let owner = SecretKey::from_label(1);
        let stranger = SecretKey::from_label(9);
        let pool = market_pool();

        let m0 = genesis_mark();
        let set1 = sereth_tx(&owner, 0, set_selector(), Flag::Head, m0, 60);
        // An offer against a mark no reachable schedule produces.
        let hopeless = sereth_tx(&stranger, 0, buy_selector(), Flag::Success, H256::keccak(b"gone"), 1);
        let transfer = plain_tx(&SecretKey::from_label(10), 0, 3);
        pool.insert(hopeless.clone(), 0).unwrap();
        pool.insert(transfer.clone(), 1).unwrap();
        pool.insert(set1.clone(), 2).unwrap();

        let ordered = ordered_checked(&pool, &state, &contract, &MinerPolicy::Pwv);
        assert_eq!(ordered.len(), 3);
        assert_eq!(ordered[0].hash(), set1.hash());
        let tail: Vec<H256> = ordered[1..].iter().map(Transaction::hash).collect();
        assert!(tail.contains(&hopeless.hash()));
        assert!(tail.contains(&transfer.hash()));
    }

    #[test]
    fn pwv_cannot_rescue_offers_for_already_closed_intervals() {
        // The structural limitation §VI describes: a buy whose offer
        // references an interval the *committed* state already closed can
        // never be satisfied by early visibility of pending writes.
        let (mut state, contract) = state_with_contract();
        let buyer = SecretKey::from_label(2);

        // Commit a set on-state directly: committed mark advances past m0.
        let m0 = genesis_mark();
        let m1 = compute_mark(&m0, &H256::from_low_u64(60));
        state.storage_set(&contract, SLOT_MARK, m1);
        state.storage_set(&contract, SLOT_VALUE, H256::from_low_u64(60));
        state.clear_journal();

        let pool = market_pool();
        let stale_buy = sereth_tx(&buyer, 0, buy_selector(), Flag::Success, m0, 50);
        pool.insert(stale_buy.clone(), 0).unwrap();

        let ordered = ordered_checked(&pool, &state, &contract, &MinerPolicy::Pwv);
        // Scheduled (it occupies block space) but only via the fee-order
        // tail — the dependency loop never picked it up.
        assert_eq!(ordered.len(), 1);
        assert_eq!(ordered[0].hash(), stale_buy.hash());
    }

    #[test]
    fn policies_agree_between_indexed_and_rescan_on_unconfigured_pools() {
        // A pool built WITHOUT a market spec (plain TxPool::new) must
        // still order identically: market_snapshot falls back to a
        // counted rescan with the same classification rule.
        let (state, contract) = state_with_contract();
        let owner = SecretKey::from_label(1);
        let buyer = SecretKey::from_label(2);
        let pool = TxPool::new();
        let m0 = genesis_mark();
        pool.insert(sereth_tx(&owner, 0, set_selector(), Flag::Head, m0, 60), 0).unwrap();
        pool.insert(sereth_tx(&buyer, 0, buy_selector(), Flag::Success, m0, 50), 1).unwrap();
        pool.insert(plain_tx(&SecretKey::from_label(9), 0, 7), 2).unwrap();
        for policy in [MinerPolicy::Standard, MinerPolicy::Semantic(HmsConfig::default()), MinerPolicy::Pwv] {
            ordered_checked(&pool, &state, &contract, &policy);
        }
        assert!(pool.stats().market_rescans > 0, "unconfigured market must rescan");
    }

    #[test]
    fn limited_order_is_a_prefix_for_the_standard_policy() {
        let (state, contract) = state_with_contract();
        let pool = market_pool();
        for label in 1..=9u64 {
            let key = SecretKey::from_label(label);
            pool.insert(plain_tx(&key, 0, label * 3 % 7 + 1), label).unwrap();
        }
        let full = order_candidates(&pool, &state.view(), &contract, &MinerPolicy::Standard);
        let limited = order_candidates_limited(&pool, &state.view(), &contract, &MinerPolicy::Standard, 4);
        assert_eq!(limited.len(), 4);
        assert_eq!(limited[..], full[..4]);
    }

    #[test]
    fn nonce_repair_preserves_positions_and_order() {
        let a = SecretKey::from_label(1);
        let b = SecretKey::from_label(2);
        let a0 = plain_tx(&a, 0, 1);
        let a1 = plain_tx(&a, 1, 1);
        let b0 = plain_tx(&b, 0, 1);
        // a's transactions arrive inverted.
        let repaired = enforce_nonce_order(vec![a1.clone(), b0.clone(), a0.clone()]);
        assert_eq!(repaired[0].hash(), a0.hash());
        assert_eq!(repaired[1].hash(), b0.hash());
        assert_eq!(repaired[2].hash(), a1.hash());
    }

    #[test]
    fn committed_amv_reads_contract_slots() {
        let (state, contract) = state_with_contract();
        let (mark, value) = committed_amv(&state.view(), &contract);
        assert_eq!(mark, genesis_mark());
        assert_eq!(value, H256::from_low_u64(50));
    }
}
