//! The Sereth smart contract — Listing 1 of the paper — in two equivalent
//! forms: hand-written assembly for the bytecode interpreter (standing in
//! for the paper's Solidity) and a native Rust implementation for fast
//! large-scale simulation. The test suite proves the two forms equivalent.
//!
//! Storage layout:
//!
//! | slot | contents |
//! |---|---|
//! | 0 | `p[0]` — address word of the last successful caller |
//! | 1 | `p[1]` — the current mark |
//! | 2 | `p[2]` — the current value (the price) |
//! | 3 | `nSet` — successful `set` count |
//! | 4 | `nBuy` — successful `buy` count |

use bytes::Bytes;
use sereth_core::mark::genesis_mark;
use sereth_crypto::address::Address;
use sereth_crypto::hash::H256;
use sereth_crypto::keccak::{keccak256, keccak256_concat};
use sereth_types::receipt::Log;
use sereth_vm::abi::{self, Selector};
use sereth_vm::asm::assemble;
use sereth_vm::error::VmError;
use sereth_vm::exec::{CallEnv, ContractCode, NativeContract, Storage};
use sereth_vm::gas::GasMeter;

/// Storage slot of `p[0]` (last successful caller).
pub const SLOT_ADDRESS: H256 = H256::new(slot_bytes(0));
/// Storage slot of `p[1]` (current mark).
pub const SLOT_MARK: H256 = H256::new(slot_bytes(1));
/// Storage slot of `p[2]` (current value / price).
pub const SLOT_VALUE: H256 = H256::new(slot_bytes(2));
/// Storage slot of `nSet`.
pub const SLOT_N_SET: H256 = H256::new(slot_bytes(3));
/// Storage slot of `nBuy`.
pub const SLOT_N_BUY: H256 = H256::new(slot_bytes(4));

const fn slot_bytes(n: u8) -> [u8; 32] {
    let mut bytes = [0u8; 32];
    bytes[31] = n;
    bytes
}

/// The default address the experiments deploy the contract at.
pub fn default_contract_address() -> Address {
    Address::from_low_u64(0x5e7e_7411)
}

/// Selector of `set(bytes32[3])`.
pub fn set_selector() -> Selector {
    abi::selector("set(bytes32[3])")
}

/// Selector of `buy(bytes32[3])`.
pub fn buy_selector() -> Selector {
    abi::selector("buy(bytes32[3])")
}

/// Selector of `get(bytes32[3])` (read-only, RAA-augmented).
pub fn get_selector() -> Selector {
    abi::selector("get(bytes32[3])")
}

/// Selector of `mark(bytes32[3])` (read-only, RAA-augmented).
pub fn mark_selector() -> Selector {
    abi::selector("mark(bytes32[3])")
}

/// Event topic emitted by a successful `set`.
pub fn set_ok_topic() -> H256 {
    H256::keccak(b"SetOk(bytes32)")
}

/// Event topic emitted by a successful `buy`.
pub fn buy_ok_topic() -> H256 {
    H256::keccak(b"BuyOk(bytes32)")
}

fn selector_hex(sel: Selector) -> String {
    sel.iter().map(|b| format!("{b:02x}")).collect()
}

/// The contract's assembly source, standing in for Listing 1's Solidity.
pub fn sereth_asm_source() -> String {
    format!(
        r#"
; Sereth contract (paper Listing 1) for the sereth-vm opcode subset.
; dispatcher: selector = calldata[0] >> 224
    PUSH1 0x00
    CALLDATALOAD
    PUSH1 0xe0
    SHR
    DUP1
    PUSH4 0x{set_sel}
    EQ
    PUSH @fn_set
    JUMPI
    DUP1
    PUSH4 0x{buy_sel}
    EQ
    PUSH @fn_buy
    JUMPI
    DUP1
    PUSH4 0x{get_sel}
    EQ
    PUSH @fn_get
    JUMPI
    DUP1
    PUSH4 0x{mark_sel}
    EQ
    PUSH @fn_mark
    JUMPI
    STOP                      ; unknown selector: no-op

fn_set:
    JUMPDEST
    ; if keccak(fpv[1]) == keccak(p[1])  — Listing 1's guard
    PUSH1 0x24
    CALLDATALOAD              ; fpv1 = prev_mark
    DUP1
    PUSH1 0x00
    MSTORE
    PUSH1 0x20
    PUSH1 0x00
    SHA3                      ; keccak(fpv1)
    PUSH1 0x01
    SLOAD
    PUSH1 0x00
    MSTORE
    PUSH1 0x20
    PUSH1 0x00
    SHA3                      ; keccak(p1)
    EQ
    PUSH @set_do
    JUMPI
    STOP                      ; stale mark: include in block, change nothing

set_do:
    JUMPDEST                  ; stack: [fpv1]
    ; nSet++
    PUSH1 0x03
    SLOAD
    PUSH1 0x01
    ADD
    PUSH1 0x03
    SSTORE
    ; p[0] = msg.sender
    CALLER
    PUSH1 0x00
    SSTORE
    ; p[1] = keccak256(fpv1, fpv2); p[2] = fpv2
    PUSH1 0x00
    MSTORE                    ; memory[0..32] = fpv1
    PUSH1 0x44
    CALLDATALOAD              ; fpv2 = value
    DUP1
    PUSH1 0x20
    MSTORE                    ; memory[32..64] = fpv2
    PUSH1 0x40
    PUSH1 0x00
    SHA3                      ; new mark
    PUSH1 0x01
    SSTORE                    ; stack: [fpv2]
    PUSH1 0x02
    SSTORE                    ; p[2] = fpv2
    ; emit SetOk(value): data = memory[32..64]
    PUSH32 0x{set_topic}
    PUSH1 0x20
    PUSH1 0x20
    LOG1
    STOP

fn_buy:
    JUMPDEST
    ; if keccak(offer[1]) == keccak(p[1]) && keccak(offer[2]) == keccak(p[2])
    PUSH1 0x24
    CALLDATALOAD
    PUSH1 0x00
    MSTORE
    PUSH1 0x20
    PUSH1 0x00
    SHA3                      ; keccak(offer1)
    PUSH1 0x01
    SLOAD
    PUSH1 0x00
    MSTORE
    PUSH1 0x20
    PUSH1 0x00
    SHA3                      ; keccak(p1)
    EQ                        ; mark matches?
    PUSH1 0x44
    CALLDATALOAD
    PUSH1 0x00
    MSTORE
    PUSH1 0x20
    PUSH1 0x00
    SHA3                      ; keccak(offer2)
    PUSH1 0x02
    SLOAD
    PUSH1 0x00
    MSTORE
    PUSH1 0x20
    PUSH1 0x00
    SHA3                      ; keccak(p2)
    EQ                        ; price matches?
    AND
    PUSH @buy_do
    JUMPI
    STOP                      ; stale offer: include in block, change nothing

buy_do:
    JUMPDEST
    ; nBuy++
    PUSH1 0x04
    SLOAD
    PUSH1 0x01
    ADD
    PUSH1 0x04
    SSTORE
    ; p[0] = msg.sender
    CALLER
    PUSH1 0x00
    SSTORE
    ; emit BuyOk(price): data = p[2]
    PUSH1 0x02
    SLOAD
    PUSH1 0x00
    MSTORE
    PUSH32 0x{buy_topic}
    PUSH1 0x20
    PUSH1 0x00
    LOG1
    STOP

fn_get:
    JUMPDEST
    ; return raa[2] — the (augmented) value argument
    PUSH1 0x44
    CALLDATALOAD
    PUSH1 0x00
    MSTORE
    PUSH1 0x20
    PUSH1 0x00
    RETURN

fn_mark:
    JUMPDEST
    ; return raa[1] — the (augmented) mark argument
    PUSH1 0x24
    CALLDATALOAD
    PUSH1 0x00
    MSTORE
    PUSH1 0x20
    PUSH1 0x00
    RETURN
"#,
        set_sel = selector_hex(set_selector()),
        buy_sel = selector_hex(buy_selector()),
        get_sel = selector_hex(get_selector()),
        mark_sel = selector_hex(mark_selector()),
        set_topic = sereth_crypto::encode_hex(set_ok_topic().as_bytes()),
        buy_topic = sereth_crypto::encode_hex(buy_ok_topic().as_bytes()),
    )
}

/// Assembles the contract bytecode.
///
/// # Panics
///
/// Panics if the embedded assembly fails to assemble — that is a build
/// defect, covered by tests.
pub fn sereth_bytecode() -> Bytes {
    Bytes::from(assemble(&sereth_asm_source()).expect("embedded sereth assembly is valid"))
}

/// The native (Rust) implementation of the same contract.
#[derive(Debug, Clone, Copy, Default)]
pub struct SerethNative;

impl SerethNative {
    fn word_hash(word: &H256) -> [u8; 32] {
        keccak256(word.as_bytes())
    }
}

impl NativeContract for SerethNative {
    fn name(&self) -> &'static str {
        "sereth-v1"
    }

    fn call(
        &self,
        env: &CallEnv,
        storage: &mut dyn Storage,
        gas: &mut GasMeter,
        logs: &mut Vec<Log>,
    ) -> Result<Bytes, VmError> {
        let Some(selector) = env.selector() else {
            return Ok(Bytes::new()); // fallback like the asm dispatcher
        };
        let me = env.callee;
        if selector == set_selector() {
            let fpv1 = abi::arg_word(&env.calldata, 1).ok_or(VmError::BadCalldata("set needs 3 words"))?;
            let fpv2 = abi::arg_word(&env.calldata, 2).ok_or(VmError::BadCalldata("set needs 3 words"))?;
            gas.charge(2 * 30 + 200)?; // two hashes + p1 sload
            let p1 = storage.storage_get(&me, &SLOT_MARK);
            if Self::word_hash(&fpv1) != Self::word_hash(&p1) {
                return Ok(Bytes::new());
            }
            if env.is_static {
                return Err(VmError::StaticViolation);
            }
            gas.charge(200 + 4 * 5_000 + 30)?; // nSet sload + 4 sstores + mark hash
            let n_set = storage.storage_get(&me, &SLOT_N_SET).low_u64();
            storage.storage_set(&me, SLOT_N_SET, H256::from_low_u64(n_set + 1));
            let mut caller_word = [0u8; 32];
            caller_word[12..].copy_from_slice(env.caller.as_bytes());
            storage.storage_set(&me, SLOT_ADDRESS, H256::new(caller_word));
            let new_mark = H256::new(keccak256_concat(fpv1.as_bytes(), fpv2.as_bytes()));
            storage.storage_set(&me, SLOT_MARK, new_mark);
            storage.storage_set(&me, SLOT_VALUE, fpv2);
            logs.push(Log {
                address: me,
                topics: vec![set_ok_topic()],
                data: Bytes::copy_from_slice(fpv2.as_bytes()),
            });
            Ok(Bytes::new())
        } else if selector == buy_selector() {
            let offer1 = abi::arg_word(&env.calldata, 1).ok_or(VmError::BadCalldata("buy needs 3 words"))?;
            let offer2 = abi::arg_word(&env.calldata, 2).ok_or(VmError::BadCalldata("buy needs 3 words"))?;
            gas.charge(4 * 30 + 2 * 200)?;
            let p1 = storage.storage_get(&me, &SLOT_MARK);
            let p2 = storage.storage_get(&me, &SLOT_VALUE);
            let matches = Self::word_hash(&offer1) == Self::word_hash(&p1)
                && Self::word_hash(&offer2) == Self::word_hash(&p2);
            if !matches {
                return Ok(Bytes::new());
            }
            if env.is_static {
                return Err(VmError::StaticViolation);
            }
            gas.charge(200 + 2 * 5_000)?;
            let n_buy = storage.storage_get(&me, &SLOT_N_BUY).low_u64();
            storage.storage_set(&me, SLOT_N_BUY, H256::from_low_u64(n_buy + 1));
            let mut caller_word = [0u8; 32];
            caller_word[12..].copy_from_slice(env.caller.as_bytes());
            storage.storage_set(&me, SLOT_ADDRESS, H256::new(caller_word));
            logs.push(Log {
                address: me,
                topics: vec![buy_ok_topic()],
                data: Bytes::copy_from_slice(p2.as_bytes()),
            });
            Ok(Bytes::new())
        } else if selector == get_selector() {
            gas.charge(10)?;
            let value = abi::arg_word(&env.calldata, 2).ok_or(VmError::BadCalldata("get needs 3 words"))?;
            Ok(abi::encode_word(value))
        } else if selector == mark_selector() {
            gas.charge(10)?;
            let mark = abi::arg_word(&env.calldata, 1).ok_or(VmError::BadCalldata("mark needs 3 words"))?;
            Ok(abi::encode_word(mark))
        } else {
            Ok(Bytes::new())
        }
    }
}

/// Which form of the contract to install.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ContractForm {
    /// The native Rust implementation (fast; default for experiments).
    #[default]
    Native,
    /// The assembled bytecode run by the interpreter.
    Bytecode,
}

/// The code object for the chosen form.
pub fn sereth_code(form: ContractForm) -> ContractCode {
    match form {
        ContractForm::Native => ContractCode::Native(std::sync::Arc::new(SerethNative)),
        ContractForm::Bytecode => ContractCode::Bytecode(sereth_bytecode()),
    }
}

/// The genesis storage slots for a fresh Sereth contract holding
/// `initial_value`, owned by `owner`.
pub fn sereth_genesis_slots(owner: &Address, initial_value: H256) -> Vec<(H256, H256)> {
    let mut owner_word = [0u8; 32];
    owner_word[12..].copy_from_slice(owner.as_bytes());
    vec![(SLOT_ADDRESS, H256::new(owner_word)), (SLOT_MARK, genesis_mark()), (SLOT_VALUE, initial_value)]
}

#[cfg(test)]
mod tests {
    use super::*;
    use sereth_core::fpv::{Flag, Fpv};
    use sereth_core::mark::compute_mark;
    use sereth_types::receipt::TxStatus;
    use sereth_vm::exec::MemStorage;
    use sereth_vm::raa::{execute_call, RaaRegistry};

    const GAS: u64 = 10_000_000;

    fn fresh_storage(contract: &Address) -> MemStorage {
        let mut storage = MemStorage::new();
        for (slot, value) in sereth_genesis_slots(&Address::from_low_u64(0xb055), H256::from_low_u64(50)) {
            storage.storage_set(contract, slot, value);
        }
        storage
    }

    fn call(
        code: &ContractCode,
        storage: &mut MemStorage,
        caller: Address,
        contract: Address,
        calldata: Bytes,
    ) -> sereth_vm::exec::CallOutcome {
        let env = CallEnv::test_env(caller, contract, calldata);
        execute_call(code, env, storage, GAS, &RaaRegistry::new())
    }

    #[test]
    fn bytecode_assembles() {
        let code = sereth_bytecode();
        assert!(code.len() > 100, "non-trivial bytecode, got {} bytes", code.len());
    }

    fn exercise_set_and_buy(code: ContractCode) {
        let contract = default_contract_address();
        let mut storage = fresh_storage(&contract);
        let owner = Address::from_low_u64(0xa11ce);
        let buyer = Address::from_low_u64(0xb0b);

        // Valid set(60) chained on the genesis mark.
        let fpv = Fpv::new(Flag::Head, genesis_mark(), H256::from_low_u64(60));
        let outcome = call(&code, &mut storage, owner, contract, fpv.to_calldata(set_selector()));
        assert_eq!(outcome.status, TxStatus::Success);
        assert!(outcome.logs.iter().any(|l| l.topics.first() == Some(&set_ok_topic())), "SetOk expected");
        let new_mark = compute_mark(&genesis_mark(), &H256::from_low_u64(60));
        assert_eq!(storage.storage_get(&contract, &SLOT_MARK), new_mark);
        assert_eq!(storage.storage_get(&contract, &SLOT_VALUE), H256::from_low_u64(60));
        assert_eq!(storage.storage_get(&contract, &SLOT_N_SET).low_u64(), 1);

        // A buy at the right (mark, price) succeeds.
        let offer = Fpv { flag_word: H256::ZERO, prev_mark: new_mark, value: H256::from_low_u64(60) };
        let outcome = call(&code, &mut storage, buyer, contract, offer.to_calldata(buy_selector()));
        assert_eq!(outcome.status, TxStatus::Success);
        assert!(outcome.logs.iter().any(|l| l.topics.first() == Some(&buy_ok_topic())), "BuyOk expected");
        assert_eq!(storage.storage_get(&contract, &SLOT_N_BUY).low_u64(), 1);

        // A buy at a stale mark is included but has no effect — the
        // paper's "failed transaction".
        let stale = Fpv { flag_word: H256::ZERO, prev_mark: genesis_mark(), value: H256::from_low_u64(60) };
        let outcome = call(&code, &mut storage, buyer, contract, stale.to_calldata(buy_selector()));
        assert_eq!(outcome.status, TxStatus::Success, "no revert — a silent no-op");
        assert!(outcome.logs.is_empty());
        assert_eq!(storage.storage_get(&contract, &SLOT_N_BUY).low_u64(), 1);

        // A buy at the right mark but the wrong price also fails.
        let wrong_price = Fpv { flag_word: H256::ZERO, prev_mark: new_mark, value: H256::from_low_u64(61) };
        let outcome = call(&code, &mut storage, buyer, contract, wrong_price.to_calldata(buy_selector()));
        assert_eq!(outcome.status, TxStatus::Success);
        assert_eq!(storage.storage_get(&contract, &SLOT_N_BUY).low_u64(), 1);

        // A set with a stale mark fails silently too.
        let stale_set = Fpv::new(Flag::Head, genesis_mark(), H256::from_low_u64(99));
        let outcome = call(&code, &mut storage, owner, contract, stale_set.to_calldata(set_selector()));
        assert_eq!(outcome.status, TxStatus::Success);
        assert_eq!(storage.storage_get(&contract, &SLOT_N_SET).low_u64(), 1);
        assert_eq!(storage.storage_get(&contract, &SLOT_VALUE), H256::from_low_u64(60));
    }

    #[test]
    fn native_contract_implements_listing_1() {
        exercise_set_and_buy(sereth_code(ContractForm::Native));
    }

    #[test]
    fn bytecode_contract_implements_listing_1() {
        exercise_set_and_buy(sereth_code(ContractForm::Bytecode));
    }

    #[test]
    fn get_and_mark_echo_their_arguments() {
        for form in [ContractForm::Native, ContractForm::Bytecode] {
            let code = sereth_code(form);
            let contract = default_contract_address();
            let mut storage = fresh_storage(&contract);
            let words = [H256::from_low_u64(1), H256::keccak(b"mark"), H256::from_low_u64(77)];
            let outcome =
                call(&code, &mut storage, Address::ZERO, contract, abi::encode_call(get_selector(), &words));
            assert_eq!(abi::decode_word(&outcome.return_data), Some(H256::from_low_u64(77)), "{form:?}");
            let outcome =
                call(&code, &mut storage, Address::ZERO, contract, abi::encode_call(mark_selector(), &words));
            assert_eq!(abi::decode_word(&outcome.return_data), Some(H256::keccak(b"mark")), "{form:?}");
        }
    }

    #[test]
    fn unknown_selector_is_a_noop() {
        for form in [ContractForm::Native, ContractForm::Bytecode] {
            let code = sereth_code(form);
            let contract = default_contract_address();
            let mut storage = fresh_storage(&contract);
            let outcome = call(
                &code,
                &mut storage,
                Address::ZERO,
                contract,
                abi::encode_call([0xde, 0xad, 0xbe, 0xef], &[]),
            );
            assert_eq!(outcome.status, TxStatus::Success, "{form:?}");
            assert!(outcome.logs.is_empty());
        }
    }

    #[test]
    fn selectors_are_stable() {
        // Pin the ABI: changing a signature silently would break recorded
        // experiments.
        assert_eq!(set_selector(), abi::selector("set(bytes32[3])"));
        assert_ne!(set_selector(), buy_selector());
        assert_ne!(get_selector(), mark_selector());
    }
}
