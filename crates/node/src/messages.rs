//! The message vocabulary of the simulated network.

use sereth_crypto::hash::H256;
use sereth_net::topology::ActorId;
use sereth_types::block::Block;
use sereth_types::transaction::Transaction;

/// Everything that flows between actors (network messages and timers).
#[derive(Debug, Clone)]
pub enum Msg {
    /// A transaction submitted by a locally-attached client (RPC analogue).
    SubmitTx(Transaction),
    /// Gossip: a pending transaction.
    NewTransaction(Transaction),
    /// Gossip: a freshly sealed block.
    NewBlock(Block),
    /// Sync: ask peers for a block by hash. Sent when a gossiped block's
    /// parent is unknown (e.g. after a partition heals); the orphan walk
    /// requests one ancestor per round trip until the branches reconnect.
    GetBlock {
        /// The wanted block.
        hash: H256,
        /// Who is asking (the reply goes straight back).
        requester: ActorId,
    },
    /// Anti-entropy: a node's canonical head, broadcast periodically by
    /// [`crate::netnode::NetNode`] so peers that missed the `NewBlock`
    /// gossip (loss, partition) discover they are behind and pull the
    /// missing blocks with [`Msg::GetBlock`].
    Announce {
        /// The announcer's head hash.
        hash: H256,
        /// The announcer's head height.
        number: u64,
        /// Who announced (the pull request goes straight back).
        from: ActorId,
    },
    /// Timer: a [`crate::netnode::NetNode`] should run its periodic
    /// anti-entropy pass (re-request orphan parents, re-gossip a bounded
    /// slice of its pending pool, announce its head).
    SyncTick,
    /// Timer: a mining node should attempt to seal a block now.
    MineTick,
    /// Timer: a workload driver should perform its next submission.
    /// Carries the driver-local step index.
    WorkloadTick(u64),
}
