//! The message vocabulary of the simulated network.

use sereth_crypto::hash::H256;
use sereth_net::topology::ActorId;
use sereth_types::block::Block;
use sereth_types::transaction::Transaction;

/// Everything that flows between actors (network messages and timers).
#[derive(Debug, Clone)]
pub enum Msg {
    /// A transaction submitted by a locally-attached client (RPC analogue).
    SubmitTx(Transaction),
    /// Gossip: a pending transaction.
    NewTransaction(Transaction),
    /// Gossip: a freshly sealed block.
    NewBlock(Block),
    /// Sync: ask peers for a block by hash. Sent when a gossiped block's
    /// parent is unknown (e.g. after a partition heals); the orphan walk
    /// requests one ancestor per round trip until the branches reconnect.
    GetBlock {
        /// The wanted block.
        hash: H256,
        /// Who is asking (the reply goes straight back).
        requester: ActorId,
    },
    /// Timer: a mining node should attempt to seal a block now.
    MineTick,
    /// Timer: a workload driver should perform its next submission.
    /// Carries the driver-local step index.
    WorkloadTick(u64),
}
