//! A full network node: chain store, transaction pool, RAA registry, and
//! the actor that speaks the gossip protocol.
//!
//! A node is either a standard **Geth** client or a modified **Sereth**
//! client (paper §III-B). The only difference — faithfully to the paper —
//! is that the Sereth client compiles in the RAA data service: its RAA
//! registry carries the [`HmsRaaProvider`], so read-only `get`/`mark`
//! calls against the Sereth contract return READ-UNCOMMITTED views.
//! "Deployment of Sereth in the wild would not require a fork" (§V):
//! both kinds interoperate on one network here too, which
//! `tests/interop.rs` exercises.

use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Weak};
use std::time::Instant;

use parking_lot::{Mutex, MutexGuard};
use sereth_chain::builder::{build_block_traced, BlockLimits};
use sereth_chain::executor::{call_readonly, BlockEnv};
use sereth_chain::genesis::Genesis;
use sereth_chain::parallel::{ExecMode, ExecStats, ExecStatsCells};
use sereth_chain::state::StateView;
use sereth_chain::store::{ChainStore, ImportError, ImportOutcome, StateBackendConfig, StoreConfig};
use sereth_chain::txpool::{PoolConfig, PoolStats, TxPool};
use sereth_chain::validation::ValidationMode;
use sereth_chain::StoreError;
use sereth_core::hms::HmsConfig;
use sereth_core::process::PendingTx;
use sereth_core::provider::{HmsDataSource, HmsRaaProvider};
use sereth_crypto::address::Address;
use sereth_crypto::hash::H256;
use sereth_net::sim::{Actor, Context};
use sereth_net::topology::ActorId;
use sereth_raa::{RaaConfig, RaaDataSource, RaaService, ServiceRaaProvider};
use sereth_telemetry::{BlockTrace, Histogram, Phase, Telemetry, TelemetryConfig, TelemetrySnapshot};
use sereth_types::block::Block;
use sereth_types::transaction::Transaction;
use sereth_types::{IsolationLevel, SimTime};
use sereth_vm::abi;
use sereth_vm::raa::RaaRegistry;

use crate::contract::{get_selector, mark_selector, set_selector};
use crate::messages::Msg;
use crate::miner::{committed_amv, market_spec, order_candidates_limited, MinerPolicy};

/// Standard vs. modified client (paper §III-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClientKind {
    /// Unmodified client: state reads are READ-COMMITTED.
    Geth,
    /// HMS-enabled client: RAA serves READ-UNCOMMITTED views.
    Sereth,
}

/// When blocks are produced.
#[derive(Debug, Clone)]
pub enum BlockSchedule {
    /// A block every `interval` milliseconds.
    Fixed(SimTime),
    /// Exponentially distributed inter-block times with the given mean —
    /// memoryless, like proof-of-work.
    Exponential {
        /// Mean interval in milliseconds.
        mean: SimTime,
    },
}

impl BlockSchedule {
    /// Samples the next inter-block delay.
    pub fn next_delay<R: rand::Rng + ?Sized>(&self, rng: &mut R) -> SimTime {
        match self {
            Self::Fixed(interval) => (*interval).max(1),
            Self::Exponential { mean } => {
                let u: f64 = rng.gen_range(f64::EPSILON..1.0);
                ((-(u.ln()) * *mean as f64) as SimTime).clamp(1, mean.saturating_mul(20))
            }
        }
    }
}

/// Mining configuration for a node.
///
/// `Default` is a standard-ordering miner on a fixed 15 s schedule with
/// the sim's conventional coinbase — the base the
/// [`NodeConfigBuilder`]'s mining setters refine.
#[derive(Debug, Clone)]
pub struct MinerSetup {
    /// Ordering policy.
    pub policy: MinerPolicy,
    /// Production schedule.
    pub schedule: BlockSchedule,
    /// Address credited with fees.
    pub coinbase: Address,
    /// Cap on how many candidates each ordering pass emits. With a cap
    /// the per-block ordering cost is `O(cap)` — independent of the pool
    /// backlog — at the price of not seeing past the cap when candidates
    /// fail execution; `None` (the default everywhere) orders the whole
    /// ready set, exactly as before the indexed pool feed.
    pub candidate_budget: Option<usize>,
}

impl Default for MinerSetup {
    fn default() -> Self {
        Self {
            policy: MinerPolicy::Standard,
            schedule: BlockSchedule::Fixed(15_000),
            coinbase: Address::from_low_u64(0xc0b0),
            candidate_budget: None,
        }
    }
}

/// Which implementation serves RAA views on a Sereth node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RaaBackend {
    /// The paper-literal path: snapshot the pool and rerun Algorithm 1
    /// on every query (`HmsRaaProvider`). O(pool) per read; kept for
    /// fidelity testing and as the A/B baseline in `sereth-bench`.
    Recompute,
    /// The incremental `sereth-raa` view service: pool events maintain
    /// per-contract series caches; reads are O(1) when nothing relevant
    /// changed. The default.
    Service {
        /// Contract-shard count of the service.
        shards: usize,
    },
}

impl Default for RaaBackend {
    fn default() -> Self {
        Self::Service { shards: 8 }
    }
}

/// Per-node configuration.
///
/// Construct through [`NodeConfig::builder`] or the presets
/// ([`NodeConfig::geth`], [`NodeConfig::sereth`], [`NodeConfig::miner`]):
/// the builder is the one construction surface, so a new knob (like
/// [`NodeConfig::isolation`]) never again requires touching every
/// call site. The fields stay public for inspection and for
/// `NodeHandle::with_inner_mut`-style rewiring.
#[derive(Debug, Clone)]
pub struct NodeConfig {
    /// Client kind (decides whether RAA/HMS is compiled in).
    pub kind: ClientKind,
    /// Address of the Sereth contract under management.
    pub contract: Address,
    /// Mining setup, if this node mines.
    pub miner: Option<MinerSetup>,
    /// Block capacity limits.
    pub limits: BlockLimits,
    /// HMS extensions (committed-head).
    pub hms: HmsConfig,
    /// RAA serving strategy (Sereth nodes only).
    pub raa_backend: RaaBackend,
    /// How mined blocks execute their candidates (both client kinds can
    /// mine with the conflict-aware parallel executor — it changes the
    /// block's production cost, never its bytes).
    pub exec_mode: ExecMode,
    /// How received blocks replay during validation — the cost every peer
    /// pays for every block (paper §II-D). Parallel replay is
    /// verdict-equivalent to sequential, so it changes import cost, never
    /// which blocks this node accepts.
    pub validation_mode: ValidationMode,
    /// Transaction-pool configuration (shard count, capacity, event
    /// buffer). The node overrides [`PoolConfig::market`] with the Sereth
    /// contract's selectors so `set`/`buy` calldata is pre-parsed at
    /// insert.
    pub pool: PoolConfig,
    /// The telemetry switch. On by default (the layer is cheap enough to
    /// leave running); disabled, every subsystem records nothing and the
    /// registry-backed stats views read zero.
    pub telemetry: TelemetryConfig,
    /// Which rung of the isolation ladder this node serves read-only
    /// queries (and miner ordering) at. The default —
    /// [`IsolationLevel::ReadUncommitted`] — is the paper's mode and
    /// preserves the historical behavior of every read path exactly:
    ///
    /// * `ReadUncommitted`: RAA/HMS queries see the pending pool;
    /// * `ReadCommitted`: queries answer from the committed head only,
    ///   and semantic/PWV miner ordering (which reads pending state)
    ///   degrades to standard ordering;
    /// * `Sequential`: queries additionally answer from a view pinned at
    ///   the last import — one serialization point between blocks, no
    ///   speculative answers.
    pub isolation: IsolationLevel,
    /// Which state backend the chain store opens on: in-memory (the
    /// default) or the durable snapshot + journal directory. Durable
    /// nodes must be built with [`NodeHandle::open`] so recovery errors
    /// surface instead of panicking.
    pub store: StateBackendConfig,
}

impl Default for NodeConfig {
    /// A non-mining Geth client on the default contract at
    /// READ-UNCOMMITTED — the base every preset refines.
    fn default() -> Self {
        Self {
            kind: ClientKind::Geth,
            contract: crate::contract::default_contract_address(),
            miner: None,
            limits: BlockLimits::default(),
            hms: HmsConfig::default(),
            raa_backend: RaaBackend::default(),
            exec_mode: ExecMode::default(),
            validation_mode: ValidationMode::default(),
            pool: PoolConfig::default(),
            telemetry: TelemetryConfig::default(),
            isolation: IsolationLevel::default(),
            store: StateBackendConfig::InMemory,
        }
    }
}

impl NodeConfig {
    /// A builder over [`NodeConfig::default`].
    pub fn builder() -> NodeConfigBuilder {
        NodeConfigBuilder { config: NodeConfig::default() }
    }

    /// Preset: a non-mining standard (Geth) client on `contract`.
    pub fn geth(contract: Address) -> NodeConfigBuilder {
        Self::builder().kind(ClientKind::Geth).contract(contract)
    }

    /// Preset: a non-mining Sereth client (RAA/HMS compiled in) on
    /// `contract`.
    pub fn sereth(contract: Address) -> NodeConfigBuilder {
        Self::builder().kind(ClientKind::Sereth).contract(contract)
    }

    /// Preset: a mining node on `contract` ordering with `policy`. The
    /// client kind follows the policy — semantic/PWV ordering is the
    /// modified client's behavior, standard ordering the stock one —
    /// and can be overridden with [`NodeConfigBuilder::kind`].
    pub fn miner(contract: Address, policy: MinerPolicy) -> NodeConfigBuilder {
        let kind = match policy {
            MinerPolicy::Standard => ClientKind::Geth,
            _ => ClientKind::Sereth,
        };
        Self::builder().kind(kind).contract(contract).mining(policy)
    }
}

/// Chainable constructor for [`NodeConfig`] — every construction site
/// outside this module goes through it (or a preset returning it).
#[derive(Debug, Clone, Default)]
pub struct NodeConfigBuilder {
    config: NodeConfig,
}

impl NodeConfigBuilder {
    /// Sets the client kind.
    pub fn kind(mut self, kind: ClientKind) -> Self {
        self.config.kind = kind;
        self
    }

    /// Sets the managed contract address.
    pub fn contract(mut self, contract: Address) -> Self {
        self.config.contract = contract;
        self
    }

    /// Sets the isolation level read paths run at.
    pub fn isolation(mut self, level: IsolationLevel) -> Self {
        self.config.isolation = level;
        self
    }

    /// Selects the chain-store backend (in-memory by default). Pair a
    /// durable choice with [`NodeHandle::open`] so recovery errors
    /// surface as `Result` instead of a panic.
    pub fn store(mut self, store: StateBackendConfig) -> Self {
        self.config.store = store;
        self
    }

    /// Shorthand for a durable store under `dir` with default
    /// [`sereth_chain::DurableOptions`].
    pub fn durable_store(self, dir: impl Into<std::path::PathBuf>) -> Self {
        self.store(StateBackendConfig::Durable {
            dir: dir.into(),
            options: sereth_chain::DurableOptions::default(),
        })
    }

    /// Installs a fully specified mining setup.
    pub fn miner_setup(mut self, setup: MinerSetup) -> Self {
        self.config.miner = Some(setup);
        self
    }

    /// Makes this node mine with `policy` (default schedule and
    /// coinbase; refine with [`NodeConfigBuilder::schedule`],
    /// [`NodeConfigBuilder::coinbase`],
    /// [`NodeConfigBuilder::candidate_budget`]).
    pub fn mining(mut self, policy: MinerPolicy) -> Self {
        self.miner_mut().policy = policy;
        self
    }

    /// Removes any mining setup (presets like [`NodeConfig::miner`]
    /// install one).
    pub fn no_miner(mut self) -> Self {
        self.config.miner = None;
        self
    }

    /// Sets the miner's block-production schedule (installing a
    /// standard-ordering setup if none exists yet).
    pub fn schedule(mut self, schedule: BlockSchedule) -> Self {
        self.miner_mut().schedule = schedule;
        self
    }

    /// Sets the miner's coinbase (installing a standard-ordering setup
    /// if none exists yet).
    pub fn coinbase(mut self, coinbase: Address) -> Self {
        self.miner_mut().coinbase = coinbase;
        self
    }

    /// Caps the per-block candidate-ordering pass (installing a
    /// standard-ordering setup if none exists yet).
    pub fn candidate_budget(mut self, budget: Option<usize>) -> Self {
        self.miner_mut().candidate_budget = budget;
        self
    }

    fn miner_mut(&mut self) -> &mut MinerSetup {
        self.config.miner.get_or_insert_with(MinerSetup::default)
    }

    /// Sets the block capacity limits.
    pub fn limits(mut self, limits: BlockLimits) -> Self {
        self.config.limits = limits;
        self
    }

    /// Sets the block gas limit, keeping the other limits.
    pub fn gas_limit(mut self, gas_limit: u64) -> Self {
        self.config.limits.gas_limit = gas_limit;
        self
    }

    /// Sets the per-block transaction cap, keeping the other limits.
    pub fn max_txs(mut self, max_txs: Option<usize>) -> Self {
        self.config.limits.max_txs = max_txs;
        self
    }

    /// Sets the HMS extension parameters.
    pub fn hms(mut self, hms: HmsConfig) -> Self {
        self.config.hms = hms;
        self
    }

    /// Sets the RAA serving backend (Sereth nodes only).
    pub fn raa_backend(mut self, backend: RaaBackend) -> Self {
        self.config.raa_backend = backend;
        self
    }

    /// Sets how mined blocks execute their candidates.
    pub fn exec_mode(mut self, mode: ExecMode) -> Self {
        self.config.exec_mode = mode;
        self
    }

    /// Sets how received blocks replay during validation.
    pub fn validation_mode(mut self, mode: ValidationMode) -> Self {
        self.config.validation_mode = mode;
        self
    }

    /// Sets the transaction-pool configuration.
    pub fn pool(mut self, pool: PoolConfig) -> Self {
        self.config.pool = pool;
        self
    }

    /// Sets the telemetry configuration.
    pub fn telemetry(mut self, telemetry: TelemetryConfig) -> Self {
        self.config.telemetry = telemetry;
        self
    }

    /// Switches telemetry on or off, keeping the rest of its config.
    pub fn telemetry_enabled(mut self, enabled: bool) -> Self {
        self.config.telemetry.enabled = enabled;
        self
    }

    /// Finishes the configuration.
    pub fn build(self) -> NodeConfig {
        self.config
    }
}

/// The lock-protected node state.
pub struct NodeInner {
    /// Chain store (canonical chain + side chains).
    pub chain: ChainStore,
    /// Pending transaction pool. Internally synchronized (sharded) and
    /// held by `Arc`, so submission and the miner's ordering pass run
    /// *outside* the node lock against the same pool.
    pub pool: Arc<TxPool>,
    /// RAA registry (holds the HMS provider on Sereth nodes).
    pub raa: RaaRegistry,
    /// Static configuration.
    pub config: NodeConfig,
    /// The incremental RAA view service, when
    /// [`RaaBackend::Service`] is active (exposed for metrics).
    pub raa_service: Option<Arc<RaaService>>,
    /// Blocks whose parents have not arrived yet.
    orphans: Vec<Block>,
    /// Gossip dedup for transactions.
    seen_txs: std::collections::HashSet<H256>,
    /// The SEQUENTIAL rung's serialization point: the head `(height,
    /// view)` as of the last import. Queries at
    /// [`IsolationLevel::Sequential`] answer from this pin — never from
    /// a head that moved mid-conversation — so every read between two
    /// imports observes one consistent height.
    pinned_view: (u64, sereth_chain::state::StateView),
}

impl NodeInner {
    /// The head read transaction: height and epoch-pinned view captured
    /// together under the lock already held. Every committed read path
    /// goes through this (or [`NodeInner::pinned_reader`]) so height and
    /// view can never disagree.
    pub fn head_reader(&self) -> StateReader {
        StateReader { height: self.chain.head_number(), view: self.chain.head_state_view() }
    }

    /// The SEQUENTIAL-rung read transaction: the view pinned at the last
    /// import (its epoch pin travels with the stored view).
    pub fn pinned_reader(&self) -> StateReader {
        let (height, view) = self.pinned_view.clone();
        StateReader { height, view }
    }
}

/// An epoch-pinned read transaction over a node's committed state: an
/// O(1) [`StateView`] stamped with the height it was captured at, taken
/// in a single lock acquisition. While any clone is alive, garbage
/// collection keeps that epoch servable (durable backends included), and
/// copy-on-write keeps the bytes frozen — reads through a reader are
/// repeatable no matter how far the chain advances.
#[derive(Debug, Clone)]
pub struct StateReader {
    height: u64,
    view: StateView,
}

impl StateReader {
    /// The canonical height this reader was captured at.
    pub fn height(&self) -> u64 {
        self.height
    }

    /// The frozen state view.
    pub fn view(&self) -> &StateView {
        &self.view
    }

    /// Consumes the reader into its view (the pin travels along).
    pub fn into_view(self) -> StateView {
        self.view
    }

    /// Commitment to the viewed state.
    pub fn state_root(&self) -> H256 {
        self.view.state_root()
    }
}

/// Outcome of [`NodeHandle::receive_block`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BlockReceipt {
    /// Newly imported (possibly with previously-orphaned descendants);
    /// forward to peers.
    Imported,
    /// Already known; do not forward again.
    Known,
    /// Parent unknown; stashed for retry, not forwarded yet.
    Orphaned,
    /// Validation failed; dropped.
    Rejected,
}

/// One read-only market observation, stamped with the serialization
/// point it was served at. Clients log these; the offline checker in
/// `sereth-consistency` judges each against the committed chain as of
/// `height` to count dirty reads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IsoObservation {
    /// The read mode that produced the answer (the node's isolation
    /// level for queries; READ COMMITTED for `committed_observed`).
    pub level: IsolationLevel,
    /// Committed head height the answer was served at (the pinned
    /// height at SEQUENTIAL).
    pub height: u64,
    /// Observed mark.
    pub mark: H256,
    /// Observed value.
    pub value: H256,
}

/// Per-rung read counter names (`iso.reads.*`).
fn iso_read_counter(level: IsolationLevel) -> &'static str {
    match level {
        IsolationLevel::ReadUncommitted => "iso.reads.read_uncommitted",
        IsolationLevel::ReadCommitted => "iso.reads.read_committed",
        IsolationLevel::Sequential => "iso.reads.sequential",
    }
}

/// The ordering policy a miner may actually run at `isolation`:
/// semantic and PWV ordering consult the pending pool's uncommitted
/// writes, which READ COMMITTED and SEQUENTIAL forbid — there they
/// degrade to standard (price) ordering, counted on
/// `iso.policy_degraded` per ordering pass.
pub(crate) fn effective_policy(
    policy: &MinerPolicy,
    isolation: IsolationLevel,
    telemetry: &Telemetry,
) -> MinerPolicy {
    if isolation == IsolationLevel::ReadUncommitted || matches!(policy, MinerPolicy::Standard) {
        return policy.clone();
    }
    telemetry.counter("iso.policy_degraded").inc();
    MinerPolicy::Standard
}

/// A shareable handle to one node. Clients attached to the node (the
/// paper's smart-contract users) query through this handle — the analogue
/// of local RPC against one's own client process.
#[derive(Clone)]
pub struct NodeHandle {
    inner: Arc<Mutex<NodeInner>>,
    /// Counts every acquisition of the node lock through this handle —
    /// instrumentation the lock-discipline regression tests key on (the
    /// RAA provider's data source locks separately, by design).
    locks: Arc<AtomicU64>,
    /// The node-wide telemetry hub every subsystem (pool, store, RAA
    /// service, executor cells) records into.
    telemetry: Arc<Telemetry>,
    /// Registry cells accumulating the miner's executor stats (`exec.*`)
    /// — absorbed outside the node lock, read without any lock.
    pub(crate) exec_cells: ExecStatsCells,
    /// The store's `validation.*` cells, shared so replay counters are
    /// readable without the node lock.
    validation_cells: ExecStatsCells,
    /// Hold-time histogram of the node lock (`node.lock_hold`).
    lock_hold: Histogram,
}

/// The counted node-lock guard: dereferences to [`NodeInner`] and, when
/// telemetry is enabled, records how long the lock was *held* (not
/// waited for) into the `node.lock_hold` histogram on drop.
pub(crate) struct NodeLockGuard<'a> {
    guard: MutexGuard<'a, NodeInner>,
    held_since: Option<Instant>,
    hold: &'a Histogram,
}

impl Deref for NodeLockGuard<'_> {
    type Target = NodeInner;

    fn deref(&self) -> &NodeInner {
        &self.guard
    }
}

impl DerefMut for NodeLockGuard<'_> {
    fn deref_mut(&mut self) -> &mut NodeInner {
        &mut self.guard
    }
}

impl Drop for NodeLockGuard<'_> {
    fn drop(&mut self) {
        if let Some(since) = self.held_since {
            self.hold.record_ns(since.elapsed().as_nanos().min(u64::MAX as u128) as u64);
        }
    }
}

impl NodeHandle {
    /// Acquires the node lock, counting the acquisition. Disabled
    /// telemetry skips the clock entirely — the guard is then exactly a
    /// counted `MutexGuard`.
    pub(crate) fn lock(&self) -> NodeLockGuard<'_> {
        self.locks.fetch_add(1, Ordering::Relaxed);
        let guard = self.inner.lock();
        let held_since = self.lock_hold.is_enabled().then(Instant::now);
        NodeLockGuard { guard, held_since, hold: &self.lock_hold }
    }

    /// How many times this handle (any clone of it) has acquired the node
    /// lock. Read-only queries must cost exactly one acquisition — the
    /// regression test for the historical double-lock in
    /// [`NodeHandle::query_view`] asserts on deltas of this counter.
    pub fn lock_acquisitions(&self) -> u64 {
        self.locks.load(Ordering::Relaxed)
    }
}

/// [`HmsDataSource`] over a node, held weakly by the RAA provider to avoid
/// a reference cycle.
struct NodeSource(Weak<Mutex<NodeInner>>);

impl HmsDataSource for NodeSource {
    fn pending(&self) -> Vec<PendingTx> {
        let Some(node) = self.0.upgrade() else { return Vec::new() };
        let pool = node.lock().pool.clone();
        // The node lock is already released: the walk contends only on
        // the pool's own shard locks.
        crate::miner::pending_view(&pool)
    }

    fn for_each_pending(&self, visit: &mut dyn FnMut(&PendingTx)) {
        let Some(node) = self.0.upgrade() else { return };
        let pool = node.lock().pool.clone();
        // Borrowed walk: no per-query clone of the pool (the provider
        // filters as it goes, so only this contract's sets are copied).
        pool.with_entries_by_arrival(|entries| {
            for entry in entries {
                visit(&crate::miner::pending_tx(entry));
            }
        });
    }

    fn committed(&self, contract: &Address) -> (H256, H256) {
        let Some(node) = self.0.upgrade() else { return (H256::ZERO, H256::ZERO) };
        let view = node.lock().chain.head_state_view();
        committed_amv(&view, contract)
    }
}

impl RaaDataSource for NodeSource {
    fn sync(&self, service: &RaaService) {
        let Some(node) = self.0.upgrade() else { return };
        let pool = node.lock().pool.clone();
        // Event draining happens outside the node lock; the service's own
        // cursor mutex serialises concurrent syncs.
        service.sync(&pool);
    }

    fn committed(&self, contract: &Address) -> (H256, H256) {
        HmsDataSource::committed(self, contract)
    }
}

impl NodeHandle {
    /// Builds a node from `genesis` with the given configuration,
    /// panicking if the store cannot open. In-memory opens are
    /// infallible, so this stays the ergonomic constructor for
    /// simulations and tests; durable nodes should prefer
    /// [`NodeHandle::open`].
    pub fn new(genesis: Genesis, config: NodeConfig) -> Self {
        Self::open(genesis, config).expect("store opens")
    }

    /// Builds a node from `genesis` with the given configuration,
    /// opening (and, for a durable backend, recovering) the chain store.
    /// Sereth nodes get the HMS RAA provider installed for the
    /// contract's `get`/`mark` selectors.
    ///
    /// # Errors
    ///
    /// Whatever [`ChainStore::open`] reports: I/O failure, corrupt
    /// on-disk data, or a directory from a different genesis.
    pub fn open(genesis: Genesis, config: NodeConfig) -> Result<Self, StoreError> {
        let telemetry = Arc::new(Telemetry::new(config.telemetry));
        let pool_config = PoolConfig { market: Some(market_spec()), ..config.pool.clone() };
        let chain = ChainStore::open(
            StoreConfig::in_memory(genesis)
                .with_backend(config.store.clone())
                .validation_mode(config.validation_mode)
                .telemetry(telemetry.clone()),
        )?;
        let pinned_view = (chain.head_number(), chain.head_state_view());
        let inner = NodeInner {
            chain,
            pool: Arc::new(TxPool::with_telemetry(pool_config, telemetry.clone())),
            raa: RaaRegistry::new(),
            config,
            raa_service: None,
            orphans: Vec::new(),
            seen_txs: std::collections::HashSet::new(),
            pinned_view,
        };
        let exec_cells = ExecStatsCells::register(&telemetry, "exec");
        let validation_cells = inner.chain.validation_cells().clone();
        let lock_hold = telemetry.histogram("node.lock_hold");
        let handle = Self {
            inner: Arc::new(Mutex::new(inner)),
            locks: Arc::new(AtomicU64::new(0)),
            telemetry,
            exec_cells,
            validation_cells,
            lock_hold,
        };
        {
            let mut inner = handle.inner.lock();
            // The RAA provider exists to serve READ-UNCOMMITTED views;
            // at the stronger rungs queries never consult it, so neither
            // the provider nor the pool's event buffering is installed —
            // a Sereth node at READ COMMITTED pays nothing for RAA.
            if inner.config.kind == ClientKind::Sereth
                && inner.config.isolation == IsolationLevel::ReadUncommitted
            {
                let source = Arc::new(NodeSource(Arc::downgrade(&handle.inner)));
                let provider: Arc<dyn sereth_vm::raa::RaaProvider> = match inner.config.raa_backend {
                    RaaBackend::Recompute => {
                        Arc::new(HmsRaaProvider::new(source, set_selector(), inner.config.hms.clone()))
                    }
                    RaaBackend::Service { shards } => {
                        let hms = inner.config.hms.clone();
                        // Only the service backend pays for event
                        // buffering; unwatched pools skip it entirely.
                        inner.pool.subscribe();
                        let service = Arc::new(RaaService::with_telemetry(
                            RaaConfig { shards, set_selector: set_selector(), hms },
                            handle.telemetry.clone(),
                        ));
                        inner.raa_service = Some(service.clone());
                        Arc::new(ServiceRaaProvider::new(service, source))
                    }
                };
                let contract = inner.config.contract;
                inner.raa.enable(contract, get_selector());
                inner.raa.enable(contract, mark_selector());
                inner.raa.set_provider(provider);
            }
        }
        Ok(handle)
    }

    /// The incremental RAA service's counters, when the node runs the
    /// [`RaaBackend::Service`] backend.
    pub fn raa_metrics(&self) -> Option<sereth_raa::RaaMetrics> {
        self.lock().raa_service.as_ref().map(|service| service.metrics())
    }

    /// The node's client kind.
    pub fn kind(&self) -> ClientKind {
        self.lock().config.kind
    }

    /// The isolation level this node serves read-only queries at.
    pub fn isolation(&self) -> IsolationLevel {
        self.lock().config.isolation
    }

    /// The height the SEQUENTIAL rung is currently pinned to (the head
    /// as of the last import).
    pub fn pinned_height(&self) -> u64 {
        self.lock().pinned_view.0
    }

    /// Canonical head height.
    pub fn head_number(&self) -> u64 {
        self.lock().chain.head_number()
    }

    /// Canonical head hash, with the height it was read at — one lock
    /// acquisition, so the pair is consistent (gossip can move the head
    /// between two separate calls).
    pub fn head_id(&self) -> (u64, H256) {
        let inner = self.lock();
        (inner.chain.head_number(), inner.chain.head_hash())
    }

    /// Canonical head hash.
    pub fn head_hash(&self) -> H256 {
        self.lock().chain.head_hash()
    }

    /// The state root at the canonical head — what cluster convergence
    /// checks compare byte-for-byte across nodes.
    pub fn head_state_root(&self) -> H256 {
        self.lock().chain.head_state().state_root()
    }

    /// The parent hashes this node is still missing for its stashed
    /// orphans (deduplicated, in stash order) — what an anti-entropy
    /// pass re-requests from peers, since the original `GetBlock` may
    /// have been dropped by the network.
    pub fn orphan_parents(&self) -> Vec<H256> {
        let inner = self.lock();
        let mut parents = Vec::new();
        for block in &inner.orphans {
            let parent = block.header.parent_hash;
            if inner.chain.get(&parent).is_none() && !parents.contains(&parent) {
                parents.push(parent);
            }
        }
        parents
    }

    /// Total blocks this node stores, side chains included. Exceeding the
    /// canonical length proves the node held (and abandoned) a competing
    /// branch — the observable trace of a reorg.
    pub fn stored_blocks(&self) -> usize {
        self.lock().chain.len()
    }

    /// Number of pooled transactions.
    pub fn pool_len(&self) -> usize {
        self.lock().pool.len()
    }

    /// `true` if the pool currently holds `hash`.
    pub fn pool_contains(&self, hash: &H256) -> bool {
        self.lock().pool.contains(hash)
    }

    /// The committed `(mark, value)` of the managed contract — what a
    /// standard Geth client sees (READ-COMMITTED).
    pub fn committed_amv(&self) -> (H256, H256) {
        let observation = self.committed_observed();
        (observation.mark, observation.value)
    }

    /// [`NodeHandle::committed_amv`] with its serialization point: the
    /// committed `(mark, value)` stamped with the head height it was
    /// read at, in the same single lock acquisition. This is the
    /// observation clients log for the offline dirty-read audit.
    pub fn committed_observed(&self) -> IsoObservation {
        let (reader, contract) = {
            let inner = self.lock();
            (inner.head_reader(), inner.config.contract)
        };
        let (mark, value) = committed_amv(reader.view(), &contract);
        IsoObservation { level: IsolationLevel::ReadCommitted, height: reader.height(), mark, value }
    }

    /// Account nonce at the canonical head.
    pub fn account_nonce(&self, address: &Address) -> u64 {
        self.lock().chain.head_state_view().nonce_of(address)
    }

    /// An O(1) immutable snapshot of the canonical head state, plus the
    /// height it was taken at. The view can be held across blocks: it
    /// stays frozen while the node keeps sealing. Sugar over
    /// [`NodeHandle::state_reader`].
    pub fn head_state_view(&self) -> (u64, sereth_chain::state::StateView) {
        let reader = self.state_reader();
        (reader.height(), reader.into_view())
    }

    /// Opens an epoch-pinned read transaction at the canonical head —
    /// one lock acquisition, O(1), frozen and GC-protected until the
    /// last clone drops.
    pub fn state_reader(&self) -> StateReader {
        self.lock().head_reader()
    }

    /// Opens an epoch-pinned read transaction at a historical canonical
    /// `height` — `None` when the height does not exist or was pruned
    /// below the durable backend's retention floor.
    pub fn state_reader_at(&self, height: u64) -> Option<StateReader> {
        self.lock().chain.state_view_at(height).map(|view| StateReader { height, view })
    }

    /// Issues the two read-only calls `mark(...)` and `get(...)` against
    /// the contract, answered at the node's configured
    /// [`IsolationLevel`]. Returns `(mark, value)`.
    ///
    /// At READ UNCOMMITTED (the default, the paper's mode) the calls
    /// execute with RAA applied when this node is a Sereth client (paper
    /// Fig. 1); on a Geth node they execute without augmentation and
    /// echo the zero arguments — callers should use
    /// [`NodeHandle::committed_amv`] instead, exactly as unmodified
    /// clients must. At the stronger rungs both kinds answer from
    /// committed state only — see [`NodeHandle::query_observed`].
    pub fn query_view(&self, caller: Address) -> Option<(H256, H256)> {
        self.query_observed_inner(None, caller).map(|observation| (observation.mark, observation.value))
    }

    /// Like [`NodeHandle::query_view`] but against an explicit contract —
    /// one node (and one RAA provider) serves many independent markets,
    /// provided RAA was enabled for that contract's selectors (see
    /// [`NodeHandle::enable_market`]).
    pub fn query_view_for(&self, contract: Address, caller: Address) -> Option<(H256, H256)> {
        self.query_observed_inner(Some(contract), caller)
            .map(|observation| (observation.mark, observation.value))
    }

    /// [`NodeHandle::query_view`] with its serialization point: the
    /// answer stamped with the level that produced it and the height it
    /// was served at — at [`IsolationLevel::Sequential`] the *pinned*
    /// height, which moves only on import. This is the observation
    /// clients log for the offline dirty-read audit.
    pub fn query_observed(&self, caller: Address) -> Option<IsoObservation> {
        self.query_observed_inner(None, caller)
    }

    /// [`NodeHandle::query_observed`] against an explicit contract.
    pub fn query_observed_for(&self, contract: Address, caller: Address) -> Option<IsoObservation> {
        self.query_observed_inner(Some(contract), caller)
    }

    /// The single-lock read path behind every query entry point: ONE
    /// lock acquisition captures the configured contract (when none was
    /// given) and whatever the isolation level serves from — head view +
    /// RAA registry + block env at READ UNCOMMITTED, the bare head view
    /// at READ COMMITTED, the pinned view at SEQUENTIAL. The answer is
    /// produced outside the lock against the frozen view, so read
    /// latency is independent of both state size and writer activity at
    /// every rung, and each rung counts its reads (`iso.reads.*`).
    fn query_observed_inner(&self, contract: Option<Address>, caller: Address) -> Option<IsoObservation> {
        enum ReadMode {
            Speculative { raa: RaaRegistry, env: BlockEnv },
            Committed,
        }
        let (level, contract, height, state, mode) = {
            let inner = self.lock();
            let level = inner.config.isolation;
            let contract = contract.unwrap_or(inner.config.contract);
            match level {
                IsolationLevel::ReadUncommitted => {
                    let head = inner.chain.head_block().header.clone();
                    let env = BlockEnv {
                        number: head.number,
                        timestamp_ms: head.timestamp_ms,
                        gas_limit: head.gas_limit,
                        miner: head.miner,
                    };
                    let mode = ReadMode::Speculative { raa: inner.raa.clone(), env };
                    (level, contract, head.number, inner.chain.head_state_view(), mode)
                }
                IsolationLevel::ReadCommitted => {
                    let reader = inner.head_reader();
                    (level, contract, reader.height(), reader.into_view(), ReadMode::Committed)
                }
                IsolationLevel::Sequential => {
                    let reader = inner.pinned_reader();
                    (level, contract, reader.height(), reader.into_view(), ReadMode::Committed)
                }
            }
        };
        self.telemetry.counter(iso_read_counter(level)).inc();
        let (mark, value) = match mode {
            ReadMode::Speculative { raa, env } => {
                // The lock is released: the provider re-locks the node
                // inside `augment` without deadlocking.
                let zero = [H256::ZERO, H256::ZERO, H256::ZERO];
                let mark_out = call_readonly(
                    &state,
                    caller,
                    contract,
                    abi::encode_call(mark_selector(), &zero),
                    &env,
                    &raa,
                );
                let mark = abi::decode_word(&mark_out.return_data)?;
                let get_out = call_readonly(
                    &state,
                    caller,
                    contract,
                    abi::encode_call(get_selector(), &zero),
                    &env,
                    &raa,
                );
                (mark, abi::decode_word(&get_out.return_data)?)
            }
            ReadMode::Committed => committed_amv(&state, &contract),
        };
        Some(IsoObservation { level, height, mark, value })
    }

    /// Enables RAA on this node for an additional market contract's
    /// `get`/`mark` selectors (the configured contract is enabled at
    /// construction). No-op on Geth nodes.
    pub fn enable_market(&self, contract: Address) {
        let mut inner = self.lock();
        if inner.config.kind == ClientKind::Sereth {
            inner.raa.enable(contract, get_selector());
            inner.raa.enable(contract, mark_selector());
        }
    }

    /// Accepts a transaction from gossip or local submission. Returns
    /// `true` when newly accepted (the caller should gossip it onward).
    ///
    /// The node lock is held only for the gossip-dedup check and an O(1)
    /// state-view capture; signature verification and the pool insert run
    /// outside it, so submission from many clients contends on the pool's
    /// sender shards — not on the miner's node lock.
    pub fn receive_tx(&self, tx: Transaction, now: SimTime) -> bool {
        self.telemetry.time(Phase::ReceiveTx, || {
            let (pool, view) = {
                let mut inner = self.lock();
                if !inner.seen_txs.insert(tx.hash()) {
                    return false;
                }
                (inner.pool.clone(), inner.chain.head_state_view())
            };
            if !tx.verify_signature() {
                return false;
            }
            if tx.nonce() < view.nonce_of(&tx.sender()) {
                return false; // stale
            }
            pool.insert(tx, now).is_ok()
        })
    }

    /// Accepts a block from gossip, importing it and any orphans it
    /// unblocks.
    pub fn receive_block(&self, block: Block) -> BlockReceipt {
        let mut inner = self.lock();
        if inner.chain.get(&block.hash()).is_some() {
            return BlockReceipt::Known;
        }
        match inner.chain.import(block.clone()) {
            Ok(ImportOutcome::AlreadyKnown) => BlockReceipt::Known,
            Ok(_) => {
                Self::after_import(&mut inner, &block);
                Self::retry_orphans(&mut inner);
                BlockReceipt::Imported
            }
            Err(ImportError::UnknownParent) => {
                if inner.orphans.len() < 1024 {
                    inner.orphans.push(block);
                }
                BlockReceipt::Orphaned
            }
            Err(ImportError::Invalid(_)) => BlockReceipt::Rejected,
            // The block entered the in-memory chain; only the journal
            // append failed. Keep serving (and forwarding) from memory,
            // but make the persistence fault observable.
            Err(ImportError::Store(_)) => {
                Self::after_import(&mut inner, &block);
                Self::retry_orphans(&mut inner);
                drop(inner);
                self.telemetry.counter("node.store_failed").inc();
                BlockReceipt::Imported
            }
        }
    }

    fn after_import(inner: &mut NodeInner, block: &Block) {
        let NodeInner { chain, pool, .. } = inner;
        pool.remove_committed(block.transactions.iter());
        let head_state = chain.head_state();
        pool.prune_stale(|sender| head_state.nonce_of(sender));
        // Advance the SEQUENTIAL serialization point: imports are the
        // only place the pin moves, so between two imports every pinned
        // query answers at one height.
        inner.pinned_view = (inner.chain.head_number(), inner.chain.head_state_view());
    }

    fn retry_orphans(inner: &mut NodeInner) {
        loop {
            let mut progressed = false;
            let mut remaining = Vec::new();
            let orphans = std::mem::take(&mut inner.orphans);
            for block in orphans {
                if inner.chain.get(&block.hash()).is_some() {
                    continue;
                }
                match inner.chain.import(block.clone()) {
                    Ok(ImportOutcome::AlreadyKnown) => {}
                    // A Store error still imported in memory — same as Ok
                    // here; receive_block surfaces persistence faults.
                    Ok(_) | Err(ImportError::Store(_)) => {
                        Self::after_import(inner, &block);
                        progressed = true;
                    }
                    Err(ImportError::UnknownParent) => remaining.push(block),
                    Err(ImportError::Invalid(_)) => {}
                }
            }
            inner.orphans = remaining;
            if !progressed {
                break;
            }
        }
    }

    /// The transaction pool's counters: indexed ordering reads, forced
    /// rebuilds, rescan fallbacks, and shard-lock contention — the
    /// observable face of the sharded pool feed.
    pub fn pool_stats(&self) -> PoolStats {
        self.lock().pool.stats()
    }

    /// Cumulative executor counters over every block this node has mined —
    /// the observable face of the parallel executor (fallbacks prove the
    /// mis-speculation path ran; fast commits prove speculation paid off).
    ///
    /// Registry-backed: reads relaxed atomics, never the node lock, so
    /// monitoring cannot stall (or be stalled by) the miner.
    pub fn exec_stats(&self) -> ExecStats {
        self.exec_cells.snapshot()
    }

    /// Cumulative executor counters over every block this node has
    /// replay-validated — the validation-side twin of
    /// [`NodeHandle::exec_stats`]. Every import (gossip, orphan retry, and
    /// the node's own mined blocks) replays through the chain store, so
    /// this is the per-peer redundant-validation cost the paper's §II-D
    /// cost model describes. Lock-free, like [`NodeHandle::exec_stats`].
    pub fn validation_stats(&self) -> ExecStats {
        self.validation_cells.snapshot()
    }

    /// The node's telemetry hub (shared with the pool, store, executor
    /// cells, and RAA service).
    pub fn telemetry(&self) -> &Arc<Telemetry> {
        &self.telemetry
    }

    /// An owned snapshot of every metric this node recorded — counters
    /// (`pool.*`, `exec.*`, `validation.*`, `raa.*`), gauges, phase and
    /// lock-hold histograms, and the recent block traces. Reads only
    /// atomics and the short trace ring lock: **zero** node-lock
    /// acquisitions, which `telemetry_reads_take_zero_node_locks` pins.
    pub fn telemetry_snapshot(&self) -> TelemetrySnapshot {
        self.telemetry.snapshot()
    }

    /// Seals a block at `now` (miner nodes only) and imports it locally.
    ///
    /// The node lock is held twice, briefly: once to snapshot the parent
    /// header, a COW state clone, and the pool handle; once to import the
    /// sealed block. Candidate ordering and execution run in between,
    /// unlocked — client submission keeps flowing into the pool shards
    /// while the block is being built.
    pub fn mine(&self, now: SimTime) -> Option<Block> {
        let (setup, parent, state, pool, contract, limits, exec_mode, isolation) = {
            let inner = self.lock();
            let setup = inner.config.miner.clone()?;
            (
                setup,
                inner.chain.head_block().header.clone(),
                inner.chain.head_state().clone(),
                inner.pool.clone(),
                inner.config.contract,
                inner.config.limits.clone(),
                inner.config.exec_mode,
                inner.config.isolation,
            )
        };
        let budget = setup.candidate_budget.unwrap_or(usize::MAX);
        let policy = effective_policy(&setup.policy, isolation, &self.telemetry);
        let (candidates, order_ns) = self.telemetry.time_ns(Phase::OrderCandidates, || {
            order_candidates_limited(&pool, &state.view(), &contract, &policy, budget)
        });
        let timestamp = now.max(parent.timestamp_ms + 1);
        let built = build_block_traced(
            &parent,
            &state,
            &candidates,
            setup.coinbase,
            timestamp,
            &limits,
            &exec_mode,
            &self.telemetry,
        );
        // Lock-free bookkeeping before re-locking: executor counters land
        // in the `exec.*` cells, the ordering span in the block's trace
        // (the store adds an `import`-role trace for the same number).
        self.exec_cells.absorb(&built.stats);
        self.telemetry.trace_block(BlockTrace {
            number: built.block.number(),
            role: "build",
            phase_ns: vec![(Phase::OrderCandidates, order_ns)],
        });
        self.import_mined(built.block)
    }

    /// The second lock of a mining pass: imports a block this node just
    /// sealed. Shared by [`NodeHandle::mine`] and the pipelined miner so
    /// every self-import outcome — including the failure telemetry — is
    /// handled identically.
    pub(crate) fn import_mined(&self, block: Block) -> Option<Block> {
        let mut inner = self.lock();
        match inner.chain.import(block.clone()) {
            Ok(ImportOutcome::ExtendedCanonical) | Ok(ImportOutcome::Reorged { .. }) => {
                Self::after_import(&mut inner, &block);
                Some(block)
            }
            // A gossip block imported while we were building can beat us
            // to the head: our block is then a side chain and its
            // transactions are NOT committed — they must stay pooled for
            // the next attempt (before the pool feed, building happened
            // under the node lock and this race could not exist).
            Ok(ImportOutcome::SideChain) | Ok(ImportOutcome::AlreadyKnown) => Some(block),
            // The sealed block is canonical in memory; only persistence
            // failed. The block stands — surface the fault separately.
            Err(ImportError::Store(_)) => {
                Self::after_import(&mut inner, &block);
                drop(inner);
                self.telemetry.counter("node.store_failed").inc();
                Some(block)
            }
            // A block this node sealed failing its own import is a real
            // fault (a reorg mid-build can orphan the parent; anything
            // else is a bug) — count it by kind instead of swallowing it.
            Err(error) => {
                drop(inner);
                self.telemetry.counter("node.self_import_failed").inc();
                let kind = match error {
                    ImportError::UnknownParent => "node.self_import_failed.unknown_parent",
                    ImportError::Invalid(_) => "node.self_import_failed.invalid",
                    ImportError::Store(_) => "node.self_import_failed.store",
                };
                self.telemetry.counter(kind).inc();
                None
            }
        }
    }

    /// Looks up a block by hash (canonical or side-chain), for sync
    /// replies.
    pub fn block_by_hash(&self, hash: &H256) -> Option<Block> {
        self.lock().chain.get(hash).map(|stored| stored.block.clone())
    }

    /// Runs `f` with the locked inner state (post-run inspection).
    pub fn with_inner<T>(&self, f: impl FnOnce(&NodeInner) -> T) -> T {
        f(&self.lock())
    }

    /// Runs `f` with mutable access to the inner state — for wiring beyond
    /// the standard configuration, e.g. enabling RAA for additional
    /// contracts (one HMS provider can serve many markets).
    pub fn with_inner_mut<T>(&self, f: impl FnOnce(&mut NodeInner) -> T) -> T {
        f(&mut self.lock())
    }

    /// Where a submitted transaction stands from this node's view — what a
    /// client polls to decide whether to retry (the abort-rate workload).
    pub fn tx_commit_status(&self, tx_hash: &H256, success_topic: H256) -> TxCommitStatus {
        let inner = self.lock();
        match inner.chain.find_receipt(tx_hash) {
            Some((stored, receipt)) => {
                if receipt.has_event(success_topic) {
                    TxCommitStatus::Succeeded { block: stored.block.number() }
                } else {
                    TxCommitStatus::NoEffect { block: stored.block.number() }
                }
            }
            None => TxCommitStatus::Pending,
        }
    }
}

/// Commit status of a transaction as observed by a client.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxCommitStatus {
    /// Not yet in a canonical block (pooled, in flight, or dropped).
    Pending,
    /// Committed and the contract emitted the success event.
    Succeeded {
        /// Block number it committed in.
        block: u64,
    },
    /// Committed but made no state change — the paper's failed
    /// transaction (§III-A): it occupies block space to no effect.
    NoEffect {
        /// Block number it committed in.
        block: u64,
    },
}

impl std::fmt::Debug for NodeHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.lock();
        f.debug_struct("NodeHandle")
            .field("kind", &inner.config.kind)
            .field("head", &inner.chain.head_number())
            .field("pool", &inner.pool.len())
            .finish()
    }
}

/// The actor wrapping a node for the discrete-event simulation.
pub struct NodeActor {
    /// The node itself (shared with attached clients).
    pub handle: NodeHandle,
    /// Gossip peers (actor ids of other nodes).
    pub peers: Vec<ActorId>,
}

impl Actor<Msg> for NodeActor {
    fn on_message(&mut self, msg: Msg, ctx: &mut Context<'_, Msg>) {
        match msg {
            Msg::SubmitTx(tx) | Msg::NewTransaction(tx) => {
                if self.handle.receive_tx(tx.clone(), ctx.now()) {
                    for &peer in &self.peers {
                        ctx.send_to(peer, Msg::NewTransaction(tx.clone()));
                    }
                }
            }
            Msg::NewBlock(block) => {
                match self.handle.receive_block(block.clone()) {
                    BlockReceipt::Imported => {
                        for &peer in &self.peers {
                            ctx.send_to(peer, Msg::NewBlock(block.clone()));
                        }
                    }
                    BlockReceipt::Orphaned => {
                        // Ancestor fetch: ask the network for the missing
                        // parent; each reply walks one block further back
                        // until the branches reconnect (partition heal).
                        let request =
                            Msg::GetBlock { hash: block.header.parent_hash, requester: ctx.self_id() };
                        for &peer in &self.peers {
                            ctx.send_to(peer, request.clone());
                        }
                    }
                    BlockReceipt::Known | BlockReceipt::Rejected => {}
                }
            }
            Msg::GetBlock { hash, requester } => {
                if let Some(block) = self.handle.block_by_hash(&hash) {
                    ctx.send_to(requester, Msg::NewBlock(block));
                }
            }
            Msg::MineTick => {
                if let Some(block) = self.handle.mine(ctx.now()) {
                    for &peer in &self.peers {
                        ctx.send_to(peer, Msg::NewBlock(block.clone()));
                    }
                }
                let schedule = self
                    .handle
                    .with_inner(|inner| inner.config.miner.as_ref().map(|setup| setup.schedule.clone()));
                if let Some(schedule) = schedule {
                    let delay = schedule.next_delay(ctx.rng());
                    ctx.wake_self(delay, Msg::MineTick);
                }
            }
            Msg::Announce { .. } | Msg::SyncTick => {
                // Anti-entropy belongs to the topology-driven
                // [`crate::netnode::NetNode`]; this explicit-peer actor
                // relies on reliable-enough flood gossip.
            }
            Msg::WorkloadTick(_) => {
                // Workload ticks belong to driver actors.
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::contract::{default_contract_address, sereth_code, sereth_genesis_slots, ContractForm};
    use sereth_chain::genesis::GenesisBuilder;
    use sereth_core::mark::genesis_mark;
    use sereth_crypto::sig::SecretKey;
    use sereth_types::u256::U256;

    fn test_genesis(owner: &SecretKey) -> Genesis {
        let contract = default_contract_address();
        GenesisBuilder::new()
            .fund(owner.address(), U256::from(1_000_000_000u64))
            .contract_with_storage(
                contract,
                sereth_code(ContractForm::Native),
                sereth_genesis_slots(&owner.address(), H256::from_low_u64(50)),
            )
            .build()
    }

    fn node(kind: ClientKind, owner: &SecretKey, miner: bool) -> NodeHandle {
        node_at(kind, owner, miner, IsolationLevel::ReadUncommitted)
    }

    fn node_at(kind: ClientKind, owner: &SecretKey, miner: bool, level: IsolationLevel) -> NodeHandle {
        let mut builder = NodeConfig::builder().kind(kind).isolation(level);
        if miner {
            builder = builder.mining(MinerPolicy::Standard).coinbase(Address::from_low_u64(0xc01));
        }
        NodeHandle::new(test_genesis(owner), builder.build())
    }

    fn set_tx(owner: &SecretKey, nonce: u64, prev: H256, value: u64) -> Transaction {
        use sereth_core::fpv::{Flag, Fpv};
        use sereth_types::transaction::TxPayload;
        Transaction::sign(
            TxPayload {
                nonce,
                gas_price: 1,
                gas_limit: 200_000,
                to: Some(default_contract_address()),
                value: U256::ZERO,
                input: Fpv::new(
                    if nonce == 0 { Flag::Head } else { Flag::Success },
                    prev,
                    H256::from_low_u64(value),
                )
                .to_calldata(set_selector()),
            },
            owner,
        )
    }

    #[test]
    fn geth_node_query_view_echoes_zeros() {
        let owner = SecretKey::from_label(1);
        let node = node(ClientKind::Geth, &owner, false);
        let (mark, value) = node.query_view(owner.address()).unwrap();
        assert_eq!(mark, H256::ZERO);
        assert_eq!(value, H256::ZERO);
        // The standard client must fall back to committed state.
        let (cmark, cvalue) = node.committed_amv();
        assert_eq!(cmark, genesis_mark());
        assert_eq!(cvalue, H256::from_low_u64(50));
    }

    #[test]
    fn sereth_node_query_view_serves_committed_when_pool_empty() {
        let owner = SecretKey::from_label(1);
        let node = node(ClientKind::Sereth, &owner, false);
        let (mark, value) = node.query_view(owner.address()).unwrap();
        assert_eq!(mark, genesis_mark());
        assert_eq!(value, H256::from_low_u64(50));
    }

    #[test]
    fn sereth_node_query_view_tracks_pending_sets() {
        use sereth_core::mark::compute_mark;
        let owner = SecretKey::from_label(1);
        let node = node(ClientKind::Sereth, &owner, false);
        let tx = set_tx(&owner, 0, genesis_mark(), 75);
        assert!(node.receive_tx(tx, 100));
        let (mark, value) = node.query_view(owner.address()).unwrap();
        assert_eq!(mark, compute_mark(&genesis_mark(), &H256::from_low_u64(75)));
        assert_eq!(value, H256::from_low_u64(75));
    }

    #[test]
    fn query_view_acquires_the_node_lock_exactly_once() {
        // Regression for the historical double-lock: `query_view` used to
        // lock once to read `config.contract` and then again inside
        // `query_view_for`. Both entry points must now cost exactly one
        // handle-lock round-trip per query, on both client kinds. (On a
        // Sereth node the RAA provider's data source takes its own locks
        // via a separate path; the handle's discipline is what is pinned
        // here.)
        let owner = SecretKey::from_label(1);
        for kind in [ClientKind::Geth, ClientKind::Sereth] {
            let node = node(kind, &owner, false);
            let before = node.lock_acquisitions();
            node.query_view(owner.address()).unwrap();
            assert_eq!(node.lock_acquisitions() - before, 1, "query_view on {kind:?}");

            let before = node.lock_acquisitions();
            node.query_view_for(default_contract_address(), owner.address()).unwrap();
            assert_eq!(node.lock_acquisitions() - before, 1, "query_view_for on {kind:?}");
        }
    }

    #[test]
    fn committed_reads_cost_one_lock_each() {
        let owner = SecretKey::from_label(1);
        let node = node(ClientKind::Geth, &owner, false);
        let before = node.lock_acquisitions();
        node.committed_amv();
        node.account_nonce(&owner.address());
        node.head_state_view();
        assert_eq!(node.lock_acquisitions() - before, 3, "one acquisition per read API call");
    }

    #[test]
    fn state_readers_cost_one_lock_and_pin_their_epoch() {
        // The unified `StateReader` surface must keep the PR 8 lock
        // discipline: one handle-lock round-trip per read transaction,
        // and the returned view pins its epoch so durable-backend GC can
        // never reclaim the snapshot under the reader.
        let owner = SecretKey::from_label(1);
        let node = node(ClientKind::Geth, &owner, true);
        node.receive_tx(set_tx(&owner, 0, genesis_mark(), 75), 100);
        node.mine(15_000).expect("miner seals");
        assert_eq!(node.head_number(), 1);

        let before = node.lock_acquisitions();
        let reader = node.state_reader();
        assert_eq!(node.lock_acquisitions() - before, 1, "state_reader is one lock");
        assert_eq!(reader.height(), 1);
        assert_eq!(reader.view().pinned_epoch(), Some(1), "head reader pins the head epoch");

        let before = node.lock_acquisitions();
        let at_genesis = node.state_reader_at(0).expect("genesis is canonical");
        assert_eq!(node.lock_acquisitions() - before, 1, "state_reader_at is one lock");
        assert_eq!(at_genesis.height(), 0);
        assert_eq!(at_genesis.view().pinned_epoch(), Some(0), "historical reader pins its epoch");
        assert_eq!(at_genesis.view().nonce_of(&owner.address()), 0, "reader is frozen at its epoch");
    }

    #[test]
    fn held_views_stay_frozen_while_the_node_seals() {
        let owner = SecretKey::from_label(1);
        let node = node(ClientKind::Geth, &owner, true);
        let (height, view) = node.head_state_view();
        assert_eq!(height, 0);
        let root_at_genesis = view.state_root();

        node.receive_tx(set_tx(&owner, 0, genesis_mark(), 75), 100);
        node.mine(15_000).expect("miner seals");
        assert_eq!(node.head_number(), 1);

        // The held view still shows genesis; a fresh view shows block 1.
        assert_eq!(view.state_root(), root_at_genesis);
        assert_eq!(view.nonce_of(&owner.address()), 0);
        let (new_height, new_view) = node.head_state_view();
        assert_eq!(new_height, 1);
        assert_eq!(new_view.nonce_of(&owner.address()), 1);
        assert_ne!(new_view.state_root(), root_at_genesis);
    }

    #[test]
    fn duplicate_tx_not_accepted_twice() {
        let owner = SecretKey::from_label(1);
        let node = node(ClientKind::Geth, &owner, false);
        let tx = set_tx(&owner, 0, genesis_mark(), 75);
        assert!(node.receive_tx(tx.clone(), 100));
        assert!(!node.receive_tx(tx, 200), "gossip dedup");
    }

    #[test]
    fn mining_commits_pool_transactions() {
        let owner = SecretKey::from_label(1);
        let node = node(ClientKind::Geth, &owner, true);
        let tx = set_tx(&owner, 0, genesis_mark(), 75);
        node.receive_tx(tx, 100);
        assert_eq!(node.pool_len(), 1);
        let block = node.mine(15_000).expect("miner node seals");
        assert_eq!(block.transactions.len(), 1);
        assert_eq!(node.head_number(), 1);
        assert_eq!(node.pool_len(), 0, "committed txs leave the pool");
        // The committed view moved.
        let (_, value) = node.committed_amv();
        assert_eq!(value, H256::from_low_u64(75));
    }

    #[test]
    fn non_miner_mine_is_none() {
        let owner = SecretKey::from_label(1);
        let node = node(ClientKind::Geth, &owner, false);
        assert!(node.mine(1_000).is_none());
    }

    #[test]
    fn self_import_failure_is_counted_not_swallowed() {
        // Regression: `mine()`'s import tail used to map `Err(_)` to
        // `None` silently. Force the failure by handing `import_mined` a
        // block sealed on a *different genesis* (its parent hash is
        // unknown here) and pin the failure telemetry.
        let owner = SecretKey::from_label(1);
        let node = node(ClientKind::Geth, &owner, true);
        let foreign_owner = SecretKey::from_label(2);
        let foreign = NodeHandle::new(
            GenesisBuilder::new().fund(foreign_owner.address(), U256::from(1_000_000_000u64)).build(),
            NodeConfig::miner(default_contract_address(), MinerPolicy::Standard)
                .coinbase(Address::from_low_u64(0xc01))
                .build(),
        );
        let alien = foreign.mine(15_000).expect("foreign miner seals");
        assert!(node.import_mined(alien).is_none());
        let snapshot = node.telemetry_snapshot();
        assert_eq!(snapshot.counters.get("node.self_import_failed").copied(), Some(1));
        assert_eq!(snapshot.counters.get("node.self_import_failed.unknown_parent").copied(), Some(1));
        assert_eq!(snapshot.counters.get("node.self_import_failed.invalid").copied(), None);
        // A successful mine is unaffected.
        assert!(node.mine(15_000).is_some());
        assert_eq!(node.telemetry_snapshot().counters.get("node.self_import_failed").copied(), Some(1));
    }

    #[test]
    fn blocks_propagate_between_nodes() {
        let owner = SecretKey::from_label(1);
        let miner = node(ClientKind::Geth, &owner, true);
        let follower = node(ClientKind::Geth, &owner, false);
        let tx = set_tx(&owner, 0, genesis_mark(), 75);
        miner.receive_tx(tx.clone(), 100);
        follower.receive_tx(tx, 120);
        let block = miner.mine(15_000).unwrap();
        assert_eq!(follower.receive_block(block.clone()), BlockReceipt::Imported);
        assert_eq!(follower.receive_block(block), BlockReceipt::Known);
        assert_eq!(follower.head_number(), 1);
        assert_eq!(follower.pool_len(), 0, "follower pool cleaned after import");
    }

    #[test]
    fn orphan_blocks_import_after_parent_arrives() {
        let owner = SecretKey::from_label(1);
        let miner = node(ClientKind::Geth, &owner, true);
        let follower = node(ClientKind::Geth, &owner, false);
        let b1 = miner.mine(15_000).unwrap();
        let b2 = miner.mine(30_000).unwrap();
        assert_eq!(follower.receive_block(b2), BlockReceipt::Orphaned);
        assert_eq!(follower.head_number(), 0);
        assert_eq!(follower.receive_block(b1), BlockReceipt::Imported);
        assert_eq!(follower.head_number(), 2, "orphan retried after parent");
    }

    #[test]
    fn telemetry_reads_take_zero_node_locks() {
        // Satellite of the telemetry layer: metrics consumers must never
        // contend with the miner. Every stats/snapshot read below goes
        // through registry atomics, so the node-lock counter must not
        // move at all.
        let owner = SecretKey::from_label(1);
        let node = node(ClientKind::Sereth, &owner, true);
        assert!(node.receive_tx(set_tx(&owner, 0, genesis_mark(), 75), 100));
        node.mine(15_000).expect("miner seals");

        let before = node.lock_acquisitions();
        let exec = node.exec_stats();
        let validation = node.validation_stats();
        let snapshot = node.telemetry_snapshot();
        assert_eq!(node.lock_acquisitions(), before, "metrics reads must not take the node lock");

        // The snapshot is the unified view: the same totals the typed
        // accessors report, plus the phase histograms.
        assert_eq!(snapshot.counters["exec.sequential_txs"], exec.sequential_txs);
        assert_eq!(snapshot.counters["validation.waves"], validation.waves);
        assert!(snapshot.histograms["phase.receive_tx"].count() >= 1);
        assert!(snapshot.histograms["phase.admission"].count() >= 1);
        assert!(snapshot.histograms["phase.order_candidates"].count() >= 1);
        assert!(snapshot.histograms["phase.seal"].count() >= 1);
        assert!(snapshot.histograms["phase.import"].count() >= 1);
        assert!(snapshot.histograms["phase.validate"].count() >= 1);
        assert!(snapshot.histograms["node.lock_hold"].count() >= 1);
        let roles: Vec<&str> = snapshot.blocks.iter().map(|t| t.role).collect();
        assert!(roles.contains(&"build") && roles.contains(&"import"), "traces: {roles:?}");
    }

    #[test]
    fn disabled_telemetry_records_and_costs_nothing() {
        let owner = SecretKey::from_label(1);
        let node = NodeHandle::new(
            test_genesis(&owner),
            NodeConfig::miner(default_contract_address(), MinerPolicy::Standard)
                .coinbase(Address::from_low_u64(0xc01))
                .telemetry_enabled(false)
                .build(),
        );
        assert!(node.receive_tx(set_tx(&owner, 0, genesis_mark(), 75), 100));
        node.mine(15_000).expect("miner seals");
        let snapshot = node.telemetry_snapshot();
        assert!(snapshot.counters.is_empty(), "disabled hubs register nothing: {snapshot:?}");
        assert!(snapshot.histograms.is_empty());
        assert!(snapshot.blocks.is_empty());
        assert_eq!(node.exec_stats(), ExecStats::default(), "stats views read zero when disabled");
    }

    #[test]
    fn builder_presets_cover_the_ladder() {
        let contract = Address::from_low_u64(0xfeed);
        let geth = NodeConfig::geth(contract).build();
        assert_eq!(geth.kind, ClientKind::Geth);
        assert_eq!(geth.contract, contract);
        assert!(geth.miner.is_none());
        assert_eq!(geth.isolation, IsolationLevel::ReadUncommitted, "the default is the paper's mode");

        let sereth = NodeConfig::sereth(contract).isolation(IsolationLevel::Sequential).build();
        assert_eq!(sereth.kind, ClientKind::Sereth);
        assert_eq!(sereth.isolation, IsolationLevel::Sequential);

        let miner = NodeConfig::miner(contract, MinerPolicy::Semantic(HmsConfig::default()))
            .coinbase(Address::from_low_u64(0xc0de))
            .candidate_budget(Some(64))
            .max_txs(Some(10))
            .build();
        assert_eq!(miner.kind, ClientKind::Sereth, "semantic mining implies the modified client");
        let setup = miner.miner.expect("preset installs a miner");
        assert!(matches!(setup.policy, MinerPolicy::Semantic(_)));
        assert_eq!(setup.coinbase, Address::from_low_u64(0xc0de));
        assert_eq!(setup.candidate_budget, Some(64));
        assert_eq!(miner.limits.max_txs, Some(10));

        let standard = NodeConfig::miner(contract, MinerPolicy::Standard).build();
        assert_eq!(standard.kind, ClientKind::Geth);
    }

    #[test]
    fn read_committed_queries_never_observe_a_pending_pool_write() {
        // The ladder's regression guarantee: a Sereth node configured at
        // READ COMMITTED answers queries from committed state only, even
        // with a fresher write sitting in its pool.
        let owner = SecretKey::from_label(1);
        let node = node_at(ClientKind::Sereth, &owner, false, IsolationLevel::ReadCommitted);
        assert!(node.receive_tx(set_tx(&owner, 0, genesis_mark(), 75), 100));
        assert_eq!(node.pool_len(), 1, "the write is pending");
        let (mark, value) = node.query_view(owner.address()).unwrap();
        assert_eq!(mark, genesis_mark(), "no speculative mark leaks through");
        assert_eq!(value, H256::from_low_u64(50), "the committed price, not the pending 75");
        // And the per-level counter attributed the read.
        let counters = node.telemetry_snapshot().counters;
        assert_eq!(counters.get("iso.reads.read_committed").copied(), Some(1));
        assert_eq!(counters.get("iso.reads.read_uncommitted").copied(), None);
    }

    #[test]
    fn sequential_queries_pin_to_the_last_import() {
        use sereth_core::mark::compute_mark;
        let owner = SecretKey::from_label(1);
        let node = node_at(ClientKind::Sereth, &owner, true, IsolationLevel::Sequential);
        assert_eq!(node.pinned_height(), 0);
        assert!(node.receive_tx(set_tx(&owner, 0, genesis_mark(), 75), 100));
        let observation = node.query_observed(owner.address()).unwrap();
        assert_eq!(observation.level, IsolationLevel::Sequential);
        assert_eq!(observation.height, 0, "pinned at genesis until an import moves it");
        assert_eq!(observation.value, H256::from_low_u64(50));

        node.mine(15_000).expect("miner seals");
        assert_eq!(node.pinned_height(), 1, "the import advanced the pin");
        let observation = node.query_observed(owner.address()).unwrap();
        assert_eq!(observation.height, 1);
        assert_eq!(observation.mark, compute_mark(&genesis_mark(), &H256::from_low_u64(75)));
        assert_eq!(observation.value, H256::from_low_u64(75));
        assert_eq!(
            node.telemetry_snapshot().counters.get("iso.reads.sequential").copied(),
            Some(2),
            "both pinned reads counted"
        );
    }

    #[test]
    fn every_isolation_level_keeps_the_single_lock_read_discipline() {
        let owner = SecretKey::from_label(1);
        for level in IsolationLevel::ALL {
            for kind in [ClientKind::Geth, ClientKind::Sereth] {
                let node = node_at(kind, &owner, false, level);
                let before = node.lock_acquisitions();
                node.query_view(owner.address()).unwrap();
                assert_eq!(node.lock_acquisitions() - before, 1, "query_view at {level} on {kind:?}");
                let before = node.lock_acquisitions();
                node.committed_observed();
                assert_eq!(node.lock_acquisitions() - before, 1, "committed_observed at {level}");
            }
        }
    }

    #[test]
    fn semantic_ordering_degrades_to_standard_above_read_uncommitted() {
        let owner = SecretKey::from_label(1);
        let contract = default_contract_address();
        for level in [IsolationLevel::ReadCommitted, IsolationLevel::Sequential] {
            let node = NodeHandle::new(
                test_genesis(&owner),
                NodeConfig::miner(contract, MinerPolicy::Semantic(HmsConfig::default()))
                    .coinbase(Address::from_low_u64(0xc01))
                    .isolation(level)
                    .build(),
            );
            assert!(node.receive_tx(set_tx(&owner, 0, genesis_mark(), 75), 100));
            node.mine(15_000).expect("miner seals");
            let counters = node.telemetry_snapshot().counters;
            assert_eq!(counters.get("iso.policy_degraded").copied(), Some(1), "degraded at {level}");
        }
        // At READ UNCOMMITTED the semantic policy runs undegraded.
        let node = NodeHandle::new(
            test_genesis(&owner),
            NodeConfig::miner(contract, MinerPolicy::Semantic(HmsConfig::default()))
                .coinbase(Address::from_low_u64(0xc01))
                .build(),
        );
        assert!(node.receive_tx(set_tx(&owner, 0, genesis_mark(), 75), 100));
        node.mine(15_000).expect("miner seals");
        assert_eq!(node.telemetry_snapshot().counters.get("iso.policy_degraded").copied(), None);
    }

    #[test]
    fn tampered_blocks_are_rejected() {
        use bytes::Bytes;
        let owner = SecretKey::from_label(1);
        let miner = node(ClientKind::Geth, &owner, true);
        let follower = node(ClientKind::Geth, &owner, false);
        let tx = set_tx(&owner, 0, genesis_mark(), 75);
        miner.receive_tx(tx, 100);
        let mut block = miner.mine(15_000).unwrap();
        // RAA-style tampering of the signed calldata.
        block.transactions[0] = block.transactions[0].with_tampered_input(Bytes::from_static(b"oops"));
        block.header.tx_root = Block::compute_tx_root(&block.transactions);
        assert_eq!(follower.receive_block(block), BlockReceipt::Rejected);
        assert_eq!(follower.head_number(), 0);
    }
}
