//! Cross-block pipelined mining: overlap the next block's speculation
//! with the current block's seal/import.
//!
//! [`NodeHandle::mine`] is strictly serial across blocks — order, execute,
//! seal, import, repeat — so the wave executor idles during every import
//! and the import path idles during every speculation. The
//! [`PipelinedMiner`] overlaps them: while block `N`'s import holds the
//! node lock, a scoped thread orders block `N + 1`'s candidates against
//! `N`'s post-state and prespeculates them into a
//! [`PipelineSink`]; the next `mine` call consumes the sink if its
//! prediction held.
//!
//! **Prediction** = (parent hash, pre-state, block env) of the next block.
//! **Validation** on the next `mine`:
//!
//! * parent hash matches → the prediction held; the pre-states are
//!   value-identical (both commit to the imported block's state root), so
//!   only a mispredicted timestamp/number can invalidate — and only for
//!   outcomes that actually read them (the VM's env-read tracking).
//! * parent hash differs (a gossip block won the race, a reorg moved the
//!   head, or our own import failed) → *replan*: the dirty-key seed
//!   becomes the value diff between predicted and actual pre-state (plus
//!   mismatched env keys), so only candidates that touched changed keys
//!   re-execute — the rest of the speculation survives even a lost race.
//!
//! **Degradation**: two consecutive misses fall the miner back to the
//! serial twin ([`NodeHandle::mine`]'s exact build path) for `backoff`
//! blocks, doubling up to 32 — under gossip pressure that always beats
//! us, pipelining is pure waste, the same adaptive logic the wave
//! executor applies to conflict-heavy windows.
//!
//! The sealed blocks are byte-identical to what the serial loop produces
//! under every race (`pipelined_mining` proves it property-style), and
//! the node lock is still acquired exactly twice per sealed block — the
//! prespeculation thread touches only the pool's own shard locks and an
//! owned state snapshot.

use std::time::Instant;

use parking_lot::Mutex;
use sereth_chain::builder::{build_block_pipelined, build_block_traced};
use sereth_chain::executor::BlockEnv;
use sereth_chain::parallel::{ExecMode, PipelineSink};
use sereth_chain::state::StateDb;
use sereth_crypto::hash::H256;
use sereth_telemetry::{BlockTrace, Phase};
use sereth_types::block::Block;
use sereth_types::transaction::Transaction;
use sereth_types::SimTime;
use sereth_vm::access::AccessKey;

use crate::miner::{order_candidates_limited, MinerPolicy};
use crate::node::{effective_policy, BlockSchedule, NodeHandle};

/// Consecutive prediction misses before degrading to the serial twin.
const DEGRADE_AFTER_MISSES: u32 = 2;
/// Longest degradation stretch (blocks), like the wave executor's probe
/// backoff cap.
const MAX_BACKOFF: u32 = 32;

/// One parked prediction: what the previous `mine` believed the next
/// block would be built on.
struct Prespec {
    /// Hash of the block we sealed — the predicted parent.
    parent_hash: H256,
    /// Its post-state — the predicted pre-state of the next block.
    state: StateDb,
    /// The predicted block env the outcomes executed under.
    env: BlockEnv,
    /// The prespeculated outcomes.
    sink: PipelineSink,
}

/// Miss/degradation bookkeeping, behind the miner's own mutex (never the
/// node lock).
struct PipeState {
    prespec: Option<Prespec>,
    consecutive_misses: u32,
    backoff: u32,
    degraded_remaining: u32,
}

/// A cross-block pipelining wrapper around a mining [`NodeHandle`]. Drive
/// it instead of [`NodeHandle::mine`]; everything else about the node
/// (submission, gossip, queries) is untouched.
pub struct PipelinedMiner {
    node: NodeHandle,
    state: Mutex<PipeState>,
}

impl PipelinedMiner {
    /// Wraps `node` (which should have a miner configured, like any node
    /// driven through `mine`).
    pub fn new(node: NodeHandle) -> Self {
        Self {
            node,
            state: Mutex::new(PipeState {
                prespec: None,
                consecutive_misses: 0,
                backoff: 1,
                degraded_remaining: 0,
            }),
        }
    }

    /// The wrapped handle.
    pub fn node(&self) -> &NodeHandle {
        &self.node
    }

    /// Seals a block at `now` and imports it, consuming the previous
    /// call's prespeculation when its prediction held and parking a new
    /// one while the import runs. Returns what [`NodeHandle::mine`]
    /// returns, and seals the byte-identical block.
    pub fn mine(&self, now: SimTime) -> Option<Block> {
        // Lock #1: the same snapshot `mine()` takes.
        let (setup, parent, state, pool, contract, limits, exec_mode, isolation) = {
            let inner = self.node.lock();
            let setup = inner.config.miner.clone()?;
            (
                setup,
                inner.chain.head_block().header.clone(),
                inner.chain.head_state().clone(),
                inner.pool.clone(),
                inner.config.contract,
                inner.config.limits.clone(),
                inner.config.exec_mode,
                inner.config.isolation,
            )
        };
        let telemetry = self.node.telemetry().clone();
        let budget = setup.candidate_budget.unwrap_or(usize::MAX);
        // Same isolation degradation as the serial twin: the policy is
        // resolved once per mine call and shared with the
        // prespeculation pass, so both order identically.
        let policy = effective_policy(&setup.policy, isolation, &telemetry);
        // Candidates are always ordered fresh against the *actual* head
        // state — ordering is never speculated, so a pool that churned
        // (or a head that moved) during the previous import changes
        // nothing vs. the serial twin.
        let (candidates, order_ns) = telemetry.time_ns(Phase::OrderCandidates, || {
            order_candidates_limited(&pool, &state.view(), &contract, &policy, budget)
        });
        let timestamp = now.max(parent.timestamp_ms + 1);
        let threads = match exec_mode {
            ExecMode::Parallel { threads } => threads,
            ExecMode::Sequential => 1,
        };

        // Prediction validation, against the parked prespec.
        let (mut pipeline, degraded) = {
            let mut pipe = self.state.lock();
            if pipe.degraded_remaining > 0 {
                // A degraded block abandons pipelining outright: any
                // parked prespec is dropped unvalidated and none is made.
                pipe.degraded_remaining -= 1;
                pipe.prespec = None;
                telemetry.counter("pipeline.predictions_abandoned").inc();
                (None, pipe.degraded_remaining > 0)
            } else {
                match pipe.prespec.take() {
                    Some(prespec) if prespec.parent_hash == parent.hash() => {
                        // Held: pre-states are value-identical (same state
                        // root); only env mispredictions can invalidate.
                        telemetry.counter("pipeline.predictions_held").inc();
                        pipe.consecutive_misses = 0;
                        pipe.backoff = 1;
                        let mut sink = prespec.sink;
                        if prespec.env.timestamp_ms != timestamp {
                            sink.invalidate([AccessKey::Timestamp]);
                        }
                        if prespec.env.number != parent.number + 1 {
                            sink.invalidate([AccessKey::Number]);
                        }
                        (Some(sink), false)
                    }
                    Some(prespec) => {
                        // Missed: a gossip block or reorg moved the head
                        // (or our own import failed). Replan — keep every
                        // outcome whose reads miss the pre-state diff.
                        telemetry.counter("pipeline.predictions_replanned").inc();
                        pipe.consecutive_misses += 1;
                        let degrade = pipe.consecutive_misses >= DEGRADE_AFTER_MISSES;
                        if degrade {
                            pipe.degraded_remaining = pipe.backoff;
                            pipe.backoff = (pipe.backoff * 2).min(MAX_BACKOFF);
                            pipe.consecutive_misses = 0;
                        }
                        let mut sink = prespec.sink;
                        sink.invalidate(state.view().diff_access_keys(&prespec.state.view()));
                        if prespec.env.timestamp_ms != timestamp {
                            sink.invalidate([AccessKey::Timestamp]);
                        }
                        if prespec.env.number != parent.number + 1 {
                            sink.invalidate([AccessKey::Number]);
                        }
                        (Some(sink), degrade)
                    }
                    None => (None, false),
                }
            }
        };

        let built = match pipeline.as_mut() {
            Some(sink) => build_block_pipelined(
                &parent,
                &state,
                &candidates,
                setup.coinbase,
                timestamp,
                &limits,
                threads,
                sink,
                &telemetry,
            ),
            // No prespec parked (first block, or degraded): the serial
            // twin's exact build path.
            None => build_block_traced(
                &parent,
                &state,
                &candidates,
                setup.coinbase,
                timestamp,
                &limits,
                &exec_mode,
                &telemetry,
            ),
        };
        self.node.exec_cells.absorb(&built.stats);
        if let Some(sink) = &pipeline {
            telemetry.counter("pipeline.prefed_reused").add(sink.reused());
            telemetry.counter("pipeline.prefed_invalidated").add(sink.invalidated());
        }
        telemetry.trace_block(BlockTrace {
            number: built.block.number(),
            role: "build",
            phase_ns: vec![(Phase::OrderCandidates, order_ns)],
        });

        // The overlap: lock #2 (import) on this thread, the next block's
        // prespeculation on a scoped sibling. The sibling touches only
        // the pool's internal locks and owned state — never the node
        // lock, so the two-acquisition discipline is preserved.
        let block = built.block.clone();
        let (imported, prespec) = std::thread::scope(|scope| {
            let speculate = (!degraded).then(|| {
                scope.spawn(|| {
                    let started = Instant::now();
                    let prespec = prespeculate_next(
                        &pool,
                        built.post_state,
                        &built.block,
                        &setup,
                        &policy,
                        &contract,
                        &limits,
                        budget,
                        threads,
                        now,
                    );
                    (prespec, started.elapsed().as_nanos() as u64)
                })
            });
            let started = Instant::now();
            let imported = self.node.import_mined(block);
            let import_ns = started.elapsed().as_nanos() as u64;
            let prespec = speculate.map(|handle| handle.join().expect("prespeculation thread"));
            if let Some((_, spec_ns)) = &prespec {
                // How much work actually ran concurrently.
                telemetry.histogram("pipeline.overlap").record_ns(import_ns.min(*spec_ns));
            }
            (imported, prespec)
        });
        if let Some((prespec, _)) = prespec {
            self.state.lock().prespec = Some(prespec);
        }
        imported
    }
}

/// Builds the prediction for the block after `sealed`: candidates ordered
/// against its post-state, speculated under its predicted env.
#[allow(clippy::too_many_arguments)] // one-caller helper splitting the scoped thread body out of mine()
fn prespeculate_next(
    pool: &sereth_chain::txpool::TxPool,
    post_state: StateDb,
    sealed: &Block,
    setup: &crate::node::MinerSetup,
    policy: &MinerPolicy,
    contract: &sereth_crypto::address::Address,
    limits: &sereth_chain::builder::BlockLimits,
    budget: usize,
    threads: usize,
    now: SimTime,
) -> Prespec {
    let view = post_state.view();
    // The sealed block's transactions are still pooled (the import that
    // prunes them is racing us); ordering against the post-state nonces
    // skips them exactly — the stale-prefix exactness of
    // `ready_by_price_limited`.
    let candidates: Vec<Transaction> = order_candidates_limited(pool, &view, contract, policy, budget);
    let predicted_timestamp = match setup.schedule {
        // The sim drives fixed-schedule miners on exact ticks.
        BlockSchedule::Fixed(interval) => (now + interval).max(sealed.header.timestamp_ms + 1),
        // Memoryless schedules are unpredictable; the floor is the best
        // guess, and only TIMESTAMP-reading outcomes pay for a miss.
        BlockSchedule::Exponential { .. } => sealed.header.timestamp_ms + 1,
    };
    let env = BlockEnv {
        number: sealed.header.number + 1,
        timestamp_ms: predicted_timestamp,
        gas_limit: limits.gas_limit,
        miner: setup.coinbase,
    };
    let sink = PipelineSink::prespeculate(&view, &env, &candidates, threads);
    Prespec { parent_hash: sealed.hash(), state: post_state, env, sink }
}
