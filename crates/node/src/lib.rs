//! Full network nodes for the sereth simulation: the Sereth contract
//! (paper Listing 1), Geth/Sereth client kinds, standard and semantic
//! miners, and the gossip actor gluing them to the discrete-event network.
//!
//! * [`contract`] — Listing 1 in assembly **and** native Rust, proven
//!   equivalent by tests;
//! * [`node`] — [`node::NodeHandle`] (chain + pool + RAA registry) and the
//!   [`node::NodeActor`] gossip behaviour;
//! * [`miner`] — fee-priority ordering vs. HMS *semantic mining* (§V-C);
//! * [`client`] — the owner/buyer transaction builders whose view of state
//!   (committed vs. HMS tail) is exactly what the three experimental
//!   scenarios vary;
//! * [`messages`] — the simulation's message vocabulary;
//! * [`netnode`] — [`netnode::NetNode`], the topology-driven gossip actor
//!   with anti-entropy (head announcements, parent pulls, pending
//!   re-offers), the substrate of the multi-node cluster scenarios;
//! * [`pipeline`] — cross-block pipelined mining: block `N + 1`'s
//!   candidates speculate against `N`'s predicted post-state while `N`'s
//!   import holds the node lock.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod contract;
pub mod messages;
pub mod miner;
pub mod netnode;
pub mod node;
pub mod pipeline;

pub use client::{classify, transfer, Buyer, Owner, SerethCall, SERETH_TX_GAS};
pub use contract::{
    buy_ok_topic, buy_selector, default_contract_address, get_selector, mark_selector, sereth_asm_source,
    sereth_bytecode, sereth_code, sereth_genesis_slots, set_ok_topic, set_selector, ContractForm,
    SerethNative, SLOT_ADDRESS, SLOT_MARK, SLOT_N_BUY, SLOT_N_SET, SLOT_VALUE,
};
pub use messages::Msg;
pub use miner::{committed_amv, enforce_nonce_order, order_candidates, pending_view, MinerPolicy};
pub use netnode::NetNode;
pub use node::{
    BlockReceipt, BlockSchedule, ClientKind, MinerSetup, NodeActor, NodeConfig, NodeHandle, NodeInner,
    StateReader, TxCommitStatus,
};
pub use pipeline::PipelinedMiner;
