//! Shared fixtures for the sereth benchmarks and experiment binaries.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use sereth_core::fpv::{Flag, Fpv};
use sereth_core::mark::{compute_mark, genesis_mark};
use sereth_core::process::PendingTx;
use sereth_crypto::address::Address;
use sereth_crypto::hash::H256;
use sereth_node::contract::{default_contract_address, set_selector};

/// Builds a pool snapshot containing one honest chain of `chain_len` sets
/// plus `noise` non-HMS transactions — the input shape for the HMS
/// overhead benchmarks (paper §III-C: "only a small percentage of the
/// TxPool requires processing").
pub fn pool_with_chain(chain_len: usize, noise: usize) -> Vec<PendingTx> {
    let mut pool = Vec::with_capacity(chain_len + noise);
    let mut prev = genesis_mark();
    for i in 0..chain_len {
        let flag = if i == 0 { Flag::Head } else { Flag::Success };
        let value = H256::from_low_u64(1_000 + i as u64);
        let fpv = Fpv::new(flag, prev, value);
        prev = compute_mark(&prev, &value);
        pool.push(PendingTx {
            hash: H256::keccak(&(i as u64).to_be_bytes()),
            sender: Address::from_low_u64(i as u64),
            to: Some(default_contract_address()),
            input: fpv.to_calldata(set_selector()),
            arrival_seq: i as u64,
        });
    }
    for j in 0..noise {
        pool.push(PendingTx {
            hash: H256::keccak(&[0xee, j as u8, (j >> 8) as u8]),
            sender: Address::from_low_u64(10_000 + j as u64),
            to: Some(Address::from_low_u64(0x0dd)),
            input: bytes::Bytes::from_static(&[0xde, 0xad, 0xbe, 0xef, 0x01]),
            arrival_seq: (chain_len + j) as u64,
        });
    }
    pool
}

/// Builds a live [`TxPool`](sereth_chain::txpool::TxPool) holding
/// `markets` independent Sereth markets, each with a signed chain of
/// `sets_per_market` `set` transactions, plus `noise` foreign transfers —
/// the input shape for the RAA service scaling benchmarks. Returns the
/// pool and the market contract addresses.
///
/// Market `m` lives at address `0x5e7e_0000 + m`, owned by the key with
/// label `500 + m`; the committed AMV every market starts from is
/// `(genesis_mark(), 50)`.
pub fn market_txpool(
    markets: usize,
    sets_per_market: usize,
    noise: usize,
) -> (sereth_chain::txpool::TxPool, Vec<Address>) {
    use sereth_chain::txpool::{PoolConfig, TxPool};
    use sereth_crypto::sig::SecretKey;
    use sereth_types::transaction::TxPayload;
    use sereth_types::u256::U256;

    let total = markets * sets_per_market + noise;
    let mut pool = TxPool::with_config(PoolConfig {
        capacity: total + 1,
        // Keep the whole fill visible to event subscribers so benchmark
        // setup replays incrementally instead of tripping a resync.
        event_capacity: 2 * total + 16,
        ..PoolConfig::default()
    });
    pool.subscribe();
    let mut now = 0;
    let contracts: Vec<Address> =
        (0..markets).map(|m| Address::from_low_u64(0x5e7e_0000 + m as u64)).collect();
    for (m, contract) in contracts.iter().enumerate() {
        let owner = SecretKey::from_label(500 + m as u64);
        let mut prev = genesis_mark();
        for i in 0..sets_per_market {
            let flag = if i == 0 { Flag::Head } else { Flag::Success };
            let value = H256::from_low_u64(1_000 + i as u64);
            let fpv = Fpv::new(flag, prev, value);
            prev = compute_mark(&prev, &value);
            let tx = sereth_types::transaction::Transaction::sign(
                TxPayload {
                    nonce: i as u64,
                    gas_price: 1,
                    gas_limit: 100_000,
                    to: Some(*contract),
                    value: U256::ZERO,
                    input: fpv.to_calldata(set_selector()),
                },
                &owner,
            );
            pool.insert(tx, now).expect("pool sized to fit");
            now += 1;
        }
    }
    for j in 0..noise {
        let sender = SecretKey::from_label(100_000 + j as u64);
        let tx = sereth_types::transaction::Transaction::sign(
            TxPayload {
                nonce: 0,
                gas_price: 2,
                gas_limit: 21_000,
                to: Some(Address::from_low_u64(0xee)),
                value: U256::ZERO,
                input: bytes::Bytes::new(),
            },
            &sender,
        );
        pool.insert(tx, now).expect("pool sized to fit");
        now += 1;
    }
    (pool, contracts)
}

/// The recompute baseline's data source for RAA benchmarks: a live pool
/// behind a lock, walked borrowed per query (so the baseline already
/// benefits from the `for_each_pending` fast path; the incremental
/// service must beat *that*).
pub struct PoolSource {
    /// The shared pool.
    pub pool: std::sync::Arc<parking_lot::RwLock<sereth_chain::txpool::TxPool>>,
    /// The committed `(mark, value)` reported for every contract.
    pub committed: (H256, H256),
}

impl sereth_core::provider::HmsDataSource for PoolSource {
    fn pending(&self) -> Vec<PendingTx> {
        sereth_node::miner::pending_view(&self.pool.read())
    }

    fn for_each_pending(&self, visit: &mut dyn FnMut(&PendingTx)) {
        for entry in self.pool.read().entries_by_arrival() {
            visit(&sereth_node::miner::pending_tx(entry));
        }
    }

    fn committed(&self, _contract: &Address) -> (H256, H256) {
        self.committed
    }
}

/// Parses `VAR` from the environment as a number, with a default — lets
/// the experiment binaries scale without recompiling.
pub fn env_or<T: std::str::FromStr>(var: &str, default: T) -> T {
    std::env::var(var).ok().and_then(|value| value.parse().ok()).unwrap_or(default)
}

/// Parses a comma-separated list of u64 from the environment.
pub fn env_list_or(var: &str, default: &[u64]) -> Vec<u64> {
    std::env::var(var)
        .ok()
        .map(|value| value.split(',').filter_map(|part| part.trim().parse().ok()).collect())
        .filter(|list: &Vec<u64>| !list.is_empty())
        .unwrap_or_else(|| default.to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;
    use sereth_core::process::process;

    #[test]
    fn pool_fixture_yields_expected_chain() {
        let pool = pool_with_chain(10, 20);
        assert_eq!(pool.len(), 30);
        let nodes = process(&pool, &default_contract_address(), set_selector());
        assert_eq!(nodes.len(), 10, "noise filtered out");
    }

    #[test]
    fn env_helpers_fall_back() {
        assert_eq!(env_or::<u64>("SERETH_BENCH_NO_SUCH_VAR", 7u64), 7);
        assert_eq!(env_list_or("SERETH_BENCH_NO_SUCH_VAR", &[1, 2]), vec![1, 2]);
    }
}
