//! Shared fixtures for the sereth benchmarks and experiment binaries.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod trend;

use sereth_core::fpv::{Flag, Fpv};
use sereth_core::mark::{compute_mark, genesis_mark};
use sereth_core::process::PendingTx;
use sereth_crypto::address::Address;
use sereth_crypto::hash::H256;
use sereth_node::contract::{default_contract_address, set_selector};

/// Builds a pool snapshot containing one honest chain of `chain_len` sets
/// plus `noise` non-HMS transactions — the input shape for the HMS
/// overhead benchmarks (paper §III-C: "only a small percentage of the
/// TxPool requires processing").
pub fn pool_with_chain(chain_len: usize, noise: usize) -> Vec<PendingTx> {
    let mut pool = Vec::with_capacity(chain_len + noise);
    let mut prev = genesis_mark();
    for i in 0..chain_len {
        let flag = if i == 0 { Flag::Head } else { Flag::Success };
        let value = H256::from_low_u64(1_000 + i as u64);
        let fpv = Fpv::new(flag, prev, value);
        prev = compute_mark(&prev, &value);
        pool.push(PendingTx {
            hash: H256::keccak(&(i as u64).to_be_bytes()),
            sender: Address::from_low_u64(i as u64),
            to: Some(default_contract_address()),
            input: fpv.to_calldata(set_selector()),
            arrival_seq: i as u64,
        });
    }
    for j in 0..noise {
        pool.push(PendingTx {
            hash: H256::keccak(&[0xee, j as u8, (j >> 8) as u8]),
            sender: Address::from_low_u64(10_000 + j as u64),
            to: Some(Address::from_low_u64(0x0dd)),
            input: bytes::Bytes::from_static(&[0xde, 0xad, 0xbe, 0xef, 0x01]),
            arrival_seq: (chain_len + j) as u64,
        });
    }
    pool
}

/// Builds a live [`TxPool`](sereth_chain::txpool::TxPool) holding
/// `markets` independent Sereth markets, each with a signed chain of
/// `sets_per_market` `set` transactions, plus `noise` foreign transfers —
/// the input shape for the RAA service scaling benchmarks. Returns the
/// pool and the market contract addresses.
///
/// Market `m` lives at address `0x5e7e_0000 + m`, owned by the key with
/// label `500 + m`; the committed AMV every market starts from is
/// `(genesis_mark(), 50)`.
pub fn market_txpool(
    markets: usize,
    sets_per_market: usize,
    noise: usize,
) -> (sereth_chain::txpool::TxPool, Vec<Address>) {
    use sereth_chain::txpool::{PoolConfig, TxPool};
    use sereth_crypto::sig::SecretKey;
    use sereth_types::transaction::TxPayload;
    use sereth_types::u256::U256;

    let total = markets * sets_per_market + noise;
    let pool = TxPool::with_config(PoolConfig {
        capacity: total + 1,
        // Keep the whole fill visible to event subscribers so benchmark
        // setup replays incrementally instead of tripping a resync.
        event_capacity: 2 * total + 16,
        ..PoolConfig::default()
    });
    pool.subscribe();
    let mut now = 0;
    let contracts: Vec<Address> =
        (0..markets).map(|m| Address::from_low_u64(0x5e7e_0000 + m as u64)).collect();
    for (m, contract) in contracts.iter().enumerate() {
        let owner = SecretKey::from_label(500 + m as u64);
        let mut prev = genesis_mark();
        for i in 0..sets_per_market {
            let flag = if i == 0 { Flag::Head } else { Flag::Success };
            let value = H256::from_low_u64(1_000 + i as u64);
            let fpv = Fpv::new(flag, prev, value);
            prev = compute_mark(&prev, &value);
            let tx = sereth_types::transaction::Transaction::sign(
                TxPayload {
                    nonce: i as u64,
                    gas_price: 1,
                    gas_limit: 100_000,
                    to: Some(*contract),
                    value: U256::ZERO,
                    input: fpv.to_calldata(set_selector()),
                },
                &owner,
            );
            pool.insert(tx, now).expect("pool sized to fit");
            now += 1;
        }
    }
    for j in 0..noise {
        let sender = SecretKey::from_label(100_000 + j as u64);
        let tx = sereth_types::transaction::Transaction::sign(
            TxPayload {
                nonce: 0,
                gas_price: 2,
                gas_limit: 21_000,
                to: Some(Address::from_low_u64(0xee)),
                value: U256::ZERO,
                input: bytes::Bytes::new(),
            },
            &sender,
        );
        pool.insert(tx, now).expect("pool sized to fit");
        now += 1;
    }
    (pool, contracts)
}

/// The recompute baseline's data source for RAA benchmarks: a live
/// (internally sharded) pool, walked borrowed per query (so the baseline
/// already benefits from the `for_each_pending` fast path; the
/// incremental service must beat *that*).
pub struct PoolSource {
    /// The shared pool.
    pub pool: std::sync::Arc<sereth_chain::txpool::TxPool>,
    /// The committed `(mark, value)` reported for every contract.
    pub committed: (H256, H256),
}

impl sereth_core::provider::HmsDataSource for PoolSource {
    fn pending(&self) -> Vec<PendingTx> {
        sereth_node::miner::pending_view(&self.pool)
    }

    fn for_each_pending(&self, visit: &mut dyn FnMut(&PendingTx)) {
        self.pool.with_entries_by_arrival(|entries| {
            for entry in entries {
                visit(&sereth_node::miner::pending_tx(entry));
            }
        });
    }

    fn committed(&self, _contract: &Address) -> (H256, H256) {
        self.committed
    }
}

/// Shared fixture for the EXEC-PAR / VAL-PAR scale benches: a funded
/// genesis with per-sender counter contracts, and candidate lists whose
/// conflict ratio is a knob. Both benches must measure the *same*
/// workload shape (one builds, one replays), so the shape exists once.
pub mod exec_fixture {
    use bytes::Bytes;
    use sereth_chain::genesis::GenesisBuilder;
    use sereth_chain::state::StateDb;
    use sereth_crypto::address::Address;
    use sereth_crypto::sig::SecretKey;
    use sereth_types::block::BlockHeader;
    use sereth_types::transaction::{Transaction, TxPayload};
    use sereth_types::u256::U256;
    use sereth_vm::asm::assemble;
    use sereth_vm::exec::ContractCode;

    /// Reads slot 0, does a little keccak work, increments the slot —
    /// enough VM time per transaction that scheduling overhead does not
    /// dominate.
    pub fn counter_code() -> Bytes {
        Bytes::from(
            assemble(
                "PUSH1 0x00\nSLOAD\nPUSH1 0x20\nPUSH1 0x00\nSHA3\nPOP\nPUSH1 0x20\nPUSH1 0x00\nSHA3\nPOP\nPUSH1 0x01\nADD\nPUSH1 0x00\nSSTORE\nSTOP",
            )
            .unwrap(),
        )
    }

    /// Deterministic contract address `base + i` (distinct `base` per
    /// bench keeps the two benches' states disjoint).
    pub fn contract_address(base: u64, i: u64) -> Address {
        Address::from_low_u64(base + i)
    }

    /// Parent state: `size` funded senders (key labels from
    /// `label_base`) plus `size + 1` counter contracts at
    /// `contract_base` (index 0 is the shared hot one).
    pub fn fixture(label_base: u64, contract_base: u64, size: u64) -> (BlockHeader, StateDb, Vec<SecretKey>) {
        let keys: Vec<SecretKey> = (0..size).map(|i| SecretKey::from_label(label_base + i)).collect();
        let mut builder = GenesisBuilder::new();
        for key in &keys {
            builder = builder.fund(key.address(), U256::from(100_000_000u64));
        }
        let genesis = builder.build();
        let mut state = genesis.state;
        let code = counter_code();
        for i in 0..=size {
            state.set_code(&contract_address(contract_base, i), ContractCode::Bytecode(code.clone()));
        }
        state.clear_journal();
        (genesis.block.header, state, keys)
    }

    /// One call per sender; `conflict_pct`% of them (spread evenly by a
    /// stride) target the shared contract 0, the rest their own.
    pub fn candidates(keys: &[SecretKey], contract_base: u64, conflict_pct: u64) -> Vec<Transaction> {
        keys.iter()
            .enumerate()
            .map(|(i, key)| {
                let conflicting = (i as u64 * 997) % 100 < conflict_pct;
                let target = if conflicting {
                    contract_address(contract_base, 0)
                } else {
                    contract_address(contract_base, 1 + i as u64)
                };
                Transaction::sign(
                    TxPayload {
                        nonce: 0,
                        gas_price: 1,
                        gas_limit: 120_000,
                        to: Some(target),
                        value: U256::ZERO,
                        input: Bytes::new(),
                    },
                    key,
                )
            })
            .collect()
    }
}

/// One measured point of a scale benchmark: workload `size`, baseline and
/// fast-path mean latencies in microseconds, and their ratio.
#[derive(Debug, Clone, Copy)]
pub struct BenchPoint {
    /// Workload size (accounts, pool entries, transactions, …).
    pub size: u64,
    /// Baseline latency, µs.
    pub base_us: f64,
    /// Fast-path latency, µs.
    pub fast_us: f64,
    /// `base_us / fast_us`.
    pub speedup: f64,
}

impl BenchPoint {
    /// Builds a point from two mean durations.
    pub fn from_durations(size: u64, base: std::time::Duration, fast: std::time::Duration) -> Self {
        let base_us = base.as_nanos() as f64 / 1e3;
        let fast_us = fast.as_nanos() as f64 / 1e3;
        Self { size, base_us, fast_us, speedup: base.as_nanos() as f64 / fast.as_nanos().max(1) as f64 }
    }
}

fn json_escape(raw: &str) -> String {
    raw.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

/// Writes a machine-readable benchmark artifact `BENCH_<key>.json` (schema:
/// `{bench, config, points:[{size, base_us, fast_us, speedup}]}`) into the
/// current directory, or `$BENCH_ARTIFACT_DIR` when set. CI uploads these
/// so the performance trajectory is recorded per commit. The build is
/// offline (no serde), so the JSON is assembled by hand from flat types.
///
/// # Errors
///
/// Propagates the underlying file-system error.
pub fn write_bench_artifact(
    key: &str,
    bench: &str,
    config: &[(&str, String)],
    points: &[BenchPoint],
) -> std::io::Result<std::path::PathBuf> {
    let dir = std::env::var("BENCH_ARTIFACT_DIR").unwrap_or_else(|_| ".".into());
    write_bench_artifact_in(std::path::Path::new(&dir), key, bench, config, points)
}

/// [`write_bench_artifact`] with an explicit directory (the env-free core;
/// tests use this directly so no process-global state is mutated).
pub(crate) fn write_bench_artifact_in(
    dir: &std::path::Path,
    key: &str,
    bench: &str,
    config: &[(&str, String)],
    points: &[BenchPoint],
) -> std::io::Result<std::path::PathBuf> {
    use std::fmt::Write as _;
    let mut body = String::new();
    let _ = write!(body, "{{\n  \"bench\": \"{}\",\n  \"config\": {{", json_escape(bench));
    for (i, (name, value)) in config.iter().enumerate() {
        let sep = if i == 0 { "" } else { "," };
        let _ = write!(body, "{sep}\n    \"{}\": \"{}\"", json_escape(name), json_escape(value));
    }
    let _ = write!(body, "\n  }},\n  \"points\": [");
    for (i, point) in points.iter().enumerate() {
        let sep = if i == 0 { "" } else { "," };
        let _ = write!(
            body,
            "{sep}\n    {{\"size\": {}, \"base_us\": {:.3}, \"fast_us\": {:.3}, \"speedup\": {:.3}}}",
            point.size, point.base_us, point.fast_us, point.speedup
        );
    }
    body.push_str("\n  ]\n}\n");

    let path = dir.join(format!("BENCH_{key}.json"));
    std::fs::write(&path, body)?;
    Ok(path)
}

/// Parses `VAR` from the environment as a number, with a default — lets
/// the experiment binaries scale without recompiling.
pub fn env_or<T: std::str::FromStr>(var: &str, default: T) -> T {
    std::env::var(var).ok().and_then(|value| value.parse().ok()).unwrap_or(default)
}

/// Parses a comma-separated list of u64 from the environment.
pub fn env_list_or(var: &str, default: &[u64]) -> Vec<u64> {
    std::env::var(var)
        .ok()
        .map(|value| value.split(',').filter_map(|part| part.trim().parse().ok()).collect())
        .filter(|list: &Vec<u64>| !list.is_empty())
        .unwrap_or_else(|| default.to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;
    use sereth_core::process::process;

    #[test]
    fn pool_fixture_yields_expected_chain() {
        let pool = pool_with_chain(10, 20);
        assert_eq!(pool.len(), 30);
        let nodes = process(&pool, &default_contract_address(), set_selector());
        assert_eq!(nodes.len(), 10, "noise filtered out");
    }

    #[test]
    fn env_helpers_fall_back() {
        assert_eq!(env_or::<u64>("SERETH_BENCH_NO_SUCH_VAR", 7u64), 7);
        assert_eq!(env_list_or("SERETH_BENCH_NO_SUCH_VAR", &[1, 2]), vec![1, 2]);
    }

    #[test]
    fn bench_artifact_round_trips_through_disk() {
        // Uses the env-free core directly: mutating BENCH_ARTIFACT_DIR via
        // set_var would race sibling tests reading the environment.
        let dir = std::env::temp_dir().join(format!("sereth-bench-artifact-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let point = BenchPoint::from_durations(
            512,
            std::time::Duration::from_micros(100),
            std::time::Duration::from_micros(25),
        );
        let path = write_bench_artifact_in(
            &dir,
            "test",
            "exec_scale",
            &[("threads", "4".into()), ("note", "with \"quotes\"".into())],
            &[point],
        )
        .unwrap();
        let written = std::fs::read_to_string(&path).unwrap();
        assert!(path.ends_with("BENCH_test.json"));
        assert!(written.contains("\"bench\": \"exec_scale\""));
        assert!(written.contains("\"size\": 512"));
        assert!(written.contains("\"speedup\": 4.000"));
        assert!(written.contains("with \\\"quotes\\\""));
        std::fs::remove_file(&path).unwrap();
        assert!((point.speedup - 4.0).abs() < 1e-9);
    }
}
