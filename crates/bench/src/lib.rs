//! Shared fixtures for the sereth benchmarks and experiment binaries.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use sereth_core::fpv::{Flag, Fpv};
use sereth_core::mark::{compute_mark, genesis_mark};
use sereth_core::process::PendingTx;
use sereth_crypto::address::Address;
use sereth_crypto::hash::H256;
use sereth_node::contract::{default_contract_address, set_selector};

/// Builds a pool snapshot containing one honest chain of `chain_len` sets
/// plus `noise` non-HMS transactions — the input shape for the HMS
/// overhead benchmarks (paper §III-C: "only a small percentage of the
/// TxPool requires processing").
pub fn pool_with_chain(chain_len: usize, noise: usize) -> Vec<PendingTx> {
    let mut pool = Vec::with_capacity(chain_len + noise);
    let mut prev = genesis_mark();
    for i in 0..chain_len {
        let flag = if i == 0 { Flag::Head } else { Flag::Success };
        let value = H256::from_low_u64(1_000 + i as u64);
        let fpv = Fpv::new(flag, prev, value);
        prev = compute_mark(&prev, &value);
        pool.push(PendingTx {
            hash: H256::keccak(&(i as u64).to_be_bytes()),
            sender: Address::from_low_u64(i as u64),
            to: Some(default_contract_address()),
            input: fpv.to_calldata(set_selector()),
            arrival_seq: i as u64,
        });
    }
    for j in 0..noise {
        pool.push(PendingTx {
            hash: H256::keccak(&[0xee, j as u8, (j >> 8) as u8]),
            sender: Address::from_low_u64(10_000 + j as u64),
            to: Some(Address::from_low_u64(0x0dd)),
            input: bytes::Bytes::from_static(&[0xde, 0xad, 0xbe, 0xef, 0x01]),
            arrival_seq: (chain_len + j) as u64,
        });
    }
    pool
}

/// Parses `VAR` from the environment as a number, with a default — lets
/// the experiment binaries scale without recompiling.
pub fn env_or<T: std::str::FromStr>(var: &str, default: T) -> T {
    std::env::var(var).ok().and_then(|value| value.parse().ok()).unwrap_or(default)
}

/// Parses a comma-separated list of u64 from the environment.
pub fn env_list_or(var: &str, default: &[u64]) -> Vec<u64> {
    std::env::var(var)
        .ok()
        .map(|value| value.split(',').filter_map(|part| part.trim().parse().ok()).collect())
        .filter(|list: &Vec<u64>| !list.is_empty())
        .unwrap_or_else(|| default.to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;
    use sereth_core::process::process;

    #[test]
    fn pool_fixture_yields_expected_chain() {
        let pool = pool_with_chain(10, 20);
        assert_eq!(pool.len(), 30);
        let nodes = process(&pool, &default_contract_address(), set_selector());
        assert_eq!(nodes.len(), 10, "noise filtered out");
    }

    #[test]
    fn env_helpers_fall_back() {
        assert_eq!(env_or::<u64>("SERETH_BENCH_NO_SUCH_VAR", 7u64), 7);
        assert_eq!(env_list_or("SERETH_BENCH_NO_SUCH_VAR", &[1, 2]), vec![1, 2]);
    }
}
