//! Bench-trend regression gate: compares freshly produced `BENCH_*.json`
//! artifacts against the committed baselines in `bench/baselines/` and
//! exits nonzero on any speedup regression beyond the tolerance.
//!
//! Run after the scale benches (the CI `test` job does) so a change that
//! quietly halves a measured speedup fails the build instead of surfacing
//! months later in an artifact graph. Comparison is by speedup *ratio*
//! (fast-path vs baseline on the same host), which transfers across
//! machines far better than absolute latency; the tolerance absorbs the
//! residual host-to-host noise.
//!
//! Knobs (env): `TREND_BASELINE_DIR` (default `bench/baselines`),
//! `TREND_FRESH_DIR` (default `$BENCH_ARTIFACT_DIR`, falling back to
//! `.` — where the benches write), `TREND_MAX_REGRESSION_PCT` (default
//! `60`: fresh speedup must reach 40 % of baseline),
//! `TREND_REQUIRE_FRESH` (`1` fails when a baseline has no fresh artifact
//! at all — set in CI, where every bench runs first; unset locally so the
//! gate can be invoked after a partial bench run).
//!
//! Baseline refresh procedure: see DESIGN.md ("Bench-trend regression
//! gate") — download `bench-artifacts` from a trusted CI run of `main`
//! (or rerun the benches locally with the CI env knobs) and copy the
//! `BENCH_*.json` files over `bench/baselines/` verbatim.

use std::path::Path;

use sereth_bench::env_or;
use sereth_bench::trend::{artifact_files, compare, parse_artifact};

fn read_artifact(path: &Path) -> Result<sereth_bench::trend::Artifact, String> {
    let text = std::fs::read_to_string(path).map_err(|error| format!("{}: {error}", path.display()))?;
    parse_artifact(&text).map_err(|error| format!("{}: {error}", path.display()))
}

fn main() {
    let baseline_dir = std::env::var("TREND_BASELINE_DIR").unwrap_or_else(|_| "bench/baselines".to_string());
    let fresh_dir = std::env::var("TREND_FRESH_DIR")
        .or_else(|_| std::env::var("BENCH_ARTIFACT_DIR"))
        .unwrap_or_else(|_| ".".to_string());
    let max_regression_pct = env_or("TREND_MAX_REGRESSION_PCT", 60.0f64);
    let require_fresh = env_or("TREND_REQUIRE_FRESH", 0u8) != 0;

    let baselines = artifact_files(Path::new(&baseline_dir));
    assert!(
        !baselines.is_empty(),
        "no BENCH_*.json baselines under {baseline_dir}/ — nothing to gate against \
         (set TREND_BASELINE_DIR or commit baselines)"
    );

    println!(
        "Bench trend: {} baseline(s) from {baseline_dir}/, fresh artifacts from {fresh_dir}/, \
         tolerance {max_regression_pct}%",
        baselines.len()
    );
    println!("| artifact | bench | points ok | missing sizes | regressions |");
    println!("|----------|-------|-----------|---------------|-------------|");

    let mut failures: Vec<String> = Vec::new();
    for baseline_path in &baselines {
        let name = baseline_path.file_name().and_then(|n| n.to_str()).unwrap_or("?").to_string();
        let baseline = match read_artifact(baseline_path) {
            Ok(artifact) => artifact,
            Err(error) => {
                failures.push(format!("unreadable baseline {error}"));
                continue;
            }
        };
        let fresh_path = Path::new(&fresh_dir).join(&name);
        if !fresh_path.exists() {
            println!("| {name} | {} | — | — | fresh artifact missing |", baseline.bench);
            if require_fresh {
                failures.push(format!("{name}: no fresh artifact in {fresh_dir}/ (TREND_REQUIRE_FRESH=1)"));
            }
            continue;
        }
        let fresh = match read_artifact(&fresh_path) {
            Ok(artifact) => artifact,
            Err(error) => {
                failures.push(format!("unreadable fresh artifact {error}"));
                continue;
            }
        };
        let comparison = compare(&baseline, &fresh, max_regression_pct);
        println!(
            "| {name} | {} | {} | {:?} | {} |",
            baseline.bench,
            comparison.ok_points,
            comparison.missing_sizes,
            comparison.regressions.len()
        );
        // A gate without its measurement is a config error, not a pass
        // (same principle as the bench bins' own speedup gates): when the
        // fresh run shares NO size with the baseline, nothing was checked,
        // and in CI that must fail rather than silently disable the gate.
        if require_fresh
            && comparison.ok_points == 0
            && comparison.regressions.is_empty()
            && !baseline.points.is_empty()
        {
            failures.push(format!(
                "{name}: no overlapping sizes between baseline {:?} and fresh artifact — \
                 the gate measured nothing (TREND_REQUIRE_FRESH=1)",
                comparison.missing_sizes
            ));
        }
        for regression in &comparison.regressions {
            failures.push(format!(
                "{name} size {}: speedup {:.2}x fell below {:.2}x \
                 (baseline {:.2}x, tolerance {max_regression_pct}%)",
                regression.size, regression.fresh, regression.floor, regression.baseline
            ));
        }
    }

    if failures.is_empty() {
        println!("\nbench trend OK");
        return;
    }
    eprintln!("\nbench trend FAILED:");
    for failure in &failures {
        eprintln!("  - {failure}");
    }
    std::process::exit(1);
}
