//! POOL-SCALE: the miner's `order_candidates` latency against pool size,
//! indexed pool feed vs the full-rescan baseline, for all three ordering
//! policies.
//!
//! Each point builds one pool of `size` pending transactions — mostly
//! single-nonce transfers from distinct senders at varied gas prices,
//! salted with one market's `set` chain and a crowd of `buy`s so the
//! semantic and PWV policies have real series work — and then repeatedly
//! orders a block-sized candidate list both ways. Between repetitions a
//! small churn batch (inserts + removals) flows through the pool, so the
//! indexed read also pays its incremental event-drain, exactly as a miner
//! between two blocks would. Every repetition asserts the two orders are
//! byte-identical before being timed.
//!
//! The headline artifact (`BENCH_pool.json`, uploaded by CI and gated by
//! `bench_trend`) records the Standard-policy sweep: `base_us` is the
//! rescan, `fast_us` the indexed read. The table prints all three
//! policies.
//!
//! Knobs (env): `POOL_SIZES` (default `1024,4096,16384,65536`),
//! `POOL_BUDGET` (candidate cap per ordering pass; default 256),
//! `POOL_REPS` (rescan repetitions; default 3 — the indexed path runs
//! `20×` as many, it is orders of magnitude faster), `POOL_CHURN`
//! (inserts+removals between repetitions; default 32), `POOL_MIN_SPEEDUP`
//! (if > 0, exit nonzero unless the Standard-policy indexed read beats
//! the rescan by this factor at the largest size — the CI gate),
//! `POOL_MAX_SLOWDOWN` (if > 0, exit nonzero if the indexed read is more
//! than this factor slower than the rescan at the smallest size).

use std::time::{Duration, Instant};

use sereth_bench::{env_list_or, env_or, write_bench_artifact, BenchPoint};
use sereth_chain::state::StateDb;
use sereth_chain::txpool::{PoolConfig, TxPool};
use sereth_core::fpv::{Flag, Fpv};
use sereth_core::hms::HmsConfig;
use sereth_core::mark::{compute_mark, genesis_mark};
use sereth_crypto::address::Address;
use sereth_crypto::hash::H256;
use sereth_crypto::sig::SecretKey;
use sereth_node::contract::{buy_selector, default_contract_address, sereth_genesis_slots, set_selector};
use sereth_node::miner::{market_spec, order_candidates_limited, order_candidates_rescan, MinerPolicy};
use sereth_types::transaction::{Transaction, TxPayload};
use sereth_types::u256::U256;

/// Sender-key label base (disjoint from the other benches' fixtures).
const LABELS: u64 = 40_000;
/// The market's `set` chain length and `buy` crowd per pool.
const SETS: usize = 64;
const BUYS: usize = 64;

fn transfer(label: u64, nonce: u64, gas_price: u64) -> Transaction {
    Transaction::sign(
        TxPayload {
            nonce,
            gas_price,
            gas_limit: 21_000,
            to: Some(Address::from_low_u64(0xee)),
            value: U256::ZERO,
            input: bytes::Bytes::new(),
        },
        &SecretKey::from_label(label),
    )
}

/// A pool of `size` pending transactions: `SETS` chained market sets,
/// `BUYS` buys spread over the chain's marks, transfers for the rest.
fn build_pool(size: usize) -> TxPool {
    let pool = TxPool::with_config(PoolConfig {
        capacity: size + 64,
        event_capacity: 4 * size + 64,
        market: Some(market_spec()),
        ..PoolConfig::default()
    });
    let owner = SecretKey::from_label(LABELS - 1);
    let mut marks = vec![genesis_mark()];
    let mut now = 0u64;
    for i in 0..SETS.min(size) {
        let prev = *marks.last().expect("non-empty");
        let value = H256::from_low_u64(1_000 + i as u64);
        let flag = if i == 0 { Flag::Head } else { Flag::Success };
        let tx = Transaction::sign(
            TxPayload {
                nonce: i as u64,
                gas_price: 2,
                gas_limit: 100_000,
                to: Some(default_contract_address()),
                value: U256::ZERO,
                input: Fpv::new(flag, prev, value).to_calldata(set_selector()),
            },
            &owner,
        );
        marks.push(compute_mark(&prev, &value));
        pool.insert(tx, now).expect("pool sized to fit");
        now += 1;
    }
    for b in 0..BUYS.min(size.saturating_sub(SETS)) {
        let mark = marks[b % marks.len()];
        let tx = Transaction::sign(
            TxPayload {
                nonce: 0,
                gas_price: 3,
                gas_limit: 100_000,
                to: Some(default_contract_address()),
                value: U256::ZERO,
                input: Fpv::new(Flag::Success, mark, H256::from_low_u64(1_000 + (b % SETS) as u64))
                    .to_calldata(buy_selector()),
            },
            &SecretKey::from_label(LABELS + 100_000 + b as u64),
        );
        pool.insert(tx, now).expect("pool sized to fit");
        now += 1;
    }
    let transfers = size.saturating_sub(pool.len());
    for t in 0..transfers {
        let price = 1 + (t as u64 * 13 + 7) % 97;
        pool.insert(transfer(LABELS + t as u64, 0, price), now).expect("pool sized to fit");
        now += 1;
    }
    assert_eq!(pool.len(), size, "fixture must hit the target size exactly");
    pool
}

fn market_state() -> StateDb {
    sereth_chain::genesis::GenesisBuilder::new()
        .contract_with_storage(
            default_contract_address(),
            sereth_vm::exec::ContractCode::None,
            sereth_genesis_slots(&Address::from_low_u64(1), H256::from_low_u64(50)),
        )
        .build()
        .state
}

/// One round of churn: remove what the previous round inserted, insert a
/// fresh batch, and record its hashes — so every indexed read that
/// follows has `2 × churn` real events to drain, at a steady pool size.
fn churn_pool(pool: &TxPool, round: u64, churn: usize, last_batch: &mut Vec<H256>) {
    for hash in last_batch.drain(..) {
        pool.remove(&hash);
    }
    for c in 0..churn {
        let tx = transfer(LABELS + 500_000 + c as u64, round, 1 + (round + c as u64) % 89);
        let hash = tx.hash();
        if pool.insert(tx, round).is_ok() {
            last_batch.push(hash);
        }
    }
}

struct Measured {
    rescan: Duration,
    indexed: Duration,
    speedup: f64,
}

fn measure(pool: &TxPool, policy: &MinerPolicy, budget: usize, reps: usize, churn: usize) -> Measured {
    let state = market_state();
    let view = state.view();
    let contract = default_contract_address();

    // Sanity before timing: the two paths order identically (and warm the
    // index so the timed reads measure steady state, not the first
    // subscription rebuild).
    let indexed = order_candidates_limited(pool, &view, &contract, policy, budget);
    let rescan = order_candidates_rescan(pool, &view, &contract, policy, budget);
    assert_eq!(
        indexed.iter().map(Transaction::hash).collect::<Vec<_>>(),
        rescan.iter().map(Transaction::hash).collect::<Vec<_>>(),
        "indexed/rescan divergence in the bench fixture ({policy:?})"
    );

    let rescan_time = {
        let start = Instant::now();
        for _ in 0..reps {
            std::hint::black_box(order_candidates_rescan(pool, &view, &contract, policy, budget));
        }
        start.elapsed() / reps.max(1) as u32
    };
    // The indexed path is orders of magnitude faster: run more reps for a
    // stable mean, with churn flowing between reads so each read drains
    // fresh events (the steady per-block cost, not a hot-cache artifact).
    let fast_reps = reps * 20;
    let mut last_batch: Vec<H256> = Vec::new();
    let start = Instant::now();
    for rep in 0..fast_reps {
        churn_pool(pool, 1 + rep as u64, churn, &mut last_batch);
        std::hint::black_box(order_candidates_limited(pool, &view, &contract, policy, budget));
    }
    let indexed_time = start.elapsed() / fast_reps.max(1) as u32;
    // Leave the pool at its fixture size for the next policy's run.
    churn_pool(pool, 0, 0, &mut last_batch);
    let speedup = rescan_time.as_nanos() as f64 / indexed_time.as_nanos().max(1) as f64;
    Measured { rescan: rescan_time, indexed: indexed_time, speedup }
}

fn main() {
    let sizes = env_list_or("POOL_SIZES", &[1_024, 4_096, 16_384, 65_536]);
    let budget = env_or("POOL_BUDGET", 256usize);
    let reps = env_or("POOL_REPS", 3usize);
    let churn = env_or("POOL_CHURN", 32usize);
    let min_speedup = env_or("POOL_MIN_SPEEDUP", 0.0f64);
    let max_slowdown = env_or("POOL_MAX_SLOWDOWN", 0.0f64);

    let policies: [(&str, MinerPolicy); 3] = [
        ("standard", MinerPolicy::Standard),
        ("semantic", MinerPolicy::Semantic(HmsConfig::default())),
        ("pwv", MinerPolicy::Pwv),
    ];

    println!(
        "order_candidates: indexed feed vs full rescan, budget {budget}, \
         {SETS} sets + {BUYS} buys salted in, {churn} churn txs between indexed reads"
    );
    println!("| pool size | policy | rescan/block | indexed/block | speedup |");
    println!("|-----------|--------|--------------|---------------|---------|");

    let mut points: Vec<BenchPoint> = Vec::new();
    let mut gate: Option<(u64, f64)> = None;
    let mut smallest: Option<(u64, f64)> = None;
    for &size in &sizes {
        let pool = build_pool(size as usize);
        for (name, policy) in &policies {
            let m = measure(&pool, policy, budget, reps, churn);
            println!(
                "| {size:>9} | {name:<6} | {:>9.1} µs | {:>10.2} µs | {:>6.1}x |",
                m.rescan.as_nanos() as f64 / 1e3,
                m.indexed.as_nanos() as f64 / 1e3,
                m.speedup,
            );
            if *name == "standard" {
                points.push(BenchPoint::from_durations(size, m.rescan, m.indexed));
                if gate.is_none_or(|(gate_size, _)| size >= gate_size) {
                    gate = Some((size, m.speedup));
                }
                if smallest.is_none_or(|(small_size, _)| size <= small_size) {
                    smallest = Some((size, m.speedup));
                }
            }
        }
    }

    match write_bench_artifact(
        "pool",
        "pool_scale",
        &[
            ("budget", budget.to_string()),
            ("reps", reps.to_string()),
            ("churn", churn.to_string()),
            ("policy", "standard".to_string()),
            ("host_cpus", std::thread::available_parallelism().map_or(0, |n| n.get()).to_string()),
        ],
        &points,
    ) {
        Ok(path) => println!("\nwrote {}", path.display()),
        Err(error) => eprintln!("\nfailed to write BENCH_pool.json: {error}"),
    }

    // CI gates, mirroring EXEC-PAR/VAL-PAR: the indexed feed must beat
    // the rescan at the largest size, and must not cost more than a small
    // factor at the smallest (where a rescan is cheapest). A gate without
    // its measurement is a config error, not a pass.
    if min_speedup > 0.0 {
        let (size, speedup) = gate.expect("POOL_MIN_SPEEDUP is set but POOL_SIZES is empty");
        assert!(
            speedup >= min_speedup,
            "indexed pool feed regressed: {speedup:.2}x < required {min_speedup:.2}x \
             on the Standard policy at pool size {size}"
        );
    }
    if max_slowdown > 0.0 {
        let (size, speedup) = smallest.expect("POOL_MAX_SLOWDOWN is set but POOL_SIZES is empty");
        let floor = 1.0 / max_slowdown;
        assert!(
            speedup >= floor,
            "indexed pool feed overhead violated: {speedup:.2}x speedup at pool size {size} \
             means more than {max_slowdown:.2}x slower than the rescan"
        );
    }
}
