//! EXEC-PAR: block execution latency, sequential vs the conflict-aware
//! parallel executor, across block sizes and conflict ratios.
//!
//! Each point builds the same candidate list twice on the same parent
//! state — `build_block` (sequential baseline) and `build_block_with_mode`
//! with `ExecMode::Parallel` — asserts the sealed blocks are identical,
//! and reports mean wall-clock per build. The workload is `size` contract
//! calls from distinct senders; a `conflict_pct`% subset (spread evenly
//! through the list) hits one shared counter contract, the rest each hit
//! their own — so 0 % is embarrassingly parallel and 100 % is the
//! adversarial case the adaptive sequential degradation must absorb.
//!
//! Prints a markdown table and writes the `BENCH_exec.json` artifact
//! (conflict-free sweep) for CI upload. Knobs (env): `EXEC_TXS` (comma
//! list of block sizes; default `64,256,512`), `EXEC_CONFLICTS` (percent
//! list; default `0,50,100`), `EXEC_THREADS` (4), `EXEC_REPS` (builds per
//! measurement; default 3), `EXEC_MIN_SPEEDUP` (if > 0, exit nonzero
//! unless parallel beats sequential by this factor at the largest
//! conflict-free size — the CI gate), `EXEC_MAX_SLOWDOWN` (if > 0, exit
//! nonzero if the 100 % point is more than this factor slower than
//! sequential — the graceful-degradation gate).

use std::time::{Duration, Instant};

use bytes::Bytes;
use sereth_bench::{env_list_or, env_or, write_bench_artifact, BenchPoint};
use sereth_chain::builder::{build_block, build_block_with_mode, BlockLimits};
use sereth_chain::genesis::GenesisBuilder;
use sereth_chain::parallel::ExecMode;
use sereth_chain::state::StateDb;
use sereth_crypto::address::Address;
use sereth_crypto::sig::SecretKey;
use sereth_types::block::BlockHeader;
use sereth_types::transaction::{Transaction, TxPayload};
use sereth_types::u256::U256;
use sereth_vm::asm::assemble;
use sereth_vm::exec::ContractCode;

/// Reads slot 0, does a little keccak work, increments the slot — enough
/// VM time per transaction that scheduling overhead does not dominate.
fn counter_code() -> Bytes {
    Bytes::from(
        assemble(
            "PUSH1 0x00\nSLOAD\nPUSH1 0x20\nPUSH1 0x00\nSHA3\nPOP\nPUSH1 0x20\nPUSH1 0x00\nSHA3\nPOP\nPUSH1 0x01\nADD\nPUSH1 0x00\nSSTORE\nSTOP",
        )
        .unwrap(),
    )
}

fn contract_address(i: u64) -> Address {
    Address::from_low_u64(0xE0_0000 + i)
}

/// Parent state: `size` funded senders plus `size + 1` counter contracts
/// (index 0 is the shared hot one).
fn fixture(size: u64) -> (BlockHeader, StateDb, Vec<SecretKey>) {
    let keys: Vec<SecretKey> = (0..size).map(|i| SecretKey::from_label(20_000 + i)).collect();
    let mut builder = GenesisBuilder::new();
    for key in &keys {
        builder = builder.fund(key.address(), U256::from(100_000_000u64));
    }
    let genesis = builder.build();
    let mut state = genesis.state;
    let code = counter_code();
    for i in 0..=size {
        state.set_code(&contract_address(i), ContractCode::Bytecode(code.clone()));
    }
    state.clear_journal();
    (genesis.block.header, state, keys)
}

/// `size` calls from distinct senders; `conflict_pct`% of them (spread
/// evenly by a stride) target the shared contract 0.
fn candidates(keys: &[SecretKey], conflict_pct: u64) -> Vec<Transaction> {
    keys.iter()
        .enumerate()
        .map(|(i, key)| {
            let conflicting = (i as u64 * 997) % 100 < conflict_pct;
            let target = if conflicting { contract_address(0) } else { contract_address(1 + i as u64) };
            Transaction::sign(
                TxPayload {
                    nonce: 0,
                    gas_price: 1,
                    gas_limit: 120_000,
                    to: Some(target),
                    value: U256::ZERO,
                    input: Bytes::new(),
                },
                key,
            )
        })
        .collect()
}

struct Measured {
    sequential: Duration,
    parallel: Duration,
    speedup: f64,
}

fn measure(size: u64, conflict_pct: u64, threads: usize, reps: usize) -> Measured {
    let (parent, state, keys) = fixture(size);
    let txs = candidates(&keys, conflict_pct);
    let miner = Address::from_low_u64(0xfee);
    let limits = BlockLimits { gas_limit: u64::MAX / 2, max_txs: None };
    let mode = ExecMode::Parallel { threads };

    // Sanity before timing: the two modes seal the same block.
    let seq = build_block(&parent, &state, txs.clone(), miner, 15_000, &limits);
    let par = build_block_with_mode(&parent, &state, &txs, miner, 15_000, &limits, &mode);
    assert_eq!(par.block.hash(), seq.block.hash(), "parallel/sequential divergence in the bench fixture");
    assert_eq!(seq.block.transactions.len() as u64, size, "every candidate must execute");

    let time = |mode: Option<&ExecMode>| {
        let start = Instant::now();
        for _ in 0..reps {
            let built = match mode {
                None => build_block_with_mode(
                    &parent,
                    &state,
                    &txs,
                    miner,
                    15_000,
                    &limits,
                    &ExecMode::Sequential,
                ),
                Some(mode) => build_block_with_mode(&parent, &state, &txs, miner, 15_000, &limits, mode),
            };
            std::hint::black_box(built.block.header.state_root);
        }
        start.elapsed() / reps.max(1) as u32
    };
    let sequential = time(None);
    let parallel = time(Some(&mode));
    let speedup = sequential.as_nanos() as f64 / parallel.as_nanos().max(1) as f64;
    Measured { sequential, parallel, speedup }
}

fn main() {
    let sizes = env_list_or("EXEC_TXS", &[64, 256, 512]);
    let conflicts = env_list_or("EXEC_CONFLICTS", &[0, 50, 100]);
    let threads = env_or("EXEC_THREADS", 4usize);
    let reps = env_or("EXEC_REPS", 3usize);
    let min_speedup = env_or("EXEC_MIN_SPEEDUP", 0.0f64);
    let max_slowdown = env_or("EXEC_MAX_SLOWDOWN", 0.0f64);

    println!("Block execution: sequential vs parallel ({threads} threads), {reps} builds per point");
    println!("| txs | conflict | sequential/block | parallel/block | speedup |");
    println!("|-----|----------|------------------|----------------|---------|");

    let mut clean_points: Vec<BenchPoint> = Vec::new();
    // Gate on the conflict-free point at the LARGEST size measured (the
    // size list is a free-form env knob, so track the max explicitly).
    let mut clean_gate: Option<(u64, f64)> = None;
    let mut worst_conflicted_speedup = f64::INFINITY;
    for &size in &sizes {
        for &conflict_pct in &conflicts {
            let m = measure(size, conflict_pct, threads, reps);
            println!(
                "| {size:>3} | {conflict_pct:>7}% | {:>13.1} µs | {:>11.1} µs | {:>6.2}x |",
                m.sequential.as_nanos() as f64 / 1e3,
                m.parallel.as_nanos() as f64 / 1e3,
                m.speedup,
            );
            if conflict_pct == 0 {
                clean_points.push(BenchPoint::from_durations(size, m.sequential, m.parallel));
                if clean_gate.is_none_or(|(gate_size, _)| size >= gate_size) {
                    clean_gate = Some((size, m.speedup));
                }
            } else if conflict_pct == 100 {
                worst_conflicted_speedup = worst_conflicted_speedup.min(m.speedup);
            }
        }
    }
    let gate_speedup_clean = clean_gate.map_or(f64::INFINITY, |(_, speedup)| speedup);

    match write_bench_artifact(
        "exec",
        "exec_scale",
        &[("threads", threads.to_string()), ("reps", reps.to_string()), ("conflict_pct", "0".to_string())],
        &clean_points,
    ) {
        Ok(path) => println!("\nwrote {}", path.display()),
        Err(error) => eprintln!("\nfailed to write BENCH_exec.json: {error}"),
    }

    // CI gates, mirroring STATE_MIN_SPEEDUP: speedup on the conflict-free
    // block at the largest size, and bounded slowdown at 100 % conflicts.
    // A gate without its measurement is a config error, not a pass — an
    // EXEC_CONFLICTS edit must not silently disable regression checking.
    if min_speedup > 0.0 {
        assert!(
            clean_gate.is_some(),
            "EXEC_MIN_SPEEDUP is set but EXEC_CONFLICTS={conflicts:?} has no 0% point to gate on"
        );
        assert!(
            gate_speedup_clean >= min_speedup,
            "parallel executor regressed: {gate_speedup_clean:.2}x < required {min_speedup:.2}x \
             on the conflict-free block at the largest size"
        );
    }
    if max_slowdown > 0.0 {
        assert!(
            worst_conflicted_speedup.is_finite(),
            "EXEC_MAX_SLOWDOWN is set but EXEC_CONFLICTS={conflicts:?} has no 100% point to gate on"
        );
        let floor = 1.0 / max_slowdown;
        assert!(
            worst_conflicted_speedup >= floor,
            "graceful degradation violated: {worst_conflicted_speedup:.2}x speedup at 100% conflicts \
             means more than {max_slowdown:.2}x slower than sequential"
        );
    }
}
