//! EXEC-PAR: block execution latency, sequential vs the conflict-aware
//! parallel executor, across block sizes and conflict ratios.
//!
//! Each point builds the same candidate list twice on the same parent
//! state — `build_block` (sequential baseline) and `build_block_with_mode`
//! with `ExecMode::Parallel` — asserts the sealed blocks are identical,
//! and reports mean wall-clock per build. The workload is `size` contract
//! calls from distinct senders; a `conflict_pct`% subset (spread evenly
//! through the list) hits one shared counter contract, the rest each hit
//! their own — so 0 % is embarrassingly parallel and 100 % is the
//! adversarial case the adaptive sequential degradation must absorb.
//!
//! Prints a markdown table and writes the `BENCH_exec.json` artifact
//! (conflict-free sweep) for CI upload. Knobs (env): `EXEC_TXS` (comma
//! list of block sizes; default `64,256,512`), `EXEC_CONFLICTS` (percent
//! list; default `0,50,100`), `EXEC_THREADS` (4), `EXEC_REPS` (builds per
//! measurement; default 3), `EXEC_MIN_SPEEDUP` (if > 0, exit nonzero
//! unless parallel beats sequential by this factor at the largest
//! conflict-free size — the CI gate), `EXEC_MAX_SLOWDOWN` (if > 0, exit
//! nonzero if the 100 % point is more than this factor slower than
//! sequential — the graceful-degradation gate).

use std::time::{Duration, Instant};

use sereth_bench::exec_fixture::{candidates, fixture};
use sereth_bench::{env_list_or, env_or, write_bench_artifact, BenchPoint};
use sereth_chain::builder::{build_block, build_block_with_mode, BlockLimits};
use sereth_chain::parallel::ExecMode;
use sereth_crypto::address::Address;

/// Sender-key label base and contract address base (distinct from
/// VAL-PAR's, so the two benches' fixtures stay disjoint).
const LABELS: u64 = 20_000;
const CONTRACTS: u64 = 0xE0_0000;

struct Measured {
    sequential: Duration,
    parallel: Duration,
    speedup: f64,
}

fn measure(size: u64, conflict_pct: u64, threads: usize, reps: usize) -> Measured {
    let (parent, state, keys) = fixture(LABELS, CONTRACTS, size);
    let txs = candidates(&keys, CONTRACTS, conflict_pct);
    let miner = Address::from_low_u64(0xfee);
    let limits = BlockLimits { gas_limit: u64::MAX / 2, max_txs: None };
    let mode = ExecMode::Parallel { threads };

    // Sanity before timing: the two modes seal the same block.
    let seq = build_block(&parent, &state, txs.clone(), miner, 15_000, &limits);
    let par = build_block_with_mode(&parent, &state, &txs, miner, 15_000, &limits, &mode);
    assert_eq!(par.block.hash(), seq.block.hash(), "parallel/sequential divergence in the bench fixture");
    assert_eq!(seq.block.transactions.len() as u64, size, "every candidate must execute");

    let time = |mode: Option<&ExecMode>| {
        let start = Instant::now();
        for _ in 0..reps {
            let built = match mode {
                None => build_block_with_mode(
                    &parent,
                    &state,
                    &txs,
                    miner,
                    15_000,
                    &limits,
                    &ExecMode::Sequential,
                ),
                Some(mode) => build_block_with_mode(&parent, &state, &txs, miner, 15_000, &limits, mode),
            };
            std::hint::black_box(built.block.header.state_root);
        }
        start.elapsed() / reps.max(1) as u32
    };
    let sequential = time(None);
    let parallel = time(Some(&mode));
    let speedup = sequential.as_nanos() as f64 / parallel.as_nanos().max(1) as f64;
    Measured { sequential, parallel, speedup }
}

fn main() {
    let sizes = env_list_or("EXEC_TXS", &[64, 256, 512]);
    let conflicts = env_list_or("EXEC_CONFLICTS", &[0, 50, 100]);
    let threads = env_or("EXEC_THREADS", 4usize);
    let reps = env_or("EXEC_REPS", 3usize);
    let min_speedup = env_or("EXEC_MIN_SPEEDUP", 0.0f64);
    let max_slowdown = env_or("EXEC_MAX_SLOWDOWN", 0.0f64);

    println!("Block execution: sequential vs parallel ({threads} threads), {reps} builds per point");
    println!("| txs | conflict | sequential/block | parallel/block | speedup |");
    println!("|-----|----------|------------------|----------------|---------|");

    let mut clean_points: Vec<BenchPoint> = Vec::new();
    // Gate on the conflict-free point at the LARGEST size measured (the
    // size list is a free-form env knob, so track the max explicitly).
    let mut clean_gate: Option<(u64, f64)> = None;
    let mut worst_conflicted_speedup = f64::INFINITY;
    for &size in &sizes {
        for &conflict_pct in &conflicts {
            let m = measure(size, conflict_pct, threads, reps);
            println!(
                "| {size:>3} | {conflict_pct:>7}% | {:>13.1} µs | {:>11.1} µs | {:>6.2}x |",
                m.sequential.as_nanos() as f64 / 1e3,
                m.parallel.as_nanos() as f64 / 1e3,
                m.speedup,
            );
            if conflict_pct == 0 {
                clean_points.push(BenchPoint::from_durations(size, m.sequential, m.parallel));
                if clean_gate.is_none_or(|(gate_size, _)| size >= gate_size) {
                    clean_gate = Some((size, m.speedup));
                }
            } else if conflict_pct == 100 {
                worst_conflicted_speedup = worst_conflicted_speedup.min(m.speedup);
            }
        }
    }
    let gate_speedup_clean = clean_gate.map_or(f64::INFINITY, |(_, speedup)| speedup);

    match write_bench_artifact(
        "exec",
        "exec_scale",
        &[
            ("threads", threads.to_string()),
            ("reps", reps.to_string()),
            ("conflict_pct", "0".to_string()),
            ("host_cpus", std::thread::available_parallelism().map_or(0, |n| n.get()).to_string()),
        ],
        &clean_points,
    ) {
        Ok(path) => println!("\nwrote {}", path.display()),
        Err(error) => eprintln!("\nfailed to write BENCH_exec.json: {error}"),
    }

    // CI gates, mirroring STATE_MIN_SPEEDUP: speedup on the conflict-free
    // block at the largest size, and bounded slowdown at 100 % conflicts.
    // A gate without its measurement is a config error, not a pass — an
    // EXEC_CONFLICTS edit must not silently disable regression checking.
    if min_speedup > 0.0 {
        assert!(
            clean_gate.is_some(),
            "EXEC_MIN_SPEEDUP is set but EXEC_CONFLICTS={conflicts:?} has no 0% point to gate on"
        );
        assert!(
            gate_speedup_clean >= min_speedup,
            "parallel executor regressed: {gate_speedup_clean:.2}x < required {min_speedup:.2}x \
             on the conflict-free block at the largest size"
        );
    }
    if max_slowdown > 0.0 {
        assert!(
            worst_conflicted_speedup.is_finite(),
            "EXEC_MAX_SLOWDOWN is set but EXEC_CONFLICTS={conflicts:?} has no 100% point to gate on"
        );
        let floor = 1.0 / max_slowdown;
        assert!(
            worst_conflicted_speedup >= floor,
            "graceful degradation violated: {worst_conflicted_speedup:.2}x speedup at 100% conflicts \
             means more than {max_slowdown:.2}x slower than sequential"
        );
    }
}
