//! **EXT-PWV** — the piece-wise-visibility comparator of paper §VI.
//!
//! Faleiro et al.'s PWV makes a transaction's writes visible to other
//! transactions *inside the system* as soon as the writing sub-transaction
//! commits. The paper argues this is structurally weaker than HMS: "the
//! PWV commit protocol only provides write visibility after a transaction
//! is submitted to the database system, which limits the potential
//! performance gains in comparison to HMS that provides write visibility
//! to smart contract clients … prior to transaction submission."
//!
//! This binary quantifies that argument on the Figure 2 workload: the
//! `pwv_scheduler` scenario keeps clients unmodified (offers built on
//! committed state, as in the baseline) and gives the *miner* a PWV-style
//! deterministic dependency scheduler with early write visibility during
//! block assembly. Expected shape: geth ≤ pwv ≤ sereth_client ≤
//! semantic_mining — in-system visibility rescues only offers whose
//! interval is still open when scheduled.
//!
//! ```text
//! cargo run -p sereth-bench --bin pwv --release
//! ```
//!
//! Environment knobs: `SERETH_SEEDS` (default 8), `SERETH_BUYS` (default
//! 100), `SERETH_SETS` (comma list, default `100,50,25,20,10,5`).

use sereth_bench::{env_list_or, env_or};
use sereth_sim::experiment::{run_point, ScenarioFactory, SweepPoint, PAPER_SET_COUNTS};
use sereth_sim::report::{ascii_plot, csv, table};
use sereth_sim::scenario::ScenarioConfig;

fn main() {
    let seed_count: u64 = env_or("SERETH_SEEDS", 8u64);
    let num_buys: u64 = env_or("SERETH_BUYS", 100u64);
    let set_counts = env_list_or("SERETH_SETS", &PAPER_SET_COUNTS);
    let seeds: Vec<u64> = (1..=seed_count).collect();

    println!("== EXT-PWV: early write visibility (Faleiro et al.) vs HMS ==");
    println!("buys per point: {num_buys}; set counts: {set_counts:?}; seeds: {seed_count}\n");

    let scenarios: Vec<(&str, ScenarioFactory)> = vec![
        ("geth_unmodified", ScenarioConfig::geth_unmodified),
        ("pwv_scheduler", ScenarioConfig::pwv_scheduler),
        ("sereth_client", ScenarioConfig::sereth_client),
        ("semantic_mining", ScenarioConfig::semantic_mining),
    ];

    let mut all_points: Vec<SweepPoint> = Vec::new();
    let mut series: Vec<(&str, Vec<(f64, f64)>)> = Vec::new();
    for (name, make) in &scenarios {
        let mut line = Vec::new();
        for &num_sets in &set_counts {
            let config = make(num_buys, num_sets);
            let point = run_point(&config, &seeds);
            eprintln!(
                "  {name:>18} sets={num_sets:>3} ratio={:>5.1}  eta={:.3} ±{:.3}  set_latency={:.0}ms",
                point.ratio, point.eta.mean, point.eta.ci90, point.set_latency_mean_ms
            );
            line.push((point.ratio, point.eta.mean));
            all_points.push(point);
        }
        series.push((name, line));
    }

    println!("\n{}", table(&all_points));
    println!("{}", ascii_plot(&series, 64, 16));

    // The §VI comparison — but η alone is not the verdict. A miner-side
    // dependency scheduler holds inclusion freedom PWV's deterministic
    // database never had: it can postpone sets to keep intervals open,
    // which maximises buy-η while the writer's commit latency balloons.
    // The pairing of (η, set latency) exposes the trade.
    let mean_of = |scenario: &str, f: &dyn Fn(&SweepPoint) -> f64| {
        let values: Vec<f64> = all_points.iter().filter(|p| p.scenario == scenario).map(f).collect();
        values.iter().sum::<f64>() / values.len().max(1) as f64
    };
    println!("-- §VI comparison: eta alone vs eta + writer latency --");
    println!("{:>18} {:>10} {:>16} {:>16}", "scenario", "mean eta", "buy latency ms", "set latency ms");
    for name in ["geth_unmodified", "pwv_scheduler", "sereth_client", "semantic_mining"] {
        println!(
            "{:>18} {:>10.3} {:>16.0} {:>16.0}",
            name,
            mean_of(name, &|p| p.eta.mean),
            mean_of(name, &|p| p.buy_latency_mean_ms),
            mean_of(name, &|p| p.set_latency_mean_ms),
        );
    }

    let csv_text = csv(&all_points);
    if let Err(err) = std::fs::write("pwv.csv", &csv_text) {
        eprintln!("could not write pwv.csv: {err}");
    } else {
        println!("\nwrote pwv.csv ({} rows)", all_points.len());
    }
}
