//! STORE-SCALE: the durable state backend vs the in-memory one as genesis
//! account count grows — cold start, crash recovery, and committed-read
//! latency.
//!
//! Per account count the bench builds twin miner nodes over the same
//! market genesis (one in-memory, one durable on a scratch directory),
//! mines the same chained `set` workload on both, then measures:
//!
//! * **cold start** — opening the fresh durable directory, which writes
//!   the genesis snapshot of N accounts;
//! * **recovery** — dropping the durable node mid-run (`kill -9` model:
//!   no shutdown path) and reopening the directory, which replays the
//!   journal; the recovered state root must be byte-equal to the root
//!   the in-memory twin holds, or the bench exits nonzero;
//! * **committed reads** — the full two-call `mark()`/`get()` query per
//!   node. Both paths ride the same O(1) epoch-pinned `StateView`, so
//!   the headline artifact (`BENCH_store.json`, gated by `bench_trend`)
//!   pins their *parity*: `base_us` is the in-memory read, `fast_us`
//!   the durable read, speedup ≈ 1.0. A durable-side regression (e.g. a
//!   deep copy or disk touch sneaking into the read path) drags the
//!   speedup toward zero and trips the gate.
//!
//! Knobs (env): `STORE_ACCOUNTS` (comma list; default `256,2048,16384`),
//! `STORE_BLOCKS` (blocks mined before the crash; default 8),
//! `STORE_READS` (committed reads per node; default 500),
//! `STORE_MAX_READ_OVERHEAD` (if > 0, exit nonzero when the durable
//! committed read costs more than this factor over the in-memory read at
//! the largest size — the CI parity gate).

use std::time::{Duration, Instant};

use sereth_bench::{env_list_or, env_or, write_bench_artifact, BenchPoint};
use sereth_chain::genesis::{Genesis, GenesisBuilder};
use sereth_core::fpv::{Flag, Fpv};
use sereth_core::mark::{compute_mark, genesis_mark};
use sereth_crypto::address::Address;
use sereth_crypto::hash::H256;
use sereth_crypto::sig::SecretKey;
use sereth_node::contract::{
    default_contract_address, sereth_code, sereth_genesis_slots, set_selector, ContractForm,
};
use sereth_node::miner::MinerPolicy;
use sereth_node::node::{NodeConfig, NodeHandle};
use sereth_store::scratch_dir;
use sereth_types::transaction::{Transaction, TxPayload};
use sereth_types::u256::U256;

fn market_genesis(owner: &SecretKey, accounts: u64) -> Genesis {
    let mut builder =
        GenesisBuilder::new().fund(owner.address(), U256::from(1_000_000_000u64)).contract_with_storage(
            default_contract_address(),
            sereth_code(ContractForm::Native),
            sereth_genesis_slots(&owner.address(), H256::from_low_u64(50)),
        );
    for i in 0..accounts {
        builder = builder.fund(Address::from_low_u64(0x1_0000_0000 + i), U256::from(1u64));
    }
    builder.build()
}

fn set_tx(owner: &SecretKey, nonce: u64, prev: H256, value: H256) -> Transaction {
    let flag = if nonce == 0 { Flag::Head } else { Flag::Success };
    Transaction::sign(
        TxPayload {
            nonce,
            gas_price: 2,
            gas_limit: 100_000,
            to: Some(default_contract_address()),
            value: U256::ZERO,
            input: Fpv::new(flag, prev, value).to_calldata(set_selector()),
        },
        owner,
    )
}

/// Mines `blocks` chained sets; the same sequence on every node keeps the
/// twins byte-identical.
fn mine_sets(node: &NodeHandle, owner: &SecretKey, blocks: u64) {
    let mut mark = genesis_mark();
    for nonce in 0..blocks {
        let value = H256::from_low_u64(1_000 + nonce);
        let now = (nonce + 1) * 15_000;
        assert!(node.receive_tx(set_tx(owner, nonce, mark, value), now), "set accepted");
        node.mine(now).expect("miner seals");
        mark = compute_mark(&mark, &value);
    }
}

/// Mean committed-read latency: the full `mark()`/`get()` query.
fn read_latency(node: &NodeHandle, caller: Address, reads: usize) -> Duration {
    let expected = node.query_view(caller).expect("sereth node answers");
    std::hint::black_box(node.query_view(caller));
    let start = Instant::now();
    for _ in 0..reads {
        assert_eq!(std::hint::black_box(node.query_view(caller)).expect("answers"), expected);
    }
    start.elapsed() / reads.max(1) as u32
}

fn main() {
    let account_counts = env_list_or("STORE_ACCOUNTS", &[256, 2_048, 16_384]);
    let blocks = env_or("STORE_BLOCKS", 8u64);
    let reads = env_or("STORE_READS", 500usize);
    let max_read_overhead = env_or("STORE_MAX_READ_OVERHEAD", 0.0f64);
    let owner = SecretKey::from_label(1);
    let contract = default_contract_address();
    let caller = Address::from_low_u64(0x11);

    println!("Durable backend vs in-memory: cold start, recovery, committed reads ({blocks} blocks mined)");
    println!("| accounts | cold start | recovery | mem-read | durable-read | overhead |");
    println!("|----------|------------|----------|----------|--------------|----------|");

    let mut points: Vec<BenchPoint> = Vec::new();
    let mut recovery_meta: Vec<String> = Vec::new();
    let mut last_overhead = 0.0f64;
    for &accounts in &account_counts {
        let genesis = market_genesis(&owner, accounts);
        let dir = scratch_dir("store-scale");

        let mem =
            NodeHandle::new(genesis.clone(), NodeConfig::miner(contract, MinerPolicy::Standard).build());
        let start = Instant::now();
        let durable = NodeHandle::open(
            genesis.clone(),
            NodeConfig::miner(contract, MinerPolicy::Standard).durable_store(&dir).build(),
        )
        .expect("fresh durable dir opens");
        let cold_start = start.elapsed();

        mine_sets(&mem, &owner, blocks);
        mine_sets(&durable, &owner, blocks);
        let committed_root = mem.head_state_root();
        assert_eq!(durable.head_state_root(), committed_root, "twins diverged before the crash");
        drop(durable);

        // The crash model: no shutdown path ran; reopen replays the journal.
        let start = Instant::now();
        let recovered = NodeHandle::open(
            genesis,
            NodeConfig::miner(contract, MinerPolicy::Standard).durable_store(&dir).build(),
        )
        .expect("recovery succeeds");
        let recovery = start.elapsed();
        assert_eq!(recovered.head_number(), blocks, "recovered chain height");
        assert_eq!(recovered.head_state_root(), committed_root, "recovered root must be byte-equal");

        let mem_read = read_latency(&mem, caller, reads);
        let durable_read = read_latency(&recovered, caller, reads);
        let overhead = durable_read.as_nanos() as f64 / mem_read.as_nanos().max(1) as f64;
        last_overhead = overhead;
        points.push(BenchPoint::from_durations(accounts, mem_read, durable_read));
        recovery_meta.push(format!("{accounts}:{:.1}ms", recovery.as_secs_f64() * 1e3));
        println!(
            "| {accounts:>8} | {:>7.1} ms | {:>5.1} ms | {:>5.2} µs | {:>9.2} µs | {overhead:>7.2}x |",
            cold_start.as_secs_f64() * 1e3,
            recovery.as_secs_f64() * 1e3,
            mem_read.as_nanos() as f64 / 1e3,
            durable_read.as_nanos() as f64 / 1e3,
        );

        drop(recovered);
        let _ = std::fs::remove_dir_all(&dir);
    }

    match write_bench_artifact(
        "store",
        "store_scale",
        &[
            ("blocks", blocks.to_string()),
            ("reads", reads.to_string()),
            ("recovery", recovery_meta.join(",")),
        ],
        &points,
    ) {
        Ok(path) => println!("\nwrote {}", path.display()),
        Err(error) => eprintln!("\nfailed to write BENCH_store.json: {error}"),
    }

    // The parity gate: both read paths are O(1) views off the same COW
    // map; if the durable side ever grows a per-read disk or copy cost,
    // its overhead factor explodes and this fails.
    if max_read_overhead > 0.0 {
        assert!(
            last_overhead <= max_read_overhead,
            "durable committed read regressed: {last_overhead:.2}x > allowed {max_read_overhead:.2}x \
             over the in-memory read at the largest size"
        );
    }
}
