//! ISO-FRONTIER: the isolation-ladder sweep — what each rung costs and
//! what it buys.
//!
//! Runs the Figure 2 `sereth_client` market scenario once per
//! [`IsolationLevel`] (read-uncommitted → read-committed → sequential),
//! audits every run through the offline `sereth-consistency` checker, and
//! reports, per rung: state throughput, buy efficiency η, observe-path
//! read latency (micro-measured against a node with a pending write in
//! its pool, so the read-uncommitted rung pays its real speculation
//! cost), and the anomaly count the audit found. This is the paper's
//! trade made explicit: read-uncommitted buys throughput by admitting
//! dirty reads; the stricter rungs give them back.
//!
//! Writes `BENCH_iso.json` where `size` is the level ordinal and
//! `speedup` is `throughput(level) / throughput(sequential)` — the
//! ladder's performance frontier, tracked by `bench_trend` like every
//! other artifact.
//!
//! Knobs (env): `ISO_BUYS` / `ISO_SETS` (workload size per run; default
//! 24 / 6), `ISO_SEEDS` (replications per rung; default 3), `ISO_READS`
//! (observe-latency micro-measure reads; default 2000), `ISO_GATES`
//! (default 1: assert the audit found **zero** anomalies at sequential
//! and that counts are monotone non-increasing up the ladder — the CI
//! smoke gate; set 0 to only report).

use std::time::Instant;

use sereth_bench::{env_or, write_bench_artifact, BenchPoint};
use sereth_chain::genesis::GenesisBuilder;
use sereth_core::mark::genesis_mark;
use sereth_crypto::hash::H256;
use sereth_crypto::sig::SecretKey;
use sereth_node::client::Owner;
use sereth_node::contract::{default_contract_address, sereth_code, sereth_genesis_slots, ContractForm};
use sereth_node::node::{NodeConfig, NodeHandle};
use sereth_sim::audit_run;
use sereth_sim::scenario::{run_scenario, ScenarioConfig};
use sereth_types::u256::U256;
use sereth_types::IsolationLevel;

struct RungResult {
    level: IsolationLevel,
    throughput_tps: f64,
    eta_buys: f64,
    read_us: f64,
    anomalies: u64,
    dirty_reads: u64,
}

/// Mean state throughput, η, and audited anomaly counts over `seeds`
/// replications of the market scenario pinned at `level`.
fn sweep_rung(level: IsolationLevel, buys: u64, sets: u64, seeds: u64) -> RungResult {
    let mut throughput = 0.0;
    let mut eta = 0.0;
    let mut anomalies = 0u64;
    let mut dirty_reads = 0u64;
    for seed in 0..seeds.max(1) {
        let mut config = ScenarioConfig::sereth_client(buys, sets).with_isolation(level);
        config.drain_ms = 60_000;
        let output = run_scenario(&config, 40 + seed);
        let report = audit_run(&output, config.initial_price);
        anomalies += report.violations.len() as u64;
        dirty_reads += report.tallies.dirty_reads as u64;
        throughput += output.metrics.state_throughput_tps();
        eta += output.metrics.eta_buys();
    }
    let n = seeds.max(1) as f64;
    RungResult {
        level,
        throughput_tps: throughput / n,
        eta_buys: eta / n,
        read_us: 0.0,
        anomalies,
        dirty_reads,
    }
}

/// Mean wall-clock latency of one ladder-dispatched `query_observed`
/// against a Sereth node holding a pending `set` — read-uncommitted
/// speculates over it, the stricter rungs skip it.
fn read_latency_us(level: IsolationLevel, reads: usize) -> f64 {
    let owner = SecretKey::from_label(1);
    let genesis = GenesisBuilder::new()
        .fund(owner.address(), U256::from(1_000_000_000u64))
        .contract_with_storage(
            default_contract_address(),
            sereth_code(ContractForm::Native),
            sereth_genesis_slots(&owner.address(), H256::from_low_u64(50)),
        )
        .build();
    let node =
        NodeHandle::new(genesis, NodeConfig::sereth(default_contract_address()).isolation(level).build());
    let mut client = Owner::new(owner.clone(), default_contract_address(), genesis_mark(), 1);
    let pending = client.next_set(&node, H256::from_low_u64(75));
    assert!(node.receive_tx(pending, 100), "the pending write enters the pool");

    let caller = owner.address();
    std::hint::black_box(node.query_observed(caller)).expect("sereth node answers");
    let start = Instant::now();
    for _ in 0..reads {
        std::hint::black_box(node.query_observed(caller)).expect("sereth node answers");
    }
    start.elapsed().as_nanos() as f64 / 1e3 / reads.max(1) as f64
}

fn main() {
    let buys = env_or("ISO_BUYS", 24u64);
    let sets = env_or("ISO_SETS", 6u64);
    let seeds = env_or("ISO_SEEDS", 3u64);
    let reads = env_or("ISO_READS", 2_000usize);
    let enforce = env_or("ISO_GATES", 1u64) != 0;

    println!("Isolation frontier: sereth_client market, {buys} buys / {sets} sets, {seeds} seeds per rung");
    println!("| level            | state tps | eta(buys) | observe/read | anomalies | dirty reads |");
    println!("|------------------|-----------|-----------|--------------|-----------|-------------|");
    let mut results: Vec<RungResult> = Vec::new();
    for level in IsolationLevel::ALL {
        let mut result = sweep_rung(level, buys, sets, seeds);
        result.read_us = read_latency_us(level, reads);
        println!(
            "| {:<16} | {:>9.2} | {:>9.3} | {:>9.2} µs | {:>9} | {:>11} |",
            level.label(),
            result.throughput_tps,
            result.eta_buys,
            result.read_us,
            result.anomalies,
            result.dirty_reads,
        );
        results.push(result);
    }

    // Sequential is the ladder's top rung and the frontier's baseline:
    // `speedup` is how much throughput each weaker rung buys over it.
    let sequential = results.last().expect("ALL is non-empty");
    let base_us = 1e6 / sequential.throughput_tps.max(1e-9);
    let points: Vec<BenchPoint> = results
        .iter()
        .map(|rung| {
            let fast_us = 1e6 / rung.throughput_tps.max(1e-9);
            BenchPoint {
                size: rung.level.ordinal() as u64,
                base_us,
                fast_us,
                speedup: rung.throughput_tps / sequential.throughput_tps.max(1e-9),
            }
        })
        .collect();

    let mut config: Vec<(&str, String)> = vec![
        ("buys", buys.to_string()),
        ("sets", sets.to_string()),
        ("seeds", seeds.to_string()),
        ("reads", reads.to_string()),
    ];
    let anomaly_entries: Vec<(String, String)> = results
        .iter()
        .flat_map(|rung| {
            [
                (format!("anomalies_{}", rung.level.ordinal()), rung.anomalies.to_string()),
                (format!("throughput_tps_{}", rung.level.ordinal()), format!("{:.3}", rung.throughput_tps)),
                (format!("read_us_{}", rung.level.ordinal()), format!("{:.3}", rung.read_us)),
            ]
        })
        .collect();
    config.extend(anomaly_entries.iter().map(|(name, value)| (name.as_str(), value.clone())));

    match write_bench_artifact("iso", "iso_frontier", &config, &points) {
        Ok(path) => println!("\nwrote {}", path.display()),
        Err(error) => eprintln!("\nfailed to write BENCH_iso.json: {error}"),
    }

    if enforce {
        assert_eq!(
            sequential.anomalies, 0,
            "the sequential rung admitted anomalies — the pinned-view read path leaked"
        );
        for pair in results.windows(2) {
            assert!(
                pair[0].anomalies >= pair[1].anomalies,
                "anomaly counts must not increase up the ladder: {} at {} < {} at {}",
                pair[0].anomalies,
                pair[0].level.label(),
                pair[1].anomalies,
                pair[1].level.label(),
            );
        }
        println!("gates: sequential clean, counts monotone non-increasing up the ladder");
    }
}
