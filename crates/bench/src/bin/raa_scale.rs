//! Quick-turnaround comparison of RAA read latency: recompute-per-query
//! vs. the incremental `sereth-raa` service, across pool sizes.
//!
//! Prints a markdown table of mean per-read latency and the speedup.
//! Knobs (env): `RAA_MARKETS` (16), `RAA_SETS` (64), `RAA_NOISE`
//! (comma list of foreign-tx counts; default `0,3072,15360,64512`),
//! `RAA_READS` (2000).

use std::sync::Arc;
use std::time::Instant;

use sereth_bench::{env_list_or, env_or, market_txpool, write_bench_artifact, BenchPoint, PoolSource};
use sereth_core::hms::HmsConfig;
use sereth_core::mark::genesis_mark;
use sereth_core::provider::HmsRaaProvider;
use sereth_crypto::hash::H256;
use sereth_node::contract::set_selector;
use sereth_raa::{RaaConfig, RaaService};

fn main() {
    let markets = env_or("RAA_MARKETS", 16usize);
    let sets = env_or("RAA_SETS", 64usize);
    let noises = env_list_or("RAA_NOISE", &[0, 3_072, 15_360, 64_512]);
    let reads = env_or("RAA_READS", 2_000usize);
    assert!(markets > 0, "RAA_MARKETS must be at least 1");
    let committed = (genesis_mark(), H256::from_low_u64(50));

    println!("RAA read latency: {markets} markets x {sets} sets, {reads} reads round-robin over markets");
    println!("| pool size | recompute/read | service/read | speedup |");
    println!("|-----------|----------------|--------------|---------|");
    let mut points: Vec<BenchPoint> = Vec::new();
    for &noise in &noises {
        let (pool, contracts) = market_txpool(markets, sets, noise as usize);
        let pool_len = pool.len();

        let source = Arc::new(PoolSource { pool: Arc::new(pool.clone()), committed });
        let provider = HmsRaaProvider::new(source, set_selector(), HmsConfig::default());
        // Warm-up, then measure.
        for contract in &contracts {
            std::hint::black_box(provider.run(contract));
        }
        let start = Instant::now();
        for i in 0..reads {
            std::hint::black_box(provider.run(&contracts[i % contracts.len()]));
        }
        let recompute = start.elapsed() / reads as u32;

        let service = RaaService::new(RaaConfig::new(set_selector()));
        service.sync(&pool);
        for contract in &contracts {
            std::hint::black_box(service.view(contract, committed));
        }
        let start = Instant::now();
        for i in 0..reads {
            service.sync(&pool);
            std::hint::black_box(service.view(&contracts[i % contracts.len()], committed));
        }
        let service_read = start.elapsed() / reads as u32;

        let speedup = recompute.as_nanos() as f64 / service_read.as_nanos().max(1) as f64;
        points.push(BenchPoint::from_durations(pool_len as u64, recompute, service_read));
        println!(
            "| {pool_len:>9} | {:>11.2} µs | {:>9.2} µs | {speedup:>6.1}x |",
            recompute.as_nanos() as f64 / 1e3,
            service_read.as_nanos() as f64 / 1e3,
        );
    }

    match write_bench_artifact(
        "raa",
        "raa_scale",
        &[("markets", markets.to_string()), ("sets", sets.to_string()), ("reads", reads.to_string())],
        &points,
    ) {
        Ok(path) => println!("\nwrote {}", path.display()),
        Err(error) => eprintln!("\nfailed to write BENCH_raa.json: {error}"),
    }
}
