//! OBS-OVERHEAD: the cost of leaving telemetry on.
//!
//! The telemetry layer claims to be cheap enough to stay on by default
//! and near-zero when disabled. This bench prices that claim on the
//! node's hottest end-to-end loop: submit a batch of signed transfers
//! through `NodeHandle::receive_tx` (signature check + pool admission,
//! both instrumented) and mine until the pool drains (ordering, wave
//! execution, seal, import — all instrumented). Each repetition runs
//! the workload twice on fresh nodes, telemetry enabled then disabled,
//! interleaved so drift in machine load hits both arms alike. The
//! gated slowdown is the **minimum over repetitions of each rep's
//! paired enabled/disabled ratio**: a real overhead regression shows
//! up in every pair, a scheduler noise spike only in some, so the min
//! pair is robust against false alarms on busy hosts.
//!
//! The artifact (`BENCH_obs.json`) maps the shared schema as: `base_us`
//! = telemetry **enabled**, `fast_us` = telemetry **disabled** (each
//! the minimum over repetitions), so `speedup` is an enabled/disabled
//! slowdown estimate alongside the gated paired statistic.
//! The enabled run's final snapshot is also written as
//! `TELEMETRY_node.json` — the exportable-instrumentation artifact CI
//! uploads next to the bench JSON.
//!
//! Knobs (env): `OBS_TXS` (transfers per run; default `1536`),
//! `OBS_REPS` (interleaved repetitions; default 5), `OBS_MAX_SLOWDOWN`
//! (exit nonzero if enabled/disabled exceeds this at any size; default
//! `1.05`, set `0` to disable the gate).

use std::time::{Duration, Instant};

use bytes::Bytes;
use sereth_bench::{env_list_or, env_or, write_bench_artifact, BenchPoint};
use sereth_chain::builder::BlockLimits;
use sereth_chain::genesis::Genesis;
use sereth_chain::txpool::PoolConfig;
use sereth_chain::GenesisBuilder;
use sereth_crypto::address::Address;
use sereth_crypto::sig::SecretKey;
use sereth_node::contract::default_contract_address;
use sereth_node::miner::MinerPolicy;
use sereth_node::node::{BlockSchedule, NodeConfig, NodeHandle};
use sereth_telemetry::{TelemetryConfig, TelemetrySnapshot};
use sereth_types::transaction::{Transaction, TxPayload};
use sereth_types::u256::U256;

/// Sender-key label base (disjoint from the other benches' fixtures).
const LABELS: u64 = 60_000;
/// Nonces per sender: enough senders to spread pool shards, enough
/// nonces that per-sender queues exercise ready-promotion.
const NONCES_PER_SENDER: u64 = 8;

fn sender_key(sender: u64) -> SecretKey {
    SecretKey::from_label(LABELS + sender)
}

fn genesis(senders: u64) -> Genesis {
    let mut builder = GenesisBuilder::new();
    for sender in 0..senders {
        builder = builder.fund(sender_key(sender).address(), U256::from(10_000_000u64));
    }
    builder.build()
}

fn node(senders: u64, enabled: bool) -> NodeHandle {
    NodeHandle::new(
        genesis(senders),
        NodeConfig::miner(default_contract_address(), MinerPolicy::Standard)
            .schedule(BlockSchedule::Fixed(1_000))
            .coinbase(Address::from_low_u64(0xc01))
            .candidate_budget(Some(256))
            .limits(BlockLimits { gas_limit: 30_000_000, max_txs: Some(256) })
            .pool(PoolConfig { shards: 8, ..PoolConfig::default() })
            .telemetry(TelemetryConfig { enabled })
            .build(),
    )
}

/// Pre-signs the whole workload so the timed region measures the node,
/// not the bench's own signing.
fn sign_workload(senders: u64) -> Vec<(Transaction, u64)> {
    let mut txs = Vec::with_capacity((senders * NONCES_PER_SENDER) as usize);
    for nonce in 0..NONCES_PER_SENDER {
        for sender in 0..senders {
            let price = 1 + (sender * 11 + nonce * 3) % 31;
            let tx = Transaction::sign(
                TxPayload {
                    nonce,
                    gas_price: price,
                    gas_limit: 21_000,
                    to: Some(Address::from_low_u64(0x0b5)),
                    value: U256::from(1u64),
                    input: Bytes::new(),
                },
                &sender_key(sender),
            );
            txs.push((tx, nonce));
        }
    }
    txs
}

/// Submits every transfer, mines until the pool drains, and returns the
/// wall time plus the node's final telemetry snapshot.
fn run_once(senders: u64, workload: &[(Transaction, u64)], enabled: bool) -> (Duration, TelemetrySnapshot) {
    let node = node(senders, enabled);
    let start = Instant::now();
    for (tx, nonce) in workload {
        assert!(node.receive_tx(tx.clone(), *nonce), "bench workload must be admissible");
    }
    let mut timestamp = 0u64;
    while node.pool_len() > 0 {
        timestamp += 1_000;
        std::hint::black_box(node.mine(timestamp).expect("configured miner seals"));
    }
    let elapsed = start.elapsed();
    (elapsed, node.telemetry_snapshot())
}

fn main() {
    let sizes = env_list_or("OBS_TXS", &[1_536]);
    let reps = env_or("OBS_REPS", 5usize);
    let max_slowdown = env_or("OBS_MAX_SLOWDOWN", 1.05f64);

    println!(
        "telemetry overhead: submit + mine-to-drain, {NONCES_PER_SENDER} nonces/sender, \
         min over {reps} interleaved reps"
    );
    println!("| txs | enabled/run | disabled/run | slowdown |");
    println!("|-----|-------------|--------------|----------|");

    let mut points: Vec<BenchPoint> = Vec::new();
    let mut worst: Option<(u64, f64)> = None;
    let mut exemplar: Option<TelemetrySnapshot> = None;
    for &txs in &sizes {
        let senders = txs.div_ceil(NONCES_PER_SENDER).max(1);
        let workload = sign_workload(senders);
        // One untimed warm-up pair: the first run of a fresh process pays
        // page faults and lazy allocator growth that belong to neither arm.
        std::hint::black_box(run_once(senders, &workload, true));
        std::hint::black_box(run_once(senders, &workload, false));
        let mut best_on: Option<Duration> = None;
        let mut best_off: Option<Duration> = None;
        let mut best_ratio: Option<f64> = None;
        for _ in 0..reps.max(1) {
            let (on, snapshot) = run_once(senders, &workload, true);
            let (off, empty) = run_once(senders, &workload, false);
            assert!(
                empty.counters.is_empty() && empty.histograms.is_empty() && empty.blocks.is_empty(),
                "disabled telemetry recorded something: {empty:?}"
            );
            assert!(
                snapshot.histograms["phase.admission"].count() >= workload.len() as u64,
                "enabled telemetry missed admissions"
            );
            if best_on.is_none_or(|best| on < best) {
                best_on = Some(on);
                exemplar = Some(snapshot);
            }
            if best_off.is_none_or(|best| off < best) {
                best_off = Some(off);
            }
            // The gate statistic: each rep's enabled run paired with its
            // own adjacent disabled run, best pair kept. A real overhead
            // regression inflates *every* pair; a scheduler noise spike
            // inflates some — so the minimum paired ratio is robust
            // against false alarms while still catching the failure mode
            // the gate exists for.
            let ratio = on.as_nanos() as f64 / off.as_nanos().max(1) as f64;
            if best_ratio.is_none_or(|best| ratio < best) {
                best_ratio = Some(ratio);
            }
        }
        let (on, off) = (best_on.expect("reps >= 1"), best_off.expect("reps >= 1"));
        let slowdown = best_ratio.expect("reps >= 1");
        let point = BenchPoint::from_durations(workload.len() as u64, on, off);
        println!(
            "| {:>4} | {:>8.2} ms | {:>9.2} ms | {:>7.3}x |",
            point.size,
            on.as_nanos() as f64 / 1e6,
            off.as_nanos() as f64 / 1e6,
            slowdown,
        );
        if worst.is_none_or(|(_, w)| slowdown > w) {
            worst = Some((point.size, slowdown));
        }
        points.push(point);
    }

    match write_bench_artifact(
        "obs",
        "obs_overhead",
        &[
            ("reps", reps.to_string()),
            ("nonces_per_sender", NONCES_PER_SENDER.to_string()),
            ("semantics", "base=telemetry-on fast=telemetry-off speedup=slowdown".to_string()),
            ("host_cpus", std::thread::available_parallelism().map_or(0, |n| n.get()).to_string()),
        ],
        &points,
    ) {
        Ok(path) => println!("\nwrote {}", path.display()),
        Err(error) => eprintln!("\nfailed to write BENCH_obs.json: {error}"),
    }
    match exemplar.expect("at least one size measured").write_artifact("node") {
        Ok(path) => println!("wrote {}", path.display()),
        Err(error) => eprintln!("failed to write TELEMETRY_node.json: {error}"),
    }

    // The CI gate: telemetry-on must stay within the overhead budget at
    // every measured size.
    if max_slowdown > 0.0 {
        let (size, slowdown) = worst.expect("OBS_MAX_SLOWDOWN is set but OBS_TXS is empty");
        assert!(
            slowdown <= max_slowdown,
            "telemetry overhead budget exceeded: {slowdown:.3}x > allowed {max_slowdown:.2}x \
             at {size} transactions"
        );
        println!("overhead gate: worst slowdown {slowdown:.3}x <= {max_slowdown:.2}x");
    }
}
