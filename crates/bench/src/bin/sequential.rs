//! Regenerates the §V sequential-history validation (TXT-SEQ in
//! DESIGN.md): "sending a series of test transactions from the address of
//! a single peer so that there is only one possible history … the
//! transaction failure rate was zero and the transaction efficiency η was
//! 1.0."
//!
//! ```text
//! cargo run -p sereth-bench --bin sequential --release
//! ```

use sereth_bench::env_or;
use sereth_sim::scenario::{run_sequential_history, ScenarioConfig};

fn main() {
    let pairs: u64 = env_or("SERETH_PAIRS", 50u64);
    let seeds: u64 = env_or("SERETH_SEEDS", 5u64);

    println!("== Sequential history: single sender, set/buy alternation ==");
    println!("pairs: {pairs}; seeds: {seeds}\n");
    println!("| {:<18} | {:>5} | {:>9} | {:>9} | {:>7} |", "scenario", "seed", "buys ok", "sets ok", "eta");
    println!("|{:-<20}|{:-<7}|{:-<11}|{:-<11}|{:-<9}|", "", "", "", "", "");

    let mut all_unit = true;
    for make in [
        ScenarioConfig::geth_unmodified as fn(u64, u64) -> ScenarioConfig,
        ScenarioConfig::sereth_client,
        ScenarioConfig::semantic_mining,
    ] {
        let config = make(100, 5);
        for seed in 1..=seeds {
            let out = run_sequential_history(&config, pairs, seed);
            let eta = out.metrics.eta_buys();
            println!(
                "| {:<18} | {:>5} | {:>4}/{:<4} | {:>4}/{:<4} | {:>7.3} |",
                out.scenario,
                seed,
                out.metrics.buys_succeeded,
                out.metrics.buys_submitted,
                out.metrics.sets_succeeded,
                out.metrics.sets_submitted,
                eta
            );
            if (eta - 1.0).abs() > f64::EPSILON || out.metrics.sets_succeeded != out.metrics.sets_submitted {
                all_unit = false;
            }
        }
    }
    println!();
    if all_unit {
        println!("PASS: every run had zero failures (eta = 1.0), matching the paper.");
    } else {
        println!("MISMATCH: some run failed transactions; the paper reports eta = 1.0.");
        std::process::exit(1);
    }
}
