//! Abort-rate extension (DESIGN.md EXT-ABORT; motivated by the paper's
//! §VI discussion of work "reducing abort rate, defined as how many times
//! a transaction is retried before success").
//!
//! Each of the buyers retries a single purchase until it lands while the
//! owner keeps repricing. READ-COMMITTED views force many dead attempts;
//! HMS's READ-UNCOMMITTED views collapse the retry count.
//!
//! ```text
//! cargo run -p sereth-bench --bin abort_rate --release
//! ```

use sereth_bench::env_or;
use sereth_sim::scenario::{run_retry_scenario, ScenarioConfig};
use sereth_sim::stats;

fn main() {
    let seeds: Vec<u64> = (1..=env_or("SERETH_SEEDS", 6u64)).collect();
    let num_sets = env_or("SERETH_SETS_ONE", 40u64);
    let num_buyers = 12usize;

    println!(
        "== Abort rate: {num_buyers} buyers each retrying one purchase through {num_sets} reprices ==\n"
    );
    println!("| {:<18} | {:>10} | {:>14} | {:>10} |", "scenario", "completed", "attempts/buy", "abort_rate");
    println!("|{:-<20}|{:-<12}|{:-<16}|{:-<12}|", "", "", "", "");

    let mut geth_aborts = 0.0;
    let mut sereth_aborts = 0.0;
    for make in [
        ScenarioConfig::geth_unmodified as fn(u64, u64) -> ScenarioConfig,
        ScenarioConfig::pwv_scheduler,
        ScenarioConfig::sereth_client,
        ScenarioConfig::semantic_mining,
    ] {
        let mut config = make(100, num_sets);
        config.num_buyers = num_buyers;
        config.drain_ms = 10 * 15_000;
        let mut completion = Vec::new();
        let mut attempts = Vec::new();
        let mut aborts = Vec::new();
        for &seed in &seeds {
            let (_, stats) = run_retry_scenario(&config, seed);
            completion.push(stats.completion_rate());
            attempts.push(stats.mean_attempts_per_success());
            aborts.push(stats.abort_rate());
        }
        let abort_mean = stats::mean(&aborts);
        println!(
            "| {:<18} | {:>9.2} | {:>14.2} | {:>10.2} |",
            config.name,
            stats::mean(&completion),
            stats::mean(&attempts),
            abort_mean,
        );
        if config.name == "geth_unmodified" {
            geth_aborts = abort_mean;
        }
        if config.name == "sereth_client" {
            sereth_aborts = abort_mean;
        }
    }
    println!();
    if geth_aborts > sereth_aborts {
        let factor = geth_aborts / sereth_aborts.max(1e-9);
        println!(
            "PASS: HMS cuts the abort rate (geth {geth_aborts:.2} vs sereth {sereth_aborts:.2}, x{factor:.1} fewer retries)."
        );
    } else {
        println!("NOTE: abort rates unexpectedly close; inspect seeds.");
    }
}
