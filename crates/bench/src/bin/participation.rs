//! Regenerates the interoperability / partial-participation discussion
//! (TXT-INTEROP in DESIGN.md): the paper's §V-C notes that with "only a
//! fraction of the miners … assisting, or if communication of the TxPool
//! were impeded … there would still be benefits proportional to the
//! participation." We sweep the fraction of Sereth-enabled nodes from 0 to
//! all and measure η at a mid-range ratio.
//!
//! ```text
//! cargo run -p sereth-bench --bin participation --release
//! ```

use sereth_bench::env_or;
use sereth_node::node::ClientKind;
use sereth_sim::experiment::run_point;
use sereth_sim::scenario::ScenarioConfig;

fn main() {
    let seeds: Vec<u64> = (1..=env_or("SERETH_SEEDS", 8u64)).collect();
    let num_buys = env_or("SERETH_BUYS", 100u64);
    let num_sets = env_or("SERETH_SETS_ONE", 20u64);
    let num_nodes = 4usize;

    println!("== Participation sweep: Sereth nodes among {num_nodes}, ratio {num_buys}:{num_sets} ==\n");
    println!("| {:>12} | {:>14} | {:>8} | {:>8} |", "sereth_nodes", "semantic_miner", "eta_mean", "eta_ci90");
    println!("|{:-<14}|{:-<16}|{:-<10}|{:-<10}|", "", "", "", "");

    let mut last_eta = -1.0f64;
    let mut monotone = true;
    for sereth_nodes in 0..=num_nodes {
        for semantic in [false, true] {
            // Node 0 is the miner; it only mines semantically if it is a
            // Sereth node itself.
            if semantic && sereth_nodes == 0 {
                continue;
            }
            let mut config = if semantic {
                ScenarioConfig::semantic_mining(num_buys, num_sets)
            } else {
                ScenarioConfig::sereth_client(num_buys, num_sets)
            };
            config.node_kinds = (0..num_nodes)
                .map(|i| if i < sereth_nodes { ClientKind::Sereth } else { ClientKind::Geth })
                .collect();
            if !semantic {
                config.miner_policy = sereth_node::miner::MinerPolicy::Standard;
            }
            config.name = format!("sereth{sereth_nodes}_{}", if semantic { "semantic" } else { "standard" });
            let point = run_point(&config, &seeds);
            println!(
                "| {:>12} | {:>14} | {:>8.3} | {:>8.3} |",
                sereth_nodes,
                if semantic { "yes" } else { "no" },
                point.eta.mean,
                point.eta.ci90
            );
            if !semantic {
                if point.eta.mean + 0.15 < last_eta {
                    monotone = false; // allow noise, flag big inversions
                }
                last_eta = point.eta.mean;
            }
        }
    }
    println!();
    if monotone {
        println!("PASS: efficiency grows (within noise) with Sereth participation, as §V-C predicts.");
    } else {
        println!("NOTE: efficiency was not monotone in participation; inspect seeds/ratio.");
    }
}
