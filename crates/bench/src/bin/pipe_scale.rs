//! PIPE-SCALE: sealed blocks per second, the serial `mine()` loop vs the
//! cross-block `PipelinedMiner`, across block sizes and conflict ratios.
//!
//! Each point stands up two miner nodes over an identical genesis —
//! `size` funded senders plus counter contracts, the EXEC-PAR workload
//! shape — preloads both pools with `blocks × size` calls (so a backlog
//! always exists for the pipeline to prespeculate into), and drains the
//! backlog block by block on both, asserting every sealed block is
//! hash-identical before reporting mean wall-clock per block. A
//! `conflict_pct`% subset of each block's senders hits one shared
//! counter, the rest their own: at 0 % a held prediction reuses (almost)
//! the whole prespeculated wave, at 100 % nearly every prefed outcome
//! invalidates against the in-block dirty set and re-executes live — the
//! adversarial case the `PIPE_MAX_SLOWDOWN` gate bounds.
//!
//! No gossip runs here, so every prediction holds: the measurement
//! isolates the steady-state overlap win (prespeculation racing the
//! previous block's import/replay), not the replan paths — those are
//! pinned functionally by `pipelined_mining.rs`.
//!
//! Prints a markdown table and writes the `BENCH_pipe.json` artifact
//! (conflict-free sweep) for CI upload. Knobs (env): `PIPE_TXS` (comma
//! list of block sizes; default `64,256`), `PIPE_CONFLICTS` (percent
//! list; default `0,100`), `PIPE_BLOCKS` (blocks per measurement; default
//! 8), `PIPE_THREADS` (4), `PIPE_MIN_SPEEDUP` (if positive, exit nonzero
//! unless the pipelined miner beats the serial loop by this factor at the
//! largest conflict-free size — the CI gate), `PIPE_MAX_SLOWDOWN` (if
//! positive, exit nonzero if any 100 % point is more than this factor
//! slower than the serial loop).

use std::time::{Duration, Instant};

use sereth_bench::exec_fixture::{contract_address, counter_code};
use sereth_bench::{env_list_or, env_or, write_bench_artifact, BenchPoint};
use sereth_chain::builder::BlockLimits;
use sereth_chain::genesis::{Genesis, GenesisBuilder};
use sereth_chain::parallel::ExecMode;
use sereth_chain::txpool::PoolConfig;
use sereth_crypto::address::Address;
use sereth_crypto::sig::SecretKey;
use sereth_node::contract::default_contract_address;
use sereth_node::miner::MinerPolicy;
use sereth_node::node::{NodeConfig, NodeHandle};
use sereth_node::pipeline::PipelinedMiner;
use sereth_types::transaction::{Transaction, TxPayload};
use sereth_types::u256::U256;
use sereth_vm::exec::ContractCode;

/// Sender-key label base and contract address base (distinct from the
/// other benches', so the fixtures stay disjoint).
const LABELS: u64 = 60_000;
const CONTRACTS: u64 = 0xF0_0000;

fn genesis(size: u64) -> Genesis {
    let mut builder = GenesisBuilder::new();
    for i in 0..size {
        builder = builder.fund(SecretKey::from_label(LABELS + i).address(), U256::from(100_000_000u64));
    }
    let code = counter_code();
    for i in 0..=size {
        builder = builder.contract(contract_address(CONTRACTS, i), ContractCode::Bytecode(code.clone()));
    }
    builder.build()
}

fn node(size: u64, blocks: u64, threads: usize) -> NodeHandle {
    NodeHandle::new(
        genesis(size),
        NodeConfig::miner(default_contract_address(), MinerPolicy::Standard)
            .coinbase(Address::from_low_u64(0xfee))
            .candidate_budget(Some(size as usize))
            // Exactly one batch of `size` calls per block.
            .limits(BlockLimits { gas_limit: size * 120_000 + 1_000_000, max_txs: Some(size as usize) })
            .pool(PoolConfig {
                capacity: (size * blocks) as usize + 64,
                event_capacity: 4 * (size * blocks) as usize + 64,
                ..PoolConfig::default()
            })
            .exec_mode(ExecMode::Parallel { threads })
            .build(),
    )
}

/// The EXEC-PAR call shape at an explicit nonce: `conflict_pct`% of the
/// senders (spread by a stride) hit the shared counter 0, the rest each
/// hit their own.
fn call(i: u64, nonce: u64, conflict_pct: u64) -> Transaction {
    let conflicting = (i * 997) % 100 < conflict_pct;
    let target =
        if conflicting { contract_address(CONTRACTS, 0) } else { contract_address(CONTRACTS, 1 + i) };
    Transaction::sign(
        TxPayload {
            nonce,
            gas_price: 1,
            gas_limit: 120_000,
            to: Some(target),
            value: U256::ZERO,
            input: bytes::Bytes::new(),
        },
        &SecretKey::from_label(LABELS + i),
    )
}

/// Preloads the full backlog — `blocks` nonces for each of `size` senders,
/// in block-major arrival order so fee-priority ordering drains it one
/// whole batch per block.
fn preload(node: &NodeHandle, size: u64, blocks: u64, conflict_pct: u64) {
    let mut now = 0u64;
    for nonce in 0..blocks {
        for i in 0..size {
            assert!(node.receive_tx(call(i, nonce, conflict_pct), now), "pool must accept the backlog");
            now += 1;
        }
    }
}

struct Measured {
    serial: Duration,
    pipelined: Duration,
    speedup: f64,
    reused: u64,
    invalidated: u64,
}

fn measure(size: u64, conflict_pct: u64, blocks: u64, threads: usize) -> Measured {
    let serial_node = node(size, blocks, threads);
    let pipelined = PipelinedMiner::new(node(size, blocks, threads));
    preload(&serial_node, size, blocks, conflict_pct);
    preload(pipelined.node(), size, blocks, conflict_pct);

    let mut serial_blocks = Vec::with_capacity(blocks as usize);
    let start = Instant::now();
    for k in 1..=blocks {
        serial_blocks.push(serial_node.mine(15_000 * k).expect("serial miner seals"));
    }
    let serial = start.elapsed() / blocks.max(1) as u32;

    let start = Instant::now();
    for k in 1..=blocks {
        let block = pipelined.mine(15_000 * k).expect("pipelined miner seals");
        // Equivalence before anything else: the pipeline may move work,
        // never results.
        assert_eq!(
            block.hash(),
            serial_blocks[k as usize - 1].hash(),
            "pipelined/serial divergence in the bench fixture (size {size}, conflict {conflict_pct}%, block {k})"
        );
        assert_eq!(block.transactions.len() as u64, size, "every block must drain one full batch");
    }
    let pipelined_time = start.elapsed() / blocks.max(1) as u32;

    let snapshot = pipelined.node().telemetry_snapshot();
    let reused = snapshot.counters.get("pipeline.prefed_reused").copied().unwrap_or(0);
    let invalidated = snapshot.counters.get("pipeline.prefed_invalidated").copied().unwrap_or(0);
    let speedup = serial.as_nanos() as f64 / pipelined_time.as_nanos().max(1) as f64;
    Measured { serial, pipelined: pipelined_time, speedup, reused, invalidated }
}

fn main() {
    let sizes = env_list_or("PIPE_TXS", &[64, 256]);
    let conflicts = env_list_or("PIPE_CONFLICTS", &[0, 100]);
    let blocks = env_or("PIPE_BLOCKS", 8u64);
    let threads = env_or("PIPE_THREADS", 4usize);
    let min_speedup = env_or("PIPE_MIN_SPEEDUP", 0.0f64);
    let max_slowdown = env_or("PIPE_MAX_SLOWDOWN", 0.0f64);

    println!(
        "Mining loop: serial mine() vs cross-block PipelinedMiner ({threads} threads), \
         {blocks} blocks per point, equivalence-checked"
    );
    println!("| txs/block | conflict | serial/block | pipelined/block | speedup | reused | invalidated |");
    println!("|-----------|----------|--------------|-----------------|---------|--------|-------------|");

    let mut clean_points: Vec<BenchPoint> = Vec::new();
    let mut clean_gate: Option<(u64, f64)> = None;
    let mut worst_conflicted_speedup = f64::INFINITY;
    for &size in &sizes {
        for &conflict_pct in &conflicts {
            let m = measure(size, conflict_pct, blocks, threads);
            println!(
                "| {size:>9} | {conflict_pct:>7}% | {:>9.1} µs | {:>12.1} µs | {:>6.2}x | {:>6} | {:>11} |",
                m.serial.as_nanos() as f64 / 1e3,
                m.pipelined.as_nanos() as f64 / 1e3,
                m.speedup,
                m.reused,
                m.invalidated,
            );
            if conflict_pct == 0 {
                clean_points.push(BenchPoint::from_durations(size, m.serial, m.pipelined));
                if clean_gate.is_none_or(|(gate_size, _)| size >= gate_size) {
                    clean_gate = Some((size, m.speedup));
                }
            } else if conflict_pct == 100 {
                worst_conflicted_speedup = worst_conflicted_speedup.min(m.speedup);
            }
        }
    }

    match write_bench_artifact(
        "pipe",
        "pipe_scale",
        &[
            ("threads", threads.to_string()),
            ("blocks", blocks.to_string()),
            ("conflict_pct", "0".to_string()),
            ("host_cpus", std::thread::available_parallelism().map_or(0, |n| n.get()).to_string()),
        ],
        &clean_points,
    ) {
        Ok(path) => println!("\nwrote {}", path.display()),
        Err(error) => eprintln!("\nfailed to write BENCH_pipe.json: {error}"),
    }

    // CI gates, mirroring EXEC-PAR: the pipeline must win on the
    // conflict-free backlog at the largest size, and may not cost more
    // than a bounded factor when every prediction's work invalidates. A
    // gate without its measurement is a config error, not a pass.
    if min_speedup > 0.0 {
        assert!(
            clean_gate.is_some(),
            "PIPE_MIN_SPEEDUP is set but PIPE_CONFLICTS={conflicts:?} has no 0% point to gate on"
        );
        let (size, speedup) = clean_gate.expect("checked above");
        assert!(
            speedup >= min_speedup,
            "pipelined mining regressed: {speedup:.2}x < required {min_speedup:.2}x \
             on the conflict-free backlog at {size} txs/block"
        );
    }
    if max_slowdown > 0.0 {
        assert!(
            worst_conflicted_speedup.is_finite(),
            "PIPE_MAX_SLOWDOWN is set but PIPE_CONFLICTS={conflicts:?} has no 100% point to gate on"
        );
        let floor = 1.0 / max_slowdown;
        assert!(
            worst_conflicted_speedup >= floor,
            "pipelined mining degradation violated: {worst_conflicted_speedup:.2}x speedup at 100% \
             conflicts means more than {max_slowdown:.2}x slower than the serial loop"
        );
    }
}
