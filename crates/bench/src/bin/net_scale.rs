//! NET-SCALE: cluster convergence vs node count under loss.
//!
//! Runs the multi-node cluster scenario (full nodes behind `NetNode` on a
//! ring, edge-injected market workload) once **clean** (no faults) and
//! once **lossy** (drop + duplication on every link plus one
//! partition/heal episode) per node count, and reports the simulated time
//! at which every node agreed on the head, plus gossip traffic per
//! committed block. Times are *simulated*, so the numbers are a pure
//! function of `(config, seed)` — host-independent, which is what lets
//! `bench_trend` compare them against a committed baseline.
//!
//! Writes `BENCH_net.json` where `size` is the node count, `fast_us` the
//! clean convergence time (simulated µs), `base_us` the lossy one, and
//! `speedup` their ratio — how much longer agreement takes when the
//! network misbehaves.
//!
//! Knobs (env): `NET_NODES` (comma list of node counts; default
//! `4,8,12`), `NET_BUYS` / `NET_SETS` (workload size; default 200 / 20),
//! `NET_LOSS` / `NET_DUP` (per-message probabilities ×1000, i.e. permil,
//! so the knob stays integral; default 50 each = 5 %), `NET_SEEDS`
//! (replications per point; default 2), `NET_GATES` (default 1: assert
//! every run converges, that convergence is deterministic, and that the
//! clean run settles within a bounded window after mining stops — the CI
//! smoke gate; set 0 to only report).

use sereth_bench::{env_list_or, env_or, write_bench_artifact, BenchPoint};
use sereth_sim::cluster::{run_cluster, ClusterConfig, ClusterOutput};
use sereth_types::SimTime;

struct NetPoint {
    nodes: u64,
    clean_converged_ms: f64,
    lossy_converged_ms: f64,
    clean_msgs_per_block: f64,
    lossy_msgs_per_block: f64,
}

fn base_config(nodes: usize, buys: u64, sets: u64) -> ClusterConfig {
    let mut config = ClusterConfig::cluster(nodes, buys, sets);
    config.drain_ms = 30_000;
    config
}

fn lossy_config(nodes: usize, buys: u64, sets: u64, loss: f64, dup: f64) -> ClusterConfig {
    // One partition/heal episode riding along: a quarter of the nodes
    // (at least one, never the primary miner) islands off near the end
    // of the workload and heals only *after* mining has quiesced — so
    // the lossy convergence time genuinely includes the announce-driven
    // anti-entropy catch-up, not just flood gossip.
    let config = base_config(nodes, buys, sets);
    let island: Vec<usize> = (1..=(nodes / 4).max(1)).collect();
    let last_submission = buys.max(1) * config.tx_interval_ms + config.tx_interval_ms;
    let heal_at = last_submission + config.drain_ms + 10_000;
    config.lossy(loss, dup).partitioned(island, last_submission.saturating_sub(5_000), heal_at)
}

fn mean_convergence(config: &ClusterConfig, seeds: u64, enforce: bool) -> (f64, f64, ClusterOutput) {
    let mut converged_sum = 0.0;
    let mut msgs_per_block_sum = 0.0;
    let mut first = None;
    for seed in 0..seeds.max(1) {
        let out = run_cluster(config, 90 + seed);
        if enforce {
            assert!(
                out.is_converged(),
                "{} seed {seed} failed to converge: heads {:?}",
                config.name,
                out.per_node_heads
            );
        }
        let converged = out.converged_at.unwrap_or(config.max_sim_ms);
        converged_sum += converged as f64;
        msgs_per_block_sum += out.messages_sent as f64 / out.run.metrics.blocks.max(1) as f64;
        if first.is_none() {
            first = Some(out);
        }
    }
    let n = seeds.max(1) as f64;
    // The first seed's output rides along so the caller can replay seed
    // 90 and assert the run reproduces byte-for-byte.
    (converged_sum / n, msgs_per_block_sum / n, first.expect("at least one seed"))
}

fn main() {
    let node_counts = env_list_or("NET_NODES", &[4, 8, 12]);
    let buys = env_or("NET_BUYS", 200u64);
    let sets = env_or("NET_SETS", 20u64);
    let loss = env_or("NET_LOSS", 50u64) as f64 / 1_000.0;
    let dup = env_or("NET_DUP", 50u64) as f64 / 1_000.0;
    let seeds = env_or("NET_SEEDS", 2u64);
    let enforce = env_or("NET_GATES", 1u64) != 0;

    println!(
        "Cluster convergence: ring topology, {buys} buys / {sets} sets edge-injected, \
         loss {loss:.3} dup {dup:.3}, {seeds} seeds per point"
    );
    println!("| nodes | clean conv (sim s) | lossy conv (sim s) | clean msg/blk | lossy msg/blk |");
    println!("|-------|--------------------|--------------------|---------------|---------------|");

    let mut results: Vec<NetPoint> = Vec::new();
    for &nodes in &node_counts {
        let nodes_usize = nodes as usize;
        let clean = base_config(nodes_usize, buys, sets);
        let lossy = lossy_config(nodes_usize, buys, sets, loss, dup);
        let (clean_ms, clean_mpb, clean_out) = mean_convergence(&clean, seeds, enforce);
        let (lossy_ms, lossy_mpb, _) = mean_convergence(&lossy, seeds, enforce);

        if enforce {
            // Determinism: replaying the first seed must reproduce the
            // run byte-for-byte.
            let again = run_cluster(&clean, 90);
            assert_eq!(again.per_node_heads, clean_out.per_node_heads, "{nodes}-node heads reproduce");
            assert_eq!(again.events, clean_out.events, "{nodes}-node event count reproduces");
            // Bounded convergence: a fault-free cluster must settle
            // within a few sync periods of mining stopping.
            let mine_until =
                clean.num_buys.max(1) * clean.tx_interval_ms + clean.tx_interval_ms + clean.drain_ms;
            let bound: SimTime = mine_until + 10 * clean.sync_every_ms;
            assert!(
                (clean_ms as SimTime) <= bound,
                "clean {nodes}-node cluster converged at {clean_ms} ms, bound {bound} ms"
            );
        }

        println!(
            "| {:>5} | {:>18.1} | {:>18.1} | {:>13.1} | {:>13.1} |",
            nodes,
            clean_ms / 1e3,
            lossy_ms / 1e3,
            clean_mpb,
            lossy_mpb,
        );
        results.push(NetPoint {
            nodes,
            clean_converged_ms: clean_ms,
            lossy_converged_ms: lossy_ms,
            clean_msgs_per_block: clean_mpb,
            lossy_msgs_per_block: lossy_mpb,
        });
    }

    let points: Vec<BenchPoint> = results
        .iter()
        .map(|point| BenchPoint {
            size: point.nodes,
            base_us: point.lossy_converged_ms * 1e3,
            fast_us: point.clean_converged_ms * 1e3,
            speedup: point.lossy_converged_ms / point.clean_converged_ms.max(1e-9),
        })
        .collect();

    let mut config: Vec<(&str, String)> = vec![
        ("buys", buys.to_string()),
        ("sets", sets.to_string()),
        ("loss", format!("{loss:.3}")),
        ("dup", format!("{dup:.3}")),
        ("seeds", seeds.to_string()),
        ("topology", "ring".to_string()),
    ];
    let traffic_entries: Vec<(String, String)> = results
        .iter()
        .flat_map(|point| {
            [
                (
                    format!("clean_msgs_per_block_{}", point.nodes),
                    format!("{:.1}", point.clean_msgs_per_block),
                ),
                (
                    format!("lossy_msgs_per_block_{}", point.nodes),
                    format!("{:.1}", point.lossy_msgs_per_block),
                ),
            ]
        })
        .collect();
    config.extend(traffic_entries.iter().map(|(name, value)| (name.as_str(), value.clone())));

    match write_bench_artifact("net", "net_scale", &config, &points) {
        Ok(path) => println!("\nwrote {}", path.display()),
        Err(error) => eprintln!("\nfailed to write BENCH_net.json: {error}"),
    }

    if enforce {
        println!("gates: all runs converged, determinism reproduced, clean convergence bounded");
    }
}
