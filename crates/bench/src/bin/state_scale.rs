//! RAA-STATE: node read latency vs account count — the deep-clone baseline
//! (what `query_view_for` did before copy-on-write state) against the O(1)
//! `StateView` path it runs on now.
//!
//! Each read issues the full two-call `mark()`/`get()` query against a
//! Sereth node whose genesis carries N funded accounts. The baseline
//! rebuilds the historical cost: `StateDb::deep_clone()` of the head
//! state per read, then the same two `call_readonly` executions. The
//! snapshot path is `NodeHandle::query_view`, which takes one lock, one
//! O(1) view, and executes outside the lock.
//!
//! Prints a markdown table of mean per-read latency and the speedup.
//! Knobs (env): `STATE_ACCOUNTS` (comma list of account counts; default
//! `1024,16384,65536,262144`), `STATE_READS` (snapshot-path reads per
//! size; default 2000), `STATE_BASE_READS` (deep-clone reads per size;
//! default 40 — the baseline is O(state) per read, so it gets fewer),
//! `STATE_MIN_SPEEDUP` (if > 0, exit nonzero unless the snapshot path
//! beats the deep-clone baseline by at least this factor at the largest
//! account count — the CI regression gate).

use std::time::Instant;

use sereth_bench::{env_list_or, env_or, write_bench_artifact, BenchPoint};
use sereth_chain::executor::{call_readonly, BlockEnv};
use sereth_chain::genesis::GenesisBuilder;
use sereth_crypto::address::Address;
use sereth_crypto::hash::H256;
use sereth_crypto::sig::SecretKey;
use sereth_node::contract::{
    default_contract_address, get_selector, mark_selector, sereth_code, sereth_genesis_slots, ContractForm,
};
use sereth_node::node::{NodeConfig, NodeHandle};
use sereth_types::u256::U256;
use sereth_vm::abi;

fn build_node(accounts: usize) -> NodeHandle {
    let owner = SecretKey::from_label(1);
    let mut genesis_builder =
        GenesisBuilder::new().fund(owner.address(), U256::from(1_000_000_000u64)).contract_with_storage(
            default_contract_address(),
            sereth_code(ContractForm::Native),
            sereth_genesis_slots(&owner.address(), H256::from_low_u64(50)),
        );
    for i in 0..accounts as u64 {
        genesis_builder = genesis_builder.fund(Address::from_low_u64(0x1_0000_0000 + i), U256::from(1u64));
    }
    NodeHandle::new(genesis_builder.build(), NodeConfig::sereth(default_contract_address()).build())
}

/// The pre-COW read path, reconstructed: deep-clone the whole head state,
/// then run the two augmented read-only calls against the copy.
fn deep_clone_query(node: &NodeHandle, caller: Address) -> (H256, H256) {
    let contract = default_contract_address();
    let (state, raa, env) = node.with_inner(|inner| {
        let head = inner.chain.head_block().header.clone();
        (
            inner.chain.head_state().deep_clone(),
            inner.raa.clone(),
            BlockEnv {
                number: head.number,
                timestamp_ms: head.timestamp_ms,
                gas_limit: head.gas_limit,
                miner: head.miner,
            },
        )
    });
    let view = state.view();
    let zero = [H256::ZERO, H256::ZERO, H256::ZERO];
    let mark_out =
        call_readonly(&view, caller, contract, abi::encode_call(mark_selector(), &zero), &env, &raa);
    let get_out = call_readonly(&view, caller, contract, abi::encode_call(get_selector(), &zero), &env, &raa);
    (
        abi::decode_word(&mark_out.return_data).expect("one word"),
        abi::decode_word(&get_out.return_data).expect("one word"),
    )
}

fn main() {
    let account_counts = env_list_or("STATE_ACCOUNTS", &[1_024, 16_384, 65_536, 262_144]);
    let reads = env_or("STATE_READS", 2_000usize);
    let base_reads = env_or("STATE_BASE_READS", 40usize);
    let min_speedup = env_or("STATE_MIN_SPEEDUP", 0.0f64);
    let caller = Address::from_low_u64(0x11);
    let mut last_speedup = f64::INFINITY;
    let mut points: Vec<BenchPoint> = Vec::new();

    println!("Node read latency vs state size: full mark()/get() query per read");
    println!("| accounts | deep-clone/read | cow-view/read | speedup |");
    println!("|----------|-----------------|---------------|---------|");
    for &accounts in &account_counts {
        let node = build_node(accounts as usize);
        let expected = node.query_view(caller).expect("sereth node answers");

        // Baseline: deep clone per read (the historical path).
        std::hint::black_box(deep_clone_query(&node, caller));
        let start = Instant::now();
        for _ in 0..base_reads {
            assert_eq!(std::hint::black_box(deep_clone_query(&node, caller)), expected);
        }
        let deep = start.elapsed() / base_reads.max(1) as u32;

        // Snapshot path: O(1) view per read.
        std::hint::black_box(node.query_view(caller));
        let start = Instant::now();
        for _ in 0..reads {
            assert_eq!(std::hint::black_box(node.query_view(caller)).expect("answers"), expected);
        }
        let cow = start.elapsed() / reads.max(1) as u32;

        let speedup = deep.as_nanos() as f64 / cow.as_nanos().max(1) as f64;
        last_speedup = speedup;
        points.push(BenchPoint::from_durations(accounts, deep, cow));
        println!(
            "| {accounts:>8} | {:>12.2} µs | {:>10.2} µs | {speedup:>6.1}x |",
            deep.as_nanos() as f64 / 1e3,
            cow.as_nanos() as f64 / 1e3,
        );
    }

    match write_bench_artifact(
        "state",
        "state_scale",
        &[("reads", reads.to_string()), ("base_reads", base_reads.to_string())],
        &points,
    ) {
        Ok(path) => println!("\nwrote {}", path.display()),
        Err(error) => eprintln!("\nfailed to write BENCH_state.json: {error}"),
    }

    // The regression gate: if the snapshot path ever degrades back to
    // O(state) (e.g. a deep copy sneaks into `query_view_inner`), its
    // advantage at the largest size collapses toward 1x and this fails.
    assert!(
        last_speedup >= min_speedup,
        "snapshot path regressed: {last_speedup:.1}x < required {min_speedup:.1}x at the largest size"
    );
}
