//! Ablation studies (ABL-* rows of DESIGN.md's experiment index):
//!
//! 1. **committed-head extension** (the paper's §V-C future work:
//!    "transaction efficiency could approach 100 percent if HMS were
//!    extended to include the final values from replaying each block") —
//!    semantic mining with and without the extension;
//! 2. **block-interval sensitivity** (§II-D: the block interval *is* the
//!    READ-COMMITTED latency) — η of the baseline and of HMS as the mean
//!    interval grows;
//! 3. **tx-interval sensitivity at high buy ratios** (§V-A: "with few
//!    state changes transaction efficiency becomes more sensitive to the
//!    transaction interval").
//!
//! ```text
//! cargo run -p sereth-bench --bin ablations --release
//! ```

use sereth_bench::env_or;
use sereth_core::hms::HmsConfig;
use sereth_node::miner::MinerPolicy;
use sereth_node::node::BlockSchedule;
use sereth_sim::experiment::run_point;
use sereth_sim::scenario::ScenarioConfig;

fn main() {
    let seeds: Vec<u64> = (1..=env_or("SERETH_SEEDS", 8u64)).collect();
    let num_buys = env_or("SERETH_BUYS", 100u64);

    println!("== Ablation 1: committed-head extension (semantic mining, ratio 1:1 and 5:1) ==\n");
    println!("| {:>6} | {:>14} | {:>8} | {:>8} |", "sets", "committed_head", "eta_mean", "eta_ci90");
    println!("|{:-<8}|{:-<16}|{:-<10}|{:-<10}|", "", "", "", "");
    for &num_sets in &[100u64, 20] {
        for committed_head in [false, true] {
            let mut config = ScenarioConfig::semantic_mining(num_buys, num_sets);
            let hms = HmsConfig { committed_head };
            config.hms = hms.clone();
            config.miner_policy = MinerPolicy::Semantic(hms);
            config.name = format!("semantic_ch{committed_head}");
            let point = run_point(&config, &seeds);
            println!(
                "| {:>6} | {:>14} | {:>8.3} | {:>8.3} |",
                num_sets,
                if committed_head { "on" } else { "off" },
                point.eta.mean,
                point.eta.ci90
            );
        }
    }

    println!("\n== Ablation 2: block-interval sensitivity (ratio 5:1) ==\n");
    println!("| {:>12} | {:>18} | {:>8} | {:>8} |", "interval_ms", "scenario", "eta_mean", "eta_ci90");
    println!("|{:-<14}|{:-<20}|{:-<10}|{:-<10}|", "", "", "", "");
    for &interval in &[5_000u64, 10_000, 15_000, 30_000, 60_000] {
        for make in
            [ScenarioConfig::geth_unmodified as fn(u64, u64) -> ScenarioConfig, ScenarioConfig::sereth_client]
        {
            let mut config = make(num_buys, 20);
            config.block_schedule = BlockSchedule::Exponential { mean: interval };
            config.drain_ms = 8 * interval;
            // Keep per-block capacity proportional to the interval so total
            // capacity stays comparable.
            config.max_txs_per_block = Some(((interval / 750) as usize).max(4));
            let point = run_point(&config, &seeds);
            println!(
                "| {:>12} | {:>18} | {:>8.3} | {:>8.3} |",
                interval, point.scenario, point.eta.mean, point.eta.ci90
            );
        }
    }

    println!("\n== Ablation 3: tx-interval sensitivity at 20:1 (sereth_client) ==\n");
    println!("| {:>14} | {:>8} | {:>8} |", "tx_interval_ms", "eta_mean", "eta_ci90");
    println!("|{:-<16}|{:-<10}|{:-<10}|", "", "", "");
    for &tx_interval in &[250u64, 500, 1_000, 2_000, 4_000] {
        let mut config = ScenarioConfig::sereth_client(num_buys, 5);
        config.tx_interval_ms = tx_interval;
        let point = run_point(&config, &seeds);
        println!("| {:>14} | {:>8.3} | {:>8.3} |", tx_interval, point.eta.mean, point.eta.ci90);
    }
    println!();
}
