//! Regenerates **Figure 2** of the paper: transaction efficiency η versus
//! the READ-UNCOMMITTED/WRITE (buy:set) ratio, for the three scenarios
//! `geth_unmodified`, `sereth_client`, and `semantic_mining`.
//!
//! ```text
//! cargo run -p sereth-bench --bin fig2 --release
//! ```
//!
//! Environment knobs: `SERETH_SEEDS` (count, default 10), `SERETH_BUYS`
//! (default 100), `SERETH_SETS` (comma list, default `100,50,25,20,10,5`).
//! Writes `fig2.csv` to the working directory.

use sereth_bench::{env_list_or, env_or};
use sereth_sim::experiment::{run_point, SweepPoint, PAPER_SET_COUNTS};
use sereth_sim::report::{ascii_plot, csv, table};
use sereth_sim::scenario::ScenarioConfig;

fn main() {
    let seed_count: u64 = env_or("SERETH_SEEDS", 10u64);
    let num_buys: u64 = env_or("SERETH_BUYS", 100u64);
    let set_counts = env_list_or("SERETH_SETS", &PAPER_SET_COUNTS);
    let seeds: Vec<u64> = (1..=seed_count).collect();

    println!("== Figure 2: eta vs buy:set ratio ==");
    println!("buys per point: {num_buys}; set counts: {set_counts:?}; seeds: {seed_count}\n");

    let scenarios: Vec<(&str, sereth_sim::experiment::ScenarioFactory)> = vec![
        ("geth_unmodified", ScenarioConfig::geth_unmodified),
        ("sereth_client", ScenarioConfig::sereth_client),
        ("semantic_mining", ScenarioConfig::semantic_mining),
    ];

    let mut all_points: Vec<SweepPoint> = Vec::new();
    let mut series: Vec<(&str, Vec<(f64, f64)>)> = Vec::new();
    for (name, make) in &scenarios {
        let mut line = Vec::new();
        for &num_sets in &set_counts {
            let config = make(num_buys, num_sets);
            let point = run_point(&config, &seeds);
            eprintln!(
                "  {name:>18} sets={num_sets:>3} ratio={:>5.1}  eta={:.3} ±{:.3}",
                point.ratio, point.eta.mean, point.eta.ci90
            );
            line.push((point.ratio, point.eta.mean));
            all_points.push(point);
        }
        series.push((name, line));
    }

    println!("\n{}", table(&all_points));
    println!("{}", ascii_plot(&series, 64, 16));

    // The in-text claims (TXT-5X, TXT-80 in DESIGN.md).
    let eta_of = |scenario: &str, sets: u64| {
        all_points
            .iter()
            .find(|p| p.scenario == scenario && p.num_sets == sets)
            .map(|p| p.eta.mean)
            .unwrap_or(0.0)
    };
    println!("-- in-text claims --");
    let mut improvements = Vec::new();
    for &sets in &set_counts {
        let geth = eta_of("geth_unmodified", sets);
        let sereth = eta_of("sereth_client", sets);
        if geth > 0.0 {
            improvements.push(sereth / geth);
        }
    }
    if !improvements.is_empty() {
        let mean_x = improvements.iter().sum::<f64>() / improvements.len() as f64;
        println!(
            "sereth_client vs geth_unmodified: x{mean_x:.1} mean improvement across ratios (paper: ~x5)"
        );
    }
    let semantic_overall: f64 =
        set_counts.iter().map(|&s| eta_of("semantic_mining", s)).sum::<f64>() / set_counts.len() as f64;
    println!("semantic_mining mean eta: {semantic_overall:.2} (paper: ~0.80)");
    let geth_low = eta_of("geth_unmodified", *set_counts.first().unwrap_or(&100));
    let semantic_low = eta_of("semantic_mining", *set_counts.first().unwrap_or(&100));
    println!(
        "at 1:1 ratio: geth {geth_low:.3} -> semantic {semantic_low:.3} (paper: 'a few percent' -> 'almost 90 percent')"
    );

    let csv_text = csv(&all_points);
    if let Err(err) = std::fs::write("fig2.csv", &csv_text) {
        eprintln!("could not write fig2.csv: {err}");
    } else {
        println!("\nwrote fig2.csv ({} rows)", all_points.len());
    }
}
