//! VAL-PAR: block *validation* latency, sequential replay vs the
//! conflict-aware wave executor, across block sizes and conflict ratios.
//!
//! The paper's cost model (§II-D): every peer redundantly replays every
//! block, so network-wide compute is dominated by validation, not
//! building. Each point seals one block (sequentially — the block bytes
//! are mode-independent), then replays it with `validate_block`
//! (sequential baseline) and `validate_block_with_mode` with
//! `ValidationMode::Parallel`, asserts both verdicts are `Ok` with the
//! same artifacts, and reports mean replay wall-clock. The workload
//! mirrors EXEC-PAR: `size` contract calls from distinct senders, a
//! `conflict_pct`% subset hitting one shared counter contract.
//!
//! Prints a markdown table and writes the `BENCH_val.json` artifact
//! (conflict-free sweep) for CI upload. Knobs (env): `VAL_TXS` (comma
//! list of block sizes; default `64,256,512`), `VAL_CONFLICTS` (percent
//! list; default `0,50,100`), `VAL_THREADS` (4), `VAL_REPS` (replays per
//! measurement; default 3), `VAL_MIN_SPEEDUP` (if > 0, exit nonzero
//! unless parallel replay beats sequential by this factor at the largest
//! conflict-free size — the CI gate), `VAL_MAX_SLOWDOWN` (if > 0, exit
//! nonzero if the 100 % point is more than this factor slower than
//! sequential — the graceful-degradation gate).

use std::time::{Duration, Instant};

use sereth_bench::exec_fixture::{candidates, fixture};
use sereth_bench::{env_list_or, env_or, write_bench_artifact, BenchPoint};
use sereth_chain::builder::{build_block, BlockLimits};
use sereth_chain::validation::{validate_block, validate_block_with_mode, ValidationMode};
use sereth_crypto::address::Address;
use sereth_types::block::Block;

/// Sender-key label base and contract address base (distinct from
/// EXEC-PAR's, so the two benches' fixtures stay disjoint).
const LABELS: u64 = 30_000;
const CONTRACTS: u64 = 0xEA_0000;

struct Measured {
    sequential: Duration,
    parallel: Duration,
    speedup: f64,
}

fn measure(size: u64, conflict_pct: u64, threads: usize, reps: usize) -> Measured {
    let (parent, state, keys) = fixture(LABELS, CONTRACTS, size);
    let txs = candidates(&keys, CONTRACTS, conflict_pct);
    let limits = BlockLimits { gas_limit: u64::MAX / 2, max_txs: None };
    let built = build_block(&parent, &state, txs, Address::from_low_u64(0xfee), 15_000, &limits);
    let block: &Block = &built.block;
    assert_eq!(block.transactions.len() as u64, size, "every candidate must replay");
    let mode = ValidationMode::Parallel { threads };

    // Sanity before timing: both replay modes accept with the same bytes.
    let (seq_receipts, seq_post) = validate_block(&parent, &state, block).expect("sequential replay");
    let validated = validate_block_with_mode(&parent, &state, block, &mode).expect("parallel replay accepts");
    assert_eq!(validated.receipts, seq_receipts, "replay receipts diverged in the bench fixture");
    assert_eq!(validated.post_state.state_root(), seq_post.state_root());

    let time = |mode: &ValidationMode| {
        let start = Instant::now();
        for _ in 0..reps {
            let validated = validate_block_with_mode(&parent, &state, block, mode).expect("replay");
            std::hint::black_box(validated.post_state.state_root());
        }
        start.elapsed() / reps.max(1) as u32
    };
    let sequential = time(&ValidationMode::Sequential);
    let parallel = time(&mode);
    let speedup = sequential.as_nanos() as f64 / parallel.as_nanos().max(1) as f64;
    Measured { sequential, parallel, speedup }
}

fn main() {
    let sizes = env_list_or("VAL_TXS", &[64, 256, 512]);
    let conflicts = env_list_or("VAL_CONFLICTS", &[0, 50, 100]);
    let threads = env_or("VAL_THREADS", 4usize);
    let reps = env_or("VAL_REPS", 3usize);
    let min_speedup = env_or("VAL_MIN_SPEEDUP", 0.0f64);
    let max_slowdown = env_or("VAL_MAX_SLOWDOWN", 0.0f64);

    println!("Block validation replay: sequential vs parallel ({threads} threads), {reps} replays per point");
    println!("| txs | conflict | sequential/replay | parallel/replay | speedup |");
    println!("|-----|----------|-------------------|-----------------|---------|");

    let mut clean_points: Vec<BenchPoint> = Vec::new();
    // Gate on the conflict-free point at the LARGEST size measured (the
    // size list is a free-form env knob, so track the max explicitly).
    let mut clean_gate: Option<(u64, f64)> = None;
    let mut worst_conflicted_speedup = f64::INFINITY;
    for &size in &sizes {
        for &conflict_pct in &conflicts {
            let m = measure(size, conflict_pct, threads, reps);
            println!(
                "| {size:>3} | {conflict_pct:>7}% | {:>14.1} µs | {:>12.1} µs | {:>6.2}x |",
                m.sequential.as_nanos() as f64 / 1e3,
                m.parallel.as_nanos() as f64 / 1e3,
                m.speedup,
            );
            if conflict_pct == 0 {
                clean_points.push(BenchPoint::from_durations(size, m.sequential, m.parallel));
                if clean_gate.is_none_or(|(gate_size, _)| size >= gate_size) {
                    clean_gate = Some((size, m.speedup));
                }
            } else if conflict_pct == 100 {
                worst_conflicted_speedup = worst_conflicted_speedup.min(m.speedup);
            }
        }
    }
    let gate_speedup_clean = clean_gate.map_or(f64::INFINITY, |(_, speedup)| speedup);

    match write_bench_artifact(
        "val",
        "val_scale",
        &[
            ("threads", threads.to_string()),
            ("reps", reps.to_string()),
            ("conflict_pct", "0".to_string()),
            ("host_cpus", std::thread::available_parallelism().map_or(0, |n| n.get()).to_string()),
        ],
        &clean_points,
    ) {
        Ok(path) => println!("\nwrote {}", path.display()),
        Err(error) => eprintln!("\nfailed to write BENCH_val.json: {error}"),
    }

    // CI gates, mirroring EXEC_MIN_SPEEDUP: speedup on the conflict-free
    // block at the largest size, and bounded slowdown at 100 % conflicts.
    // A gate without its measurement is a config error, not a pass — a
    // VAL_CONFLICTS edit must not silently disable regression checking.
    if min_speedup > 0.0 {
        assert!(
            clean_gate.is_some(),
            "VAL_MIN_SPEEDUP is set but VAL_CONFLICTS={conflicts:?} has no 0% point to gate on"
        );
        assert!(
            gate_speedup_clean >= min_speedup,
            "parallel replay validation regressed: {gate_speedup_clean:.2}x < required {min_speedup:.2}x \
             on the conflict-free block at the largest size"
        );
    }
    if max_slowdown > 0.0 {
        assert!(
            worst_conflicted_speedup.is_finite(),
            "VAL_MAX_SLOWDOWN is set but VAL_CONFLICTS={conflicts:?} has no 100% point to gate on"
        );
        let floor = 1.0 / max_slowdown;
        assert!(
            worst_conflicted_speedup >= floor,
            "graceful degradation violated: {worst_conflicted_speedup:.2}x speedup at 100% conflicts \
             means more than {max_slowdown:.2}x slower than sequential replay"
        );
    }
}
